package repro

// Kill-a-shard smoke for the cluster front tier: 3 dpvd shards behind one
// dpvrouter (R=2), several jobs in flight, SIGKILL the shard that owns the
// most of them. Zero admitted jobs may be lost, every surviving verdict must
// be byte-identical to an uninterrupted single-node dpv run, and a replica
// offered a corrupted verdict must reject it with a typed error and never
// ack. Run directly via `make cluster-smoke`.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildClusterCmds compiles dpv, dpvd and dpvrouter into a temp dir.
func buildClusterCmds(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir, "./cmd/dpv", "./cmd/dpvd", "./cmd/dpvrouter")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building binaries: %v\n%s", err, out)
	}
	return dir
}

// freeAddr reserves a loopback port and immediately releases it.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func startRouterProc(t *testing.T, bin, addr string, shards []string) (*exec.Cmd, chan struct{}) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr, "-shards", strings.Join(shards, ","),
		"-replication", "2",
		"-health-interval", "100ms", "-health-failures", "2",
		"-replicate-interval", "50ms", "-hedge-delay", "25ms",
		"-breaker-threshold", "3", "-breaker-open-for", "250ms",
		"-forward-timeout", "2s", "-q")
	cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }()
	return cmd, done
}

// clusterTopology fetches the router's GET /v1/cluster view.
type clusterView struct {
	Shards []struct {
		Base string `json:"base"`
		Live bool   `json:"live"`
	} `json:"shards"`
	Jobs []struct {
		ID         string `json:"id"`
		Primary    string `json:"primary"`
		Done       bool   `json:"done"`
		Replicated bool   `json:"replicated"`
	} `json:"jobs"`
}

func clusterTopology(addr string) (*clusterView, error) {
	resp, err := http.Get("http://" + addr + "/v1/cluster")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("topology: %d", resp.StatusCode)
	}
	var v clusterView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, err
	}
	return &v, nil
}

// jobResultRaw returns the job's state and the raw result JSON (the exact
// bytes the replica protocol carries as the verdict part).
func jobResultRaw(addr, id string) (state string, result json.RawMessage, err error) {
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + id)
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", nil, fmt.Errorf("status %s: %d %s", id, resp.StatusCode, body)
	}
	var sr struct {
		State  string          `json:"state"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		return "", nil, err
	}
	return sr.State, sr.Result, nil
}

func TestClusterKillShard(t *testing.T) {
	const nJobs = 6
	bins := buildClusterCmds(t)
	dir := t.TempDir()
	cnfPath, tracePath, _ := writeChainFixtures(t, dir, 2000)
	formula, err := os.ReadFile(cnfPath)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}

	// Reference verdict: an uninterrupted single-node dpv run on the same
	// checkpoint grid the daemons use. Every cluster verdict — including
	// ones recomputed by failover or served from a replica — must match it
	// byte for byte.
	refJournal := filepath.Join(dir, "ref.dpvj")
	code, refOut := runWithEnv(t, nil, filepath.Join(bins, "dpv"),
		"-json", "-q", "-checkpoint", refJournal, "-checkpoint-every", "100", cnfPath, tracePath)
	if code != 0 {
		t.Fatalf("reference dpv exited %d", code)
	}
	refVerdict := strings.TrimSpace(refOut)
	if !strings.Contains(refVerdict, `"verified"`) {
		t.Fatalf("reference verdict %q not verified", refVerdict)
	}
	// Three shards on disk stores, then the router in front of them.
	dpvd := filepath.Join(bins, "dpvd")
	shardAddrs := make([]string, 3)
	shardCmds := make([]*exec.Cmd, 3)
	shardDone := make([]chan struct{}, 3)
	for i := range shardAddrs {
		shardAddrs[i] = freeAddr(t)
		store := filepath.Join(dir, fmt.Sprintf("store%d", i))
		shardCmds[i], shardDone[i] = startDaemon(t, dpvd, shardAddrs[i], store, "")
		if !waitServing(shardAddrs[i], shardDone[i]) {
			t.Fatalf("shard %d never became healthy", i)
		}
		cmd := shardCmds[i]
		t.Cleanup(func() { cmd.Process.Kill() })
	}
	routerAddr := freeAddr(t)
	routerCmd, routerDone := startRouterProc(t, filepath.Join(bins, "dpvrouter"), routerAddr, shardAddrs)
	t.Cleanup(func() { routerCmd.Process.Kill() })
	if !waitServing(routerAddr, routerDone) {
		t.Fatal("router never became healthy")
	}

	// Admit the fleet of jobs through the router, back to back so they are
	// still in flight (queued, running, or unreplicated) when the axe falls.
	ids := make([]string, 0, nJobs)
	for i := 0; i < nJobs; i++ {
		id, err := submitJob(routerAddr, formula, trace)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}

	// Pick the victim: the shard that is primary for the most admitted jobs,
	// so the kill provably destroys state the cluster owes the client.
	topo, err := clusterTopology(routerAddr)
	if err != nil {
		t.Fatal(err)
	}
	owned := map[string]int{}
	inflight := 0
	for _, j := range topo.Jobs {
		owned[j.Primary]++
		if !j.Replicated {
			inflight++
		}
	}
	if len(topo.Jobs) != nJobs {
		t.Fatalf("router tracks %d jobs, want %d", len(topo.Jobs), nJobs)
	}
	victim := -1
	for i, addr := range shardAddrs {
		base := "http://" + addr
		if victim == -1 || owned[base] > owned["http://"+shardAddrs[victim]] {
			if owned[base] > 0 || victim == -1 {
				victim = i
			}
		}
	}
	if owned["http://"+shardAddrs[victim]] == 0 {
		t.Fatalf("no shard owns any job: %+v", owned)
	}
	t.Logf("killing shard %d (%s): primary for %d of %d jobs, %d unreplicated at kill",
		victim, shardAddrs[victim], owned["http://"+shardAddrs[victim]], nJobs, inflight)
	if err := shardCmds[victim].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	<-shardDone[victim]

	// Zero admitted jobs may be lost: every one must reach done/verified
	// through the router, and every verdict must match the reference.
	deadline := time.Now().Add(120 * time.Second)
	for _, id := range ids {
		for {
			if time.Now().After(deadline) {
				t.Fatalf("job %s did not finish after shard kill", id)
			}
			state, status, verdict, err := jobStatus(routerAddr, id)
			if err != nil {
				// Transient 503s during ejection/failover are the contract;
				// a 404 for an admitted job is a lost job.
				if strings.Contains(err.Error(), " 404 ") || strings.Contains(err.Error(), ": 404") {
					t.Fatalf("admitted job %s read back as 404: %v", id, err)
				}
				time.Sleep(50 * time.Millisecond)
				continue
			}
			if state != "done" {
				time.Sleep(20 * time.Millisecond)
				continue
			}
			if status != "verified" {
				t.Fatalf("job %s finished as %q, want verified", id, status)
			}
			if string(verdict) != refVerdict {
				t.Fatalf("job %s verdict differs from uninterrupted dpv:\n got %s\nwant %s",
					id, verdict, refVerdict)
			}
			break
		}
	}

	// The router must have ejected the corpse from its ring.
	for {
		if time.Now().After(deadline) {
			t.Fatal("router never ejected the killed shard")
		}
		topo, err = clusterTopology(routerAddr)
		if err == nil {
			ejected := false
			for _, s := range topo.Shards {
				if s.Base == "http://"+shardAddrs[victim] && !s.Live {
					ejected = true
				}
			}
			if ejected {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Replica integrity: a survivor offered a corrupted verdict (one flipped
	// hint digit in the LRAT proof) must answer a typed 422 and never store
	// the copy. Build the replica PUT from a finished job's real artifacts.
	survivor := shardAddrs[(victim+1)%len(shardAddrs)]
	var srcID string
	for _, id := range ids {
		if _, _, _, err := jobStatus(survivor, id); err == nil {
			srcID = id
			break
		}
	}
	if srcID == "" {
		t.Fatalf("no finished job found on survivor %s", survivor)
	}
	_, resultRaw, err := jobResultRaw(survivor, srcID)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + survivor + "/v1/jobs/" + srcID + "/lrat")
	if err != nil {
		t.Fatal(err)
	}
	lratBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(lratBytes) == 0 {
		t.Fatalf("lrat fetch: %d, %d bytes", resp.StatusCode, len(lratBytes))
	}
	corrupted := bytes.Clone(lratBytes)
	flipped := false
	for i := len(corrupted) - 1; i >= 0; i-- {
		if corrupted[i] >= '1' && corrupted[i] <= '9' {
			if corrupted[i] == '9' {
				corrupted[i] = '1'
			} else {
				corrupted[i]++
			}
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("no digit to corrupt in lrat proof")
	}

	putReplica := func(target, id string, lrat []byte) (*http.Response, []byte) {
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		fw, _ := mw.CreateFormFile("formula", "chain.cnf")
		fw.Write(formula)
		vw, _ := mw.CreateFormFile("verdict", "result.json")
		vw.Write(resultRaw)
		lw, _ := mw.CreateFormFile("lrat", "proof.lrat")
		lw.Write(lrat)
		mw.Close()
		req, err := http.NewRequest(http.MethodPut,
			"http://"+target+"/v1/replicas/"+id, &buf)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", mw.FormDataContentType())
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, body
	}

	target := shardAddrs[(victim+2)%len(shardAddrs)]
	badID := "deadbeefdeadbeefdeadbeefdeadbeef"
	resp2, body2 := putReplica(target, badID, corrupted)
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupted replica PUT = %d %s, want 422", resp2.StatusCode, body2)
	}
	var er struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body2, &er); err != nil || er.Status != "replica_rejected" {
		t.Fatalf("corrupted replica PUT answered %s, want typed replica_rejected", body2)
	}
	if _, _, _, err := jobStatus(target, badID); err == nil {
		t.Fatalf("rejected replica %s was stored anyway", badID)
	}
	// The untampered copy is accepted — the rejection above was the hint
	// corruption, not the protocol.
	goodID := "cafef00dcafef00dcafef00dcafef00d"
	resp3, body3 := putReplica(target, goodID, lratBytes)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("clean replica PUT = %d %s, want 200", resp3.StatusCode, body3)
	}

	// Graceful teardown: SIGTERM drains the router and the survivors.
	if err := routerCmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-routerDone:
	case <-time.After(30 * time.Second):
		t.Fatal("router did not exit on SIGTERM")
	}
	if ec := routerCmd.ProcessState.ExitCode(); ec != 0 {
		t.Fatalf("router exited %d, want 0", ec)
	}
	for i, cmd := range shardCmds {
		if i == victim {
			continue
		}
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case <-shardDone[i]:
		case <-time.After(30 * time.Second):
			t.Fatalf("shard %d did not drain on SIGTERM", i)
		}
		if ec := cmd.ProcessState.ExitCode(); ec != 0 {
			t.Fatalf("shard %d exited %d, want 0", i, ec)
		}
	}
}
