package repro

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lrat"
	"repro/internal/proof"
	"repro/internal/solver"
)

// The exit-code contract (internal/exitcode) is only real if the built
// binaries honor it, so this test builds them and drives each outcome class:
// verified, rejected, malformed input, timeout, budget, usage, SAT/UNSAT,
// and SIGINT/SIGTERM.

// buildCmds compiles the CLI binaries once into a shared temp dir.
func buildCmds(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir, "./cmd/dpv", "./cmd/bksat", "./cmd/dratcheck", "./cmd/lratcheck")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building binaries: %v\n%s", err, out)
	}
	return dir
}

// writeFixtures produces a verified formula/proof pair (in trace and hinted
// LRAT form), a satisfiable formula, a weakened (satisfiable) variant of the
// UNSAT formula, and a garbage file, returning their paths.
func writeFixtures(t *testing.T) (unsatCNF, trace, lratPath, satCNF, weakCNF, garbage string) {
	t.Helper()
	dir := t.TempDir()

	inst := gen.PHP(5)
	st, tr, _, _, err := solver.Solve(inst.F, solver.Options{})
	if err != nil || st != solver.Unsat {
		t.Fatalf("solving php_5: %v %v", st, err)
	}

	write := func(name string, emit func(*os.File) error) string {
		path := filepath.Join(dir, name)
		out, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := emit(out); err != nil {
			t.Fatal(err)
		}
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	unsatCNF = write("php5.cnf", func(o *os.File) error { return cnf.WriteDimacs(o, inst.F) })
	trace = write("php5.trace", func(o *os.File) error { return proof.Write(o, tr) })
	var rec lrat.Recorder
	if res, err := core.Verify(inst.F, tr, core.Options{Hints: &rec}); err != nil || !res.OK {
		t.Fatalf("hinted verify of php_5: err=%v res=%+v", err, res)
	}
	lratPath = write("php5.lrat", func(o *os.File) error {
		lp, err := rec.Proof()
		if err != nil {
			return err
		}
		return lrat.Write(o, lp)
	})
	satCNF = write("sat.cnf", func(o *os.File) error {
		return cnf.WriteDimacs(o, cnf.NewFormula(2).Add(1, 2).Add(-1, 2))
	})
	// PHP is minimally unsatisfiable: removing any clause leaves a
	// satisfiable formula the old proof cannot be valid for.
	weak := inst.F.Clone()
	weak.Clauses = weak.Clauses[1:]
	weakCNF = write("weak.cnf", func(o *os.File) error { return cnf.WriteDimacs(o, weak) })
	garbage = write("garbage.cnf", func(o *os.File) error {
		_, err := o.WriteString("p cnf x y\nnot a formula\n")
		return err
	})
	return
}

// writeBigLRAT emits a hinted proof with n repeated derivations of (x2) from
// the three-clause chain (x1)(¬x1 x2)(¬x2), closed by the empty clause. Every
// step replays, so the only way the run ends early is the signal under test;
// n in the millions keeps the checker busy long enough to land one.
func writeBigLRAT(t *testing.T, dir string, n int) (cnfPath, lratPath string) {
	t.Helper()
	cnfPath = filepath.Join(dir, "chain2.cnf")
	if err := os.WriteFile(cnfPath, []byte("p cnf 2 3\n1 0\n-1 2 0\n-2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	lratPath = filepath.Join(dir, "big.lrat")
	out, err := os.Create(lratPath)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriterSize(out, 1<<20)
	for i := 0; i < n; i++ {
		// id C=(x2) 0 hints=(x1),(¬x1 x2) 0 — unit then falsified.
		fmt.Fprintf(w, "%d 2 0 1 2 0\n", 4+i)
	}
	fmt.Fprintf(w, "%d 0 1 2 3 0\n", 4+n)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	return
}

func runCmd(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	if err == nil {
		return 0, buf.String()
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), buf.String()
	}
	t.Fatalf("running %s %v: %v", bin, args, err)
	return -1, ""
}

func TestExitCodes(t *testing.T) {
	bins := buildCmds(t)
	unsatCNF, trace, lratProof, satCNF, weakCNF, garbage := writeFixtures(t)
	dpv := filepath.Join(bins, "dpv")
	bksat := filepath.Join(bins, "bksat")
	dratcheck := filepath.Join(bins, "dratcheck")
	lratcheck := filepath.Join(bins, "lratcheck")

	cases := []struct {
		name string
		bin  string
		args []string
		want int
	}{
		{"dpv verified", dpv, []string{"-q", unsatCNF, trace}, 0},
		{"dpv verified parallel", dpv, []string{"-q", "-par", "4", unsatCNF, trace}, 0},
		{"dpv rejected", dpv, []string{"-q", weakCNF, trace}, 2},
		{"dpv rejected all", dpv, []string{"-q", "-all", weakCNF, trace}, 2},
		{"dpv malformed formula", dpv, []string{garbage, trace}, 3},
		{"dpv missing file", dpv, []string{filepath.Join(bins, "no-such.cnf"), trace}, 3},
		{"dpv malformed trace", dpv, []string{unsatCNF, garbage}, 3},
		{"dpv timeout", dpv, []string{"-timeout", "1ns", unsatCNF, trace}, 4},
		{"dpv prop budget", dpv, []string{"-max-props", "1", unsatCNF, trace}, 5},
		{"dpv memory budget", dpv, []string{"-max-memory", "16", unsatCNF, trace}, 5},
		{"dpv usage", dpv, []string{unsatCNF}, 1},
		{"bksat sat", bksat, []string{satCNF}, 10},
		{"bksat unsat", bksat, []string{unsatCNF}, 20},
		{"bksat malformed", bksat, []string{garbage}, 3},
		{"bksat timeout", bksat, []string{"-timeout", "1ns", unsatCNF}, 4},
		{"bksat usage", bksat, []string{}, 1},
		{"dratcheck malformed", dratcheck, []string{garbage, trace}, 3},
		{"dratcheck usage", dratcheck, []string{unsatCNF}, 1},
		{"lratcheck verified", lratcheck, []string{"-q", unsatCNF, lratProof}, 0},
		{"lratcheck verified parallel", lratcheck, []string{"-q", "-par", "4", unsatCNF, lratProof}, 0},
		// The hints were recorded against the full formula; dropping a clause
		// shifts every formula ID, so the replays no longer go through.
		{"lratcheck rejected", lratcheck, []string{"-q", weakCNF, lratProof}, 2},
		{"lratcheck malformed formula", lratcheck, []string{garbage, lratProof}, 3},
		{"lratcheck malformed proof", lratcheck, []string{unsatCNF, garbage}, 3},
		{"lratcheck timeout", lratcheck, []string{"-timeout", "1ns", unsatCNF, lratProof}, 4},
		{"lratcheck usage", lratcheck, []string{unsatCNF}, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got, out := runCmd(t, tc.bin, tc.args...)
			if got != tc.want {
				t.Fatalf("exit code %d, want %d\noutput:\n%s", got, tc.want, out)
			}
		})
	}
}

// TestExitCodeInterrupted sends SIGINT to a bksat run on an instance far too
// hard to finish, and requires the 128+2 shell convention plus a clean
// partial-run report instead of the runtime's default signal death.
func TestExitCodeInterrupted(t *testing.T) {
	bins := buildCmds(t)
	dir := t.TempDir()
	hard := filepath.Join(dir, "php10.cnf")
	out, err := os.Create(hard)
	if err != nil {
		t.Fatal(err)
	}
	if err := cnf.WriteDimacs(out, gen.PHP(10).F); err != nil {
		t.Fatal(err)
	}
	out.Close()

	// -timeout backstops the test: if SIGINT handling regresses, the run
	// ends with code 4 instead of hanging for PHP(10)'s full search.
	cmd := exec.Command(filepath.Join(bins, "bksat"), "-timeout", "60s", hard)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Give the process time to install its handler and enter the search.
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	werr := cmd.Wait()
	ee, ok := werr.(*exec.ExitError)
	if !ok {
		t.Fatalf("wait: %v (output: %s)", werr, buf.String())
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("exit code %d, want 130\noutput:\n%s", code, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("s UNKNOWN")) {
		t.Fatalf("interrupted run did not report a verdict line:\n%s", buf.String())
	}
}

// TestExitCodeInterruptedResume drives the durability half of the SIGINT
// contract: a checkpointing dpv run interrupted mid-verification must exit
// 130 with a final record flushed to its journal, and a subsequent -resume
// must complete with the same stdout report as an uninterrupted run.
func TestExitCodeInterruptedResume(t *testing.T) {
	bins := buildCmds(t)
	dir := t.TempDir()
	// Long enough that the run is still verifying when the signal lands
	// (~1s of checkpointed work), deterministic, and no solver needed.
	cnfPath, tracePath, _ := writeChainFixtures(t, dir, 12000)
	dpv := filepath.Join(bins, "dpv")
	j := filepath.Join(dir, "ck.dpvj")

	code, baseOut := runWithEnv(t, nil, dpv,
		"-checkpoint", filepath.Join(dir, "base.dpvj"), "-checkpoint-every", "100", cnfPath, tracePath)
	if code != 0 {
		t.Fatalf("baseline exit %d:\n%s", code, baseOut)
	}

	cmd := exec.Command(dpv, "-checkpoint", j, "-checkpoint-every", "100", cnfPath, tracePath)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Interrupt only once a checkpoint record is durable, so the resumed run
	// demonstrably starts mid-proof rather than from scratch.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(j); err == nil && fi.Size() > 40+9 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("no checkpoint record appeared within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	werr := cmd.Wait()
	ee, ok := werr.(*exec.ExitError)
	if !ok {
		t.Fatalf("wait: %v — run finished before SIGINT; grow the fixture\noutput:\n%s", werr, buf.String())
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("exit code %d, want 130\noutput:\n%s", code, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("s UNKNOWN")) {
		t.Fatalf("interrupted run did not report a verdict line:\n%s", buf.String())
	}

	// The journal must end with a cleanly flushed final record after the
	// checkpoints the run managed to write.
	data, err := os.ReadFile(j)
	if err != nil {
		t.Fatal(err)
	}
	markers := journalMarkers(t, data)
	if len(markers) < 2 || markers[len(markers)-1] != 'F' {
		t.Fatalf("journal records after SIGINT are %q, want checkpoints then a final record", markers)
	}

	code, out := runWithEnv(t, nil, dpv,
		"-checkpoint", j, "-checkpoint-every", "100", "-resume", cnfPath, tracePath)
	if code != 0 {
		t.Fatalf("resumed run exit %d:\n%s", code, out)
	}
	if out != baseOut {
		t.Fatalf("resumed stdout diverged:\n got %q\nwant %q", out, baseOut)
	}
	if _, err := os.Stat(j); !os.IsNotExist(err) {
		t.Errorf("journal still present after the resumed verdict (err=%v)", err)
	}
}

// TestExitCodeTerminated drives the SIGTERM half of the signal contract: a
// supervisor's polite kill must behave exactly like ^C for every
// long-running CLI — a partial-result dump, a flushed final journal record
// when checkpointing, and exit 130. dratcheck in particular gained signal
// handling only together with this test; the checkpointed cases wait for a
// durable record before signalling so the stop provably lands mid-run.
func TestExitCodeTerminated(t *testing.T) {
	bins := buildCmds(t)
	dir := t.TempDir()
	cnfPath, tracePath, dratPath := writeChainFixtures(t, dir, 12000)
	hard := filepath.Join(dir, "php10.cnf")
	out, err := os.Create(hard)
	if err != nil {
		t.Fatal(err)
	}
	if err := cnf.WriteDimacs(out, gen.PHP(10).F); err != nil {
		t.Fatal(err)
	}
	out.Close()

	lratCNF, lratBig := writeBigLRAT(t, dir, 3_000_000)

	dpvJournal := filepath.Join(dir, "dpv-term.dpvj")
	dratJournal := filepath.Join(dir, "drat-term.dpvj")
	cases := []struct {
		name    string
		bin     string
		args    []string
		journal string        // wait for a durable checkpoint record before signalling
		sleep   time.Duration // journal-less cases: delay before signalling
	}{
		// -timeout backstops every case: if SIGTERM handling regresses the
		// run ends with exit 4 instead of wedging the test.
		{"bksat", "bksat", []string{"-timeout", "60s", hard}, "", 500 * time.Millisecond},
		{"dpv", "dpv", []string{"-timeout", "60s", "-checkpoint", dpvJournal,
			"-checkpoint-every", "100", cnfPath, tracePath}, dpvJournal, 0},
		{"dratcheck", "dratcheck", []string{"-backward", "-timeout", "60s", "-checkpoint", dratJournal,
			"-checkpoint-every", "100", cnfPath, dratPath}, dratJournal, 0},
		// lratcheck installs its handler before reading inputs, so a short
		// delay suffices; the multi-million-step proof keeps it parsing and
		// replaying well past the signal.
		{"lratcheck", "lratcheck", []string{"-timeout", "60s", lratCNF, lratBig}, "", 150 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(filepath.Join(bins, tc.bin), tc.args...)
			var buf bytes.Buffer
			cmd.Stdout = &buf
			cmd.Stderr = &buf
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			if tc.journal == "" {
				// Give the process time to install its handler and start.
				time.Sleep(tc.sleep)
			} else {
				deadline := time.Now().Add(30 * time.Second)
				for {
					if fi, err := os.Stat(tc.journal); err == nil && fi.Size() > 40+9 {
						break
					}
					if time.Now().After(deadline) {
						cmd.Process.Kill()
						t.Fatal("no checkpoint record appeared within 30s")
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
			if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
			werr := cmd.Wait()
			ee, ok := werr.(*exec.ExitError)
			if !ok {
				t.Fatalf("wait: %v — run finished before SIGTERM landed\noutput:\n%s", werr, buf.String())
			}
			if code := ee.ExitCode(); code != 130 {
				t.Fatalf("exit code %d, want 130\noutput:\n%s", code, buf.String())
			}
			if !bytes.Contains(buf.Bytes(), []byte("s UNKNOWN")) {
				t.Fatalf("terminated run did not report a partial-result line:\n%s", buf.String())
			}
			if tc.journal != "" {
				data, err := os.ReadFile(tc.journal)
				if err != nil {
					t.Fatal(err)
				}
				markers := journalMarkers(t, data)
				if len(markers) < 2 || markers[len(markers)-1] != 'F' {
					t.Fatalf("journal records after SIGTERM are %q, want checkpoints then a final record", markers)
				}
			}
		})
	}
}
