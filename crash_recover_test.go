package repro

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/cnf"
	"repro/internal/drat"
	"repro/internal/proof"
)

// Kill-and-recover: the built binaries are SIGKILLed at seeded checkpoint
// appends (the DPV_FAULT_CRASH_AFTER_APPENDS hook fires right after a record
// becomes durable — the exact state a power cut leaves) and restarted with
// -resume until they finish. The crash-safety contract is that the final
// verdict, exit code, stdout report, and every artifact written are
// byte-identical to an uninterrupted checkpointed run, for every verifier
// configuration: pv1/pv2 × watched/counting × sequential/chunked/DAG-
// scheduled parallel, plus the DRAT backward checker.

// mkcl builds a clause from DIMACS literals.
func mkcl(lits ...int) cnf.Clause {
	c := make(cnf.Clause, len(lits))
	for i, l := range lits {
		c[i] = cnf.FromDimacs(l)
	}
	return c
}

// writeChainFixtures emits the implication chain x1, xi→xi+1, ¬xn with its
// unit-clause refutation in both proof formats. Deterministic and long — the
// point is a run that crosses many checkpoint boundaries, not a hard search.
func writeChainFixtures(t *testing.T, dir string, n int) (cnfPath, tracePath, dratPath string) {
	t.Helper()
	f := cnf.NewFormula(n)
	f.Clauses = append(f.Clauses, mkcl(1))
	for i := 1; i < n; i++ {
		f.Clauses = append(f.Clauses, mkcl(-i, i+1))
	}
	f.Clauses = append(f.Clauses, mkcl(-n))

	tr := proof.New()
	tr.Resolutions = nil
	for i := 2; i <= n; i++ {
		tr.Clauses = append(tr.Clauses, mkcl(i))
	}
	tr.Clauses = append(tr.Clauses, mkcl(-n))

	dp := &drat.Proof{}
	for i := 2; i <= n; i++ {
		dp.Add(mkcl(i))
	}
	dp.Add(nil)

	write := func(name string, emit func(*os.File) error) string {
		path := filepath.Join(dir, name)
		out, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := emit(out); err != nil {
			t.Fatal(err)
		}
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cnfPath = write("chain.cnf", func(o *os.File) error { return cnf.WriteDimacs(o, f) })
	tracePath = write("chain.trace", func(o *os.File) error { return proof.Write(o, tr) })
	dratPath = write("chain.drat", func(o *os.File) error { return drat.Write(o, dp) })
	return
}

// runWithEnv runs bin, returning the exit code (-1 when killed by a signal)
// and stdout only — stderr carries resume warnings that legitimately differ
// between the baseline and recovered runs.
func runWithEnv(t *testing.T, env []string, bin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, stdout.String()
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), stdout.String()
	}
	t.Fatalf("running %s %v: %v\nstderr:\n%s", bin, args, err, stderr.String())
	return -2, ""
}

// crashUntilDone runs the command under the crash hook, restarting with
// resumeArgs after every SIGKILL, until a run completes. It returns the
// final run's stdout and how many crashes were survived.
func crashUntilDone(t *testing.T, bin string, firstArgs, resumeArgs []string) (string, int) {
	t.Helper()
	env := []string{"DPV_FAULT_CRASH_AFTER_APPENDS=2"}
	args := firstArgs
	for cycle := 0; cycle < 60; cycle++ {
		code, out := runWithEnv(t, env, bin, args...)
		if code == 0 {
			return out, cycle
		}
		if code != -1 {
			t.Fatalf("cycle %d: exit code %d, want 0 (done) or -1 (SIGKILLed)\nstdout:\n%s", cycle, code, out)
		}
		args = resumeArgs
	}
	t.Fatal("60 crash/resume cycles without completing — resume is not making progress")
	return "", 0
}

func TestCrashRecoverMatrix(t *testing.T) {
	bins := buildCmds(t)
	fixtures := t.TempDir()
	const n = 4000
	cnfPath, tracePath, dratPath := writeChainFixtures(t, fixtures, n)
	every := strconv.Itoa(n / 8)
	dpv := filepath.Join(bins, "dpv")
	dratcheck := filepath.Join(bins, "dratcheck")
	lratcheck := filepath.Join(bins, "lratcheck")

	type config struct {
		name string
		args []string // verifier configuration flags
		core bool     // sequential configs also compare the core and LRAT artifacts
	}
	var cfgs []config
	for _, eng := range []string{"watched", "counting"} {
		cfgs = append(cfgs,
			config{"pv2-" + eng, []string{"-engine", eng}, true},
			config{"pv1-" + eng, []string{"-all", "-engine", eng}, true},
			config{"par-" + eng, []string{"-par", "3", "-engine", eng}, false},
			// The DAG schedule honors marking and records hints, so unlike
			// the chunked config it compares core and LRAT artifacts too. A
			// crash can land in either phase: sequential-emit records and
			// watermark records both occur at n/8.
			config{"dag-" + eng, []string{"-par", "3", "-sched", "dag", "-engine", eng}, true},
		)
	}

	for _, tc := range cfgs {
		tc := tc
		t.Run("dpv/"+tc.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			mkArgs := func(tag string, resume bool) []string {
				args := append([]string{}, tc.args...)
				args = append(args, "-checkpoint", filepath.Join(dir, tag+".dpvj"), "-checkpoint-every", every)
				if resume {
					args = append(args, "-resume")
				}
				if tc.core {
					args = append(args, "-core", filepath.Join(dir, tag+".core"),
						"-emit-lrat", filepath.Join(dir, tag+".lrat"))
				}
				return append(args, cnfPath, tracePath)
			}

			code, baseOut := runWithEnv(t, nil, dpv, mkArgs("base", false)...)
			if code != 0 {
				t.Fatalf("baseline exit %d:\n%s", code, baseOut)
			}
			out, crashes := crashUntilDone(t, dpv, mkArgs("crash", false), mkArgs("crash", true))
			if crashes == 0 {
				t.Fatal("run completed without a single injected crash — hook not biting")
			}
			if out != baseOut {
				t.Errorf("recovered stdout diverged after %d crashes:\n got %q\nwant %q", crashes, out, baseOut)
			}
			if tc.core {
				for _, ext := range []string{".core", ".lrat"} {
					base, err := os.ReadFile(filepath.Join(dir, "base"+ext))
					if err != nil {
						t.Fatal(err)
					}
					rec, err := os.ReadFile(filepath.Join(dir, "crash"+ext))
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(base, rec) {
						t.Errorf("recovered %s artifact is not byte-identical to the baseline", ext)
					}
				}
				// The emitted hinted proof must round-trip through lratcheck.
				if code, out := runWithEnv(t, nil, lratcheck, "-q", cnfPath, filepath.Join(dir, "base.lrat")); code != 0 {
					t.Errorf("lratcheck rejected the emitted proof (exit %d):\n%s", code, out)
				}
			}
			// A verdict was reached, so both journals must be gone.
			for _, tag := range []string{"base", "crash"} {
				if _, err := os.Stat(filepath.Join(dir, tag+".dpvj")); !os.IsNotExist(err) {
					t.Errorf("journal %s.dpvj still present after a verdict (err=%v)", tag, err)
				}
			}
			t.Logf("recovered across %d crashes", crashes)
		})
	}

	t.Run("dratcheck/backward", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		mkArgs := func(tag string, resume bool) []string {
			args := []string{"-backward",
				"-checkpoint", filepath.Join(dir, tag+".dpvj"), "-checkpoint-every", every,
				"-trim", filepath.Join(dir, tag+".drat"), "-core", filepath.Join(dir, tag+".core"),
				"-emit-lrat", filepath.Join(dir, tag+".lrat")}
			if resume {
				args = append(args, "-resume")
			}
			return append(args, cnfPath, dratPath)
		}
		code, baseOut := runWithEnv(t, nil, dratcheck, mkArgs("base", false)...)
		if code != 0 {
			t.Fatalf("baseline exit %d:\n%s", code, baseOut)
		}
		out, crashes := crashUntilDone(t, dratcheck, mkArgs("crash", false), mkArgs("crash", true))
		if crashes == 0 {
			t.Fatal("run completed without a single injected crash — hook not biting")
		}
		if out != baseOut {
			t.Errorf("recovered stdout diverged after %d crashes:\n got %q\nwant %q", crashes, out, baseOut)
		}
		for _, ext := range []string{".drat", ".core", ".lrat"} {
			base, err := os.ReadFile(filepath.Join(dir, "base"+ext))
			if err != nil {
				t.Fatal(err)
			}
			rec, err := os.ReadFile(filepath.Join(dir, "crash"+ext))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(base, rec) {
				t.Errorf("recovered %s artifact is not byte-identical to the baseline", ext)
			}
		}
		if _, err := os.Stat(filepath.Join(dir, "crash.dpvj")); !os.IsNotExist(err) {
			t.Errorf("journal still present after a verdict (err=%v)", err)
		}
		if code, lout := runWithEnv(t, nil, lratcheck, "-q", cnfPath, filepath.Join(dir, "base.lrat")); code != 0 {
			t.Errorf("lratcheck rejected the emitted proof (exit %d):\n%s", code, lout)
		}
		t.Logf("recovered across %d crashes", crashes)
	})
}

// TestCrashHookFiresAfterDurableAppend pins the crash point itself: a killed
// run must leave a journal whose records are readable up to (at least) the
// append the hook fired on — the record is durable before the SIGKILL.
func TestCrashHookFiresAfterDurableAppend(t *testing.T) {
	bins := buildCmds(t)
	dir := t.TempDir()
	cnfPath, tracePath, _ := writeChainFixtures(t, dir, 2000)
	j := filepath.Join(dir, "ck.dpvj")
	code, out := runWithEnv(t, []string{"DPV_FAULT_CRASH_AFTER_APPENDS=1"}, filepath.Join(bins, "dpv"),
		"-q", "-checkpoint", j, "-checkpoint-every", "100", cnfPath, tracePath)
	if code != -1 {
		t.Fatalf("exit code %d, want SIGKILL death\n%s", code, out)
	}
	data, err := os.ReadFile(j)
	if err != nil {
		t.Fatal(err)
	}
	markers := journalMarkers(t, data)
	if len(markers) != 1 || markers[0] != 'C' {
		t.Fatalf("journal after crash-at-append-1 holds records %q, want exactly one checkpoint", markers)
	}
}

// journalMarkers parses the record markers of a journal's complete frames.
func journalMarkers(t *testing.T, data []byte) []byte {
	t.Helper()
	const headerSize = 40
	if len(data) < headerSize {
		t.Fatalf("journal is %d bytes, shorter than its header", len(data))
	}
	var markers []byte
	rest := data[headerSize:]
	for len(rest) >= 5 {
		n := int(uint32(rest[1]) | uint32(rest[2])<<8 | uint32(rest[3])<<16 | uint32(rest[4])<<24)
		total := 5 + n + 4
		if len(rest) < total {
			break // torn tail
		}
		markers = append(markers, rest[0])
		rest = rest[total:]
	}
	return markers
}
