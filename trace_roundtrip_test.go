package repro

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/trace"
)

// Trace roundtrip smoke test (wired into `make check`): run the built dpv
// with -trace-out on a real verified instance, parse the emitted Chrome
// trace-event JSON back, and validate that the span tree matches the
// verifier's phase structure — parse-formula and verify under the root,
// build-db / check-loop / core-extract under verify — via the id/parent
// links the exporter embeds in event args.

func loadChromeTrace(t *testing.T, path string) *trace.ChromeTrace {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ct := &trace.ChromeTrace{}
	if err := json.Unmarshal(data, ct); err != nil {
		t.Fatalf("%s is not valid Chrome trace JSON: %v", path, err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatalf("%s holds no events", path)
	}
	return ct
}

// spanArg reads a numeric field out of an event's args (JSON numbers decode
// as float64).
func spanArg(e trace.ChromeEvent, key string) (uint64, bool) {
	v, ok := e.Args[key].(float64)
	return uint64(v), ok
}

func TestTraceRoundtrip(t *testing.T) {
	bins := buildCmds(t)
	unsatCNF, tracePath, _, _, _, _ := writeFixtures(t)
	dpv := filepath.Join(bins, "dpv")
	dir := t.TempDir()
	chromeOut := filepath.Join(dir, "run.trace.json")
	jsonlOut := filepath.Join(dir, "run.trace.jsonl")

	code, out := runCmd(t, dpv, "-trace-out", chromeOut, "-trace-jsonl", jsonlOut,
		unsatCNF, tracePath)
	if code != 0 {
		t.Fatalf("dpv exited %d:\n%s", code, out)
	}

	ct := loadChromeTrace(t, chromeOut)

	// Every event belongs to the single logical process.
	spans := map[string]trace.ChromeEvent{}
	threadNames := map[int64]string{}
	var counters, instants int
	for _, e := range ct.TraceEvents {
		if e.Pid != 1 {
			t.Fatalf("event %q has pid %d, want 1", e.Name, e.Pid)
		}
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				threadNames[e.Tid] = e.Args["name"].(string)
			}
		case "X":
			if e.Dur < 0 {
				t.Fatalf("span %q has negative duration %v", e.Name, e.Dur)
			}
			spans[e.Name] = e
		case "B":
			spans[e.Name] = e
		case "C":
			counters++
		case "i":
			instants++
		}
	}
	if threadNames[0] != "main" {
		t.Fatalf("thread 0 = %q, want main (threads: %v)", threadNames[0], threadNames)
	}
	if counters == 0 {
		t.Error("no counter events — BCP per-check deltas missing")
	}

	// The phase structure: total > {parse-formula, verify}, and
	// verify > {build-db, check-loop, core-extract}.
	for _, name := range []string{"total", "parse-formula", "verify",
		"build-db", "check-loop", "core-extract"} {
		if _, ok := spans[name]; !ok {
			t.Fatalf("span %q missing from trace (have %v)", name, spanNames(spans))
		}
	}
	requireParent := func(child, parent string) {
		t.Helper()
		cid, ok := spanArg(spans[child], "parent")
		if !ok {
			t.Fatalf("span %q carries no parent link", child)
		}
		pid, ok := spanArg(spans[parent], "id")
		if !ok {
			t.Fatalf("span %q carries no id", parent)
		}
		if cid != pid {
			t.Fatalf("span %q parent=%d, want %q id=%d", child, cid, parent, pid)
		}
	}
	requireParent("parse-formula", "total")
	requireParent("verify", "total")
	requireParent("build-db", "verify")
	requireParent("check-loop", "verify")
	requireParent("core-extract", "verify")

	// Phases are ordered: parsing completes before the check loop starts.
	pf, cl := spans["parse-formula"], spans["check-loop"]
	if pf.Ts+pf.Dur > cl.Ts {
		t.Errorf("parse-formula [%v,%v] overlaps check-loop start %v", pf.Ts, pf.Ts+pf.Dur, cl.Ts)
	}

	// JSONL dump: every line is a standalone JSON event.
	jf, err := os.Open(jsonlOut)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	var lines int
	sc := bufio.NewScanner(jf)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("JSONL line %d invalid: %v\n%s", lines+1, err, sc.Text())
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("JSONL dump is empty")
	}
}

func TestTraceRoundtripParallelWorkers(t *testing.T) {
	bins := buildCmds(t)
	unsatCNF, tracePath, _, _, _, _ := writeFixtures(t)
	dpv := filepath.Join(bins, "dpv")
	chromeOut := filepath.Join(t.TempDir(), "par.trace.json")

	code, out := runCmd(t, dpv, "-par", "2", "-trace-out", chromeOut, unsatCNF, tracePath)
	if code != 0 {
		t.Fatalf("dpv -par 2 exited %d:\n%s", code, out)
	}
	ct := loadChromeTrace(t, chromeOut)

	// Worker lanes get their own named threads; each worker span keeps its
	// parent link to verify-parallel despite living on another lane.
	var workerLanes int
	var parID uint64
	workerSpans := map[string]trace.ChromeEvent{}
	for _, e := range ct.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			if name, _ := e.Args["name"].(string); strings.HasPrefix(name, "worker-") {
				workerLanes++
			}
		}
		if (e.Ph == "X" || e.Ph == "B") && e.Name == "verify-parallel" {
			parID, _ = spanArg(e, "id")
		}
		if (e.Ph == "X" || e.Ph == "B") && strings.HasPrefix(e.Name, "worker-") {
			workerSpans[e.Name] = e
		}
	}
	if workerLanes != 2 {
		t.Fatalf("worker lanes = %d, want 2", workerLanes)
	}
	if len(workerSpans) != 2 {
		t.Fatalf("worker spans = %v, want 2", spanNames(workerSpans))
	}
	if parID == 0 {
		t.Fatal("verify-parallel span missing or without id")
	}
	for name, e := range workerSpans {
		if p, ok := spanArg(e, "parent"); !ok || p != parID {
			t.Fatalf("worker span %q parent=%d, want verify-parallel id=%d", name, p, parID)
		}
		if e.Tid == 0 {
			t.Fatalf("worker span %q landed on the main lane", name)
		}
	}
}

func spanNames(m map[string]trace.ChromeEvent) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	return names
}
