// Benchmarks regenerating the paper's experiments, one group per table plus
// the ablations DESIGN.md indexes. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers differ from the 500 MHz/640 MB 2002 testbed; the shapes
// the paper reports are asserted in the package tests and recorded in
// EXPERIMENTS.md.
package repro

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/bdd"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/dpll"
	"repro/internal/drat"
	"repro/internal/gen"
	"repro/internal/interp"
	"repro/internal/muscore"
	"repro/internal/proof"
	"repro/internal/resolution"
	"repro/internal/seq"
	"repro/internal/simplify"
	"repro/internal/solver"
)

// benchInstances is a representative slice of the main suite kept small
// enough for repeated benchmark iterations.
func benchInstances() []gen.Instance {
	return []gen.Instance{
		gen.Pipe(2, 6),
		gen.Control(6, 3),
		gen.Barrel(8, 3),
		gen.Longmult(6, 5),
		gen.AdderEquiv(16),
		gen.Counter(8, 40),
	}
}

func mustSolve(b *testing.B, f *cnf.Formula, opts solver.Options) *proof.Trace {
	b.Helper()
	st, tr, _, _, err := solver.Solve(f, opts)
	if err != nil {
		b.Fatal(err)
	}
	if st != solver.Unsat {
		b.Fatalf("status %v", st)
	}
	return tr
}

// --- Table 1: unsatisfiable core extraction ---------------------------------

// BenchmarkTable1 measures the full Table 1 pipeline (solve + Verify2 with
// core extraction) per instance.
func BenchmarkTable1(b *testing.B) {
	for _, inst := range benchInstances() {
		b.Run(inst.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := bench.RunInstance(inst, bench.DefaultSolverOptions(),
					core.Options{Mode: core.ModeCheckMarked})
				if err != nil {
					b.Fatal(err)
				}
				if len(run.Verify.Core) == 0 {
					b.Fatal("empty core")
				}
			}
		})
	}
}

// --- Table 2: proof verification --------------------------------------------

// BenchmarkTable2Verify isolates the verification cost of Table 2: the
// proof is produced once, each iteration verifies it (Verify2, watched
// literals).
func BenchmarkTable2Verify(b *testing.B) {
	for _, inst := range benchInstances() {
		tr := mustSolve(b, inst.F, bench.DefaultSolverOptions())
		b.Run(inst.Name, func(b *testing.B) {
			b.ReportMetric(float64(tr.NumLiterals()), "proof-lits")
			b.ReportMetric(float64(tr.TotalResolutions()), "res-nodes")
			for i := 0; i < b.N; i++ {
				res, err := core.Verify(inst.F, tr, core.Options{Mode: core.ModeCheckMarked})
				if err != nil || !res.OK {
					b.Fatalf("%v %+v", err, res)
				}
			}
		})
	}
}

// BenchmarkTable2Solve is the proof-generation side of Table 2 (the paper's
// "verification took 2-3x the time needed to generate the proof" claim is
// the ratio of Table2Verify to this).
func BenchmarkTable2Solve(b *testing.B) {
	for _, inst := range benchInstances() {
		b.Run(inst.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustSolve(b, inst.F, bench.DefaultSolverOptions())
			}
		})
	}
}

// --- Table 3: resolution proof growth ----------------------------------------

// BenchmarkTable3 runs the growing fifo family end to end, reporting the
// sizes whose ratio the table tracks.
func BenchmarkTable3(b *testing.B) {
	for _, inst := range []gen.Instance{gen.Fifo(8, 30), gen.Fifo(8, 60), gen.Fifo(8, 90)} {
		b.Run(inst.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := mustSolve(b, inst.F, bench.DefaultSolverOptions())
				b.ReportMetric(float64(tr.NumLiterals()), "proof-lits")
				b.ReportMetric(float64(tr.TotalResolutions()), "res-nodes")
			}
		})
	}
}

// --- Ablation: learning schemes (§5 locality/globality) ----------------------

func BenchmarkSchemes(b *testing.B) {
	inst := gen.Barrel(8, 2)
	for _, sc := range []solver.LearnScheme{solver.Learn1UIP, solver.LearnHybrid, solver.LearnDecision} {
		b.Run(sc.String(), func(b *testing.B) {
			opts := bench.DefaultSolverOptions()
			opts.Learn = sc
			for i := 0; i < b.N; i++ {
				tr := mustSolve(b, inst.F, opts)
				b.ReportMetric(float64(tr.TotalResolutions())/float64(tr.Len()), "res/clause")
			}
		})
	}
}

// --- Ablation: Proof_verification1 vs Proof_verification2 --------------------

func BenchmarkVerifyModes(b *testing.B) {
	inst := gen.Control(6, 3)
	tr := mustSolve(b, inst.F, bench.DefaultSolverOptions())
	for _, mode := range []core.Mode{core.ModeCheckAll, core.ModeCheckMarked} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Verify(inst.F, tr, core.Options{Mode: mode})
				if err != nil || !res.OK {
					b.Fatalf("%v %+v", err, res)
				}
			}
		})
	}
}

// --- Ablation: verifier BCP engines ------------------------------------------

func BenchmarkBCPEngines(b *testing.B) {
	inst := gen.Barrel(8, 3)
	tr := mustSolve(b, inst.F, bench.DefaultSolverOptions())
	for _, eng := range []core.EngineKind{core.EngineWatched, core.EngineCounting} {
		b.Run(eng.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Verify(inst.F, tr, core.Options{Engine: eng})
				if err != nil || !res.OK {
					b.Fatalf("%v %+v", err, res)
				}
			}
		})
	}
}

// --- Ablation: proof trimming --------------------------------------------------

func BenchmarkTrim(b *testing.B) {
	inst := gen.AdderEquiv(16)
	tr := mustSolve(b, inst.F, bench.DefaultSolverOptions())
	res, err := core.Verify(inst.F, tr, core.Options{Mode: core.ModeCheckMarked})
	if err != nil || !res.OK {
		b.Fatalf("%v %+v", err, res)
	}
	b.Run("trim+reverify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trimmed, err := core.Trim(tr, res)
			if err != nil {
				b.Fatal(err)
			}
			r2, err := core.Verify(inst.F, trimmed, core.Options{Mode: core.ModeCheckAll})
			if err != nil || !r2.OK {
				b.Fatalf("%v %+v", err, r2)
			}
		}
	})
}

// --- Ablation: resolution-graph checking (the baseline format) ---------------

func BenchmarkResolutionCheck(b *testing.B) {
	inst := gen.AdderEquiv(12)
	s, err := solver.NewFromFormula(inst.F, solver.Options{RecordChains: true})
	if err != nil {
		b.Fatal(err)
	}
	if s.Run() != solver.Unsat {
		b.Fatal("not unsat")
	}
	rp, err := resolution.FromSolverRun(inst.F, s.Trace(), s.Chains())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rp.InternalNodes()), "internal-nodes")
	for i := 0; i < b.N; i++ {
		if err := rp.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: clause minimization (post-2003 extension) ---------------------

func BenchmarkMinimizeLearned(b *testing.B) {
	inst := gen.Control(6, 3)
	for _, min := range []bool{false, true} {
		name := "off"
		if min {
			name = "on"
		}
		b.Run("minimize-"+name, func(b *testing.B) {
			opts := bench.DefaultSolverOptions()
			opts.MinimizeLearned = min
			for i := 0; i < b.N; i++ {
				tr := mustSolve(b, inst.F, opts)
				b.ReportMetric(float64(tr.NumLiterals())/float64(tr.Len()), "lits/clause")
			}
		})
	}
}

// --- Ablation: preprocessing ---------------------------------------------------

func BenchmarkSimplify(b *testing.B) {
	inst := gen.Counter(8, 40)
	b.Run("preprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := simplify.Simplify(inst.F, simplify.Default())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.F.NumClauses()), "clauses-after")
		}
	})
	b.Run("solve-raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustSolve(b, inst.F, bench.DefaultSolverOptions())
		}
	})
	b.Run("solve-preprocessed", func(b *testing.B) {
		res, err := simplify.Simplify(inst.F, simplify.Default())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustSolve(b, res.F, bench.DefaultSolverOptions())
		}
	})
}

// --- Ablation: unsat-core methods ----------------------------------------------

func BenchmarkCoreMethods(b *testing.B) {
	inst := gen.AdderEquiv(16)
	b.Run("verification-core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run, err := bench.RunInstance(inst, bench.DefaultSolverOptions(),
				core.Options{Mode: core.ModeCheckMarked})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(run.Verify.Core)), "core-clauses")
		}
	})
	b.Run("assumption-core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ac, err := muscore.Extract(inst.F, bench.DefaultSolverOptions())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(ac)), "core-clauses")
		}
	})
}

// --- Micro: binary proof format -------------------------------------------------

func BenchmarkBinaryProofIO(b *testing.B) {
	inst := gen.Barrel(8, 2)
	tr := mustSolve(b, inst.F, bench.DefaultSolverOptions())
	var bin []byte
	{
		w := &writeBuffer{}
		if err := proof.WriteBinary(w, tr); err != nil {
			b.Fatal(err)
		}
		bin = w.data
	}
	b.Run("write", func(b *testing.B) {
		b.ReportMetric(float64(len(bin)), "bytes")
		for i := 0; i < b.N; i++ {
			w := &writeBuffer{data: make([]byte, 0, len(bin))}
			if err := proof.WriteBinary(w, tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := proof.ReadBinary(bytes.NewReader(bin)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Lineage: DRUP forward vs backward checking --------------------------------

func BenchmarkDRUPChecking(b *testing.B) {
	inst := gen.Control(6, 2)
	rec := drat.NewRecorder()
	opts := bench.DefaultSolverOptions()
	opts.MaxLearnedFactor = 0.2
	opts.OnLearn = rec.Learn
	opts.OnDelete = rec.Delete
	st, _, _, _, err := solver.Solve(inst.F, opts)
	if err != nil || st != solver.Unsat {
		b.Fatalf("%v %v", st, err)
	}
	p := rec.Proof()
	b.Run("forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := drat.Verify(inst.F, p)
			if err != nil || !res.OK {
				b.Fatalf("%v %+v", err, res)
			}
		}
	})
	b.Run("backward-marked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, trimmed, _, err := drat.VerifyBackward(inst.F, p)
			if err != nil || !res.OK {
				b.Fatalf("%v %+v", err, res)
			}
			b.ReportMetric(float64(trimmed.Additions()), "trimmed-additions")
		}
	})
}

// --- Application: interpolation and model checking -----------------------------

func BenchmarkInterpolation(b *testing.B) {
	inst := gen.AdderEquiv(12)
	s, err := solver.NewFromFormula(inst.F, solver.Options{RecordChains: true})
	if err != nil {
		b.Fatal(err)
	}
	if s.Run() != solver.Unsat {
		b.Fatal("not unsat")
	}
	rp, err := resolution.FromSolverRun(inst.F, s.Trace(), s.Chains())
	if err != nil {
		b.Fatal(err)
	}
	sides := interp.SplitBySources(inst.F.NumClauses(), inst.F.NumClauses()/2)
	for _, sys := range []interp.System{interp.McMillan, interp.Pudlak} {
		b.Run(sys.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ip, err := interp.ComputeWith(rp, sides, sys)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(ip.Circuit.NumGates()), "interp-gates")
			}
		})
	}
}

func BenchmarkModelChecking(b *testing.B) {
	mk := func() *seq.Design {
		c := circuit.New()
		state := c.InputWord(4)
		en := c.Input()
		inc := c.Inc(state)
		next := c.MuxWord(en, inc, state)
		return &seq.Design{
			C:        c,
			Init:     make([]bool, 4),
			Next:     next,
			Property: c.NeqWord(state, c.ConstWord(4, 12)),
		}
	}
	b.Run("bmc-k10-holds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := seq.BMC(mk(), 10, bench.DefaultSolverOptions())
			if err != nil || res.Verdict != seq.Holds {
				b.Fatalf("%v %+v", err, res)
			}
		}
	})
	b.Run("bmc-k14-cex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := seq.BMC(mk(), 14, bench.DefaultSolverOptions())
			if err != nil || res.Verdict != seq.Violated {
				b.Fatalf("%v %+v", err, res)
			}
		}
	})
}

// --- Parallel verification and portfolio ----------------------------------------

func BenchmarkParallelVerify(b *testing.B) {
	inst := gen.Control(6, 3)
	tr := mustSolve(b, inst.F, bench.DefaultSolverOptions())
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.VerifyParallel(inst.F, tr, core.EngineWatched, workers)
				if err != nil || !res.OK {
					b.Fatalf("%v %+v", err, res)
				}
			}
		})
	}
}

func BenchmarkPortfolio(b *testing.B) {
	inst := gen.PHP(7)
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustSolve(b, inst.F, bench.DefaultSolverOptions())
		}
	})
	b.Run("portfolio-3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := solver.Portfolio(inst.F, []solver.Options{
				{Learn: solver.LearnHybrid},
				{Learn: solver.Learn1UIP},
				{Learn: solver.LearnHybrid, Heuristic: solver.HeurVSIDS},
			})
			if err != nil || res.Status != solver.Unsat {
				b.Fatalf("%v %+v", err, res)
			}
		}
	})
}

// --- Baselines: the displaced technologies --------------------------------------

func BenchmarkBaselines(b *testing.B) {
	inst := gen.PHP(6)
	b.Run("cdcl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustSolve(b, inst.F, bench.DefaultSolverOptions())
		}
	})
	b.Run("dpll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, _, _, err := dpll.Solve(inst.F, 0)
			if err != nil || st != dpll.Unsat {
				b.Fatalf("%v %v", st, err)
			}
		}
	})
	b.Run("bdd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			unsat, err := bdd.Unsat(inst.F, 500_000)
			if err != nil || !unsat {
				b.Fatalf("%v %v", unsat, err)
			}
		}
	})
}

// --- Micro: solver and BCP primitives ----------------------------------------

func BenchmarkSolvePHP(b *testing.B) {
	inst := gen.PHP(7)
	for i := 0; i < b.N; i++ {
		mustSolve(b, inst.F, bench.DefaultSolverOptions())
	}
}

func BenchmarkProofIO(b *testing.B) {
	inst := gen.Barrel(8, 2)
	tr := mustSolve(b, inst.F, bench.DefaultSolverOptions())
	var buf []byte
	{
		w := &writeBuffer{}
		if err := proof.Write(w, tr); err != nil {
			b.Fatal(err)
		}
		buf = w.data
	}
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := &writeBuffer{data: make([]byte, 0, len(buf))}
			if err := proof.Write(w, tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := proof.ReadString(string(buf)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type writeBuffer struct{ data []byte }

func (w *writeBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}
