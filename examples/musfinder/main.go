// Musfinder: compare the three unsat-core notions the repository
// implements on one instance, then minimize down to a MUS (minimal
// unsatisfiable subset) with incremental assumption-based solving.
//
//   - the paper's core: clauses of F marked during proof verification (§4);
//   - the assumption core: selector literals surviving final-conflict
//     analysis;
//   - the resolution core: sources reachable from the empty clause in the
//     expanded resolution graph.
//
// All three are unsatisfiable subsets; the MUS is a subset of each
// candidate it is seeded from and cannot shrink further.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/muscore"
	"repro/internal/resolution"
	"repro/internal/solver"
)

func main() {
	inst := gen.Longmult(5, 4)
	f := inst.F
	fmt.Printf("instance %s: %d clauses\n\n", inst.Name, f.NumClauses())

	// 1. Verification-based core (the paper's by-product).
	st, tr, _, _, err := solver.Solve(f, solver.Options{})
	if err != nil || st != solver.Unsat {
		log.Fatalf("solve: %v %v", st, err)
	}
	vres, err := core.Verify(f, tr, core.Options{Mode: core.ModeCheckMarked})
	if err != nil || !vres.OK {
		log.Fatalf("verify: %v", err)
	}
	fmt.Printf("verification core:  %4d clauses (%.1f%%)\n",
		len(vres.Core), vres.CorePct(f.NumClauses()))

	// 2. Assumption-based core.
	ac, err := muscore.Extract(f, solver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assumption core:    %4d clauses (%.1f%%)\n",
		len(ac), 100*float64(len(ac))/float64(f.NumClauses()))

	// 3. Resolution-graph-reachable core.
	s, err := solver.NewFromFormula(f, solver.Options{RecordChains: true})
	if err != nil {
		log.Fatal(err)
	}
	if s.Run() != solver.Unsat {
		log.Fatal("not unsat")
	}
	rp, err := resolution.FromSolverRun(f, s.Trace(), s.Chains())
	if err != nil {
		log.Fatal(err)
	}
	g, err := rp.Expand()
	if err != nil {
		log.Fatal(err)
	}
	reach := g.Reachable()
	fmt.Printf("resolution core:    %4d clauses (%.1f%%), graph depth %d\n",
		reach.SourcesTouched, 100*float64(reach.SourcesTouched)/float64(f.NumClauses()),
		reach.Depth)

	// 4. MUS: minimal unsatisfiable subset, seeded from the assumption core.
	mus, err := muscore.Minimize(f, ac, solver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MUS (minimal):      %4d clauses (%.1f%%)\n",
		len(mus), 100*float64(len(mus))/float64(f.NumClauses()))

	// The MUS really is unsatisfiable and everything above contains it in
	// spirit: re-solve to confirm.
	st2, _, _, _, err := solver.Solve(f.Restrict(mus), solver.Options{})
	if err != nil || st2 != solver.Unsat {
		log.Fatalf("MUS check failed: %v %v", st2, err)
	}
	fmt.Println("\nMUS re-solved: UNSAT confirmed; no clause of it can be dropped.")
}
