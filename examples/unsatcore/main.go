// Unsatcore: extract the unsatisfiable core of an equivalence-checking
// miter buried in irrelevant constraints — the paper's §4 by-product,
// "the extraction of an unsatisfiable core of the formula can help to
// understand the cause of unsatisfiability".
//
// We build a miter of two adder implementations (UNSAT because they are
// equivalent), then append a layer of satisfiable "environment" clauses
// over fresh variables. The verifier's core isolates the miter clauses and
// discards the environment; iterating to a fixpoint shrinks it further.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/solver"
)

func main() {
	inst := gen.AdderEquiv(8)
	miterClauses := inst.F.NumClauses()

	// Bury the miter in environment clauses over fresh variables: a chain
	// of implications that is trivially satisfiable and logically
	// irrelevant to the contradiction.
	f := inst.F.Clone()
	base := f.NumVars
	for i := 0; i < 300; i++ {
		f.Add(base+i+1, -(base + i + 2))
		f.Add(base+i+1, base+i+3)
	}
	fmt.Printf("formula: %d clauses (%d miter + %d environment)\n",
		f.NumClauses(), miterClauses, f.NumClauses()-miterClauses)

	status, trace, _, _, err := solver.Solve(f, solver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if status != solver.Unsat {
		log.Fatalf("unexpected status %v", status)
	}

	res, err := core.Verify(f, trace, core.Options{Mode: core.ModeCheckMarked})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatalf("proof rejected at clause %d", res.FailedIndex)
	}

	inEnv := 0
	for _, i := range res.Core {
		if i >= miterClauses {
			inEnv++
		}
	}
	fmt.Printf("first core: %d clauses (%.1f%%), %d from the environment\n",
		len(res.Core), res.CorePct(f.NumClauses()), inEnv)

	// Iterate to a fixpoint: re-solve the core until it stops shrinking.
	cur := core.CoreFormula(f, res)
	for round := 1; ; round++ {
		st, tr, _, _, err := solver.Solve(cur, solver.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if st != solver.Unsat {
			log.Fatalf("core became satisfiable?! (round %d)", round)
		}
		r, err := core.Verify(cur, tr, core.Options{Mode: core.ModeCheckMarked})
		if err != nil || !r.OK {
			log.Fatalf("round %d: verification failed: %v", round, err)
		}
		next := core.CoreFormula(cur, r)
		fmt.Printf("round %d: %d -> %d clauses\n", round, cur.NumClauses(), next.NumClauses())
		if next.NumClauses() == cur.NumClauses() {
			break
		}
		cur = next
	}
	fmt.Printf("fixpoint core: %d of %d original clauses\n", cur.NumClauses(), f.NumClauses())
}
