// Buggysolver: the paper's motivating scenario — "due to the growing
// complexity of the state-of-the-art algorithms it is unlikely that a
// SAT-solver will be free of bugs. Hence it is important to run an
// independent check of the information returned by a SAT-solver so that the
// latter can be used even if it is buggy."
//
// We simulate three solver bugs by corrupting a correct proof in three
// ways and show that the verifier catches each one, pointing at the exact
// questionable clause.
package main

import (
	"fmt"
	"log"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/proof"
	"repro/internal/solver"
)

func main() {
	inst := gen.PHP(6)
	f := inst.F

	status, trace, _, _, err := solver.Solve(f, solver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if status != solver.Unsat {
		log.Fatalf("unexpected status %v", status)
	}
	fmt.Printf("healthy solver: %d conflict clauses\n", trace.Len())

	check := func(label string, t *proof.Trace) {
		res, err := core.Verify(f, t, core.Options{Mode: core.ModeCheckAll})
		if err != nil {
			fmt.Printf("%-28s -> structurally invalid: %v\n", label, err)
			return
		}
		if res.OK {
			fmt.Printf("%-28s -> ACCEPTED (tested %d clauses)\n", label, res.Tested)
		} else {
			fmt.Printf("%-28s -> REJECTED at proof clause %d: %v\n",
				label, res.FailedIndex, res.FailedClause)
		}
	}

	check("original proof", trace)

	// Bug 1: a learned clause lost a literal (e.g. a bad backtracking
	// implementation dropped it). The shortened clause claims more than the
	// solver derived.
	bug1 := trace.Clone()
	for i, c := range bug1.Clauses {
		if len(c) >= 3 {
			bug1.Clauses[i] = append(cnf.Clause(nil), c[:len(c)-1]...)
			// Replace the rest of the clause with a fresh variable so the
			// remainder is genuinely unjustified rather than accidentally
			// still implied (CDCL proofs are full of redundancy).
			bug1.Clauses[i][len(bug1.Clauses[i])-1] = cnf.PosLit(cnf.Var(f.NumVars + 5))
			break
		}
	}
	check("corrupted clause literals", bug1)

	// Bug 2: the solver stopped early and fabricated a final conflicting
	// pair over an unconstrained variable. Note the fabrication must come
	// with a truncated prefix to be caught: a fabricated pair on top of a
	// complete refutation is still RUP-derivable and hence a CORRECT proof
	// — exactly the paper's remark that the procedure "may validate a
	// correct proof produced by a buggy SAT-solver".
	bug2 := &proof.Trace{Clauses: append([]cnf.Clause(nil), trace.Clauses[:3]...)}
	fresh := cnf.Var(f.NumVars + 9)
	bug2.Clauses = append(bug2.Clauses,
		cnf.Clause{cnf.PosLit(fresh)},
		cnf.Clause{cnf.NegLit(fresh)})
	check("fabricated final pair", bug2)

	// Bug 3: the trace was truncated (lost buffered writes) and no longer
	// ends in a final conflicting pair — structurally invalid.
	bug3 := trace.Clone()
	bug3.Clauses = bug3.Clauses[:bug3.Len()-2]
	if bug3.Resolutions != nil {
		bug3.Resolutions = bug3.Resolutions[:len(bug3.Clauses)]
	}
	check("truncated trace", bug3)
}
