// Quickstart: solve an unsatisfiable CNF formula, obtain the conflict-clause
// proof, and verify it with the independent checker — the complete
// solver-then-verifier workflow of the paper in ~40 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/solver"
)

func main() {
	// (x1 v x2) (x1 v ~x2) (~x1 v x3) (~x1 v ~x3) — a tiny UNSAT formula.
	f := cnf.NewFormula(0).
		Add(1, 2).
		Add(1, -2).
		Add(-1, 3).
		Add(-1, -3)

	// Solve. For UNSAT instances the solver returns the chronologically
	// ordered trace of every conflict clause it deduced, ending in the
	// final conflicting pair.
	status, trace, _, stats, err := solver.Solve(f, solver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("status:", status)
	fmt.Println("conflicts:", stats.Conflicts)
	fmt.Println("proof clauses:")
	for i, c := range trace.Clauses {
		fmt.Printf("  %d: %v\n", i, c)
	}

	// Verify with the independent checker (Proof_verification2): each
	// marked conflict clause is falsified and BCP must hit a conflict.
	res, err := core.Verify(f, trace, core.Options{Mode: core.ModeCheckMarked})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatalf("the solver is buggy: proof clause %d is not implied", res.FailedIndex)
	}
	fmt.Printf("proof verified: tested %d/%d clauses (%.0f%%)\n",
		res.Tested, res.ProofClauses, res.TestedPct())
	fmt.Printf("unsatisfiable core: clauses %v (%d of %d)\n",
		res.Core, len(res.Core), f.NumClauses())
}
