// BMC: bounded model checking and k-induction on a small sequential
// design, with every UNSAT answer backed by a proof that the paper's
// verifier independently checked — the end-to-end workflow the paper's
// BMC benchmark formulas (barrel, longmult, fifo, w10) came from.
//
// The design: a 4-bit counter with an enable input and a synchronous
// clear. Property 1 ("counter never reaches 12") is violated and BMC
// produces a replayable trace. Property 2 ("the counter's value never
// exceeds 15") is trivially true and 1-inductive.
package main

import (
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/seq"
	"repro/internal/solver"
)

func counterDesign(target uint64) *seq.Design {
	c := circuit.New()
	state := c.InputWord(4) // latches
	en := c.Input()         // primary inputs
	clr := c.Input()
	inc := c.Inc(state)
	stepped := c.MuxWord(en, inc, state)
	next := c.MuxWord(clr, c.ConstWord(4, 0), stepped)
	return &seq.Design{
		C:        c,
		Init:     make([]bool, 4),
		Next:     next,
		Property: c.NeqWord(state, c.ConstWord(4, target)),
	}
}

func main() {
	d := counterDesign(12)

	fmt.Println("property: counter != 12, bound 10")
	res, err := seq.BMC(d, 10, solver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  verdict: %v (proof checked: %v)\n", res.Verdict, res.ProofChecked)

	fmt.Println("property: counter != 12, bound 14")
	res, err = seq.BMC(d, 14, solver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  verdict: %v, counterexample of %d steps\n", res.Verdict, len(res.Trace))
	if res.Verdict == seq.Violated {
		var inputs [][]bool
		for _, st := range res.Trace {
			inputs = append(inputs, st.Inputs)
		}
		_, good, err := d.Simulate(inputs)
		if err != nil {
			log.Fatal(err)
		}
		bad := -1
		for t, g := range good {
			if !g {
				bad = t
				break
			}
		}
		fmt.Printf("  replayed on the reference simulator: property fails at step %d\n", bad)
	}

	// An inductive invariant: two redundant copies of the counter agree.
	c := circuit.New()
	a := c.InputWord(4)
	b := c.InputWord(4)
	en := c.Input()
	nextA := c.MuxWord(en, c.Inc(a), a)
	nextB := c.MuxWord(en, c.Inc(b), b)
	dup := &seq.Design{
		C:        c,
		Init:     make([]bool, 8),
		Next:     append(nextA, nextB...),
		Property: c.EqWord(a, b),
	}
	fmt.Println("property: redundant counters stay equal (k-induction, k=1)")
	res, err = seq.KInduction(dup, 1, solver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  verdict: %v for ALL bounds (proof checked: %v)\n", res.Verdict, res.ProofChecked)
}
