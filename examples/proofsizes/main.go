// Proofsizes: reproduce the paper's §5 size comparison on one instance —
// conflict-clause proofs versus resolution-graph proofs under "local"
// (1UIP) and "global" (decision) learning schemes.
//
// The run also builds the full resolution graph from the solver's recorded
// chains and checks it with the resolution checker, demonstrating the
// baseline proof format the paper argues against storing.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/resolution"
	"repro/internal/solver"
)

func main() {
	inst := gen.Barrel(8, 2)
	fmt.Printf("instance %s: %d vars, %d clauses\n\n",
		inst.Name, inst.F.NumVars, inst.F.NumClauses())

	for _, scheme := range []solver.LearnScheme{solver.Learn1UIP, solver.LearnDecision} {
		s, err := solver.NewFromFormula(inst.F, solver.Options{
			Learn:        scheme,
			RecordChains: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if st := s.Run(); st != solver.Unsat {
			log.Fatalf("%v: status %v", scheme, st)
		}
		tr := s.Trace()

		// The conflict-clause proof must verify...
		res, err := core.Verify(inst.F, tr, core.Options{})
		if err != nil || !res.OK {
			log.Fatalf("%v: conflict-clause proof rejected: %v", scheme, err)
		}
		// ...and the expanded resolution graph must verify too.
		rp, err := resolution.FromSolverRun(inst.F, tr, s.Chains())
		if err != nil {
			log.Fatal(err)
		}
		if err := rp.Verify(); err != nil {
			log.Fatalf("%v: resolution proof rejected: %v", scheme, err)
		}

		lits := tr.NumLiterals()
		nodes := rp.InternalNodes()
		fmt.Printf("scheme %-8v  conflict clauses: %6d   proof literals: %8d\n",
			scheme, tr.Len(), lits)
		fmt.Printf("                resolution graph: %6d internal nodes (checked OK)\n", nodes)
		fmt.Printf("                avg resolutions/clause: %.1f   size ratio (lits/nodes): %.0f%%\n\n",
			float64(nodes)/float64(tr.Len()), 100*float64(lits)/float64(nodes))
	}
	fmt.Println("\"global\" decision-scheme clauses need far more resolutions per clause:")
	fmt.Println("storing the conflict clauses beats storing the resolution graph exactly")
	fmt.Println("when clauses are global — the paper's §5 complementarity argument.")
}
