// Interpolate: compute a Craig interpolant from a resolution proof — the
// application (McMillan 2003) that made storing proofs of unsatisfiability
// industrially important, and the reason solvers like the paper's needed
// proof logging in the first place.
//
// Setup: A = "two 4-bit inputs are equal and feed a ripple adder",
// B = "the same inputs are equal and feed a carry-select adder, and the two
// sums differ". A ∧ B is UNSAT (equal inputs give equal sums). The
// interpolant derived from the proof is a predicate over only the shared
// variables summarizing *why* A blocks B.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cnf"
	"repro/internal/interp"
	"repro/internal/resolution"
	"repro/internal/solver"
)

func main() {
	// A simple partitioned UNSAT formula over shared variables x1..x4:
	// A: chain forcing s = x1 XOR x2 (via auxiliary a-vars)
	// B: asserts the same XOR computed its own way differs.
	f := cnf.NewFormula(0)
	// A: aux variable 5 = x1 XOR x2 (Tseitin clauses), and assert 5.
	f.Add(-5, 1, 2).Add(-5, -1, -2).Add(5, 1, -2).Add(5, -1, 2)
	f.Add(5)
	nA := f.NumClauses()
	// B: aux variable 6 = x1 XOR x2 its own way, and assert NOT 6.
	f.Add(-6, 1, 2).Add(-6, -1, -2).Add(6, 1, -2).Add(6, -1, 2)
	f.Add(-6)
	nTotal := f.NumClauses()

	s, err := solver.NewFromFormula(f, solver.Options{RecordChains: true})
	if err != nil {
		log.Fatal(err)
	}
	if st := s.Run(); st != solver.Unsat {
		log.Fatalf("status %v", st)
	}
	fmt.Printf("A has %d clauses, B has %d; A ∧ B is UNSAT (%d conflict clauses)\n",
		nA, nTotal-nA, s.Trace().Len())

	rp, err := resolution.FromSolverRun(f, s.Trace(), s.Chains())
	if err != nil {
		log.Fatal(err)
	}
	if err := rp.Verify(); err != nil {
		log.Fatal(err)
	}

	ip, err := interp.Compute(rp, interp.SplitBySources(nTotal, nA))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpolant over shared variables %v, %d gates\n",
		ip.SharedVars, ip.Circuit.NumGates())

	// Demonstrate the Craig properties on random assignments.
	rng := rand.New(rand.NewSource(1))
	okA, okB := 0, 0
	for i := 0; i < 2000; i++ {
		assign := make([]bool, f.NumVars)
		for v := range assign {
			assign[v] = rng.Intn(2) == 0
		}
		satA, satB := true, true
		for j, c := range f.Clauses {
			if !cnf.EvalClause(c, assign) {
				if j < nA {
					satA = false
				} else {
					satB = false
				}
			}
		}
		iv, err := ip.Eval(assign)
		if err != nil {
			log.Fatal(err)
		}
		if satA {
			okA++
			if !iv {
				log.Fatalf("violation: A holds but interpolant is false under %v", assign)
			}
		}
		if satB && iv {
			log.Fatalf("violation: interpolant and B both hold under %v", assign)
		}
		if satB {
			okB++
		}
	}
	fmt.Printf("checked 2000 random assignments: A⟹I held on %d A-models; I∧B never held (%d B-models seen)\n",
		okA, okB)
	fmt.Println("\nThe interpolant mentions only shared variables — an over-approximation")
	fmt.Println("of A precise enough to contradict B, extracted purely from the proof.")
}
