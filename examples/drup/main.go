// Drup: the lineage demo. The paper's conflict-clause trace grew into the
// DRUP/DRAT format used by SAT competitions; the only additions were
// deletion lines (so the checker's database tracks the solver's) and the
// RAT generalization. This example produces a deletion-aware proof from a
// solver run, checks it forward (RUP+RAT) and backward (drat-trim's
// algorithm — which is exactly the paper's Proof_verification2 plus
// deletion handling), and shows the backward pass's by-products: the
// trimmed proof and the unsatisfiable core.
package main

import (
	"fmt"
	"log"

	"repro/internal/drat"
	"repro/internal/gen"
	"repro/internal/solver"
)

func main() {
	inst := gen.Control(6, 2)
	fmt.Printf("instance %s: %d clauses\n", inst.Name, inst.F.NumClauses())

	rec := drat.NewRecorder()
	opts := solver.Options{
		MaxLearnedFactor: 0.2, // aggressive deletion to make the point
		OnLearn:          rec.Learn,
		OnDelete:         rec.Delete,
	}
	st, _, _, stats, err := solver.Solve(inst.F, opts)
	if err != nil || st != solver.Unsat {
		log.Fatalf("solve: %v %v", st, err)
	}
	p := rec.Proof()
	fmt.Printf("DRUP proof: %d additions, %d deletions (solver deleted %d clauses)\n",
		p.Additions(), p.Deletions(), stats.Deleted)

	fres, err := drat.Verify(inst.F, p)
	if err != nil || !fres.OK {
		log.Fatalf("forward check failed: %v %+v", err, fres)
	}
	fmt.Printf("forward check:  OK (%d propagations, %d RAT fallbacks)\n",
		fres.Propagations, fres.RATChecks)

	bres, trimmed, core, err := drat.VerifyBackward(inst.F, p)
	if err != nil || !bres.OK {
		log.Fatalf("backward check failed: %v %+v", err, bres)
	}
	fmt.Printf("backward check: OK (%d propagations)\n", bres.Propagations)
	fmt.Printf("  trimmed proof: %d of %d additions kept (%.1f%%)\n",
		trimmed.Additions(), p.Additions(),
		100*float64(trimmed.Additions())/float64(p.Additions()))
	fmt.Printf("  unsat core:    %d of %d original clauses (%.1f%%)\n",
		len(core), inst.F.NumClauses(),
		100*float64(len(core))/float64(inst.F.NumClauses()))

	// The trimmed proof still verifies.
	tres, err := drat.Verify(inst.F, trimmed)
	if err != nil || !tres.OK {
		log.Fatalf("trimmed proof rejected: %v %+v", err, tres)
	}
	fmt.Println("trimmed proof re-verified forward: OK")
	fmt.Println("\nbackward checking with marking is the paper's Proof_verification2;")
	fmt.Println("deletion lines are the only thing DRUP added on top.")
}
