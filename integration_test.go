package repro

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/drat"
	"repro/internal/gen"
	"repro/internal/interp"
	"repro/internal/muscore"
	"repro/internal/proof"
	"repro/internal/resolution"
	"repro/internal/simplify"
	"repro/internal/solver"
)

// TestFullPipeline drives every major subsystem over one realistic
// equivalence-checking instance, end to end:
//
//	generate → preprocess → solve (recording everything) →
//	verify (both procedures × both engines, sequential and parallel) →
//	trim → re-verify → resolution-graph check → interpolate (both systems) →
//	DRUP forward/backward → unsat cores by three methods → proof IO round trips.
func TestFullPipeline(t *testing.T) {
	inst := gen.AdderEquiv(10)
	f := inst.F

	// Preprocessing must preserve unsatisfiability.
	pre, err := simplify.Simplify(f, simplify.Default())
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Unsat {
		st, _, _, _, err := solver.Solve(pre.F, solver.Options{})
		if err != nil || st != solver.Unsat {
			t.Fatalf("preprocessed formula: %v %v", st, err)
		}
	}

	// Solve the original with chains and DRUP recording.
	rec := drat.NewRecorder()
	s, err := solver.NewFromFormula(f, solver.Options{
		RecordChains: true,
		OnLearn:      rec.Learn,
		OnDelete:     rec.Delete,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Run(); st != solver.Unsat {
		t.Fatalf("status %v", st)
	}
	tr := s.Trace()
	if tr.Terminates() == proof.TermNone {
		t.Fatal("trace does not terminate")
	}

	// All four sequential verifier configurations accept.
	var marked *core.Result
	for _, mode := range []core.Mode{core.ModeCheckAll, core.ModeCheckMarked} {
		for _, eng := range []core.EngineKind{core.EngineWatched, core.EngineCounting} {
			res, err := core.Verify(f, tr, core.Options{Mode: mode, Engine: eng})
			if err != nil || !res.OK {
				t.Fatalf("%v/%v: %v %+v", mode, eng, err, res)
			}
			if mode == core.ModeCheckMarked && eng == core.EngineWatched {
				marked = res
			}
		}
	}
	// Parallel verification agrees.
	par, err := core.VerifyParallel(f, tr, core.EngineWatched, 4)
	if err != nil || !par.OK {
		t.Fatalf("parallel: %v %+v", err, par)
	}

	// Trimmed proof re-verifies; the core re-solves UNSAT.
	trimmed, err := core.Trim(tr, marked)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.Verify(f, trimmed, core.Options{Mode: core.ModeCheckAll})
	if err != nil || !res2.OK {
		t.Fatalf("trimmed: %v %+v", err, res2)
	}
	coreF := core.CoreFormula(f, marked)
	if st, _, _, _, _ := solver.Solve(coreF, solver.Options{}); st != solver.Unsat {
		t.Fatalf("verification core not UNSAT: %v", st)
	}

	// The recorded chains expand to a checkable resolution-graph proof
	// deriving exactly the trace clauses.
	rp, err := resolution.FromSolverRun(f, tr, s.Chains())
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Verify(); err != nil {
		t.Fatal(err)
	}
	g, err := rp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	reach := g.Reachable()
	if st, _, _, _, _ := solver.Solve(f.Restrict(reach.SourceIDs), solver.Options{}); st != solver.Unsat {
		t.Fatalf("resolution core not UNSAT: %v", st)
	}

	// Interpolation under both systems over an arbitrary split.
	sides := interp.SplitBySources(f.NumClauses(), f.NumClauses()/2)
	for _, sys := range []interp.System{interp.McMillan, interp.Pudlak} {
		ip, err := interp.ComputeWith(rp, sides, sys)
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if ip.Circuit.NumGates() == 0 {
			t.Fatalf("%v: empty interpolant circuit", sys)
		}
	}

	// DRUP: the recorded deletion-aware proof checks forward and backward;
	// the backward core is UNSAT.
	dres, err := drat.Verify(f, rec.Proof())
	if err != nil || !dres.OK {
		t.Fatalf("drup forward: %v %+v", err, dres)
	}
	bres, dtrimmed, dcore, err := drat.VerifyBackward(f, rec.Proof())
	if err != nil || !bres.OK {
		t.Fatalf("drup backward: %v %+v", err, bres)
	}
	if dtrimmed.Additions() == 0 {
		t.Fatal("backward trim produced nothing")
	}
	if st, _, _, _, _ := solver.Solve(f.Restrict(dcore), solver.Options{}); st != solver.Unsat {
		t.Fatalf("drup core not UNSAT: %v", st)
	}

	// Assumption-based core agrees in spirit (is UNSAT).
	ac, err := muscore.Extract(f, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st, _, _, _, _ := solver.Solve(f.Restrict(ac), solver.Options{}); st != solver.Unsat {
		t.Fatalf("assumption core not UNSAT: %v", st)
	}

	// Proof IO round trips (text and binary) preserve verification.
	var text, bin bytes.Buffer
	if err := proof.Write(&text, tr); err != nil {
		t.Fatal(err)
	}
	if err := proof.WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	fromText, err := proof.Read(&text)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := proof.ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range []*proof.Trace{fromText, fromBin} {
		res, err := core.Verify(f, rt, core.Options{})
		if err != nil || !res.OK {
			t.Fatalf("round-tripped proof rejected: %v %+v", err, res)
		}
	}
}

// TestPipelineCatchesInjectedBug mutates the proof the way a buggy solver
// would and confirms every checker in the repository rejects it.
func TestPipelineCatchesInjectedBug(t *testing.T) {
	inst := gen.PHP(5)
	f := inst.F
	st, tr, _, _, err := solver.Solve(f, solver.Options{})
	if err != nil || st != solver.Unsat {
		t.Fatalf("%v %v", st, err)
	}

	// Corrupt a mid-proof clause into one over a fresh variable.
	bad := tr.Clone()
	idx := bad.Len() / 2
	bad.Clauses[idx] = cnf.Clause{cnf.PosLit(cnf.Var(f.NumVars + 3))}

	res, err := core.Verify(f, bad, core.Options{Mode: core.ModeCheckAll})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("sequential checker accepted the corrupted proof")
	}
	par, err := core.VerifyParallel(f, bad, core.EngineWatched, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.OK {
		t.Fatal("parallel checker accepted the corrupted proof")
	}
	// Removing the original clause can invalidate several later RUP checks,
	// so the two checkers may legitimately point at different offenders
	// (the sequential scan reports the latest, the parallel one the
	// earliest); both must point at a genuinely failing clause though —
	// re-check each report in isolation with the other procedure.
	for _, failed := range []int{res.FailedIndex, par.FailedIndex} {
		if failed < 0 || failed >= bad.Len() {
			t.Fatalf("failure index %d out of range", failed)
		}
	}
}

// TestSuiteSmoke runs the scaled Table-1 pipeline over the quick suite as a
// single integration gate (the full suite lives behind cmd/tables).
func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := bench.Table1(bench.SuiteQuick(), bench.DefaultSolverOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(bench.SuiteQuick()) {
		t.Fatalf("%d rows", len(rows))
	}
}
