package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new content")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new content" {
		t.Fatalf("content = %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestWriteFileErrorLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("destination clobbered: %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestFileCloseWithoutCommitAborts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.out")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(f, "streamed bytes that should vanish")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination exists after abort: %v", err)
	}
	assertNoTempFiles(t, dir)
}

func TestFileCommitThenCloseIsNoop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.out")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(f, "kept")
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "kept" {
		t.Fatalf("content = %q", got)
	}
	assertNoTempFiles(t, dir)
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
