// Package atomicio provides crash-safe file writes: content lands in a
// temporary file in the destination directory, is flushed to stable storage
// with fsync, and only then renamed over the destination. A reader (or a
// verifier resuming after a crash) therefore observes either the complete
// previous file or the complete new one — never a truncated artifact that
// looks like a real core, trimmed proof, or stats snapshot.
//
// Two shapes are offered: WriteFile for one-shot writes driven by a
// callback, and File for streaming producers (e.g. a solver emitting proof
// clauses as it learns them) that decide only at the end whether the
// artifact is worth keeping. An uncommitted File disappears on Close, so a
// crash or an error path never leaves a partial file under the final name.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// On any error the destination is left untouched and the temporary file is
// removed.
func WriteFile(path string, write func(io.Writer) error) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Commit()
}

// File is a streaming atomic writer. Writes go to a hidden temporary file
// next to the destination; Commit fsyncs and renames it into place, while
// Close before Commit aborts and removes it.
type File struct {
	tmp       *os.File
	path      string
	committed bool
}

// Create opens a temporary file in path's directory. The destination is not
// touched until Commit.
func Create(path string) (*File, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return nil, err
	}
	return &File{tmp: tmp, path: path}, nil
}

// Write implements io.Writer.
func (f *File) Write(p []byte) (int, error) { return f.tmp.Write(p) }

// Name returns the destination path the file will commit to.
func (f *File) Name() string { return f.path }

// Commit makes the written content durable under the destination path:
// fsync the temp file, rename it over path, fsync the directory so the
// rename itself survives a crash. After Commit, Close is a no-op.
func (f *File) Commit() error {
	if f.committed {
		return nil
	}
	if err := f.tmp.Sync(); err != nil {
		f.abort()
		return fmt.Errorf("atomicio: sync %s: %w", f.path, err)
	}
	if err := f.tmp.Close(); err != nil {
		os.Remove(f.tmp.Name())
		return fmt.Errorf("atomicio: close %s: %w", f.path, err)
	}
	if err := os.Rename(f.tmp.Name(), f.path); err != nil {
		os.Remove(f.tmp.Name())
		return err
	}
	f.committed = true
	SyncDir(filepath.Dir(f.path))
	return nil
}

// Close aborts the write if Commit has not happened: the temp file is
// removed and the destination stays untouched. Safe to defer alongside an
// explicit Commit.
func (f *File) Close() error {
	if f.committed {
		return nil
	}
	f.abort()
	return nil
}

func (f *File) abort() {
	f.tmp.Close()
	os.Remove(f.tmp.Name())
}

// SyncDir fsyncs a directory so a just-created or just-renamed entry in it
// survives a crash. Best effort: some platforms/filesystems reject fsync on
// directories, and losing the entry there only re-runs work, so errors are
// deliberately swallowed.
func SyncDir(dir string) {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
