package proof

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/cnf"
)

// Binary trace format — the compact counterpart of the text format, in the
// spirit of the binary DRAT encoding (the paper's proofs ran to hundreds of
// megabytes in text; §6 reports a 257 MB proof for 7pipe).
//
// Layout:
//
//	magic "CCPF" | version byte (1) | flags byte
//	per clause: [uvarint resolution count, when flags&1]
//	            uvarint mapped literals..., terminated by a 0 byte
//
// A literal with DIMACS value d maps to (|d| << 1) | (d < 0), which is
// always >= 2, so the 0 terminator is unambiguous.

const binaryMagic = "CCPF"

const (
	binaryVersion       = 1
	binaryFlagResCounts = 1
)

func mapLit(l cnf.Lit) uint64 {
	d := l.Dimacs()
	if d < 0 {
		return uint64(-d)<<1 | 1
	}
	return uint64(d) << 1
}

func unmapLit(u uint64) (cnf.Lit, error) {
	mag := int(u >> 1)
	if mag == 0 {
		return cnf.LitUndef, fmt.Errorf("proof: binary literal 0 outside terminator position")
	}
	if u&1 == 1 {
		return cnf.FromDimacs(-mag), nil
	}
	return cnf.FromDimacs(mag), nil
}

// WriteBinary writes the trace in the binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	flags := byte(0)
	if t.Resolutions != nil {
		flags |= binaryFlagResCounts
	}
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	if err := bw.WriteByte(flags); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(u uint64) error {
		n := binary.PutUvarint(buf[:], u)
		_, err := bw.Write(buf[:n])
		return err
	}
	for i, c := range t.Clauses {
		if t.Resolutions != nil {
			if err := putUvarint(uint64(t.Resolutions[i])); err != nil {
				return err
			}
		}
		for _, l := range c {
			if err := putUvarint(mapLit(l)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte(0); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a binary trace.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(binaryMagic)+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("proof: binary header: %w", err)
	}
	if string(head[:4]) != binaryMagic {
		return nil, fmt.Errorf("proof: bad magic %q", head[:4])
	}
	if head[4] != binaryVersion {
		return nil, fmt.Errorf("proof: unsupported binary version %d", head[4])
	}
	flags := head[5]
	hasRes := flags&binaryFlagResCounts != 0

	t := New()
	if !hasRes {
		t.Resolutions = nil
	}
	for {
		if hasRes {
			res, err := binary.ReadUvarint(br)
			if err == io.EOF {
				return t, nil
			}
			if err != nil {
				return nil, fmt.Errorf("proof: binary resolution count: %w", err)
			}
			t.Resolutions = append(t.Resolutions, int64(res))
		}
		var c cnf.Clause
		first := true
		for {
			u, err := binary.ReadUvarint(br)
			if err == io.EOF {
				if first && !hasRes {
					return t, nil
				}
				return nil, fmt.Errorf("proof: truncated binary clause")
			}
			if err != nil {
				return nil, fmt.Errorf("proof: binary literal: %w", err)
			}
			first = false
			if u == 0 {
				break
			}
			l, err := unmapLit(u)
			if err != nil {
				return nil, err
			}
			c = append(c, l)
		}
		t.Clauses = append(t.Clauses, c)
	}
}
