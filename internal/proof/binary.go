package proof

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/cnf"
)

// Binary trace format — the compact counterpart of the text format, in the
// spirit of the binary DRAT encoding (the paper's proofs ran to hundreds of
// megabytes in text; §6 reports a 257 MB proof for 7pipe).
//
// Layout:
//
//	magic "CCPF" | version byte (1) | flags byte
//	per clause: [uvarint resolution count, when flags&1]
//	            uvarint mapped literals..., terminated by a 0 byte
//
// A literal with DIMACS value d maps to (|d| << 1) | (d < 0), which is
// always >= 2, so the 0 terminator is unambiguous.

const binaryMagic = "CCPF"

const (
	binaryVersion       = 1
	binaryFlagResCounts = 1
)

func mapLit(l cnf.Lit) uint64 {
	d := l.Dimacs()
	if d < 0 {
		return uint64(-d)<<1 | 1
	}
	return uint64(d) << 1
}

// unmapLit decodes a mapped literal, refusing magnitudes beyond maxVar —
// the check must happen on the uint64 before narrowing, or a 2^40 "variable"
// would wrap the int32 literal encoding into nonsense (or a panic).
func unmapLit(u uint64, maxVar int) (cnf.Lit, error) {
	mag := u >> 1
	if mag == 0 {
		return cnf.LitUndef, fmt.Errorf("%w: binary literal 0 outside terminator position", ErrMalformed)
	}
	if mag > uint64(maxVar) {
		return cnf.LitUndef, &LimitError{What: "variable", Limit: int64(maxVar)}
	}
	if u&1 == 1 {
		return cnf.FromDimacs(-int(mag)), nil
	}
	return cnf.FromDimacs(int(mag)), nil
}

// WriteBinary writes the trace in the binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	flags := byte(0)
	if t.Resolutions != nil {
		flags |= binaryFlagResCounts
	}
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	if err := bw.WriteByte(flags); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(u uint64) error {
		n := binary.PutUvarint(buf[:], u)
		_, err := bw.Write(buf[:n])
		return err
	}
	for i, c := range t.Clauses {
		if t.Resolutions != nil {
			if err := putUvarint(uint64(t.Resolutions[i])); err != nil {
				return err
			}
		}
		for _, l := range c {
			if err := putUvarint(mapLit(l)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte(0); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a binary trace under DefaultLimits.
func ReadBinary(r io.Reader) (*Trace, error) {
	return ReadBinaryLimited(r, DefaultLimits())
}

// ReadBinaryLimited is ReadBinary with explicit Limits. Truncation and
// encoding garbage wrap ErrMalformed; limit violations wrap ErrLimit.
func ReadBinaryLimited(r io.Reader, lim Limits) (*Trace, error) {
	lim = lim.withDefaults()
	br := bufio.NewReader(newCappedReader(r, lim.MaxBytes))
	head := make([]byte, len(binaryMagic)+2)
	if _, err := io.ReadFull(br, head); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: truncated binary header", ErrMalformed)
		}
		return nil, fmt.Errorf("proof: binary header: %w", err)
	}
	if string(head[:4]) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrMalformed, head[:4])
	}
	if head[4] != binaryVersion {
		return nil, fmt.Errorf("%w: unsupported binary version %d", ErrMalformed, head[4])
	}
	flags := head[5]
	hasRes := flags&binaryFlagResCounts != 0

	t := New()
	if !hasRes {
		t.Resolutions = nil
	}
	for {
		if hasRes {
			res, err := binary.ReadUvarint(br)
			if err == io.EOF {
				return t, nil
			}
			if err != nil {
				return nil, fmt.Errorf("%w: binary resolution count: %v", ErrMalformed, err)
			}
			t.Resolutions = append(t.Resolutions, int64(res))
		}
		var c cnf.Clause
		first := true
		for {
			u, err := binary.ReadUvarint(br)
			if err == io.EOF {
				if first && !hasRes {
					return t, nil
				}
				return nil, fmt.Errorf("%w: truncated binary clause", ErrMalformed)
			}
			if err != nil {
				var le *LimitError
				if errors.As(err, &le) {
					return nil, le
				}
				return nil, fmt.Errorf("%w: binary literal: %v", ErrMalformed, err)
			}
			first = false
			if u == 0 {
				break
			}
			if len(c) >= lim.MaxClauseLen {
				return nil, &LimitError{What: "clause length", Limit: int64(lim.MaxClauseLen)}
			}
			l, err := unmapLit(u, lim.MaxVar)
			if err != nil {
				return nil, err
			}
			c = append(c, l)
		}
		if len(t.Clauses) >= lim.MaxClauses {
			return nil, &LimitError{What: "clauses", Limit: int64(lim.MaxClauses)}
		}
		t.Clauses = append(t.Clauses, c)
	}
}
