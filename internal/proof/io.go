package proof

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cnf"
)

// Write streams the trace in the text format described in the package
// comment: one clause per line, "c res <n>" comments carrying resolution
// counts when present.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for i, c := range t.Clauses {
		if t.Resolutions != nil {
			if _, err := fmt.Fprintf(bw, "c res %d\n", t.Resolutions[i]); err != nil {
				return err
			}
		}
		for _, l := range c {
			if _, err := bw.WriteString(strconv.Itoa(l.Dimacs())); err != nil {
				return err
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace in the text format under DefaultLimits. Clauses may
// span lines; comments other than "c res" are ignored. A "c res <n>"
// comment annotates the next clause. If any clause carries an annotation,
// unannotated clauses get 0.
func Read(r io.Reader) (*Trace, error) { return ReadLimited(r, DefaultLimits()) }

// ReadLimited is Read with explicit Limits — the entry point for genuinely
// untrusted input. Syntax problems (including truncation) wrap ErrMalformed
// and limit violations wrap ErrLimit, so callers can map the two failure
// classes to distinct outcomes.
func ReadLimited(r io.Reader, lim Limits) (*Trace, error) {
	lim = lim.withDefaults()
	sc := bufio.NewScanner(newCappedReader(r, lim.MaxBytes))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)

	t := New()
	t.Resolutions = nil
	var cur cnf.Clause
	var pendingRes int64
	sawRes := false
	var resCounts []int64

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == 'c' {
			fields := strings.Fields(line)
			if len(fields) == 3 && fields[1] == "res" {
				n, err := strconv.ParseInt(fields[2], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: bad res count %q", ErrMalformed, lineNo, fields[2])
				}
				pendingRes = n
				sawRes = true
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			d, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: unexpected token %q", ErrMalformed, lineNo, tok)
			}
			if d == 0 {
				if len(t.Clauses) >= lim.MaxClauses {
					return nil, &LimitError{What: "clauses", Limit: int64(lim.MaxClauses)}
				}
				t.Clauses = append(t.Clauses, cur)
				resCounts = append(resCounts, pendingRes)
				cur = nil
				pendingRes = 0
				continue
			}
			if d > lim.MaxVar || -d > lim.MaxVar {
				return nil, &LimitError{What: "variable", Limit: int64(lim.MaxVar)}
			}
			if len(cur) >= lim.MaxClauseLen {
				return nil, &LimitError{What: "clause length", Limit: int64(lim.MaxClauseLen)}
			}
			cur = append(cur, cnf.FromDimacs(d))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		return nil, fmt.Errorf("%w: last clause not terminated by 0", ErrMalformed)
	}
	if sawRes {
		t.Resolutions = resCounts
	}
	return t, nil
}

// ReadString parses a trace held in a string.
func ReadString(s string) (*Trace, error) { return Read(strings.NewReader(s)) }
