package proof

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestReadObserved(t *testing.T) {
	text := "1 2 0\n-1 0\n1 0\n"
	reg := obs.New()
	tr, err := ReadObserved(strings.NewReader(text), reg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("clauses = %d", tr.Len())
	}
	snap := reg.Snapshot()
	if got := snap.Counters["proof.read.bytes"]; got != int64(len(text)) {
		t.Errorf("bytes = %d, want %d", got, len(text))
	}
	if got := snap.Counters["proof.read.clauses"]; got != 3 {
		t.Errorf("clauses counter = %d", got)
	}
	if snap.Counters["proof.read.ns"] <= 0 {
		t.Errorf("parse time = %d", snap.Counters["proof.read.ns"])
	}
	if snap.Spans == nil || len(snap.Spans.Children) != 1 || snap.Spans.Children[0].Name != "proof-read" {
		t.Errorf("spans = %+v", snap.Spans)
	}
}

func TestReadObservedNilRegistry(t *testing.T) {
	tr, err := ReadObserved(strings.NewReader("1 0\n-1 0\n"), nil)
	if err != nil || tr.Len() != 2 {
		t.Fatalf("%v, %d clauses", err, tr.Len())
	}
}

func TestReadBinaryObserved(t *testing.T) {
	tr := New()
	tr.Append(cl(1, 2), 0)
	tr.Append(cl(-1), 0)
	tr.Append(cl(1), 0)
	var bin bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	n := bin.Len()
	reg := obs.New()
	back, err := ReadBinaryObserved(&bin, reg)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("clauses = %d", back.Len())
	}
	if got := reg.Counter("proof.read.bytes").Value(); got != int64(n) {
		t.Errorf("bytes = %d, want %d", got, n)
	}
}
