package proof

import (
	"io"

	"repro/internal/obs"
)

// ReadObserved is Read with IO metering: bytes read, parse wall time and
// the resulting clause rate land in the registry (proof.read.* counters, a
// "proof-read" span) — §6's 257 MB 7pipe trace is exactly the scale where
// parse time stops being ignorable. A nil registry falls back to plain
// Read.
func ReadObserved(r io.Reader, reg *obs.Registry) (*Trace, error) {
	return readObserved(r, reg, Read)
}

// ReadBinaryObserved is ReadBinary with the same IO metering as
// ReadObserved.
func ReadBinaryObserved(r io.Reader, reg *obs.Registry) (*Trace, error) {
	return readObserved(r, reg, ReadBinary)
}

func readObserved(r io.Reader, reg *obs.Registry, parse func(io.Reader) (*Trace, error)) (*Trace, error) {
	if reg == nil {
		return parse(r)
	}
	span := reg.StartSpan("proof-read")
	cr := obs.CountingReader(r, reg.Counter("proof.read.bytes"))
	t, err := parse(cr)
	d := span.End()
	reg.Counter("proof.read.ns").Add(int64(d))
	if t != nil {
		reg.Counter("proof.read.clauses").Add(int64(t.Len()))
		if secs := d.Seconds(); secs > 0 {
			reg.Gauge("proof.read.clauses_per_sec").Set(int64(float64(t.Len()) / secs))
		}
	}
	return t, err
}
