package proof

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cnf"
)

func randomTrace(rng *rand.Rand, withRes bool) *Trace {
	t := New()
	if !withRes {
		t.Resolutions = nil
	}
	n := 1 + rng.Intn(40)
	for i := 0; i < n; i++ {
		k := rng.Intn(6)
		c := make(cnf.Clause, 0, k)
		for j := 0; j < k; j++ {
			c = append(c, cnf.NewLit(cnf.Var(rng.Intn(1000)), rng.Intn(2) == 0))
		}
		if withRes {
			t.Append(c, int64(rng.Intn(10000)))
		} else {
			t.Clauses = append(t.Clauses, c)
		}
	}
	return t
}

func tracesEqual(a, b *Trace) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Clauses {
		if !a.Clauses[i].Equal(b.Clauses[i]) {
			return false
		}
	}
	if (a.Resolutions == nil) != (b.Resolutions == nil) {
		return false
	}
	for i := range a.Resolutions {
		if a.Resolutions[i] != b.Resolutions[i] {
			return false
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 100; round++ {
		tr := randomTrace(rng, round%2 == 0)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !tracesEqual(tr, got) {
			t.Fatalf("round %d: traces differ", round)
		}
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	tr := &Trace{}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("Len = %d", got.Len())
	}
}

func TestBinaryEmptyClause(t *testing.T) {
	tr := &Trace{Clauses: []cnf.Clause{cl(1, 2), {}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Terminates() != TermEmptyClause {
		t.Error("empty clause lost")
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tr := New()
	for i := 0; i < 500; i++ {
		k := 3 + rng.Intn(20)
		c := make(cnf.Clause, 0, k)
		for j := 0; j < k; j++ {
			c = append(c, cnf.NewLit(cnf.Var(rng.Intn(5000)), rng.Intn(2) == 0))
		}
		tr.Append(c, int64(rng.Intn(100)))
	}
	var text, bin bytes.Buffer
	if err := Write(&text, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= text.Len() {
		t.Errorf("binary (%d bytes) not smaller than text (%d bytes)", bin.Len(), text.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"XXXX\x01\x00",
		"CCPF\x09\x00",         // bad version
		"CCPF\x01\x00\x04",     // truncated clause (literal then EOF)
		"CCPF\x01\x01\x05\x04", // res count + literal, no terminator
	}
	for _, in := range cases {
		if _, err := ReadBinary(strings.NewReader(in)); err == nil {
			t.Errorf("ReadBinary(%q) succeeded", in)
		}
	}
}

func TestComputeStats(t *testing.T) {
	tr := New()
	tr.Append(cl(1), 1)
	tr.Append(cl(1, 2), 2)
	tr.Append(cl(1, 2, 3, 4, 5), 100)
	st := tr.ComputeStats(32)
	if st.Clauses != 3 || st.Literals != 8 || st.Resolutions != 103 {
		t.Errorf("stats = %+v", st)
	}
	if st.MinLen != 1 || st.MaxLen != 5 || st.MedianLen != 2 {
		t.Errorf("lens = %+v", st)
	}
	if st.LocalClauses != 2 || st.GlobalClauses != 1 {
		t.Errorf("local/global = %d/%d", st.LocalClauses, st.GlobalClauses)
	}
	if st.LenHistogram[1] != 1 || st.LenHistogram[2] != 1 || st.LenHistogram[8] != 1 {
		t.Errorf("histogram = %v", st.LenHistogram)
	}
	if !strings.Contains(st.String(), "local/global") {
		t.Error("String() missing report sections")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := New().ComputeStats(0)
	if st.Clauses != 0 || st.MinLen != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestComputeStatsDefaultThreshold(t *testing.T) {
	tr := New()
	tr.Append(cl(1, 2), DefaultGlobalThreshold+1)
	st := tr.ComputeStats(0)
	if st.GlobalThreshold != DefaultGlobalThreshold || st.GlobalClauses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLenBucket(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 8: 8, 9: 16, 17: 32}
	for n, want := range cases {
		if got := lenBucket(n); got != want {
			t.Errorf("lenBucket(%d) = %d, want %d", n, got, want)
		}
	}
}
