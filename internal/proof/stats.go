package proof

import (
	"fmt"
	"sort"
	"strings"
)

// TraceStats summarizes a conflict-clause proof for the §5 local/global
// analysis: clause lengths, per-clause resolution counts, and the split
// into "local" clauses (few resolutions) and "global" clauses (many).
type TraceStats struct {
	Clauses     int
	Literals    int64
	Resolutions int64

	MinLen, MaxLen int
	MeanLen        float64
	MedianLen      int

	// Resolution-count distribution (zero when counts are absent).
	MinRes, MaxRes int64
	MeanRes        float64
	MedianRes      int64

	// Local/global split: a clause is "global" when it needed more than
	// GlobalThreshold resolutions. The threshold used is recorded.
	GlobalThreshold int64
	LocalClauses    int
	GlobalClauses   int

	// LenHistogram buckets clause lengths: 1, 2, 3-4, 5-8, 9-16, ... the
	// key is the bucket's upper bound.
	LenHistogram map[int]int
}

// DefaultGlobalThreshold is the resolution count above which a clause is
// classified as "global" in Stats.
const DefaultGlobalThreshold = 32

// ComputeStats summarizes the trace. threshold <= 0 selects
// DefaultGlobalThreshold.
func (t *Trace) ComputeStats(threshold int64) TraceStats {
	if threshold <= 0 {
		threshold = DefaultGlobalThreshold
	}
	st := TraceStats{
		Clauses:         t.Len(),
		GlobalThreshold: threshold,
		LenHistogram:    map[int]int{},
		MinLen:          int(^uint(0) >> 1),
	}
	if t.Len() == 0 {
		st.MinLen = 0
		return st
	}
	lens := make([]int, 0, t.Len())
	for _, c := range t.Clauses {
		n := len(c)
		lens = append(lens, n)
		st.Literals += int64(n)
		if n < st.MinLen {
			st.MinLen = n
		}
		if n > st.MaxLen {
			st.MaxLen = n
		}
		st.LenHistogram[lenBucket(n)]++
	}
	sort.Ints(lens)
	st.MedianLen = lens[len(lens)/2]
	st.MeanLen = float64(st.Literals) / float64(st.Clauses)

	if t.Resolutions != nil {
		res := append([]int64(nil), t.Resolutions...)
		sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
		st.MinRes = res[0]
		st.MaxRes = res[len(res)-1]
		st.MedianRes = res[len(res)/2]
		for _, r := range t.Resolutions {
			st.Resolutions += r
			if r > threshold {
				st.GlobalClauses++
			} else {
				st.LocalClauses++
			}
		}
		st.MeanRes = float64(st.Resolutions) / float64(st.Clauses)
	}
	return st
}

// lenBucket maps a clause length to its histogram bucket upper bound:
// 1, 2, 4, 8, 16, ...
func lenBucket(n int) int {
	if n <= 1 {
		return 1
	}
	b := 2
	for b < n {
		b <<= 1
	}
	return b
}

// LenBucket is one clause-length histogram bucket: Count clauses of length
// <= Le (and greater than the previous bucket's bound).
type LenBucket struct {
	Le    int `json:"le"`
	Count int `json:"count"`
}

// LenBuckets returns the length histogram as a slice sorted by ascending
// upper bound. Every rendering of LenHistogram must go through this (maps
// iterate in random order): String uses it, and it is the shape to marshal
// when emitting stats as JSON.
func (s TraceStats) LenBuckets() []LenBucket {
	keys := make([]int, 0, len(s.LenHistogram))
	for k := range s.LenHistogram {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]LenBucket, 0, len(keys))
	for _, k := range keys {
		out = append(out, LenBucket{Le: k, Count: s.LenHistogram[k]})
	}
	return out
}

// String renders the stats as a small report.
func (s TraceStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "clauses=%d literals=%d resolutions=%d\n", s.Clauses, s.Literals, s.Resolutions)
	fmt.Fprintf(&b, "len: min=%d median=%d mean=%.1f max=%d\n", s.MinLen, s.MedianLen, s.MeanLen, s.MaxLen)
	if s.Resolutions > 0 {
		fmt.Fprintf(&b, "res/clause: min=%d median=%d mean=%.1f max=%d\n",
			s.MinRes, s.MedianRes, s.MeanRes, s.MaxRes)
		fmt.Fprintf(&b, "local/global (threshold %d): %d/%d\n",
			s.GlobalThreshold, s.LocalClauses, s.GlobalClauses)
	}
	fmt.Fprintf(&b, "length histogram:")
	for _, bk := range s.LenBuckets() {
		fmt.Fprintf(&b, " <=%d:%d", bk.Le, bk.Count)
	}
	b.WriteByte('\n')
	return b.String()
}
