package proof

import (
	"sort"
	"testing"

	"repro/internal/cnf"
)

// traceWithLengths builds a trace whose clause lengths cover many distinct
// histogram buckets.
func traceWithLengths(t *testing.T, lengths ...int) *Trace {
	t.Helper()
	tr := New()
	for _, n := range lengths {
		c := make(cnf.Clause, n)
		for i := range c {
			c[i] = cnf.PosLit(cnf.Var(i))
		}
		tr.Append(c, 0)
	}
	return tr
}

// TestLenBucketsSorted: the histogram slice is ascending by upper bound and
// accounts for every clause exactly once.
func TestLenBucketsSorted(t *testing.T) {
	tr := traceWithLengths(t, 1, 2, 3, 4, 5, 9, 17, 33, 2, 6, 1)
	st := tr.ComputeStats(0)
	buckets := st.LenBuckets()
	if !sort.SliceIsSorted(buckets, func(i, j int) bool { return buckets[i].Le < buckets[j].Le }) {
		t.Fatalf("buckets not sorted: %+v", buckets)
	}
	total := 0
	for _, b := range buckets {
		total += b.Count
	}
	if total != tr.Len() {
		t.Errorf("bucket counts sum to %d, want %d", total, tr.Len())
	}
	if len(buckets) != len(st.LenHistogram) {
		t.Errorf("%d buckets for %d histogram keys", len(buckets), len(st.LenHistogram))
	}
}

// TestStatsStringDeterministic: the rendered report must not depend on map
// iteration order.
func TestStatsStringDeterministic(t *testing.T) {
	tr := traceWithLengths(t, 1, 2, 3, 5, 9, 17, 33, 65, 129, 4, 8, 16)
	first := tr.ComputeStats(0).String()
	for i := 0; i < 20; i++ {
		if got := tr.ComputeStats(0).String(); got != first {
			t.Fatalf("iteration %d rendered differently:\n%s\nvs\n%s", i, got, first)
		}
	}
}
