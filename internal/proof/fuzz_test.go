package proof

import (
	"bytes"
	"errors"
	"testing"
)

// The fuzz targets pin the parser hardening contract on arbitrary bytes:
// never panic, never hang, fail only with the typed error classes — and
// when input does parse, survive a write/re-read round trip unchanged.

func FuzzReadTrace(f *testing.F) {
	f.Add([]byte("1 2 0\n-1 0\n0\n"))
	f.Add([]byte("c comment\nc res 3\n1 -2 3 0\n"))
	f.Add([]byte("1 2\n"))
	f.Add([]byte("-9999999999999 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadLimited(bytes.NewReader(data),
			Limits{MaxClauses: 1 << 12, MaxClauseLen: 1 << 10, MaxVar: 1 << 16, MaxBytes: 1 << 20})
		if err != nil {
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrLimit) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("writing parsed trace: %v", err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed clause count: %d != %d", back.Len(), tr.Len())
		}
	})
}

func FuzzReadBinaryTrace(f *testing.F) {
	// Seed with well-formed encodings (with and without resolution counts)
	// so the fuzzer starts past the magic/version gate, plus raw junk.
	seed := New()
	seed.Resolutions = nil
	seed.Clauses = append(seed.Clauses, cl(1, -2), cl(2), cl(-1))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(bytes.Clone(buf.Bytes()))
	buf.Reset()
	withRes := seed.Clone()
	withRes.Resolutions = []int64{0, 2, 3}
	if err := WriteBinary(&buf, withRes); err != nil {
		f.Fatal(err)
	}
	f.Add(bytes.Clone(buf.Bytes()))
	f.Add([]byte("CCPF"))
	f.Add([]byte("CCPF\x01\x00\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinaryLimited(bytes.NewReader(data),
			Limits{MaxClauses: 1 << 12, MaxClauseLen: 1 << 10, MaxVar: 1 << 16, MaxBytes: 1 << 20})
		if err != nil {
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrLimit) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("writing parsed trace: %v", err)
		}
		back, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed clause count: %d != %d", back.Len(), tr.Len())
		}
	})
}
