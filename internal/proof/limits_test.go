package proof

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestReadLimitedMaxVar(t *testing.T) {
	// A literal whose magnitude parses as int but would overflow the int32
	// Var encoding (or just drive a huge allocation) must be refused, not
	// narrowed into garbage.
	for _, in := range []string{"9000000000 0\n", "-9000000000 0\n", "70000 0\n"} {
		_, err := ReadLimited(strings.NewReader(in), Limits{MaxVar: 65536})
		var le *LimitError
		if !errors.As(err, &le) || !errors.Is(err, ErrLimit) {
			t.Fatalf("ReadLimited(%q) err = %v, want *LimitError", in, err)
		}
		if le.What != "variable" {
			t.Fatalf("ReadLimited(%q): tripped %q limit, want variable", in, le.What)
		}
	}
}

func TestReadLimitedClauseAndLenLimits(t *testing.T) {
	if _, err := ReadLimited(strings.NewReader("1 0\n2 0\n3 0\n"), Limits{MaxClauses: 2}); !errors.Is(err, ErrLimit) {
		t.Fatalf("clause-count limit: err = %v", err)
	}
	if _, err := ReadLimited(strings.NewReader("1 2 3 4 0\n"), Limits{MaxClauseLen: 3}); !errors.Is(err, ErrLimit) {
		t.Fatalf("clause-length limit: err = %v", err)
	}
	if _, err := ReadLimited(strings.NewReader("1 2 0\n-1 0\n"), Limits{MaxBytes: 4}); !errors.Is(err, ErrLimit) {
		t.Fatalf("byte limit: err = %v", err)
	}
}

func TestReadMalformed(t *testing.T) {
	cases := []string{
		"1 2 three 0\n",  // garbage token
		"1 2\n",          // unterminated final clause
		"c res x\n1 0\n", // bad resolution count
	}
	for _, in := range cases {
		if _, err := ReadString(in); !errors.Is(err, ErrMalformed) {
			t.Fatalf("ReadString(%q) err = %v, want ErrMalformed", in, err)
		}
	}
}

func TestReadBinaryMalformed(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		tr := New()
		tr.Resolutions = nil
		tr.Clauses = append(tr.Clauses, cl(1, -2), cl(2))
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := map[string][]byte{
		"empty":        {},
		"short header": valid[:3],
		"bad magic":    append([]byte("XXXX"), valid[4:]...),
		"bad version":  func() []byte { b := bytes.Clone(valid); b[4] = 99; return b }(),
		// Drop only the final 0 terminator: the remaining bytes are NOT a
		// valid prefix, and must not silently parse as one.
		"truncated clause": valid[:len(valid)-1],
	}
	for name, in := range cases {
		if _, err := ReadBinary(bytes.NewReader(in)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}

func TestReadBinaryLimits(t *testing.T) {
	var buf bytes.Buffer
	tr := New()
	tr.Resolutions = nil
	tr.Clauses = append(tr.Clauses, cl(100000, -2), cl(2), cl(-1))
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := ReadBinaryLimited(bytes.NewReader(data), Limits{MaxVar: 65536}); !errors.Is(err, ErrLimit) {
		t.Fatalf("variable limit: err = %v", err)
	}
	if _, err := ReadBinaryLimited(bytes.NewReader(data), Limits{MaxClauses: 2}); !errors.Is(err, ErrLimit) {
		t.Fatalf("clause-count limit: err = %v", err)
	}
	if _, err := ReadBinaryLimited(bytes.NewReader(data), Limits{MaxClauseLen: 1}); !errors.Is(err, ErrLimit) {
		t.Fatalf("clause-length limit: err = %v", err)
	}
	if _, err := ReadBinaryLimited(bytes.NewReader(data), Limits{MaxBytes: 8}); !errors.Is(err, ErrLimit) {
		t.Fatalf("byte limit: err = %v", err)
	}

	// Exactly-at-limit input still parses.
	got, err := ReadBinaryLimited(bytes.NewReader(data), Limits{
		MaxVar: 100000, MaxClauses: 3, MaxClauseLen: 2, MaxBytes: int64(len(data)),
	})
	if err != nil || len(got.Clauses) != 3 {
		t.Fatalf("at-limit parse: err=%v got=%+v", err, got)
	}
}

func TestCappedReaderDistinguishesEOF(t *testing.T) {
	// Under the limit: plain EOF passes through so well-formed input that
	// simply ends is fine.
	cr := newCappedReader(strings.NewReader("ab"), 10)
	if b, err := io.ReadAll(cr); err != nil || string(b) != "ab" {
		t.Fatalf("under limit: %q, %v", b, err)
	}
	// Over the limit: a typed error, never a silent truncation.
	cr = newCappedReader(strings.NewReader("abcdef"), 3)
	if _, err := io.ReadAll(cr); !errors.Is(err, ErrLimit) {
		t.Fatalf("over limit: err = %v", err)
	}
}
