package proof

import (
	"errors"
	"fmt"
	"io"
)

// Traces come from the least trusted component of the pipeline — an
// arbitrary solver, possibly buggy, possibly adversarial — so the readers
// enforce hard limits and report typed errors instead of letting a crafted
// input drive allocation (a single literal "9000000000000000000" would
// otherwise size a variable range) or overflow the int32 literal encoding.

// Limits bounds what Read and ReadBinary accept. Zero fields fall back to
// the corresponding DefaultLimits value; to express "effectively unlimited",
// pass an explicitly huge value.
type Limits struct {
	// MaxClauses bounds the number of clauses in the trace.
	MaxClauses int
	// MaxClauseLen bounds the number of literals in a single clause.
	MaxClauseLen int
	// MaxVar bounds the DIMACS variable magnitude (and keeps it inside the
	// int32 literal encoding).
	MaxVar int
	// MaxBytes bounds how many input bytes the reader consumes.
	MaxBytes int64
}

// DefaultLimits are generous — sized for the paper's hundreds-of-megabytes
// traces with an order of magnitude to spare — while still refusing inputs
// that could only be hostile or corrupt.
func DefaultLimits() Limits {
	return Limits{
		MaxClauses:   64 << 20, // 67M clauses
		MaxClauseLen: 1 << 22,  // 4M literals in one clause
		MaxVar:       1 << 27,  // 134M variables
		MaxBytes:     8 << 30,  // 8 GiB of input
	}
}

func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxClauses == 0 {
		l.MaxClauses = d.MaxClauses
	}
	if l.MaxClauseLen == 0 {
		l.MaxClauseLen = d.MaxClauseLen
	}
	if l.MaxVar == 0 {
		l.MaxVar = d.MaxVar
	}
	if l.MaxBytes == 0 {
		l.MaxBytes = d.MaxBytes
	}
	return l
}

// ErrLimit is the errors.Is target of every *LimitError.
var ErrLimit = errors.New("proof: input exceeds limit")

// ErrMalformed is the errors.Is target of every syntax/truncation error from
// Read and ReadBinary, so callers can distinguish "bad input" from IO
// failures without string matching.
var ErrMalformed = errors.New("proof: malformed trace")

// LimitError reports which bound an input blew through.
type LimitError struct {
	What  string // "clauses" | "clause length" | "variable" | "bytes"
	Limit int64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("proof: input exceeds %s limit %d", e.What, e.Limit)
}

func (e *LimitError) Unwrap() error { return ErrLimit }

// cappedReader hard-errors (rather than io.LimitReader's silent EOF, which
// would make an oversized trace look like a well-formed prefix) once more
// than limit bytes have been consumed.
type cappedReader struct {
	r     io.Reader
	left  int64
	limit int64
}

func newCappedReader(r io.Reader, limit int64) *cappedReader {
	return &cappedReader{r: r, left: limit, limit: limit}
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.left == 0 {
		// Exactly at the limit: an input that ends here is legal, one with
		// more bytes is not — probe a single byte to tell them apart.
		var b [1]byte
		n, err := c.r.Read(b[:])
		if n > 0 {
			c.left = -1
			return 0, &LimitError{What: "bytes", Limit: c.limit}
		}
		return 0, err
	}
	if c.left < 0 {
		return 0, &LimitError{What: "bytes", Limit: c.limit}
	}
	if int64(len(p)) > c.left {
		p = p[:c.left]
	}
	n, err := c.r.Read(p)
	c.left -= int64(n)
	return n, err
}

func (c *cappedReader) ReadByte() (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(c, b[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return 0, err
	}
	return b[0], nil
}
