package proof

import (
	"bytes"
	"testing"

	"repro/internal/cnf"
)

func cl(dimacs ...int) cnf.Clause {
	c := make(cnf.Clause, 0, len(dimacs))
	for _, d := range dimacs {
		c = append(c, cnf.FromDimacs(d))
	}
	return c
}

func TestTraceAppendAndStats(t *testing.T) {
	tr := New()
	tr.Append(cl(1, 2, 3), 2)
	tr.Append(cl(-1), 5)
	tr.Append(cl(1), 1)
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.NumLiterals() != 5 {
		t.Errorf("NumLiterals = %d, want 5", tr.NumLiterals())
	}
	if tr.TotalResolutions() != 8 {
		t.Errorf("TotalResolutions = %d, want 8", tr.TotalResolutions())
	}
	if tr.MaxVar() != 2 {
		t.Errorf("MaxVar = %d, want 2", tr.MaxVar())
	}
}

func TestTraceTermination(t *testing.T) {
	tr := New()
	if tr.Terminates() != TermNone {
		t.Error("empty trace should not terminate")
	}
	tr.Append(cl(1, 2), 0)
	if tr.Terminates() != TermNone {
		t.Error("non-unit ending should be TermNone")
	}
	tr.Append(cl(-3), 0)
	tr.Append(cl(3), 0)
	if tr.Terminates() != TermFinalPair {
		t.Error("final conflicting pair not recognized")
	}
	tr.Append(cnf.Clause{}, 0)
	if tr.Terminates() != TermEmptyClause {
		t.Error("empty clause termination not recognized")
	}
}

func TestTraceTerminationSameLiteralTwice(t *testing.T) {
	tr := New()
	tr.Append(cl(3), 0)
	tr.Append(cl(3), 0)
	if tr.Terminates() == TermFinalPair {
		t.Error("two identical units are not a conflicting pair")
	}
}

func TestTraceValidate(t *testing.T) {
	tr := New()
	tr.Append(cl(-1), 0)
	tr.Append(cl(1), 0)
	if err := tr.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	tr.Resolutions = tr.Resolutions[:1]
	if err := tr.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestTraceCloneIndependent(t *testing.T) {
	tr := New()
	tr.Append(cl(1, 2), 3)
	cp := tr.Clone()
	cp.Clauses[0][0] = cnf.FromDimacs(-9)
	cp.Resolutions[0] = 99
	if tr.Clauses[0][0] != cnf.FromDimacs(1) || tr.Resolutions[0] != 3 {
		t.Error("Clone shares storage")
	}
}

func TestTraceIORoundTrip(t *testing.T) {
	tr := New()
	tr.Append(cl(1, -2, 3), 4)
	tr.Append(cl(-1), 7)
	tr.Append(cl(1), 2)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Clauses {
		if !got.Clauses[i].Equal(tr.Clauses[i]) {
			t.Errorf("clause %d: %v vs %v", i, got.Clauses[i], tr.Clauses[i])
		}
		if got.Resolutions[i] != tr.Resolutions[i] {
			t.Errorf("res %d: %d vs %d", i, got.Resolutions[i], tr.Resolutions[i])
		}
	}
}

func TestTraceIOWithoutResolutions(t *testing.T) {
	tr := &Trace{Clauses: []cnf.Clause{cl(1, 2), cl(-1)}}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Resolutions != nil {
		t.Error("reader invented resolution counts")
	}
}

func TestTraceReadComments(t *testing.T) {
	got, err := ReadString("c hello\n1 2 0\nc res 9\n-1 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("Len = %d", got.Len())
	}
	if got.Resolutions == nil || got.Resolutions[1] != 9 || got.Resolutions[0] != 0 {
		t.Errorf("Resolutions = %v", got.Resolutions)
	}
}

func TestTraceReadEmptyClause(t *testing.T) {
	got, err := ReadString("1 2 0\n0\n")
	if err != nil {
		t.Fatal(err)
	}
	if got.Terminates() != TermEmptyClause {
		t.Error("empty clause line not parsed as empty clause")
	}
}

func TestTraceReadErrors(t *testing.T) {
	for _, in := range []string{"1 2\n", "1 x 0\n", "c res y\n1 0\n"} {
		if _, err := ReadString(in); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}
