// Package proof defines the conflict-clause proof trace: the chronologically
// ordered sequence of conflict clauses a CDCL solver deduced while proving a
// CNF formula unsatisfiable, exactly as described in Goldberg & Novikov
// (DATE 2003). A valid trace ends either with the paper's "final conflicting
// pair" — two unit clauses with opposite literals of one variable — or, as a
// modern extension, with the empty clause (RUP/DRUP-style termination).
//
// The on-disk format is one clause per line in DIMACS literal notation
// terminated by 0 (the format a solver can stream to disk as it learns, per
// the paper: "as soon as the SAT-solver hits a conflict, the corresponding
// conflict clause is output to disk"). Comment lines start with 'c'; the
// writer records per-clause resolution counts as "c res <n>" comments, which
// the reader recovers, so the resolution-graph size lower bound of Table 2
// survives a round trip through a file.
package proof

import (
	"fmt"

	"repro/internal/cnf"
)

// Trace is a conflict-clause proof: Clauses in chronological deduction
// order. Resolutions, when non-nil, has one entry per clause giving the
// number of resolution steps the producing solver used to derive it — the
// paper's per-clause lower bound on resolution-graph size.
type Trace struct {
	Clauses     []cnf.Clause
	Resolutions []int64
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Append adds a deduced clause with its resolution count.
func (t *Trace) Append(c cnf.Clause, resolutions int64) {
	t.Clauses = append(t.Clauses, c)
	t.Resolutions = append(t.Resolutions, resolutions)
}

// Len returns the number of deduced clauses (the paper's |F*|).
func (t *Trace) Len() int { return len(t.Clauses) }

// NumLiterals returns the total number of literals over all clauses — the
// paper's "conflict clause proof size".
func (t *Trace) NumLiterals() int64 {
	var n int64
	for _, c := range t.Clauses {
		n += int64(len(c))
	}
	return n
}

// TotalResolutions returns the summed per-clause resolution counts — the
// paper's lower bound on the number of internal nodes of the corresponding
// resolution-graph proof.
func (t *Trace) TotalResolutions() int64 {
	var n int64
	for _, r := range t.Resolutions {
		n += r
	}
	return n
}

// MaxVar returns the largest variable mentioned anywhere in the trace, or
// cnf.VarUndef if the trace has no literals.
func (t *Trace) MaxVar() cnf.Var {
	m := cnf.VarUndef
	for _, c := range t.Clauses {
		if v := c.MaxVar(); v > m {
			m = v
		}
	}
	return m
}

// Termination describes how a trace ends.
type Termination int

const (
	// TermNone: the trace does not end in a recognized refutation.
	TermNone Termination = iota
	// TermFinalPair: the last two clauses are unit clauses with opposite
	// literals of one variable (the paper's final conflicting pair).
	TermFinalPair
	// TermEmptyClause: the last clause is empty (RUP-style termination).
	TermEmptyClause
)

func (t Termination) String() string {
	switch t {
	case TermFinalPair:
		return "final conflicting pair"
	case TermEmptyClause:
		return "empty clause"
	default:
		return "none"
	}
}

// Terminates classifies the trace ending.
func (t *Trace) Terminates() Termination {
	n := len(t.Clauses)
	if n == 0 {
		return TermNone
	}
	if len(t.Clauses[n-1]) == 0 {
		return TermEmptyClause
	}
	if n >= 2 {
		a, b := t.Clauses[n-2], t.Clauses[n-1]
		if len(a) == 1 && len(b) == 1 && a[0] == b[0].Neg() {
			return TermFinalPair
		}
	}
	return TermNone
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	out := &Trace{Clauses: make([]cnf.Clause, len(t.Clauses))}
	for i, c := range t.Clauses {
		out.Clauses[i] = c.Clone()
	}
	if t.Resolutions != nil {
		out.Resolutions = append([]int64(nil), t.Resolutions...)
	}
	return out
}

// Validate performs cheap structural checks: resolution annotation length
// and a recognized termination. It does not check the logical content — that
// is the verifier's job.
func (t *Trace) Validate() error {
	if t.Resolutions != nil && len(t.Resolutions) != len(t.Clauses) {
		return fmt.Errorf("proof: %d clauses but %d resolution counts",
			len(t.Clauses), len(t.Resolutions))
	}
	if t.Terminates() == TermNone {
		return fmt.Errorf("proof: trace does not end in a final conflicting pair or the empty clause")
	}
	return nil
}
