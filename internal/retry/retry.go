// Package retry is the shared robustness toolkit for everything in this
// repo that talks over an unreliable edge — today the cluster router
// (internal/cluster), tomorrow any client of the daemon API. It provides
// the three mechanisms a fault-tolerant caller needs and nothing more:
//
//   - Policy: jittered exponential backoff with per-attempt timeouts and a
//     typed permanent-vs-retryable error split, so callers never burn
//     retries on errors that cannot improve (a 400 stays a 400).
//   - Breaker: a per-target circuit breaker (closed → open → half-open)
//     that converts a persistently failing target into a fast local error,
//     with bounded half-open probing to readmit it once it heals.
//   - Jittered/JitterSeconds: bounded randomization for client-facing
//     Retry-After hints, so a fleet of backpressured clients does not
//     retry in lockstep and re-saturate the service it just overloaded.
//
// Determinism for tests: both the Policy and the jitter helpers accept an
// injectable randomness source, and the Breaker an injectable clock, so
// every timing property asserted in tests is exact, not statistical.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Policy describes how to retry an operation. The zero value is usable and
// means "3 attempts, 50ms base delay doubling to a 2s cap, half the delay
// jittered, no per-attempt timeout".
type Policy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 3; 1 disables retrying).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized: the actual
	// sleep is delay*(1-Jitter) + rand*delay*Jitter. Default 0.5; negative
	// disables jitter entirely.
	Jitter float64
	// PerAttempt, when positive, bounds each attempt with its own deadline
	// (layered under whatever deadline the caller's context carries).
	PerAttempt time.Duration
	// Rand substitutes the randomness source for tests (default math/rand).
	Rand func() float64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier <= 0 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	} else if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	return p
}

// PermanentError marks an error that retrying cannot fix; Do stops
// immediately and returns the wrapped error.
type PermanentError struct {
	Err error
}

func (e *PermanentError) Error() string { return e.Err.Error() }
func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent wraps err so Do treats it as final. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &PermanentError{Err: err}
}

// IsPermanent reports whether err is (or wraps) a PermanentError.
func IsPermanent(err error) bool {
	var pe *PermanentError
	return errors.As(err, &pe)
}

// AttemptsError reports an operation that failed every attempt; Unwrap
// exposes the last attempt's error for errors.Is/As classification.
type AttemptsError struct {
	Attempts int
	Last     error
}

func (e *AttemptsError) Error() string {
	return fmt.Sprintf("retry: %d attempt(s) failed: %v", e.Attempts, e.Last)
}
func (e *AttemptsError) Unwrap() error { return e.Last }

// Delay returns the backoff before attempt n (n=1 is the first retry),
// jittered. Exposed so callers that schedule their own sleeps (e.g. a
// replication loop) share the policy's curve.
func (p Policy) Delay(n int) time.Duration {
	p = p.withDefaults()
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return Jittered(time.Duration(d), p.Jitter, p.Rand)
}

// Do runs op under the policy: up to MaxAttempts tries, backing off between
// them, stopping early on ctx cancellation or a Permanent error. Each
// attempt gets its own context carrying the PerAttempt deadline. On final
// failure the returned error is an *AttemptsError wrapping the last
// attempt's error (or the permanent error unwrapped from its marker).
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	var last error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.PerAttempt > 0 {
			actx, cancel = context.WithTimeout(ctx, p.PerAttempt)
		}
		err := op(actx)
		cancel()
		if err == nil {
			return nil
		}
		var pe *PermanentError
		if errors.As(err, &pe) {
			return &AttemptsError{Attempts: attempt, Last: pe.Err}
		}
		last = err
		if ctx.Err() != nil {
			return &AttemptsError{Attempts: attempt, Last: ctx.Err()}
		}
		if attempt == p.MaxAttempts {
			break
		}
		t := time.NewTimer(p.Delay(attempt))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return &AttemptsError{Attempts: attempt, Last: ctx.Err()}
		}
	}
	return &AttemptsError{Attempts: p.MaxAttempts, Last: last}
}

// Jittered spreads d by frac: the result is uniform in
// [d*(1-frac), d] (frac clamped to [0,1]). frac 0, a nil rnd with frac 0,
// or a non-positive d return d unchanged. rnd nil uses math/rand.
func Jittered(d time.Duration, frac float64, rnd func() float64) time.Duration {
	if d <= 0 || frac <= 0 {
		return d
	}
	if frac > 1 {
		frac = 1
	}
	if rnd == nil {
		rnd = rand.Float64
	}
	spread := float64(d) * frac
	return time.Duration(float64(d) - spread*rnd())
}

// JitterSeconds renders a Retry-After hint: base spread *upward* by frac
// (uniform in [base, base*(1+frac)]), rounded up to whole seconds, never
// below 1. Upward, because a hint shorter than the server's intended
// backoff re-saturates it; staggered-later only thins the stampede.
func JitterSeconds(base time.Duration, frac float64, rnd func() float64) int {
	if base <= 0 {
		return 1
	}
	if frac < 0 {
		frac = 0
	}
	if rnd == nil {
		rnd = rand.Float64
	}
	d := float64(base) * (1 + frac*rnd())
	secs := int((time.Duration(d) + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
