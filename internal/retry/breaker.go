package retry

import (
	"errors"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is refused locally until the open interval
	// elapses; the target gets time to recover instead of more load.
	BreakerOpen
	// BreakerHalfOpen: a bounded number of probe requests may pass; one
	// success closes the breaker, one failure re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// ErrBreakerOpen is returned by callers that consult Allow and find the
// breaker refusing traffic. It is retryable by definition — the breaker
// will eventually half-open — so it is deliberately not Permanent.
var ErrBreakerOpen = errors.New("retry: circuit breaker open")

// BreakerConfig tunes a Breaker. The zero value means "5 consecutive
// failures trip it, it stays open 1s, and half-open admits 1 probe".
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips a closed
	// breaker (default 5).
	Threshold int
	// OpenFor is how long a tripped breaker refuses traffic before
	// half-opening (default 1s).
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent probes while half-open (default 1).
	HalfOpenProbes int
	// Now substitutes the clock for tests (default time.Now).
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a classic three-state circuit breaker, safe for concurrent
// use. Callers bracket each request with Allow (may this request go out?)
// and Record (how did it end?); everything else is internal.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive, while closed
	openedAt time.Time // when the breaker last tripped
	probes   int       // in-flight half-open probes
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may be sent now. While open it returns
// false until OpenFor has elapsed, then transitions to half-open and admits
// up to HalfOpenProbes concurrent probes. Every Allow=true MUST be paired
// with exactly one Record call, or half-open probe slots leak.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes = 0
		fallthrough
	default: // BreakerHalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
}

// Record reports a request outcome. A nil err is a success: it resets the
// failure count and closes a half-open breaker. A non-nil err while closed
// counts toward the threshold; while half-open it re-opens immediately.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if err == nil {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.probes--
		if err == nil {
			b.state = BreakerClosed
			b.failures = 0
			return
		}
		b.trip()
	case BreakerOpen:
		// A straggler from before the trip; nothing to account.
	}
}

// trip moves to open. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.probes = 0
}

// ForceOpen trips the breaker from the outside — the health prober uses it
// to eject a shard that fails readiness even when no request traffic is
// flowing to count failures.
func (b *Breaker) ForceOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trip()
}

// ForceClose resets the breaker — the health prober's readmission edge.
func (b *Breaker) ForceClose() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probes = 0
}

// State returns the breaker's current position (open lazily reported even
// if the next Allow would half-open it).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
