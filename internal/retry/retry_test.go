package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func fastPolicy() Policy {
	return Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Jitter: -1}
}

func TestDoSucceedsAfterRetries(t *testing.T) {
	calls := 0
	err := fastPolicy().Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	sentinel := errors.New("still down")
	calls := 0
	err := fastPolicy().Do(context.Background(), func(context.Context) error {
		calls++
		return sentinel
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	var ae *AttemptsError
	if !errors.As(err, &ae) || ae.Attempts != 3 {
		t.Fatalf("err = %v, want AttemptsError with 3 attempts", err)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err %v does not unwrap to the last attempt error", err)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	sentinel := errors.New("bad request")
	calls := 0
	err := fastPolicy().Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(sentinel)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (permanent must not retry)", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrap of sentinel", err)
	}
	if IsPermanent(Permanent(sentinel)) != true || IsPermanent(sentinel) != false {
		t.Fatal("IsPermanent misclassifies")
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must stay nil")
	}
}

func TestDoRespectsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{MaxAttempts: 100, BaseDelay: 50 * time.Millisecond, Jitter: -1}
	start := time.Now()
	errc := make(chan error, 1)
	go func() {
		errc <- p.Do(ctx, func(context.Context) error {
			calls++
			return errors.New("down")
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do did not return after cancel")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancel took %v, want immediate", elapsed)
	}
}

func TestDoPerAttemptTimeout(t *testing.T) {
	p := Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, Jitter: -1, PerAttempt: 10 * time.Millisecond}
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		<-ctx.Done() // a hung attempt must be cut by the per-attempt deadline
		return ctx.Err()
	})
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
}

func TestDelayCurve(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 45 * time.Millisecond, Multiplier: 2, Jitter: -1}
	want := []time.Duration{10, 20, 40, 45, 45}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestJitteredBounds(t *testing.T) {
	base := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		got := Jittered(base, 0.5, nil)
		if got < 50*time.Millisecond || got > base {
			t.Fatalf("Jittered out of [50ms, 100ms]: %v", got)
		}
	}
	if got := Jittered(base, 0, nil); got != base {
		t.Fatalf("zero frac must be identity, got %v", got)
	}
	// Extremes, pinned by an injected source.
	if got := Jittered(base, 0.5, func() float64 { return 1 }); got != 50*time.Millisecond {
		t.Fatalf("rnd=1 should give the lower bound, got %v", got)
	}
	if got := Jittered(base, 0.5, func() float64 { return 0 }); got != base {
		t.Fatalf("rnd=0 should give the base, got %v", got)
	}
}

func TestJitterSecondsBounds(t *testing.T) {
	// 2s base, 50% jitter: every hint must be in [2, 3] whole seconds and
	// never below the base — a hint shorter than the server's backoff
	// would re-saturate it.
	for i := 0; i < 1000; i++ {
		got := JitterSeconds(2*time.Second, 0.5, nil)
		if got < 2 || got > 3 {
			t.Fatalf("JitterSeconds out of [2,3]: %d", got)
		}
	}
	if got := JitterSeconds(2*time.Second, 0.5, func() float64 { return 1 }); got != 3 {
		t.Fatalf("rnd=1 should give ceil(3s) = 3, got %d", got)
	}
	if got := JitterSeconds(2*time.Second, 0.5, func() float64 { return 0 }); got != 2 {
		t.Fatalf("rnd=0 should give the base, got %d", got)
	}
	if got := JitterSeconds(0, 0.5, nil); got != 1 {
		t.Fatalf("non-positive base must clamp to 1, got %d", got)
	}
	if got := JitterSeconds(300*time.Millisecond, 0, nil); got != 1 {
		t.Fatalf("sub-second base must round up to 1, got %d", got)
	}
}

func TestJitterSecondsSpreads(t *testing.T) {
	// With real randomness the hints must actually spread (this is the
	// anti-stampede property): 200 samples over [5,10]s hitting a single
	// value is (1/6)^200 — a broken RNG, not luck.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[JitterSeconds(5*time.Second, 1.0, nil)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("no spread in jittered hints: %v", seen)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := NewBreaker(BreakerConfig{Threshold: 3, OpenFor: time.Second, HalfOpenProbes: 1, Now: clock})

	if b.State() != BreakerClosed {
		t.Fatal("new breaker must be closed")
	}
	// Two failures + success resets the consecutive count.
	b.Record(errors.New("x"))
	b.Record(errors.New("x"))
	b.Record(nil)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker must allow")
		}
		b.Record(errors.New("x"))
	}
	if b.State() != BreakerClosed {
		t.Fatal("2 consecutive failures must not trip threshold 3")
	}
	b.Record(errors.New("x"))
	if b.State() != BreakerOpen {
		t.Fatal("3rd consecutive failure must trip")
	}
	if b.Allow() {
		t.Fatal("open breaker must refuse")
	}

	// Half-open after OpenFor: exactly one probe.
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("elapsed breaker must half-open and admit a probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe must be refused")
	}
	// Probe fails: re-open, and the full interval applies again.
	b.Record(errors.New("still down"))
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe must re-open")
	}
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("second half-open probe expected")
	}
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatal("successful probe must close")
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
	b.Record(nil)
}

func TestBreakerForce(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	b.ForceOpen()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("ForceOpen must refuse traffic")
	}
	b.ForceClose()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("ForceClose must restore traffic")
	}
	b.Record(nil)
}

func TestBreakerConcurrent(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2, OpenFor: time.Millisecond})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					if i%3 == 0 {
						b.Record(fmt.Errorf("g%d", g))
					} else {
						b.Record(nil)
					}
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
