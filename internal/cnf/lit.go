// Package cnf provides the core propositional data types shared by the
// solver, the proof verifier and the benchmark generators: variables,
// literals, clauses and CNF formulas, together with DIMACS input/output.
//
// Variables are 0-based internally. A literal uses the MiniSat-style
// encoding Lit = 2*Var (+1 if negated), so that the complement of a literal
// is a single XOR and literals index densely into watch lists. DIMACS
// numbering (1-based, sign = polarity) is converted at the boundary.
package cnf

import (
	"fmt"
	"strconv"
)

// Var is a 0-based propositional variable index.
type Var int32

// Lit is a literal in the 2*Var(+1) encoding. The zero value is the
// positive literal of variable 0; use LitUndef for "no literal".
type Lit int32

// LitUndef is a sentinel representing "no literal".
const LitUndef Lit = -1

// VarUndef is a sentinel representing "no variable".
const VarUndef Var = -1

// NewLit builds the literal for variable v, negated when neg is true.
func NewLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1) | 1 }

// Var returns the variable underlying the literal.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// IsNeg reports whether the literal is a negated variable.
func (l Lit) IsNeg() bool { return l&1 == 1 }

// IsPos reports whether the literal is an unnegated variable.
func (l Lit) IsPos() bool { return l&1 == 0 }

// Dimacs returns the literal in DIMACS convention: variable index + 1,
// negative when the literal is negated.
func (l Lit) Dimacs() int {
	d := int(l.Var()) + 1
	if l.IsNeg() {
		return -d
	}
	return d
}

// FromDimacs converts a non-zero DIMACS literal to the internal encoding.
// It panics on 0, which DIMACS reserves as the clause terminator.
func FromDimacs(d int) Lit {
	if d == 0 {
		panic("cnf: DIMACS literal 0 has no internal representation")
	}
	if d < 0 {
		return NegLit(Var(-d - 1))
	}
	return PosLit(Var(d - 1))
}

// String formats the literal in DIMACS convention.
func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	return strconv.Itoa(l.Dimacs())
}

// String formats the variable in DIMACS convention (1-based).
func (v Var) String() string { return fmt.Sprintf("x%d", int(v)+1) }
