package cnf

import (
	"sort"
	"strings"
)

// Clause is a disjunction of literals. Clauses are plain slices so the
// solver and verifier can share them without copying; functions that
// normalize or simplify return fresh slices and never mutate their input.
type Clause []Lit

// Clone returns a copy of the clause.
func (c Clause) Clone() Clause {
	out := make(Clause, len(c))
	copy(out, c)
	return out
}

// MaxVar returns the largest variable mentioned in the clause, or VarUndef
// for the empty clause.
func (c Clause) MaxVar() Var {
	m := VarUndef
	for _, l := range c {
		if v := l.Var(); v > m {
			m = v
		}
	}
	return m
}

// Has reports whether the clause contains the literal.
func (c Clause) Has(l Lit) bool {
	for _, x := range c {
		if x == l {
			return true
		}
	}
	return false
}

// IsUnit reports whether the clause has exactly one literal.
func (c Clause) IsUnit() bool { return len(c) == 1 }

// Normalize returns a sorted, duplicate-free copy of the clause and reports
// whether it is a tautology (contains a literal and its complement).
// The result of a tautologous clause is still returned for inspection.
func (c Clause) Normalize() (Clause, bool) {
	out := c.Clone()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	taut := false
	for i, l := range out {
		if i > 0 && l == out[w-1] {
			continue
		}
		if w > 0 && l == out[w-1].Neg() {
			taut = true
		}
		out[w] = l
		w++
	}
	return out[:w], taut
}

// Equal reports whether two clauses contain exactly the same literals in the
// same order. Combine with Normalize for set equality.
func (c Clause) Equal(d Clause) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// SameLits reports whether the clauses are equal as literal sets.
func (c Clause) SameLits(d Clause) bool {
	cn, _ := c.Normalize()
	dn, _ := d.Normalize()
	return cn.Equal(dn)
}

// Subsumes reports whether every literal of c occurs in d.
func (c Clause) Subsumes(d Clause) bool {
	for _, l := range c {
		if !d.Has(l) {
			return false
		}
	}
	return true
}

// Resolve resolves the clause with other on pivot variable v: the result
// contains all literals of both clauses except the two literals of v.
// It reports ok=false when the clauses do not clash on v (c must contain
// one polarity of v and other the opposite). The resolvent is normalized
// (sorted, deduplicated); taut reports whether it is tautologous.
func (c Clause) Resolve(other Clause, v Var) (res Clause, taut, ok bool) {
	var inC, inO Lit = LitUndef, LitUndef
	for _, l := range c {
		if l.Var() == v {
			inC = l
		}
	}
	for _, l := range other {
		if l.Var() == v {
			inO = l
		}
	}
	if inC == LitUndef || inO == LitUndef || inC != inO.Neg() {
		return nil, false, false
	}
	res = make(Clause, 0, len(c)+len(other)-2)
	for _, l := range c {
		if l.Var() != v {
			res = append(res, l)
		}
	}
	for _, l := range other {
		if l.Var() != v {
			res = append(res, l)
		}
	}
	res, taut = res.Normalize()
	return res, taut, true
}

// ClashVar returns the unique variable on which c and d clash (appear with
// opposite polarity). It reports ok=false when there is no clash variable or
// more than one, in which case resolving the clauses would be unsound or
// tautologous.
func ClashVar(c, d Clause) (v Var, ok bool) {
	var clash []Var
	for _, lc := range c {
		for _, ld := range d {
			if lc != ld.Neg() {
				continue
			}
			seen := false
			for _, u := range clash {
				if u == lc.Var() {
					seen = true
					break
				}
			}
			if !seen {
				clash = append(clash, lc.Var())
			}
		}
	}
	if len(clash) != 1 {
		return VarUndef, false
	}
	return clash[0], true
}

// String formats the clause as DIMACS literals terminated by 0.
func (c Clause) String() string {
	var b strings.Builder
	for _, l := range c {
		b.WriteString(l.String())
		b.WriteByte(' ')
	}
	b.WriteByte('0')
	return b.String()
}
