package cnf

import (
	"math/rand"
	"testing"
)

func TestPermuteVars(t *testing.T) {
	f := NewFormula(3).Add(1, -2).Add(2, 3)
	g, err := PermuteVars(f, []Var{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Clauses[0].SameLits(clauseOf(3, -1)) {
		t.Errorf("clause 0 = %v", g.Clauses[0])
	}
	if !g.Clauses[1].SameLits(clauseOf(1, 2)) {
		t.Errorf("clause 1 = %v", g.Clauses[1])
	}
}

func TestPermuteVarsRejectsBadInput(t *testing.T) {
	f := NewFormula(2).Add(1, 2)
	if _, err := PermuteVars(f, []Var{0}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := PermuteVars(f, []Var{0, 0}); err == nil {
		t.Error("non-permutation accepted")
	}
	if _, err := PermuteVars(f, []Var{0, 5}); err == nil {
		t.Error("out-of-range permutation accepted")
	}
}

// TestPermuteRoundTrip: permuting and mapping a model back preserves
// satisfaction.
func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 100; round++ {
		nVars := 3 + rng.Intn(6)
		f := NewFormula(nVars)
		for i := 0; i < nVars*2; i++ {
			c := make(Clause, 0, 3)
			for j := 0; j < 3; j++ {
				c = append(c, NewLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			f.AddClause(c)
		}
		perm := make([]Var, nVars)
		for i := range perm {
			perm[i] = Var(i)
		}
		rng.Shuffle(nVars, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		g, err := PermuteVars(f, perm)
		if err != nil {
			t.Fatal(err)
		}
		// Any assignment m of g corresponds to PermuteModel(m) of f.
		for trial := 0; trial < 20; trial++ {
			m := make([]bool, nVars)
			for i := range m {
				m[i] = rng.Intn(2) == 0
			}
			back := PermuteModel(m, perm)
			if g.Eval(m) != f.Eval(back) {
				t.Fatalf("round %d: satisfaction not preserved under permutation", round)
			}
		}
	}
}
