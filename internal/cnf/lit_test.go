package cnf

import (
	"testing"
	"testing/quick"
)

func TestLitEncoding(t *testing.T) {
	p := PosLit(3)
	n := NegLit(3)
	if p.Var() != 3 || n.Var() != 3 {
		t.Fatalf("Var: got %d, %d; want 3, 3", p.Var(), n.Var())
	}
	if p.IsNeg() {
		t.Error("PosLit reported negative")
	}
	if !n.IsNeg() {
		t.Error("NegLit reported positive")
	}
	if p.Neg() != n || n.Neg() != p {
		t.Error("Neg is not an involution between polarities")
	}
	if NewLit(3, false) != p || NewLit(3, true) != n {
		t.Error("NewLit disagrees with PosLit/NegLit")
	}
}

func TestLitDimacsRoundTrip(t *testing.T) {
	for _, d := range []int{1, -1, 2, -2, 100, -100, 1 << 20, -(1 << 20)} {
		l := FromDimacs(d)
		if got := l.Dimacs(); got != d {
			t.Errorf("FromDimacs(%d).Dimacs() = %d", d, got)
		}
	}
}

func TestLitDimacsRoundTripProperty(t *testing.T) {
	f := func(raw int32) bool {
		d := int(raw % (1 << 24))
		if d == 0 {
			d = 1
		}
		return FromDimacs(d).Dimacs() == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromDimacsZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromDimacs(0) did not panic")
		}
	}()
	FromDimacs(0)
}

func TestLitNegProperty(t *testing.T) {
	f := func(raw uint16, neg bool) bool {
		l := NewLit(Var(raw), neg)
		return l.Neg().Neg() == l && l.Neg().Var() == l.Var() && l.Neg().IsNeg() != l.IsNeg()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLitString(t *testing.T) {
	if got := PosLit(0).String(); got != "1" {
		t.Errorf("PosLit(0).String() = %q, want \"1\"", got)
	}
	if got := NegLit(4).String(); got != "-5" {
		t.Errorf("NegLit(4).String() = %q, want \"-5\"", got)
	}
	if got := LitUndef.String(); got != "undef" {
		t.Errorf("LitUndef.String() = %q", got)
	}
}
