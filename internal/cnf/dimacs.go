package cnf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseLimits bounds what ParseDimacs accepts from untrusted input. Zero
// fields fall back to DefaultParseLimits.
type ParseLimits struct {
	// MaxClauses bounds the number of clauses in the formula.
	MaxClauses int
	// MaxClauseLen bounds the number of literals in a single clause.
	MaxClauseLen int
	// MaxVars bounds the variable count — both as declared by the header and
	// as implied by literal magnitudes. Keeps literals inside the int32 Var
	// encoding and stops a single huge token from sizing a variable range.
	MaxVars int
	// MaxBytes bounds how many input bytes the parser consumes.
	MaxBytes int64
}

// DefaultParseLimits matches the proof package's defaults: generous enough
// for the paper's largest benchmarks with room to spare, small enough that
// only hostile or corrupt input trips them.
func DefaultParseLimits() ParseLimits {
	return ParseLimits{
		MaxClauses:   64 << 20, // 67M clauses
		MaxClauseLen: 1 << 22,  // 4M literals in one clause
		MaxVars:      1 << 27,  // 134M variables
		MaxBytes:     8 << 30,  // 8 GiB of input
	}
}

func (l ParseLimits) withDefaults() ParseLimits {
	d := DefaultParseLimits()
	if l.MaxClauses == 0 {
		l.MaxClauses = d.MaxClauses
	}
	if l.MaxClauseLen == 0 {
		l.MaxClauseLen = d.MaxClauseLen
	}
	if l.MaxVars == 0 {
		l.MaxVars = d.MaxVars
	}
	if l.MaxBytes == 0 {
		l.MaxBytes = d.MaxBytes
	}
	return l
}

// ErrLimit is the errors.Is target of every parse-limit violation.
var ErrLimit = errors.New("dimacs: input exceeds limit")

// ErrMalformed is the errors.Is target of every DIMACS syntax error, so
// callers can tell bad input apart from IO failures without string matching.
var ErrMalformed = errors.New("dimacs: malformed input")

// LimitError reports which parse bound an input blew through.
type LimitError struct {
	What  string // "clauses" | "clause length" | "variables" | "bytes"
	Limit int64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("dimacs: input exceeds %s limit %d", e.What, e.Limit)
}

func (e *LimitError) Unwrap() error { return ErrLimit }

// cappedReader hard-errors once more than limit bytes have been consumed,
// instead of io.LimitReader's silent EOF (which would make an oversized file
// parse as a truncated-but-plausible formula).
type cappedReader struct {
	r     io.Reader
	left  int64
	limit int64
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.left == 0 {
		// Exactly at the limit: an input that ends here is legal, one with
		// more bytes is not — probe a single byte to tell them apart.
		var b [1]byte
		n, err := c.r.Read(b[:])
		if n > 0 {
			c.left = -1
			return 0, &LimitError{What: "bytes", Limit: c.limit}
		}
		return 0, err
	}
	if c.left < 0 {
		return 0, &LimitError{What: "bytes", Limit: c.limit}
	}
	if int64(len(p)) > c.left {
		p = p[:c.left]
	}
	n, err := c.r.Read(p)
	c.left -= int64(n)
	return n, err
}

// ParseDimacs reads a CNF formula in DIMACS format under DefaultParseLimits.
// It tolerates comment lines anywhere, a missing header (the formula is then
// sized from its content), literals above the declared variable count (the
// range grows), and clauses spanning multiple lines. It rejects a truncated
// final clause and a header declaring more clauses than the file provides.
func ParseDimacs(r io.Reader) (*Formula, error) {
	return ParseDimacsLimited(r, DefaultParseLimits())
}

// ParseDimacsLimited is ParseDimacs with explicit limits — the entry point
// for genuinely untrusted input. Syntax problems wrap ErrMalformed and limit
// violations wrap ErrLimit.
func ParseDimacsLimited(r io.Reader, lim ParseLimits) (*Formula, error) {
	lim = lim.withDefaults()
	sc := bufio.NewScanner(&cappedReader{r: r, left: lim.MaxBytes, limit: lim.MaxBytes})
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)

	f := &Formula{}
	declaredClauses := -1
	var cur Clause

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == 'c' || line[0] == '%' {
			continue
		}
		if line[0] == 'p' {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("%w: line %d: bad header %q", ErrMalformed, lineNo, line)
			}
			nv, err1 := strconv.Atoi(fields[2])
			nc, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 0 || nc < 0 {
				return nil, fmt.Errorf("%w: line %d: bad header %q", ErrMalformed, lineNo, line)
			}
			if nv > lim.MaxVars {
				return nil, &LimitError{What: "variables", Limit: int64(lim.MaxVars)}
			}
			if nc > lim.MaxClauses {
				return nil, &LimitError{What: "clauses", Limit: int64(lim.MaxClauses)}
			}
			f.NumVars = nv
			declaredClauses = nc
			continue
		}
		for _, tok := range strings.Fields(line) {
			d, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: unexpected token %q", ErrMalformed, lineNo, tok)
			}
			if d == 0 {
				if len(f.Clauses) >= lim.MaxClauses {
					return nil, &LimitError{What: "clauses", Limit: int64(lim.MaxClauses)}
				}
				f.Clauses = append(f.Clauses, cur)
				cur = nil
				continue
			}
			// Bound the magnitude before FromDimacs narrows it into the
			// int32 Var encoding.
			if d > lim.MaxVars || -d > lim.MaxVars {
				return nil, &LimitError{What: "variables", Limit: int64(lim.MaxVars)}
			}
			if len(cur) >= lim.MaxClauseLen {
				return nil, &LimitError{What: "clause length", Limit: int64(lim.MaxClauseLen)}
			}
			l := FromDimacs(d)
			if int(l.Var()) >= f.NumVars {
				f.NumVars = int(l.Var()) + 1
			}
			cur = append(cur, l)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		return nil, fmt.Errorf("%w: last clause not terminated by 0", ErrMalformed)
	}
	if declaredClauses >= 0 && len(f.Clauses) < declaredClauses {
		return nil, fmt.Errorf("%w: header declares %d clauses, found %d",
			ErrMalformed, declaredClauses, len(f.Clauses))
	}
	return f, nil
}

// ParseDimacsString parses a DIMACS formula held in a string.
func ParseDimacsString(s string) (*Formula, error) {
	return ParseDimacs(strings.NewReader(s))
}

// WriteDimacs writes the formula in DIMACS format.
func WriteDimacs(w io.Writer, f *Formula) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := bw.WriteString(strconv.Itoa(l.Dimacs())); err != nil {
				return err
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
