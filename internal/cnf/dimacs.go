package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDimacs reads a CNF formula in DIMACS format. It tolerates comment
// lines anywhere, a missing header (the formula is then sized from its
// content), literals above the declared variable count (the range grows),
// and clauses spanning multiple lines. It rejects a truncated final clause
// and a header declaring more clauses than the file provides.
func ParseDimacs(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)

	f := &Formula{}
	declaredClauses := -1
	var cur Clause

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == 'c' || line[0] == '%' {
			continue
		}
		if line[0] == 'p' {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dimacs: line %d: bad header %q", lineNo, line)
			}
			nv, err1 := strconv.Atoi(fields[2])
			nc, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 0 || nc < 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad header %q", lineNo, line)
			}
			f.NumVars = nv
			declaredClauses = nc
			continue
		}
		for _, tok := range strings.Fields(line) {
			d, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs: line %d: unexpected token %q", lineNo, tok)
			}
			if d == 0 {
				f.Clauses = append(f.Clauses, cur)
				cur = nil
				continue
			}
			l := FromDimacs(d)
			if int(l.Var()) >= f.NumVars {
				f.NumVars = int(l.Var()) + 1
			}
			cur = append(cur, l)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		return nil, fmt.Errorf("dimacs: last clause not terminated by 0")
	}
	if declaredClauses >= 0 && len(f.Clauses) < declaredClauses {
		return nil, fmt.Errorf("dimacs: header declares %d clauses, found %d",
			declaredClauses, len(f.Clauses))
	}
	return f, nil
}

// ParseDimacsString parses a DIMACS formula held in a string.
func ParseDimacsString(s string) (*Formula, error) {
	return ParseDimacs(strings.NewReader(s))
}

// WriteDimacs writes the formula in DIMACS format.
func WriteDimacs(w io.Writer, f *Formula) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := bw.WriteString(strconv.Itoa(l.Dimacs())); err != nil {
				return err
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
