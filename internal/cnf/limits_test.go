package cnf

import (
	"errors"
	"strings"
	"testing"
)

func TestParseDimacsLimitedMaxVars(t *testing.T) {
	// Magnitudes past the bound must be refused before FromDimacs narrows
	// them into the int32 Var encoding — including ones that would have
	// wrapped negative and panicked a downstream index.
	for _, in := range []string{
		"p cnf 2 1\n9000000000 0\n",
		"p cnf 2 1\n-9000000000 0\n",
		"70000 0\n",
	} {
		_, err := ParseDimacsLimited(strings.NewReader(in), ParseLimits{MaxVars: 65536})
		var le *LimitError
		if !errors.As(err, &le) || !errors.Is(err, ErrLimit) {
			t.Fatalf("ParseDimacsLimited(%q) err = %v, want *LimitError", in, err)
		}
		if le.What != "variables" {
			t.Fatalf("ParseDimacsLimited(%q): tripped %q limit, want variables", in, le.What)
		}
	}
	// A header declaring an absurd variable count is refused up front,
	// before any per-variable allocation downstream.
	if _, err := ParseDimacsLimited(strings.NewReader("p cnf 1000000 1\n1 0\n"),
		ParseLimits{MaxVars: 65536}); !errors.Is(err, ErrLimit) {
		t.Fatalf("header variable limit: err = %v", err)
	}
}

func TestParseDimacsLimitedOtherLimits(t *testing.T) {
	if _, err := ParseDimacsLimited(strings.NewReader("1 0\n2 0\n3 0\n"),
		ParseLimits{MaxClauses: 2}); !errors.Is(err, ErrLimit) {
		t.Fatalf("clause-count limit: err = %v", err)
	}
	if _, err := ParseDimacsLimited(strings.NewReader("p cnf 2 5\n1 0\n"),
		ParseLimits{MaxClauses: 2}); !errors.Is(err, ErrLimit) {
		t.Fatalf("header clause limit: err = %v", err)
	}
	if _, err := ParseDimacsLimited(strings.NewReader("1 2 3 4 0\n"),
		ParseLimits{MaxClauseLen: 3}); !errors.Is(err, ErrLimit) {
		t.Fatalf("clause-length limit: err = %v", err)
	}
	if _, err := ParseDimacsLimited(strings.NewReader("1 2 0\n-1 0\n"),
		ParseLimits{MaxBytes: 4}); !errors.Is(err, ErrLimit) {
		t.Fatalf("byte limit: err = %v", err)
	}
}

func TestParseDimacsMalformedTyped(t *testing.T) {
	cases := []string{
		"p dnf 2 1\n1 0\n", // bad header kind
		"p cnf x 1\n1 0\n", // non-numeric header
		"1 two 0\n",        // garbage token
		"1 2\n",            // unterminated final clause
		"p cnf 2 3\n1 0\n", // fewer clauses than declared
	}
	for _, in := range cases {
		if _, err := ParseDimacsString(in); !errors.Is(err, ErrMalformed) {
			t.Fatalf("ParseDimacsString(%q) err = %v, want ErrMalformed", in, err)
		}
	}
}
