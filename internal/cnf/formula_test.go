package cnf

import (
	"bytes"
	"strings"
	"testing"
)

func TestFormulaAdd(t *testing.T) {
	f := NewFormula(0)
	f.Add(1, -2).Add(2, 3).Add(-3)
	if f.NumVars != 3 {
		t.Errorf("NumVars = %d, want 3", f.NumVars)
	}
	if f.NumClauses() != 3 {
		t.Errorf("NumClauses = %d, want 3", f.NumClauses())
	}
	if f.NumLiterals() != 5 {
		t.Errorf("NumLiterals = %d, want 5", f.NumLiterals())
	}
	if f.MaxVar() != 2 {
		t.Errorf("MaxVar = %d, want 2", f.MaxVar())
	}
}

func TestFormulaEval(t *testing.T) {
	f := NewFormula(0).Add(1, 2).Add(-1, 2).Add(1, -2)
	if !f.Eval([]bool{true, true}) {
		t.Error("satisfying assignment rejected")
	}
	if f.Eval([]bool{false, false}) {
		t.Error("falsifying assignment accepted")
	}
}

func TestFormulaCloneIndependent(t *testing.T) {
	f := NewFormula(0).Add(1, 2)
	g := f.Clone()
	g.Clauses[0][0] = FromDimacs(-1)
	if f.Clauses[0][0] != FromDimacs(1) {
		t.Error("Clone shares clause storage")
	}
}

func TestFormulaRestrict(t *testing.T) {
	f := NewFormula(0).Add(1).Add(2).Add(3)
	g := f.Restrict([]int{0, 2})
	if g.NumClauses() != 2 || !g.Clauses[1].SameLits(clauseOf(3)) {
		t.Errorf("Restrict = %v", g.Clauses)
	}
	if g.NumVars != f.NumVars {
		t.Errorf("Restrict changed NumVars: %d vs %d", g.NumVars, f.NumVars)
	}
}

func TestFormulaStats(t *testing.T) {
	f := NewFormula(0).Add(1).Add(1, 2).Add(1, 2, 3, 4)
	s := f.Stats()
	if s.Units != 1 || s.Binary != 1 || s.MaxLen != 4 || s.Literals != 7 || s.Clauses != 3 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestDimacsRoundTrip(t *testing.T) {
	f := NewFormula(5)
	f.Add(1, -2, 3).Add(-4, 5).Add(2)
	var buf bytes.Buffer
	if err := WriteDimacs(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDimacs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != f.NumVars || g.NumClauses() != f.NumClauses() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			g.NumVars, g.NumClauses(), f.NumVars, f.NumClauses())
	}
	for i := range f.Clauses {
		if !f.Clauses[i].Equal(g.Clauses[i]) {
			t.Errorf("clause %d: %v vs %v", i, f.Clauses[i], g.Clauses[i])
		}
	}
}

func TestParseDimacsComments(t *testing.T) {
	in := `c a comment
p cnf 3 2
c another comment
1 -2 0
c inline comment line
-1 3 0
`
	f, err := ParseDimacsString(in)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || f.NumClauses() != 2 {
		t.Errorf("got %d vars, %d clauses", f.NumVars, f.NumClauses())
	}
}

func TestParseDimacsMultiLineClause(t *testing.T) {
	f, err := ParseDimacsString("p cnf 4 1\n1 2\n3 4 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 1 || len(f.Clauses[0]) != 4 {
		t.Errorf("got %d clauses, first len %d", f.NumClauses(), len(f.Clauses[0]))
	}
}

func TestParseDimacsNoHeader(t *testing.T) {
	f, err := ParseDimacsString("1 -3 0\n2 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || f.NumClauses() != 2 {
		t.Errorf("got %d vars, %d clauses; want 3, 2", f.NumVars, f.NumClauses())
	}
}

func TestParseDimacsErrors(t *testing.T) {
	cases := []string{
		"p cnf x 2\n1 0\n",
		"p cnf 2\n1 0\n",
		"p dnf 2 1\n1 0\n",
		"1 2\n",            // unterminated clause
		"p cnf 2 5\n1 0\n", // fewer clauses than declared
		"1 two 0\n",        // junk token
	}
	for _, in := range cases {
		if _, err := ParseDimacsString(in); err == nil {
			t.Errorf("ParseDimacs(%q) succeeded, want error", in)
		}
	}
}

func TestParseDimacsEmptyClause(t *testing.T) {
	f, err := ParseDimacsString("p cnf 1 2\n0\n1 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses[0]) != 0 {
		t.Errorf("first clause should be empty, got %v", f.Clauses[0])
	}
}

func TestParseDimacsGrowsVarRange(t *testing.T) {
	f, err := ParseDimacsString("p cnf 1 1\n1 7 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 7 {
		t.Errorf("NumVars = %d, want 7", f.NumVars)
	}
}

func TestFormulaStringIsDimacs(t *testing.T) {
	f := NewFormula(0).Add(1, -2)
	if !strings.HasPrefix(f.String(), "p cnf 2 1\n") {
		t.Errorf("String() = %q", f.String())
	}
	if _, err := ParseDimacsString(f.String()); err != nil {
		t.Errorf("String() not parseable: %v", err)
	}
}
