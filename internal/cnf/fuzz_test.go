package cnf

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzParseCNF pins the DIMACS parser's hardening contract on arbitrary
// bytes: never panic, fail only with the typed error classes, and produce
// formulas whose literals all fit the declared variable range — the
// invariant the BCP engines index on without re-checking.
func FuzzParseCNF(f *testing.F) {
	f.Add([]byte("p cnf 3 2\n1 -2 3 0\n-1 2 0\n"))
	f.Add([]byte("c comment\n%\n1 2 0\n"))
	f.Add([]byte("p cnf 0 0\n"))
	f.Add([]byte("1 -9999999999999 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := ParseDimacsLimited(bytes.NewReader(data),
			ParseLimits{MaxClauses: 1 << 12, MaxClauseLen: 1 << 10, MaxVars: 1 << 16, MaxBytes: 1 << 20})
		if err != nil {
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrLimit) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		for _, c := range parsed.Clauses {
			for _, l := range c {
				if v := int(l.Var()); v < 0 || v >= parsed.NumVars {
					t.Fatalf("literal %v outside variable range %d", l, parsed.NumVars)
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteDimacs(&buf, parsed); err != nil {
			t.Fatalf("writing parsed formula: %v", err)
		}
		back, err := ParseDimacsString(buf.String())
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		if back.NumClauses() != parsed.NumClauses() || back.NumVars != parsed.NumVars {
			t.Fatalf("round trip changed shape: %d/%d clauses, %d/%d vars",
				back.NumClauses(), parsed.NumClauses(), back.NumVars, parsed.NumVars)
		}
	})
}
