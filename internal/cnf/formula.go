package cnf

import (
	"fmt"
	"strings"
)

// Formula is a CNF formula: a conjunction of clauses over variables
// 0..NumVars-1. NumVars may exceed the largest mentioned variable (DIMACS
// headers permit this and some generators reserve spare variables).
type Formula struct {
	NumVars int
	Clauses []Clause
}

// NewFormula returns an empty formula over n variables.
func NewFormula(n int) *Formula {
	return &Formula{NumVars: n}
}

// Add appends a clause built from DIMACS-style integer literals. It grows
// NumVars as needed and is intended for tests and examples where writing
// raw Lit values would be noisy.
func (f *Formula) Add(dimacs ...int) *Formula {
	c := make(Clause, 0, len(dimacs))
	for _, d := range dimacs {
		l := FromDimacs(d)
		if int(l.Var()) >= f.NumVars {
			f.NumVars = int(l.Var()) + 1
		}
		c = append(c, l)
	}
	f.Clauses = append(f.Clauses, c)
	return f
}

// AddClause appends a clause of internal literals, growing NumVars as
// needed. The clause is stored as given (no copy, no normalization).
func (f *Formula) AddClause(c Clause) {
	if v := c.MaxVar(); int(v) >= f.NumVars {
		f.NumVars = int(v) + 1
	}
	f.Clauses = append(f.Clauses, c)
}

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// NumLiterals returns the total number of literal occurrences.
func (f *Formula) NumLiterals() int {
	n := 0
	for _, c := range f.Clauses {
		n += len(c)
	}
	return n
}

// MaxVar returns the largest variable mentioned in any clause, or VarUndef
// when the formula has no literals.
func (f *Formula) MaxVar() Var {
	m := VarUndef
	for _, c := range f.Clauses {
		if v := c.MaxVar(); v > m {
			m = v
		}
	}
	return m
}

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	out := &Formula{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		out.Clauses[i] = c.Clone()
	}
	return out
}

// Eval evaluates the formula under a total assignment (assign[v] is the
// value of variable v) and reports whether every clause is satisfied.
func (f *Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		if !EvalClause(c, assign) {
			return false
		}
	}
	return true
}

// EvalClause evaluates one clause under a total assignment.
func EvalClause(c Clause, assign []bool) bool {
	for _, l := range c {
		v := l.Var()
		if int(v) >= len(assign) {
			continue
		}
		if assign[v] != l.IsNeg() {
			return true
		}
	}
	return false
}

// Restrict returns the sub-formula consisting of the clauses whose indices
// appear in keep. Clause slices are shared, not copied.
func (f *Formula) Restrict(keep []int) *Formula {
	out := &Formula{NumVars: f.NumVars, Clauses: make([]Clause, 0, len(keep))}
	for _, i := range keep {
		out.Clauses = append(out.Clauses, f.Clauses[i])
	}
	return out
}

// Stats summarizes a formula for logging and table rendering.
type Stats struct {
	Vars     int
	Clauses  int
	Literals int
	Units    int
	Binary   int
	MaxLen   int
}

// Stats computes summary statistics.
func (f *Formula) Stats() Stats {
	s := Stats{Vars: f.NumVars, Clauses: len(f.Clauses)}
	for _, c := range f.Clauses {
		s.Literals += len(c)
		switch len(c) {
		case 1:
			s.Units++
		case 2:
			s.Binary++
		}
		if len(c) > s.MaxLen {
			s.MaxLen = len(c)
		}
	}
	return s
}

// String renders the formula in DIMACS format (for small formulas in tests
// and error messages; use WriteDimacs for streaming output).
func (f *Formula) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, c := range f.Clauses {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}
