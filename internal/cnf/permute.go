package cnf

import "fmt"

// PermuteVars applies a variable permutation to the formula: variable v
// becomes perm[v] (polarities preserved). perm must be a permutation of
// 0..NumVars-1. Satisfiability is invariant under permutation, which the
// test suites exploit to shake out ordering-dependent bugs.
func PermuteVars(f *Formula, perm []Var) (*Formula, error) {
	if len(perm) != f.NumVars {
		return nil, fmt.Errorf("cnf: permutation has %d entries for %d variables", len(perm), f.NumVars)
	}
	seen := make([]bool, f.NumVars)
	for _, p := range perm {
		if int(p) < 0 || int(p) >= f.NumVars || seen[p] {
			return nil, fmt.Errorf("cnf: not a permutation")
		}
		seen[p] = true
	}
	out := NewFormula(f.NumVars)
	for _, c := range f.Clauses {
		nc := make(Clause, len(c))
		for i, l := range c {
			nc[i] = NewLit(perm[l.Var()], l.IsNeg())
		}
		out.Clauses = append(out.Clauses, nc)
	}
	return out, nil
}

// PermuteModel maps a model of a permuted formula back to the original
// variable numbering: if g = PermuteVars(f, perm) and m satisfies g, then
// PermuteModel(m, perm) satisfies f.
func PermuteModel(model []bool, perm []Var) []bool {
	out := make([]bool, len(model))
	for v, p := range perm {
		if int(p) < len(model) {
			out[v] = model[p]
		}
	}
	return out
}
