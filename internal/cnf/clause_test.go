package cnf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func clauseOf(dimacs ...int) Clause {
	c := make(Clause, 0, len(dimacs))
	for _, d := range dimacs {
		c = append(c, FromDimacs(d))
	}
	return c
}

func TestClauseNormalize(t *testing.T) {
	tests := []struct {
		in   Clause
		want Clause
		taut bool
	}{
		{clauseOf(3, 1, 2), clauseOf(1, 2, 3), false},
		{clauseOf(1, 1, 1), clauseOf(1), false},
		{clauseOf(1, -1), clauseOf(1, -1), true},
		{clauseOf(2, -1, 1, 2), clauseOf(1, -1, 2), true},
		{clauseOf(), clauseOf(), false},
	}
	for _, tt := range tests {
		got, taut := tt.in.Normalize()
		if taut != tt.taut {
			t.Errorf("Normalize(%v) taut = %v, want %v", tt.in, taut, tt.taut)
		}
		if !got.SameLits(tt.want) {
			t.Errorf("Normalize(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestClauseNormalizeDoesNotMutate(t *testing.T) {
	in := clauseOf(3, 1, 2)
	orig := in.Clone()
	in.Normalize()
	if !in.Equal(orig) {
		t.Errorf("Normalize mutated its receiver: %v -> %v", orig, in)
	}
}

func TestClauseResolve(t *testing.T) {
	c := clauseOf(1, 2)
	d := clauseOf(-1, 3)
	res, taut, ok := c.Resolve(d, 0)
	if !ok || taut {
		t.Fatalf("Resolve: ok=%v taut=%v", ok, taut)
	}
	if !res.SameLits(clauseOf(2, 3)) {
		t.Errorf("Resolve = %v, want (2 3)", res)
	}
}

func TestClauseResolveTautology(t *testing.T) {
	c := clauseOf(1, 2)
	d := clauseOf(-1, -2)
	res, taut, ok := c.Resolve(d, 0)
	if !ok {
		t.Fatal("Resolve reported no clash on var 0")
	}
	if !taut {
		t.Errorf("Resolve = %v, expected tautology", res)
	}
}

func TestClauseResolveNoClash(t *testing.T) {
	c := clauseOf(1, 2)
	d := clauseOf(1, 3)
	if _, _, ok := c.Resolve(d, 0); ok {
		t.Error("Resolve succeeded without clashing literals")
	}
	if _, _, ok := c.Resolve(d, 5); ok {
		t.Error("Resolve succeeded on absent pivot")
	}
}

func TestClauseResolveEmpty(t *testing.T) {
	c := clauseOf(1)
	d := clauseOf(-1)
	res, taut, ok := c.Resolve(d, 0)
	if !ok || taut || len(res) != 0 {
		t.Errorf("unit resolution: res=%v taut=%v ok=%v, want empty/false/true", res, taut, ok)
	}
}

func TestClashVar(t *testing.T) {
	if v, ok := ClashVar(clauseOf(1, 2), clauseOf(-1, 3)); !ok || v != 0 {
		t.Errorf("ClashVar = %v, %v; want 0, true", v, ok)
	}
	if _, ok := ClashVar(clauseOf(1, 2), clauseOf(-1, -2)); ok {
		t.Error("ClashVar accepted a double clash")
	}
	if _, ok := ClashVar(clauseOf(1, 2), clauseOf(3)); ok {
		t.Error("ClashVar accepted non-clashing clauses")
	}
	// Duplicate clash literals still count as one variable.
	if v, ok := ClashVar(clauseOf(1, 1, 2), clauseOf(-1, -1, 3)); !ok || v != 0 {
		t.Errorf("ClashVar with duplicates = %v, %v; want 0, true", v, ok)
	}
}

func TestClauseSubsumes(t *testing.T) {
	if !clauseOf(1, 2).Subsumes(clauseOf(2, 1, 3)) {
		t.Error("subset not detected")
	}
	if clauseOf(1, 4).Subsumes(clauseOf(1, 2, 3)) {
		t.Error("non-subset detected as subsuming")
	}
	if !Clause(nil).Subsumes(clauseOf(1)) {
		t.Error("empty clause must subsume everything")
	}
}

// Property: the resolvent of two clauses is implied by their conjunction —
// any assignment satisfying both parents satisfies the resolvent (when it is
// not a tautology, which is trivially satisfied anyway).
func TestResolventImpliedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nVars = 6
	randClause := func(must Lit) Clause {
		n := 1 + rng.Intn(3)
		c := Clause{must}
		for i := 0; i < n; i++ {
			c = append(c, NewLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0))
		}
		out, _ := c.Normalize()
		return out
	}
	for iter := 0; iter < 500; iter++ {
		v := Var(rng.Intn(nVars))
		c := randClause(PosLit(v))
		d := randClause(NegLit(v))
		if c.Has(NegLit(v)) || d.Has(PosLit(v)) {
			continue // tautologous on the pivot; Resolve rejects the ambiguity
		}
		res, taut, ok := c.Resolve(d, v)
		if !ok {
			t.Fatalf("Resolve failed on constructed clash: %v, %v", c, d)
		}
		if taut {
			continue
		}
		for m := 0; m < 1<<nVars; m++ {
			assign := make([]bool, nVars)
			for i := range assign {
				assign[i] = m&(1<<i) != 0
			}
			if EvalClause(c, assign) && EvalClause(d, assign) && !EvalClause(res, assign) {
				t.Fatalf("resolvent %v not implied by %v and %v under %v", res, c, d, assign)
			}
		}
	}
}

func TestNormalizeIdempotentProperty(t *testing.T) {
	f := func(raw []int8) bool {
		c := make(Clause, 0, len(raw))
		for _, d := range raw {
			v := int(d)%8 + 9 // 1..17 positive
			if d%2 == 0 {
				v = -v
			}
			c = append(c, FromDimacs(v))
		}
		n1, t1 := c.Normalize()
		n2, t2 := n1.Normalize()
		return n1.Equal(n2) && t1 == t2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
