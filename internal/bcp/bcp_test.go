package bcp

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

func cl(dimacs ...int) cnf.Clause {
	c := make(cnf.Clause, 0, len(dimacs))
	for _, d := range dimacs {
		c = append(c, cnf.FromDimacs(d))
	}
	return c
}

// engines returns one of each propagator implementation for table-driven
// tests that must hold for both.
func engines(n int) map[string]Propagator {
	return map[string]Propagator{
		"watched":  NewEngine(n),
		"counting": NewCounting(n),
	}
}

func TestRefuteFindsChainConflict(t *testing.T) {
	for name, e := range engines(4) {
		t.Run(name, func(t *testing.T) {
			// x1 -> x2 -> x3 -> x4, plus (~x1 ~x4): refuting (~x1) assumes
			// x1 and propagates to a falsified (~x1 ~x4).
			e.Add(cl(-1, 2))
			e.Add(cl(-2, 3))
			c3 := e.Add(cl(-3, 4))
			c4 := e.Add(cl(-1, -4))
			conflict, selfContra := e.Refute(cl(-1))
			if selfContra {
				t.Fatal("reported self-contradictory")
			}
			// Either of the last two clauses ends up falsified depending on
			// propagation order; both are correct conflicts.
			if conflict != c3 && conflict != c4 {
				t.Fatalf("conflict = %d, want %d or %d", conflict, c3, c4)
			}
		})
	}
}

func TestRefuteNoConflict(t *testing.T) {
	for name, e := range engines(3) {
		t.Run(name, func(t *testing.T) {
			e.Add(cl(1, 2))
			e.Add(cl(-2, 3))
			conflict, selfContra := e.Refute(cl(-1))
			if conflict != NoConflict || selfContra {
				t.Fatalf("conflict = %d selfContra = %v, want none", conflict, selfContra)
			}
		})
	}
}

func TestRefuteUnitConflict(t *testing.T) {
	for name, e := range engines(1) {
		t.Run(name, func(t *testing.T) {
			u := e.Add(cl(1))
			// Refuting clause (1) assumes x1=false, clashing with unit (1).
			conflict, selfContra := e.Refute(cl(1))
			if selfContra || conflict != u {
				t.Fatalf("conflict = %d selfContra = %v, want unit %d", conflict, selfContra, u)
			}
		})
	}
}

func TestRefuteEmptyAssumptions(t *testing.T) {
	for name, e := range engines(2) {
		t.Run(name, func(t *testing.T) {
			e.Add(cl(1))
			e.Add(cl(-1, 2))
			bad := e.Add(cl(-2))
			conflict, _ := e.Refute(nil)
			// Unit propagation alone refutes the database; conflict is
			// either the falsified binary-implied unit or (-2) depending on
			// unit injection order — both are legitimate falsified clauses.
			if conflict == NoConflict {
				t.Fatal("no conflict from unit propagation")
			}
			_ = bad
		})
	}
}

func TestRefuteTautologyIsSelfContradictory(t *testing.T) {
	for name, e := range engines(2) {
		t.Run(name, func(t *testing.T) {
			e.Add(cl(1, 2))
			conflict, selfContra := e.Refute(cl(1, -1))
			if !selfContra || conflict != NoConflict {
				t.Fatalf("conflict=%d selfContra=%v, want NoConflict/true", conflict, selfContra)
			}
		})
	}
}

func TestEmptyClauseConflictsImmediately(t *testing.T) {
	for name, e := range engines(1) {
		t.Run(name, func(t *testing.T) {
			id := e.Add(cnf.Clause{})
			conflict, _ := e.Refute(cl(1))
			if conflict != id {
				t.Fatalf("conflict = %d, want empty clause %d", conflict, id)
			}
		})
	}
}

func TestDeactivateStopsPropagation(t *testing.T) {
	for name, e := range engines(4) {
		t.Run(name, func(t *testing.T) {
			e.Add(cl(-1, 2))
			link := e.Add(cl(-2, 3))
			e.Add(cl(-3, 4))
			e.Add(cl(-1, -4))
			if conflict, _ := e.Refute(cl(-1)); conflict == NoConflict {
				t.Fatal("expected conflict before deactivation")
			}
			e.Deactivate(link)
			if conflict, _ := e.Refute(cl(-1)); conflict != NoConflict {
				t.Fatalf("conflict = %d after deactivating the chain link", conflict)
			}
		})
	}
}

func TestDeactivateUnit(t *testing.T) {
	for name, e := range engines(2) {
		t.Run(name, func(t *testing.T) {
			u := e.Add(cl(1))
			e.Add(cl(-1, 2))
			bad := e.Add(cl(-2))
			if conflict, _ := e.Refute(nil); conflict == NoConflict {
				t.Fatal("expected conflict")
			}
			_ = bad
			e.Deactivate(u)
			if conflict, _ := e.Refute(nil); conflict != NoConflict {
				t.Fatalf("conflict = %d after deactivating the unit", conflict)
			}
		})
	}
}

func TestDeactivateEmptyClause(t *testing.T) {
	for name, e := range engines(1) {
		t.Run(name, func(t *testing.T) {
			id := e.Add(cnf.Clause{})
			e.Deactivate(id)
			if conflict, _ := e.Refute(nil); conflict != NoConflict {
				t.Fatalf("deactivated empty clause still conflicts: %d", conflict)
			}
		})
	}
}

func TestRepeatedRefutesAreIndependent(t *testing.T) {
	for name, e := range engines(4) {
		t.Run(name, func(t *testing.T) {
			e.Add(cl(-1, 2))
			e.Add(cl(-2, 3))
			e.Add(cl(-1, -3))
			for i := 0; i < 5; i++ {
				if conflict, _ := e.Refute(cl(-1)); conflict == NoConflict {
					t.Fatalf("iteration %d: lost the conflict", i)
				}
				if conflict, _ := e.Refute(cl(1)); conflict != NoConflict {
					t.Fatalf("iteration %d: spurious conflict %d", i, conflict)
				}
			}
		})
	}
}

func TestWalkConflictMarksChain(t *testing.T) {
	for name, e := range engines(4) {
		t.Run(name, func(t *testing.T) {
			a := e.Add(cl(-1, 2))
			b := e.Add(cl(-2, 3))
			bystander := e.Add(cl(-1, 4)) // propagates but feeds nothing
			bad := e.Add(cl(-3, -1))
			conflict, _ := e.Refute(cl(-1))
			if conflict == NoConflict {
				t.Fatal("no conflict")
			}
			got := map[ID]bool{}
			e.WalkConflict(conflict, func(id ID) { got[id] = true })
			for _, want := range []ID{a, b, bad} {
				if !got[want] {
					t.Errorf("clause %d not marked; got %v", want, got)
				}
			}
			if got[bystander] {
				t.Errorf("bystander clause %d marked", bystander)
			}
		})
	}
}

func TestWalkConflictMarksUnits(t *testing.T) {
	for name, e := range engines(3) {
		t.Run(name, func(t *testing.T) {
			u := e.Add(cl(1))
			mid := e.Add(cl(-1, 2))
			bad := e.Add(cl(-2, 3))
			conflict, _ := e.Refute(cl(3))
			if conflict == NoConflict {
				t.Fatal("no conflict")
			}
			got := map[ID]bool{}
			e.WalkConflict(conflict, func(id ID) { got[id] = true })
			for _, want := range []ID{u, mid, bad} {
				if !got[want] {
					t.Errorf("clause %d not marked; got %v", want, got)
				}
			}
		})
	}
}

func TestWalkConflictNoDuplicates(t *testing.T) {
	for name, e := range engines(4) {
		t.Run(name, func(t *testing.T) {
			e.Add(cl(-1, 2))
			e.Add(cl(-2, 3))
			e.Add(cl(-2, -3, -1))
			conflict, _ := e.Refute(cl(-1))
			if conflict == NoConflict {
				t.Fatal("no conflict")
			}
			count := map[ID]int{}
			e.WalkConflict(conflict, func(id ID) { count[id]++ })
			for id, n := range count {
				if n != 1 {
					t.Errorf("clause %d visited %d times", id, n)
				}
			}
		})
	}
}

func TestDuplicateLiteralClause(t *testing.T) {
	for name, e := range engines(2) {
		t.Run(name, func(t *testing.T) {
			// (x1 x1) must behave exactly like the unit (x1).
			e.Add(cl(1, 1))
			e.Add(cl(-1, 2))
			bad := e.Add(cl(-2))
			conflict, _ := e.Refute(nil)
			if conflict == NoConflict {
				t.Fatalf("no conflict; want falsified clause (e.g. %d)", bad)
			}
		})
	}
}

func TestGrowVariableRange(t *testing.T) {
	for name, e := range engines(1) {
		t.Run(name, func(t *testing.T) {
			e.Add(cl(50, 51))
			e.Add(cl(-50))
			e.Add(cl(-51))
			if conflict, _ := e.Refute(nil); conflict == NoConflict {
				t.Fatal("no conflict after growing range")
			}
		})
	}
}

func TestPropagationsCounter(t *testing.T) {
	for name, e := range engines(4) {
		t.Run(name, func(t *testing.T) {
			e.Add(cl(-1, 2))
			e.Add(cl(-2, 3))
			e.Refute(cl(-1))
			if e.Propagations() < 2 {
				t.Errorf("Propagations = %d, want >= 2", e.Propagations())
			}
		})
	}
}

// TestEnginesAgreeOnRandomDatabases cross-checks the two propagators: on the
// same clause database and the same refutation queries they must agree on
// whether a conflict exists (the conflicting clause ID may differ since
// propagation order differs).
func TestEnginesAgreeOnRandomDatabases(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 200; round++ {
		nVars := 3 + rng.Intn(8)
		nClauses := 2 + rng.Intn(25)
		we := NewEngine(nVars)
		ce := NewCounting(nVars)
		var clauses []cnf.Clause
		for i := 0; i < nClauses; i++ {
			n := 1 + rng.Intn(4)
			c := make(cnf.Clause, 0, n)
			for j := 0; j < n; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			clauses = append(clauses, c)
			we.Add(c)
			ce.Add(c)
		}
		for q := 0; q < 10; q++ {
			n := rng.Intn(3)
			target := make(cnf.Clause, 0, n)
			for j := 0; j < n; j++ {
				target = append(target, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			wc, ws := we.Refute(target)
			cc, cs := ce.Refute(target)
			if ws != cs || (wc == NoConflict) != (cc == NoConflict) {
				t.Fatalf("round %d query %v: watched (%d,%v) vs counting (%d,%v)\nclauses: %v",
					round, target, wc, ws, cc, cs, clauses)
			}
			// Occasionally deactivate a clause in both engines.
			if rng.Intn(3) == 0 && len(clauses) > 0 {
				id := ID(rng.Intn(len(clauses)))
				we.Deactivate(id)
				ce.Deactivate(id)
			}
		}
	}
}

// TestConflictIsSound verifies that whenever an engine reports a conflict,
// the refuted clause really is implied: no total assignment satisfies all
// active clauses while falsifying the target.
func TestConflictIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 200; round++ {
		nVars := 3 + rng.Intn(5) // keep small for exhaustive checking
		nClauses := 2 + rng.Intn(15)
		e := NewEngine(nVars)
		var clauses []cnf.Clause
		for i := 0; i < nClauses; i++ {
			n := 1 + rng.Intn(3)
			c := make(cnf.Clause, 0, n)
			for j := 0; j < n; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			clauses = append(clauses, c)
			e.Add(c)
		}
		n := 1 + rng.Intn(2)
		target := make(cnf.Clause, 0, n)
		for j := 0; j < n; j++ {
			target = append(target, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
		}
		conflict, selfContra := e.Refute(target)
		if selfContra || conflict == NoConflict {
			continue
		}
		// Exhaustively confirm: every assignment falsifying target violates
		// some clause.
		for m := 0; m < 1<<nVars; m++ {
			assign := make([]bool, nVars)
			for i := range assign {
				assign[i] = m&(1<<i) != 0
			}
			if cnf.EvalClause(target, assign) {
				continue
			}
			all := true
			for _, c := range clauses {
				if !cnf.EvalClause(c, assign) {
					all = false
					break
				}
			}
			if all {
				t.Fatalf("round %d: engine claimed %v implied by %v, but %v is a countermodel",
					round, target, clauses, assign)
			}
		}
	}
}
