package bcp

import (
	"sort"

	"repro/internal/cnf"
)

// Ordered-antecedent extraction for LRAT hint emission. ConflictHints is the
// hint-producing sibling of WalkConflict: where the walk only marks the
// clauses involved in a conflict, ConflictHints returns them in an order that
// makes the conflict re-derivable by unit replay alone — the LRAT hint-order
// invariant.
//
// The order is the engine's own propagation order: every reason clause is
// emitted at its implied variable's trail position, ascending, with the
// falsified clause last. By the enqueue invariant, a reason's other literals
// were all false at strictly earlier trail positions (or are assumptions), so
// the sequence is *almost* replayable as-is. Almost, because the LRAT replay
// assigns exactly the negation of the refuted clause while the engine may
// have been in a different state when it found the conflict: a refuted
// clause can mention a variable the root trail has already assigned — with
// either polarity. Under the replay assignment a reason involved in the
// engine's conflict can therefore be satisfied (it contributes nothing) or
// even falsified outright (the replay reaches its contradiction early, before
// the engine's own conflict clause).
//
// So the emission runs the replay for real: phase 2 simulates the checker,
// scanning each candidate under the accumulated assignment — satisfied
// clauses are dropped, a falsified clause terminates the chain as the final
// conflict, and unit clauses are emitted with their implied literal assigned.
// What survives is, by construction, exactly a sequence the checker accepts.
//
// Why the simulation never gets stuck (every candidate is satisfied, unit or
// falsified, never 2+ unassigned): call a candidate a "problem" if its
// engine-implied literal is false under replay (possible only for variables
// the refuted clause mentions with the engine's polarity — root-clash
// variables). Before the first problem in trail order, every walked variable
// at earlier positions is replay-assigned (unit candidates assign theirs;
// satisfied candidates at earlier positions would themselves be problems,
// except those implied by the replay assumptions directly, whose variables
// are assigned by ¬C), so a reason's other literals are all false and the
// first problem clause is falsified — truncating the chain. If no problem
// exists, polarities agree everywhere, each candidate is unit, and the
// engine's conflict clause is falsified last.

// hintCand is one reason clause considered for the hint sequence.
type hintCand struct {
	v   cnf.Var // variable the clause implies
	pos int32   // trail position of that variable
	id  ID      // the reason clause
}

// engineConflictHints implements ConflictHints for both engines given
// accessors for clause literals and trail positions. seen/seenReset are the
// engine's per-variable walk scratch; litMark/litReset are a per-literal
// scratch for the replay assignment (true = literal assigned true).
func engineConflictHints(
	conflict ID,
	refuted cnf.Clause,
	dst []ID,
	lits func(ID) []cnf.Lit,
	reason []ID,
	pos func(cnf.Var) int32,
	seen []bool,
	seenReset *[]cnf.Var,
	litMark []bool,
	litReset *[]cnf.Lit,
) []ID {
	dst = dst[:0]
	if conflict == NoConflict {
		return dst
	}

	// Phase 1: the conflict walk, collecting each involved reason clause with
	// the trail position of its implied variable.
	var cands []hintCand
	stack := append([]cnf.Lit(nil), lits(conflict)...)
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := l.Var()
		if seen[v] {
			continue
		}
		seen[v] = true
		*seenReset = append(*seenReset, v)
		r := reason[v]
		if r == reasonAssumption {
			continue
		}
		cands = append(cands, hintCand{v: v, pos: pos(v), id: r})
		for _, rl := range lits(r) {
			if rl.Var() != v {
				stack = append(stack, rl)
			}
		}
	}
	for _, v := range *seenReset {
		seen[v] = false
	}
	*seenReset = (*seenReset)[:0]
	sort.Slice(cands, func(i, j int) bool { return cands[i].pos < cands[j].pos })

	// Phase 2: replay simulation (see the package comment above).
	assign := func(l cnf.Lit) {
		if !litMark[l] {
			litMark[l] = true
			*litReset = append(*litReset, l)
		}
	}
	clearLits := func() {
		for _, l := range *litReset {
			litMark[l] = false
		}
		*litReset = (*litReset)[:0]
	}
	for _, l := range refuted {
		assign(l.Neg())
	}
	for _, c := range cands {
		cl := lits(c.id)
		sat := false
		unassigned := 0
		unit := cnf.LitUndef
		for _, rl := range cl {
			if litMark[rl] {
				sat = true
				break
			}
			if !litMark[rl.Neg()] && rl != unit {
				unassigned++
				unit = rl
			}
		}
		switch {
		case sat:
			// Satisfied under replay: contributes nothing to the derivation.
		case unassigned == 0:
			// Falsified before the engine's own conflict clause: the replay
			// reaches its contradiction here, closing the chain early.
			clearLits()
			return append(dst, c.id)
		default:
			// Unit (the 2+ case is unreachable, argued above). Note the
			// unassigned literal need not be the engine-implied one when
			// polarities disagree; the replay's choice is what counts.
			dst = append(dst, c.id)
			assign(unit)
		}
	}
	clearLits()
	return append(dst, conflict)
}

// ConflictHints implements Propagator. See engineConflictHints.
func (e *Engine) ConflictHints(conflict ID, refuted cnf.Clause, dst []ID) []ID {
	return engineConflictHints(conflict, refuted, dst,
		e.lits, e.reason,
		func(v cnf.Var) int32 { return e.varPos[v] },
		e.seen, &e.seenReset, e.litMark, &e.hintLitReset)
}

// ConflictHints implements Propagator. The counting engine keeps no
// per-variable trail index, so positions are recovered with one scan of the
// (per-Refute, non-persistent) trail.
func (e *Counting) ConflictHints(conflict ID, refuted cnf.Clause, dst []ID) []ID {
	pos := make(map[cnf.Var]int32, len(e.trail))
	for i, l := range e.trail {
		pos[l.Var()] = int32(i)
	}
	for len(e.litMark) < 2*len(e.seen) {
		e.litMark = append(e.litMark, false)
	}
	return engineConflictHints(conflict, refuted, dst,
		func(id ID) []cnf.Lit { return e.clauses[id].lits }, e.reason,
		func(v cnf.Var) int32 { return pos[v] },
		e.seen, &e.seenReset, e.litMark, &e.hintLitReset)
}
