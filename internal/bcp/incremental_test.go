package bcp

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cnf"
)

// TestRootTrailPersistsAcrossRefutes: the root fixpoint is derived once and
// reused — a second Refute that only pushes assumptions must not re-propagate
// the chain.
func TestRootTrailPersistsAcrossRefutes(t *testing.T) {
	const n = 50
	e := NewEngine(n)
	e.Add(cl(1))
	for i := 1; i < n; i++ {
		e.Add(cl(-i, i+1))
	}
	if conflict, _ := e.Refute(nil); conflict != NoConflict {
		t.Fatalf("consistent chain conflicts: %d", conflict)
	}
	if got := e.RootTrailLen(); got != n {
		t.Fatalf("RootTrailLen = %d, want %d", got, n)
	}
	before := e.Propagations()
	// Refuting the implied clause (x_n) clashes with the root literal and
	// must not propagate anything new.
	if conflict, _ := e.Refute(cl(n)); conflict == NoConflict {
		t.Fatal("refuting an implied unit found no conflict")
	}
	if d := e.Propagations() - before; d != 0 {
		t.Errorf("second Refute re-propagated %d literals; root trail not reused", d)
	}
}

// TestDeactivateRootReasonTruncates: removing the reason clause of a root
// literal invalidates that literal and everything after it, but keeps the
// prefix.
func TestDeactivateRootReasonTruncates(t *testing.T) {
	e := NewEngine(3)
	u := e.Add(cl(1))
	a := e.Add(cl(-1, 2))
	e.Add(cl(-2, 3))
	if conflict, _ := e.Refute(nil); conflict != NoConflict {
		t.Fatalf("unexpected conflict %d", conflict)
	}
	if got := e.RootTrailLen(); got != 3 {
		t.Fatalf("RootTrailLen = %d, want 3", got)
	}

	e.Deactivate(a) // reason of x2; x2 and x3 lose their justification
	if got := e.RootTrailLen(); got != 1 {
		t.Fatalf("RootTrailLen after truncation = %d, want 1", got)
	}
	// x3 is no longer implied...
	if conflict, _ := e.Refute(cl(3)); conflict != NoConflict {
		t.Fatalf("x3 still implied after removing the chain link: conflict %d", conflict)
	}
	// ...but x1 still is.
	if conflict, _ := e.Refute(cl(1)); conflict != u {
		t.Fatalf("refuting the kept unit: conflict %d, want %d", conflict, u)
	}
}

// TestDeactivateUnitTruncatesAtZero: removing the unit at the base of the
// root trail empties it.
func TestDeactivateUnitTruncatesAtZero(t *testing.T) {
	e := NewEngine(3)
	u := e.Add(cl(1))
	e.Add(cl(-1, 2))
	e.Add(cl(-2, 3))
	e.Refute(nil)
	e.Deactivate(u)
	if got := e.RootTrailLen(); got != 0 {
		t.Fatalf("RootTrailLen = %d, want 0", got)
	}
	for _, target := range []cnf.Clause{cl(1), cl(2), cl(3)} {
		if conflict, _ := e.Refute(target); conflict != NoConflict {
			t.Fatalf("refuting %v after removing the base unit: conflict %d", target, conflict)
		}
	}
}

// TestReactivateRestoresRootDerivations: undoing a deletion brings the
// derived literals back on the next Refute.
func TestReactivateRestoresRootDerivations(t *testing.T) {
	e := NewEngineReactivable(3)
	u := e.Add(cl(1))
	e.Add(cl(-1, 2))
	e.Add(cl(-2, 3))
	e.Refute(nil)

	e.Deactivate(u)
	if conflict, _ := e.Refute(cl(3)); conflict != NoConflict {
		t.Fatalf("x3 implied without the base unit: conflict %d", conflict)
	}
	if err := e.Reactivate(u); err != nil {
		t.Fatal(err)
	}
	if conflict, _ := e.Refute(cl(3)); conflict == NoConflict {
		t.Fatal("x3 not re-derived after reactivating the base unit")
	}
}

// TestAddAfterRootFix: clauses added once the root fixpoint exists must
// propagate under it — including clauses that are already unit or falsified
// at root, which force a lazy replay.
func TestAddAfterRootFix(t *testing.T) {
	e := NewEngine(6)
	e.Add(cl(1))
	e.Refute(nil)

	// Unit under the root (¬x1 is false): implies x5.
	e.Add(cl(-1, 5))
	if conflict, _ := e.Refute(cl(5)); conflict == NoConflict {
		t.Fatal("clause unit under root did not propagate")
	}
	// New unit clause extends the root.
	e.Add(cl(6))
	if conflict, _ := e.Refute(cl(6)); conflict == NoConflict {
		t.Fatal("added unit did not extend the root")
	}
	// Falsified under the root: the database is now refuted outright.
	bad := e.Add(cl(-1))
	conflict, _ := e.Refute(cl(2))
	if conflict == NoConflict {
		t.Fatal("database with x1 and ~x1 not refuted")
	}
	_ = bad
}

// TestIncrementalMatchesFreshEngines drives a reactivable incremental engine
// through random interleavings of Add/Deactivate/Reactivate/Refute and
// cross-checks every verdict against two references built fresh from the
// active clause set: the counting engine (old-behavior semantics, different
// algorithm) and the non-incremental watched engine (same algorithm, no
// persistent root). Conflict IDs may differ; conflict existence and
// self-contradiction must not. Every conflict's WalkConflict must visit only
// active clauses, each at most once.
func TestIncrementalMatchesFreshEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for round := 0; round < 150; round++ {
		nVars := 3 + rng.Intn(8)
		inc := NewEngineReactivable(nVars)
		var clauses []cnf.Clause
		var active, isTaut []bool

		randClause := func(minLen, maxLen int) cnf.Clause {
			n := minLen + rng.Intn(maxLen-minLen+1)
			c := make(cnf.Clause, 0, n)
			for j := 0; j < n; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			return c
		}
		addOne := func() {
			var c cnf.Clause
			if rng.Intn(25) == 0 {
				c = cnf.Clause{} // occasional empty clause
			} else {
				c = randClause(1, 4)
			}
			_, taut := c.Normalize()
			inc.Add(c)
			clauses = append(clauses, c)
			active = append(active, !taut)
			isTaut = append(isTaut, taut)
		}
		for i := 0; i < 3+rng.Intn(10); i++ {
			addOne()
		}

		for q := 0; q < 20; q++ {
			switch rng.Intn(6) {
			case 0:
				addOne()
			case 1:
				i := rng.Intn(len(clauses))
				if active[i] {
					inc.Deactivate(ID(i))
					active[i] = false
				}
			case 2:
				i := rng.Intn(len(clauses))
				if !active[i] && !isTaut[i] {
					if err := inc.Reactivate(ID(i)); err != nil {
						t.Fatal(err)
					}
					active[i] = true
				}
			default:
				var target cnf.Clause
				if rng.Intn(5) > 0 {
					target = randClause(0, 2)
				}
				gotC, gotS := inc.Refute(target)

				fresh := func(p Propagator) (ID, bool) {
					for i, c := range clauses {
						id := p.Add(c)
						if !active[i] {
							p.Deactivate(id)
						}
					}
					return p.Refute(target)
				}
				refC, refS := fresh(NewCounting(nVars))
				nonC, nonS := fresh(NewEngineNonIncremental(nVars))

				if gotS != refS || gotS != nonS ||
					(gotC == NoConflict) != (refC == NoConflict) ||
					(gotC == NoConflict) != (nonC == NoConflict) {
					t.Fatalf("round %d query %v: incremental (%d,%v) vs counting (%d,%v) vs scratch (%d,%v)\nclauses: %v\nactive: %v",
						round, target, gotC, gotS, refC, refS, nonC, nonS, clauses, active)
				}
				if gotC != NoConflict {
					seen := map[ID]int{}
					inc.WalkConflict(gotC, func(id ID) { seen[id]++ })
					for id, cnt := range seen {
						if cnt != 1 {
							t.Fatalf("round %d: clause %d visited %d times", round, id, cnt)
						}
						if !inc.hdrs[id].active {
							t.Fatalf("round %d: conflict analysis visited inactive clause %d", round, id)
						}
					}
				}
			}
		}
	}
}

// TestIncrementalDeterministicReplay: the incremental engine is a
// deterministic function of its operation sequence — two engines fed the
// same ops report identical conflicts and identical work counters. The
// checkpoint byte-identity contract in internal/core rests on this.
func TestIncrementalDeterministicReplay(t *testing.T) {
	run := func() ([]ID, []bool, Stats) {
		rng := rand.New(rand.NewSource(99))
		e := NewEngineReactivable(8)
		var conflicts []ID
		var contras []bool
		var ids []ID
		for i := 0; i < 400; i++ {
			switch rng.Intn(5) {
			case 0:
				n := rng.Intn(4)
				c := make(cnf.Clause, 0, n)
				for j := 0; j < n; j++ {
					c = append(c, cnf.NewLit(cnf.Var(rng.Intn(8)), rng.Intn(2) == 0))
				}
				ids = append(ids, e.Add(c))
			case 1:
				if len(ids) > 0 {
					e.Deactivate(ids[rng.Intn(len(ids))])
				}
			case 2:
				if len(ids) > 0 {
					_ = e.Reactivate(ids[rng.Intn(len(ids))])
				}
			default:
				n := rng.Intn(3)
				c := make(cnf.Clause, 0, n)
				for j := 0; j < n; j++ {
					c = append(c, cnf.NewLit(cnf.Var(rng.Intn(8)), rng.Intn(2) == 0))
				}
				conflict, sc := e.Refute(c)
				conflicts = append(conflicts, conflict)
				contras = append(contras, sc)
			}
		}
		return conflicts, contras, e.Stats()
	}
	c1, s1, st1 := run()
	c2, s2, st2 := run()
	if !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(s1, s2) || st1 != st2 {
		t.Fatalf("same op sequence diverged:\nconflicts %v vs %v\nstats %+v vs %+v", c1, c2, st1, st2)
	}
}
