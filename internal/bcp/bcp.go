// Package bcp implements the Boolean Constraint Propagation engines used by
// the proof verifier. Per the paper, BCP is "the only procedure one needs to
// implement to verify a conflict clause proof": to check a conflict clause C
// against a clause database, falsify C's literals and propagate; C is
// implied exactly when propagation reaches a conflict.
//
// The package deliberately shares no code with internal/solver — the entire
// point of proof verification is an independent check, so the verifier rests
// on its own propagation machinery.
//
// Two engines are provided behind the Propagator interface:
//
//   - Engine: two-watched-literal propagation (the paper's §6 choice,
//     "a conflict clause proof contains a large number of long clauses,
//     which is exactly the case when using watched literals is especially
//     effective").
//   - Counting: a naive counter-based propagator kept as the ablation
//     baseline so the benefit of watched literals is measurable.
//
// Both support deactivating clauses, which is how the verifier pops clauses
// off the proof stack while scanning it in reverse chronological order.
package bcp

import (
	"errors"

	"repro/internal/cnf"
	"repro/internal/obs/trace"
)

// ID identifies a clause inside a Propagator. IDs are assigned densely in
// Add order, so the verifier can map them back to "original formula clause
// i" or "proof clause j" by simple offset arithmetic.
type ID int32

// NoConflict is returned by Refute when propagation completes without
// finding a conflict.
const NoConflict ID = -1

// ReasonAssumption marks a variable assigned by the refutation assumptions
// rather than by a clause.
const reasonAssumption ID = -1

// Propagator is the verifier-facing propagation interface.
type Propagator interface {
	// Add inserts a clause and returns its ID. The clause is copied and
	// normalized internally; tautologies are accepted but never propagate.
	Add(c cnf.Clause) ID
	// Deactivate removes the clause from future propagations. Engines built
	// for it (see NewEngineReactivable) can undo a deactivation via
	// Reactivate; elsewhere it is permanent (the verifier only ever pops the
	// proof stack). Deactivating an inactive clause is a no-op.
	Deactivate(id ID)
	// Reactivate undoes a Deactivate. Engines that compact deactivated
	// clauses out of their propagation structures return ErrNotReactivable.
	Reactivate(id ID) error
	// Refute assigns every literal of c to false, propagates the active
	// clause database and returns the ID of a falsified clause, or
	// NoConflict when propagation completes quietly (which means c is NOT
	// implied and the proof is bogus). Passing an empty clause checks
	// whether the database is refuted by unit propagation alone.
	//
	// Engines may keep the database's assumption-free propagation fixpoint
	// (the "root trail") alive between calls; the observable contract is
	// unchanged — each Refute behaves as if run against a fresh engine
	// holding the currently active clauses.
	//
	// Refute reports selfContradictory=true (with conflict==NoConflict)
	// when c contains complementary literals, i.e. cannot be falsified;
	// such a clause is a tautology and trivially implied.
	Refute(c cnf.Clause) (conflict ID, selfContradictory bool)
	// WalkConflict visits every clause involved in deriving the conflict
	// returned by the immediately preceding Refute call: the falsified
	// clause itself plus, transitively, the reason clause of every
	// propagated variable feeding it. Assumption-assigned variables have no
	// reason and terminate the walk, matching the paper's Conflict_analysis.
	// Valid only until the next Refute/Add/Deactivate call.
	WalkConflict(conflict ID, visit func(ID))
	// ConflictHints returns the clauses WalkConflict would visit, ordered so
	// the conflict is re-derivable by unit replay alone: each propagated
	// variable's reason clause at its trail position, ascending, with the
	// falsified clause last and replay-satisfied reasons dropped (see
	// hints.go). refuted must be the clause passed to the preceding Refute
	// (nil for a root refutation). The hints are appended to dst and the
	// extended slice returned; like WalkConflict, the result is valid only
	// until the next Refute/Add/Deactivate call.
	ConflictHints(conflict ID, refuted cnf.Clause, dst []ID) []ID
	// Propagations returns the cumulative number of implied assignments.
	Propagations() int64
	// SetStop installs a cooperative stop hook, polled about every
	// stopPollEvery dequeued trail literals during propagation and once at
	// the start of every Refute. A non-nil return aborts the Refute in
	// progress; the conflict result of an aborted Refute is meaningless and
	// the cause is retrievable via StopErr until the next Refute. A nil
	// hook (the default) removes the check from the hot path entirely.
	SetStop(func() error)
	// StopErr returns the error that aborted the last Refute, or nil when
	// it ran to completion. Callers that install a stop hook must consult
	// StopErr before interpreting a Refute result.
	StopErr() error
	// SetTrace installs a flight-recorder lane: each Refute then emits its
	// per-check work deltas (propagations plus watcher visits or occurrence
	// touches, depending on the engine) as counter events, at one ring
	// append per counter per Refute — coarse enough to stay off the
	// propagation hot path. A nil lane (the default) reduces the cost to
	// one nil check per Refute.
	SetTrace(t *trace.Track)
	// Stats returns the cumulative work counters (propagations, conflicts,
	// clause visits). Counters are plain per-engine integers maintained on
	// the hot path, so reading them costs nothing and needs no enabling.
	Stats() Stats
	// NumClauses returns how many clauses were added.
	NumClauses() int
}

// ErrNotReactivable is returned by Engine.Reactivate when the engine was not
// built with NewEngineReactivable and therefore compacted the clause out of
// its watch lists on Deactivate.
var ErrNotReactivable = errors.New("bcp: Reactivate requires an engine built with NewEngineReactivable")

// stopPollEvery is how many dequeued trail literals may pass between polls
// of the stop hook. Small enough that even adversarial formulas cannot keep
// propagating for long past a cancellation; large enough that the hook costs
// nothing measurable on the hot path.
const stopPollEvery = 64

// stopState implements the SetStop/StopErr/SetTrace slice of Propagator;
// both engines embed it and poll it from their propagation loops.
type stopState struct {
	stop      func() error
	stopErr   error
	countdown int
	trace     *trace.Track
}

// SetStop implements Propagator.
func (s *stopState) SetStop(f func() error) { s.stop = f; s.countdown = 0 }

// SetTrace implements Propagator.
func (s *stopState) SetTrace(t *trace.Track) { s.trace = t }

// StopErr implements Propagator.
func (s *stopState) StopErr() error { return s.stopErr }

// beginRefute clears a previous abort and polls once, so a condition that
// already holds (expired deadline, exhausted budget) aborts the Refute
// before any propagation work.
func (s *stopState) beginRefute() bool {
	s.stopErr = nil
	if s.stop == nil {
		return false
	}
	if err := s.stop(); err != nil {
		s.stopErr = err
		return true
	}
	s.countdown = stopPollEvery
	return false
}

// poll reports whether the stop hook demands an abort; the hook itself runs
// only every stopPollEvery calls.
func (s *stopState) poll() bool {
	if s.stop == nil {
		return false
	}
	if s.countdown--; s.countdown > 0 {
		return false
	}
	s.countdown = stopPollEvery
	if err := s.stop(); err != nil {
		s.stopErr = err
		return true
	}
	return false
}

// Stats aggregates a propagator's cumulative work counters. Propagations
// and Refutations are common to both engines; WatcherVisits counts
// watch-list entries examined by the watched-literal engine and OccTouches
// counts occurrence-list entries touched by the counting engine — the two
// numbers whose ratio quantifies the paper's §6 argument for watched
// literals on proofs full of long clauses.
type Stats struct {
	// Propagations is the number of implied assignments.
	Propagations int64
	// Refutations is the number of Refute calls.
	Refutations int64
	// Conflicts is the number of Refute calls that found a conflict (on a
	// correct proof this equals Refutations minus tautologies).
	Conflicts int64
	// WatcherVisits counts watch-list entries examined (watched engine).
	WatcherVisits int64
	// OccTouches counts occurrence-list entries touched (counting engine).
	OccTouches int64
}

// value codes: 0 unassigned, +1 true, -1 false.
func litValue(assign []int8, l cnf.Lit) int8 {
	v := assign[l.Var()]
	if l.IsNeg() {
		return -v
	}
	return v
}

// assignLit records that l is true.
func assignLit(assign []int8, l cnf.Lit) {
	if l.IsNeg() {
		assign[l.Var()] = -1
	} else {
		assign[l.Var()] = 1
	}
}
