package bcp

import (
	"errors"
	"testing"

	"repro/internal/cnf"
)

func clauseOf(ds ...int) cnf.Clause {
	var c cnf.Clause
	for _, d := range ds {
		c = append(c, cnf.FromDimacs(d))
	}
	return c
}

// chainEngine loads x1, ¬x1∨x2, ..., ¬x_{n-1}∨x_n into an engine, so that
// refuting {x_n} propagates the whole chain.
func chainEngine(t *testing.T, mk func(int) Propagator, n int) Propagator {
	t.Helper()
	e := mk(n)
	e.Add(clauseOf(1))
	for i := 1; i < n; i++ {
		e.Add(clauseOf(-i, i+1))
	}
	return e
}

func engineMakers() map[string]func(int) Propagator {
	return map[string]func(int) Propagator{
		"watched":  func(n int) Propagator { return NewEngine(n) },
		"counting": func(n int) Propagator { return NewCounting(n) },
	}
}

func TestStopHookAbortsRefute(t *testing.T) {
	errStop := errors.New("stop now")
	const n = 10 * stopPollEvery
	for name, mk := range engineMakers() {
		t.Run(name, func(t *testing.T) {
			e := chainEngine(t, mk, n)

			// A hook that immediately trips aborts before any propagation.
			e.SetStop(func() error { return errStop })
			conflict, selfContra := e.Refute(clauseOf(n))
			if conflict != NoConflict || selfContra {
				t.Fatalf("aborted Refute returned conflict=%v selfContra=%v", conflict, selfContra)
			}
			if !errors.Is(e.StopErr(), errStop) {
				t.Fatalf("StopErr = %v, want %v", e.StopErr(), errStop)
			}

			// A hook that trips after a few polls aborts mid-propagation,
			// with only part of the chain propagated.
			polls := 0
			e.SetStop(func() error {
				if polls++; polls > 2 {
					return errStop
				}
				return nil
			})
			e.Refute(clauseOf(n))
			if !errors.Is(e.StopErr(), errStop) {
				t.Fatalf("StopErr = %v, want %v", e.StopErr(), errStop)
			}

			// Removing the hook restores normal operation, and StopErr clears.
			e.SetStop(nil)
			conflict, _ = e.Refute(clauseOf(n))
			if conflict == NoConflict {
				t.Fatal("chain refutation should conflict")
			}
			if e.StopErr() != nil {
				t.Fatalf("StopErr = %v after clean Refute", e.StopErr())
			}
		})
	}
}

func TestStopHookPollFrequency(t *testing.T) {
	const n = 8 * stopPollEvery
	for name, mk := range engineMakers() {
		t.Run(name, func(t *testing.T) {
			e := chainEngine(t, mk, n)
			polls := 0
			e.SetStop(func() error { polls++; return nil })
			if conflict, _ := e.Refute(clauseOf(n)); conflict == NoConflict {
				t.Fatal("chain refutation should conflict")
			}
			// Propagating ~n literals must poll roughly n/stopPollEvery
			// times — bounded both ways so the hook neither spams nor
			// starves.
			if polls < 2 || polls > 2+n/stopPollEvery {
				t.Fatalf("polls = %d over %d propagations", polls, n)
			}
		})
	}
}

func TestReactivateTypedError(t *testing.T) {
	e := NewEngine(3)
	id := e.Add(clauseOf(1, 2))
	e.Deactivate(id)
	if err := e.Reactivate(id); !errors.Is(err, ErrNotReactivable) {
		t.Fatalf("Reactivate on plain engine = %v, want ErrNotReactivable", err)
	}

	re := NewEngineReactivable(3)
	rid := re.Add(clauseOf(1, 2))
	re.Deactivate(rid)
	if err := re.Reactivate(rid); err != nil {
		t.Fatalf("Reactivate on reactivable engine = %v", err)
	}
}
