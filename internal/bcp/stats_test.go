package bcp

import "testing"

// TestStatsCounters: both engines account their work — propagations,
// refutations, conflicts and the engine-specific visit counter.
func TestStatsCounters(t *testing.T) {
	for name, e := range engines(4) {
		t.Run(name, func(t *testing.T) {
			e.Add(cl(-1, 2))
			e.Add(cl(-2, 3))
			e.Add(cl(-3, 4))
			e.Add(cl(-1, -4))

			if conflict, _ := e.Refute(cl(-1)); conflict == NoConflict {
				t.Fatal("expected a conflict")
			}
			if conflict, _ := e.Refute(cl(1, 2)); conflict != NoConflict {
				t.Fatalf("unexpected conflict %d", conflict)
			}

			st := e.Stats()
			if st.Refutations != 2 {
				t.Errorf("Refutations = %d, want 2", st.Refutations)
			}
			if st.Conflicts != 1 {
				t.Errorf("Conflicts = %d, want 1", st.Conflicts)
			}
			if st.Propagations == 0 {
				t.Error("Propagations = 0")
			}
			if st.Propagations != e.Propagations() {
				t.Errorf("Stats.Propagations = %d but Propagations() = %d",
					st.Propagations, e.Propagations())
			}
			switch name {
			case "watched":
				if st.WatcherVisits == 0 {
					t.Error("WatcherVisits = 0 on the watched engine")
				}
				if st.OccTouches != 0 {
					t.Errorf("OccTouches = %d on the watched engine", st.OccTouches)
				}
			case "counting":
				if st.OccTouches == 0 {
					t.Error("OccTouches = 0 on the counting engine")
				}
				if st.WatcherVisits != 0 {
					t.Errorf("WatcherVisits = %d on the counting engine", st.WatcherVisits)
				}
			}
		})
	}
}

// TestStatsTautologyNotAConflict: a self-contradictory refutation target
// counts as a refutation but not as a conflict.
func TestStatsTautologyNotAConflict(t *testing.T) {
	for name, e := range engines(2) {
		t.Run(name, func(t *testing.T) {
			e.Add(cl(1))
			if _, selfContra := e.Refute(cl(1, -1)); !selfContra {
				t.Fatal("tautology not detected")
			}
			st := e.Stats()
			if st.Refutations != 1 || st.Conflicts != 0 {
				t.Errorf("stats = %+v, want 1 refutation, 0 conflicts", st)
			}
		})
	}
}
