package bcp

import "repro/internal/cnf"

// Counting is the naive counter-based propagator used as the ablation
// baseline against the watched-literal Engine. Every clause keeps a counter
// of currently-false literals; every literal keeps an occurrence list. An
// assignment touches every clause containing the complement literal, so
// long clauses — the common case inside conflict clause proofs — are visited
// far more often than under two-watched-literal propagation.
type Counting struct {
	nVars   int
	clauses []countClause
	occurs  [][]ID // indexed by literal: clauses containing it

	units  []ID
	empty  []ID
	nEmpty int // active empty count (maintained on Add/Deactivate)

	assign []int8
	reason []ID
	trail  []cnf.Lit
	qhead  int

	seen      []bool
	seenReset []cnf.Var

	litMark      []bool    // per-literal scratch for ConflictHints' replay
	hintLitReset []cnf.Lit // its undo list

	stopState

	propagations int64
	refutations  int64
	conflicts    int64
	occTouches   int64
}

type countClause struct {
	lits   cnf.Clause
	nFalse int32
	active bool
}

var _ Propagator = (*Counting)(nil)

// NewCounting returns a counter-based engine over n variables.
func NewCounting(n int) *Counting {
	e := &Counting{nVars: n}
	e.growTo(n)
	return e
}

func (e *Counting) growTo(n int) {
	if n < e.nVars {
		n = e.nVars
	}
	for len(e.assign) < n {
		e.assign = append(e.assign, 0)
		e.reason = append(e.reason, reasonAssumption)
		e.seen = append(e.seen, false)
		e.occurs = append(e.occurs, nil, nil)
	}
	e.nVars = n
}

// NumClauses returns how many clauses were added.
func (e *Counting) NumClauses() int { return len(e.clauses) }

// Propagations returns the cumulative number of implied assignments.
func (e *Counting) Propagations() int64 { return e.propagations }

// Stats returns the cumulative work counters.
func (e *Counting) Stats() Stats {
	return Stats{
		Propagations: e.propagations,
		Refutations:  e.refutations,
		Conflicts:    e.conflicts,
		OccTouches:   e.occTouches,
	}
}

// Add inserts a clause and returns its ID.
func (e *Counting) Add(c cnf.Clause) ID {
	norm, taut := c.Normalize()
	if mv := norm.MaxVar(); int(mv) >= e.nVars {
		e.growTo(int(mv) + 1)
	}
	id := ID(len(e.clauses))
	e.clauses = append(e.clauses, countClause{lits: norm, active: !taut})
	if taut {
		return id
	}
	switch len(norm) {
	case 0:
		e.empty = append(e.empty, id)
		e.nEmpty++
	case 1:
		e.units = append(e.units, id)
	default:
		for _, l := range norm {
			e.occurs[l] = append(e.occurs[l], id)
		}
	}
	return id
}

// Deactivate removes the clause from future propagations.
func (e *Counting) Deactivate(id ID) {
	c := &e.clauses[id]
	if !c.active {
		return
	}
	c.active = false
	if len(c.lits) == 0 {
		e.nEmpty--
	}
}

// Reactivate implements Propagator. The counting engine compacts
// deactivated units out of its injection list, so it cannot restore them.
func (e *Counting) Reactivate(ID) error { return ErrNotReactivable }

func (e *Counting) reset() {
	for i, l := range e.trail {
		v := l.Var()
		e.assign[v] = 0
		e.reason[v] = reasonAssumption
		// Counters were bumped only for dequeued literals (trail[:qhead]);
		// roll back exactly those.
		if i < e.qhead {
			for _, id := range e.occurs[l.Neg()] {
				e.clauses[id].nFalse--
			}
		}
	}
	e.trail = e.trail[:0]
	e.qhead = 0
}

func (e *Counting) enqueue(l cnf.Lit, why ID) bool {
	switch litValue(e.assign, l) {
	case 1:
		return true
	case -1:
		return false
	}
	assignLit(e.assign, l)
	e.reason[l.Var()] = why
	e.trail = append(e.trail, l)
	// Counters are updated when the literal is dequeued in propagate, so
	// that reset can roll back exactly the trail's worth of increments.
	if why != reasonAssumption {
		e.propagations++
	}
	return true
}

// Refute implements Propagator.
func (e *Counting) Refute(c cnf.Clause) (ID, bool) {
	p0, o0 := e.propagations, e.occTouches
	conflict, selfContra := e.refute(c)
	if t := e.trace; t != nil {
		t.CounterPair("bcp.propagations", e.propagations-p0,
			"bcp.occ_touches", e.occTouches-o0)
	}
	return conflict, selfContra
}

func (e *Counting) refute(c cnf.Clause) (ID, bool) {
	if mv := c.MaxVar(); int(mv) >= e.nVars {
		e.growTo(int(mv) + 1)
	}
	e.reset()
	e.refutations++
	if e.beginRefute() {
		return NoConflict, false
	}

	if e.nEmpty > 0 {
		w := 0
		for _, id := range e.empty {
			if e.clauses[id].active {
				e.empty[w] = id
				w++
			}
		}
		e.empty = e.empty[:w]
		e.conflicts++
		return e.empty[0], false
	}

	for _, l := range c {
		if !e.enqueue(l.Neg(), reasonAssumption) {
			return NoConflict, true
		}
	}

	w := 0
	conflict := NoConflict
	for i, id := range e.units {
		uc := &e.clauses[id]
		if !uc.active {
			continue
		}
		e.units[w] = id
		w++
		if !e.enqueue(uc.lits[0], id) {
			for _, rest := range e.units[i+1:] {
				e.units[w] = rest
				w++
			}
			conflict = id
			break
		}
	}
	e.units = e.units[:w]
	if conflict != NoConflict {
		e.conflicts++
		return conflict, false
	}

	return e.propagate()
}

func (e *Counting) propagate() (ID, bool) {
	for e.qhead < len(e.trail) {
		if e.poll() {
			return NoConflict, false
		}
		p := e.trail[e.qhead]
		e.qhead++
		falseLit := p.Neg()
		conflict := NoConflict
		// Even after a conflict is found, finish counting the whole
		// occurrence list so reset can roll counters back symmetrically.
		e.occTouches += int64(len(e.occurs[falseLit]))
		for _, id := range e.occurs[falseLit] {
			c := &e.clauses[id]
			c.nFalse++ // counters track all clauses, active or not
			if conflict != NoConflict || !c.active {
				continue
			}
			n := int32(len(c.lits))
			switch {
			case c.nFalse == n:
				conflict = id
			case c.nFalse == n-1:
				// Find the single non-false literal.
				var free cnf.Lit = cnf.LitUndef
				for _, l := range c.lits {
					if litValue(e.assign, l) != -1 {
						free = l
						break
					}
				}
				if free == cnf.LitUndef {
					conflict = id
				} else if litValue(e.assign, free) == 0 {
					if !e.enqueue(free, id) {
						conflict = id
					}
				}
			}
		}
		if conflict != NoConflict {
			e.conflicts++
			return conflict, false
		}
	}
	return NoConflict, false
}

// WalkConflict implements Propagator; see Engine.WalkConflict.
func (e *Counting) WalkConflict(conflict ID, visit func(ID)) {
	if conflict == NoConflict {
		return
	}
	defer func() {
		for _, v := range e.seenReset {
			e.seen[v] = false
		}
		e.seenReset = e.seenReset[:0]
	}()

	visit(conflict)
	stack := append([]cnf.Lit(nil), e.clauses[conflict].lits...)
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := l.Var()
		if e.seen[v] {
			continue
		}
		e.seen[v] = true
		e.seenReset = append(e.seenReset, v)
		r := e.reason[v]
		if r == reasonAssumption {
			continue
		}
		visit(r)
		for _, rl := range e.clauses[r].lits {
			if rl.Var() != v {
				stack = append(stack, rl)
			}
		}
	}
}
