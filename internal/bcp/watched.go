package bcp

import "repro/internal/cnf"

// Engine is the two-watched-literal propagator. Clauses of length >= 2 keep
// two watched positions (lits[0] and lits[1]); a clause is revisited only
// when one of its watched literals becomes false. Unit and empty clauses are
// tracked separately and (re)injected at the start of every Refute, because
// refutation always restarts from an empty trail.
type Engine struct {
	nVars   int
	clauses []watchedClause
	watches [][]ID // indexed by literal: clauses currently watching it

	// retainInactive keeps deactivated clauses in the watch/unit lists
	// (skipped during propagation) so Reactivate is a flag flip. Enabled
	// by NewEngineReactivable; costs list compaction.
	retainInactive bool

	units  []ID // active unit clauses (lazily compacted)
	empty  []ID // active empty clauses
	taut   int  // count of tautologies, for stats only
	nUnits int  // active unit count (maintained on Deactivate)

	assign []int8
	reason []ID
	trail  []cnf.Lit
	qhead  int

	seen      []bool // per-var scratch for WalkConflict
	seenReset []cnf.Var

	stopState

	propagations  int64
	refutations   int64
	conflicts     int64
	watcherVisits int64
}

type watchedClause struct {
	lits   cnf.Clause
	active bool
	taut   bool // tautologies can never be activated
}

var _ Propagator = (*Engine)(nil)

// NewEngine returns a watched-literal engine over n variables. The variable
// range grows automatically when Add or Refute mention larger variables.
func NewEngine(n int) *Engine {
	e := &Engine{nVars: n}
	e.growTo(n)
	return e
}

// NewEngineReactivable returns an engine whose Deactivate is reversible via
// Reactivate — used by the backward DRUP checker, which walks deletion
// steps in reverse. Inactive clauses stay in the watch lists (skipped
// during propagation), trading list compaction for O(1) reactivation.
func NewEngineReactivable(n int) *Engine {
	e := NewEngine(n)
	e.retainInactive = true
	return e
}

// Reactivate undoes a Deactivate. It returns ErrNotReactivable on engines
// not created with NewEngineReactivable (their Deactivate compacts the
// clause out of the watch lists, so a flag flip cannot bring it back).
func (e *Engine) Reactivate(id ID) error {
	if !e.retainInactive {
		return ErrNotReactivable
	}
	c := &e.clauses[id]
	if c.active || c.taut {
		return nil
	}
	c.active = true
	if len(c.lits) == 1 {
		e.nUnits++
	}
	return nil
}

func (e *Engine) growTo(n int) {
	if n <= e.nVars && len(e.assign) >= n {
		return
	}
	if n < e.nVars {
		n = e.nVars
	}
	for len(e.assign) < n {
		e.assign = append(e.assign, 0)
		e.reason = append(e.reason, reasonAssumption)
		e.seen = append(e.seen, false)
		e.watches = append(e.watches, nil, nil)
	}
	e.nVars = n
}

// NumClauses returns how many clauses were added.
func (e *Engine) NumClauses() int { return len(e.clauses) }

// Propagations returns the cumulative number of implied assignments.
func (e *Engine) Propagations() int64 { return e.propagations }

// Stats returns the cumulative work counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Propagations:  e.propagations,
		Refutations:   e.refutations,
		Conflicts:     e.conflicts,
		WatcherVisits: e.watcherVisits,
	}
}

// Add inserts a clause and returns its ID.
func (e *Engine) Add(c cnf.Clause) ID {
	norm, taut := c.Normalize()
	if mv := norm.MaxVar(); int(mv) >= e.nVars {
		e.growTo(int(mv) + 1)
	}
	id := ID(len(e.clauses))
	e.clauses = append(e.clauses, watchedClause{lits: norm, active: !taut, taut: taut})
	if taut {
		e.taut++
		return id
	}
	switch len(norm) {
	case 0:
		e.empty = append(e.empty, id)
	case 1:
		e.units = append(e.units, id)
		e.nUnits++
	default:
		e.watches[norm[0]] = append(e.watches[norm[0]], id)
		e.watches[norm[1]] = append(e.watches[norm[1]], id)
	}
	return id
}

// Deactivate removes the clause from future propagations.
func (e *Engine) Deactivate(id ID) {
	c := &e.clauses[id]
	if !c.active {
		return
	}
	c.active = false
	if len(c.lits) == 1 {
		e.nUnits--
	}
	// Watched clauses are removed lazily from watch lists during
	// propagation; unit/empty lists are skipped by the active flag.
}

// reset clears the trail and all assignments made by the previous Refute.
func (e *Engine) reset() {
	for _, l := range e.trail {
		v := l.Var()
		e.assign[v] = 0
		e.reason[v] = reasonAssumption
	}
	e.trail = e.trail[:0]
	e.qhead = 0
}

// enqueue makes l true with the given reason. It returns false when l is
// already false (a conflict the caller must handle).
func (e *Engine) enqueue(l cnf.Lit, why ID) bool {
	switch litValue(e.assign, l) {
	case 1:
		return true // already true
	case -1:
		return false // conflict
	}
	assignLit(e.assign, l)
	e.reason[l.Var()] = why
	e.trail = append(e.trail, l)
	if why != reasonAssumption {
		e.propagations++
	}
	return true
}

// Refute implements Propagator.
func (e *Engine) Refute(c cnf.Clause) (ID, bool) {
	if mv := c.MaxVar(); int(mv) >= e.nVars {
		e.growTo(int(mv) + 1)
	}
	e.reset()
	e.refutations++
	if e.beginRefute() {
		return NoConflict, false
	}

	// An active empty clause conflicts immediately.
	if e.retainInactive {
		for _, id := range e.empty {
			if e.clauses[id].active {
				e.conflicts++
				return id, false
			}
		}
	} else {
		w := 0
		for _, id := range e.empty {
			if e.clauses[id].active {
				e.empty[w] = id
				w++
			}
		}
		e.empty = e.empty[:w]
		if len(e.empty) > 0 {
			e.conflicts++
			return e.empty[0], false
		}
	}

	// Assumptions first: falsify every literal of c. If two literals of c
	// clash, c is a tautology and cannot be falsified.
	for _, l := range c {
		if !e.enqueue(l.Neg(), reasonAssumption) {
			return NoConflict, true
		}
	}

	// Inject active unit clauses, compacting the list as we go (unless
	// inactive entries must be retained for reactivation).
	w := 0
	conflict := NoConflict
	for i, id := range e.units {
		uc := &e.clauses[id]
		if !uc.active {
			if e.retainInactive {
				e.units[w] = id
				w++
			}
			continue
		}
		e.units[w] = id
		w++
		if !e.enqueue(uc.lits[0], id) {
			// Preserve the not-yet-scanned suffix before bailing out.
			for _, rest := range e.units[i+1:] {
				e.units[w] = rest
				w++
			}
			conflict = id
			break
		}
	}
	e.units = e.units[:w]
	if conflict != NoConflict {
		e.conflicts++
		return conflict, false
	}

	return e.propagate()
}

// propagate runs watched-literal propagation until fixpoint or conflict.
func (e *Engine) propagate() (ID, bool) {
	for e.qhead < len(e.trail) {
		if e.poll() {
			return NoConflict, false
		}
		p := e.trail[e.qhead] // p just became true; p.Neg() is false
		e.qhead++
		falseLit := p.Neg()
		ws := e.watches[falseLit]
		out := ws[:0]
		e.watcherVisits += int64(len(ws))
		for i := 0; i < len(ws); i++ {
			id := ws[i]
			c := &e.clauses[id]
			if !c.active {
				if e.retainInactive {
					out = append(out, id) // keep: may be reactivated later
				}
				continue
			}
			lits := c.lits
			// Ensure the false watch is lits[1].
			if lits[0] == falseLit {
				lits[0], lits[1] = lits[1], lits[0]
			}
			// If the other watch is true, the clause is satisfied.
			if litValue(e.assign, lits[0]) == 1 {
				out = append(out, id)
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(lits); k++ {
				if litValue(e.assign, lits[k]) != -1 {
					lits[1], lits[k] = lits[k], lits[1]
					e.watches[lits[1]] = append(e.watches[lits[1]], id)
					found = true
					break
				}
			}
			if found {
				continue // clause moved to another watch list
			}
			// Clause is unit on lits[0] (or falsified).
			out = append(out, id)
			if !e.enqueue(lits[0], id) {
				// Conflict: keep the remaining watchers in place.
				out = append(out, ws[i+1:]...)
				e.watches[falseLit] = out
				e.conflicts++
				return id, false
			}
		}
		e.watches[falseLit] = out
	}
	return NoConflict, false
}

// WalkConflict implements Propagator. It marks, transitively, every clause
// responsible for the conflict, mirroring the paper's Conflict_analysis:
// start from the falsified clause; for each of its (false) literals, if the
// variable was propagated, visit its reason clause and recurse; assumption
// variables (literals of the refuted clause C) contribute nothing.
func (e *Engine) WalkConflict(conflict ID, visit func(ID)) {
	if conflict == NoConflict {
		return
	}
	defer func() {
		for _, v := range e.seenReset {
			e.seen[v] = false
		}
		e.seenReset = e.seenReset[:0]
	}()

	// Each clause implies at most one variable and an implying clause can
	// never itself be falsified (its implied literal stays true), so with
	// per-variable deduplication every clause is visited at most once.
	visit(conflict)
	stack := append([]cnf.Lit(nil), e.clauses[conflict].lits...)
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := l.Var()
		if e.seen[v] {
			continue
		}
		e.seen[v] = true
		e.seenReset = append(e.seenReset, v)
		r := e.reason[v]
		if r == reasonAssumption {
			continue
		}
		visit(r)
		for _, rl := range e.clauses[r].lits {
			if rl.Var() != v {
				stack = append(stack, rl)
			}
		}
	}
}

// Assignment returns the current value of a variable after the last Refute:
// +1 true, -1 false, 0 unassigned. Exposed for tests and diagnostics.
func (e *Engine) Assignment(v cnf.Var) int8 {
	if int(v) >= len(e.assign) {
		return 0
	}
	return e.assign[v]
}

// ActiveUnits reports how many unit clauses are currently active.
func (e *Engine) ActiveUnits() int { return e.nUnits }
