package bcp

import "repro/internal/cnf"

// Engine is the two-watched-literal propagator. Three design choices make it
// fast on the verifier's access pattern (one Refute per checked clause, over
// a database that changes by one clause between checks):
//
//   - Persistent root trail. The fixpoint of the active database under unit
//     propagation alone — the "root level" — is computed lazily and kept
//     alive between Refute calls. Each Refute backtracks to the saved root
//     length, pushes only the refuted clause's assumption literals, and
//     propagates from there, instead of re-injecting every unit clause and
//     re-deriving the whole fixpoint per check. Add/Deactivate/Reactivate
//     maintain the trail's validity: deactivating a clause that is the
//     reason for a root literal truncates the trail at that literal (every
//     later entry is conservatively dropped) and schedules a lazy
//     re-propagation; mutations that can only extend the fixpoint merely
//     clear the fixed flag.
//
//   - Flat clause arena. All literals live in one contiguous []cnf.Lit and a
//     clause is an {offset, length} header, so the propagation loop walks
//     cache-local memory instead of chasing a pointer per clause.
//
//   - Blocking literals. A watch-list entry carries a copy of some literal
//     of its clause (initially the other watched literal); if the blocker is
//     true the clause is already satisfied and is skipped without touching
//     clause memory at all.
//
// Clauses of length >= 2 keep two watched positions (lits[0] and lits[1]);
// a clause is revisited only when one of its watched literals becomes false.
// Unit and empty clauses are tracked separately: units are (re)injected when
// the root fixpoint is rebuilt, and active empty clauses are counted so the
// common no-empty-clause case costs one integer compare per Refute.
type Engine struct {
	nVars int
	arena []cnf.Lit   // all clause literals, contiguous in Add order
	hdrs  []clauseHdr // indexed by clause ID
	// watches is indexed by literal: entries for clauses currently watching
	// it, each with a blocking literal checked before the clause is loaded.
	watches [][]watcher

	// retainInactive keeps deactivated clauses in the watch/unit lists
	// (skipped during propagation) so Reactivate is a flag flip. Enabled
	// by NewEngineReactivable; costs list compaction.
	retainInactive bool
	// incremental enables the persistent root trail. Disabled by
	// NewEngineNonIncremental, which rebuilds the root fixpoint from scratch
	// on every Refute — the historical behavior, kept as the benchmark
	// baseline and as a reference implementation for differential tests.
	incremental bool

	units  []ID // active unit clauses (lazily compacted)
	empty  []ID // active empty clauses (lazily compacted)
	taut   int  // count of tautologies, for stats only
	nUnits int  // active unit count (maintained on Add/Deactivate/Reactivate)
	nEmpty int  // active empty count (maintained on Add/Deactivate/Reactivate)

	assign []int8
	reason []ID
	varPos []int32 // trail index of each assigned variable
	trail  []cnf.Lit
	qhead  int

	// Root-trail state. trail[:rootLen] is the committed prefix of the root
	// fixpoint: every entry is implied by the active database alone (no
	// assumptions). When rootFixed, the prefix IS the fixpoint and
	// rootConflict caches its outcome; otherwise rootFix resumes propagation
	// at rootQhead (0 forces a full replay of the kept prefix, needed after
	// a truncation because a clause can become unit under any kept literal).
	rootLen      int
	rootQhead    int
	rootFixed    bool
	rootConflict ID

	// When a Refute assumption clashes with a root literal, the literal's
	// root reason clause is reported as the conflict and its reason is
	// temporarily overridden to reasonAssumption so WalkConflict treats the
	// clash variable as an assumption (visiting the conflict clause once,
	// like a falsified-clause conflict). savedVar/savedReason restore it on
	// the next backtrack. savedVar < 0 means no override is in place.
	savedVar    int
	savedReason ID

	litMark   []bool // per-literal scratch for the tautology pre-scan
	seen      []bool // per-var scratch for WalkConflict
	seenReset []cnf.Var
	walkStack []cnf.Lit // scratch stack reused across WalkConflict calls

	hintLitReset []cnf.Lit // litMark undo list for ConflictHints' replay

	stopState

	propagations  int64
	refutations   int64
	conflicts     int64
	watcherVisits int64
}

// clauseHdr locates a clause's literals inside the arena.
type clauseHdr struct {
	off    uint32
	n      uint32
	active bool
	taut   bool // tautologies can never be activated
}

// watcher is a watch-list entry: the watching clause plus a blocking
// literal. The blocker is always some literal of the clause, so blocker-true
// implies clause-satisfied even when the entry is stale.
type watcher struct {
	id      ID
	blocker cnf.Lit
}

var _ Propagator = (*Engine)(nil)

// NewEngine returns a watched-literal engine over n variables. The variable
// range grows automatically when Add or Refute mention larger variables.
func NewEngine(n int) *Engine {
	e := &Engine{nVars: n, incremental: true, rootConflict: NoConflict, savedVar: -1}
	e.growTo(n)
	return e
}

// NewEngineReactivable returns an engine whose Deactivate is reversible via
// Reactivate — used by the backward DRUP checker, which walks deletion
// steps in reverse. Inactive clauses stay in the watch lists (skipped
// during propagation), trading list compaction for O(1) reactivation.
func NewEngineReactivable(n int) *Engine {
	e := NewEngine(n)
	e.retainInactive = true
	return e
}

// NewEngineNonIncremental returns an engine with the arena and blocking
// literals but without the persistent root trail: every Refute re-derives
// the formula's unit-propagation fixpoint from scratch. This replicates the
// historical per-check cost and exists as the before/after benchmark
// baseline and as an independent reference for differential tests.
func NewEngineNonIncremental(n int) *Engine {
	e := NewEngine(n)
	e.incremental = false
	return e
}

// lits returns the arena slice of a clause.
func (e *Engine) lits(id ID) []cnf.Lit {
	h := &e.hdrs[id]
	return e.arena[h.off : h.off+h.n]
}

// Reactivate undoes a Deactivate. It returns ErrNotReactivable on engines
// not created with NewEngineReactivable (their Deactivate compacts the
// clause out of the watch lists, so a flag flip cannot bring it back).
func (e *Engine) Reactivate(id ID) error {
	if !e.retainInactive {
		return ErrNotReactivable
	}
	h := &e.hdrs[id]
	if h.active || h.taut {
		return nil
	}
	e.backtrackToRoot()
	h.active = true
	switch h.n {
	case 0:
		e.nEmpty++
	case 1:
		e.nUnits++
		// The unit extends the root fixpoint; the unit scan in rootFix will
		// pick it up, and propagation resumes from the current queue.
		e.rootFixed = false
	default:
		// If a watched literal is already false, its falsification event is
		// in the past: replay the whole kept trail so the clause is visited.
		// A true watch exempts the clause — it is satisfied at root, and any
		// truncation that could unassign the true watch forces a replay
		// itself.
		ls := e.lits(id)
		v0, v1 := litValue(e.assign, ls[0]), litValue(e.assign, ls[1])
		if (v0 == -1 || v1 == -1) && v0 != 1 && v1 != 1 {
			e.rootFixed = false
			e.rootQhead = 0
		}
	}
	return nil
}

func (e *Engine) growTo(n int) {
	if n <= e.nVars && len(e.assign) >= n {
		return
	}
	if n < e.nVars {
		n = e.nVars
	}
	for len(e.assign) < n {
		e.assign = append(e.assign, 0)
		e.reason = append(e.reason, reasonAssumption)
		e.varPos = append(e.varPos, 0)
		e.seen = append(e.seen, false)
		e.watches = append(e.watches, nil, nil)
		e.litMark = append(e.litMark, false, false)
	}
	e.nVars = n
}

// NumClauses returns how many clauses were added.
func (e *Engine) NumClauses() int { return len(e.hdrs) }

// Propagations returns the cumulative number of implied assignments.
func (e *Engine) Propagations() int64 { return e.propagations }

// Stats returns the cumulative work counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Propagations:  e.propagations,
		Refutations:   e.refutations,
		Conflicts:     e.conflicts,
		WatcherVisits: e.watcherVisits,
	}
}

// RootTrailLen reports how many literals the persistent root trail currently
// holds. Exposed for tests and diagnostics.
func (e *Engine) RootTrailLen() int { return e.rootLen }

// Add inserts a clause and returns its ID.
func (e *Engine) Add(c cnf.Clause) ID {
	norm, taut := c.Normalize()
	if mv := norm.MaxVar(); int(mv) >= e.nVars {
		e.growTo(int(mv) + 1)
	}
	e.backtrackToRoot()
	id := ID(len(e.hdrs))
	off := uint32(len(e.arena))
	e.arena = append(e.arena, norm...)
	e.hdrs = append(e.hdrs, clauseHdr{off: off, n: uint32(len(norm)), active: !taut, taut: taut})
	if taut {
		e.taut++
		return id
	}
	switch len(norm) {
	case 0:
		e.empty = append(e.empty, id)
		e.nEmpty++
	case 1:
		e.units = append(e.units, id)
		e.nUnits++
		// May extend the root fixpoint; injected on the next rootFix.
		e.rootFixed = false
	default:
		// Prefer two non-false watches under the current root assignment so
		// the watch invariant (a watched literal is false only if its
		// falsification event is at or after the propagation queue head)
		// holds without replaying the trail. Fewer than two exist only when
		// the clause is already unit or falsified at root — then force a
		// full replay, which revisits every falsification event.
		ls := e.arena[off : off+uint32(len(norm))]
		nw := 0
		for k := 0; k < len(ls) && nw < 2; k++ {
			if litValue(e.assign, ls[k]) != -1 {
				ls[nw], ls[k] = ls[k], ls[nw]
				nw++
			}
		}
		e.watches[ls[0]] = append(e.watches[ls[0]], watcher{id, ls[1]})
		e.watches[ls[1]] = append(e.watches[ls[1]], watcher{id, ls[0]})
		if nw < 2 {
			e.rootFixed = false
			e.rootQhead = 0
		}
	}
	return id
}

// Deactivate removes the clause from future propagations. If the clause is
// the reason for a root-trail literal, the trail is truncated at that
// literal — every later entry is dropped and re-derived lazily, since its
// own justification may depend on the invalidated one.
func (e *Engine) Deactivate(id ID) {
	h := &e.hdrs[id]
	if !h.active {
		return
	}
	e.backtrackToRoot()
	h.active = false
	switch h.n {
	case 0:
		e.nEmpty--
		return
	case 1:
		e.nUnits--
	}
	// Root propagation keeps each implied literal at position 0 of its
	// reason clause, so one load decides whether id justifies a trail entry.
	l0 := e.arena[h.off]
	if litValue(e.assign, l0) == 1 && e.reason[l0.Var()] == id {
		pos := int(e.varPos[l0.Var()])
		e.shrinkTrail(pos)
		e.rootLen = pos
		e.rootQhead = 0 // a clause can be unit under any kept literal: full replay
		e.rootFixed = false
		e.rootConflict = NoConflict
		return
	}
	if id == e.rootConflict {
		// The cached root conflict is gone; re-derive the fixpoint outcome.
		e.rootConflict = NoConflict
		e.rootQhead = 0
		e.rootFixed = false
	}
	// Any other deactivation only removes constraints: the remaining trail
	// stays justified and a cached conflict on a different clause stays
	// falsified. Watch lists are cleaned lazily during propagation.
}

// shrinkTrail unassigns every trail literal at index >= to.
func (e *Engine) shrinkTrail(to int) {
	for i := len(e.trail) - 1; i >= to; i-- {
		v := e.trail[i].Var()
		e.assign[v] = 0
		e.reason[v] = reasonAssumption
	}
	e.trail = e.trail[:to]
	if e.qhead > to {
		e.qhead = to
	}
}

// backtrackToRoot removes the previous Refute's assumptions and their
// consequences, restoring the committed root prefix (and any reason
// temporarily overridden for conflict reporting).
func (e *Engine) backtrackToRoot() {
	if e.savedVar >= 0 {
		e.reason[e.savedVar] = e.savedReason
		e.savedVar = -1
	}
	if len(e.trail) > e.rootLen {
		e.shrinkTrail(e.rootLen)
	}
}

// dropRoot discards the persistent root state entirely (non-incremental
// mode: every Refute re-derives the fixpoint from scratch).
func (e *Engine) dropRoot() {
	e.shrinkTrail(0)
	e.rootLen = 0
	e.rootQhead = 0
	e.rootFixed = false
	e.rootConflict = NoConflict
}

// enqueue makes l true with the given reason. It returns false when l is
// already false (a conflict the caller must handle).
func (e *Engine) enqueue(l cnf.Lit, why ID) bool {
	switch litValue(e.assign, l) {
	case 1:
		return true // already true
	case -1:
		return false // conflict
	}
	assignLit(e.assign, l)
	v := l.Var()
	e.reason[v] = why
	e.varPos[v] = int32(len(e.trail))
	e.trail = append(e.trail, l)
	if why != reasonAssumption {
		e.propagations++
	}
	return true
}

// rootFix brings the root trail to the unit-propagation fixpoint of the
// active database and returns the cached conflict (or NoConflict). On a
// cooperative abort the partial progress is kept — every enqueued literal
// is justified — and the root stays unfixed; callers must check StopErr.
func (e *Engine) rootFix() ID {
	if e.rootFixed {
		return e.rootConflict
	}
	e.qhead = e.rootQhead

	// Inject active unit clauses, compacting the list as we go (unless
	// inactive entries must be retained for reactivation).
	w := 0
	conflict := NoConflict
	for i, id := range e.units {
		h := &e.hdrs[id]
		if !h.active {
			if e.retainInactive {
				e.units[w] = id
				w++
			}
			continue
		}
		e.units[w] = id
		w++
		if !e.enqueue(e.arena[h.off], id) {
			// Preserve the not-yet-scanned suffix before bailing out.
			for _, rest := range e.units[i+1:] {
				e.units[w] = rest
				w++
			}
			conflict = id
			break
		}
	}
	e.units = e.units[:w]

	if conflict == NoConflict {
		conflict = e.propagate()
		if e.stopErr != nil {
			e.rootLen = len(e.trail)
			e.rootQhead = e.qhead
			return NoConflict
		}
	}
	e.rootLen = len(e.trail)
	e.rootQhead = e.qhead
	e.rootConflict = conflict
	e.rootFixed = true
	return conflict
}

// Refute implements Propagator.
func (e *Engine) Refute(c cnf.Clause) (ID, bool) {
	p0, v0 := e.propagations, e.watcherVisits
	conflict, selfContra := e.refute(c)
	if conflict != NoConflict {
		e.conflicts++
	}
	if t := e.trace; t != nil {
		t.CounterPair("bcp.propagations", e.propagations-p0,
			"bcp.watcher_visits", e.watcherVisits-v0)
	}
	return conflict, selfContra
}

func (e *Engine) refute(c cnf.Clause) (ID, bool) {
	if mv := c.MaxVar(); int(mv) >= e.nVars {
		e.growTo(int(mv) + 1)
	}
	e.backtrackToRoot()
	if !e.incremental {
		e.dropRoot()
	}
	e.refutations++
	if e.beginRefute() {
		return NoConflict, false
	}

	// An active empty clause conflicts immediately; nEmpty makes the common
	// case one compare.
	if e.nEmpty > 0 {
		if e.retainInactive {
			for _, id := range e.empty {
				if e.hdrs[id].active {
					return id, false
				}
			}
		} else {
			w := 0
			for _, id := range e.empty {
				if e.hdrs[id].active {
					e.empty[w] = id
					w++
				}
			}
			e.empty = e.empty[:w]
			return e.empty[0], false
		}
	}

	// Tautology pre-scan: c cannot be falsified iff it contains a
	// complementary pair. Checked against scratch marks rather than the
	// trail, because root literals are no longer assumption-assigned.
	selfContra := false
	for _, l := range c {
		if e.litMark[l.Neg()] {
			selfContra = true
			break
		}
		e.litMark[l] = true
	}
	for _, l := range c {
		e.litMark[l] = false
	}
	if selfContra {
		return NoConflict, true
	}

	// Root fixpoint: cached across Refute calls; a database that is already
	// refuted by unit propagation alone conflicts regardless of assumptions.
	if conflict := e.rootFix(); conflict != NoConflict || e.stopErr != nil {
		return conflict, false
	}

	// Assumptions: falsify every literal of c. A clash means the literal is
	// already true at root (complementary pairs were excluded above, and
	// every root literal has a clause reason); that reason clause is the
	// conflict, with the clash variable reported as assumption-assigned so
	// conflict analysis walks its remaining literals' root reasons.
	for _, l := range c {
		if !e.enqueue(l.Neg(), reasonAssumption) {
			v := l.Var()
			r := e.reason[v]
			e.savedVar = int(v)
			e.savedReason = r
			e.reason[v] = reasonAssumption
			return r, false
		}
	}

	conflict := e.propagate()
	if e.stopErr != nil {
		return NoConflict, false
	}
	return conflict, false
}

// propagate runs watched-literal propagation until fixpoint or conflict.
func (e *Engine) propagate() ID {
	for e.qhead < len(e.trail) {
		if e.poll() {
			return NoConflict
		}
		p := e.trail[e.qhead] // p just became true; p.Neg() is false
		e.qhead++
		falseLit := p.Neg()
		ws := e.watches[falseLit]
		out := ws[:0]
		e.watcherVisits += int64(len(ws))
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			// Blocker true => clause satisfied: skip without loading it.
			if litValue(e.assign, w.blocker) == 1 {
				out = append(out, w)
				continue
			}
			h := &e.hdrs[w.id]
			if !h.active {
				if e.retainInactive {
					out = append(out, w) // keep: may be reactivated later
				}
				continue
			}
			lits := e.arena[h.off : h.off+h.n]
			// Ensure the false watch is lits[1].
			if lits[0] == falseLit {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			// If the other watch is true, the clause is satisfied.
			if first != w.blocker && litValue(e.assign, first) == 1 {
				out = append(out, watcher{w.id, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(lits); k++ {
				if litValue(e.assign, lits[k]) != -1 {
					lits[1], lits[k] = lits[k], lits[1]
					e.watches[lits[1]] = append(e.watches[lits[1]], watcher{w.id, first})
					found = true
					break
				}
			}
			if found {
				continue // clause moved to another watch list
			}
			// Clause is unit on first (or falsified).
			out = append(out, watcher{w.id, first})
			if !e.enqueue(first, w.id) {
				// Conflict: keep the remaining watchers in place.
				out = append(out, ws[i+1:]...)
				e.watches[falseLit] = out
				return w.id
			}
		}
		e.watches[falseLit] = out
	}
	return NoConflict
}

// WalkConflict implements Propagator. It marks, transitively, every clause
// responsible for the conflict, mirroring the paper's Conflict_analysis:
// start from the falsified clause; for each of its (false) literals, if the
// variable was propagated, visit its reason clause and recurse; assumption
// variables (literals of the refuted clause C) contribute nothing.
func (e *Engine) WalkConflict(conflict ID, visit func(ID)) {
	if conflict == NoConflict {
		return
	}
	defer func() {
		for _, v := range e.seenReset {
			e.seen[v] = false
		}
		e.seenReset = e.seenReset[:0]
	}()

	// Each clause implies at most one variable and an implying clause can
	// never itself be falsified (its implied literal stays true), so with
	// per-variable deduplication every clause is visited at most once.
	visit(conflict)
	stack := append(e.walkStack[:0], e.lits(conflict)...)
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := l.Var()
		if e.seen[v] {
			continue
		}
		e.seen[v] = true
		e.seenReset = append(e.seenReset, v)
		r := e.reason[v]
		if r == reasonAssumption {
			continue
		}
		visit(r)
		for _, rl := range e.lits(r) {
			if rl.Var() != v {
				stack = append(stack, rl)
			}
		}
	}
	e.walkStack = stack[:0]
}

// Assignment returns the current value of a variable after the last Refute:
// +1 true, -1 false, 0 unassigned. Exposed for tests and diagnostics.
func (e *Engine) Assignment(v cnf.Var) int8 {
	if int(v) >= len(e.assign) {
		return 0
	}
	return e.assign[v]
}

// ActiveUnits reports how many unit clauses are currently active.
func (e *Engine) ActiveUnits() int { return e.nUnits }
