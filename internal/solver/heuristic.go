package solver

import "repro/internal/cnf"

// varHeap is an indexed binary max-heap over variable activities.
type varHeap struct {
	s     *Solver
	heap  []cnf.Var
	index []int32 // position of var in heap, -1 when absent
}

func newVarHeap(s *Solver) *varHeap {
	h := &varHeap{s: s, index: make([]int32, s.nVars)}
	for i := range h.index {
		h.index[i] = -1
	}
	return h
}

func (h *varHeap) less(a, b cnf.Var) bool {
	return h.s.activity[a] > h.s.activity[b]
}

func (h *varHeap) contains(v cnf.Var) bool { return h.index[v] >= 0 }

func (h *varHeap) push(v cnf.Var) {
	h.heap = append(h.heap, v)
	h.index[v] = int32(len(h.heap) - 1)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pushIfAbsent(v cnf.Var) {
	if !h.contains(v) {
		h.push(v)
	}
}

func (h *varHeap) pop() (cnf.Var, bool) {
	if len(h.heap) == 0 {
		return cnf.VarUndef, false
	}
	top := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.index[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.index[top] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return top, true
}

// bumped restores heap order after v's activity increased.
func (h *varHeap) bumped(v cnf.Var) {
	if i := h.index[v]; i >= 0 {
		h.up(int(i))
	}
}

// rebuild re-heapifies after a global activity rescale (order is preserved
// by uniform scaling, so this is only needed if activities were mutated
// non-uniformly; kept for safety).
func (h *varHeap) rebuild() {
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.index[h.heap[i]] = int32(i)
		i = parent
	}
	h.heap[i] = v
	h.index[v] = int32(i)
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if child+1 < n && h.less(h.heap[child+1], h.heap[child]) {
			child++
		}
		if !h.less(h.heap[child], v) {
			break
		}
		h.heap[i] = h.heap[child]
		h.index[h.heap[i]] = int32(i)
		i = child
	}
	h.heap[i] = v
	h.index[v] = int32(i)
}

// --- activity bookkeeping -------------------------------------------------

const (
	activityRescale = 1e100
	litActRescale   = 1e100
)

func (s *Solver) bumpVar(v cnf.Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > activityRescale {
		for i := range s.activity {
			s.activity[i] *= 1 / activityRescale
		}
		s.varInc *= 1 / activityRescale
		s.order.rebuild()
	}
	s.order.bumped(v)
}

// bumpLit maintains BerkMin's per-literal counters used to choose branch
// polarity: literals that occur in recent conflict clauses are preferred.
func (s *Solver) bumpLit(l cnf.Lit) {
	s.litAct[l] += s.varInc
	if s.litAct[l] > litActRescale {
		for i := range s.litAct {
			s.litAct[i] *= 1 / litActRescale
		}
	}
}

func (s *Solver) bumpClause(c *clause) {
	c.act += float32(s.claInc)
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayActivities() {
	s.varInc *= 1 / s.opts.VarDecay
	s.claInc *= 1 / s.opts.ClauseDecay
}

// --- branching -------------------------------------------------------------

// pickBranchLit selects the next decision literal, or LitUndef when every
// variable is assigned (the formula is satisfied).
func (s *Solver) pickBranchLit() cnf.Lit {
	if s.opts.Heuristic == HeurBerkMin {
		if l := s.pickBerkMin(); l != cnf.LitUndef {
			return l
		}
	}
	return s.pickVSIDS()
}

// pickVSIDS pops the most active unassigned variable and applies the saved
// phase (default negative polarity, as in early CDCL solvers).
func (s *Solver) pickVSIDS() cnf.Lit {
	for {
		v, ok := s.order.pop()
		if !ok {
			return cnf.LitUndef
		}
		if s.assigns[v] != 0 {
			continue
		}
		return s.litForVar(v)
	}
}

// pickBerkMin implements BerkMin's decision strategy: find the topmost
// (most recently learned) clause in the learned-clause stack that is not yet
// satisfied and branch on its most active unassigned variable. When every
// learned clause is satisfied (or none exist) it falls back to VSIDS by
// returning LitUndef.
func (s *Solver) pickBerkMin() cnf.Lit {
	// BerkMin maintains a moving pointer to the top unsatisfied clause; we
	// approximate with a bounded scan from the top of the stack (the newest
	// learned clause is asserting, hence usually unsatisfied within a few
	// entries) and fall back to VSIDS beyond the bound, keeping decisions
	// O(1) amortized instead of O(|learnts|).
	const scanBound = 64
	lo := len(s.learnts) - scanBound
	if lo < 0 {
		lo = 0
	}
	for i := len(s.learnts) - 1; i >= lo; i-- {
		c := s.learnts[i]
		if s.satisfied(c) {
			continue
		}
		var best cnf.Var = cnf.VarUndef
		for _, l := range c.lits {
			v := l.Var()
			if s.assigns[v] != 0 {
				continue
			}
			if best == cnf.VarUndef || s.activity[v] > s.activity[best] {
				best = v
			}
		}
		if best == cnf.VarUndef {
			// Unsatisfied clause with all variables assigned would be a
			// missed conflict; propagation guarantees this cannot happen.
			continue
		}
		return s.litForVar(best)
	}
	return cnf.LitUndef
}

// litForVar chooses the polarity for a branch variable: BerkMin-style
// literal counters first, then the saved phase, then negative.
func (s *Solver) litForVar(v cnf.Var) cnf.Lit {
	pos, neg := s.litAct[cnf.PosLit(v)], s.litAct[cnf.NegLit(v)]
	switch {
	case pos > neg:
		return cnf.PosLit(v)
	case neg > pos:
		return cnf.NegLit(v)
	}
	if s.phase[v] == 1 {
		return cnf.PosLit(v)
	}
	return cnf.NegLit(v)
}
