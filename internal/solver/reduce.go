package solver

import (
	"sort"

	"repro/internal/cnf"
)

// reduceDB removes roughly half of the learned clauses, preferring inactive
// long clauses, in the spirit of BerkMin's aging-based deletion. Locked
// clauses (current reasons) and binary clauses are kept. Deletion never
// touches the proof: every clause was already emitted when it was deduced —
// the paper's F* is the set of ALL deduced conflict clauses, including those
// the solver later drops.
func (s *Solver) reduceDB() {
	if len(s.learnts) == 0 {
		return
	}
	// Order candidates by activity ascending (oldest/least useful first).
	byAct := make([]*clause, len(s.learnts))
	copy(byAct, s.learnts)
	sort.Slice(byAct, func(i, j int) bool { return byAct[i].act < byAct[j].act })

	toDelete := make(map[*clause]bool, len(byAct)/2)
	budget := len(byAct) / 2
	for _, c := range byAct {
		if budget == 0 {
			break
		}
		if len(c.lits) <= 2 || s.locked(c) {
			continue
		}
		toDelete[c] = true
		budget--
	}
	if len(toDelete) == 0 {
		return
	}
	s.obsReductions.Inc()
	s.obsDeleted.Add(int64(len(toDelete)))
	w := 0
	for _, c := range s.learnts {
		if toDelete[c] {
			s.detach(c)
			s.stats.Deleted++
			if s.opts.OnDelete != nil {
				s.opts.OnDelete(append(cnf.Clause(nil), c.lits...))
			}
			continue
		}
		s.learnts[w] = c
		w++
	}
	s.learnts = s.learnts[:w]
}
