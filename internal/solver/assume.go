package solver

import "repro/internal/cnf"

// RunAssuming executes the CDCL search under the given assumption literals,
// MiniSat-style: assumptions occupy the first decision levels and are
// re-established after every restart. Possible outcomes:
//
//   - Sat: a model satisfying the formula and all assumptions (see Model).
//   - Unsat: the formula is unsatisfiable regardless of assumptions; the
//     proof trace terminates as usual.
//   - UnsatAssumptions: the formula is unsatisfiable under the assumptions;
//     ConflictSubset returns a subset A of the assumptions such that
//     F ∧ A is unsatisfiable (the "final conflict clause" analysis).
//   - Unknown: conflict budget exhausted.
//
// The solver remains usable afterwards: learned clauses are kept (they are
// implied by the formula alone — assumption literals are decisions, so
// conflict analysis leaves their negations inside learned clauses rather
// than resolving them away), making repeated RunAssuming calls incremental.
func (s *Solver) RunAssuming(assumps []cnf.Lit) Status {
	if s.provedUnsat {
		return Unsat
	}
	for _, a := range assumps {
		if int(a.Var()) >= s.nVars {
			s.growVars(int(a.Var()) + 1)
		}
	}
	s.cancelUntil(0)
	s.assumptions = append(s.assumptions[:0], assumps...)
	s.conflictSubset = nil
	defer func() { s.assumptions = s.assumptions[:0] }()

	if !s.okay {
		s.provedUnsat = true
		s.emit(nil, 0, []int{s.emptyOrigID})
		return Unsat
	}
	for _, u := range s.unitsPending {
		if !s.enqueue(u.lits[0], u) {
			s.provedUnsat = true
			s.finalize(u)
			return Unsat
		}
	}
	s.unitsPending = nil

	conflictsSinceRestart := int64(0)
	restartBudget := s.restartBudget(s.stats.Restarts)
	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflictsSinceRestart++
			s.obsConflicts.Inc()
			s.opts.Progress.Step(1)
			// Refresh the cheap-to-read gauges at conflict granularity so a
			// live -metrics endpoint tracks the search without per-enqueue
			// atomics on the propagation hot path.
			s.obsProps.Set(s.stats.Propagations)
			s.obsTrail.Set(int64(s.stats.MaxTrail))
			s.obsLearnts.Set(int64(len(s.learnts)))
			if s.decisionLevel() == 0 {
				s.provedUnsat = true
				s.finalize(confl)
				return Unsat
			}
			scheme := s.opts.Learn
			if scheme == LearnHybrid {
				if s.stats.Conflicts%int64(s.opts.HybridPeriod) == 0 {
					scheme = LearnDecision
				} else {
					scheme = Learn1UIP
				}
			}
			learnt, btLevel, resolutions, chain := s.analyze(confl, scheme)
			s.emit(learnt, resolutions, chain)
			s.cancelUntil(btLevel)
			s.addLearnt(learnt)
			s.decayActivities()

			if s.opts.MaxConflicts > 0 && s.stats.Conflicts >= s.opts.MaxConflicts {
				return Unknown
			}
			if s.opts.Stop != nil && s.opts.Stop.Load() {
				return Unknown
			}
			if s.opts.Ctx != nil && s.opts.Ctx.Err() != nil {
				return Unknown
			}
			if restartBudget > 0 && conflictsSinceRestart >= restartBudget {
				conflictsSinceRestart = 0
				s.stats.Restarts++
				s.obsRestarts.Inc()
				restartBudget = s.restartBudget(s.stats.Restarts)
				s.cancelUntil(0)
			}
			// The capacity grows geometrically with every reduction so that
			// even pathological MaxLearnedFactor settings cannot livelock
			// the search by endlessly discarding progress.
			if base := s.opts.MaxLearnedFactor * float64(len(s.clauses)+32); s.learntCap < base {
				s.learntCap = base
			}
			if float64(len(s.learnts)) > s.learntCap {
				s.reduceDB()
				s.learntCap *= 1.15
			}
			continue
		}

		// Establish pending assumptions before free decisions.
		if dl := s.decisionLevel(); dl < len(s.assumptions) {
			p := s.assumptions[dl]
			switch s.value(p) {
			case 1:
				// Already satisfied: open a dummy level so indices stay
				// aligned with the assumption list.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case -1:
				// Contradicted: compute the failing subset.
				s.conflictSubset = s.analyzeFinal(p)
				return UnsatAssumptions
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(p, nil)
			continue
		}

		l := s.pickBranchLit()
		if l == cnf.LitUndef {
			return Sat
		}
		s.stats.Decisions++
		s.obsDecisions.Inc()
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(l, nil)
	}
}

// ConflictSubset returns, after an UnsatAssumptions result, a subset A of
// the assumptions such that the formula conjoined with A is unsatisfiable.
func (s *Solver) ConflictSubset() []cnf.Lit {
	return append([]cnf.Lit(nil), s.conflictSubset...)
}

// analyzeFinal computes the assumption subset responsible for the failed
// assumption p (whose negation is currently implied): walk the implication
// graph from ¬p back to decision (assumption) literals.
func (s *Solver) analyzeFinal(p cnf.Lit) []cnf.Lit {
	out := []cnf.Lit{p}
	if s.decisionLevel() == 0 {
		return out
	}
	s.mark(p.Var())
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		r := s.reason[v]
		if r == nil {
			// All decision levels are assumption levels at this point, so a
			// reason-free variable is an assumption. (This also covers the
			// degenerate case of assuming both a and ¬a: the subset is then
			// {a, ¬a}.)
			out = append(out, s.trail[i])
			continue
		}
		for _, q := range r.lits {
			w := q.Var()
			if w == v || s.seen[w] || s.level[w] == 0 {
				continue
			}
			s.mark(w)
		}
	}
	s.clearSeen()
	return out
}
