package solver

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/core"
)

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestRestartPolicies(t *testing.T) {
	f := php(6)
	for _, pol := range []RestartPolicy{RestartFixed, RestartLuby, RestartNone} {
		opts := Options{Restart: pol, RestartInterval: 30}
		st, tr, _, stats, err := Solve(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if st != Unsat {
			t.Fatalf("%v: status %v", pol, st)
		}
		if pol == RestartNone && stats.Restarts != 0 {
			t.Errorf("none: %d restarts", stats.Restarts)
		}
		if pol != RestartNone && stats.Conflicts > 100 && stats.Restarts == 0 {
			t.Errorf("%v: no restarts over %d conflicts", pol, stats.Conflicts)
		}
		res, err := core.Verify(f, tr, core.Options{})
		if err != nil || !res.OK {
			t.Fatalf("%v: proof rejected: %v", pol, err)
		}
	}
}

func TestNegativeIntervalDisablesRestarts(t *testing.T) {
	f := php(5)
	_, _, _, stats, err := Solve(f, Options{RestartInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Restarts != 0 {
		t.Errorf("%d restarts with negative interval", stats.Restarts)
	}
}

func TestGrowVarsViaAssumptions(t *testing.T) {
	f := cnf.NewFormula(0).Add(1, 2)
	s, err := NewFromFormula(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := s.RunAssuming([]cnf.Lit{cnf.FromDimacs(50)})
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	m := s.Model()
	if len(m) < 50 || !m[49] {
		t.Errorf("grown variable not assigned: len=%d", len(m))
	}
}
