package solver

// propagate performs two-watched-literal unit propagation to fixpoint and
// returns a falsified clause, or nil when no conflict arises. Original
// clauses' literals live in the solver's flat arena (see Solver.arena), so
// the inner loop below mostly walks one contiguous block; blocking literals
// skip satisfied clauses without loading them at all. internal/bcp's
// verifier engine uses the same layout, reimplemented independently — the
// verifier must not share code with the solver it checks.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p became true; watchers of p.Neg() may fire
		s.qhead++
		ws := s.watches[p]
		// Watches are indexed by the literal whose FALSIFICATION wakes the
		// clause: attach registers watcher under lits[k].Neg(), so when p
		// becomes true the list s.watches[p] holds clauses watching p.Neg().
		out := ws[:0]
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			// Blocker short-circuit: clause already satisfied.
			if s.value(w.blocker) == 1 {
				out = append(out, w)
				continue
			}
			c := w.c
			lits := c.lits
			falseLit := p.Neg()
			if lits[0] == falseLit {
				lits[0], lits[1] = lits[1], lits[0]
			}
			// lits[1] == falseLit now.
			first := lits[0]
			if first != w.blocker && s.value(first) == 1 {
				out = append(out, watcher{c, first})
				continue
			}
			found := false
			for k := 2; k < len(lits); k++ {
				if s.value(lits[k]) != -1 {
					lits[1], lits[k] = lits[k], lits[1]
					s.watches[lits[1].Neg()] = append(s.watches[lits[1].Neg()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflicting on lits[0].
			out = append(out, watcher{c, first})
			if !s.enqueue(first, c) {
				// Conflict: restore the untraversed suffix and bail.
				out = append(out, ws[i+1:]...)
				s.watches[p] = out
				return c
			}
		}
		s.watches[p] = out
	}
	return nil
}

// satisfied reports whether the clause has a true literal under the current
// assignment.
func (s *Solver) satisfied(c *clause) bool {
	for _, l := range c.lits {
		if s.value(l) == 1 {
			return true
		}
	}
	return false
}

// locked reports whether the clause is the reason of its first literal's
// assignment (such clauses must survive database reduction).
func (s *Solver) locked(c *clause) bool {
	l := c.lits[0]
	return s.value(l) == 1 && s.reason[l.Var()] == c
}
