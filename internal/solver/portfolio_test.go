package solver

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/cnf"
	"repro/internal/core"
)

func TestPortfolioUnsat(t *testing.T) {
	f := php(6)
	res, err := Portfolio(f, []Options{
		{Learn: Learn1UIP},
		{Learn: LearnHybrid},
		{Learn: LearnHybrid, Heuristic: HeurVSIDS},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unsat {
		t.Fatalf("status %v", res.Status)
	}
	if res.Trace == nil {
		t.Fatal("no trace from winner")
	}
	v, err := core.Verify(f, res.Trace, core.Options{})
	if err != nil || !v.OK {
		t.Fatalf("winner's proof rejected: %v %+v", err, v)
	}
	if res.Winner < 0 || res.Winner > 2 {
		t.Errorf("winner = %d", res.Winner)
	}
}

func TestPortfolioSat(t *testing.T) {
	f := cnf.NewFormula(0).Add(1, 2).Add(-1, 3).Add(2, -3)
	res, err := Portfolio(f, []Options{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Sat {
		t.Fatalf("status %v", res.Status)
	}
	if !f.Eval(res.Model) {
		t.Fatal("bogus model")
	}
}

func TestPortfolioAllUnknown(t *testing.T) {
	f := php(7)
	res, err := Portfolio(f, []Options{
		{MaxConflicts: 3},
		{MaxConflicts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unknown {
		t.Fatalf("status %v", res.Status)
	}
}

func TestPortfolioEmpty(t *testing.T) {
	if _, err := Portfolio(php(2), nil); err == nil {
		t.Fatal("empty portfolio accepted")
	}
}

func TestStopFlag(t *testing.T) {
	f := php(8) // hard enough not to finish instantly
	var stop atomic.Bool
	stop.Store(true)
	st, _, _, stats, err := Solve(f, Options{Stop: &stop})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unknown {
		t.Fatalf("status %v with pre-set stop flag", st)
	}
	if stats.Conflicts > 2 {
		t.Errorf("ran %d conflicts past the stop flag", stats.Conflicts)
	}
}

func TestCtxCancellation(t *testing.T) {
	f := php(8) // hard enough not to finish instantly
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, _, _, stats, err := Solve(f, Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unknown {
		t.Fatalf("status %v with pre-cancelled context", st)
	}
	if stats.Conflicts > 2 {
		t.Errorf("ran %d conflicts past the cancelled context", stats.Conflicts)
	}
}
