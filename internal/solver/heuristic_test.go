package solver

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cnf"
)

// TestVarHeapPopOrder: popping everything yields variables in
// non-increasing activity order.
func TestVarHeapPopOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		s := New(len(raw), Options{})
		for v, a := range raw {
			s.activity[v] = float64(a)
			s.order.bumped(cnf.Var(v))
		}
		// Rebuild cleanly: drain and re-push to exercise push too.
		var drained []cnf.Var
		for {
			v, ok := s.order.pop()
			if !ok {
				break
			}
			drained = append(drained, v)
		}
		for i := 1; i < len(drained); i++ {
			if s.activity[drained[i-1]] < s.activity[drained[i]] {
				return false
			}
		}
		return len(drained) == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarHeapBumped(t *testing.T) {
	s := New(10, Options{})
	for v := 0; v < 10; v++ {
		s.activity[v] = float64(v)
		s.order.bumped(cnf.Var(v))
	}
	// Bump variable 0 to the top.
	s.activity[0] = 100
	s.order.bumped(0)
	v, ok := s.order.pop()
	if !ok || v != 0 {
		t.Errorf("pop = %v, %v; want 0", v, ok)
	}
}

func TestVarHeapPushIfAbsent(t *testing.T) {
	s := New(3, Options{})
	// All three pushed by New; popping one and re-pushing must not
	// duplicate the others.
	v, _ := s.order.pop()
	s.order.pushIfAbsent(v)
	s.order.pushIfAbsent(v) // no-op
	count := 0
	for {
		if _, ok := s.order.pop(); !ok {
			break
		}
		count++
	}
	if count != 3 {
		t.Errorf("heap contained %d vars, want 3", count)
	}
}

// TestAnalyze1UIPAsserting: after a conflict, the learned clause's first
// literal is unassigned at the backjump level and every other literal is
// false there — the asserting-clause invariant.
func TestAnalyze1UIPAsserting(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 100; round++ {
		nVars := 6 + rng.Intn(8)
		f := cnf.NewFormula(nVars)
		for i := 0; i < nVars*4; i++ {
			k := 2 + rng.Intn(2)
			c := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			f.AddClause(c)
		}
		s, err := NewFromFormula(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Drive the search manually until the first conflict.
		for _, u := range s.unitsPending {
			if !s.enqueue(u.lits[0], u) {
				break
			}
		}
		s.unitsPending = nil
		var confl *clause
		for confl == nil {
			confl = s.propagate()
			if confl != nil {
				break
			}
			l := s.pickBranchLit()
			if l == cnf.LitUndef {
				break // satisfiable without conflicts
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(l, nil)
		}
		if confl == nil || s.decisionLevel() == 0 {
			continue
		}
		learnt, btLevel, resolutions, _ := s.analyze(confl, Learn1UIP)
		if len(learnt) == 0 {
			t.Fatalf("round %d: empty learnt clause", round)
		}
		if resolutions < 0 {
			t.Fatalf("round %d: negative resolution count", round)
		}
		// learnt[0] is at the current decision level; all others below.
		if int(s.level[learnt[0].Var()]) != s.decisionLevel() {
			t.Fatalf("round %d: asserting literal at level %d, current %d",
				round, s.level[learnt[0].Var()], s.decisionLevel())
		}
		for _, l := range learnt[1:] {
			if int(s.level[l.Var()]) > btLevel {
				t.Fatalf("round %d: literal %v above backjump level %d", round, l, btLevel)
			}
			if s.value(l) != -1 {
				t.Fatalf("round %d: non-false literal %v in learnt clause", round, l)
			}
		}
	}
}

// TestAnalyzeDecisionOnlyDecisions: the decision-scheme clause contains
// exactly negations of decision literals.
func TestAnalyzeDecisionOnlyDecisions(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	checked := 0
	for round := 0; round < 200 && checked < 50; round++ {
		nVars := 6 + rng.Intn(8)
		f := cnf.NewFormula(nVars)
		for i := 0; i < nVars*4; i++ {
			k := 2 + rng.Intn(2)
			c := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			f.AddClause(c)
		}
		s, err := NewFromFormula(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range s.unitsPending {
			if !s.enqueue(u.lits[0], u) {
				break
			}
		}
		s.unitsPending = nil
		var confl *clause
		for confl == nil {
			confl = s.propagate()
			if confl != nil {
				break
			}
			l := s.pickBranchLit()
			if l == cnf.LitUndef {
				break
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(l, nil)
		}
		if confl == nil || s.decisionLevel() == 0 {
			continue
		}
		checked++
		decisions := map[cnf.Lit]bool{}
		for lvl := 0; lvl < s.decisionLevel(); lvl++ {
			// The decision of level lvl+1 sits at trailLim[lvl] (dummy
			// levels cannot occur without assumptions).
			decisions[s.trail[s.trailLim[lvl]]] = true
		}
		learnt, _, _, _ := s.analyze(confl, LearnDecision)
		for _, l := range learnt {
			if !decisions[l.Neg()] {
				t.Fatalf("round %d: literal %v is not a negated decision", round, l)
			}
		}
		// Levels must be distinct and descending.
		var levels []int
		for _, l := range learnt {
			levels = append(levels, int(s.level[l.Var()]))
		}
		if !sort.IsSorted(sort.Reverse(sort.IntSlice(levels))) {
			t.Fatalf("round %d: levels not descending: %v", round, levels)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d conflicts exercised", checked)
	}
}
