package solver

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestSolveObserved: a solve with a registry attached mirrors the search
// statistics into solver.* metrics and steps the progress reporter once
// per conflict.
func TestSolveObserved(t *testing.T) {
	reg := obs.New()
	var buf bytes.Buffer
	prog := obs.NewProgress(&buf, obs.ProgressConfig{Label: "solve", Unit: "conflicts", Every: 1})
	st, _, _, stats, err := Solve(php(4), Options{Obs: reg, Progress: prog})
	if err != nil || st != Unsat {
		t.Fatalf("%v %v", st, err)
	}
	prog.Finish()

	snap := reg.Snapshot()
	if got := snap.Counters["solver.conflicts"]; got != stats.Conflicts {
		t.Errorf("solver.conflicts = %d, want %d", got, stats.Conflicts)
	}
	if got := snap.Counters["solver.decisions"]; got != stats.Decisions {
		t.Errorf("solver.decisions = %d, want %d", got, stats.Decisions)
	}
	if got := snap.Counters["solver.learned"]; got != stats.Learned {
		t.Errorf("solver.learned = %d, want %d", got, stats.Learned)
	}
	if got := snap.Histograms["solver.learned_len"]; got.Count != stats.Learned {
		t.Errorf("learned_len count = %d, want %d", got.Count, stats.Learned)
	}
	// Gauges refresh at conflict granularity; after an UNSAT finish they
	// lag the final counts by at most the last conflict's work, and must
	// be nonzero on any search that actually propagated.
	if snap.Gauges["solver.propagations"] == 0 && stats.Propagations > 0 {
		t.Errorf("solver.propagations gauge = 0 with %d propagations", stats.Propagations)
	}
	if prog.Done() != stats.Conflicts {
		t.Errorf("progress stepped %d of %d conflicts", prog.Done(), stats.Conflicts)
	}
	if !strings.Contains(buf.String(), "c progress solve:") {
		t.Errorf("progress output:\n%s", buf.String())
	}
}

// TestSolveObservedDisabled: the nil-registry path must not change results.
func TestSolveObservedDisabled(t *testing.T) {
	st1, tr1, _, stats1, err := Solve(php(4), Options{})
	if err != nil || st1 != Unsat {
		t.Fatalf("%v %v", st1, err)
	}
	st2, tr2, _, stats2, err := Solve(php(4), Options{Obs: obs.New()})
	if err != nil || st2 != Unsat {
		t.Fatalf("%v %v", st2, err)
	}
	if stats1.Conflicts != stats2.Conflicts || tr1.Len() != tr2.Len() {
		t.Errorf("instrumentation changed the search: %+v vs %+v", stats1, stats2)
	}
}
