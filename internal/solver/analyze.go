package solver

import (
	"sort"

	"repro/internal/cnf"
)

// analyze derives a conflict clause from the falsified clause confl using
// the given scheme. It returns the learned literals (index 0 is the
// asserting literal), the backjump level, the exact number of resolution
// steps used, and (when Options.RecordChains) the ordered antecedent IDs
// whose sequential resolution yields the clause.
//
// Precondition: decisionLevel() >= 1.
func (s *Solver) analyze(confl *clause, scheme LearnScheme) ([]cnf.Lit, int, int64, []int) {
	if scheme == LearnDecision {
		return s.analyzeDecision(confl)
	}
	return s.analyze1UIP(confl)
}

// mark sets the seen flag for v and remembers it for cleanup.
func (s *Solver) mark(v cnf.Var) {
	s.seen[v] = true
	s.seenClear = append(s.seenClear, v)
}

func (s *Solver) clearSeen() {
	for _, v := range s.seenClear {
		s.seen[v] = false
	}
	s.seenClear = s.seenClear[:0]
}

// analyze1UIP is Chaff's first-UIP scheme: resolve backwards along the
// trail, but only through current-decision-level literals, stopping at the
// first unique implication point. The resulting clauses are the paper's
// "local" conflict clauses, obtained by a small number of resolutions.
func (s *Solver) analyze1UIP(confl *clause) ([]cnf.Lit, int, int64, []int) {
	learnt := make([]cnf.Lit, 1, 16) // [0] reserved for the asserting literal
	var chain []int
	if s.opts.RecordChains {
		chain = append(chain, confl.id)
	}
	var resolutions int64
	var zeroVars []cnf.Var // level-0 literals resolved away implicitly

	pathC := 0
	p := cnf.LitUndef
	idx := len(s.trail) - 1
	curLevel := int32(s.decisionLevel())

	c := confl
	for {
		if c.learned {
			s.bumpClause(c)
		}
		for _, q := range c.lits {
			if q == p {
				continue // the literal this reason implied
			}
			v := q.Var()
			if s.seen[v] {
				continue
			}
			s.mark(v)
			s.bumpVar(v)
			s.bumpLit(q)
			switch {
			case s.level[v] >= curLevel:
				pathC++
			case s.level[v] > 0:
				learnt = append(learnt, q)
			default:
				zeroVars = append(zeroVars, v)
			}
		}
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		pathC--
		if pathC == 0 {
			break
		}
		c = s.reason[v]
		resolutions++
		if chain != nil {
			chain = append(chain, c.id)
		}
	}
	learnt[0] = p.Neg()

	// Optional recursive minimization (post-BerkMin extension; disabled
	// when exact chains are required).
	if s.opts.MinimizeLearned && len(learnt) > 1 {
		learnt = s.minimize(learnt)
	}

	// Resolve level-0 literals away so the clause really is the resolvent
	// of its chain (and so the resolution count matches what a resolution
	// graph would store).
	res0, chain0 := s.resolveZeros(zeroVars)
	resolutions += res0
	if chain != nil {
		chain = append(chain, chain0...)
	}

	btLevel := s.prepareLearnt(learnt)
	s.clearSeen()
	return learnt, btLevel, resolutions, chain
}

// analyzeDecision is relsat's all-decision scheme: resolve every implied
// literal away (at every level) until only negations of decision literals
// remain — the paper's "global" conflict clauses, obtained by resolving many
// clauses of the current formula.
func (s *Solver) analyzeDecision(confl *clause) ([]cnf.Lit, int, int64, []int) {
	var learnt []cnf.Lit
	var chain []int
	if s.opts.RecordChains {
		chain = append(chain, confl.id)
	}
	var resolutions int64

	if confl.learned {
		s.bumpClause(confl)
	}
	remaining := 0
	for _, q := range confl.lits {
		v := q.Var()
		if !s.seen[v] {
			s.mark(v)
			s.bumpVar(v)
			s.bumpLit(q)
			remaining++
		}
	}
	for idx := len(s.trail) - 1; idx >= 0 && remaining > 0; idx-- {
		l := s.trail[idx]
		v := l.Var()
		if !s.seen[v] {
			continue
		}
		remaining--
		r := s.reason[v]
		if r == nil {
			// A decision: its negation stays in the clause. The walk is in
			// descending trail order, so learnt[0] ends up the deepest
			// decision's negation — the asserting literal.
			learnt = append(learnt, l.Neg())
			continue
		}
		resolutions++
		if chain != nil {
			chain = append(chain, r.id)
		}
		if r.learned {
			s.bumpClause(r)
		}
		for _, q := range r.lits {
			w := q.Var()
			if w == v || s.seen[w] {
				continue
			}
			s.mark(w)
			s.bumpVar(w)
			s.bumpLit(q)
			remaining++
		}
	}

	btLevel := 0
	if len(learnt) > 1 {
		btLevel = int(s.level[learnt[1].Var()])
	}
	s.clearSeen()
	return learnt, btLevel, resolutions, chain
}

// resolveZeros eliminates the marked level-0 variables by resolving with
// their reasons in descending trail order, returning the number of
// resolutions and the chain extension. Every literal of a level-0 reason is
// itself at level 0, so the elimination is closed.
func (s *Solver) resolveZeros(zeroVars []cnf.Var) (int64, []int) {
	if len(zeroVars) == 0 {
		return 0, nil
	}
	// Collect the full transitive set first.
	all := append([]cnf.Var(nil), zeroVars...)
	for i := 0; i < len(all); i++ {
		v := all[i]
		r := s.reason[v]
		if r == nil {
			continue // defensive; level-0 vars always have unit/clause reasons
		}
		for _, q := range r.lits {
			w := q.Var()
			if w == v || s.seen[w] {
				continue
			}
			s.mark(w)
			all = append(all, w)
		}
	}
	// Chain order: descending trail position guarantees each reason still
	// clashes with the running resolvent.
	sort.Slice(all, func(i, j int) bool { return s.trailPos[all[i]] > s.trailPos[all[j]] })
	var chain []int
	var res int64
	for _, v := range all {
		if r := s.reason[v]; r != nil {
			res++
			if s.opts.RecordChains {
				chain = append(chain, r.id)
			}
		}
	}
	return res, chain
}

// prepareLearnt orders the learned literals for attachment: learnt[0] is the
// asserting literal; learnt[1] (when present) is a literal from the backjump
// level, which two-watched-literal attachment requires. Returns the backjump
// level.
func (s *Solver) prepareLearnt(learnt []cnf.Lit) int {
	if len(learnt) == 1 {
		return 0
	}
	maxI := 1
	for i := 2; i < len(learnt); i++ {
		if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
			maxI = i
		}
	}
	learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
	return int(s.level[learnt[1].Var()])
}

// minimize performs recursive learned-clause minimization: a literal is
// redundant when its reason's literals are all already in the clause or
// recursively redundant. seen[] flags for learnt literals are still set when
// this is called.
func (s *Solver) minimize(learnt []cnf.Lit) []cnf.Lit {
	out := learnt[:1]
	for i := 1; i < len(learnt); i++ {
		if !s.litRedundant(learnt[i]) {
			out = append(out, learnt[i])
		}
	}
	return out
}

func (s *Solver) litRedundant(l cnf.Lit) bool {
	r := s.reason[l.Var()]
	if r == nil {
		return false
	}
	stack := []*clause{r}
	var touched []cnf.Var
	ok := true
outer:
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range c.lits {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			qr := s.reason[v]
			if qr == nil {
				ok = false
				break outer
			}
			s.seen[v] = true
			touched = append(touched, v)
			stack = append(stack, qr)
		}
	}
	if ok {
		// Keep the markings: other redundancy checks may reuse them; they
		// are all cleared by clearSeen via seenClear.
		s.seenClear = append(s.seenClear, touched...)
	} else {
		for _, v := range touched {
			s.seen[v] = false
		}
	}
	return ok
}
