package solver

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

func TestRunAssumingSat(t *testing.T) {
	f := cnf.NewFormula(0).Add(1, 2).Add(-1, 3)
	s, err := NewFromFormula(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := s.RunAssuming([]cnf.Lit{cnf.FromDimacs(1), cnf.FromDimacs(-2)})
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	m := s.Model()
	if !m[0] || m[1] {
		t.Errorf("assumptions not honored: %v", m)
	}
	if !f.Eval(m) {
		t.Error("model does not satisfy formula")
	}
}

func TestRunAssumingUnsatAssumptions(t *testing.T) {
	// F = (x1 -> x2), assume x1 and ~x2.
	f := cnf.NewFormula(0).Add(-1, 2)
	s, err := NewFromFormula(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := s.RunAssuming([]cnf.Lit{cnf.FromDimacs(1), cnf.FromDimacs(-2)})
	if st != UnsatAssumptions {
		t.Fatalf("status %v", st)
	}
	sub := s.ConflictSubset()
	if len(sub) == 0 || len(sub) > 2 {
		t.Fatalf("conflict subset %v", sub)
	}
}

func TestRunAssumingContradictoryAssumptions(t *testing.T) {
	f := cnf.NewFormula(0).Add(1, 2)
	s, err := NewFromFormula(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := s.RunAssuming([]cnf.Lit{cnf.FromDimacs(3), cnf.FromDimacs(-3)})
	if st != UnsatAssumptions {
		t.Fatalf("status %v", st)
	}
	sub := s.ConflictSubset()
	if len(sub) != 2 {
		t.Fatalf("conflict subset %v, want both polarities of x3", sub)
	}
}

func TestRunAssumingRealUnsatWins(t *testing.T) {
	f := cnf.NewFormula(0).
		Add(1, 2).Add(1, -2).Add(-1, 3).Add(-1, -3)
	s, err := NewFromFormula(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := s.RunAssuming([]cnf.Lit{cnf.FromDimacs(1)})
	if st != Unsat {
		t.Fatalf("status %v, want plain Unsat (formula is unsat regardless)", st)
	}
	if s.Trace().Terminates() == 0 {
		t.Error("no proof termination")
	}
}

func TestRunAssumingRepeatedCalls(t *testing.T) {
	f := cnf.NewFormula(0).Add(1, 2).Add(-1, 2).Add(1, -2).Add(-1, -2)
	s, err := NewFromFormula(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Formula is UNSAT; first a query that detects it via assumptions or
	// outright, then repeated calls must stay Unsat and not corrupt state.
	first := s.RunAssuming(nil)
	if first != Unsat {
		t.Fatalf("status %v", first)
	}
	n := s.Trace().Len()
	if st := s.RunAssuming(nil); st != Unsat {
		t.Fatalf("second call: %v", st)
	}
	if s.Trace().Len() != n {
		t.Error("second call grew the proof trace")
	}
}

// TestConflictSubsetSound checks, on random satisfiable formulas with
// random assumption sets, that a reported conflict subset really makes the
// formula unsatisfiable (by brute force).
func TestConflictSubsetSound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	checked := 0
	for round := 0; round < 300; round++ {
		nVars := 4 + rng.Intn(5)
		f := cnf.NewFormula(nVars)
		for i := 0; i < nVars*2; i++ {
			k := 2 + rng.Intn(2)
			c := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			f.AddClause(c)
		}
		var assumps []cnf.Lit
		seen := map[cnf.Var]bool{}
		for j := 0; j < 1+rng.Intn(nVars); j++ {
			v := cnf.Var(rng.Intn(nVars))
			if seen[v] {
				continue
			}
			seen[v] = true
			assumps = append(assumps, cnf.NewLit(v, rng.Intn(2) == 0))
		}
		s, err := NewFromFormula(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s.RunAssuming(assumps) != UnsatAssumptions {
			continue
		}
		checked++
		sub := s.ConflictSubset()
		// Brute force: no assignment satisfies f while agreeing with sub.
		g := f.Clone()
		for _, l := range sub {
			g.AddClause(cnf.Clause{l})
		}
		for m := 0; m < 1<<nVars; m++ {
			assign := make([]bool, nVars)
			for i := range assign {
				assign[i] = m&(1<<i) != 0
			}
			if g.Eval(assign) {
				t.Fatalf("round %d: conflict subset %v is satisfiable with %v\n%v",
					round, sub, assign, f)
			}
		}
		// The subset must be a subset of the assumptions.
		for _, l := range sub {
			found := false
			for _, a := range assumps {
				if a == l {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("round %d: %v not among assumptions %v", round, l, assumps)
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d UnsatAssumptions cases exercised", checked)
	}
}

func TestAssumptionsWithRestarts(t *testing.T) {
	// Force restarts while assumptions are active; they must be
	// re-established and the result stay correct.
	f := cnf.NewFormula(0)
	// A moderately hard satisfiable formula.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 80; i++ {
		c := make(cnf.Clause, 0, 3)
		for j := 0; j < 3; j++ {
			c = append(c, cnf.NewLit(cnf.Var(rng.Intn(25)), rng.Intn(2) == 0))
		}
		f.AddClause(c)
	}
	s, err := NewFromFormula(f, Options{RestartInterval: 5})
	if err != nil {
		t.Fatal(err)
	}
	assumps := []cnf.Lit{cnf.FromDimacs(1), cnf.FromDimacs(-2), cnf.FromDimacs(3)}
	st := s.RunAssuming(assumps)
	if st == Sat {
		m := s.Model()
		if !m[0] || m[1] || !m[2] {
			t.Errorf("assumptions violated in model: %v", m[:3])
		}
		if !f.Eval(m) {
			t.Error("bogus model")
		}
	}
}
