package solver

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/core"
)

func lits(dimacs ...int) cnf.Clause {
	c := make(cnf.Clause, 0, len(dimacs))
	for _, d := range dimacs {
		c = append(c, cnf.FromDimacs(d))
	}
	return c
}

func TestIncrementalAddClause(t *testing.T) {
	f := cnf.NewFormula(0).Add(1, 2)
	s, err := NewFromFormula(f, Options{DisableProof: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Run(); st != Sat {
		t.Fatalf("status %v", st)
	}
	// Add clauses one at a time, tightening to UNSAT.
	for _, c := range []cnf.Clause{lits(1, -2), lits(-1, 3), lits(-1, -3)} {
		if err := s.AddClause(c); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Run(); st != Unsat {
		t.Fatalf("status %v after tightening", st)
	}
	// Further additions are no-ops on an UNSAT solver.
	if err := s.AddClause(lits(5)); err != nil {
		t.Fatal(err)
	}
	if st := s.Run(); st != Unsat {
		t.Fatal("lost unsatisfiability")
	}
}

func TestIncrementalAddClauseWithProof(t *testing.T) {
	// With proof logging, additions are allowed until learning starts; the
	// eventual proof must verify against the final clause set.
	f := cnf.NewFormula(3)
	s, err := NewFromFormula(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := cnf.NewFormula(3)
	for _, c := range []cnf.Clause{lits(1, 2), lits(1, -2), lits(-1, 3), lits(-1, -3)} {
		if err := s.AddClause(c); err != nil {
			t.Fatal(err)
		}
		full.AddClause(c)
	}
	if st := s.Run(); st != Unsat {
		t.Fatalf("status %v", st)
	}
	res, err := core.Verify(full, s.Trace(), core.Options{Mode: core.ModeCheckAll})
	if err != nil || !res.OK {
		t.Fatalf("proof rejected: %v %+v", err, res)
	}
}

func TestIncrementalAddClauseAfterLearningRejected(t *testing.T) {
	inst := php(4)
	s, err := NewFromFormula(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if s.Stats().Learned == 0 {
		t.Skip("no clauses learned")
	}
	if err := s.AddClause(lits(1)); err == nil {
		t.Error("AddClause accepted after learning with proof logging on")
	}
}

func TestIncrementalAddUnitAndConflict(t *testing.T) {
	s := New(2, Options{DisableProof: true})
	if err := s.AddClause(lits(1)); err != nil {
		t.Fatal(err)
	}
	if st := s.Run(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if err := s.AddClause(lits(-1)); err != nil {
		t.Fatal(err)
	}
	if st := s.Run(); st != Unsat {
		t.Fatalf("status %v after contradictory unit", st)
	}
}

func TestIncrementalAddFalsifiedClause(t *testing.T) {
	// After level-0 propagation fixes x1 and x2, adding (¬x1 ¬x2) is
	// falsified outright; the solver must flip to UNSAT with a proper
	// final conflicting pair.
	s := New(2, Options{})
	if err := s.AddClause(lits(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClause(lits(2)); err != nil {
		t.Fatal(err)
	}
	if st := s.Run(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if err := s.AddClause(lits(-1, -2)); err != nil {
		t.Fatal(err)
	}
	if st := s.Run(); st != Unsat {
		t.Fatalf("status %v", st)
	}
	full := cnf.NewFormula(0).Add(1).Add(2).Add(-1, -2)
	res, err := core.Verify(full, s.Trace(), core.Options{Mode: core.ModeCheckAll})
	if err != nil || !res.OK {
		t.Fatalf("proof rejected: %v %+v", err, res)
	}
}

func TestIncrementalAddGrowsVars(t *testing.T) {
	s := New(1, Options{DisableProof: true})
	if err := s.AddClause(lits(30, -31)); err != nil {
		t.Fatal(err)
	}
	if st := s.Run(); st != Sat {
		t.Fatalf("status %v", st)
	}
}

func TestIncrementalUnitUnderAssignment(t *testing.T) {
	// (x1) forces x1; adding (¬x1 x2) is unit under the level-0 assignment
	// and must immediately imply x2.
	s := New(2, Options{DisableProof: true})
	if err := s.AddClause(lits(1)); err != nil {
		t.Fatal(err)
	}
	if st := s.Run(); st != Sat {
		t.Fatal("not sat")
	}
	if err := s.AddClause(lits(-1, 2)); err != nil {
		t.Fatal(err)
	}
	if st := s.RunAssuming([]cnf.Lit{cnf.FromDimacs(-2)}); st != UnsatAssumptions {
		t.Fatalf("status %v, want UnsatAssumptions (x2 is forced)", st)
	}
}
