// Package solver implements a conflict-driven clause-learning (CDCL) SAT
// solver in the style of BerkMin (Goldberg & Novikov, DATE 2002), the solver
// the paper used to produce its proofs. It supports:
//
//   - two-watched-literal Boolean constraint propagation;
//   - conflict analysis under three learning schemes: the 1UIP scheme of
//     Chaff ("local" conflict clauses), the all-decision scheme of relsat
//     ("global" conflict clauses), and BerkMin's hybrid that deduces a
//     global clause once in a while;
//   - BerkMin's decision heuristic (topmost unsatisfied learned clause +
//     variable activities) and a plain VSIDS fallback;
//   - fixed-interval restarts and activity-driven learned-clause deletion;
//   - chronological conflict-clause proof logging — every learned clause is
//     recorded (and optionally streamed to disk) the moment it is deduced,
//     together with the exact number of resolution steps used to derive it,
//     which is the paper's lower bound on resolution-graph proof size;
//   - synthesis of the paper's final conflicting pair at a top-level
//     conflict, so traces always end with two complementary unit clauses;
//   - optional recording of full resolution chains, from which
//     internal/resolution reconstructs and checks a resolution-graph proof.
//
// The solver shares no code with the verifier (internal/bcp, internal/core):
// proofs produced here are checked by an independent implementation, which
// is the paper's entire premise.
package solver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync/atomic"

	"repro/internal/cnf"
	"repro/internal/obs"
	"repro/internal/proof"
)

// Status is the outcome of Solve.
type Status int

const (
	// Unknown means the conflict budget was exhausted.
	Unknown Status = iota
	// Sat means a satisfying assignment was found (see Model).
	Sat
	// Unsat means unsatisfiability was proved (see Trace).
	Unsat
	// UnsatAssumptions means the formula is unsatisfiable under the
	// assumptions passed to RunAssuming (see ConflictSubset).
	UnsatAssumptions
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SATISFIABLE"
	case Unsat:
		return "UNSATISFIABLE"
	case UnsatAssumptions:
		return "UNSAT-UNDER-ASSUMPTIONS"
	default:
		return "UNKNOWN"
	}
}

// LearnScheme selects how conflict clauses are derived.
type LearnScheme int

const (
	// Learn1UIP derives the first-unique-implication-point clause (Chaff's
	// scheme; "local" clauses obtained by few resolutions).
	Learn1UIP LearnScheme = iota
	// LearnDecision resolves until only decision literals remain (relsat's
	// scheme; "global" clauses obtained by many resolutions).
	LearnDecision
	// LearnHybrid uses 1UIP but derives a decision clause every
	// HybridPeriod-th conflict (BerkMin's behaviour described in §6).
	LearnHybrid
)

func (l LearnScheme) String() string {
	switch l {
	case LearnDecision:
		return "decision"
	case LearnHybrid:
		return "hybrid"
	default:
		return "1uip"
	}
}

// Heuristic selects the branching heuristic.
type Heuristic int

const (
	// HeurBerkMin branches on the topmost unsatisfied learned clause's most
	// active variable, falling back to global activities.
	HeurBerkMin Heuristic = iota
	// HeurVSIDS always branches on the globally most active variable.
	HeurVSIDS
)

func (h Heuristic) String() string {
	if h == HeurVSIDS {
		return "vsids"
	}
	return "berkmin"
}

// Options configures a Solver. The zero value is a usable BerkMin-flavoured
// configuration; New fills in defaults for zero fields.
type Options struct {
	Learn     LearnScheme
	Heuristic Heuristic

	// HybridPeriod: with LearnHybrid, every HybridPeriod-th conflict learns
	// a decision clause instead of the 1UIP clause. Default 10.
	HybridPeriod int

	// Restart selects the restart policy (fixed-interval by default, as in
	// BerkMin; Luby and none are available for ablations).
	Restart RestartPolicy

	// RestartInterval is the number of conflicts between restarts for the
	// fixed policy (BerkMin used 550) and the Luby unit. Default 550.
	// Negative disables restarts.
	RestartInterval int

	// VarDecay and ClauseDecay control activity aging. Defaults 0.95, 0.999.
	VarDecay    float64
	ClauseDecay float64

	// MaxLearnedFactor bounds the learned-clause database at
	// MaxLearnedFactor * (number of problem clauses) before reduction.
	// Default 3.0.
	MaxLearnedFactor float64

	// MinimizeLearned enables recursive learned-clause minimization (a
	// post-BerkMin extension kept for ablations). Incompatible with
	// RecordChains, which needs exact resolution chains.
	MinimizeLearned bool

	// EmitProof accumulates the conflict-clause trace (default on via New;
	// set DisableProof to turn off for pure-speed solving).
	DisableProof bool

	// ProofWriter, when non-nil, receives each conflict clause as a DIMACS
	// line the moment it is deduced — the paper's "output to disk".
	ProofWriter io.Writer

	// RecordChains records, for every learned clause, the ordered list of
	// antecedent clause IDs whose sequential resolution yields it. Needed
	// to build a resolution-graph proof. Memory-heavy.
	RecordChains bool

	// OnLearn, when non-nil, observes every deduced conflict clause in
	// chronological order (called with a private copy). OnDelete observes
	// every learned clause the solver drops from its database. Together
	// they reconstruct a deletion-aware (DRUP-style) proof; see
	// internal/drat.Recorder.
	OnLearn  func(cnf.Clause)
	OnDelete func(cnf.Clause)

	// MaxConflicts stops the search with Unknown after this many conflicts.
	// 0 means unlimited.
	MaxConflicts int64

	// Stop, when non-nil, is polled once per conflict; setting it makes
	// the search return Unknown promptly. Used for portfolio racing and
	// external timeouts.
	Stop *atomic.Bool

	// Ctx, when non-nil, is polled once per conflict; cancellation or an
	// expired deadline makes the search return Unknown promptly, exactly
	// like Stop. Nil means no context control.
	Ctx context.Context

	// Seed perturbs initial variable activities very slightly so runs with
	// different seeds explore different proofs. 0 keeps uniform zeros.
	Seed int64

	// Obs, when non-nil, receives live search metrics: solver.* counters
	// (conflicts, decisions, restarts, learned, deleted, reductions), a
	// solver.learned_len histogram, and solver.propagations / trail /
	// learnts gauges refreshed at every conflict. The handles are captured
	// once in New, so a nil Obs costs one nil check per event.
	Obs *obs.Registry

	// Progress, when non-nil, is stepped once per conflict — the natural
	// heartbeat of a CDCL search (total is usually unknown).
	Progress *obs.Progress
}

func (o Options) withDefaults() Options {
	if o.HybridPeriod == 0 {
		o.HybridPeriod = 10
	}
	if o.RestartInterval == 0 {
		o.RestartInterval = 550
	}
	if o.VarDecay == 0 {
		o.VarDecay = 0.95
	}
	if o.ClauseDecay == 0 {
		o.ClauseDecay = 0.999
	}
	if o.MaxLearnedFactor == 0 {
		o.MaxLearnedFactor = 3.0
	}
	return o
}

// Stats aggregates search statistics.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learned      int64
	LearnedLits  int64
	Resolutions  int64 // total resolution steps over all learned clauses
	Deleted      int64
	MaxTrail     int
}

// clause is the solver-internal clause representation. ID is the global
// proof numbering: original clauses keep their index in the input formula;
// learned clause k gets nOriginal+k.
type clause struct {
	lits    []cnf.Lit
	act     float32
	id      int
	learned bool
}

type watcher struct {
	c       *clause
	blocker cnf.Lit
}

// Solver is a CDCL SAT solver. Create with New, load clauses with AddClause
// (or use Solve as a one-shot helper), then call Run.
type Solver struct {
	opts Options

	nVars     int
	nOriginal int // clauses in the input formula (for proof IDs)

	clauses []*clause // problem clauses
	learnts []*clause
	watches [][]watcher
	// arena is the flat literal storage for original clauses: their lits
	// slices alias one contiguous block in Add order, so propagation over
	// the problem clauses walks cache-local memory — the same layout
	// internal/bcp's verifier engine uses (shared layout, deliberately not
	// shared code). Learned clauses are excluded: they come and go with
	// database reductions, which would fragment the block.
	arena []cnf.Lit

	assigns  []int8 // 0 undef, 1 true, -1 false
	level    []int32
	reason   []*clause
	trailPos []int32 // position in trail (stable for level-0 assignments)
	trail    []cnf.Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap
	phase    []int8    // saved polarity: 1 true, -1 false, 0 none
	litAct   []float64 // literal activities for BerkMin polarity
	claInc   float64

	seen      []bool
	seenClear []cnf.Var

	okay         bool      // false once an empty clause was added
	emptyOrigID  int       // id of an original empty clause, -1
	unitsPending []*clause // original unit clauses, enqueued at Run start

	assumptions    []cnf.Lit
	conflictSubset []cnf.Lit
	provedUnsat    bool    // a previous run already finalized an UNSAT proof
	learntCap      float64 // current learned-DB capacity; grows on reduction

	trace    *proof.Trace
	chains   [][]int
	writeErr error

	stats Stats

	// Observability handles, captured once from Options.Obs (nil when
	// disabled — every call on them is then a no-op nil check).
	obsConflicts  *obs.Counter
	obsDecisions  *obs.Counter
	obsRestarts   *obs.Counter
	obsLearned    *obs.Counter
	obsDeleted    *obs.Counter
	obsReductions *obs.Counter
	obsLearnedLen *obs.Histogram
	obsProps      *obs.Gauge
	obsTrail      *obs.Gauge
	obsLearnts    *obs.Gauge
}

// New creates a solver over n variables.
func New(n int, opts Options) *Solver {
	o := opts.withDefaults()
	s := &Solver{
		opts:        o,
		nVars:       n,
		watches:     make([][]watcher, 2*n),
		assigns:     make([]int8, n),
		level:       make([]int32, n),
		reason:      make([]*clause, n),
		trailPos:    make([]int32, n),
		activity:    make([]float64, n),
		phase:       make([]int8, n),
		litAct:      make([]float64, 2*n),
		seen:        make([]bool, n),
		varInc:      1,
		claInc:      1,
		okay:        true,
		emptyOrigID: -1,
	}
	if !o.DisableProof {
		s.trace = proof.New()
	}
	// Nil registry hands out nil handles; every use below is then a no-op.
	s.obsConflicts = o.Obs.Counter("solver.conflicts")
	s.obsDecisions = o.Obs.Counter("solver.decisions")
	s.obsRestarts = o.Obs.Counter("solver.restarts")
	s.obsLearned = o.Obs.Counter("solver.learned")
	s.obsDeleted = o.Obs.Counter("solver.deleted")
	s.obsReductions = o.Obs.Counter("solver.reductions")
	s.obsLearnedLen = o.Obs.Histogram("solver.learned_len")
	s.obsProps = o.Obs.Gauge("solver.propagations")
	s.obsTrail = o.Obs.Gauge("solver.max_trail")
	s.obsLearnts = o.Obs.Gauge("solver.learnts")
	if o.Seed != 0 {
		// xorshift64 perturbation; keeps runs deterministic per seed.
		x := uint64(o.Seed)
		for v := range s.activity {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			s.activity[v] = float64(x%1000) * 1e-9
		}
	}
	s.order = newVarHeap(s)
	for v := 0; v < n; v++ {
		s.order.push(cnf.Var(v))
	}
	return s
}

// NewFromFormula creates a solver and loads every clause of f. Clause i of f
// receives proof ID i.
func NewFromFormula(f *cnf.Formula, opts Options) (*Solver, error) {
	if opts.RecordChains && opts.MinimizeLearned {
		return nil, errors.New("solver: RecordChains is incompatible with MinimizeLearned")
	}
	s := New(f.NumVars, opts)
	nLits := 0
	for _, c := range f.Clauses {
		nLits += len(c)
	}
	s.arena = make([]cnf.Lit, 0, nLits)
	for i, c := range f.Clauses {
		s.addOriginal(c, i)
	}
	s.nOriginal = len(f.Clauses)
	return s, nil
}

// growVars extends the solver's variable range to n variables; used when
// assumptions or added clauses mention variables the initial formula did
// not declare.
func (s *Solver) growVars(n int) {
	if n <= s.nVars {
		return
	}
	for v := s.nVars; v < n; v++ {
		s.watches = append(s.watches, nil, nil)
		s.assigns = append(s.assigns, 0)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.trailPos = append(s.trailPos, 0)
		s.activity = append(s.activity, 0)
		s.phase = append(s.phase, 0)
		s.litAct = append(s.litAct, 0, 0)
		s.seen = append(s.seen, false)
		s.order.index = append(s.order.index, -1)
		s.order.push(cnf.Var(v))
	}
	s.nVars = n
}

// AddClause adds a clause between solving episodes, enabling incremental
// use together with RunAssuming. The variable range grows as needed.
//
// Proof-ID bookkeeping assigns original clauses the prefix of the ID space,
// so clauses can only be added while that prefix is still open: before any
// conflict clause has been learned, or at any time when proof logging is
// disabled. Otherwise an error is returned (this mirrors why incremental
// proof logging historically required the DRAT-style addition/deletion
// format rather than the paper's plain conflict-clause trace).
func (s *Solver) AddClause(lits cnf.Clause) error {
	if !s.opts.DisableProof && s.stats.Learned > 0 {
		return errors.New("solver: cannot add clauses after learning started while proof logging is enabled")
	}
	if s.provedUnsat {
		return nil // already unsat; the clause changes nothing
	}
	if mv := lits.MaxVar(); int(mv) >= s.nVars {
		s.growVars(int(mv) + 1)
	}
	s.cancelUntil(0)
	id := s.nOriginal
	s.nOriginal++

	norm, taut := lits.Normalize()
	if taut {
		return nil
	}
	if len(norm) == 0 {
		s.okay = false
		if s.emptyOrigID < 0 {
			s.emptyOrigID = id
		}
		return nil
	}
	norm = s.arenaAlloc(norm)
	c := &clause{lits: norm, id: id}
	s.clauses = append(s.clauses, c)
	if len(norm) == 1 {
		s.unitsPending = append(s.unitsPending, c)
		return nil
	}
	// Order two non-false (under the persistent level-0 assignment)
	// literals into the watch positions. A clause whose watches are
	// currently false would miss propagation events, because the
	// falsifying enqueues already happened.
	free := 0
	for i := 0; i < len(norm) && free < 2; i++ {
		if s.value(norm[i]) != -1 {
			norm[free], norm[i] = norm[i], norm[free]
			free++
		}
	}
	switch free {
	case 0:
		// Falsified outright at level 0: the formula is now unsatisfiable;
		// derive the final conflicting pair from the level-0 reasons.
		s.provedUnsat = true
		s.finalize(c)
		return nil
	case 1:
		if s.value(norm[0]) == 0 {
			// Unit under the level-0 assignment: assert it now.
			if !s.enqueue(norm[0], c) {
				s.provedUnsat = true
				s.finalize(c)
				return nil
			}
		}
		// A true watch never needs to fire; attaching is still safe.
	}
	s.attach(c)
	return nil
}

// arenaAlloc moves a normalized clause's literals into the flat arena and
// returns the aliasing slice (full-capacity-capped so appends can never
// bleed into a neighbor). If the arena's backing array grows, previously
// handed-out slices keep their old storage — still correct, merely no
// longer contiguous with the new block.
func (s *Solver) arenaAlloc(norm cnf.Clause) cnf.Clause {
	off := len(s.arena)
	s.arena = append(s.arena, norm...)
	return s.arena[off:len(s.arena):len(s.arena)]
}

// value returns the literal's current value: 0 undef, 1 true, -1 false.
func (s *Solver) value(l cnf.Lit) int8 {
	v := s.assigns[l.Var()]
	if l.IsNeg() {
		return -v
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// addOriginal installs an input clause with the given proof ID. Tautologies
// are dropped from the database (they can never propagate or be reasons) but
// keep their ID reserved. Empty clauses mark the instance trivially unsat.
func (s *Solver) addOriginal(raw cnf.Clause, id int) {
	norm, taut := raw.Normalize()
	if taut {
		return
	}
	if len(norm) == 0 {
		s.okay = false
		if s.emptyOrigID < 0 {
			s.emptyOrigID = id
		}
		return
	}
	c := &clause{lits: s.arenaAlloc(norm), id: id}
	if len(norm) == 1 {
		// Defer the enqueue to Run's initial propagation so contradictory
		// units produce a proper final conflicting pair. Store as a
		// pseudo-watched unit by treating it like a normal clause with a
		// self watch: simplest is a dedicated unit list.
		s.unitsPending = append(s.unitsPending, c)
		s.clauses = append(s.clauses, c)
		return
	}
	s.attach(c)
	s.clauses = append(s.clauses, c)
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Neg()] = append(s.watches[c.lits[0].Neg()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], watcher{c, c.lits[0]})
}

func (s *Solver) detach(c *clause) {
	for _, wl := range []cnf.Lit{c.lits[0].Neg(), c.lits[1].Neg()} {
		ws := s.watches[wl]
		for i := range ws {
			if ws[i].c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[wl] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// enqueue assigns l true with the given reason; returns false on conflict
// with the current assignment.
func (s *Solver) enqueue(l cnf.Lit, from *clause) bool {
	switch s.value(l) {
	case 1:
		return true
	case -1:
		return false
	}
	v := l.Var()
	if l.IsNeg() {
		s.assigns[v] = -1
	} else {
		s.assigns[v] = 1
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trailPos[v] = int32(len(s.trail))
	s.trail = append(s.trail, l)
	if len(s.trail) > s.stats.MaxTrail {
		s.stats.MaxTrail = len(s.trail)
	}
	if from != nil {
		s.stats.Propagations++
	}
	return true
}

// cancelUntil backtracks to the given decision level, saving phases.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.Var()
		if l.IsNeg() {
			s.phase[v] = -1
		} else {
			s.phase[v] = 1
		}
		s.assigns[v] = 0
		s.reason[v] = nil
		s.order.pushIfAbsent(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = bound
}

// Model returns the satisfying assignment after a Sat result; index v holds
// the value of variable v.
func (s *Solver) Model() []bool {
	m := make([]bool, s.nVars)
	for v := range m {
		m[v] = s.assigns[v] == 1
	}
	return m
}

// Trace returns the accumulated conflict-clause proof (nil when proof
// logging was disabled). Valid after Run returned Unsat.
func (s *Solver) Trace() *proof.Trace { return s.trace }

// Chains returns the recorded resolution chains, parallel to the trace's
// clauses, when Options.RecordChains was set. Chain k lists the clause IDs
// whose left-to-right sequential resolution yields trace clause k.
func (s *Solver) Chains() [][]int { return s.chains }

// Stats returns a copy of the search statistics.
func (s *Solver) Stats() Stats { return s.stats }

// NumOriginal returns the number of input clauses (for proof ID mapping).
func (s *Solver) NumOriginal() int { return s.nOriginal }

// WriteError reports any error that occurred while streaming the proof to
// Options.ProofWriter.
func (s *Solver) WriteError() error { return s.writeErr }

// emit records a deduced conflict clause: appended to the in-memory trace,
// streamed to the proof writer, and its chain stored when requested. Called
// in chronological deduction order, before the clause is attached.
func (s *Solver) emit(lits []cnf.Lit, resolutions int64, chain []int) {
	s.stats.Learned++
	s.stats.LearnedLits += int64(len(lits))
	s.stats.Resolutions += resolutions
	s.obsLearned.Inc()
	s.obsLearnedLen.Observe(int64(len(lits)))
	if s.trace != nil {
		s.trace.Append(append(cnf.Clause(nil), lits...), resolutions)
	}
	if s.opts.OnLearn != nil {
		s.opts.OnLearn(append(cnf.Clause(nil), lits...))
	}
	if s.opts.RecordChains {
		s.chains = append(s.chains, chain)
	}
	if s.opts.ProofWriter != nil && s.writeErr == nil {
		buf := make([]byte, 0, 8*len(lits)+4)
		for _, l := range lits {
			buf = strconv.AppendInt(buf, int64(l.Dimacs()), 10)
			buf = append(buf, ' ')
		}
		buf = append(buf, '0', '\n')
		if _, err := s.opts.ProofWriter.Write(buf); err != nil {
			s.writeErr = fmt.Errorf("solver: proof stream: %w", err)
		}
	}
}

// nextLearnedID returns the proof ID the next learned clause will get.
func (s *Solver) nextLearnedID() int {
	return s.nOriginal + int(s.stats.Learned)
}
