package solver

import (
	"repro/internal/cnf"
	"repro/internal/proof"
)

// Run executes the CDCL search until a result or the conflict budget is
// exhausted. After Unsat, Trace() holds the chronological conflict-clause
// proof ending in the paper's final conflicting pair (or a single empty
// clause when the input itself contained one). Run is RunAssuming with no
// assumptions; see assume.go for the full search loop.
func (s *Solver) Run() Status {
	return s.RunAssuming(nil)
}

// addLearnt installs a freshly derived conflict clause: attach it (when long
// enough to watch), then assert its first literal. The clause was emitted to
// the proof before this call.
func (s *Solver) addLearnt(lits []cnf.Lit) {
	c := &clause{
		lits:    append([]cnf.Lit(nil), lits...),
		learned: true,
		id:      s.nOriginal + int(s.stats.Learned) - 1, // emit already counted it
		act:     float32(s.claInc),
	}
	s.learnts = append(s.learnts, c)
	if len(c.lits) >= 2 {
		s.attach(c)
	}
	if !s.enqueue(c.lits[0], c) {
		// The asserting literal is already false: this is an immediate
		// top-level conflict (only possible for unit learnt clauses after
		// backjumping to level 0); the main loop's next propagate cannot
		// see it, so flag via a synthetic falsified state. We handle it by
		// leaving the clause falsified; propagate() will not detect unit
		// clauses, so detect here.
		panic("solver: asserting literal rejected — internal invariant broken")
	}
}

// finalize handles a conflict at decision level 0: it derives and emits the
// final conflicting pair of unit clauses by trail-ordered resolution, so the
// proof trace ends exactly as the paper prescribes.
func (s *Solver) finalize(confl *clause) {
	// --- Unit A: resolve the falsified clause backwards until a single
	// literal remains.
	count := 0
	for _, q := range confl.lits {
		v := q.Var()
		if !s.seen[v] {
			s.mark(v)
			count++
		}
	}
	chainA := []int{confl.id}
	if !s.opts.RecordChains {
		chainA = nil
	}
	var resA int64
	var uLit cnf.Lit = cnf.LitUndef
	uIdx := -1
	for idx := len(s.trail) - 1; idx >= 0; idx-- {
		l := s.trail[idx]
		v := l.Var()
		if !s.seen[v] {
			continue
		}
		if count == 1 {
			uLit = l.Neg() // the clause retains the falsified literal of v
			uIdx = idx
			break
		}
		r := s.reason[v]
		if r == nil {
			break // defensive: cannot happen at level 0
		}
		count--
		s.seen[v] = false
		resA++
		if chainA != nil {
			chainA = append(chainA, r.id)
		}
		for _, q := range r.lits {
			w := q.Var()
			if w == v || s.seen[w] {
				continue
			}
			s.mark(w)
			count++
		}
	}
	s.clearSeen()
	if uLit == cnf.LitUndef {
		// Degenerate: resolution eliminated everything (should not happen;
		// emit an explicit empty clause so the trace still terminates).
		s.emit(nil, resA, chainA)
		return
	}
	s.emit([]cnf.Lit{uLit}, resA, chainA)

	// --- Unit B: uLit's variable was assigned the opposite value by some
	// reason clause; resolving that reason's other literals away yields the
	// complementary unit.
	v := uLit.Var()
	r0 := s.reason[v]
	tLit := uLit.Neg() // the literal that is true under the level-0 trail
	if r0 == nil {
		// Defensive: without a reason we cannot derive the complement;
		// emit it anyway (it will fail verification, exposing the bug).
		s.emit([]cnf.Lit{tLit}, 0, nil)
		return
	}
	chainB := []int{r0.id}
	if !s.opts.RecordChains {
		chainB = nil
	}
	var resB int64
	count = 0
	for _, q := range r0.lits {
		w := q.Var()
		if w == v || s.seen[w] {
			continue
		}
		s.mark(w)
		count++
	}
	for idx := uIdx - 1; idx >= 0 && count > 0; idx-- {
		l := s.trail[idx]
		w := l.Var()
		if !s.seen[w] {
			continue
		}
		r := s.reason[w]
		if r == nil {
			break // defensive
		}
		count--
		s.seen[w] = false
		resB++
		if chainB != nil {
			chainB = append(chainB, r.id)
		}
		for _, q := range r.lits {
			x := q.Var()
			if x == w || s.seen[x] {
				continue
			}
			s.mark(x)
			count++
		}
	}
	s.clearSeen()
	s.emit([]cnf.Lit{tLit}, resB, chainB)
}

// Solve is a one-shot helper: build a solver for f, run it, and return the
// status together with the proof trace (for Unsat), the model (for Sat) and
// the statistics.
func Solve(f *cnf.Formula, opts Options) (Status, *proof.Trace, []bool, Stats, error) {
	s, err := NewFromFormula(f, opts)
	if err != nil {
		return Unknown, nil, nil, Stats{}, err
	}
	st := s.Run()
	var model []bool
	if st == Sat {
		model = s.Model()
	}
	return st, s.Trace(), model, s.Stats(), s.WriteError()
}
