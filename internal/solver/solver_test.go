package solver

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/proof"
)

// php builds the pigeonhole formula PHP(n): n+1 pigeons in n holes, UNSAT.
// Variable p*n + h means "pigeon p sits in hole h".
func php(n int) *cnf.Formula {
	f := cnf.NewFormula((n + 1) * n)
	v := func(p, h int) cnf.Var { return cnf.Var(p*n + h) }
	for p := 0; p <= n; p++ {
		c := make(cnf.Clause, 0, n)
		for h := 0; h < n; h++ {
			c = append(c, cnf.PosLit(v(p, h)))
		}
		f.AddClause(c)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				f.AddClause(cnf.Clause{cnf.NegLit(v(p1, h)), cnf.NegLit(v(p2, h))})
			}
		}
	}
	return f
}

// randomCNF builds a random k-SAT instance.
func randomCNF(rng *rand.Rand, nVars, nClauses, k int) *cnf.Formula {
	f := cnf.NewFormula(nVars)
	for i := 0; i < nClauses; i++ {
		c := make(cnf.Clause, 0, k)
		for j := 0; j < k; j++ {
			c = append(c, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
		}
		f.AddClause(c)
	}
	return f
}

// bruteForceSat decides satisfiability exhaustively (for tiny formulas).
func bruteForceSat(f *cnf.Formula) bool {
	n := f.NumVars
	for m := 0; m < 1<<n; m++ {
		assign := make([]bool, n)
		for i := range assign {
			assign[i] = m&(1<<i) != 0
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

func allSchemes() []Options {
	return []Options{
		{Learn: Learn1UIP, Heuristic: HeurVSIDS},
		{Learn: Learn1UIP, Heuristic: HeurBerkMin},
		{Learn: LearnDecision, Heuristic: HeurBerkMin},
		{Learn: LearnHybrid, Heuristic: HeurBerkMin},
		{Learn: LearnHybrid, Heuristic: HeurBerkMin, MinimizeLearned: true},
	}
}

func TestSolveTrivialSat(t *testing.T) {
	f := cnf.NewFormula(0).Add(1, 2).Add(-1, 2).Add(1, -2)
	st, _, model, _, err := Solve(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st != Sat {
		t.Fatalf("status = %v", st)
	}
	if !f.Eval(model) {
		t.Fatalf("model %v does not satisfy the formula", model)
	}
}

func TestSolveTrivialUnsat(t *testing.T) {
	f := cnf.NewFormula(0).
		Add(1, 2).Add(1, -2).Add(-1, 3).Add(-1, -3)
	for _, opts := range allSchemes() {
		st, tr, _, _, err := Solve(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if st != Unsat {
			t.Fatalf("%v/%v: status = %v", opts.Learn, opts.Heuristic, st)
		}
		if tr.Terminates() != proof.TermFinalPair {
			t.Fatalf("%v: trace termination = %v", opts.Learn, tr.Terminates())
		}
		res, err := core.Verify(f, tr, core.Options{Mode: core.ModeCheckAll})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("%v/%v: proof rejected at clause %d: %v",
				opts.Learn, opts.Heuristic, res.FailedIndex, res.FailedClause)
		}
	}
}

func TestSolveEmptyClause(t *testing.T) {
	f := cnf.NewFormula(2)
	f.Add(1, 2)
	f.AddClause(cnf.Clause{})
	st, tr, _, _, err := Solve(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Fatalf("status = %v", st)
	}
	if tr.Terminates() != proof.TermEmptyClause {
		t.Fatalf("termination = %v", tr.Terminates())
	}
	res, err := core.Verify(f, tr, core.Options{})
	if err != nil || !res.OK {
		t.Fatalf("verification: %v, %+v", err, res)
	}
}

func TestSolveContradictoryUnits(t *testing.T) {
	f := cnf.NewFormula(0).Add(1).Add(-1)
	st, tr, _, _, err := Solve(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Fatalf("status = %v", st)
	}
	if tr.Terminates() != proof.TermFinalPair {
		t.Fatalf("termination = %v (trace %v)", tr.Terminates(), tr.Clauses)
	}
	res, err := core.Verify(f, tr, core.Options{Mode: core.ModeCheckAll})
	if err != nil || !res.OK {
		t.Fatalf("verification: %v, %+v", err, res)
	}
}

func TestSolveUnitChainUnsat(t *testing.T) {
	f := cnf.NewFormula(0).Add(1).Add(-1, 2).Add(-2, 3).Add(-3)
	st, tr, _, _, err := Solve(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Fatalf("status = %v", st)
	}
	res, err := core.Verify(f, tr, core.Options{Mode: core.ModeCheckAll})
	if err != nil || !res.OK {
		t.Fatalf("verification: %v, %+v", err, res)
	}
}

func TestSolvePigeonhole(t *testing.T) {
	for n := 2; n <= 5; n++ {
		f := php(n)
		for _, opts := range allSchemes() {
			st, tr, _, stats, err := Solve(f, opts)
			if err != nil {
				t.Fatal(err)
			}
			if st != Unsat {
				t.Fatalf("php(%d) %v/%v: status = %v", n, opts.Learn, opts.Heuristic, st)
			}
			res, err := core.Verify(f, tr, core.Options{Mode: core.ModeCheckMarked})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK {
				t.Fatalf("php(%d) %v/%v: proof rejected at %d (conflicts=%d)",
					n, opts.Learn, opts.Heuristic, res.FailedIndex, stats.Conflicts)
			}
			// Every original clause of PHP is in its (only) unsat core...
			// not exactly true for the core found, but the core must be
			// nonempty and within range.
			if len(res.Core) == 0 || len(res.Core) > f.NumClauses() {
				t.Errorf("php(%d): core size %d out of range", n, len(res.Core))
			}
		}
	}
}

func TestSolveRandomBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sat, unsat := 0, 0
	for round := 0; round < 400; round++ {
		nVars := 4 + rng.Intn(8)
		nClauses := nVars * (3 + rng.Intn(3))
		f := randomCNF(rng, nVars, nClauses, 3)
		want := bruteForceSat(f)
		opts := allSchemes()[round%len(allSchemes())]
		st, tr, model, _, err := Solve(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		switch st {
		case Sat:
			if !want {
				t.Fatalf("round %d: solver says SAT, brute force says UNSAT\n%v", round, f)
			}
			if !f.Eval(model) {
				t.Fatalf("round %d: bogus model", round)
			}
			sat++
		case Unsat:
			if want {
				t.Fatalf("round %d: solver says UNSAT, brute force says SAT\n%v", round, f)
			}
			res, err := core.Verify(f, tr, core.Options{Mode: core.ModeCheckAll})
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if !res.OK {
				t.Fatalf("round %d: proof rejected at %d\n%v", round, res.FailedIndex, f)
			}
			unsat++
		default:
			t.Fatalf("round %d: unexpected status", round)
		}
	}
	if sat == 0 || unsat == 0 {
		t.Fatalf("weak test coverage: sat=%d unsat=%d", sat, unsat)
	}
}

func TestSolveRestartsAndReduction(t *testing.T) {
	// A formula hard enough to trigger restarts and DB reduction with tiny
	// thresholds.
	f := php(5)
	opts := Options{RestartInterval: 20, MaxLearnedFactor: 0.05}
	st, tr, _, stats, err := Solve(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Fatalf("status = %v", st)
	}
	if stats.Restarts == 0 {
		t.Error("no restarts with interval 20")
	}
	if stats.Deleted == 0 {
		t.Error("no clause deletion with factor 0.05")
	}
	res, err := core.Verify(f, tr, core.Options{Mode: core.ModeCheckMarked})
	if err != nil || !res.OK {
		t.Fatalf("proof after restarts+deletion rejected: %v %+v", err, res)
	}
}

func TestSolveMaxConflicts(t *testing.T) {
	f := php(7)
	st, _, _, stats, err := Solve(f, Options{MaxConflicts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unknown {
		t.Fatalf("status = %v, want Unknown", st)
	}
	if stats.Conflicts < 5 {
		t.Errorf("Conflicts = %d", stats.Conflicts)
	}
}

func TestProofStreaming(t *testing.T) {
	f := php(3)
	var buf bytes.Buffer
	st, tr, _, _, err := Solve(f, Options{ProofWriter: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Fatalf("status = %v", st)
	}
	streamed, err := proof.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Len() != tr.Len() {
		t.Fatalf("streamed %d clauses, trace has %d", streamed.Len(), tr.Len())
	}
	for i := range tr.Clauses {
		if !streamed.Clauses[i].Equal(tr.Clauses[i]) {
			t.Fatalf("clause %d differs: %v vs %v", i, streamed.Clauses[i], tr.Clauses[i])
		}
	}
	// The streamed proof verifies too.
	res, err := core.Verify(f, streamed, core.Options{})
	if err != nil || !res.OK {
		t.Fatalf("streamed proof rejected: %v %+v", err, res)
	}
}

func TestResolutionCountsPositive(t *testing.T) {
	f := php(4)
	_, tr, _, stats, err := Solve(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resolutions == 0 {
		t.Error("no resolutions counted")
	}
	if tr.TotalResolutions() != stats.Resolutions {
		t.Errorf("trace resolutions %d != stats %d", tr.TotalResolutions(), stats.Resolutions)
	}
}

func TestDecisionSchemeIsMoreGlobal(t *testing.T) {
	// The paper's §5: decision-scheme ("global") clauses need more
	// resolutions per clause than 1UIP ("local") clauses on average.
	f := php(5)
	_, tr1, _, _, err := Solve(f, Options{Learn: Learn1UIP})
	if err != nil {
		t.Fatal(err)
	}
	_, trD, _, _, err := Solve(f, Options{Learn: LearnDecision})
	if err != nil {
		t.Fatal(err)
	}
	avg1 := float64(tr1.TotalResolutions()) / float64(tr1.Len())
	avgD := float64(trD.TotalResolutions()) / float64(trD.Len())
	if avgD <= avg1 {
		t.Errorf("decision scheme avg resolutions %.1f <= 1UIP %.1f", avgD, avg1)
	}
}

func TestSatisfiableWithAllHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := randomCNF(rng, 30, 60, 3) // under-constrained: almost surely SAT
	for _, opts := range allSchemes() {
		st, _, model, _, err := Solve(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if st == Sat && !f.Eval(model) {
			t.Fatalf("%v/%v: bogus model", opts.Learn, opts.Heuristic)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	f := php(4)
	_, _, _, stats, err := Solve(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Conflicts == 0 || stats.Decisions == 0 || stats.Propagations == 0 ||
		stats.Learned == 0 || stats.LearnedLits == 0 || stats.MaxTrail == 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
}

func TestRecordChainsRejectsMinimize(t *testing.T) {
	f := php(2)
	if _, err := NewFromFormula(f, Options{RecordChains: true, MinimizeLearned: true}); err == nil {
		t.Error("RecordChains+MinimizeLearned accepted")
	}
}

func TestTautologyInInputIgnored(t *testing.T) {
	f := cnf.NewFormula(0).
		Add(1, -1). // tautology
		Add(1, 2).Add(1, -2).Add(-1, 3).Add(-1, -3)
	st, tr, _, _, err := Solve(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Fatalf("status = %v", st)
	}
	res, err := core.Verify(f, tr, core.Options{})
	if err != nil || !res.OK {
		t.Fatalf("verification: %v %+v", err, res)
	}
	// The tautology cannot be in the core.
	for _, i := range res.Core {
		if i == 0 {
			t.Error("tautology reported in unsat core")
		}
	}
}

func TestSeedChangesSearch(t *testing.T) {
	f := php(5)
	_, tr1, _, _, err := Solve(f, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, tr2, _, _, err := Solve(f, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Different seeds should (almost certainly) yield different proofs;
	// equal lengths with identical clauses would indicate the seed is dead.
	same := tr1.Len() == tr2.Len()
	if same {
		for i := range tr1.Clauses {
			if !tr1.Clauses[i].Equal(tr2.Clauses[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("warning: seeds produced identical proofs (possible but unlikely)")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	f := php(4)
	_, tr1, _, _, _ := Solve(f, Options{Seed: 7})
	_, tr2, _, _, _ := Solve(f, Options{Seed: 7})
	if tr1.Len() != tr2.Len() {
		t.Fatalf("non-deterministic: %d vs %d clauses", tr1.Len(), tr2.Len())
	}
	for i := range tr1.Clauses {
		if !tr1.Clauses[i].Equal(tr2.Clauses[i]) {
			t.Fatalf("non-deterministic at clause %d", i)
		}
	}
}
