package solver

// RestartPolicy selects the restart strategy.
type RestartPolicy int

const (
	// RestartFixed restarts every RestartInterval conflicts (BerkMin's
	// policy; the era default and the reproduction default).
	RestartFixed RestartPolicy = iota
	// RestartLuby follows the Luby sequence scaled by RestartInterval — a
	// later development kept for the restart ablation.
	RestartLuby
	// RestartNone disables restarts.
	RestartNone
)

func (p RestartPolicy) String() string {
	switch p {
	case RestartLuby:
		return "luby"
	case RestartNone:
		return "none"
	default:
		return "fixed"
	}
}

// luby returns the i-th element (1-based) of the Luby sequence
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
func luby(i int64) int64 {
	// Find the finite subsequence containing i and the position within it.
	var k uint
	for k = 1; (1<<k)-1 < i; k++ {
	}
	for (1<<k)-1 != i {
		i -= (1 << (k - 1)) - 1
		k = 1
		for (1<<k)-1 < i {
			k++
		}
	}
	return 1 << (k - 1)
}

// restartBudget returns the conflict budget for the n-th restart interval
// (0-based) under the configured policy, or a negative value when restarts
// are disabled.
func (s *Solver) restartBudget(n int64) int64 {
	base := int64(s.opts.RestartInterval)
	switch s.opts.Restart {
	case RestartNone:
		return -1
	case RestartLuby:
		return luby(n+1) * base
	default:
		if base <= 0 {
			return -1
		}
		return base
	}
}
