package solver

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cnf"
	"repro/internal/proof"
)

// PortfolioResult is the winning run of a portfolio race.
type PortfolioResult struct {
	Status Status
	// Winner indexes the configuration that finished first.
	Winner int
	Trace  *proof.Trace
	Model  []bool
	Stats  Stats
}

// Portfolio races one solver per configuration on the same formula and
// returns the first definitive answer (Sat or Unsat); the losers are
// stopped cooperatively. Every configuration gets the shared Stop flag and
// its index mixed into the seed, so a bare []Options{base, base, base}
// still diversifies.
//
// The winning trace verifies against f exactly like a single-solver trace —
// proofs do not mix across portfolio members.
func Portfolio(f *cnf.Formula, configs []Options) (*PortfolioResult, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("solver: empty portfolio")
	}
	var stop atomic.Bool
	type answer struct {
		idx    int
		status Status
		trace  *proof.Trace
		model  []bool
		stats  Stats
		err    error
	}
	answers := make(chan answer, len(configs))
	var wg sync.WaitGroup
	for i, cfg := range configs {
		cfg.Stop = &stop
		if cfg.Seed == 0 {
			cfg.Seed = int64(i + 1)
		} else {
			cfg.Seed += int64(i)
		}
		wg.Add(1)
		go func(i int, cfg Options) {
			defer wg.Done()
			s, err := NewFromFormula(f, cfg)
			if err != nil {
				answers <- answer{idx: i, err: err}
				return
			}
			st := s.Run()
			a := answer{idx: i, status: st, stats: s.Stats()}
			switch st {
			case Sat:
				a.model = s.Model()
			case Unsat:
				a.trace = s.Trace()
			}
			answers <- answer{idx: a.idx, status: a.status, trace: a.trace, model: a.model, stats: a.stats}
		}(i, cfg)
	}
	go func() {
		wg.Wait()
		close(answers)
	}()

	var firstErr error
	unknowns := 0
	for a := range answers {
		switch {
		case a.err != nil:
			if firstErr == nil {
				firstErr = a.err
			}
			stop.Store(true)
			unknowns++
		case a.status == Sat || a.status == Unsat:
			stop.Store(true)
			res := &PortfolioResult{
				Status: a.status,
				Winner: a.idx,
				Trace:  a.trace,
				Model:  a.model,
				Stats:  a.stats,
			}
			// Drain the rest in the background goroutine via close; the
			// channel is buffered for all members so no sender blocks.
			return res, nil
		default:
			unknowns++
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return &PortfolioResult{Status: Unknown}, nil
}
