package journal

import (
	"encoding/binary"
	"hash/fnv"

	"repro/internal/cnf"
	"repro/internal/proof"
)

// FingerprintFormula hashes the logical content of a CNF formula — variable
// count, clause count, and every literal in order — with FNV-64a. Two
// formulas with equal fingerprints are, for checkpoint-resume purposes, the
// same input; any edit to the file between runs changes the fingerprint and
// invalidates the journal.
func FingerprintFormula(f *cnf.Formula) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(int64(f.NumVars))
	put(int64(len(f.Clauses)))
	for _, c := range f.Clauses {
		put(int64(len(c)))
		for _, l := range c {
			put(int64(l.Dimacs()))
		}
	}
	return h.Sum64()
}

// FingerprintTrace hashes a conflict-clause proof trace the same way.
// Resolution annotations are excluded: they do not affect verification, so
// a trace differing only in its "c res" comments still resumes.
func FingerprintTrace(t *proof.Trace) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(int64(len(t.Clauses)))
	for _, c := range t.Clauses {
		put(int64(len(c)))
		for _, l := range c {
			put(int64(l.Dimacs()))
		}
	}
	return h.Sum64()
}
