// Package journal is the crash-safety backbone of the verification
// pipeline: an append-only, fsync-disciplined checkpoint journal that makes
// long verification runs resumable after a SIGKILL, OOM-kill, or node
// preemption.
//
// The paper's Proof_verification1/2 are strictly ordered scans over F*; on
// industrial traces they run for minutes to hours, and the scan has natural
// clause-granular boundaries at which all verifier state is a small record:
// the verified suffix boundary, the marked-clause/core bitmaps, and the
// budget counters. The journal persists one such record every configured
// interval. A resume validates the file — magic, version, a CRC per record,
// and fingerprints of the CNF formula and the proof — and restarts from the
// last durable record; any mismatch (torn header, corrupt record, stale
// fingerprint, version skew) degrades to a full re-verification rather than
// ever trusting a questionable journal. A torn *tail* is expected — that is
// what a crash mid-append leaves — and is handled by resuming from the last
// record that checks out.
//
// The journal stores record payloads opaquely; the verifiers
// (internal/core, internal/drat) define their own payload encodings, so the
// journal has no dependency on either.
//
// File layout (all integers little-endian):
//
//	header:  "DPVJ" | version u32 | kind u8 | mode u8 | engine u8 | pad u8 |
//	         workers u32 | interval u32 | formulaFP u64 | proofFP u64 |
//	         crc32 u32 (over the bytes after version, i.e. [8:36))
//	record:  marker u8 ('C' checkpoint, 'F' final) | len u32 | payload |
//	         crc32 u32 (over marker+len+payload)
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// Magic identifies a checkpoint journal.
const Magic = "DPVJ"

// Version is the current journal format version. Readers reject any other
// version (resume then falls back to a full run).
const Version = 1

// HeaderSize is the byte length of the journal header.
const HeaderSize = 40

// Record markers.
const (
	// MarkerCheckpoint frames a resumable checkpoint payload.
	MarkerCheckpoint = 'C'
	// MarkerFinal frames a terminal record: the run ended (interrupted or
	// complete) and flushed its state one last time. Final records are
	// validated but never resumed from — resume uses the last checkpoint.
	MarkerFinal = 'F'
)

// Kind states which verifier wrote the journal; resuming with a different
// verifier is a mismatch.
type Kind uint8

const (
	// KindVerifySeq is the sequential core.Verify (pv1 and pv2).
	KindVerifySeq Kind = 1
	// KindVerifyParallel is core.VerifyParallelOpts.
	KindVerifyParallel Kind = 2
	// KindDRATBackward is drat.VerifyBackward.
	KindDRATBackward Kind = 3
	// KindVerifyDAG is core.VerifyParallelOpts with the DAG schedule. Its
	// header records zero workers: DAG parallelism does not shape the
	// durable state, so any -par may resume the journal.
	KindVerifyDAG Kind = 4
)

func (k Kind) String() string {
	switch k {
	case KindVerifySeq:
		return "verify"
	case KindVerifyParallel:
		return "verify-parallel"
	case KindDRATBackward:
		return "drat-backward"
	case KindVerifyDAG:
		return "verify-dag"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Meta pins a journal to one exact verification setup. Every field
// participates in resume validation: the checkpoint grid (and hence the
// bit-for-bit determinism argument for resumed runs) depends on the mode,
// engine, worker count and interval, and the fingerprints tie the journal
// to one formula/proof pair.
type Meta struct {
	Kind     Kind
	Mode     uint8
	Engine   uint8
	Workers  uint32
	Interval uint32
	// FormulaFP and ProofFP fingerprint the CNF formula and the proof
	// trace (FingerprintFormula/FingerprintTrace, or the DRAT proof's own
	// fingerprint for KindDRATBackward).
	FormulaFP uint64
	ProofFP   uint64
}

// Typed validation failures. All of them mean "do not resume; run from
// scratch" — they are ordinary degraded-mode outcomes, not verifier errors.
var (
	// ErrNoJournal: the journal file does not exist.
	ErrNoJournal = errors.New("journal: no journal file")
	// ErrCorrupt: the header or a fully-framed record fails its CRC or
	// structural checks. (A torn tail is NOT corruption; Open tolerates it.)
	ErrCorrupt = errors.New("journal: corrupt journal")
	// ErrVersionSkew: the journal was written by a different format version.
	ErrVersionSkew = errors.New("journal: version skew")
	// ErrMismatch: the journal belongs to a different formula/proof pair or
	// a different verification configuration.
	ErrMismatch = errors.New("journal: metadata mismatch")
	// ErrEmpty: the journal is well-formed but holds no durable checkpoint.
	ErrEmpty = errors.New("journal: no durable checkpoint record")
)

// maxPayload bounds a single record; anything larger is treated as corrupt.
const maxPayload = 1 << 30

// EncodeHeader renders a journal header for meta, including its CRC.
// Exported for the fault-injection harness, which needs to forge headers
// with valid CRCs but wrong content.
func EncodeHeader(meta Meta) []byte {
	h := make([]byte, HeaderSize)
	copy(h, Magic)
	binary.LittleEndian.PutUint32(h[4:], Version)
	h[8] = byte(meta.Kind)
	h[9] = meta.Mode
	h[10] = meta.Engine
	h[11] = 0
	binary.LittleEndian.PutUint32(h[12:], meta.Workers)
	binary.LittleEndian.PutUint32(h[16:], meta.Interval)
	binary.LittleEndian.PutUint64(h[20:], meta.FormulaFP)
	binary.LittleEndian.PutUint64(h[28:], meta.ProofFP)
	binary.LittleEndian.PutUint32(h[36:], crc32.ChecksumIEEE(h[8:36]))
	return h
}

// DecodeHeader parses and validates a journal header.
func DecodeHeader(h []byte) (Meta, error) {
	var m Meta
	if len(h) < HeaderSize {
		return m, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(h))
	}
	if string(h[:4]) != Magic {
		return m, fmt.Errorf("%w: bad magic %q", ErrCorrupt, h[:4])
	}
	if v := binary.LittleEndian.Uint32(h[4:]); v != Version {
		return m, fmt.Errorf("%w: journal version %d, reader version %d", ErrVersionSkew, v, Version)
	}
	if crc := binary.LittleEndian.Uint32(h[36:]); crc != crc32.ChecksumIEEE(h[8:36]) {
		return m, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	m.Kind = Kind(h[8])
	m.Mode = h[9]
	m.Engine = h[10]
	m.Workers = binary.LittleEndian.Uint32(h[12:])
	m.Interval = binary.LittleEndian.Uint32(h[16:])
	m.FormulaFP = binary.LittleEndian.Uint64(h[20:])
	m.ProofFP = binary.LittleEndian.Uint64(h[28:])
	return m, nil
}

func checkMeta(got, want Meta) error {
	switch {
	case got.Kind != want.Kind:
		return fmt.Errorf("%w: journal written by %v, resuming %v", ErrMismatch, got.Kind, want.Kind)
	case got.Mode != want.Mode:
		return fmt.Errorf("%w: verification mode changed (%d -> %d)", ErrMismatch, got.Mode, want.Mode)
	case got.Engine != want.Engine:
		return fmt.Errorf("%w: BCP engine changed (%d -> %d)", ErrMismatch, got.Engine, want.Engine)
	case got.Workers != want.Workers:
		return fmt.Errorf("%w: worker count changed (%d -> %d)", ErrMismatch, got.Workers, want.Workers)
	case got.Interval != want.Interval:
		return fmt.Errorf("%w: checkpoint interval changed (%d -> %d)", ErrMismatch, got.Interval, want.Interval)
	case got.FormulaFP != want.FormulaFP:
		return fmt.Errorf("%w: formula fingerprint %016x, expected %016x (stale journal?)", ErrMismatch, got.FormulaFP, want.FormulaFP)
	case got.ProofFP != want.ProofFP:
		return fmt.Errorf("%w: proof fingerprint %016x, expected %016x (stale journal?)", ErrMismatch, got.ProofFP, want.ProofFP)
	}
	return nil
}

// Writer appends checkpoint records to a journal file, fsyncing each one so
// an acknowledged record survives any subsequent crash.
type Writer struct {
	f       *os.File
	path    string
	records int
	// Obs, when non-nil, counts appended records and bytes under
	// journal.appends / journal.bytes and timestamps nothing (appends are
	// hot-adjacent; the per-record fsync dominates).
	obs *obs.Registry
}

// Create starts a fresh journal at path for the given meta, truncating any
// previous journal there (the caller reads the old journal with Open
// *before* creating the new one). The header is durable when Create
// returns.
func Create(path string, meta Meta, reg *obs.Registry) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(EncodeHeader(meta)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	syncDir(path)
	return &Writer{f: f, path: path, obs: reg}, nil
}

// Append frames payload as a checkpoint record and fsyncs it.
func (w *Writer) Append(payload []byte) error {
	return w.append(MarkerCheckpoint, payload)
}

// AppendFinal frames payload as a final record and fsyncs it. Written when
// a run stops (e.g. the SIGINT path) so the journal visibly ends with a
// clean flush; resume still uses the last checkpoint record.
func (w *Writer) AppendFinal(payload []byte) error {
	return w.append(MarkerFinal, payload)
}

func (w *Writer) append(marker byte, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("journal: payload of %d bytes exceeds the %d limit", len(payload), maxPayload)
	}
	frame := make([]byte, 0, 1+4+len(payload)+4)
	frame = append(frame, marker)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(frame))
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	w.records++
	w.obs.Counter("journal.appends").Inc()
	w.obs.Counter("journal.bytes").Add(int64(len(frame)))
	// Flight-recorder instant per durable record (arg = frame bytes): the
	// trace timeline then shows exactly when the run persisted progress.
	w.obs.TraceTrack().Instant("journal.append", int64(len(frame)))
	return nil
}

// Records returns how many records this writer has appended.
func (w *Writer) Records() int { return w.records }

// Path returns the journal file path.
func (w *Writer) Path() string { return w.path }

// Close closes the journal file (records already appended stay durable).
func (w *Writer) Close() error { return w.f.Close() }

// Remove closes and deletes the journal — called once a run reaches a
// verdict, after which the journal is stale by definition.
func (w *Writer) Remove() error {
	w.f.Close()
	if err := os.Remove(w.path); err != nil && !os.IsNotExist(err) {
		return err
	}
	syncDir(w.path)
	return nil
}

// Open reads the journal at path, validates it against want, and returns
// the payload of the last durable checkpoint record. A torn tail — an
// incomplete final frame, exactly what a crash mid-append leaves — is
// tolerated by returning the last record that validates. Everything else
// that does not check out (bad magic, version skew, meta mismatch, a CRC
// failure on a fully-framed record) returns a typed error; callers treat
// every error as "fall back to a full run".
func Open(path string, want Meta, reg *obs.Registry) ([]byte, error) {
	span := reg.StartSpan("journal-open")
	defer span.End()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNoJournal, path)
		}
		return nil, err
	}
	got, err := DecodeHeader(data)
	if err != nil {
		return nil, err
	}
	if err := checkMeta(got, want); err != nil {
		return nil, err
	}

	var last []byte
	rest := data[HeaderSize:]
	for len(rest) > 0 {
		if len(rest) < 5 {
			reg.Counter("journal.torn_tail").Inc()
			break // torn tail: incomplete frame head
		}
		marker := rest[0]
		n := binary.LittleEndian.Uint32(rest[1:5])
		if marker != MarkerCheckpoint && marker != MarkerFinal {
			return nil, fmt.Errorf("%w: unknown record marker 0x%02x", ErrCorrupt, marker)
		}
		if n > maxPayload {
			return nil, fmt.Errorf("%w: record claims %d-byte payload", ErrCorrupt, n)
		}
		total := 5 + int(n) + 4
		if len(rest) < total {
			reg.Counter("journal.torn_tail").Inc()
			break // torn tail: payload or CRC cut off mid-append
		}
		frame := rest[:total]
		if crc := binary.LittleEndian.Uint32(frame[total-4:]); crc != crc32.ChecksumIEEE(frame[:total-4]) {
			// A complete frame with a bad CRC is corruption, not a torn
			// tail — do not trust anything in this journal.
			return nil, fmt.Errorf("%w: record checksum mismatch", ErrCorrupt)
		}
		if marker == MarkerCheckpoint {
			last = frame[5 : 5+int(n)]
		}
		rest = rest[total:]
	}
	if last == nil {
		return nil, fmt.Errorf("%w: %s", ErrEmpty, path)
	}
	reg.Counter("journal.opens").Inc()
	reg.TraceTrack().Instant("journal.resume", int64(len(last)))
	out := make([]byte, len(last))
	copy(out, last)
	return out, nil
}

func syncDir(path string) {
	dir := filepath.Dir(path)
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
