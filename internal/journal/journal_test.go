package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cnf"
	"repro/internal/obs"
	"repro/internal/proof"
)

func testMeta() Meta {
	return Meta{Kind: KindVerifySeq, Mode: 1, Engine: 0, Workers: 0, Interval: 64,
		FormulaFP: 0xdeadbeefcafe, ProofFP: 0x12345678}
}

func writeJournal(t *testing.T, path string, meta Meta, payloads ...[]byte) {
	t.Helper()
	w, err := Create(path, meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripReturnsLastCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.journal")
	writeJournal(t, path, testMeta(), []byte("first"), []byte("second"), []byte("third"))
	got, err := Open(path, testMeta(), obs.New())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "third" {
		t.Fatalf("payload = %q, want third", got)
	}
}

func TestFinalRecordIsNotResumedFrom(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.journal")
	w, err := Create(path, testMeta(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendFinal([]byte("final-marker")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := Open(path, testMeta(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "checkpoint" {
		t.Fatalf("payload = %q, want checkpoint", got)
	}
}

func TestTornTailFallsBackToLastDurableRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.journal")
	writeJournal(t, path, testMeta(), []byte("one"), []byte("two"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the tail one at a time down to the end of record one;
	// every truncation length must resume from a durable record, never error.
	firstEnd := HeaderSize + 5 + 3 + 4
	for cut := len(data) - 1; cut >= firstEnd; cut-- {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Open(path, testMeta(), nil)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		want := "one"
		if cut == len(data) {
			want = "two"
		}
		if string(got) != want {
			t.Fatalf("cut=%d: payload %q, want %q", cut, got, want)
		}
	}
	// Truncating into (or past) the only record leaves no durable state.
	if err := os.WriteFile(path, data[:firstEnd-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, testMeta(), nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestCorruptRecordRejectsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.journal")
	writeJournal(t, path, testMeta(), []byte("aaaa"), []byte("bbbb"))
	data, _ := os.ReadFile(path)
	// Flip a payload byte of the first (fully-framed) record.
	data[HeaderSize+6] ^= 0x40
	os.WriteFile(path, data, 0o644)
	if _, err := Open(path, testMeta(), nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestVersionSkewRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.journal")
	writeJournal(t, path, testMeta(), []byte("x"))
	data, _ := os.ReadFile(path)
	binary.LittleEndian.PutUint32(data[4:], Version+1)
	os.WriteFile(path, data, 0o644)
	if _, err := Open(path, testMeta(), nil); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("err = %v, want ErrVersionSkew", err)
	}
}

func TestMetaMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.journal")
	writeJournal(t, path, testMeta(), []byte("x"))
	cases := []func(*Meta){
		func(m *Meta) { m.Kind = KindVerifyParallel },
		func(m *Meta) { m.Mode++ },
		func(m *Meta) { m.Engine++ },
		func(m *Meta) { m.Workers = 8 },
		func(m *Meta) { m.Interval++ },
		func(m *Meta) { m.FormulaFP++ },
		func(m *Meta) { m.ProofFP++ },
	}
	for i, mut := range cases {
		want := testMeta()
		mut(&want)
		if _, err := Open(path, want, nil); !errors.Is(err, ErrMismatch) {
			t.Fatalf("case %d: err = %v, want ErrMismatch", i, err)
		}
	}
}

func TestMissingJournal(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), testMeta(), nil); !errors.Is(err, ErrNoJournal) {
		t.Fatalf("err = %v, want ErrNoJournal", err)
	}
}

func TestHeaderOnlyJournalIsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.journal")
	writeJournal(t, path, testMeta())
	if _, err := Open(path, testMeta(), nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestGarbageFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.journal")
	os.WriteFile(path, bytes.Repeat([]byte("not a journal "), 10), 0o644)
	if _, err := Open(path, testMeta(), nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestFingerprintsDiscriminate(t *testing.T) {
	f := cnf.NewFormula(3).Add(1, 2).Add(-1, 3)
	g := f.Clone()
	if FingerprintFormula(f) != FingerprintFormula(g) {
		t.Fatal("clone fingerprint differs")
	}
	g.Clauses[0][0] = g.Clauses[0][0].Neg()
	if FingerprintFormula(f) == FingerprintFormula(g) {
		t.Fatal("mutated formula fingerprint collides")
	}

	tr := proof.New()
	tr.Append(cnf.Clause{cnf.FromDimacs(1)}, 1)
	tr.Append(cnf.Clause{cnf.FromDimacs(-1)}, 1)
	tr2 := tr.Clone()
	if FingerprintTrace(tr) != FingerprintTrace(tr2) {
		t.Fatal("clone trace fingerprint differs")
	}
	tr2.Clauses = tr2.Clauses[:1]
	if FingerprintTrace(tr) == FingerprintTrace(tr2) {
		t.Fatal("truncated trace fingerprint collides")
	}
}
