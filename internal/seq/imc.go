package seq

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/interp"
	"repro/internal/resolution"
	"repro/internal/solver"
)

// IMC is interpolation-based unbounded model checking (McMillan, CAV 2003)
// — the application that turned stored resolution proofs from a debugging
// aid into core model-checking technology, built here directly on this
// repository's proof machinery:
//
//  1. Unroll R(s0) ∧ T(s0,s1) (the A-side) and
//     T(s1..sk) ∧ "property violated within steps 1..k" (the B-side),
//     with explicit boundary variables between frames.
//  2. If A ∧ B is satisfiable and R is still the initial states, a real
//     counterexample exists; if R has grown, the abstraction was too
//     coarse — increase k and restart.
//  3. If unsatisfiable, the solver's resolution chains yield a Craig
//     interpolant over the boundary variables: an over-approximation of
//     the image of R that still cannot reach a violation within k steps.
//     Union it into R; when the union stops growing (I ⟹ R), R is a
//     property-preserving inductive invariant and the property HOLDS for
//     every bound.
//
// maxK bounds the unrolling depth, maxIter the image iterations per depth.
// Verdict Unknown means the budgets ran out.
func IMC(d *Design, maxK, maxIter int, opts solver.Options) (*Result, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	// The property at step 0 is outside the interpolation loop's window.
	base, err := BMC(d, 1, opts)
	if err != nil {
		return nil, err
	}
	if base.Verdict != Holds {
		return base, nil
	}

	opts.RecordChains = true
	opts.DisableProof = false

	for k := 1; k <= maxK; k++ {
		// R starts as the initial-state predicate each time k grows.
		rPred := initPredicate(d)
		for iter := 0; iter < maxIter; iter++ {
			st, ip, err := imcStep(d, rPred, k, opts)
			if err != nil {
				return nil, err
			}
			if st == solver.Sat {
				if iter == 0 {
					// R == init: the violation is real; rerun plain BMC to
					// produce a replayable trace.
					return BMC(d, k+1, opts)
				}
				break // spurious (abstract) counterexample: deepen k
			}
			// UNSAT: ip over-approximates the image of R. Fixpoint when
			// ip ⟹ R.
			implied, err := predImplies(d, ip, rPred, opts)
			if err != nil {
				return nil, err
			}
			if implied {
				return &Result{Verdict: Holds, Bound: k, ProofChecked: true}, nil
			}
			rPred = unionPred(rPred, ip)
		}
	}
	return &Result{Verdict: Unknown, Bound: maxK}, nil
}

// statePred is a predicate over the design's state bits, represented as a
// circuit whose inputs are the state bits in order.
type statePred struct {
	c    *circuit.Circuit
	root circuit.Signal
}

// initPredicate builds "state == Init".
func initPredicate(d *Design) *statePred {
	c := circuit.New()
	eq := circuit.True
	for _, init := range d.Init {
		in := c.Input()
		if init {
			eq = c.And(eq, in)
		} else {
			eq = c.And(eq, in.Not())
		}
	}
	return &statePred{c: c, root: eq}
}

// unionPred returns rPred ∨ ip (the interpolant lifted to a state
// predicate).
func unionPred(rPred *statePred, ip *statePred) *statePred {
	c := circuit.New()
	nL := rPred.c.NumInputs()
	ins := make([]circuit.Signal, nL)
	for i := range ins {
		ins[i] = c.Input()
	}
	t1, _ := rPred.c.CopyInto(c, ins)
	t2, _ := ip.c.CopyInto(c, ins)
	return &statePred{c: c, root: c.Or(t1(rPred.root), t2(ip.root))}
}

// predImplies decides a ⟹ b by refuting a ∧ ¬b.
func predImplies(d *Design, a, b *statePred, opts solver.Options) (bool, error) {
	c := circuit.New()
	ins := make([]circuit.Signal, len(d.Init))
	for i := range ins {
		ins[i] = c.Input()
	}
	ta, err := a.c.CopyInto(c, ins)
	if err != nil {
		return false, err
	}
	tb, err := b.c.CopyInto(c, ins)
	if err != nil {
		return false, err
	}
	f := c.ToCNF(c.And(ta(a.root), tb(b.root).Not()))
	qopts := opts
	qopts.RecordChains = false
	st, _, _, _, err := solver.Solve(f, qopts)
	if err != nil {
		return false, err
	}
	switch st {
	case solver.Unsat:
		return true, nil
	case solver.Sat:
		return false, nil
	default:
		return false, fmt.Errorf("seq: implication query exhausted the budget")
	}
}

// imcStep builds A = R(s0) ∧ T(s0,s1), B = T(s1..sk) ∧ ⋁ bad(1..k) with an
// explicit boundary at s1, solves, and on UNSAT returns the interpolant
// lifted to a state predicate over the boundary.
func imcStep(d *Design, rPred *statePred, k int, opts solver.Options) (solver.Status, *statePred, error) {
	u := circuit.New()
	nL, nPI := len(d.Init), d.numPIs()

	// Frame 0 entering state + R over it (A-side gates).
	s0 := make([]circuit.Signal, nL)
	for i := range s0 {
		s0[i] = u.Input()
	}
	tr0, err := rPred.c.CopyInto(u, s0)
	if err != nil {
		return 0, nil, err
	}
	rOut := tr0(rPred.root)

	stamp := func(state []circuit.Signal) (next []circuit.Signal, bad circuit.Signal, err error) {
		pis := make([]circuit.Signal, nPI)
		for i := range pis {
			pis[i] = u.Input()
		}
		translate, err := d.C.CopyInto(u, append(append([]circuit.Signal(nil), state...), pis...))
		if err != nil {
			return nil, 0, err
		}
		next = make([]circuit.Signal, nL)
		for i, n := range d.Next {
			next[i] = translate(n)
		}
		return next, translate(d.Property).Not(), nil
	}

	next0, _, err := stamp(s0)
	if err != nil {
		return 0, nil, err
	}
	watermark := u.NumGates() // everything below is A-side

	// Boundary: fresh s1 inputs (created after the watermark, but inputs
	// contribute no Tseitin clauses; their vars become the shared ones).
	s1 := make([]circuit.Signal, nL)
	for i := range s1 {
		s1[i] = u.Input()
	}
	boundaryVar := make([]cnf.Var, nL)
	for i, s := range s1 {
		boundaryVar[i] = circuit.LitOf(s).Var()
	}

	// Frames 1..k (B-side).
	state := s1
	var bads []circuit.Signal
	for t := 1; t <= k; t++ {
		nxt, bad, err := stamp(state)
		if err != nil {
			return 0, nil, err
		}
		bads = append(bads, bad)
		state = nxt
	}
	anyBad := u.OrN(bads...)

	f := u.ToCNF() // no asserts: added below with explicit sides
	aClauses := u.TseitinClauses(watermark)
	sides := make([]interp.Side, 0, f.NumClauses()+2*nL+2)
	for i := 0; i < f.NumClauses(); i++ {
		if i < aClauses {
			sides = append(sides, interp.SideA)
		} else {
			sides = append(sides, interp.SideB)
		}
	}
	// A-side: assert R; link next0 == s1.
	f.AddClause(cnf.Clause{circuit.LitOf(rOut)})
	sides = append(sides, interp.SideA)
	for i := 0; i < nL; i++ {
		a := circuit.LitOf(next0[i])
		b := cnf.PosLit(boundaryVar[i])
		f.AddClause(cnf.Clause{a.Neg(), b})
		f.AddClause(cnf.Clause{a, b.Neg()})
		sides = append(sides, interp.SideA, interp.SideA)
	}
	// B-side: assert a violation within frames 1..k.
	f.AddClause(cnf.Clause{circuit.LitOf(anyBad)})
	sides = append(sides, interp.SideB)

	s, err := solver.NewFromFormula(f, opts)
	if err != nil {
		return 0, nil, err
	}
	st := s.Run()
	if st != solver.Unsat {
		if st == solver.Sat {
			return solver.Sat, nil, nil
		}
		return st, nil, fmt.Errorf("seq: IMC query exhausted the budget")
	}

	rp, err := resolution.FromSolverRun(f, s.Trace(), s.Chains())
	if err != nil {
		return 0, nil, err
	}
	ip, err := interp.Compute(rp, sides)
	if err != nil {
		return 0, nil, err
	}

	// Lift the interpolant to a predicate over state bits: its support is
	// a subset of the shared variables, which are the boundary variables
	// plus possibly the pinned constant (variable 0).
	bitOf := make(map[cnf.Var]int, nL)
	for i, v := range boundaryVar {
		bitOf[v] = i
	}
	pc := circuit.New()
	ins := make([]circuit.Signal, nL)
	for i := range ins {
		ins[i] = pc.Input()
	}
	inputMap := make([]circuit.Signal, len(ip.SharedVars))
	for i, v := range ip.SharedVars {
		if bit, ok := bitOf[v]; ok {
			inputMap[i] = ins[bit]
		} else if v == 0 {
			inputMap[i] = circuit.False // the Tseitin constant pin
		} else {
			return 0, nil, fmt.Errorf("seq: interpolant mentions non-boundary variable %v", v)
		}
	}
	tp, err := ip.Circuit.CopyInto(pc, inputMap)
	if err != nil {
		return 0, nil, err
	}
	return solver.Unsat, &statePred{c: pc, root: tp(ip.Root)}, nil
}
