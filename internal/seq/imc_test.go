package seq

import (
	"testing"

	"repro/internal/circuit"
)

// evenCounter increments by 2 each enabled step; "bit 0 stays zero" is an
// invariant reachable analysis must find (it is 1-inductive, so the first
// interpolant round usually converges).
func evenCounter(w int) *Design {
	c := circuit.New()
	state := c.InputWord(w)
	en := c.Input()
	two := c.ConstWord(w, 2)
	sum, _ := c.RippleAdd(state, two, circuit.False)
	next := c.MuxWord(en, sum, state)
	return &Design{
		C:        c,
		Init:     make([]bool, w),
		Next:     next,
		Property: state[0].Not(),
	}
}

func TestIMCProvesToggleInvariant(t *testing.T) {
	res, err := IMC(togglePair(), 4, 16, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Holds {
		t.Fatalf("verdict %v (bound %d)", res.Verdict, res.Bound)
	}
}

func TestIMCProvesEvenCounterInvariant(t *testing.T) {
	res, err := IMC(evenCounter(4), 4, 16, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Holds {
		t.Fatalf("verdict %v (bound %d)", res.Verdict, res.Bound)
	}
}

func TestIMCFindsCounterexample(t *testing.T) {
	// Every counter value is eventually reachable, so "cnt != 5" is
	// violated; IMC must find it and return a replayable trace.
	d := counter(3, 5)
	res, err := IMC(d, 8, 16, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Violated {
		t.Fatalf("verdict %v", res.Verdict)
	}
	var inputs [][]bool
	for _, st := range res.Trace {
		inputs = append(inputs, st.Inputs)
	}
	_, good, err := d.Simulate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	for _, g := range good {
		if !g {
			failed = true
		}
	}
	if !failed {
		t.Fatal("IMC counterexample does not violate the property")
	}
}

func TestIMCViolationAtReset(t *testing.T) {
	c := circuit.New()
	x := c.Input()
	d := &Design{
		C:        c,
		Init:     []bool{false},
		Next:     []circuit.Signal{x},
		Property: x,
	}
	res, err := IMC(d, 4, 8, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Violated {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestIMCBudgetExhaustion(t *testing.T) {
	// A counter where the violation needs 12 steps but maxK is tiny: the
	// interpolants keep over-approximating forward images without ever
	// reaching a fixpoint that excludes the target, so IMC gives up.
	d := counter(4, 12)
	res, err := IMC(d, 1, 2, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict == Holds {
		t.Fatalf("IMC claimed Holds for an eventually-violated property")
	}
}

func TestIMCAgreesWithKInduction(t *testing.T) {
	d := togglePair()
	r1, err := IMC(d, 4, 16, opts())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KInduction(d, 1, opts())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Verdict != Holds || r2.Verdict != Holds {
		t.Fatalf("IMC %v, k-induction %v", r1.Verdict, r2.Verdict)
	}
}
