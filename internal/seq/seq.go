// Package seq implements bounded model checking and k-induction over
// sequential circuits — the application domain (barrel, longmult, fifo,
// w10) that produced the paper's BMC benchmark formulas. A Design is a
// transition system given as a combinational circuit; Check unrolls it into
// a CNF miter exactly the way the generators in internal/gen build their
// instances, then solves with the CDCL solver and (for UNSAT answers)
// verifies the proof with the paper's verifier before trusting it.
package seq

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/solver"
)

// Design is a sequential design. The transition logic lives in C under the
// convention that C's first len(Init) inputs (in creation order) are the
// current-state bits and the remaining inputs are the per-step primary
// inputs. Next[i] gives the next value of state bit i; Property is the
// invariant signal ("good"; a function of state and inputs) that must hold
// in every reachable step.
type Design struct {
	C        *circuit.Circuit
	Init     []bool
	Next     []circuit.Signal
	Property circuit.Signal
}

func (d *Design) validate() error {
	if len(d.Next) != len(d.Init) {
		return fmt.Errorf("seq: %d next-state functions for %d latches", len(d.Next), len(d.Init))
	}
	if d.C.NumInputs() < len(d.Init) {
		return fmt.Errorf("seq: circuit has %d inputs, fewer than %d latches", d.C.NumInputs(), len(d.Init))
	}
	return nil
}

// numPIs returns the number of per-step primary inputs.
func (d *Design) numPIs() int { return d.C.NumInputs() - len(d.Init) }

// Verdict is the outcome of a check.
type Verdict int

const (
	// Unknown: budget exhausted or (for induction) the step case failed.
	Unknown Verdict = iota
	// Holds: the property holds (up to the bound for BMC, globally for
	// k-induction).
	Holds
	// Violated: a counterexample trace exists (see Trace).
	Violated
)

func (v Verdict) String() string {
	switch v {
	case Holds:
		return "holds"
	case Violated:
		return "violated"
	default:
		return "unknown"
	}
}

// Step is one time step of a counterexample: the primary-input vector and
// the state entering the step.
type Step struct {
	State  []bool
	Inputs []bool
}

// Result carries the verdict, the counterexample trace when Violated, and
// the verification statistics for UNSAT answers (the proof of "no
// counterexample up to k" is itself checked by the paper's verifier).
type Result struct {
	Verdict Verdict
	Bound   int
	Trace   []Step
	// ProofChecked reports that the UNSAT proof backing a Holds verdict
	// passed independent verification.
	ProofChecked bool
	SolverStats  solver.Stats
}

// unrolling captures the CNF encoding of k stamped transition steps.
type unrolling struct {
	u      *circuit.Circuit
	states [][]circuit.Signal // states[t]: state entering step t (0..k)
	pis    [][]circuit.Signal // pis[t]: primary inputs of step t (0..k-1)
	bads   []circuit.Signal   // bads[t]: property violated at step t (0..k-1)
}

// unroll stamps k steps. When symbolicInit is true, the initial state is a
// fresh input vector (used by the inductive step); otherwise it is the
// design's reset state.
func (d *Design) unroll(k int, symbolicInit bool) (*unrolling, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	u := circuit.New()
	nL, nPI := len(d.Init), d.numPIs()

	state := make([]circuit.Signal, nL)
	for i := range state {
		if symbolicInit {
			state[i] = u.Input()
		} else if d.Init[i] {
			state[i] = circuit.True
		} else {
			state[i] = circuit.False
		}
	}
	un := &unrolling{u: u}
	un.states = append(un.states, state)

	for t := 0; t < k; t++ {
		pis := make([]circuit.Signal, nPI)
		for i := range pis {
			pis[i] = u.Input()
		}
		un.pis = append(un.pis, pis)
		inputMap := append(append([]circuit.Signal(nil), state...), pis...)
		translate, err := d.C.CopyInto(u, inputMap)
		if err != nil {
			return nil, err
		}
		un.bads = append(un.bads, translate(d.Property).Not())
		next := make([]circuit.Signal, nL)
		for i, n := range d.Next {
			next[i] = translate(n)
		}
		state = next
		un.states = append(un.states, state)
	}
	return un, nil
}

// BMC checks the property over all executions of length up to k from the
// reset state. Holds means no counterexample of length <= k exists, backed
// by a verified UNSAT proof; Violated carries the shortest-within-k trace.
func BMC(d *Design, k int, opts solver.Options) (*Result, error) {
	un, err := d.unroll(k, false)
	if err != nil {
		return nil, err
	}
	bad := un.u.OrN(un.bads...)
	f := un.u.ToCNF(bad)
	st, tr, model, stats, err := solver.Solve(f, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{Bound: k, SolverStats: stats}
	switch st {
	case solver.Sat:
		res.Verdict = Violated
		res.Trace = extractTrace(un, model, len(d.Init))
		return res, nil
	case solver.Unsat:
		vres, err := core.Verify(f, tr, core.Options{Mode: core.ModeCheckMarked})
		if err != nil {
			return nil, err
		}
		if !vres.OK {
			return nil, fmt.Errorf("seq: BMC proof rejected at clause %d — solver bug", vres.FailedIndex)
		}
		res.Verdict = Holds
		res.ProofChecked = true
		return res, nil
	default:
		res.Verdict = Unknown
		return res, nil
	}
}

// KInduction attempts to prove the property for ALL reachable states using
// k-induction (without uniqueness constraints, so it is sound but
// incomplete): the base case is BMC(k); the step case assumes the property
// along k symbolic steps and asserts a violation at step k+1. Verdict
// Holds means proven for every bound; Violated comes from the base case;
// Unknown means the induction step failed (the property may still hold).
func KInduction(d *Design, k int, opts solver.Options) (*Result, error) {
	base, err := BMC(d, k, opts)
	if err != nil {
		return nil, err
	}
	if base.Verdict != Holds {
		return base, nil
	}

	un, err := d.unroll(k+1, true)
	if err != nil {
		return nil, err
	}
	// Assume property at steps 0..k-1, assert violation at step k.
	goods := make([]circuit.Signal, 0, k)
	for t := 0; t < k; t++ {
		goods = append(goods, un.bads[t].Not())
	}
	stepObligation := un.u.AndN(append(goods, un.bads[k])...)
	f := un.u.ToCNF(stepObligation)
	st, tr, _, stats, err := solver.Solve(f, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{Bound: k, SolverStats: stats}
	switch st {
	case solver.Unsat:
		vres, err := core.Verify(f, tr, core.Options{Mode: core.ModeCheckMarked})
		if err != nil {
			return nil, err
		}
		if !vres.OK {
			return nil, fmt.Errorf("seq: induction proof rejected at clause %d — solver bug", vres.FailedIndex)
		}
		res.Verdict = Holds
		res.ProofChecked = true
	case solver.Sat:
		// The induction step has a counterexample-to-induction; the
		// property is not k-inductive, which proves nothing either way.
		res.Verdict = Unknown
	default:
		res.Verdict = Unknown
	}
	return res, nil
}

// Simulate runs the design from the reset state over the given per-step
// primary-input vectors, returning the state entering each step and the
// property value at each step — the reference semantics used to validate
// counterexample traces.
func (d *Design) Simulate(inputs [][]bool) (states [][]bool, good []bool, err error) {
	if err := d.validate(); err != nil {
		return nil, nil, err
	}
	state := append([]bool(nil), d.Init...)
	for _, pi := range inputs {
		if len(pi) != d.numPIs() {
			return nil, nil, fmt.Errorf("seq: step has %d inputs, want %d", len(pi), d.numPIs())
		}
		states = append(states, append([]bool(nil), state...))
		all := append(append([]bool(nil), state...), pi...)
		vals, err := d.C.Eval(all)
		if err != nil {
			return nil, nil, err
		}
		good = append(good, circuit.ValueOf(vals, d.Property))
		next := make([]bool, len(state))
		for i, n := range d.Next {
			next[i] = circuit.ValueOf(vals, n)
		}
		state = next
	}
	return states, good, nil
}

// extractTrace reads the counterexample out of a SAT model: variable i of
// the unrolled CNF is exactly node i of the unrolled circuit.
func extractTrace(un *unrolling, model []bool, nLatches int) []Step {
	sigVal := func(s circuit.Signal) bool {
		l := circuit.LitOf(s)
		v := int(l.Var())
		val := v < len(model) && model[v]
		if l.IsNeg() {
			val = !val
		}
		return val
	}
	var steps []Step
	for t := 0; t < len(un.pis); t++ {
		st := Step{
			State:  make([]bool, nLatches),
			Inputs: make([]bool, len(un.pis[t])),
		}
		for i, s := range un.states[t] {
			st.State[i] = sigVal(s)
		}
		for i, s := range un.pis[t] {
			st.Inputs[i] = sigVal(s)
		}
		steps = append(steps, st)
	}
	return steps
}
