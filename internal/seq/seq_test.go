package seq

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/solver"
)

// togglePair builds two toggle flip-flops initialized equal; the invariant
// "x == y" is 1-inductive.
func togglePair() *Design {
	c := circuit.New()
	x := c.Input() // latch 0
	y := c.Input() // latch 1
	return &Design{
		C:        c,
		Init:     []bool{false, false},
		Next:     []circuit.Signal{x.Not(), y.Not()},
		Property: c.Xnor(x, y),
	}
}

// counter builds a w-bit counter that increments when its enable input is
// high; property: the counter never equals target.
func counter(w int, target uint64) *Design {
	c := circuit.New()
	state := c.InputWord(w) // latches
	en := c.Input()         // primary input
	inc := c.Inc(state)
	next := c.MuxWord(en, inc, state)
	return &Design{
		C:        c,
		Init:     make([]bool, w),
		Next:     next,
		Property: c.NeqWord(state, c.ConstWord(w, target)),
	}
}

func opts() solver.Options {
	return solver.Options{MaxConflicts: 500_000}
}

func TestBMCHolds(t *testing.T) {
	res, err := BMC(togglePair(), 8, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Holds {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if !res.ProofChecked {
		t.Error("UNSAT proof not verified")
	}
}

func TestBMCFindsCounterexample(t *testing.T) {
	// Counter can reach 3 after >= 3 enabled steps.
	d := counter(4, 3)
	res, err := BMC(d, 6, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Violated {
		t.Fatalf("verdict %v", res.Verdict)
	}
	// Replay the trace: the property must actually fail at some step.
	var inputs [][]bool
	for _, st := range res.Trace {
		inputs = append(inputs, st.Inputs)
	}
	_, good, err := d.Simulate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	for _, g := range good {
		if !g {
			failed = true
		}
	}
	if !failed {
		t.Fatalf("counterexample does not violate the property: %+v", res.Trace)
	}
}

func TestBMCBoundTooSmall(t *testing.T) {
	// Reaching 5 needs 5 enabled steps; k=3 cannot.
	d := counter(4, 5)
	res, err := BMC(d, 3, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Holds {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestBMCViolationAtReset(t *testing.T) {
	// Property false in the initial state.
	c := circuit.New()
	x := c.Input()
	d := &Design{
		C:        c,
		Init:     []bool{false},
		Next:     []circuit.Signal{x},
		Property: x, // requires x=1, but init is 0
	}
	res, err := BMC(d, 1, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Violated || len(res.Trace) != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestKInductionProvesToggleInvariant(t *testing.T) {
	res, err := KInduction(togglePair(), 1, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Holds {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if !res.ProofChecked {
		t.Error("induction proof not verified")
	}
}

func TestKInductionInconclusiveOnCounter(t *testing.T) {
	// "cnt != 12" is true (reachable only with 12 enabled steps > bound)
	// for small k the base holds, but the property is not k-inductive:
	// from the symbolic state 11 the counter steps to 12.
	d := counter(4, 12)
	res, err := KInduction(d, 2, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown {
		t.Fatalf("verdict %v, want Unknown (CTI exists)", res.Verdict)
	}
}

func TestKInductionBaseFailure(t *testing.T) {
	d := counter(4, 2)
	res, err := KInduction(d, 4, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Violated {
		t.Fatalf("verdict %v, want Violated from the base case", res.Verdict)
	}
}

func TestSimulateToggle(t *testing.T) {
	d := togglePair()
	states, good, err := d.Simulate([][]bool{{}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]bool{{false, false}, {true, true}, {false, false}}
	for t0 := range want {
		if states[t0][0] != want[t0][0] || states[t0][1] != want[t0][1] {
			t.Errorf("step %d: state %v, want %v", t0, states[t0], want[t0])
		}
		if !good[t0] {
			t.Errorf("step %d: property false", t0)
		}
	}
}

func TestDesignValidation(t *testing.T) {
	c := circuit.New()
	x := c.Input()
	bad := &Design{C: c, Init: []bool{false, true}, Next: []circuit.Signal{x}, Property: x}
	if _, err := BMC(bad, 1, opts()); err == nil {
		t.Error("mismatched latch count accepted")
	}
}
