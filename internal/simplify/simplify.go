// Package simplify implements CNF preprocessing in the style of the
// era's simplifiers (NiVER bounded variable elimination, subsumption,
// self-subsuming resolution, failed-literal probing, root-level unit
// propagation). Preprocessing was the standard companion of 2002-era CDCL
// solvers on the verification formulas the paper benchmarks; the bench
// harness uses it for a solve-with/without ablation.
//
// Simplify returns an equisatisfiable formula together with enough
// reconstruction information to extend any model of the simplified formula
// to a model of the original one. Note that a conflict-clause proof
// produced for the simplified formula verifies against the simplified
// formula, not the original; verification-grade workflows should either
// skip elimination-based preprocessing or verify against the preprocessed
// formula (which is how preprocessing solvers shipped proofs before
// DRAT-style deletion/addition logging existed).
package simplify

import (
	"fmt"
	"sort"

	"repro/internal/bcp"
	"repro/internal/cnf"
)

// Options selects preprocessing passes. The zero value enables nothing;
// Default() enables everything with standard bounds.
type Options struct {
	// UnitPropagation propagates root-level units, removing satisfied
	// clauses and false literals.
	UnitPropagation bool
	// Subsumption removes clauses subsumed by another clause.
	Subsumption bool
	// SelfSubsumption strengthens clauses by self-subsuming resolution.
	SelfSubsumption bool
	// VarElim performs NiVER-style bounded variable elimination: a
	// variable is eliminated only if the non-tautological resolvents do
	// not contain more literals than the clauses they replace (plus
	// VarElimGrowth slack).
	VarElim bool
	// BlockedClause removes blocked clauses: C is blocked on l ∈ C when
	// every resolvent of C with a clause containing ¬l is tautological.
	BlockedClause bool
	// VarElimGrowth is the literal-count slack allowed by VarElim.
	VarElimGrowth int
	// FailedLiterals probes literals with BCP and adds the negation of
	// every failed literal as a unit.
	FailedLiterals bool
	// MaxProbes bounds the number of failed-literal probes per round
	// (0 = all literals).
	MaxProbes int
	// Rounds bounds the outer fixpoint loop. Default 3 when zero.
	Rounds int
}

// Default returns the standard full configuration.
func Default() Options {
	return Options{
		UnitPropagation: true,
		Subsumption:     true,
		SelfSubsumption: true,
		VarElim:         true,
		VarElimGrowth:   0,
		BlockedClause:   true,
		FailedLiterals:  true,
		Rounds:          3,
	}
}

// Stats counts what each pass did.
type Stats struct {
	Rounds           int
	UnitsPropagated  int
	ClausesSubsumed  int
	LitsStrengthened int
	VarsEliminated   int
	BlockedRemoved   int
	FailedLiterals   int
	ClausesRemoved   int
	TautologiesLost  int
}

// ElimVar records an eliminated variable and the original clauses it
// occurred in, for model reconstruction.
type ElimVar struct {
	V   cnf.Var
	Pos []cnf.Clause // clauses containing V positively
	Neg []cnf.Clause // clauses containing V negatively
}

// BlockedClause records a removed blocked clause and its blocking literal.
type BlockedClause struct {
	C cnf.Clause
	L cnf.Lit
}

// reconStep is one entry of the unified model-reconstruction stack: either
// an eliminated variable or a removed blocked clause. The stack preserves
// the chronological interleaving of the two mechanisms, which matters for
// correctness (a blocked clause removed before an elimination must be
// repaired after it during reconstruction).
type reconStep struct {
	ev *ElimVar
	bc *BlockedClause
}

// Result is the outcome of Simplify.
type Result struct {
	// F is the simplified formula (over the same variable numbering).
	F *cnf.Formula
	// Unsat is true when preprocessing alone refuted the formula; F then
	// contains an empty clause.
	Unsat bool
	// Forced lists root-level literals fixed by unit propagation or
	// failed-literal probing, in deduction order.
	Forced []cnf.Lit
	// Eliminated lists eliminated variables in elimination order and
	// Blocked the removed blocked clauses (both are views; ExtendModel
	// replays the unified stack).
	Eliminated []ElimVar
	Blocked    []BlockedClause
	Stats      Stats

	recon []reconStep
}

// engine state used by the passes.
type simplifier struct {
	opt     Options
	nVars   int
	clauses []cnf.Clause // nil entries are deleted
	occurs  [][]int      // literal -> clause indices (with stale entries)
	value   []int8       // root-level assignment
	forced  []cnf.Lit
	stats   Stats
	recon   []reconStep
	gone    []bool // variable eliminated
	unsat   bool
}

// Simplify runs the configured passes to fixpoint (bounded by Rounds).
func Simplify(f *cnf.Formula, opt Options) (*Result, error) {
	if opt.Rounds == 0 {
		opt.Rounds = 3
	}
	s := &simplifier{
		opt:    opt,
		nVars:  f.NumVars,
		occurs: make([][]int, 2*f.NumVars),
		value:  make([]int8, f.NumVars),
		gone:   make([]bool, f.NumVars),
	}
	for _, c := range f.Clauses {
		norm, taut := c.Normalize()
		if taut {
			s.stats.TautologiesLost++
			continue
		}
		s.addClause(norm)
	}

	for round := 0; round < opt.Rounds && !s.unsat; round++ {
		s.stats.Rounds = round + 1
		changed := false
		if opt.UnitPropagation {
			changed = s.propagateUnits() || changed
		}
		if s.unsat {
			break
		}
		if opt.FailedLiterals {
			changed = s.failedLiterals() || changed
		}
		if s.unsat {
			break
		}
		if opt.Subsumption {
			changed = s.subsumption() || changed
		}
		if opt.SelfSubsumption {
			changed = s.selfSubsumption() || changed
		}
		if opt.VarElim {
			changed = s.eliminateVars() || changed
		}
		if opt.BlockedClause {
			changed = s.blockedClauses() || changed
		}
		if !changed {
			break
		}
	}

	out := cnf.NewFormula(f.NumVars)
	if s.unsat {
		out.AddClause(cnf.Clause{})
	} else {
		for _, c := range s.clauses {
			if c != nil {
				out.AddClause(c.Clone())
			}
		}
	}
	res := &Result{
		F:      out,
		Unsat:  s.unsat,
		Forced: s.forced,
		Stats:  s.stats,
		recon:  s.recon,
	}
	for _, step := range s.recon {
		if step.ev != nil {
			res.Eliminated = append(res.Eliminated, *step.ev)
		} else {
			res.Blocked = append(res.Blocked, *step.bc)
		}
	}
	return res, nil
}

func (s *simplifier) addClause(c cnf.Clause) int {
	idx := len(s.clauses)
	s.clauses = append(s.clauses, c)
	for _, l := range c {
		s.occurs[l] = append(s.occurs[l], idx)
	}
	return idx
}

func (s *simplifier) removeClause(idx int) {
	if s.clauses[idx] == nil {
		return
	}
	s.clauses[idx] = nil
	s.stats.ClausesRemoved++
	// occurs entries are cleaned lazily.
}

// litValue returns the root-level value of a literal.
func (s *simplifier) litValue(l cnf.Lit) int8 {
	v := s.value[l.Var()]
	if l.IsNeg() {
		return -v
	}
	return v
}

func (s *simplifier) assign(l cnf.Lit) bool {
	switch s.litValue(l) {
	case 1:
		return true
	case -1:
		s.unsat = true
		return false
	}
	if l.IsNeg() {
		s.value[l.Var()] = -1
	} else {
		s.value[l.Var()] = 1
	}
	s.forced = append(s.forced, l)
	return true
}

// propagateUnits applies the root assignment: satisfied clauses are
// removed, false literals stripped, new units queued.
func (s *simplifier) propagateUnits() bool {
	changed := false
	for {
		progressed := false
		for idx, c := range s.clauses {
			if c == nil {
				continue
			}
			sat := false
			kept := c[:0:0]
			stripped := false
			for _, l := range c {
				switch s.litValue(l) {
				case 1:
					sat = true
				case -1:
					stripped = true
				default:
					kept = append(kept, l)
				}
			}
			switch {
			case sat:
				s.removeClause(idx)
				progressed = true
			case stripped:
				s.clauses[idx] = kept
				for _, l := range kept {
					s.occurs[l] = append(s.occurs[l], idx)
				}
				progressed = true
				if len(kept) == 0 {
					s.unsat = true
					return true
				}
			}
			cur := s.clauses[idx]
			if cur != nil && len(cur) == 1 && s.litValue(cur[0]) == 0 {
				if !s.assign(cur[0]) {
					return true
				}
				s.stats.UnitsPropagated++
				s.removeClause(idx)
				progressed = true
			}
		}
		if !progressed {
			break
		}
		changed = true
	}
	return changed
}

// failedLiterals probes literals of the current formula with an
// independent BCP engine: if assuming l conflicts, ¬l is implied.
func (s *simplifier) failedLiterals() bool {
	eng := bcp.NewEngine(s.nVars)
	active := 0
	for _, c := range s.clauses {
		if c != nil {
			eng.Add(c)
			active++
		}
	}
	if active == 0 {
		return false
	}
	// Probe each variable once per polarity, bounded by MaxProbes.
	probes := 0
	changed := false
	seen := make(map[cnf.Lit]bool)
	for _, c := range s.clauses {
		if c == nil {
			continue
		}
		for _, l := range c {
			if s.opt.MaxProbes > 0 && probes >= s.opt.MaxProbes {
				return changed
			}
			if seen[l] || s.litValue(l) != 0 || s.gone[l.Var()] {
				continue
			}
			seen[l] = true
			probes++
			// Refute([¬l]) assumes l and propagates.
			conflict, selfContra := eng.Refute(cnf.Clause{l.Neg()})
			if selfContra {
				continue
			}
			if conflict != bcp.NoConflict {
				s.stats.FailedLiterals++
				if !s.assign(l.Neg()) {
					return true
				}
				eng.Add(cnf.Clause{l.Neg()})
				changed = true
			}
		}
	}
	if changed {
		s.propagateUnits()
	}
	return changed
}

// compactOccurs rebuilds a literal's occurrence list dropping stale
// entries.
func (s *simplifier) compactOccurs(l cnf.Lit) []int {
	out := s.occurs[l][:0]
	for _, idx := range s.occurs[l] {
		c := s.clauses[idx]
		if c == nil || !c.Has(l) {
			continue
		}
		dup := false
		for _, prev := range out {
			if prev == idx {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, idx)
		}
	}
	s.occurs[l] = out
	return out
}

// subsumption removes clauses subsumed by a (strictly shorter or equal)
// other clause, scanning the occurrence list of each clause's
// least-frequent literal.
func (s *simplifier) subsumption() bool {
	// Order clauses by length ascending so short clauses kill long ones.
	idxs := make([]int, 0, len(s.clauses))
	for i, c := range s.clauses {
		if c != nil {
			idxs = append(idxs, i)
		}
	}
	sort.Slice(idxs, func(a, b int) bool {
		return len(s.clauses[idxs[a]]) < len(s.clauses[idxs[b]])
	})
	changed := false
	for _, i := range idxs {
		c := s.clauses[i]
		if c == nil || len(c) == 0 {
			continue
		}
		// Candidates: clauses containing c's least-frequent literal.
		best := c[0]
		for _, l := range c[1:] {
			if len(s.occurs[l]) < len(s.occurs[best]) {
				best = l
			}
		}
		for _, j := range s.compactOccurs(best) {
			d := s.clauses[j]
			if j == i || d == nil || len(d) < len(c) {
				continue
			}
			if c.Subsumes(d) {
				s.removeClause(j)
				s.stats.ClausesSubsumed++
				changed = true
			}
		}
	}
	return changed
}

// selfSubsumption strengthens clauses: if c = (l ∨ A) and d ⊇ (¬l ∨ A),
// then resolving removes ¬l from d.
func (s *simplifier) selfSubsumption() bool {
	changed := false
	for i, c := range s.clauses {
		if c == nil || len(c) == 0 {
			continue
		}
		for _, l := range c {
			// c' = c with l flipped; if c' subsumes d, remove ¬l from d.
			for _, j := range s.compactOccurs(l.Neg()) {
				d := s.clauses[j]
				if d == nil || j == i || len(d) < len(c) {
					continue
				}
				if subsumesWithFlip(c, d, l) {
					nd := make(cnf.Clause, 0, len(d)-1)
					for _, x := range d {
						if x != l.Neg() {
							nd = append(nd, x)
						}
					}
					s.clauses[j] = nd
					for _, x := range nd {
						s.occurs[x] = append(s.occurs[x], j)
					}
					s.stats.LitsStrengthened++
					changed = true
					if len(nd) == 0 {
						s.unsat = true
						return true
					}
				}
			}
		}
	}
	if changed {
		s.propagateUnits()
	}
	return changed
}

// subsumesWithFlip reports whether (c \ {l}) ∪ {¬l} subsumes d.
func subsumesWithFlip(c, d cnf.Clause, l cnf.Lit) bool {
	for _, x := range c {
		want := x
		if x == l {
			want = l.Neg()
		}
		if !d.Has(want) {
			return false
		}
	}
	return true
}

// eliminateVars performs NiVER-style bounded variable elimination.
func (s *simplifier) eliminateVars() bool {
	changed := false
	for v := cnf.Var(0); int(v) < s.nVars; v++ {
		if s.gone[v] || s.value[v] != 0 {
			continue
		}
		pos := s.compactOccurs(cnf.PosLit(v))
		neg := s.compactOccurs(cnf.NegLit(v))
		if len(pos) == 0 && len(neg) == 0 {
			continue
		}
		if len(pos) == 0 || len(neg) == 0 {
			// Pure literal: satisfy all its clauses by fixing the value.
			l := cnf.PosLit(v)
			if len(pos) == 0 {
				l = cnf.NegLit(v)
			}
			ev := ElimVar{V: v}
			for _, i := range append(append([]int(nil), pos...), neg...) {
				if s.clauses[i] != nil {
					if s.clauses[i].Has(cnf.PosLit(v)) {
						ev.Pos = append(ev.Pos, s.clauses[i].Clone())
					} else {
						ev.Neg = append(ev.Neg, s.clauses[i].Clone())
					}
					s.removeClause(i)
				}
			}
			_ = l
			s.recon = append(s.recon, reconStep{ev: &ev})
			s.gone[v] = true
			s.stats.VarsEliminated++
			changed = true
			continue
		}
		if len(pos)*len(neg) > 32 {
			continue // too many resolvents to even consider
		}
		oldLits := 0
		for _, i := range pos {
			oldLits += len(s.clauses[i])
		}
		for _, i := range neg {
			oldLits += len(s.clauses[i])
		}
		var resolvents []cnf.Clause
		newLits := 0
		feasible := true
		for _, i := range pos {
			for _, j := range neg {
				r, taut, ok := s.clauses[i].Resolve(s.clauses[j], v)
				if !ok {
					feasible = false
					break
				}
				if taut {
					continue
				}
				resolvents = append(resolvents, r)
				newLits += len(r)
				if newLits > oldLits+s.opt.VarElimGrowth {
					feasible = false
					break
				}
			}
			if !feasible {
				break
			}
		}
		if !feasible {
			continue
		}
		ev := ElimVar{V: v}
		for _, i := range pos {
			ev.Pos = append(ev.Pos, s.clauses[i].Clone())
			s.removeClause(i)
		}
		for _, i := range neg {
			ev.Neg = append(ev.Neg, s.clauses[i].Clone())
			s.removeClause(i)
		}
		for _, r := range resolvents {
			if len(r) == 0 {
				s.unsat = true
				return true
			}
			s.addClause(r)
		}
		s.recon = append(s.recon, reconStep{ev: &ev})
		s.gone[v] = true
		s.stats.VarsEliminated++
		changed = true
	}
	if changed {
		s.propagateUnits()
	}
	return changed
}

// blockedClauses removes blocked clauses: C is blocked on l ∈ C when every
// resolvent of C with a clause containing ¬l is tautological (so adding or
// removing C cannot change satisfiability; a model is repaired by making l
// true if C ends up falsified).
func (s *simplifier) blockedClauses() bool {
	changed := false
	for i, c := range s.clauses {
		if c == nil || len(c) == 0 {
			continue
		}
		for _, l := range c {
			if s.value[l.Var()] != 0 || s.gone[l.Var()] {
				continue
			}
			blocked := true
			for _, j := range s.compactOccurs(l.Neg()) {
				d := s.clauses[j]
				if d == nil || j == i {
					continue
				}
				if !resolventTaut(c, d, l) {
					blocked = false
					break
				}
			}
			if blocked {
				s.recon = append(s.recon, reconStep{bc: &BlockedClause{C: c.Clone(), L: l}})
				s.removeClause(i)
				s.stats.BlockedRemoved++
				changed = true
				break
			}
		}
	}
	return changed
}

// resolventTaut reports whether the resolvent of c (∋ l) and d (∋ ¬l) on
// var(l) is tautological: some other variable appears with opposite
// polarities across the two clauses.
func resolventTaut(c, d cnf.Clause, l cnf.Lit) bool {
	for _, x := range c {
		if x.Var() == l.Var() {
			continue
		}
		if d.Has(x.Neg()) {
			return true
		}
	}
	return false
}

// ExtendModel extends a model of the simplified formula to a model of the
// original: forced literals are applied, then the reconstruction stack
// (eliminated variables and removed blocked clauses, chronologically
// interleaved) is replayed in reverse.
func (r *Result) ExtendModel(model []bool) ([]bool, error) {
	if r.Unsat {
		return nil, fmt.Errorf("simplify: formula is unsatisfiable")
	}
	out := make([]bool, len(model))
	copy(out, model)
	for _, l := range r.Forced {
		out[l.Var()] = l.IsPos()
	}
	satisfied := func(c cnf.Clause, skip cnf.Var) bool {
		for _, l := range c {
			if l.Var() == skip {
				continue
			}
			if out[l.Var()] == l.IsPos() {
				return true
			}
		}
		return false
	}
	for i := len(r.recon) - 1; i >= 0; i-- {
		step := r.recon[i]
		if bc := step.bc; bc != nil {
			// Repair a removed blocked clause: if unsatisfied, flipping the
			// blocking literal satisfies it, and the tautological-resolvent
			// property guarantees every clause containing ¬l stays
			// satisfied through some other literal of the blocked clause.
			if !satisfied(bc.C, cnf.VarUndef) {
				out[bc.L.Var()] = bc.L.IsPos()
			}
			continue
		}
		ev := step.ev
		// If every clause that needs v=false is already satisfied by some
		// other literal, set v=true (satisfying the Pos side); otherwise
		// v=false (the resolvent closure guarantees the Pos side is then
		// satisfied by other literals).
		needFalse := false
		for _, c := range ev.Neg {
			if !satisfied(c, ev.V) {
				needFalse = true
				break
			}
		}
		out[ev.V] = !needFalse
	}
	return out, nil
}
