package simplify

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/solver"
)

func cl(dimacs ...int) cnf.Clause {
	c := make(cnf.Clause, 0, len(dimacs))
	for _, d := range dimacs {
		c = append(c, cnf.FromDimacs(d))
	}
	return c
}

func bruteSat(f *cnf.Formula) (bool, []bool) {
	n := f.NumVars
	for m := 0; m < 1<<n; m++ {
		assign := make([]bool, n)
		for i := range assign {
			assign[i] = m&(1<<i) != 0
		}
		if f.Eval(assign) {
			return true, assign
		}
	}
	return false, nil
}

func TestUnitPropagation(t *testing.T) {
	f := cnf.NewFormula(0).Add(1).Add(-1, 2).Add(-2, 3).Add(3, 4)
	res, err := Simplify(f, Options{UnitPropagation: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat {
		t.Fatal("spurious unsat")
	}
	if res.Stats.UnitsPropagated < 3 {
		t.Errorf("UnitsPropagated = %d", res.Stats.UnitsPropagated)
	}
	// x1, x2, x3 forced; (3 4) satisfied; nothing remains.
	if res.F.NumClauses() != 0 {
		t.Errorf("remaining clauses: %v", res.F.Clauses)
	}
	if len(res.Forced) != 3 {
		t.Errorf("Forced = %v", res.Forced)
	}
}

func TestUnitPropagationConflict(t *testing.T) {
	f := cnf.NewFormula(0).Add(1).Add(-1)
	res, err := Simplify(f, Options{UnitPropagation: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unsat {
		t.Error("conflicting units not detected")
	}
}

func TestSubsumption(t *testing.T) {
	f := cnf.NewFormula(0).Add(1, 2).Add(1, 2, 3).Add(1, 2, 4).Add(5, 6)
	res, err := Simplify(f, Options{Subsumption: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ClausesSubsumed != 2 {
		t.Errorf("ClausesSubsumed = %d", res.Stats.ClausesSubsumed)
	}
	if res.F.NumClauses() != 2 {
		t.Errorf("remaining: %v", res.F.Clauses)
	}
}

func TestSelfSubsumption(t *testing.T) {
	// (1 2) and (-1 2 3): resolving on 1 gives (2 3) ⊂ (-1 2 3), so the
	// long clause strengthens to (2 3).
	f := cnf.NewFormula(0).Add(1, 2).Add(-1, 2, 3)
	res, err := Simplify(f, Options{SelfSubsumption: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LitsStrengthened != 1 {
		t.Errorf("LitsStrengthened = %d", res.Stats.LitsStrengthened)
	}
	found := false
	for _, c := range res.F.Clauses {
		if c.SameLits(cl(2, 3)) {
			found = true
		}
		if c.SameLits(cl(-1, 2, 3)) {
			t.Error("unstrengthened clause survives")
		}
	}
	if !found {
		t.Errorf("strengthened clause missing: %v", res.F.Clauses)
	}
}

func TestVarElimPure(t *testing.T) {
	// x1 occurs only positively: pure.
	f := cnf.NewFormula(0).Add(1, 2).Add(1, 3).Add(2, -3)
	res, err := Simplify(f, Options{VarElim: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.VarsEliminated == 0 {
		t.Error("pure literal not eliminated")
	}
}

func TestVarElimBounded(t *testing.T) {
	// Eliminating x1 from (1 2)(1 3)(-1 4): resolvents (2 4)(3 4) — 4 lits
	// replace 6: allowed with growth 0.
	f := cnf.NewFormula(0).Add(1, 2).Add(1, 3).Add(-1, 4)
	res, err := Simplify(f, Options{VarElim: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.VarsEliminated == 0 {
		t.Error("bounded elimination did not fire")
	}
	for _, c := range res.F.Clauses {
		for _, l := range c {
			if l.Var() == 0 {
				t.Errorf("eliminated variable survives in %v", c)
			}
		}
	}
}

func TestBlockedClauseElimination(t *testing.T) {
	// (1 2) is blocked on x1: the only clause with ¬x1 is (-1 -2), and the
	// resolvent (2 -2) is tautological. Same symmetrically, so BCE can
	// clear this (satisfiable) formula substantially.
	f := cnf.NewFormula(0).Add(1, 2).Add(-1, -2).Add(3, 4)
	res, err := Simplify(f, Options{BlockedClause: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BlockedRemoved == 0 {
		t.Fatal("no blocked clauses removed")
	}
	// Any model of the simplified formula must extend to the original.
	ok, model := bruteSat(res.F)
	if !ok {
		t.Fatal("simplified formula unsatisfiable")
	}
	full, err := res.ExtendModel(model)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Eval(full) {
		t.Fatalf("extended model %v does not satisfy original", full)
	}
	if len(res.Blocked) != res.Stats.BlockedRemoved {
		t.Errorf("Blocked view has %d entries, stats say %d", len(res.Blocked), res.Stats.BlockedRemoved)
	}
}

func TestBlockedClauseNotRemovedWhenClashing(t *testing.T) {
	// (1 2) vs (-1 3): resolvent (2 3) is not tautological, so (1 2) is
	// not blocked on x1 (and not on x2 either since nothing contains -2...
	// which WOULD make it blocked on x2). Use a formula where every
	// literal has a non-tautological resolvent partner.
	f := cnf.NewFormula(0).Add(1, 2).Add(-1, 3).Add(-2, 4).Add(-3, -4).Add(3, 4)
	res, err := Simplify(f, Options{BlockedClause: true, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, bc := range res.Blocked {
		if bc.C.SameLits(cl(1, 2)) {
			t.Errorf("(1 2) wrongly classified as blocked")
		}
	}
}

func TestFailedLiterals(t *testing.T) {
	// Assuming x1 propagates x2 and ~x2: x1 fails, so ~x1 is forced.
	f := cnf.NewFormula(0).Add(-1, 2).Add(-1, -2).Add(1, 3)
	res, err := Simplify(f, Options{UnitPropagation: true, FailedLiterals: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FailedLiterals == 0 {
		t.Error("failed literal not found")
	}
	foundNeg := false
	for _, l := range res.Forced {
		if l == cnf.NegLit(0) {
			foundNeg = true
		}
	}
	if !foundNeg {
		t.Errorf("~x1 not forced: %v", res.Forced)
	}
}

func TestSimplifyDetectsUnsatByProbing(t *testing.T) {
	f := cnf.NewFormula(0).
		Add(1, 2).Add(1, -2).Add(-1, 3).Add(-1, -3)
	res, err := Simplify(f, Default())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unsat {
		t.Error("probing + propagation should refute this formula")
	}
}

// TestEquisatisfiableRandom is the central property test: on random small
// formulas, Simplify preserves satisfiability, and for satisfiable inputs
// ExtendModel turns any model of the simplified formula into a model of the
// original.
func TestEquisatisfiableRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for round := 0; round < 400; round++ {
		nVars := 3 + rng.Intn(7)
		nClauses := 2 + rng.Intn(4*nVars)
		f := cnf.NewFormula(nVars)
		for i := 0; i < nClauses; i++ {
			k := 1 + rng.Intn(3)
			c := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			f.AddClause(c)
		}
		wantSat, _ := bruteSat(f)

		res, err := Simplify(f, Default())
		if err != nil {
			t.Fatal(err)
		}
		gotSat, model := bruteSat(res.F)
		if res.Unsat {
			gotSat = false
		}
		if gotSat != wantSat {
			t.Fatalf("round %d: original sat=%v, simplified sat=%v\noriginal:\n%v\nsimplified:\n%v",
				round, wantSat, gotSat, f, res.F)
		}
		if gotSat {
			full, err := res.ExtendModel(model)
			if err != nil {
				t.Fatal(err)
			}
			if !f.Eval(full) {
				t.Fatalf("round %d: extended model %v does not satisfy original\n%v\nsimplified:\n%v\nforced=%v elim=%+v",
					round, full, f, res.F, res.Forced, res.Eliminated)
			}
		}
	}
}

// TestSimplifyThenSolveAndVerify checks the verification-grade workflow on
// preprocessed formulas: the proof produced for the simplified formula
// verifies against the simplified formula.
func TestSimplifyThenSolveAndVerify(t *testing.T) {
	for _, inst := range []gen.Instance{gen.PHP(5), gen.AdderEquiv(8), gen.XorChain(9)} {
		res, err := Simplify(inst.F, Default())
		if err != nil {
			t.Fatal(err)
		}
		if res.Unsat {
			continue // preprocessing alone refuted it
		}
		st, tr, _, _, err := solver.Solve(res.F, solver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if st != solver.Unsat {
			t.Fatalf("%s: simplified formula not UNSAT (%v)", inst.Name, st)
		}
		v, err := core.Verify(res.F, tr, core.Options{Mode: core.ModeCheckAll})
		if err != nil || !v.OK {
			t.Fatalf("%s: proof for simplified formula rejected: %v", inst.Name, err)
		}
	}
}

func TestSimplifyReducesBenchmarks(t *testing.T) {
	inst := gen.Fifo(4, 8)
	res, err := Simplify(inst.F, Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat {
		t.Skip("preprocessing refuted the instance outright")
	}
	if res.F.NumClauses() >= inst.F.NumClauses() {
		t.Errorf("no reduction: %d -> %d clauses", inst.F.NumClauses(), res.F.NumClauses())
	}
}

func TestTautologyDropped(t *testing.T) {
	f := cnf.NewFormula(0).Add(1, -1).Add(2, 3)
	res, err := Simplify(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TautologiesLost != 1 || res.F.NumClauses() != 1 {
		t.Errorf("stats=%+v clauses=%v", res.Stats, res.F.Clauses)
	}
}

func TestExtendModelRejectsUnsat(t *testing.T) {
	f := cnf.NewFormula(0).Add(1).Add(-1)
	res, _ := Simplify(f, Options{UnitPropagation: true})
	if _, err := res.ExtendModel(nil); err == nil {
		t.Error("ExtendModel on unsat result succeeded")
	}
}
