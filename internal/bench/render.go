package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// RenderTable1 prints Table 1 rows in the paper's layout.
func RenderTable1(w io.Writer, rows []Row1) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Name\tAll conflict clauses\tTested %\tClauses in initial CNF\tUnsatisfiable core %")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%.1f\n",
			r.Name, r.ConflictClauses, r.TestedPct, r.InitClauses, r.CorePct)
	}
	return tw.Flush()
}

// RenderTable2 prints Table 2 rows in the paper's layout (with an extra
// solve-time column so the "verification took 2-3x the proof generation
// time" claim is checkable from the same output).
func RenderTable2(w io.Writer, rows []Row2) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Name\tSolve time\tVerification time\tResolution graph size (nodes)\tConfl. clause proof size (lit.)\tRatio %")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%.0f\n",
			r.Name, fmtDur(r.SolveTime), fmtDur(r.VerifyTime), r.ResNodes, r.ProofLits, r.RatioPct)
	}
	return tw.Flush()
}

// RenderTable3 prints Table 3 rows.
func RenderTable3(w io.Writer, rows []Row3) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Name\tResol. proof size (nodes)\tConfl. cl. proof size (lit.)\tRatio %")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\n", r.Name, r.ResNodes, r.ProofLits, r.RatioPct)
	}
	return tw.Flush()
}

// RenderSchemes prints the learning-scheme ablation.
func RenderSchemes(w io.Writer, rows []SchemeRow) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Name\tScheme\tConflicts\t|F*|\tProof lits\tRes. nodes\tRes/clause\tLits/clause\tRatio %")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%v\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%.0f\n",
			r.Name, r.Scheme, r.Conflicts, r.ProofClauses, r.ProofLits, r.ResNodes,
			r.ResPerClause, r.LitsPerClause, r.RatioPct)
	}
	return tw.Flush()
}

// RenderVerifyModes prints the Verify1-vs-Verify2 ablation.
func RenderVerifyModes(w io.Writer, rows []VerifyModeRow) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Name\t|F*|\tTested (all)\tTime (all)\tTested (marked)\tTime (marked)\tTested %\tSpeedup %")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%d\t%s\t%.1f\t%.0f\n",
			r.Name, r.ProofSize, r.Tested1, fmtDur(r.Time1), r.Tested2, fmtDur(r.Time2),
			r.TestedPct2, r.SpeedupPct)
	}
	return tw.Flush()
}

// RenderEngines prints the BCP-engine ablation.
func RenderEngines(w io.Writer, rows []EngineRow) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Name\tWatched time\tCounting time\tSlowdown x\tProps (watched)\tProps (counting)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%d\t%d\n",
			r.Name, fmtDur(r.TimeWatched), fmtDur(r.TimeCounting), r.SlowdownX,
			r.PropsWatched, r.PropsCount)
	}
	return tw.Flush()
}

// RenderTrim prints the proof-trimming ablation.
func RenderTrim(w io.Writer, rows []TrimRow) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Name\tOriginal |F*|\tTrimmed |F*|\tKept %\tOriginal lits\tTrimmed lits")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%d\t%d\n",
			r.Name, r.Original, r.Trimmed, r.KeptPct, r.OriginalLits, r.TrimmedLits)
	}
	return tw.Flush()
}

// RenderSimplify prints the preprocessing ablation.
func RenderSimplify(w io.Writer, rows []SimplifyRow) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Name\tClauses\tAfter simp\tSimp time\tSolve raw\tConfl raw\tSolve simp\tConfl simp\tRefuted by simp")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%d\t%s\t%d\t%v\n",
			r.Name, r.ClausesBefore, r.ClausesAfter, fmtDur(r.PreprocessTime),
			fmtDur(r.SolveRaw), r.ConflictsRaw, fmtDur(r.SolvePre), r.ConflictsPre, r.RefutedByPre)
	}
	return tw.Flush()
}

// RenderCoreMethods prints the core-notion comparison.
func RenderCoreMethods(w io.Writer, rows []CoreMethodsRow) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Name\tClauses\tVerification core\tAssumption core\tResolution core\tMUS")
	for _, r := range rows {
		mus := "-"
		if r.MUS > 0 {
			mus = fmt.Sprintf("%d", r.MUS)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\n",
			r.Name, r.Clauses, r.VerifyCore, r.AssumptionCore, r.ResolutionCore, mus)
	}
	return tw.Flush()
}

// RenderBaselines prints the CDCL/DPLL/BDD comparison.
func RenderBaselines(w io.Writer, rows []BaselineRow) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Name\tClauses\tCDCL time\tConflicts\tDPLL time\tBacktracks\tBDD time\tBDD nodes")
	for _, r := range rows {
		dpllTime := fmtDur(r.DPLLTime)
		if r.DPLLTimedOut {
			dpllTime = ">" + dpllTime + " (budget)"
		}
		bddNodes := fmt.Sprintf("%d", r.BDDNodes)
		if r.BDDBlewUp {
			bddNodes = fmt.Sprintf(">%d (blow-up)", r.BDDNodesCap)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%s\t%d\t%s\t%s\n",
			r.Name, r.Clauses, fmtDur(r.CDCLTime), r.CDCLConflicts,
			dpllTime, r.DPLLBacktracks, fmtDur(r.BDDTime), bddNodes)
	}
	return tw.Flush()
}

// RenderCores prints core-fixpoint rows.
func RenderCores(w io.Writer, rows []CoreRow) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Name\tOriginal clauses\tFirst core\tFinal core\tIterations")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n",
			r.Name, r.Original, r.FirstCore, r.FinalCore, r.Iterations)
	}
	return tw.Flush()
}
