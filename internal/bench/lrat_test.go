package bench

import (
	"testing"

	"repro/internal/gen"
)

// lratGateReport builds a small two-instance hinted-proof report; the
// numbers are chosen so a test can degrade one copy and watch the gate trip.
func lratGateReport() *LRATReport {
	return &LRATReport{
		Instances: []LRATInstanceReport{
			{Name: "php-5", Additions: 140, Hints: 1500, RUPMillis: 50, HintedMillis: 8},
			{Name: "rand-9-50", Additions: 25, Hints: 270, RUPMillis: 20, HintedMillis: 4},
		},
	}
}

func TestDiffLRATPassesOnIdenticalReports(t *testing.T) {
	regs, compared := DiffLRAT(lratGateReport(), lratGateReport(), 0.15)
	if len(regs) != 0 {
		t.Fatalf("identical reports must pass, got %v", regs)
	}
	// 2 instances x (hints + additions) + 1 aggregate hints/sec.
	if compared != 5 {
		t.Fatalf("compared = %d, want 5", compared)
	}
}

func TestDiffLRATFailsOnFatterHints(t *testing.T) {
	fresh := lratGateReport()
	fresh.Instances[0].Hints = 2400 // +60% hints on php-5
	regs, _ := DiffLRAT(lratGateReport(), fresh, 0.15)
	if len(regs) != 1 {
		t.Fatalf("regs = %v, want exactly the hints-scanned regression", regs)
	}
	r := regs[0]
	if r.Instance != "php-5" || r.Metric != "hints-scanned" {
		t.Fatalf("wrong attribution: %+v", r)
	}
}

func TestDiffLRATFailsOnThroughputCollapse(t *testing.T) {
	fresh := lratGateReport()
	for i := range fresh.Instances {
		fresh.Instances[i].HintedMillis *= 2
	}
	regs, _ := DiffLRAT(lratGateReport(), fresh, 0.15)
	if len(regs) != 1 || regs[0].Metric != "hints/sec" || regs[0].Instance != "" {
		t.Fatalf("regs = %v, want the aggregate hints/sec regression", regs)
	}
}

func TestDiffLRATSkipsThroughputUnderNoiseFloor(t *testing.T) {
	base, fresh := lratGateReport(), lratGateReport()
	for _, r := range []*LRATReport{base, fresh} {
		for i := range r.Instances {
			r.Instances[i].HintedMillis /= 100 // sub-millisecond suite
		}
	}
	for i := range fresh.Instances {
		fresh.Instances[i].HintedMillis *= 3 // "collapse", in noise
	}
	regs, compared := DiffLRAT(base, fresh, 0.15)
	if len(regs) != 0 {
		t.Fatalf("sub-floor throughput must not gate, got %v", regs)
	}
	if compared != 4 { // only the deterministic per-instance metrics
		t.Fatalf("compared = %d, want 4", compared)
	}
}

func TestDiffLRATIgnoresUnsharedInstances(t *testing.T) {
	fresh := lratGateReport()
	fresh.Instances = fresh.Instances[:1]
	regs, compared := DiffLRAT(lratGateReport(), fresh, 0.15)
	// 2 deterministic metrics; the 8ms single-instance aggregate is under
	// the wall floor, so hints/sec is skipped.
	if len(regs) != 0 || compared != 2 {
		t.Fatalf("subset run: regs=%v compared=%d, want none/2", regs, compared)
	}
	fresh.Instances[0].Name = "nonexistent"
	if _, compared := DiffLRAT(lratGateReport(), fresh, 0.15); compared != 0 {
		t.Fatalf("disjoint reports compared = %d, want 0", compared)
	}
}

// TestLRATBenchEndToEnd runs the real harness on one small instance and
// checks the report is self-consistent: the hinted check accepted the
// recorded proof (LRATBench errors otherwise) and the counters line up.
func TestLRATBenchEndToEnd(t *testing.T) {
	rep, err := LRATBench([]gen.Instance{gen.PHP(4)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Instances) != 1 {
		t.Fatalf("instances = %d, want 1", len(rep.Instances))
	}
	ir := rep.Instances[0]
	if ir.Additions <= 0 || ir.Hints <= 0 {
		t.Fatalf("empty recorded proof: %+v", ir)
	}
	if ir.HintsPerStep <= 0 {
		t.Fatalf("hints/step = %v, want positive", ir.HintsPerStep)
	}
	if rep.TotalHints != ir.Hints {
		t.Fatalf("totals disagree: %d vs %d", rep.TotalHints, ir.Hints)
	}
}
