// Package bench is the experiment harness: it runs the solver and the proof
// verifier over the benchmark suites and produces the rows of the paper's
// Tables 1–3 plus the ablations DESIGN.md calls out. The cmd/tables binary
// and the repository-level bench_test.go benchmarks are thin wrappers over
// this package.
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/proof"
	"repro/internal/solver"
)

// Run holds everything measured for one instance: the solve, the proof, and
// the verification.
type Run struct {
	Inst gen.Instance

	SolveTime  time.Duration
	VerifyTime time.Duration

	Stats  solver.Stats
	Trace  *proof.Trace
	Verify *core.Result
}

// DefaultSolverOptions returns the configuration used throughout the
// reproduction: BerkMin heuristic with hybrid learning (the paper notes
// BerkMin "once in a while deduces clauses in terms of decision variables",
// and that this new feature both speeds some instances up and makes
// resolution graphs blow up, which Tables 2–3 rely on).
func DefaultSolverOptions() solver.Options {
	return solver.Options{
		Learn:        solver.LearnHybrid,
		Heuristic:    solver.HeurBerkMin,
		MaxConflicts: 5_000_000,
	}
}

// RunInstance solves the instance, verifies the proof, and returns all
// measurements. It fails when the solve does not prove UNSAT or when the
// independent verifier rejects the proof.
func RunInstance(inst gen.Instance, sopt solver.Options, vopt core.Options) (*Run, error) {
	t0 := time.Now()
	st, tr, _, stats, err := solver.Solve(inst.F, sopt)
	solveTime := time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", inst.Name, err)
	}
	if st != solver.Unsat {
		return nil, fmt.Errorf("bench: %s: solver returned %v (conflicts=%d)", inst.Name, st, stats.Conflicts)
	}
	t1 := time.Now()
	res, err := core.Verify(inst.F, tr, vopt)
	verifyTime := time.Since(t1)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", inst.Name, err)
	}
	if !res.OK {
		return nil, fmt.Errorf("bench: %s: proof REJECTED at clause %d — solver bug", inst.Name, res.FailedIndex)
	}
	return &Run{
		Inst:       inst,
		SolveTime:  solveTime,
		VerifyTime: verifyTime,
		Stats:      stats,
		Trace:      tr,
		Verify:     res,
	}, nil
}

// SuiteMain returns the scaled instance suite standing in for the paper's
// Tables 1 and 2 instance list: pipelined-microprocessor verification
// (pipe), PicoJava-style control verification (ctl), bounded model checking
// (barrel, longmult, cnt) and combinational equivalence checking (addeq,
// alueq). See DESIGN.md §3 for the substitution rationale.
func SuiteMain() []gen.Instance {
	return []gen.Instance{
		// verification of pipelined microprocessors [15]
		gen.Pipe(2, 6),
		gen.Pipe(3, 6),
		gen.Pipe(3, 8),
		gen.Pipe(4, 8),
		gen.Pipe(5, 8),
		// verification of PicoJava II microprocessor [21]
		gen.Control(6, 3),
		gen.Control(8, 3),
		gen.Control(6, 4),
		gen.Control(8, 4),
		// bounded model checking [20]
		gen.Barrel(8, 3),
		gen.Barrel(16, 3),
		gen.Longmult(6, 5),
		gen.Longmult(7, 6),
		gen.Longmult(8, 7),
		// equivalence checking [19]
		gen.AdderEquiv(16),
		gen.AdderEquiv(32),
		gen.AdderEquiv3(24),
		gen.AluEquiv(8),
		gen.AluEquiv(12),
		gen.SorterEquiv(14),
		// bounded model checking, SAT-2002 [18]
		gen.Counter(8, 40),
		gen.Counter(10, 60),
		gen.Counter(10, 80),
	}
}

// SuiteFifo returns the growing-size fifo family standing in for Table 3's
// fifo8_300/350/400.
func SuiteFifo() []gen.Instance {
	return []gen.Instance{
		gen.Fifo(8, 30),
		gen.Fifo(8, 60),
		gen.Fifo(8, 90),
	}
}

// SuiteAblation returns the instances used for the learning-scheme
// ablation. Pure decision-scheme learning (the weakest configuration — the
// paper's solvers always mixed it with 1UIP) cannot finish the counter and
// control families in reasonable budgets, so this suite is restricted to
// instances all three schemes solve.
func SuiteAblation() []gen.Instance {
	return []gen.Instance{
		gen.Pipe(2, 6),
		gen.Barrel(8, 2),
		gen.Longmult(6, 5),
		gen.AdderEquiv(16),
		gen.AluEquiv(8),
		gen.Fifo(8, 15),
		gen.PHP(6),
	}
}

// SuiteQuick returns a small fast suite for unit tests and -short benches.
func SuiteQuick() []gen.Instance {
	return []gen.Instance{
		gen.AdderEquiv(8),
		gen.Pipe(2, 4),
		gen.Barrel(8, 2),
		gen.Fifo(4, 8),
		gen.PHP(5),
	}
}

// --- Table 1 ----------------------------------------------------------------

// Row1 is a row of Table 1 (unsatisfiable core extraction).
type Row1 struct {
	Name            string
	ConflictClauses int     // |F*|
	TestedPct       float64 // % of F* actually checked by Verify2
	InitClauses     int     // clauses in the initial CNF
	CorePct         float64 // % of initial clauses in the unsat core
}

// Table1 runs Verify2 over the suite and produces Table 1 rows.
func Table1(insts []gen.Instance, sopt solver.Options) ([]Row1, error) {
	rows := make([]Row1, 0, len(insts))
	for _, inst := range insts {
		run, err := RunInstance(inst, sopt, core.Options{Mode: core.ModeCheckMarked})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row1{
			Name:            inst.Name,
			ConflictClauses: run.Trace.Len(),
			TestedPct:       run.Verify.TestedPct(),
			InitClauses:     inst.F.NumClauses(),
			CorePct:         run.Verify.CorePct(inst.F.NumClauses()),
		})
	}
	return rows, nil
}

// --- Table 2 ----------------------------------------------------------------

// Row2 is a row of Table 2 (proof verification; conflict-clause proof vs
// resolution-graph proof sizes).
type Row2 struct {
	Name       string
	SolveTime  time.Duration
	VerifyTime time.Duration
	// ResNodes is the lower bound on resolution-graph internal nodes (the
	// total number of resolution steps over all deduced clauses).
	ResNodes int64
	// ProofLits is the conflict-clause proof size in literals.
	ProofLits int64
	// RatioPct is 100 * ProofLits / ResNodes (the paper's last column).
	RatioPct float64
}

// Table2 runs the suite and produces Table 2 rows.
func Table2(insts []gen.Instance, sopt solver.Options) ([]Row2, error) {
	rows := make([]Row2, 0, len(insts))
	for _, inst := range insts {
		run, err := RunInstance(inst, sopt, core.Options{Mode: core.ModeCheckMarked})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row2For(run))
	}
	return rows, nil
}

func row2For(run *Run) Row2 {
	resNodes := run.Trace.TotalResolutions()
	lits := run.Trace.NumLiterals()
	ratio := 0.0
	if resNodes > 0 {
		ratio = 100 * float64(lits) / float64(resNodes)
	}
	return Row2{
		Name:       run.Inst.Name,
		SolveTime:  run.SolveTime,
		VerifyTime: run.VerifyTime,
		ResNodes:   resNodes,
		ProofLits:  lits,
		RatioPct:   ratio,
	}
}

// --- Table 3 ----------------------------------------------------------------

// Row3 is a row of Table 3 (growth of resolution proof size relative to the
// conflict-clause proof as instances grow).
type Row3 struct {
	Name      string
	ResNodes  int64
	ProofLits int64
	RatioPct  float64
}

// Table3 runs the growing family and produces Table 3 rows.
func Table3(insts []gen.Instance, sopt solver.Options) ([]Row3, error) {
	rows := make([]Row3, 0, len(insts))
	for _, inst := range insts {
		run, err := RunInstance(inst, sopt, core.Options{Mode: core.ModeCheckMarked})
		if err != nil {
			return nil, err
		}
		r2 := row2For(run)
		rows = append(rows, Row3{
			Name:      r2.Name,
			ResNodes:  r2.ResNodes,
			ProofLits: r2.ProofLits,
			RatioPct:  r2.RatioPct,
		})
	}
	return rows, nil
}
