package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/lrat"
	"repro/internal/proof"
	"repro/internal/sched"
)

// Parallel-schedule benchmark: measures what dependency-aware scheduling
// buys over the fixed-chunk split. Each instance is a hand-built formula +
// trace pair whose shape is adversarial for chunking — expensive steps
// clustered at the front, most of the trace redundant — and the same
// verdict is derived two ways:
//
//   - chunk — VerifyParallelOpts with the fixed-chunk schedule: every
//     worker builds a private clause database and every step is checked by
//     unit propagation, marked or not (chunking cannot honor check-marked).
//   - dag   — the emit-then-schedule pipeline: one sequential check-marked
//     pass records LRAT hints, then the work-stealing scheduler revalidates
//     the recorded steps by propagation-free replay over the hint DAG.
//
// The headline Speedup is suite-total chunk wall time over suite-total DAG
// wall time at the same worker count; the acceptance floor is 1.3x. The
// scheduler itself is measured separately (T1 = one worker replaying every
// step, TW = the work-stealing run), and CritRatio compares TW against the
// Brent lower bound max(T1/P, T1*CritCost/TotalCost) with P capped at the
// machine's CPU count — on a single-core host the bound degenerates to T1
// and CritRatio is exactly the scheduler's overhead factor, which must stay
// under 2x.

// ParSpeedupFloor is the minimum acceptable suite-aggregate chunk/DAG
// speedup, and ParCritRatioCeil the maximum acceptable ratio of the
// work-stealing wall time to its critical-path lower bound. Both are only
// enforced above the wall-time noise floor (minWallMillis).
const (
	ParSpeedupFloor  = 1.3
	ParCritRatioCeil = 2.0
)

// ParInstance is a named formula + trace pair built for scheduler
// benchmarking (no solver involved: the trace shape is the experiment).
type ParInstance struct {
	Name string
	F    *cnf.Formula
	T    *proof.Trace
}

// parLit converts a 1-based variable number to a literal.
func parLit(v int, neg bool) cnf.Lit {
	if neg {
		return cnf.FromDimacs(-v)
	}
	return cnf.FromDimacs(v)
}

// selectorBlocks builds the benchmark family. Every block b has a selector
// s_b gating a private implication chain of length chainLen:
//
//	(¬s_b ∨ c_{b,1})  (¬c_{b,i} ∨ c_{b,i+1})  (¬s_b ∨ ¬c_{b,len})
//
// so the unit clause (¬s_b) is RUP at a cost of ~chainLen propagations and
// cites the whole chain in its hints. Nothing propagates at the root: every
// chain is dormant until its selector is asserted.
//
// The trace derives (¬s_b) for every junk block first — long chains,
// clustered at the front, exactly where a fixed-chunk split lands them on
// worker zero — then for every marked block, and ends with the empty
// clause, which conflicts on one formula clause (s_1 ∨ … ∨ s_marked) over
// the MARKED selectors only. The marking walk therefore never touches a
// junk step: check-marked verification skips them, chunked check-all
// cannot.
//
// depth > 1 additionally chains the marked units into derivation layers:
// marked block k's gate clause carries ¬s_{k-1} of the previous marked
// block, so its check is only RUP once step k-1 is in the database — a
// critical path for the DAG scheduler to respect.
func selectorBlocks(name string, junk, junkLen, marked, markedLen, depth int) ParInstance {
	f := cnf.NewFormula(0)
	tr := proof.New()
	next := 1 // next fresh 1-based variable

	// block emits the clauses for one selector-gated chain and returns the
	// selector variable. gate, when non-zero, is a selector whose trace unit
	// (¬gate) must already be derived for this block's check to propagate.
	block := func(chainLen, gate int) int {
		s := next
		next++
		c0 := next
		next += chainLen
		if gate != 0 {
			f.AddClause(cnf.Clause{parLit(s, true), parLit(gate, false), parLit(c0, false)})
		} else {
			f.AddClause(cnf.Clause{parLit(s, true), parLit(c0, false)})
		}
		for i := 0; i < chainLen-1; i++ {
			f.AddClause(cnf.Clause{parLit(c0+i, true), parLit(c0+i+1, false)})
		}
		f.AddClause(cnf.Clause{parLit(s, true), parLit(c0+chainLen-1, true)})
		return s
	}

	junkSel := make([]int, junk)
	for b := range junkSel {
		junkSel[b] = block(junkLen, 0)
	}
	markedSel := make([]int, marked)
	for b := range markedSel {
		gate := 0
		if depth > 1 && b%depth != 0 {
			gate = markedSel[b-1] // chain within a layer of `depth` blocks
		}
		markedSel[b] = block(markedLen, gate)
	}

	// The conflict clause the empty step falls over: only marked selectors.
	disj := make(cnf.Clause, 0, marked)
	for _, s := range markedSel {
		disj = append(disj, parLit(s, false))
	}
	f.AddClause(disj)

	for _, s := range junkSel {
		tr.Append(cnf.Clause{parLit(s, true)}, 1)
	}
	for _, s := range markedSel {
		tr.Append(cnf.Clause{parLit(s, true)}, 1)
	}
	tr.Append(cnf.Clause{}, 1)
	return ParInstance{Name: name, F: f, T: tr}
}

// ParInstances returns the full benchmark suite. Quick mode keeps only the
// headline imbalanced instance — same name and parameters, so a quick run
// still gates against the committed full-suite baseline.
func ParInstances(quick bool) []ParInstance {
	insts := []ParInstance{
		// Front-loaded junk: 64 long dead chains a chunk split lands on the
		// first workers, 48 shorter marked chains doing the real work.
		selectorBlocks("par-imbalanced", 64, 900, 48, 400, 1),
		// All-marked wide layer: every step replayed, maximal steal
		// traffic, and enough replay wall (T1 past the noise floor) to make
		// the critical-path-ratio ceiling a real gate.
		selectorBlocks("par-wide", 0, 0, 768, 1200, 1),
		// Deep derivation chains: layers of 24 dependent marked steps.
		selectorBlocks("par-deep", 0, 0, 240, 500, 24),
	}
	if quick {
		return insts[:1]
	}
	return insts
}

// ParInstanceReport is one instance's measurements.
type ParInstanceReport struct {
	Name     string `json:"name"`
	Vars     int    `json:"vars"`
	Clauses  int    `json:"clauses"`
	TraceLen int    `json:"trace_len"`
	Marked   int    `json:"marked_steps"`

	// The recorded hint DAG's shape: deterministic functions of the
	// instance and the emission code, gated strictly.
	DAGStats sched.Stats `json:"dag"`

	// End-to-end pipeline walls, best of iters, same worker count.
	ChunkMillis float64 `json:"chunk_ms"`
	DAGMillis   float64 `json:"dag_ms"`
	Speedup     float64 `json:"speedup"` // chunk over dag

	// Scheduler-level replay walls: T1 is one worker stepping the whole
	// recording, TW the work-stealing run at Workers.
	T1Millis  float64 `json:"t1_ms"`
	TWMillis  float64 `json:"tw_ms"`
	Steals    int64   `json:"steals"`
	CritRatio float64 `json:"crit_ratio"` // TW over the Brent lower bound
}

// ParReport is the whole benchmark, serialised to BENCH_par.json.
type ParReport struct {
	Iters   int `json:"iters"`
	Workers int `json:"workers"`
	// EffectiveCPUs is runtime.NumCPU() at measurement time: the P in the
	// Brent bound. Committed baselines record it so a reader can interpret
	// CritRatio (on a 1-CPU host the bound is T1 and the ratio is pure
	// scheduler overhead).
	EffectiveCPUs int                 `json:"effective_cpus"`
	Instances     []ParInstanceReport `json:"instances"`

	TotalChunkMillis float64 `json:"total_chunk_ms"`
	TotalDAGMillis   float64 `json:"total_dag_ms"`
	// Speedup is suite-total chunk wall over suite-total DAG wall.
	Speedup float64 `json:"speedup"`
}

// parMeasure times fn, best of iters.
func parMeasure(iters int, fn func() error) (float64, error) {
	best := time.Duration(-1)
	for it := 0; it < iters; it++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); best < 0 || d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / 1e6, nil
}

// ParBench runs the suite at the given worker count (the acceptance
// numbers use 8).
func ParBench(insts []ParInstance, workers, iters int) (*ParReport, error) {
	if iters < 1 {
		iters = 1
	}
	if workers < 1 {
		workers = 8
	}
	rep := &ParReport{Iters: iters, Workers: workers, EffectiveCPUs: runtime.NumCPU()}
	for _, inst := range insts {
		ir, err := parBenchOne(inst, workers, iters)
		if err != nil {
			return nil, err
		}
		rep.Instances = append(rep.Instances, *ir)
		rep.TotalChunkMillis += ir.ChunkMillis
		rep.TotalDAGMillis += ir.DAGMillis
	}
	rep.Speedup = ratio(rep.TotalChunkMillis, rep.TotalDAGMillis)
	return rep, nil
}

func parBenchOne(inst ParInstance, workers, iters int) (*ParInstanceReport, error) {
	ir := &ParInstanceReport{
		Name: inst.Name, Vars: inst.F.NumVars,
		Clauses: inst.F.NumClauses(), TraceLen: inst.T.Len(),
	}

	// One producing run records the hints the scheduler-level measurements
	// replay (the end-to-end DAG timing below re-records its own).
	rec := new(lrat.Recorder)
	res, err := core.Verify(inst.F, inst.T, core.Options{Mode: core.ModeCheckMarked, Hints: rec})
	if err != nil {
		return nil, fmt.Errorf("bench: %s: producing run: %w", inst.Name, err)
	}
	if !res.OK {
		return nil, fmt.Errorf("bench: %s: proof rejected at %d", inst.Name, res.FailedIndex)
	}
	ir.Marked = res.MarkedProof
	lp, err := rec.Proof()
	if err != nil {
		return nil, fmt.Errorf("bench: %s: recorded proof: %w", inst.Name, err)
	}
	rep, err := lrat.NewReplayer(inst.F, lp)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: replayer: %w", inst.Name, err)
	}
	d := rep.DAG()
	ir.DAGStats = d.Stats()

	// End-to-end: fixed-chunk check-all vs DAG emit-then-schedule, both at
	// the same requested worker count.
	ir.ChunkMillis, err = parMeasure(iters, func() error {
		r, err := core.VerifyParallelOpts(inst.F, inst.T,
			core.Options{Mode: core.ModeCheckAll}, workers)
		if err != nil {
			return fmt.Errorf("bench: %s: chunk: %w", inst.Name, err)
		}
		if !r.OK {
			return fmt.Errorf("bench: %s: chunk rejected at %d", inst.Name, r.FailedIndex)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ir.DAGMillis, err = parMeasure(iters, func() error {
		r, err := core.VerifyParallelOpts(inst.F, inst.T,
			core.Options{Mode: core.ModeCheckMarked, Sched: sched.StrategyDAG}, workers)
		if err != nil {
			return fmt.Errorf("bench: %s: dag: %w", inst.Name, err)
		}
		if !r.OK {
			return fmt.Errorf("bench: %s: dag rejected at %d", inst.Name, r.FailedIndex)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ir.Speedup = ratio(ir.ChunkMillis, ir.DAGMillis)

	// Scheduler-level: T1 replays every recorded step on one scratchpad.
	ir.T1Millis, err = parMeasure(iters, func() error {
		rw := rep.NewWorker()
		for k := 0; k < rep.Steps(); k++ {
			if _, why := rw.Step(k); why != "" {
				return fmt.Errorf("bench: %s: T1 replay step %d: %s", inst.Name, k, why)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// TW drives sched.Run directly, which also surfaces the steal count.
	w := core.ResolveWorkersDAG(ir.DAGStats.MaxWidth, workers)
	var steals int64
	ir.TWMillis, err = parMeasure(iters, func() error {
		rws := make([]*lrat.ReplayWorker, w)
		stats, err := sched.Run(d, sched.Options{Workers: w}, func(wk, k, attempt int) error {
			rw := rws[wk]
			if rw == nil || attempt > 0 {
				rw = rep.NewWorker()
				rws[wk] = rw
			}
			if _, why := rw.Step(k); why != "" {
				return fmt.Errorf("bench: %s: TW replay step %d: %s", inst.Name, k, why)
			}
			return nil
		})
		if err != nil {
			return err
		}
		steals = stats.Steals
		return nil
	})
	if err != nil {
		return nil, err
	}
	ir.Steals = steals

	// Brent bound with P capped at the real CPU count: requesting 8 workers
	// on one core cannot beat T1, and pretending otherwise would let a
	// single-core host "pass" any overhead.
	peff := workers
	if n := runtime.NumCPU(); peff > n {
		peff = n
	}
	bound := ir.T1Millis / float64(peff)
	if ir.DAGStats.TotalCost > 0 {
		if cb := ir.T1Millis * float64(ir.DAGStats.CritCost) / float64(ir.DAGStats.TotalCost); cb > bound {
			bound = cb
		}
	}
	ir.CritRatio = ratio(ir.TWMillis, bound)
	return ir, nil
}

// CheckFloors enforces the acceptance criteria on a report: the aggregate
// chunk/DAG speedup floor and the per-instance critical-path ratio ceiling.
// Measurements under the wall-time noise floor are not judged (a
// sub-10ms wall cannot separate scheduling from timer jitter). It returns
// one human-readable violation per failure, empty on a pass.
func (r *ParReport) CheckFloors() []string {
	var v []string
	if r.TotalChunkMillis >= minWallMillis && r.TotalDAGMillis >= minWallMillis/wallTolFactor {
		if r.Speedup < ParSpeedupFloor {
			v = append(v, fmt.Sprintf("aggregate chunk/dag speedup %.2fx under the %.1fx floor",
				r.Speedup, ParSpeedupFloor))
		}
	}
	for _, ir := range r.Instances {
		if ir.T1Millis < minWallMillis {
			continue
		}
		if ir.CritRatio > ParCritRatioCeil {
			v = append(v, fmt.Sprintf("%s: wall %.2fx of the critical-path bound (ceil %.1fx)",
				ir.Name, ir.CritRatio, ParCritRatioCeil))
		}
	}
	return v
}
