package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lrat"
	"repro/internal/solver"
)

// LRAT benchmark: measures what the hint pipeline buys on re-verification.
// Each instance is verified once with the hint recorder attached (the
// producing run, not timed), then the same verdict is re-derived two ways:
//
//   - rup    — full backward RUP re-verification (ModeCheckMarked, watched
//     engine): every check re-runs unit propagation
//   - hinted — lrat.Check over the recorded proof: no propagation at all,
//     each step replays its named antecedents in order
//
// The headline Speedup is total RUP wall time over total hinted wall time
// across the suite; the acceptance floor documented in DESIGN.md is 5x.

// LRATInstanceReport is one instance's measurements.
type LRATInstanceReport struct {
	Name     string `json:"name"`
	Vars     int    `json:"vars"`
	Clauses  int    `json:"clauses"`
	TraceLen int    `json:"trace_len"`

	// Additions/Deletions/Hints describe the recorded proof. They are
	// deterministic functions of the instance and the emission code, so the
	// regression gate compares them strictly.
	Additions int   `json:"additions"`
	Deletions int   `json:"deletions"`
	Hints     int64 `json:"hints_scanned"`

	RUPMillis    float64 `json:"rup_ms"`    // best of iters
	HintedMillis float64 `json:"hinted_ms"` // best of iters

	// HintsPerStep is mean antecedents replayed per addition step.
	HintsPerStep float64 `json:"hints_per_step"`
	// Speedup is RUP wall time over hinted wall time.
	Speedup float64 `json:"speedup"`
}

// LRATReport is the whole benchmark, serialised to BENCH_lrat.json.
type LRATReport struct {
	Iters     int                  `json:"iters"`
	Instances []LRATInstanceReport `json:"instances"`

	TotalRUPMillis    float64 `json:"total_rup_ms"`
	TotalHintedMillis float64 `json:"total_hinted_ms"`
	TotalHints        int64   `json:"total_hints_scanned"`

	// Speedup is suite-total RUP wall time over suite-total hinted wall
	// time: how much cheaper re-verification from stored hints is.
	Speedup float64 `json:"speedup"`
}

// lratMeasure times one full hinted check, best of iters, and sanity-checks
// the verdict on every repetition.
func lratMeasure(inst gen.Instance, p *lrat.Proof, iters int) (float64, *lrat.Result, error) {
	var last *lrat.Result
	best := time.Duration(-1)
	for it := 0; it < iters; it++ {
		t0 := time.Now()
		res, err := lrat.Check(inst.F, p, lrat.Options{})
		d := time.Since(t0)
		if err != nil {
			return 0, nil, fmt.Errorf("bench: %s: hinted check: %w", inst.Name, err)
		}
		if !res.OK {
			return 0, nil, fmt.Errorf("bench: %s: hinted check rejected at step %d: %s",
				inst.Name, res.FailedStep, res.Reason)
		}
		if best < 0 || d < best {
			best = d
		}
		last = res
	}
	return float64(best.Nanoseconds()) / 1e6, last, nil
}

// LRATBench solves each instance once, records hints during one producing
// verification, then races full RUP re-verification against the hinted
// replay.
func LRATBench(insts []gen.Instance, iters int) (*LRATReport, error) {
	if iters < 1 {
		iters = 1
	}
	rep := &LRATReport{Iters: iters}
	for _, inst := range insts {
		st, tr, _, _, err := solver.Solve(inst.F, DefaultSolverOptions())
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", inst.Name, err)
		}
		if st != solver.Unsat {
			return nil, fmt.Errorf("bench: %s: solver returned %v", inst.Name, st)
		}

		// The producing run: verify once with the recorder attached. Not
		// timed — emission overhead is covered by the core tests; here the
		// question is what the recorded hints buy afterwards.
		var rec lrat.Recorder
		res, err := core.Verify(inst.F, tr, core.Options{
			Mode:   core.ModeCheckMarked,
			Engine: core.EngineWatched,
			Hints:  &rec,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: %s: producing run: %w", inst.Name, err)
		}
		if !res.OK {
			return nil, fmt.Errorf("bench: %s: proof rejected at %d", inst.Name, res.FailedIndex)
		}
		lp, err := rec.Proof()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: recorded proof: %w", inst.Name, err)
		}

		rupRow, err := bcpMeasure(inst, tr, core.EngineWatched, iters)
		if err != nil {
			return nil, err
		}
		hintedMillis, cres, err := lratMeasure(inst, lp, iters)
		if err != nil {
			return nil, err
		}

		ir := LRATInstanceReport{
			Name:         inst.Name,
			Vars:         inst.F.NumVars,
			Clauses:      inst.F.NumClauses(),
			TraceLen:     tr.Len(),
			Additions:    cres.Additions,
			Deletions:    cres.Deletions,
			Hints:        cres.HintsScanned,
			RUPMillis:    rupRow.VerifyMillis,
			HintedMillis: hintedMillis,
			Speedup:      ratio(rupRow.VerifyMillis, hintedMillis),
		}
		if cres.Additions > 0 {
			ir.HintsPerStep = float64(cres.HintsScanned) / float64(cres.Additions)
		}
		rep.Instances = append(rep.Instances, ir)
		rep.TotalRUPMillis += ir.RUPMillis
		rep.TotalHintedMillis += ir.HintedMillis
		rep.TotalHints += ir.Hints
	}
	rep.Speedup = ratio(rep.TotalRUPMillis, rep.TotalHintedMillis)
	return rep, nil
}
