package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/muscore"
	"repro/internal/resolution"
	"repro/internal/simplify"
	"repro/internal/solver"
)

// SimplifyRow compares solving with and without preprocessing.
type SimplifyRow struct {
	Name           string
	ClausesBefore  int
	ClausesAfter   int
	PreprocessTime time.Duration
	SolveRaw       time.Duration
	ConflictsRaw   int64
	SolvePre       time.Duration
	ConflictsPre   int64
	RefutedByPre   bool
}

// SimplifyAblation measures the preprocessor's effect on the suite.
func SimplifyAblation(insts []gen.Instance, sopt solver.Options) ([]SimplifyRow, error) {
	var rows []SimplifyRow
	for _, inst := range insts {
		row := SimplifyRow{Name: inst.Name, ClausesBefore: inst.F.NumClauses()}

		t0 := time.Now()
		st, _, _, stats, err := solver.Solve(inst.F, sopt)
		row.SolveRaw = time.Since(t0)
		row.ConflictsRaw = stats.Conflicts
		if err != nil {
			return nil, err
		}
		if st != solver.Unsat {
			return nil, fmt.Errorf("bench: %s: raw solve returned %v", inst.Name, st)
		}

		t1 := time.Now()
		pre, err := simplify.Simplify(inst.F, simplify.Default())
		row.PreprocessTime = time.Since(t1)
		if err != nil {
			return nil, err
		}
		row.ClausesAfter = pre.F.NumClauses()
		row.RefutedByPre = pre.Unsat
		if !pre.Unsat {
			t2 := time.Now()
			st2, _, _, stats2, err := solver.Solve(pre.F, sopt)
			row.SolvePre = time.Since(t2)
			row.ConflictsPre = stats2.Conflicts
			if err != nil {
				return nil, err
			}
			if st2 != solver.Unsat {
				return nil, fmt.Errorf("bench: %s: preprocessing broke unsatisfiability (%v)", inst.Name, st2)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CoreMethodsRow compares the repository's three unsat-core notions:
// the paper's verification-based core, the assumption-based (selector)
// core, and the resolution-graph-reachable core; plus the MUS lower bound
// when affordable.
type CoreMethodsRow struct {
	Name           string
	Clauses        int
	VerifyCore     int
	AssumptionCore int
	ResolutionCore int
	MUS            int // 0 when skipped
}

// CoreMethodsAblation runs all core extractors per instance. computeMUS
// bounds the instance size (in clauses) up to which the quadratic MUS
// minimization runs.
func CoreMethodsAblation(insts []gen.Instance, sopt solver.Options, musMaxClauses int) ([]CoreMethodsRow, error) {
	var rows []CoreMethodsRow
	for _, inst := range insts {
		row := CoreMethodsRow{Name: inst.Name, Clauses: inst.F.NumClauses()}

		// Verification-based core (the paper's).
		run, err := RunInstance(inst, sopt, core.Options{Mode: core.ModeCheckMarked})
		if err != nil {
			return nil, err
		}
		row.VerifyCore = len(run.Verify.Core)

		// Assumption-based core.
		ac, err := muscore.Extract(inst.F, sopt)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", inst.Name, err)
		}
		row.AssumptionCore = len(ac)

		// Resolution-graph-reachable core.
		ropts := sopt
		ropts.RecordChains = true
		s, err := solver.NewFromFormula(inst.F, ropts)
		if err != nil {
			return nil, err
		}
		if st := s.Run(); st != solver.Unsat {
			return nil, fmt.Errorf("bench: %s: %v", inst.Name, st)
		}
		rp, err := resolution.FromSolverRun(inst.F, s.Trace(), s.Chains())
		if err != nil {
			return nil, err
		}
		g, err := rp.Expand()
		if err != nil {
			return nil, err
		}
		row.ResolutionCore = g.Reachable().SourcesTouched

		if inst.F.NumClauses() <= musMaxClauses {
			mus, err := muscore.Minimize(inst.F, ac, sopt)
			if err != nil {
				return nil, fmt.Errorf("bench: %s MUS: %w", inst.Name, err)
			}
			row.MUS = len(mus)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
