package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV export for every row type, so measurements feed spreadsheets and
// plotting scripts without scraping the tab-rendered tables.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func ms(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
}

// CSVTable1 writes Table 1 rows as CSV.
func CSVTable1(w io.Writer, rows []Row1) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Name,
			strconv.Itoa(r.ConflictClauses),
			fmt.Sprintf("%.2f", r.TestedPct),
			strconv.Itoa(r.InitClauses),
			fmt.Sprintf("%.2f", r.CorePct),
		}
	}
	return writeCSV(w, []string{"name", "conflict_clauses", "tested_pct", "init_clauses", "core_pct"}, out)
}

// CSVTable2 writes Table 2 rows as CSV (times in milliseconds).
func CSVTable2(w io.Writer, rows []Row2) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Name,
			ms(r.SolveTime),
			ms(r.VerifyTime),
			strconv.FormatInt(r.ResNodes, 10),
			strconv.FormatInt(r.ProofLits, 10),
			fmt.Sprintf("%.2f", r.RatioPct),
		}
	}
	return writeCSV(w, []string{"name", "solve_ms", "verify_ms", "res_nodes", "proof_lits", "ratio_pct"}, out)
}

// CSVTable3 writes Table 3 rows as CSV.
func CSVTable3(w io.Writer, rows []Row3) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Name,
			strconv.FormatInt(r.ResNodes, 10),
			strconv.FormatInt(r.ProofLits, 10),
			fmt.Sprintf("%.2f", r.RatioPct),
		}
	}
	return writeCSV(w, []string{"name", "res_nodes", "proof_lits", "ratio_pct"}, out)
}

// CSVSchemes writes the learning-scheme ablation as CSV.
func CSVSchemes(w io.Writer, rows []SchemeRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Name,
			r.Scheme.String(),
			strconv.FormatInt(r.Conflicts, 10),
			strconv.Itoa(r.ProofClauses),
			strconv.FormatInt(r.ProofLits, 10),
			strconv.FormatInt(r.ResNodes, 10),
			fmt.Sprintf("%.2f", r.ResPerClause),
			fmt.Sprintf("%.2f", r.LitsPerClause),
			fmt.Sprintf("%.2f", r.RatioPct),
		}
	}
	return writeCSV(w, []string{
		"name", "scheme", "conflicts", "proof_clauses", "proof_lits",
		"res_nodes", "res_per_clause", "lits_per_clause", "ratio_pct",
	}, out)
}
