package bench

import (
	"strings"
	"testing"
)

// gateReport builds a small two-instance report; visits/props are chosen so
// a test can degrade one copy and watch the gate trip.
func gateReport() *BCPReport {
	mk := func(engine string, checked int, props, visits, occ int64, ms float64) BCPRow {
		return BCPRow{Engine: engine, Checked: checked, Propagations: props,
			WatcherVisits: visits, OccTouches: occ, VerifyMillis: ms}
	}
	return &BCPReport{
		Instances: []BCPInstanceReport{
			{
				Name: "php-5",
				Rows: []BCPRow{
					mk("watched", 100, 10000, 2000, 0, 10),
					mk("counting", 100, 10000, 0, 50000, 40),
				},
			},
			{
				Name: "rand-9-50",
				Rows: []BCPRow{
					mk("watched", 200, 30000, 5000, 0, 20),
					mk("counting", 200, 30000, 0, 120000, 90),
				},
			},
		},
	}
}

func TestDiffBCPPassesOnIdenticalReports(t *testing.T) {
	regs, compared := DiffBCP(gateReport(), gateReport(), 0.15)
	if len(regs) != 0 {
		t.Fatalf("identical reports must pass, got %v", regs)
	}
	// 2 instances x (watched visits + counting occ-touches) + 2 aggregate
	// props/sec comparisons.
	if compared != 6 {
		t.Fatalf("compared = %d, want 6", compared)
	}
}

func TestDiffBCPToleratesSmallDrift(t *testing.T) {
	fresh := gateReport()
	fresh.Instances[0].Rows[0].WatcherVisits = 2200 // +10% < 15% tolerance
	fresh.Instances[0].Rows[0].VerifyMillis = 11
	regs, _ := DiffBCP(gateReport(), fresh, 0.15)
	if len(regs) != 0 {
		t.Fatalf("10%% drift within a 15%% gate must pass, got %v", regs)
	}
}

func TestDiffBCPFailsOnDegradedVisits(t *testing.T) {
	fresh := gateReport()
	fresh.Instances[1].Rows[0].WatcherVisits = 8000 // +60% visits/check
	regs, _ := DiffBCP(gateReport(), fresh, 0.15)
	if len(regs) != 1 {
		t.Fatalf("regs = %v, want exactly the visits/check regression", regs)
	}
	r := regs[0]
	if r.Instance != "rand-9-50" || r.Engine != "watched" || r.Metric != "visits/check" {
		t.Fatalf("wrong attribution: %+v", r)
	}
	if r.Delta < 0.55 || r.Delta > 0.65 {
		t.Fatalf("delta = %v, want ~0.6", r.Delta)
	}
	if s := r.String(); !strings.Contains(s, "rand-9-50/watched visits/check") {
		t.Fatalf("String() = %q", s)
	}
}

func TestDiffBCPFailsOnSuiteThroughputCollapse(t *testing.T) {
	fresh := gateReport()
	// Halve throughput on every instance: suite-aggregate props/sec trips.
	for i := range fresh.Instances {
		for j := range fresh.Instances[i].Rows {
			fresh.Instances[i].Rows[j].VerifyMillis *= 2
		}
	}
	regs, _ := DiffBCP(gateReport(), fresh, 0.15)
	var hit int
	for _, r := range regs {
		if r.Metric == "props/sec" && r.Instance == "" {
			hit++
		}
	}
	if hit != 2 { // watched and counting aggregates both collapse
		t.Fatalf("regs = %v, want 2 suite props/sec regressions", regs)
	}
}

func TestDiffBCPSingleSlowInstanceDoesNotTrip(t *testing.T) {
	// Wall noise on one instance must NOT fail the gate: only the suite
	// aggregate gates throughput.
	fresh := gateReport()
	fresh.Instances[0].Rows[0].VerifyMillis *= 1.3 // php-5 watched 30% slower
	regs, _ := DiffBCP(gateReport(), fresh, 0.15)
	if len(regs) != 0 {
		t.Fatalf("one slow instance within aggregate tolerance must pass, got %v", regs)
	}
}

func TestDiffBCPSkipsThroughputUnderNoiseFloor(t *testing.T) {
	// Aggregates under the wall-time floor carry no throughput signal; the
	// gate must skip them rather than flag scheduler jitter.
	base, fresh := gateReport(), gateReport()
	for _, r := range []*BCPReport{base, fresh} {
		for i := range r.Instances {
			for j := range r.Instances[i].Rows {
				r.Instances[i].Rows[j].VerifyMillis /= 100 // sub-millisecond suite
			}
		}
	}
	for i := range fresh.Instances {
		for j := range fresh.Instances[i].Rows {
			fresh.Instances[i].Rows[j].VerifyMillis *= 3 // "collapse", in noise
		}
	}
	regs, compared := DiffBCP(base, fresh, 0.15)
	if len(regs) != 0 {
		t.Fatalf("sub-floor throughput must not gate, got %v", regs)
	}
	if compared != 4 { // only the 4 deterministic per-instance metrics
		t.Fatalf("compared = %d, want 4", compared)
	}
}

func TestDiffBCPIgnoresUnsharedInstances(t *testing.T) {
	fresh := gateReport()
	fresh.Instances = fresh.Instances[:1] // quick run: subset of the baseline
	regs, compared := DiffBCP(gateReport(), fresh, 0.15)
	if len(regs) != 0 {
		t.Fatalf("subset run must pass, got %v", regs)
	}
	if compared != 4 { // 1 instance x 2 metrics + 2 aggregates
		t.Fatalf("compared = %d, want 4", compared)
	}
	// Disjoint reports: the gate is vacuous and says so via compared == 0.
	fresh.Instances[0].Name = "nonexistent"
	if _, compared := DiffBCP(gateReport(), fresh, 0.15); compared != 0 {
		t.Fatalf("disjoint reports compared = %d, want 0", compared)
	}
}
