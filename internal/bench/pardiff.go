package bench

// DiffPar gates a fresh parallel-schedule benchmark report against the
// committed BENCH_par.json baseline, with the same split as DiffBCP:
//
//   - the hint DAG's shape (tasks, edges, total and critical cost, depth)
//     is a deterministic function of the instance and the emission code,
//     gated per instance at tol; growth here means the recorder started
//     emitting fatter hint lists or the DAG builder added dependencies.
//   - wall-clock metrics are gated on suite aggregates over common
//     instances at twice tol and only above the noise floor: the chunk/DAG
//     speedup must not shrink, and scheduled replay throughput
//     (cost-units/sec through sched.Run) must not drop.
//
// Zero comparisons means the reports share no instances; callers should
// treat that as an error, not a pass.
func DiffPar(base, fresh *ParReport, tol float64) (regs []Regression, compared int) {
	baseInst := map[string]ParInstanceReport{}
	for _, ir := range base.Instances {
		baseInst[ir.Name] = ir
	}

	det := func(name, metric string, b, f int64) {
		compared++
		if b > 0 && float64(f) > float64(b)*(1+tol) {
			regs = append(regs, Regression{Instance: name, Engine: "dag",
				Metric: metric, Base: float64(b), Fresh: float64(f),
				Delta: float64(f)/float64(b) - 1})
		}
	}

	var baseChunk, baseDAG, freshChunk, freshDAG float64
	var baseCost, freshCost int64
	var baseTW, freshTW float64
	for _, fir := range fresh.Instances {
		bir, ok := baseInst[fir.Name]
		if !ok {
			continue
		}
		det(fir.Name, "dag-tasks", int64(bir.DAGStats.Tasks), int64(fir.DAGStats.Tasks))
		det(fir.Name, "dag-edges", int64(bir.DAGStats.Edges), int64(fir.DAGStats.Edges))
		det(fir.Name, "dag-total-cost", bir.DAGStats.TotalCost, fir.DAGStats.TotalCost)
		det(fir.Name, "dag-crit-cost", bir.DAGStats.CritCost, fir.DAGStats.CritCost)
		det(fir.Name, "dag-depth", int64(bir.DAGStats.Depth), int64(fir.DAGStats.Depth))

		baseChunk += bir.ChunkMillis
		baseDAG += bir.DAGMillis
		freshChunk += fir.ChunkMillis
		freshDAG += fir.DAGMillis
		baseCost += bir.DAGStats.TotalCost
		freshCost += fir.DAGStats.TotalCost
		baseTW += bir.TWMillis
		freshTW += fir.TWMillis
	}
	if compared == 0 {
		return nil, 0
	}

	if baseDAG >= minWallMillis && freshDAG >= minWallMillis &&
		baseChunk >= minWallMillis && freshChunk >= minWallMillis {
		bs := ratio(baseChunk, baseDAG)
		fs := ratio(freshChunk, freshDAG)
		compared++
		if bs > 0 && fs < bs*(1-wallTolFactor*tol) {
			regs = append(regs, Regression{Engine: "dag", Metric: "chunk/dag-speedup",
				Base: bs, Fresh: fs, Delta: bs/fs - 1})
		}
	}
	if baseTW >= minWallMillis && freshTW >= minWallMillis {
		bc := float64(baseCost) / (baseTW / 1e3)
		fc := float64(freshCost) / (freshTW / 1e3)
		compared++
		if bc > 0 && fc < bc*(1-wallTolFactor*tol) {
			regs = append(regs, Regression{Engine: "dag", Metric: "replay-cost/sec",
				Base: bc, Fresh: fc, Delta: bc/fc - 1})
		}
	}
	return regs, compared
}
