package bench

import (
	"fmt"
	"sort"
)

// Perf-regression gate: DiffBCP compares a fresh BCP benchmark report
// against a committed baseline and reports every metric that got worse than
// the tolerance allows. Two kinds of metric are gated differently:
//
//   - visits/check (and occ-touches/check) are deterministic functions of
//     the instance and the engine — identical on every run of the same
//     code — so they are compared per (instance, engine) at the given
//     tolerance; any drift here is a real algorithmic change, not noise.
//   - props/sec is wall-clock-derived and noisy, so it is gated only on
//     the suite aggregate (total propagations over total wall time per
//     engine, summed across the common instances), at twice the
//     tolerance, and only when both aggregates clear a wall-time noise
//     floor — a few milliseconds of total wall time cannot distinguish a
//     regression from scheduler jitter.
//
// Only instances present in both reports participate, which lets a quick
// smoke run be gated against the committed full-suite baseline.

// minWallMillis is the aggregate wall-time floor below which props/sec is
// not gated: under ~10ms of total wall time per engine, run-to-run timer
// and scheduler noise routinely exceeds any sane tolerance.
const minWallMillis = 10.0

// wallTolFactor widens the tolerance for wall-clock-derived metrics
// relative to the deterministic ones.
const wallTolFactor = 2.0

// Regression is one gated metric that degraded beyond tolerance.
type Regression struct {
	Instance string // "" for suite-aggregate metrics
	Engine   string
	Metric   string // "visits/check" | "occ-touches/check" | "props/sec"
	Base     float64
	Fresh    float64
	Delta    float64 // fractional change, positive = worse
}

func (r *Regression) String() string {
	where := r.Engine
	if r.Instance != "" {
		where = r.Instance + "/" + r.Engine
	}
	return fmt.Sprintf("%s %s: %.1f -> %.1f (%+.1f%%)",
		where, r.Metric, r.Base, r.Fresh, 100*r.Delta)
}

// DiffBCP gates fresh against base at the given fractional tolerance
// (0.15 = 15%). It returns the regressions found and how many metric
// comparisons were made; zero comparisons means the reports share no
// instances and the gate is vacuous — callers should treat that as an
// error, not a pass.
func DiffBCP(base, fresh *BCPReport, tol float64) (regs []Regression, compared int) {
	baseInst := map[string]BCPInstanceReport{}
	for _, ir := range base.Instances {
		baseInst[ir.Name] = ir
	}

	// Suite-aggregate props/sec accumulators, per engine, over common
	// instances only (row counters are deterministic; wall time is not).
	type agg struct {
		props       int64
		millis      float64
		freshProps  int64
		freshMillis float64
	}
	aggs := map[string]*agg{}

	for _, fir := range fresh.Instances {
		bir, ok := baseInst[fir.Name]
		if !ok {
			continue
		}
		baseRows := map[string]BCPRow{}
		for _, r := range bir.Rows {
			baseRows[r.Engine] = r
		}
		for _, fr := range fir.Rows {
			br, ok := baseRows[fr.Engine]
			if !ok {
				continue
			}
			a := aggs[fr.Engine]
			if a == nil {
				a = &agg{}
				aggs[fr.Engine] = a
			}
			a.props += br.Propagations
			a.millis += br.VerifyMillis
			a.freshProps += fr.Propagations
			a.freshMillis += fr.VerifyMillis

			// Deterministic per-check work, strict per (instance, engine).
			if br.Checked > 0 && fr.Checked > 0 {
				if br.WatcherVisits > 0 || fr.WatcherVisits > 0 {
					bv := float64(br.WatcherVisits) / float64(br.Checked)
					fv := float64(fr.WatcherVisits) / float64(fr.Checked)
					compared++
					if bv > 0 && fv > bv*(1+tol) {
						regs = append(regs, Regression{Instance: fir.Name, Engine: fr.Engine,
							Metric: "visits/check", Base: bv, Fresh: fv, Delta: fv/bv - 1})
					}
				}
				if br.OccTouches > 0 || fr.OccTouches > 0 {
					bv := float64(br.OccTouches) / float64(br.Checked)
					fv := float64(fr.OccTouches) / float64(fr.Checked)
					compared++
					if bv > 0 && fv > bv*(1+tol) {
						regs = append(regs, Regression{Instance: fir.Name, Engine: fr.Engine,
							Metric: "occ-touches/check", Base: bv, Fresh: fv, Delta: fv/bv - 1})
					}
				}
			}
		}
	}

	engines := make([]string, 0, len(aggs))
	for e := range aggs {
		engines = append(engines, e)
	}
	sort.Strings(engines)
	for _, e := range engines {
		a := aggs[e]
		if a.millis < minWallMillis || a.freshMillis < minWallMillis {
			continue // too little wall time to separate signal from noise
		}
		bp := float64(a.props) / (a.millis / 1e3)
		fp := float64(a.freshProps) / (a.freshMillis / 1e3)
		compared++
		if bp > 0 && fp < bp*(1-wallTolFactor*tol) {
			regs = append(regs, Regression{Engine: e, Metric: "props/sec",
				Base: bp, Fresh: fp, Delta: bp/fp - 1})
		}
	}
	return regs, compared
}

// DiffLRAT gates a fresh hinted-proof benchmark report against the
// committed BENCH_lrat.json baseline, with the same split as DiffBCP:
//
//   - hints scanned and addition steps are deterministic functions of the
//     instance and the emission code, gated per instance at tol; growth
//     here means the recorder started emitting fatter hint lists.
//   - hinted-check throughput (hints/sec) is wall-clock-derived, gated on
//     the suite aggregate over common instances at twice tol and only
//     above the wall-time noise floor.
//
// Zero comparisons means the reports share no instances; callers should
// treat that as an error, not a pass.
func DiffLRAT(base, fresh *LRATReport, tol float64) (regs []Regression, compared int) {
	baseInst := map[string]LRATInstanceReport{}
	for _, ir := range base.Instances {
		baseInst[ir.Name] = ir
	}

	var baseHints, freshHints int64
	var baseMillis, freshMillis float64
	for _, fir := range fresh.Instances {
		bir, ok := baseInst[fir.Name]
		if !ok {
			continue
		}
		baseHints += bir.Hints
		baseMillis += bir.HintedMillis
		freshHints += fir.Hints
		freshMillis += fir.HintedMillis

		compared++
		if bir.Hints > 0 && float64(fir.Hints) > float64(bir.Hints)*(1+tol) {
			regs = append(regs, Regression{Instance: fir.Name, Engine: "hinted",
				Metric: "hints-scanned", Base: float64(bir.Hints),
				Fresh: float64(fir.Hints), Delta: float64(fir.Hints)/float64(bir.Hints) - 1})
		}
		compared++
		if bir.Additions > 0 && float64(fir.Additions) > float64(bir.Additions)*(1+tol) {
			regs = append(regs, Regression{Instance: fir.Name, Engine: "hinted",
				Metric: "additions", Base: float64(bir.Additions),
				Fresh: float64(fir.Additions), Delta: float64(fir.Additions)/float64(bir.Additions) - 1})
		}
	}

	if compared > 0 && baseMillis >= minWallMillis && freshMillis >= minWallMillis {
		bh := float64(baseHints) / (baseMillis / 1e3)
		fh := float64(freshHints) / (freshMillis / 1e3)
		compared++
		if bh > 0 && fh < bh*(1-wallTolFactor*tol) {
			regs = append(regs, Regression{Engine: "hinted", Metric: "hints/sec",
				Base: bh, Fresh: fh, Delta: bh/fh - 1})
		}
	}
	return regs, compared
}
