package bench

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/solver"
)

// These tests encode the paper's headline result shapes as assertions on
// moderate instances, so a regression that silently changed a shape (not
// just a number) fails the suite. EXPERIMENTS.md records the full-size
// measurements.

// Table 1 shape: Proof_verification2 tests strictly less than 100% of F*
// on unrolling-style instances, and the unsatisfiable core is a strict
// subset of the initial CNF.
func TestShapeTable1(t *testing.T) {
	rows, err := Table1([]gen.Instance{gen.Pipe(2, 5), gen.Counter(8, 30)}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TestedPct >= 100 {
			t.Errorf("%s: Verification2 tested everything (%.1f%%)", r.Name, r.TestedPct)
		}
		if r.CorePct >= 100 {
			t.Errorf("%s: core is the whole formula (%.1f%%)", r.Name, r.CorePct)
		}
	}
}

// Table 2 shape: under hybrid (partly global) learning the conflict-clause
// proof is smaller than the resolution graph.
func TestShapeTable2(t *testing.T) {
	rows, err := Table2([]gen.Instance{gen.Barrel(8, 2), gen.Counter(8, 30)}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ProofLits >= r.ResNodes {
			t.Errorf("%s: conflict proof (%d lits) not smaller than resolution graph (%d nodes)",
				r.Name, r.ProofLits, r.ResNodes)
		}
	}
}

// Table 3 shape: the conflict-to-resolution size ratio falls as the fifo
// unrolling depth grows (compare the extremes; middle points can wobble on
// small instances).
func TestShapeTable3(t *testing.T) {
	rows, err := Table3([]gen.Instance{gen.Fifo(8, 15), gen.Fifo(8, 45)}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].RatioPct >= rows[0].RatioPct {
		t.Errorf("ratio did not fall with size: %.1f%% -> %.1f%%",
			rows[0].RatioPct, rows[1].RatioPct)
	}
}

// §5 shape: decision-scheme clauses are global — more resolutions per
// clause than 1UIP — and collapse the size ratio.
func TestShapeSchemes(t *testing.T) {
	rows, err := SchemesAblation([]gen.Instance{gen.Barrel(8, 2)}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var uip, dec SchemeRow
	for _, r := range rows {
		switch r.Scheme {
		case solver.Learn1UIP:
			uip = r
		case solver.LearnDecision:
			dec = r
		}
	}
	if dec.ResPerClause <= 2*uip.ResPerClause {
		t.Errorf("decision res/clause %.1f not well above 1UIP %.1f",
			dec.ResPerClause, uip.ResPerClause)
	}
	if dec.RatioPct >= uip.RatioPct {
		t.Errorf("decision ratio %.1f%% not below 1UIP %.1f%%", dec.RatioPct, uip.RatioPct)
	}
}

// Verification-vs-solve shape: verification stays within a small multiple
// of solve time (the paper reports 2-3x; we assert a loose 8x envelope to
// keep the test robust to machine noise).
func TestShapeVerifyTime(t *testing.T) {
	rows, err := Table2([]gen.Instance{gen.Control(6, 3)}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.VerifyTime > 8*r.SolveTime {
		t.Errorf("verification %v exceeds 8x solve time %v", r.VerifyTime, r.SolveTime)
	}
}
