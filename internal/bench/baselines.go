package bench

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bdd"
	"repro/internal/dpll"
	"repro/internal/gen"
	"repro/internal/solver"
)

// BaselineRow compares the reproduction's CDCL solver against the two
// technologies it historically displaced on these workloads: plain DPLL
// (no learning — and hence no conflict-clause proof at all) and BDDs.
type BaselineRow struct {
	Name    string
	Clauses int

	CDCLTime      time.Duration
	CDCLConflicts int64

	DPLLTime       time.Duration
	DPLLBacktracks int64
	DPLLTimedOut   bool

	BDDTime     time.Duration
	BDDNodes    int
	BDDBlewUp   bool
	BDDNodesCap int
}

// BaselinesAblation runs all three engines per instance. dpllBudget bounds
// DPLL decisions; bddNodes bounds BDD construction.
func BaselinesAblation(insts []gen.Instance, sopt solver.Options, dpllBudget int64, bddNodes int) ([]BaselineRow, error) {
	var rows []BaselineRow
	for _, inst := range insts {
		row := BaselineRow{Name: inst.Name, Clauses: inst.F.NumClauses(), BDDNodesCap: bddNodes}

		t0 := time.Now()
		st, _, _, stats, err := solver.Solve(inst.F, sopt)
		row.CDCLTime = time.Since(t0)
		row.CDCLConflicts = stats.Conflicts
		if err != nil {
			return nil, err
		}
		if st != solver.Unsat {
			return nil, fmt.Errorf("bench: %s: CDCL returned %v", inst.Name, st)
		}

		t1 := time.Now()
		dst, _, dstats, err := dpll.Solve(inst.F, dpllBudget)
		row.DPLLTime = time.Since(t1)
		row.DPLLBacktracks = dstats.Backtracks
		if err != nil {
			return nil, err
		}
		switch dst {
		case dpll.Unsat:
		case dpll.Unknown:
			row.DPLLTimedOut = true
		default:
			return nil, fmt.Errorf("bench: %s: DPLL returned %v on an UNSAT instance", inst.Name, dst)
		}

		t2 := time.Now()
		m := bdd.New(inst.F.NumVars, bddNodes)
		r, err := m.FromFormula(inst.F)
		row.BDDTime = time.Since(t2)
		row.BDDNodes = m.NumNodes()
		switch {
		case errors.Is(err, bdd.ErrNodeLimit):
			row.BDDBlewUp = true
		case err != nil:
			return nil, err
		case r != bdd.False:
			return nil, fmt.Errorf("bench: %s: BDD claims satisfiable", inst.Name)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
