package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/solver"
)

// SchemeRow compares learning schemes on one instance — the quantitative
// backing for the paper's §5 claim that 1UIP ("local") and decision-scheme
// ("global") clauses trade conflict-clause proof size against
// resolution-graph size in opposite directions.
type SchemeRow struct {
	Name          string
	Scheme        solver.LearnScheme
	Conflicts     int64
	ProofClauses  int
	ProofLits     int64
	ResNodes      int64
	ResPerClause  float64 // avg resolutions per deduced clause ("globality")
	LitsPerClause float64
	RatioPct      float64 // 100 * lits / resolution nodes
}

// SchemesAblation solves each instance under each learning scheme.
func SchemesAblation(insts []gen.Instance, base solver.Options) ([]SchemeRow, error) {
	schemes := []solver.LearnScheme{solver.Learn1UIP, solver.LearnHybrid, solver.LearnDecision}
	var rows []SchemeRow
	for _, inst := range insts {
		for _, sc := range schemes {
			opt := base
			opt.Learn = sc
			run, err := RunInstance(inst, opt, core.Options{Mode: core.ModeCheckMarked})
			if err != nil {
				return nil, fmt.Errorf("scheme %v: %w", sc, err)
			}
			n := run.Trace.Len()
			res := run.Trace.TotalResolutions()
			lits := run.Trace.NumLiterals()
			row := SchemeRow{
				Name:         inst.Name,
				Scheme:       sc,
				Conflicts:    run.Stats.Conflicts,
				ProofClauses: n,
				ProofLits:    lits,
				ResNodes:     res,
			}
			if n > 0 {
				row.ResPerClause = float64(res) / float64(n)
				row.LitsPerClause = float64(lits) / float64(n)
			}
			if res > 0 {
				row.RatioPct = 100 * float64(lits) / float64(res)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// VerifyModeRow compares Proof_verification1 (check all) against
// Proof_verification2 (check marked) on one instance.
type VerifyModeRow struct {
	Name       string
	ProofSize  int
	Tested1    int
	Time1      time.Duration
	Tested2    int
	Time2      time.Duration
	SpeedupPct float64 // 100 * (1 - Time2/Time1)
	TestedPct2 float64
}

// VerifyModesAblation solves once per instance and verifies the same proof
// under both procedures.
func VerifyModesAblation(insts []gen.Instance, sopt solver.Options) ([]VerifyModeRow, error) {
	var rows []VerifyModeRow
	for _, inst := range insts {
		st, tr, _, _, err := solver.Solve(inst.F, sopt)
		if err != nil {
			return nil, err
		}
		if st != solver.Unsat {
			return nil, fmt.Errorf("bench: %s: %v", inst.Name, st)
		}
		t0 := time.Now()
		res1, err := core.Verify(inst.F, tr, core.Options{Mode: core.ModeCheckAll})
		d1 := time.Since(t0)
		if err != nil || !res1.OK {
			return nil, fmt.Errorf("bench: %s check-all: %v %+v", inst.Name, err, res1)
		}
		t1 := time.Now()
		res2, err := core.Verify(inst.F, tr, core.Options{Mode: core.ModeCheckMarked})
		d2 := time.Since(t1)
		if err != nil || !res2.OK {
			return nil, fmt.Errorf("bench: %s check-marked: %v %+v", inst.Name, err, res2)
		}
		row := VerifyModeRow{
			Name:       inst.Name,
			ProofSize:  tr.Len(),
			Tested1:    res1.Tested,
			Time1:      d1,
			Tested2:    res2.Tested,
			Time2:      d2,
			TestedPct2: res2.TestedPct(),
		}
		if d1 > 0 {
			row.SpeedupPct = 100 * (1 - float64(d2)/float64(d1))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// EngineRow compares the watched-literal and counting BCP engines inside
// the verifier (the paper's §6 remark that watched literals are especially
// effective on proofs full of long clauses).
type EngineRow struct {
	Name         string
	TimeWatched  time.Duration
	TimeCounting time.Duration
	PropsWatched int64
	PropsCount   int64
	SlowdownX    float64 // counting time / watched time
}

// EngineAblation verifies the same proof with both engines.
func EngineAblation(insts []gen.Instance, sopt solver.Options) ([]EngineRow, error) {
	var rows []EngineRow
	for _, inst := range insts {
		st, tr, _, _, err := solver.Solve(inst.F, sopt)
		if err != nil {
			return nil, err
		}
		if st != solver.Unsat {
			return nil, fmt.Errorf("bench: %s: %v", inst.Name, st)
		}
		t0 := time.Now()
		rw, err := core.Verify(inst.F, tr, core.Options{Engine: core.EngineWatched})
		dw := time.Since(t0)
		if err != nil || !rw.OK {
			return nil, fmt.Errorf("bench: %s watched: %v", inst.Name, err)
		}
		t1 := time.Now()
		rc, err := core.Verify(inst.F, tr, core.Options{Engine: core.EngineCounting})
		dc := time.Since(t1)
		if err != nil || !rc.OK {
			return nil, fmt.Errorf("bench: %s counting: %v", inst.Name, err)
		}
		row := EngineRow{
			Name:         inst.Name,
			TimeWatched:  dw,
			TimeCounting: dc,
			PropsWatched: rw.Propagations,
			PropsCount:   rc.Propagations,
		}
		if dw > 0 {
			row.SlowdownX = float64(dc) / float64(dw)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TrimRow measures proof trimming: original vs trimmed proof size, and that
// the trimmed proof still verifies.
type TrimRow struct {
	Name         string
	Original     int
	Trimmed      int
	TrimmedLits  int64
	OriginalLits int64
	KeptPct      float64
}

// TrimAblation trims each proof to its used clauses and re-verifies it.
func TrimAblation(insts []gen.Instance, sopt solver.Options) ([]TrimRow, error) {
	var rows []TrimRow
	for _, inst := range insts {
		run, err := RunInstance(inst, sopt, core.Options{Mode: core.ModeCheckMarked})
		if err != nil {
			return nil, err
		}
		trimmed, err := core.Trim(run.Trace, run.Verify)
		if err != nil {
			return nil, err
		}
		res, err := core.Verify(inst.F, trimmed, core.Options{Mode: core.ModeCheckAll})
		if err != nil {
			return nil, err
		}
		if !res.OK {
			return nil, fmt.Errorf("bench: %s: trimmed proof rejected at %d", inst.Name, res.FailedIndex)
		}
		row := TrimRow{
			Name:         inst.Name,
			Original:     run.Trace.Len(),
			Trimmed:      trimmed.Len(),
			OriginalLits: run.Trace.NumLiterals(),
			TrimmedLits:  trimmed.NumLiterals(),
		}
		if row.Original > 0 {
			row.KeptPct = 100 * float64(row.Trimmed) / float64(row.Original)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CoreRow measures iterated unsat-core minimization: re-solving the core
// until a fixpoint.
type CoreRow struct {
	Name       string
	Original   int
	FirstCore  int
	FinalCore  int
	Iterations int
}

// CoreFixpoint repeatedly extracts the unsat core and re-solves it until
// the core stops shrinking (a by-product application the paper's §4
// motivates: "the extraction of an unsatisfiable core ... can help to
// understand the cause of unsatisfiability").
func CoreFixpoint(inst gen.Instance, sopt solver.Options, maxIter int) (*CoreRow, error) {
	row := &CoreRow{Name: inst.Name, Original: inst.F.NumClauses()}
	cur := inst.F
	for i := 0; i < maxIter; i++ {
		run, err := RunInstance(gen.Instance{Name: inst.Name, Family: inst.Family, F: cur}, sopt,
			core.Options{Mode: core.ModeCheckMarked})
		if err != nil {
			return nil, err
		}
		coreF := core.CoreFormula(cur, run.Verify)
		row.Iterations = i + 1
		if i == 0 {
			row.FirstCore = coreF.NumClauses()
		}
		row.FinalCore = coreF.NumClauses()
		if coreF.NumClauses() == cur.NumClauses() {
			break
		}
		cur = coreF
	}
	return row, nil
}
