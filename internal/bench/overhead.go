package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/proof"
	"repro/internal/solver"
)

// TraceOverheadReport quantifies what attaching the flight recorder costs:
// the same verifications run with the metrics registry alone and with a
// recorder attached, compared pairwise over the suite (see TraceOverhead).
// The design budget documented in DESIGN.md is <3% — the recorder's
// per-Refute cost is one paired ring append plus the span edges — but the
// suite-level wall measurement carries shared-machine noise, so gates
// should enforce a looser bound (the Makefile uses 10%): an accidental
// per-propagation emission measures at +50% or worse either way.
type TraceOverheadReport struct {
	Instances    int     `json:"instances"`
	PlainMillis  float64 `json:"plain_ms"`
	TracedMillis float64 `json:"traced_ms"`
	OverheadPct  float64 `json:"overhead_pct"`
	Events       int     `json:"events"` // recorded in the last traced run
	Dropped      int64   `json:"dropped"`
}

// TraceOverhead measures flight-recorder overhead on the watched engine's
// backward marked scan over the given instances.
//
// Methodology: timing two near-identical workloads independently and
// comparing minima is fragile on a shared machine — a few percent of
// scheduler/frequency noise swamps a sub-percent true cost. Instead each
// iteration runs a plain/traced *pair* back to back (alternating order to
// cancel any systematic first-run advantage) after one warmup per
// instance, and the instance's overhead is the **median of the paired
// deltas**: machine-state drift is common-mode within a pair, and the
// median discards the pairs a background spike landed in. The suite
// overhead is the summed median deltas over the summed best plain times.
func TraceOverhead(insts []gen.Instance, iters int) (*TraceOverheadReport, error) {
	if iters < 1 {
		iters = 1
	}
	rep := &TraceOverheadReport{Instances: len(insts)}
	var deltaMillis float64
	for _, inst := range insts {
		st, tr, _, _, err := solver.Solve(inst.F, DefaultSolverOptions())
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", inst.Name, err)
		}
		if st != solver.Unsat {
			return nil, fmt.Errorf("bench: %s: solver returned %v", inst.Name, st)
		}
		if _, err := overheadRun(inst, tr, false, rep); err != nil { // warmup
			return nil, err
		}
		if _, err := overheadRun(inst, tr, true, rep); err != nil {
			return nil, err
		}
		bestPlain := time.Duration(-1)
		deltas := make([]time.Duration, 0, iters)
		for it := 0; it < iters; it++ {
			var plain, traced time.Duration
			var err error
			if it%2 == 0 {
				plain, err = overheadRun(inst, tr, false, rep)
				if err == nil {
					traced, err = overheadRun(inst, tr, true, rep)
				}
			} else {
				traced, err = overheadRun(inst, tr, true, rep)
				if err == nil {
					plain, err = overheadRun(inst, tr, false, rep)
				}
			}
			if err != nil {
				return nil, err
			}
			deltas = append(deltas, traced-plain)
			if bestPlain < 0 || plain < bestPlain {
				bestPlain = plain
			}
		}
		sort.Slice(deltas, func(i, j int) bool { return deltas[i] < deltas[j] })
		median := deltas[len(deltas)/2]
		if len(deltas)%2 == 0 {
			median = (deltas[len(deltas)/2-1] + deltas[len(deltas)/2]) / 2
		}
		rep.PlainMillis += float64(bestPlain.Nanoseconds()) / 1e6
		deltaMillis += float64(median.Nanoseconds()) / 1e6
	}
	rep.TracedMillis = rep.PlainMillis + deltaMillis
	if rep.PlainMillis > 0 {
		rep.OverheadPct = 100 * deltaMillis / rep.PlainMillis
	}
	return rep, nil
}

func overheadRun(inst gen.Instance, tr *proof.Trace, traced bool, rep *TraceOverheadReport) (time.Duration, error) {
	reg := obs.New()
	var rec *trace.Recorder
	if traced {
		rec = trace.New(trace.DefaultTrackEvents)
		reg.SetTracer(rec)
	}
	// The traced configuration allocates a multi-MB ring the plain one
	// doesn't; settle the collector before the clock starts so that debt is
	// not paid inside the timed window and attributed to the recorder.
	runtime.GC()
	t0 := time.Now()
	res, err := core.Verify(inst.F, tr, core.Options{
		Mode:   core.ModeCheckMarked,
		Engine: core.EngineWatched,
		Obs:    reg,
	})
	d := time.Since(t0)
	if err != nil {
		return 0, fmt.Errorf("bench: %s: %w", inst.Name, err)
	}
	if !res.OK {
		return 0, fmt.Errorf("bench: %s: proof rejected at %d", inst.Name, res.FailedIndex)
	}
	if traced {
		rep.Events = len(rec.Events())
		rep.Dropped = rec.Dropped()
	}
	return d, nil
}
