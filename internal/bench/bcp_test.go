package bench

import (
	"testing"

	"repro/internal/gen"
)

func TestBCPBenchSmall(t *testing.T) {
	insts := []gen.Instance{
		gen.PHPPinned(4, 12),
		gen.RandUnsatChained(3, 30, 500),
		gen.PHP(4),
	}
	rep, err := BCPBench(insts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Instances) != len(insts) {
		t.Fatalf("%d instance reports", len(rep.Instances))
	}
	for _, ir := range rep.Instances {
		if len(ir.Rows) != 3 {
			t.Fatalf("%s: %d rows", ir.Name, len(ir.Rows))
		}
		for _, r := range ir.Rows {
			if r.Checked <= 0 || r.Propagations <= 0 {
				t.Errorf("%s/%s: no work measured: %+v", ir.Name, r.Engine, r)
			}
			switch r.Engine {
			case "counting":
				if r.WatcherVisits != 0 || r.OccTouches <= 0 {
					t.Errorf("%s/counting: visits=%d occ=%d", ir.Name, r.WatcherVisits, r.OccTouches)
				}
			default:
				if r.WatcherVisits <= 0 || r.OccTouches != 0 {
					t.Errorf("%s/%s: visits=%d occ=%d", ir.Name, r.Engine, r.WatcherVisits, r.OccTouches)
				}
			}
		}
		if ir.VisitReduction < 1 {
			t.Errorf("%s: root-trail reuse increased visits: %.2f", ir.Name, ir.VisitReduction)
		}
	}
	// The pinned/chained instances exist to show the incremental win; the
	// suite-level visit reduction is deterministic, so pin it down.
	if rep.VisitReduction < 2 {
		t.Errorf("suite visit reduction %.2f, want >= 2", rep.VisitReduction)
	}
}
