package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/proof"
	"repro/internal/solver"
)

// BCP benchmark: measures the verifier's propagation engines against each
// other on the backward marked scan (ModeCheckMarked), the hot path the
// incremental root-trail engine optimises. Three engines run over identical
// solver-recorded proofs:
//
//   - watched          — incremental: persistent root trail, flat arena,
//     blocking literals (the default engine)
//   - watched-scratch  — same algorithm and layout, but the root
//     unit-propagation fixpoint is re-derived on every Refute
//   - counting         — the naive occurrence-counter propagator
//
// The headline ratios compare watched against watched-scratch, isolating the
// root-trail reuse from the watcher-vs-counter algorithmic difference.

// BCPRow is one engine's measurements on one instance.
type BCPRow struct {
	Engine        string  `json:"engine"`
	VerifyMillis  float64 `json:"verify_ms"` // best of iters
	Checked       int     `json:"checked"`   // proof clauses actually refuted
	Propagations  int64   `json:"propagations"`
	WatcherVisits int64   `json:"watcher_visits"` // 0 for counting
	OccTouches    int64   `json:"occ_touches"`    // 0 for watched engines

	PropsPerSec    float64 `json:"props_per_sec"`
	VisitsPerCheck float64 `json:"visits_per_check"`
}

// BCPInstanceReport aggregates the engines' rows on one instance.
type BCPInstanceReport struct {
	Name     string `json:"name"`
	Vars     int    `json:"vars"`
	Clauses  int    `json:"clauses"`
	TraceLen int    `json:"trace_len"`

	Rows []BCPRow `json:"rows"`

	// VisitReduction is watched-scratch watcher visits divided by watched
	// (incremental) watcher visits: how much watch-list traffic the
	// persistent root trail removes.
	VisitReduction float64 `json:"visit_reduction"`
	// Speedup is watched-scratch wall time divided by watched wall time.
	Speedup float64 `json:"speedup"`
}

// BCPReport is the whole benchmark, serialised to BENCH_bcp.json. The
// headline ratios are computed over suite totals (sum of watcher visits and
// wall time across instances), watched-scratch vs watched.
type BCPReport struct {
	Mode      string              `json:"mode"`
	Iters     int                 `json:"iters"`
	Instances []BCPInstanceReport `json:"instances"`

	// TotalVisits and TotalMillis index suite totals by engine name.
	TotalVisits map[string]int64   `json:"total_watcher_visits"`
	TotalMillis map[string]float64 `json:"total_verify_ms"`

	// VisitReduction is total watched-scratch watcher visits over total
	// watched visits; Speedup is the same ratio on wall time.
	VisitReduction float64 `json:"visit_reduction"`
	Speedup        float64 `json:"speedup"`
}

// BCPSuite returns the instances the BCP benchmark runs: pigeonhole and
// random UNSAT. The pinned/chained variants carry the root-implied prefixes
// (preprocessing/BMC-style) that root-trail reuse targets; the plain
// variants have near-empty root trails and bound the overhead of keeping
// the trail alive. quick keeps the run short for make bench-smoke.
func BCPSuite(quick bool) []gen.Instance {
	insts := []gen.Instance{
		gen.PHPPinned(5, 20),
		gen.RandUnsatChained(3, 40, 1500),
		gen.PHP(5),
		gen.RandUnsat(9, 50),
	}
	if !quick {
		insts = append(insts,
			gen.PHPPinned(6, 48),
			gen.PHPPinned(7, 40),
			gen.RandUnsatChained(9, 60, 4000),
			gen.PHP(7),
			gen.RandUnsat(17, 60),
		)
	}
	return insts
}

var bcpEngines = []core.EngineKind{
	core.EngineWatched,
	core.EngineWatchedScratch,
	core.EngineCounting,
}

// bcpMeasure runs one engine over a recorded proof iters times and reports
// the best wall time together with the engine work counters (identical
// across repetitions — the engines are deterministic).
func bcpMeasure(inst gen.Instance, tr *proof.Trace, kind core.EngineKind, iters int) (BCPRow, error) {
	row := BCPRow{Engine: kind.String()}
	best := time.Duration(-1)
	for it := 0; it < iters; it++ {
		reg := obs.New()
		t0 := time.Now()
		res, err := core.Verify(inst.F, tr, core.Options{
			Mode:   core.ModeCheckMarked,
			Engine: kind,
			Obs:    reg,
		})
		d := time.Since(t0)
		if err != nil {
			return row, fmt.Errorf("bench: %s/%v: %w", inst.Name, kind, err)
		}
		if !res.OK {
			return row, fmt.Errorf("bench: %s/%v: proof rejected at %d", inst.Name, kind, res.FailedIndex)
		}
		if best < 0 || d < best {
			best = d
		}
		if it == 0 {
			snap := reg.Snapshot()
			row.Checked = res.Tested
			row.Propagations = snap.Counters["bcp.propagations"]
			row.WatcherVisits = snap.Counters["bcp.watcher_visits"]
			row.OccTouches = snap.Counters["bcp.occ_touches"]
		}
	}
	row.VerifyMillis = float64(best.Nanoseconds()) / 1e6
	if best > 0 {
		row.PropsPerSec = float64(row.Propagations) / best.Seconds()
	}
	if row.Checked > 0 {
		row.VisitsPerCheck = float64(row.WatcherVisits) / float64(row.Checked)
	}
	return row, nil
}

func ratio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

// BCPBench solves each instance once and replays the proof through every
// engine.
func BCPBench(insts []gen.Instance, iters int) (*BCPReport, error) {
	if iters < 1 {
		iters = 1
	}
	rep := &BCPReport{
		Mode:        core.ModeCheckMarked.String(),
		Iters:       iters,
		TotalVisits: map[string]int64{},
		TotalMillis: map[string]float64{},
	}
	for _, inst := range insts {
		st, tr, _, _, err := solver.Solve(inst.F, DefaultSolverOptions())
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", inst.Name, err)
		}
		if st != solver.Unsat {
			return nil, fmt.Errorf("bench: %s: solver returned %v", inst.Name, st)
		}
		ir := BCPInstanceReport{
			Name:     inst.Name,
			Vars:     inst.F.NumVars,
			Clauses:  inst.F.NumClauses(),
			TraceLen: tr.Len(),
		}
		byEngine := map[string]BCPRow{}
		for _, kind := range bcpEngines {
			row, err := bcpMeasure(inst, tr, kind, iters)
			if err != nil {
				return nil, err
			}
			ir.Rows = append(ir.Rows, row)
			byEngine[row.Engine] = row
			rep.TotalVisits[row.Engine] += row.WatcherVisits
			rep.TotalMillis[row.Engine] += row.VerifyMillis
		}
		inc, scr := byEngine["watched"], byEngine["watched-scratch"]
		ir.VisitReduction = ratio(float64(scr.WatcherVisits), float64(inc.WatcherVisits))
		ir.Speedup = ratio(scr.VerifyMillis, inc.VerifyMillis)
		rep.Instances = append(rep.Instances, ir)
	}
	rep.VisitReduction = ratio(
		float64(rep.TotalVisits["watched-scratch"]), float64(rep.TotalVisits["watched"]))
	rep.Speedup = ratio(rep.TotalMillis["watched-scratch"], rep.TotalMillis["watched"])
	return rep, nil
}
