package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/solver"
)

func quickOpts() solver.Options {
	o := DefaultSolverOptions()
	o.MaxConflicts = 500_000
	return o
}

func TestRunInstance(t *testing.T) {
	run, err := RunInstance(gen.PHP(4), quickOpts(), core.Options{Mode: core.ModeCheckMarked})
	if err != nil {
		t.Fatal(err)
	}
	if run.Trace.Len() == 0 || run.Verify == nil || !run.Verify.OK {
		t.Fatalf("incomplete run: %+v", run)
	}
	if run.SolveTime <= 0 || run.VerifyTime <= 0 {
		t.Error("times not measured")
	}
}

func TestRunInstanceRejectsSat(t *testing.T) {
	inst := gen.Instance{Name: "sat", Family: "test", F: gen.PHP(3).F.Restrict([]int{0, 1})}
	if _, err := RunInstance(inst, quickOpts(), core.Options{}); err == nil {
		t.Error("satisfiable instance accepted")
	}
}

func TestTable1Quick(t *testing.T) {
	rows, err := Table1(SuiteQuick(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(SuiteQuick()) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.ConflictClauses <= 0 || r.InitClauses <= 0 {
			t.Errorf("%s: empty row %+v", r.Name, r)
		}
		if r.TestedPct <= 0 || r.TestedPct > 100 {
			t.Errorf("%s: TestedPct = %v", r.Name, r.TestedPct)
		}
		if r.CorePct <= 0 || r.CorePct > 100 {
			t.Errorf("%s: CorePct = %v", r.Name, r.CorePct)
		}
	}
	var buf bytes.Buffer
	if err := RenderTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Unsatisfiable core") {
		t.Error("render missing header")
	}
}

func TestTable2Quick(t *testing.T) {
	rows, err := Table2(SuiteQuick(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ResNodes <= 0 || r.ProofLits <= 0 {
			t.Errorf("%s: sizes %d/%d", r.Name, r.ResNodes, r.ProofLits)
		}
		if r.RatioPct <= 0 {
			t.Errorf("%s: ratio %v", r.Name, r.RatioPct)
		}
	}
	var buf bytes.Buffer
	if err := RenderTable2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Resolution graph size") {
		t.Error("render missing header")
	}
}

func TestTable3Quick(t *testing.T) {
	insts := []gen.Instance{gen.Fifo(4, 6), gen.Fifo(4, 12)}
	rows, err := Table3(insts, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	var buf bytes.Buffer
	if err := RenderTable3(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestSchemesAblationQuick(t *testing.T) {
	rows, err := SchemesAblation([]gen.Instance{gen.PHP(5)}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// §5: decision-scheme clauses are more "global" — more resolutions per
	// clause than 1UIP.
	var r1uip, rdec SchemeRow
	for _, r := range rows {
		switch r.Scheme {
		case solver.Learn1UIP:
			r1uip = r
		case solver.LearnDecision:
			rdec = r
		}
	}
	if rdec.ResPerClause <= r1uip.ResPerClause {
		t.Errorf("decision Res/clause %.1f <= 1UIP %.1f", rdec.ResPerClause, r1uip.ResPerClause)
	}
	var buf bytes.Buffer
	if err := RenderSchemes(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyModesAblationQuick(t *testing.T) {
	rows, err := VerifyModesAblation([]gen.Instance{gen.Pipe(2, 4), gen.PHP(5)}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Tested1 < r.Tested2 {
			t.Errorf("%s: check-all tested fewer clauses (%d) than check-marked (%d)",
				r.Name, r.Tested1, r.Tested2)
		}
		if r.Tested2 > r.ProofSize {
			t.Errorf("%s: tested more than the proof size", r.Name)
		}
	}
	var buf bytes.Buffer
	if err := RenderVerifyModes(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestEngineAblationQuick(t *testing.T) {
	rows, err := EngineAblation([]gen.Instance{gen.PHP(5)}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	var buf bytes.Buffer
	if err := RenderEngines(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestTrimAblationQuick(t *testing.T) {
	rows, err := TrimAblation([]gen.Instance{gen.PHP(5), gen.AdderEquiv(8)}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Trimmed > r.Original {
			t.Errorf("%s: trim grew the proof", r.Name)
		}
		if r.Trimmed == 0 {
			t.Errorf("%s: trimmed everything", r.Name)
		}
	}
	var buf bytes.Buffer
	if err := RenderTrim(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestCoreFixpointQuick(t *testing.T) {
	// PHP plus junk clauses over fresh variables: the fixpoint core must
	// shed the junk.
	inst := gen.PHP(4)
	f := inst.F.Clone()
	base := f.NumVars
	for i := 0; i < 20; i++ {
		f.Add(base+i+1, base+i+2)
	}
	row, err := CoreFixpoint(gen.Instance{Name: "php4junk", Family: "php", F: f}, quickOpts(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if row.FinalCore > inst.F.NumClauses() {
		t.Errorf("final core %d exceeds the real core's upper bound %d",
			row.FinalCore, inst.F.NumClauses())
	}
	if row.FinalCore > row.FirstCore {
		t.Errorf("core grew: %d -> %d", row.FirstCore, row.FinalCore)
	}
	var buf bytes.Buffer
	if err := RenderCores(&buf, []CoreRow{*row}); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyAblationQuick(t *testing.T) {
	rows, err := SimplifyAblation([]gen.Instance{gen.AdderEquiv(8), gen.PHP(5)}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ClausesAfter > r.ClausesBefore {
			t.Errorf("%s: preprocessing grew the formula %d -> %d", r.Name, r.ClausesBefore, r.ClausesAfter)
		}
	}
	var buf bytes.Buffer
	if err := RenderSimplify(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "After simp") {
		t.Error("render missing header")
	}
}

func TestCoreMethodsAblationQuick(t *testing.T) {
	rows, err := CoreMethodsAblation([]gen.Instance{gen.PHP(4), gen.AdderEquiv(8)}, quickOpts(), 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.VerifyCore == 0 || r.AssumptionCore == 0 || r.ResolutionCore == 0 {
			t.Errorf("%s: empty core in %+v", r.Name, r)
		}
		if r.MUS > 0 && (r.MUS > r.AssumptionCore || r.MUS > r.Clauses) {
			t.Errorf("%s: MUS %d larger than its parent core %d", r.Name, r.MUS, r.AssumptionCore)
		}
		// PHP is minimally unsatisfiable: every notion must find the whole
		// formula.
		if strings.HasPrefix(r.Name, "php_") {
			if r.VerifyCore != r.Clauses || r.MUS != r.Clauses {
				t.Errorf("php: cores %+v, want all %d clauses", r, r.Clauses)
			}
		}
	}
	var buf bytes.Buffer
	if err := RenderCoreMethods(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestBaselinesAblationQuick(t *testing.T) {
	rows, err := BaselinesAblation([]gen.Instance{gen.PHP(5), gen.XorChain(9)}, quickOpts(), 1_000_000, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CDCLConflicts == 0 {
			t.Errorf("%s: no CDCL conflicts", r.Name)
		}
		if !r.DPLLTimedOut && r.DPLLBacktracks == 0 {
			t.Errorf("%s: DPLL did no work", r.Name)
		}
		if !r.BDDBlewUp && r.BDDNodes == 0 {
			t.Errorf("%s: BDD built no nodes", r.Name)
		}
	}
	var buf bytes.Buffer
	if err := RenderBaselines(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BDD nodes") {
		t.Error("render missing header")
	}
}

func TestCSVExports(t *testing.T) {
	r1 := []Row1{{Name: "a", ConflictClauses: 10, TestedPct: 50, InitClauses: 20, CorePct: 30}}
	r2 := []Row2{{Name: "a", ResNodes: 100, ProofLits: 50, RatioPct: 50}}
	r3 := []Row3{{Name: "a", ResNodes: 100, ProofLits: 50, RatioPct: 50}}
	rs := []SchemeRow{{Name: "a", Conflicts: 5, ProofClauses: 5, ProofLits: 20, ResNodes: 40}}
	for name, f := range map[string]func() error{
		"t1": func() error { var b bytes.Buffer; return CSVTable1(&b, r1) },
		"t2": func() error { var b bytes.Buffer; return CSVTable2(&b, r2) },
		"t3": func() error { var b bytes.Buffer; return CSVTable3(&b, r3) },
		"sc": func() error { var b bytes.Buffer; return CSVSchemes(&b, rs) },
	} {
		if err := f(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	var b bytes.Buffer
	if err := CSVTable1(&b, r1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "name,") {
		t.Errorf("csv = %q", b.String())
	}
}

func TestSuitesDistinctNames(t *testing.T) {
	names := map[string]bool{}
	for _, inst := range append(append(SuiteMain(), SuiteFifo()...), SuiteQuick()...) {
		if names[inst.Name] {
			t.Errorf("duplicate instance name %s across suites", inst.Name)
		}
		names[inst.Name] = true
	}
}
