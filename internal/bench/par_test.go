package bench

import "testing"

// parGateReport builds a small two-instance parallel-schedule report; the
// numbers are chosen so a test can degrade one copy and watch the gate trip.
func parGateReport() *ParReport {
	mk := func(name string, tasks, edges int, total, crit int64, chunk, dag, tw float64) ParInstanceReport {
		ir := ParInstanceReport{Name: name, ChunkMillis: chunk, DAGMillis: dag, TWMillis: tw}
		ir.DAGStats.Tasks = tasks
		ir.DAGStats.Edges = edges
		ir.DAGStats.TotalCost = total
		ir.DAGStats.CritCost = crit
		ir.DAGStats.Depth = 3
		return ir
	}
	return &ParReport{
		Instances: []ParInstanceReport{
			mk("imb", 100, 99, 20000, 900, 200, 30, 8),
			mk("wide", 700, 699, 900000, 4000, 6000, 700, 9),
		},
	}
}

func TestDiffParPassesOnIdenticalReports(t *testing.T) {
	regs, compared := DiffPar(parGateReport(), parGateReport(), 0.15)
	if len(regs) != 0 {
		t.Fatalf("identical reports must pass, got %v", regs)
	}
	// 2 instances x 5 shape metrics + speedup + replay-cost/sec aggregates.
	if compared != 12 {
		t.Fatalf("compared = %d, want 12", compared)
	}
}

func TestDiffParFailsOnFatterDAG(t *testing.T) {
	fresh := parGateReport()
	fresh.Instances[1].DAGStats.TotalCost = 1200000 // +33% replay cost on wide
	regs, _ := DiffPar(parGateReport(), fresh, 0.15)
	var hit bool
	for _, r := range regs {
		if r.Instance == "wide" && r.Metric == "dag-total-cost" {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("total-cost growth not caught: %v", regs)
	}
}

func TestDiffParFailsOnLostSpeedup(t *testing.T) {
	fresh := parGateReport()
	for i := range fresh.Instances {
		fresh.Instances[i].DAGMillis *= 3 // DAG got 3x slower everywhere
	}
	regs, _ := DiffPar(parGateReport(), fresh, 0.15)
	var hit bool
	for _, r := range regs {
		if r.Metric == "chunk/dag-speedup" {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("speedup collapse not caught: %v", regs)
	}
}

func TestDiffParVacuousOnDisjointReports(t *testing.T) {
	fresh := parGateReport()
	fresh.Instances[0].Name = "other-a"
	fresh.Instances[1].Name = "other-b"
	if _, compared := DiffPar(parGateReport(), fresh, 0.15); compared != 0 {
		t.Fatalf("disjoint reports compared %d metrics, want 0", compared)
	}
}

// The quick suite must be a prefix of the full one — same names, same
// parameters — or quick gate runs would never share instances with the
// committed baseline.
func TestParInstancesQuickIsPrefixOfFull(t *testing.T) {
	full, quick := ParInstances(false), ParInstances(true)
	if len(quick) == 0 || len(quick) >= len(full) {
		t.Fatalf("quick/full sizes: %d/%d", len(quick), len(full))
	}
	for i, q := range quick {
		f := full[i]
		if q.Name != f.Name || q.F.NumClauses() != f.F.NumClauses() || q.T.Len() != f.T.Len() {
			t.Fatalf("quick[%d] diverges from full[%d]: %s/%s", i, i, q.Name, f.Name)
		}
	}
}

// End to end on a miniature suite: both schedules accept, the report is
// internally consistent, and the DAG shape matches the construction.
func TestParBenchSmall(t *testing.T) {
	inst := selectorBlocks("tiny", 4, 30, 6, 20, 3)
	rep, err := ParBench([]ParInstance{inst}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ir := rep.Instances[0]
	if ir.TraceLen != 11 { // 4 junk + 6 marked + empty
		t.Errorf("trace len = %d, want 11", ir.TraceLen)
	}
	if ir.Marked != 7 { // 6 marked units + the empty step
		t.Errorf("marked = %d, want 7", ir.Marked)
	}
	if ir.DAGStats.Tasks == 0 || ir.DAGStats.CritCost == 0 ||
		ir.DAGStats.CritCost > ir.DAGStats.TotalCost {
		t.Errorf("implausible DAG stats: %+v", ir.DAGStats)
	}
	// depth=3 chains pairs of marked blocks: the DAG must not be flat.
	if ir.DAGStats.Depth < 3 {
		t.Errorf("depth = %d, want >= 3 (chained marked blocks)", ir.DAGStats.Depth)
	}
	if ir.ChunkMillis <= 0 || ir.DAGMillis <= 0 || ir.T1Millis <= 0 || ir.TWMillis <= 0 {
		t.Errorf("non-positive walls: %+v", ir)
	}
	if rep.Speedup <= 0 {
		t.Errorf("suite speedup = %v", rep.Speedup)
	}
}
