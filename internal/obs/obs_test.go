package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every operation on a nil registry and nil handles must be
// a no-op — this is the disabled fast path the hot loops rely on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	s := r.StartSpan("s")
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(7)
	g.SetMax(9)
	h.Observe(3)
	s2 := s.Child("inner")
	s2.End()
	s.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	var p *Progress
	p.Step(10)
	p.Finish()
	if p.Done() != 0 {
		t.Fatal("nil progress must read as zero")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "null" {
		t.Fatalf("nil registry JSON = %q", buf.String())
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	g := r.Gauge("peak")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.SetMax(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 7999 {
		t.Errorf("gauge max = %d, want 7999", g.Value())
	}
	if r.Counter("hits") != c {
		t.Error("same name must return the same counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lens")
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 8, 9, 1000} {
		h.Observe(v)
	}
	if h.Count() != 9 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1032 {
		t.Fatalf("sum = %d", h.Sum())
	}
	hs := h.snapshot()
	if hs.Min != 0 || hs.Max != 1000 {
		t.Fatalf("min/max = %d/%d", hs.Min, hs.Max)
	}
	// Buckets: <=1 holds {0,1}; <=2 holds {2}; <=4 holds {3,4}; <=8 holds
	// {5,8}; <=16 holds {9}; <=1024 holds {1000}.
	want := []Bucket{{1, 2}, {2, 1}, {4, 2}, {8, 2}, {16, 1}, {1024, 1}}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", hs.Buckets)
	}
	for i, b := range hs.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, b, want[i])
		}
		if i > 0 && hs.Buckets[i-1].Le >= b.Le {
			t.Errorf("buckets not in ascending order: %+v", hs.Buckets)
		}
	}
}

func TestSpanTree(t *testing.T) {
	r := New()
	outer := r.StartSpan("verify")
	inner := outer.Child("check-loop")
	time.Sleep(time.Millisecond)
	inner.End()
	d1 := outer.End()
	d2 := outer.End() // idempotent
	if d1 != d2 {
		t.Errorf("End not idempotent: %v vs %v", d1, d2)
	}
	if outer.Running() || inner.Running() {
		t.Error("ended spans report Running")
	}
	if inner.Duration() <= 0 || outer.Duration() < inner.Duration() {
		t.Errorf("durations: outer=%v inner=%v", outer.Duration(), inner.Duration())
	}

	snap := r.Snapshot()
	if snap.Spans == nil || snap.Spans.Name != "total" {
		t.Fatalf("span root = %+v", snap.Spans)
	}
	if len(snap.Spans.Children) != 1 || snap.Spans.Children[0].Name != "verify" {
		t.Fatalf("children = %+v", snap.Spans.Children)
	}
	kids := snap.Spans.Children[0].Children
	if len(kids) != 1 || kids[0].Name != "check-loop" || kids[0].DurationMS <= 0 {
		t.Fatalf("grandchildren = %+v", kids)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := New()
	r.Counter("verify.checked").Add(42)
	r.Gauge("workers").Set(4)
	r.Histogram("props").Observe(100)
	r.StartSpan("verify").End()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if back.Counters["verify.checked"] != 42 {
		t.Errorf("counters = %+v", back.Counters)
	}
	if back.Gauges["workers"] != 4 {
		t.Errorf("gauges = %+v", back.Gauges)
	}
	if back.Histograms["props"].Count != 1 {
		t.Errorf("histograms = %+v", back.Histograms)
	}
	if back.Spans == nil || len(back.Spans.Children) != 1 {
		t.Errorf("spans = %+v", back.Spans)
	}
	if back.Runtime.Goroutines <= 0 {
		t.Errorf("runtime = %+v", back.Runtime)
	}
}

func TestProgressReports(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, ProgressConfig{
		Label: "verify", Unit: "clauses", Total: 100, Every: 25,
		Aux: func() string { return "mark=50.0%" },
	})
	for i := 0; i < 100; i++ {
		p.Step(1)
	}
	p.Finish()
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // 25, 50, 75, 100, final
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "c progress verify: 25/100 clauses (25.0%)") {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.Contains(lines[0], "mark=50.0%") {
		t.Errorf("aux column missing: %q", lines[0])
	}
	if !strings.Contains(lines[4], "done 100/100 clauses (100.0%)") {
		t.Errorf("final line = %q", lines[4])
	}
	if p.Done() != 100 {
		t.Errorf("Done = %d", p.Done())
	}
}

func TestProgressUnknownTotal(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, ProgressConfig{Label: "solve", Unit: "conflicts", Every: 10})
	p.Step(10)
	out := buf.String()
	if !strings.Contains(out, "c progress solve: 10 conflicts") {
		t.Errorf("line = %q", out)
	}
	if strings.Contains(out, "%") || strings.Contains(out, "eta") {
		t.Errorf("unknown total must omit percent and ETA: %q", out)
	}
}

func TestProgressConcurrent(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	p := NewProgress(w, ProgressConfig{Label: "par", Total: 8000, Every: 1000})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				p.Step(1)
			}
		}()
	}
	wg.Wait()
	if p.Done() != 8000 {
		t.Fatalf("Done = %d", p.Done())
	}
	mu.Lock()
	n := strings.Count(buf.String(), "\n")
	mu.Unlock()
	if n < 1 || n > 8 {
		t.Errorf("%d report lines for 8 boundaries:\n%s", n, buf.String())
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestHandlerServesSnapshot(t *testing.T) {
	r := New()
	r.Counter("bcp.propagations").Add(7)
	req := httptest.NewRequest("GET", "/debug/vars", nil)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content-type %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if snap.Counters["bcp.propagations"] != 7 {
		t.Errorf("counters = %+v", snap.Counters)
	}
}

func TestServeRoundTrip(t *testing.T) {
	r := New()
	r.Counter("x").Inc()
	addr, shutdown, err := Serve(context.Background(), "127.0.0.1:0", r, false)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr.String() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if snap.Counters["x"] != 1 {
		t.Errorf("counters = %+v", snap.Counters)
	}
}

func TestCountingReaderWriter(t *testing.T) {
	r := New()
	cr := r.Counter("in")
	cw := r.Counter("out")
	var dst bytes.Buffer
	src := CountingReader(strings.NewReader("hello world"), cr)
	w := CountingWriter(&dst, cw)
	buf := make([]byte, 4)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			w.Write(buf[:n])
		}
		if err != nil {
			break
		}
	}
	if cr.Value() != 11 || cw.Value() != 11 {
		t.Errorf("in=%d out=%d, want 11/11", cr.Value(), cw.Value())
	}
	if dst.String() != "hello world" {
		t.Errorf("payload corrupted: %q", dst.String())
	}
}
