package obs

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getBody(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	return rw.Code, rw.Body.String()
}

// Without probes both endpoints report healthy — a CLI that only wanted
// /metrics gets working health endpoints for free.
func TestHealthDefaultsOK(t *testing.T) {
	reg := New()
	mux := reg.Mux(false)
	for _, path := range []string{"/healthz", "/readyz"} {
		code, body := getBody(t, mux, path)
		if code != http.StatusOK || body != "ok\n" {
			t.Errorf("%s = %d %q, want 200 ok", path, code, body)
		}
	}
}

// A failing readiness probe must flip /readyz to 503 with the reason in the
// body while /healthz (liveness) stays 200 — the split that lets an
// orchestrator stop routing traffic without restarting the process.
func TestHealthReadinessIndependentOfLiveness(t *testing.T) {
	reg := New()
	ready := errors.New("queue saturated: 64/64 jobs")
	mux := reg.Mux(false, Health{Ready: func() error { return ready }})

	code, body := getBody(t, mux, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d, want 503", code)
	}
	if !strings.Contains(body, "queue saturated") {
		t.Fatalf("/readyz body %q does not name the reason", body)
	}
	if code, _ := getBody(t, mux, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200 while only readiness fails", code)
	}

	// Recovered probe → ready again; the handler re-evaluates per request.
	ready = nil
	if code, _ := getBody(t, mux, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d after recovery, want 200", code)
	}
}

func TestHealthLiveness(t *testing.T) {
	reg := New()
	mux := reg.Mux(false, Health{Live: func() error { return errors.New("wedged") }})
	code, body := getBody(t, mux, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "wedged") {
		t.Fatalf("/healthz = %d %q, want 503 with reason", code, body)
	}
}

// Serve must expose the probes too (it serves the same mux).
func TestServeHealthEndpoints(t *testing.T) {
	reg := New()
	notReady := errors.New("store read-only")
	addr, shutdown, err := Serve(context.Background(), "localhost:0", reg, false,
		Health{Ready: func() error { return notReady }})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "read-only") {
		t.Fatalf("/readyz = %d %q, want 503 store read-only", code, body)
	}
}
