package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) of a registry: every
// counter and gauge as its metric, every power-of-two histogram as a
// cumulative-bucket Prometheus histogram. Metric names are the registry
// names with a "dpv_" prefix and non-identifier characters mapped to '_'
// ("verify.props_per_check" → "dpv_verify_props_per_check"); output is
// sorted, so scrapes of an idle process are byte-stable.

// PrometheusContentType is the Content-Type of the exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry metric name into a Prometheus identifier.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("dpv_")
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the registry's current state in the Prometheus
// text exposition format. A nil registry writes nothing (an empty scrape
// is valid), keeping the endpoint safe to wire unconditionally.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	if s == nil {
		return nil
	}
	var b strings.Builder

	writeFamily := func(vals map[string]int64, typ string) {
		names := make([]string, 0, len(vals))
		for n := range vals {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			pn := promName(n)
			fmt.Fprintf(&b, "# TYPE %s %s\n%s %d\n", pn, typ, pn, vals[n])
		}
	}
	writeFamily(s.Counters, "counter")
	writeFamily(s.Gauges, "gauge")

	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		// Registry buckets are per-bucket counts with power-of-two upper
		// bounds; Prometheus buckets are cumulative.
		cum := int64(0)
		for _, bk := range h.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", pn, bk.Le, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}

	fmt.Fprintf(&b, "# TYPE dpv_uptime_seconds gauge\ndpv_uptime_seconds %g\n", s.UptimeMS/1e3)
	_, err := io.WriteString(w, b.String())
	return err
}
