package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// Snapshot is a point-in-time copy of every metric in a registry, shaped
// for JSON: counters and gauges as name→value maps (encoding/json emits
// map keys in sorted order, so output is deterministic), histograms with
// their non-empty buckets in ascending bound order, and the span tree.
type Snapshot struct {
	TakenAt  time.Time `json:"taken_at"`
	UptimeMS float64   `json:"uptime_ms"`

	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`

	Spans *SpanSnapshot `json:"spans,omitempty"`

	Runtime RuntimeSnapshot `json:"runtime"`
}

// HistogramSnapshot summarizes one histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket: Count observations were <= Le
// (and greater than the previous bucket's bound).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// SpanSnapshot is one node of the span tree.
type SpanSnapshot struct {
	Name       string          `json:"name"`
	DurationMS float64         `json:"duration_ms"`
	Running    bool            `json:"running,omitempty"`
	Children   []*SpanSnapshot `json:"children,omitempty"`
}

// RuntimeSnapshot carries the few Go runtime numbers worth a long-run
// glance (heap pressure and GC behaviour during a 100M-clause check).
type RuntimeSnapshot struct {
	Goroutines  int    `json:"goroutines"`
	HeapAlloc   uint64 `json:"heap_alloc_bytes"`
	HeapSys     uint64 `json:"heap_sys_bytes"`
	TotalAlloc  uint64 `json:"total_alloc_bytes"`
	NumGC       uint32 `json:"num_gc"`
	PauseNSLast uint64 `json:"gc_pause_ns_last"`
}

// Snapshot copies every metric out of the registry. Running spans report
// their elapsed-so-far duration. Returns nil on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	now := time.Now()
	s := &Snapshot{
		TakenAt:  now,
		UptimeMS: float64(now.Sub(r.start)) / float64(time.Millisecond),
	}

	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for n, c := range counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]int64, len(gauges))
		for n, g := range gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for n, h := range hists {
			s.Histograms[n] = h.snapshot()
		}
	}
	s.Spans = snapshotSpan(r.root)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.Runtime = RuntimeSnapshot{
		Goroutines:  runtime.NumGoroutine(),
		HeapAlloc:   ms.HeapAlloc,
		HeapSys:     ms.HeapSys,
		TotalAlloc:  ms.TotalAlloc,
		NumGC:       ms.NumGC,
		PauseNSLast: ms.PauseNs[(ms.NumGC+255)%256],
	}
	return s
}

func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if hs.Count > 0 {
		hs.Min = h.min.Load()
		hs.Max = h.max.Load()
		hs.Mean = float64(hs.Sum) / float64(hs.Count)
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			hs.Buckets = append(hs.Buckets, Bucket{Le: int64(1) << i, Count: n})
		}
	}
	return hs
}

func snapshotSpan(s *Span) *SpanSnapshot {
	out := &SpanSnapshot{
		Name:       s.name,
		DurationMS: float64(s.Duration()) / float64(time.Millisecond),
		Running:    s.Running(),
	}
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, snapshotSpan(c))
	}
	return out
}

// WriteJSON writes an indented JSON snapshot. On a nil registry it writes
// "null", keeping -stats-json safe to wire unconditionally.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
