package obs

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/trace"
)

// TestSpanTraceEvents: spans double as flight-recorder events once a
// recorder is attached — begin/end pairs, parent links, and lane routing
// via ChildOn.
func TestSpanTraceEvents(t *testing.T) {
	reg := New()
	rec := trace.New(0)
	reg.SetTracer(rec)
	if reg.Tracer() != rec || reg.TraceTrack() == nil {
		t.Fatal("tracer not attached")
	}

	v := reg.StartSpan("verify")
	lane := reg.NewTrack("worker-0")
	w := v.ChildOn(lane, "worker-0 chunk")
	b := w.Child("build-db")
	b.End()
	w.End()
	v.End()

	ev := rec.Events()
	begins := map[string]trace.Event{}
	ends := map[string]bool{}
	for _, e := range ev {
		switch e.Kind {
		case trace.KindSpanBegin:
			begins[e.Name] = e
		case trace.KindSpanEnd:
			ends[e.Name] = true
		}
	}
	for _, name := range []string{"total", "verify", "worker-0 chunk", "build-db"} {
		if _, ok := begins[name]; !ok {
			t.Fatalf("no begin event for %q (have %v)", name, begins)
		}
	}
	for _, name := range []string{"verify", "worker-0 chunk", "build-db"} {
		if !ends[name] {
			t.Errorf("no end event for %q", name)
		}
	}
	if begins["verify"].Parent != begins["total"].ID {
		t.Error("verify is not parented under total")
	}
	if begins["worker-0 chunk"].Parent != begins["verify"].ID {
		t.Error("ChildOn must keep the parent link")
	}
	if begins["worker-0 chunk"].Track == begins["verify"].Track {
		t.Error("ChildOn must move the child to its own lane")
	}
	if begins["build-db"].Track != begins["worker-0 chunk"].Track {
		t.Error("Child must inherit its parent's lane")
	}
	// End is idempotent: a second End must not emit a second event.
	n := len(rec.Events())
	v.End()
	if len(rec.Events()) != n {
		t.Error("double End emitted a duplicate event")
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := New()
	reg.Counter("verify.checked").Add(7)
	reg.Gauge("verify.workers").Set(4)
	reg.Histogram("verify.props_per_check").Observe(3)
	reg.Histogram("verify.props_per_check").Observe(100)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE dpv_verify_checked counter\ndpv_verify_checked 7\n",
		"# TYPE dpv_verify_workers gauge\ndpv_verify_workers 4\n",
		"# TYPE dpv_verify_props_per_check histogram\n",
		`dpv_verify_props_per_check_bucket{le="+Inf"} 2`,
		"dpv_verify_props_per_check_sum 103",
		"dpv_verify_props_per_check_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the le="128" bucket holds both
	// observations (3 ≤ 4-bucket, 100 ≤ 128-bucket).
	if !strings.Contains(out, `dpv_verify_props_per_check_bucket{le="128"} 2`) {
		t.Errorf("buckets not cumulative:\n%s", out)
	}
	var nilReg *Registry
	buf.Reset()
	if err := nilReg.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry scrape: err=%v len=%d", err, buf.Len())
	}
}

func TestMuxRoutesAndContentTypes(t *testing.T) {
	reg := New()
	reg.Counter("x").Inc()

	get := func(mux *http.ServeMux, path string) (*http.Response, string) {
		srv := httptest.NewServer(mux)
		defer srv.Close()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, string(body)
	}

	resp, body := get(reg.Mux(false), "/debug/vars")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("/debug/vars Content-Type = %q", ct)
	}
	if !strings.Contains(body, `"counters"`) {
		t.Errorf("/debug/vars body: %s", body)
	}

	resp, body = get(reg.Mux(false), "/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	if !strings.Contains(body, "dpv_x 1") {
		t.Errorf("/metrics body: %s", body)
	}

	// pprof must be absent unless opted in. (The JSON handler is mounted at
	// "/", so a disabled mux serves the snapshot there, not a 404 — assert
	// on the body instead of the status.)
	_, body = get(reg.Mux(false), "/debug/pprof/cmdline")
	if !strings.Contains(body, `"counters"`) {
		t.Errorf("disabled pprof path should fall through to the snapshot, got: %.80s", body)
	}
	resp, _ = get(reg.Mux(true), "/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("enabled pprof status = %d", resp.StatusCode)
	}
}

// TestServeShutsDownOnContextCancel: the -metrics listener must die with
// the run's context (the SIGINT partial-result path), not linger until
// process exit.
func TestServeShutsDownOnContextCancel(t *testing.T) {
	reg := New()
	ctx, cancel := context.WithCancel(context.Background())
	addr, shutdown, err := Serve(ctx, "127.0.0.1:0", reg, false)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	url := fmt.Sprintf("http://%v/metrics", addr)
	if _, err := http.Get(url); err != nil {
		t.Fatalf("endpoint not serving before cancel: %v", err)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get(url); err != nil {
			break // listener closed
		}
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting 5s after context cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := shutdown(); err != nil && err != http.ErrServerClosed {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestProgressTickerStopsAndReportsFinal: the Interval ticker goroutine
// must not outlive Finish (Finish joins it — if it didn't, the writes
// below would race and -race would catch it), and a run finishing between
// ticks still gets its 100% line.
func TestProgressTickerStopsAndReportsFinal(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	p := NewProgress(w, ProgressConfig{
		Label: "verify", Unit: "clauses", Total: 50,
		Every: 1 << 62, Interval: 5 * time.Millisecond,
	})
	p.Step(50)
	time.Sleep(30 * time.Millisecond) // let the ticker fire at least once
	p.Finish()
	p.Finish() // idempotent

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected at least one tick line plus the final line:\n%s", out)
	}
	finals := 0
	for _, l := range lines {
		if strings.Contains(l, "done ") {
			finals++
		}
	}
	if finals != 1 {
		t.Fatalf("got %d final lines, want exactly 1:\n%s", finals, out)
	}
	if !strings.Contains(lines[len(lines)-1], "done 50/50 clauses (100.0%)") {
		t.Errorf("final line = %q, want a 100%% line", lines[len(lines)-1])
	}

	// Goroutine-leak assertion: after Finish returns the ticker goroutine
	// has been joined, so any later write to buf would be from this
	// goroutine only. Probe by waiting on the done channel directly.
	select {
	case <-p.done:
	default:
		t.Fatal("ticker goroutine still running after Finish")
	}
}

// TestConcurrentSpansWithSnapshot is the satellite race check: parallel
// workers create and end nested spans (emitting flight-recorder events)
// while the HTTP snapshot handler and the Chrome exporter read — the
// invariant is simply "no race, no torn snapshot" under -race.
func TestConcurrentSpansWithSnapshot(t *testing.T) {
	reg := New()
	rec := trace.New(1 << 10)
	reg.SetTracer(rec)
	root := reg.StartSpan("verify-parallel")

	srv := httptest.NewServer(reg.Mux(false))
	defer srv.Close()

	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stopReaders:
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/debug/vars")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			_ = reg.Snapshot()
			_ = trace.BuildChrome(rec)
		}
	}()

	for w := 0; w < 4; w++ {
		wg.Add(1)
		lane := reg.NewTrack(fmt.Sprintf("worker-%d", w))
		go func(w int, lane *trace.Track) {
			defer wg.Done()
			ws := root.ChildOn(lane, fmt.Sprintf("worker-%d", w))
			for i := 0; i < 200; i++ {
				c := ws.Child("check")
				reg.Counter("verify.checked").Inc()
				lane.Counter("bcp.propagations", int64(i))
				c.End()
			}
			ws.End()
		}(w, lane)
	}
	wg.Wait()
	close(stopReaders)
	readers.Wait()
	root.End()

	snap := reg.Snapshot()
	if snap.Counters["verify.checked"] != 800 {
		t.Errorf("checked = %d, want 800", snap.Counters["verify.checked"])
	}
	// 4 lanes × 200 check spans: the span tree must have every child.
	total := 0
	var count func(s *SpanSnapshot)
	count = func(s *SpanSnapshot) {
		if s.Name == "check" {
			total++
		}
		for _, c := range s.Children {
			count(c)
		}
	}
	count(snap.Spans)
	if total != 800 {
		t.Errorf("span tree holds %d check spans, want 800", total)
	}
}
