// Package obs is the repository's zero-dependency observability layer:
// a metrics registry (atomic counters, gauges, histograms with exponential
// buckets), lightweight wall-clock spans with parent/child nesting, and a
// periodic progress reporter.
//
// The paper's proofs are enormous (§6 reports a 257 MB trace for 7pipe), so
// a verifier that runs silently for minutes is operationally useless. This
// package gives the hot paths — BCP, core.Verify, the CDCL solver, proof
// IO — something to report into, and the CLIs three ways to surface it:
// a JSON snapshot (-stats-json), a live stderr line (-progress), and an
// expvar-style HTTP endpoint (-metrics).
//
// # Disabled-path cost contract
//
// Everything in this package is nil-safe: a nil *Registry hands out nil
// *Counter/*Gauge/*Histogram/*Span handles, and every method on a nil
// handle is a no-op. Instrumented code therefore acquires its handles once
// (from a possibly-nil registry) and calls them unconditionally; when
// observability is off the entire cost is a single nil pointer check per
// call site. No locks, no allocation, no time.Now. When on, counters and
// gauges cost one atomic RMW and histograms one extra atomic for the
// bucket.
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/trace"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter ignores all writes and reads as 0.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d (d should be >= 0; Counter does not enforce monotonicity).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value. The zero value is ready to use;
// a nil Gauge ignores all writes and reads as 0.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (useful for level-style gauges).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// SetMax raises the gauge to v if v is larger than the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of exponential buckets: bucket i counts
// observations v with v <= 1<<i (bucket 0: v <= 1), the last bucket
// absorbing everything larger.
const histBuckets = 63

// Histogram counts observations in exponential (power-of-two) buckets and
// tracks count, sum, min and max. Obtain via Registry.Histogram (which
// seeds the extremes); a nil Histogram ignores all writes.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps an observation to its bucket: 0 for v <= 1, otherwise
// the smallest i with v <= 1<<i.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry is a named collection of counters, gauges, histograms and a span
// tree. Create with New; a nil *Registry is the disabled state and hands
// out nil instrument handles.
type Registry struct {
	start time.Time
	root  *Span

	tracer     *trace.Recorder
	traceTrack *trace.Track // the "main" lane; nil when no recorder attached

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New creates an enabled registry whose root span starts now.
func New() *Registry {
	return &Registry{
		start:    time.Now(),
		root:     newSpan("total"),
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// SetTracer attaches a flight recorder: from now on every span created
// under the registry emits begin/end events onto a trace lane, starting
// with a "main" lane holding the root span (whose begin event is
// back-dated to the span's actual start). Call once, during setup, before
// any concurrent instrumentation begins. A no-op on a nil registry or a
// nil recorder.
func (r *Registry) SetTracer(rec *trace.Recorder) {
	if r == nil || rec == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracer = rec
	r.traceTrack = rec.Track("main")
	r.root.track = r.traceTrack
	r.root.tid = r.traceTrack.BeginAt(r.root.name, 0, r.root.start)
}

// Tracer returns the attached flight recorder (nil when none, or on a nil
// registry).
func (r *Registry) Tracer() *trace.Recorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracer
}

// TraceTrack returns the registry's "main" trace lane — the one the root
// span lives on. Nil (a valid no-op handle) when no recorder is attached.
func (r *Registry) TraceTrack() *trace.Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traceTrack
}

// NewTrack creates an additional named trace lane (for a parallel worker's
// private timeline). Nil when no recorder is attached.
func (r *Registry) NewTrack(name string) *trace.Track {
	return r.Tracer().Track(name)
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		h.min.Store(math.MaxInt64)
		h.max.Store(math.MinInt64)
		r.hists[name] = h
	}
	return h
}
