package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ProgressConfig configures a Progress reporter.
type ProgressConfig struct {
	// Label names the activity, e.g. "verify". Printed on every line.
	Label string
	// Unit names what is being counted, e.g. "clauses". Default "steps".
	Unit string
	// Total is the number of steps expected; 0 means unknown (percent and
	// ETA are then omitted).
	Total int64
	// Every emits a report each Every steps. Default 1000.
	Every int64
	// Interval, when positive, additionally emits a report every Interval
	// of wall time from a background ticker goroutine — so a run stalled
	// inside one enormous BCP call still reports. The goroutine is stopped
	// (and joined) by Finish.
	Interval time.Duration
	// Aux, when non-nil, is called at report time and its result appended
	// to the line — e.g. a mark-rate column read off a Registry.
	Aux func() string
}

// Progress periodically writes a one-line status report ("c progress ...")
// to a writer as Step is called from any number of goroutines. A nil
// *Progress (the disabled state) absorbs all calls, so hot loops can step
// it unconditionally for the cost of a nil check.
type Progress struct {
	w   io.Writer
	cfg ProgressConfig

	start time.Time
	n     atomic.Int64
	next  atomic.Int64 // step count that triggers the next report

	finished atomic.Bool   // Finish already ran (makes Finish idempotent)
	stop     chan struct{} // closed by Finish to stop the ticker goroutine
	done     chan struct{} // closed by the ticker goroutine on exit

	mu sync.Mutex // serializes report lines
}

// NewProgress creates a reporter writing to w. Pass the result around as
// *Progress even when nil: all methods are nil-safe. When cfg.Interval is
// positive a ticker goroutine runs until Finish is called — callers that
// set an interval own a Finish call (both CLIs' run paths already do).
func NewProgress(w io.Writer, cfg ProgressConfig) *Progress {
	if cfg.Every <= 0 {
		cfg.Every = 1000
	}
	if cfg.Unit == "" {
		cfg.Unit = "steps"
	}
	p := &Progress{w: w, cfg: cfg, start: time.Now()}
	p.next.Store(cfg.Every)
	if cfg.Interval > 0 {
		p.stop = make(chan struct{})
		p.done = make(chan struct{})
		go p.tick()
	}
	return p
}

// tick emits a report every Interval until Finish closes the stop channel.
func (p *Progress) tick() {
	defer close(p.done)
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.report(p.n.Load(), false)
		}
	}
}

// Step advances the reporter by d steps, emitting a report line whenever
// the count crosses a multiple of Every. Safe for concurrent use; at most
// one goroutine emits any given report.
func (p *Progress) Step(d int64) {
	if p == nil {
		return
	}
	n := p.n.Add(d)
	for {
		next := p.next.Load()
		if n < next {
			return
		}
		if p.next.CompareAndSwap(next, next+p.cfg.Every) {
			p.report(n, false)
			return
		}
	}
}

// Done returns the number of steps taken so far.
func (p *Progress) Done() int64 {
	if p == nil {
		return 0
	}
	return p.n.Load()
}

// Finish stops the ticker goroutine (joining it, so no goroutine outlives
// the reporter) and emits a final summary line — including the percentage
// when a total is known, so a run that completes between ticks still ends
// with an explicit 100% line. Idempotent; only the first call reports.
func (p *Progress) Finish() {
	if p == nil || p.finished.Swap(true) {
		return
	}
	if p.stop != nil {
		close(p.stop)
		<-p.done
	}
	p.report(p.n.Load(), true)
}

func (p *Progress) report(n int64, final bool) {
	elapsed := time.Since(p.start)
	secs := elapsed.Seconds()
	rate := 0.0
	if secs > 0 {
		rate = float64(n) / secs
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if final {
		if p.cfg.Total > 0 {
			fmt.Fprintf(p.w, "c progress %s: done %d/%d %s (%.1f%%) in %.2fs (%.0f/s)\n",
				p.cfg.Label, n, p.cfg.Total, p.cfg.Unit,
				100*float64(n)/float64(p.cfg.Total), secs, rate)
			return
		}
		fmt.Fprintf(p.w, "c progress %s: done %d %s in %.2fs (%.0f/s)\n",
			p.cfg.Label, n, p.cfg.Unit, secs, rate)
		return
	}
	line := fmt.Sprintf("c progress %s: %d", p.cfg.Label, n)
	if p.cfg.Total > 0 {
		line += fmt.Sprintf("/%d %s (%.1f%%)", p.cfg.Total, p.cfg.Unit,
			100*float64(n)/float64(p.cfg.Total))
	} else {
		line += " " + p.cfg.Unit
	}
	line += fmt.Sprintf(" %.0f/s", rate)
	if p.cfg.Total > 0 && rate > 0 && n < p.cfg.Total {
		eta := time.Duration(float64(p.cfg.Total-n) / rate * float64(time.Second))
		line += fmt.Sprintf(" eta %s", eta.Round(100*time.Millisecond))
	}
	if p.cfg.Aux != nil {
		if aux := p.cfg.Aux(); aux != "" {
			line += " " + aux
		}
	}
	fmt.Fprintln(p.w, line)
}
