package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Recorder
	tr := r.Track("x")
	if tr != nil {
		t.Fatal("nil recorder must hand out nil tracks")
	}
	id := tr.Begin("a", 0)
	if id != 0 {
		t.Fatalf("nil track Begin = %d, want 0", id)
	}
	tr.End(id, "a")
	tr.Counter("c", 1)
	tr.Instant("i", 2)
	if got := r.Events(); got != nil {
		t.Fatalf("nil recorder Events = %v, want nil", got)
	}
	if r.Dropped() != 0 || r.NextID() != 0 || tr.ID() != -1 || tr.Name() != "" {
		t.Fatal("nil accessors must return zero values")
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		t.Fatalf("WriteChrome(nil): %v", err)
	}
	if err := WriteJSONL(&buf, r); err != nil {
		t.Fatalf("WriteJSONL(nil): %v", err)
	}
}

func TestSpanTreeAndOrder(t *testing.T) {
	r := New(0)
	main := r.Track("main")
	root := main.Begin("total", 0)
	child := main.Begin("verify", root)
	grand := main.Begin("check-loop", child)
	main.Counter("checked", 1)
	main.Counter("checked", 2)
	main.Instant("checkpoint.epoch", 7)
	main.End(grand, "check-loop")
	main.End(child, "verify")
	main.End(root, "total")

	ev := r.Events()
	if len(ev) != 9 {
		t.Fatalf("got %d events, want 9", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].T < ev[i-1].T {
			t.Fatalf("events out of order at %d", i)
		}
	}
	parents := map[string]uint64{}
	ids := map[string]uint64{}
	for _, e := range ev {
		if e.Kind == KindSpanBegin {
			ids[e.Name] = e.ID
			parents[e.Name] = e.Parent
		}
	}
	if parents["verify"] != ids["total"] || parents["check-loop"] != ids["verify"] {
		t.Fatalf("parent links wrong: ids=%v parents=%v", ids, parents)
	}
}

func TestRingOverflowKeepsNewest(t *testing.T) {
	r := New(4)
	tr := r.Track("main")
	for i := 0; i < 10; i++ {
		tr.Instant("e", int64(i))
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want ring capacity 4", len(ev))
	}
	for i, e := range ev {
		if want := int64(6 + i); e.Arg != want {
			t.Fatalf("event %d arg = %d, want %d (newest retained)", i, e.Arg, want)
		}
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
}

func TestCounterPair(t *testing.T) {
	r := New(0)
	tr := r.Track("main")
	tr.CounterPair("bcp.propagations", 12, "bcp.watcher_visits", 34)
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("got %d events, want 2", len(ev))
	}
	if ev[0].Kind != KindCounter || ev[1].Kind != KindCounter {
		t.Fatalf("kinds = %v %v, want counters", ev[0].Kind, ev[1].Kind)
	}
	if ev[0].T != ev[1].T {
		t.Fatalf("paired counters must share a timestamp: %d vs %d", ev[0].T, ev[1].T)
	}
	if ev[0].Name != "bcp.propagations" || ev[0].Arg != 12 ||
		ev[1].Name != "bcp.watcher_visits" || ev[1].Arg != 34 {
		t.Fatalf("wrong payload: %+v %+v", ev[0], ev[1])
	}
	var nilTrack *Track
	nilTrack.CounterPair("a", 1, "b", 2) // must not panic

	// Overflow accounting matches the single-event path.
	small := New(2)
	st := small.Track("main")
	st.CounterPair("a", 1, "b", 2)
	st.CounterPair("c", 3, "d", 4)
	ev = small.Events()
	if len(ev) != 2 || ev[0].Name != "c" || ev[1].Name != "d" {
		t.Fatalf("overflowed ring = %+v, want newest pair", ev)
	}
	if small.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", small.Dropped())
	}
}

// BenchmarkCounterPair is the deterministic cost figure for the BCP
// engines' per-Refute emission: suite-level wall-clock comparisons are
// noise-bound on shared machines, so this is where the real per-event
// price is read.
func BenchmarkCounterPair(b *testing.B) {
	r := New(1 << 16)
	tr := r.Track("main")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.CounterPair("bcp.propagations", 1, "bcp.watcher_visits", 2)
	}
}

func TestConcurrentTracksAndSnapshot(t *testing.T) {
	r := New(1 << 12)
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		tr := r.Track("worker")
		wg.Add(1)
		go func(tr *Track) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := tr.Begin("check", 0)
				tr.Counter("props", 3)
				tr.End(id, "check")
			}
		}(tr)
	}
	// Concurrent snapshots must see internally consistent rings.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Events()
			_ = BuildChrome(r)
		}
	}()
	wg.Wait()
	<-done
	ev := r.Events()
	if want := workers * perWorker * 3; len(ev) != want {
		t.Fatalf("got %d events, want %d", len(ev), want)
	}
	if r.Dropped() != 0 {
		t.Fatalf("unexpected drops: %d", r.Dropped())
	}
}

func TestChromeExportPairsSpans(t *testing.T) {
	r := New(0)
	tr := r.Track("main")
	a := tr.Begin("outer", 0)
	b := tr.Begin("inner", a)
	tr.End(b, "inner")
	// "outer" never ends: must surface as a lone "B".
	_ = a
	tr.Counter("c", 5)
	tr.Counter("c", -2)
	tr.Instant("mark", 9)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		t.Fatal(err)
	}
	var ct ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v", err)
	}
	var sawX, sawB, sawMeta bool
	var lastCounter float64
	for _, e := range ct.TraceEvents {
		switch {
		case e.Ph == "X" && e.Name == "inner":
			sawX = true
			if e.Args["parent"] == nil {
				t.Error("inner X event lost its parent link")
			}
		case e.Ph == "B" && e.Name == "outer":
			sawB = true
		case e.Ph == "M" && e.Name == "thread_name":
			sawMeta = true
		case e.Ph == "C":
			lastCounter = e.Args["value"].(float64)
		case e.Ph == "i" && e.Name == "mark":
			if e.S != "t" {
				t.Errorf("instant scope = %q, want t", e.S)
			}
		}
	}
	if !sawX || !sawB || !sawMeta {
		t.Fatalf("missing event shapes: X=%v B=%v M=%v", sawX, sawB, sawMeta)
	}
	if lastCounter != 3 {
		t.Fatalf("final counter value = %v, want accumulated 3", lastCounter)
	}
}

func TestJSONLExport(t *testing.T) {
	r := New(0)
	tr := r.Track("main")
	id := tr.Begin("s", 0)
	tr.End(id, "s")
	tr.Counter("c", 4)

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		if m["track"] != "main" {
			t.Fatalf("line %q has track %v, want main", line, m["track"])
		}
	}
}
