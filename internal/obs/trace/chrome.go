package trace

import (
	"encoding/json"
	"io"
)

// ChromeEvent is one entry of the Chrome trace-event format's traceEvents
// array (the JSON Object Format), as consumed by chrome://tracing and
// Perfetto. Only the fields the recorder produces are modelled; the same
// struct round-trips in tests and in cmd tooling that validates emitted
// traces.
type ChromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`            // "X" complete, "B" begin, "C" counter, "i" instant, "M" metadata
	Ts   float64        `json:"ts"`            // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"` // microseconds, "X" only
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the object-format envelope.
type ChromeTrace struct {
	TraceEvents []ChromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// chromePid is the single logical process all events belong to.
const chromePid = 1

// BuildChrome converts the recorder's events into Chrome trace-event form.
//
// Span begin/end pairs become "X" (complete) events — unlike "B"/"E"
// pairs, complete events carry their own duration and need no per-thread
// stack discipline, so overlapping spans on one track render correctly.
// A begin whose end was never recorded (a still-running span, or an end
// that fell off the ring) is emitted as a lone "B", which viewers
// auto-close at the end of the trace. Counter deltas are accumulated into
// running values per (track, name) and emitted as "C" events; instants as
// thread-scoped "i". Each track gets a thread_name metadata record.
func BuildChrome(r *Recorder) *ChromeTrace {
	out := &ChromeTrace{Metadata: map[string]any{}}
	if r == nil {
		return out
	}
	names := r.TrackNames()
	events := r.Events()
	out.Metadata["trace_start"] = r.Start().Format("2006-01-02T15:04:05.000000000Z07:00")
	if d := r.Dropped(); d > 0 {
		out.Metadata["dropped_events"] = d
	}

	out.TraceEvents = append(out.TraceEvents, ChromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]any{"name": "dpv"},
	})
	for tid, name := range names {
		out.TraceEvents = append(out.TraceEvents, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: int64(tid),
			Args: map[string]any{"name": name},
		})
	}

	// endAt maps span ID -> end timestamp for pairing.
	endAt := make(map[uint64]int64)
	for _, e := range events {
		if e.Kind == KindSpanEnd {
			endAt[e.ID] = e.T
		}
	}

	type counterKey struct {
		track int32
		name  string
	}
	running := make(map[counterKey]int64)

	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	for _, e := range events {
		switch e.Kind {
		case KindSpanBegin:
			ce := ChromeEvent{
				Name: e.Name, Ts: us(e.T), Pid: chromePid, Tid: int64(e.Track),
				Args: map[string]any{"id": e.ID},
			}
			if e.Parent != 0 {
				ce.Args["parent"] = e.Parent
			}
			if end, ok := endAt[e.ID]; ok && end >= e.T {
				ce.Ph = "X"
				ce.Dur = us(end - e.T)
			} else {
				ce.Ph = "B"
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		case KindSpanEnd:
			// folded into the paired "X"; lone ends (begin fell off the
			// ring) carry no renderable interval and are dropped.
		case KindCounter:
			k := counterKey{e.Track, e.Name}
			running[k] += e.Arg
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: e.Name, Ph: "C", Ts: us(e.T), Pid: chromePid, Tid: int64(e.Track),
				Args: map[string]any{"value": running[k]},
			})
		case KindInstant:
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: e.Name, Ph: "i", Ts: us(e.T), Pid: chromePid, Tid: int64(e.Track),
				S:    "t",
				Args: map[string]any{"arg": e.Arg},
			})
		}
	}
	return out
}

// WriteChrome writes the recorder's events as Chrome trace-event JSON.
// The output loads directly into chrome://tracing or https://ui.perfetto.dev.
func WriteChrome(w io.Writer, r *Recorder) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(BuildChrome(r))
}

// jsonlEvent is the machine-diffable JSONL shape of an Event.
type jsonlEvent struct {
	Kind   string `json:"kind"`
	Track  string `json:"track"`
	TNanos int64  `json:"t_ns"`
	ID     uint64 `json:"id,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Arg    int64  `json:"arg,omitempty"`
}

// WriteJSONL dumps the recorder's events one JSON object per line, in
// timestamp order — the exchange format for diffing two runs' event
// streams with line-oriented tools.
func WriteJSONL(w io.Writer, r *Recorder) error {
	names := r.TrackNames()
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		track := ""
		if int(e.Track) < len(names) {
			track = names[e.Track]
		}
		je := jsonlEvent{
			Kind: e.Kind.String(), Track: track, TNanos: e.T,
			ID: e.ID, Parent: e.Parent, Name: e.Name, Arg: e.Arg,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}
