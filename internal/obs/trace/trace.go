// Package trace is the verification pipeline's flight recorder: a
// low-overhead, lock-sharded ring buffer of typed events that the rest of
// internal/obs writes into while a run is live and the exporters
// (Chrome trace-event JSON, JSONL) read out afterwards.
//
// The paper's backward scan is only trustworthy at scale if a run can
// explain where its time and work went — which proof clause took 10^6
// propagations, when a checkpoint epoch rebuilt the engine, which worker
// claimed which chunk. Counters and wall-clock spans (package obs) answer
// "how much"; the recorder answers "when, in what order, under which
// parent".
//
// # Design
//
// Events land on tracks. A track is one timeline lane — "main" for the
// sequential pipeline, "worker-3" for a parallel verification worker, and
// so on — and owns a private mutex plus a fixed-capacity ring of events, so
// concurrent emitters on different tracks never contend and an emitter only
// ever contends with a snapshot reader. When a ring fills, the oldest
// events are overwritten and counted as dropped: a flight recorder keeps
// the most recent window, it never stalls or grows without bound.
//
// Everything is nil-safe in the package-obs idiom: a nil *Recorder hands
// out nil *Track handles and every method on a nil handle is a no-op, so
// instrumented code acquires its track once and emits unconditionally for
// the cost of a nil check when tracing is off.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates event types.
type Kind uint8

const (
	// KindSpanBegin opens a span: ID is the span's identity, Parent links
	// it into the span tree (0 = no parent), Name labels it.
	KindSpanBegin Kind = iota + 1
	// KindSpanEnd closes the span identified by ID.
	KindSpanEnd
	// KindCounter records a delta of the named counter (Arg = delta).
	// Exporters accumulate deltas into the running value per track.
	KindCounter
	// KindInstant marks a point in time: a checkpoint epoch, a journal
	// append, a budget/cancellation edge, a worker chunk claim. Arg carries
	// one event-specific integer (an index, a byte count).
	KindInstant
)

func (k Kind) String() string {
	switch k {
	case KindSpanBegin:
		return "span-begin"
	case KindSpanEnd:
		return "span-end"
	case KindCounter:
		return "counter"
	case KindInstant:
		return "instant"
	}
	return "unknown"
}

// Event is one recorded fact. T is nanoseconds since the recorder was
// created (monotonic); Track identifies the lane it was emitted on.
type Event struct {
	Kind   Kind
	Track  int32
	ID     uint64 // span identity for begin/end, 0 otherwise
	Parent uint64 // parent span identity for begin, 0 otherwise
	T      int64  // nanos since Recorder start
	Name   string
	Arg    int64
}

// DefaultTrackEvents is the per-track ring capacity used when New is given
// a non-positive capacity: 64Ki events ≈ 4 MB per track, a few minutes of
// per-check telemetry on industrial proofs.
const DefaultTrackEvents = 1 << 16

// Recorder owns the tracks and the span-ID space. Create with New; a nil
// *Recorder is the disabled state.
type Recorder struct {
	start   time.Time
	perCap  int
	ids     atomic.Uint64
	dropped atomic.Int64

	mu     sync.Mutex
	tracks []*Track
}

// New creates a recorder whose clock starts now. perTrackEvents is each
// track's ring capacity; non-positive selects DefaultTrackEvents.
func New(perTrackEvents int) *Recorder {
	if perTrackEvents <= 0 {
		perTrackEvents = DefaultTrackEvents
	}
	return &Recorder{start: time.Now(), perCap: perTrackEvents}
}

// now returns nanos since the recorder's start, read off the monotonic
// clock. Negative readings (an event stamped with a time captured before
// the recorder existed) clamp to 0.
func (r *Recorder) now() int64 {
	d := int64(time.Since(r.start))
	if d < 0 {
		return 0
	}
	return d
}

// NextID allocates a process-unique span identity (never 0).
func (r *Recorder) NextID() uint64 {
	if r == nil {
		return 0
	}
	return r.ids.Add(1)
}

// Track creates a new named lane. Returns nil (a valid no-op handle) on a
// nil recorder.
func (r *Recorder) Track(name string) *Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &Track{rec: r, id: int32(len(r.tracks)), name: name, buf: make([]Event, 0, r.perCap)}
	r.tracks = append(r.tracks, t)
	return t
}

// Dropped returns how many events were overwritten across all tracks.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// TrackNames returns the lane names indexed by Event.Track.
func (r *Recorder) TrackNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.tracks))
	for i, t := range r.tracks {
		names[i] = t.name
	}
	return names
}

// Start returns the wall-clock instant the recorder's T=0 corresponds to.
func (r *Recorder) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// Events snapshots every track and returns the merged event list in
// timestamp order (ties broken by track then arrival order, so the result
// is deterministic for a given recorded history). Safe to call while
// emitters are still writing; each track is locked only long enough to
// copy its ring.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	tracks := append([]*Track(nil), r.tracks...)
	r.mu.Unlock()
	var all []Event
	for _, t := range tracks {
		all = append(all, t.snapshot()...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].T != all[j].T {
			return all[i].T < all[j].T
		}
		return all[i].Track < all[j].Track
	})
	return all
}

// Track is one timeline lane: a mutex plus a ring of events. All methods
// are nil-safe no-ops on a nil *Track.
type Track struct {
	rec  *Recorder
	id   int32
	name string

	mu   sync.Mutex
	buf  []Event // grows to cap, then becomes a ring
	head int     // next overwrite position once len(buf) == cap
}

// ID returns the track's index (matches Event.Track); -1 for nil.
func (t *Track) ID() int32 {
	if t == nil {
		return -1
	}
	return t.id
}

// Name returns the lane name ("" for nil).
func (t *Track) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

func (t *Track) emit(e Event) {
	e.Track = t.id
	t.mu.Lock()
	t.emitLocked(e)
	t.mu.Unlock()
}

func (t *Track) emitLocked(e Event) {
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		// Ring is full: overwrite the oldest event.
		t.buf[t.head] = e
		t.head++
		if t.head == len(t.buf) {
			t.head = 0
		}
		t.rec.dropped.Add(1)
	}
}

// snapshot copies the ring out in arrival order (oldest first).
func (t *Track) snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.head:]...)
	out = append(out, t.buf[:t.head]...)
	return out
}

// Begin opens a span under parent (0 for a root span) and returns its
// identity. The returned ID is 0 on a nil track, which End and Begin both
// accept, so disabled-path call sites need no branches.
func (t *Track) Begin(name string, parent uint64) uint64 {
	if t == nil {
		return 0
	}
	id := t.rec.NextID()
	t.emit(Event{Kind: KindSpanBegin, ID: id, Parent: parent, T: t.rec.now(), Name: name})
	return id
}

// BeginAt is Begin with an explicit start instant, for spans whose clock
// started before the recorder was attached (the registry root span).
func (t *Track) BeginAt(name string, parent uint64, at time.Time) uint64 {
	if t == nil {
		return 0
	}
	id := t.rec.NextID()
	ts := int64(at.Sub(t.rec.start))
	if ts < 0 {
		ts = 0
	}
	t.emit(Event{Kind: KindSpanBegin, ID: id, Parent: parent, T: ts, Name: name})
	return id
}

// End closes the span opened as id. A zero id (disabled Begin) is ignored.
func (t *Track) End(id uint64, name string) {
	if t == nil || id == 0 {
		return
	}
	t.emit(Event{Kind: KindSpanEnd, ID: id, T: t.rec.now(), Name: name})
}

// Counter records a delta of the named counter on this track.
func (t *Track) Counter(name string, delta int64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindCounter, T: t.rec.now(), Name: name, Arg: delta})
}

// CounterPair records two counter deltas sharing one timestamp and one
// lock acquisition — the per-check hot-path form used by the BCP engines,
// which emit two deltas on every Refute.
func (t *Track) CounterPair(name1 string, d1 int64, name2 string, d2 int64) {
	if t == nil {
		return
	}
	ts := t.rec.now()
	t.mu.Lock()
	t.emitLocked(Event{Kind: KindCounter, Track: t.id, T: ts, Name: name1, Arg: d1})
	t.emitLocked(Event{Kind: KindCounter, Track: t.id, T: ts, Name: name2, Arg: d2})
	t.mu.Unlock()
}

// Instant marks a point event on this track.
func (t *Track) Instant(name string, arg int64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindInstant, T: t.rec.now(), Name: name, Arg: arg})
}
