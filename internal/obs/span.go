package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/trace"
)

// spanRunning is the sentinel duration of a span that has not Ended yet.
const spanRunning = int64(-1)

// Span is a wall-clock interval with named children. Spans form a tree
// under the registry's root; any span may be Ended from a different
// goroutine than created it, and children may be created concurrently.
// A nil *Span (the disabled state) absorbs all calls.
//
// When the registry has a flight recorder attached (SetTracer), every span
// doubles as a trace event pair: creation emits a span-begin carrying the
// span's identity and its parent's, End emits the matching span-end, and
// the lane is inherited from the parent (overridable via ChildOn, which is
// how parallel workers get their own timeline).
type Span struct {
	name     string
	start    time.Time
	durNanos atomic.Int64 // spanRunning until End

	track *trace.Track // nil when no recorder is attached
	tid   uint64       // trace span identity (0 when untraced)

	mu       sync.Mutex
	children []*Span
}

func newSpan(name string) *Span {
	s := &Span{name: name, start: time.Now()}
	s.durNanos.Store(spanRunning)
	return s
}

// newTracedSpan creates a span and emits its begin event on track (a nil
// track yields an untraced span).
func newTracedSpan(name string, track *trace.Track, parent uint64) *Span {
	s := newSpan(name)
	s.track = track
	s.tid = track.Begin(name, parent)
	return s
}

// Root returns the registry's root span (nil on a nil registry). The root
// starts when the registry is created and is Ended by Snapshot if still
// running, so its duration approximates total process time.
func (r *Registry) Root() *Span {
	if r == nil {
		return nil
	}
	return r.root
}

// StartSpan starts a new child of the root span.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return r.root.Child(name)
}

// Child starts a new child span. Safe for concurrent use. The child
// inherits the parent's trace lane.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newTracedSpan(name, s.track, s.tid)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ChildOn starts a new child span whose trace events land on the given
// lane instead of the parent's — the parent link is kept, so the span tree
// stays intact while the timeline shows the child on its own track. A nil
// track falls back to plain Child.
func (s *Span) ChildOn(track *trace.Track, name string) *Span {
	if s == nil {
		return nil
	}
	if track == nil {
		return s.Child(name)
	}
	c := newTracedSpan(name, track, s.tid)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stops the span and returns its duration. End is idempotent: the
// first call wins (and emits the span-end trace event), later calls return
// the recorded duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.durNanos.CompareAndSwap(spanRunning, int64(d)) {
		s.track.End(s.tid, s.name)
		return d
	}
	return time.Duration(s.durNanos.Load())
}

// Duration returns the span's duration: the recorded one if Ended, the
// running elapsed time otherwise.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if d := s.durNanos.Load(); d != spanRunning {
		return time.Duration(d)
	}
	return time.Since(s.start)
}

// Running reports whether the span has not been Ended.
func (s *Span) Running() bool {
	return s != nil && s.durNanos.Load() == spanRunning
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}
