package obs

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler returns an expvar-style HTTP handler that serves the registry's
// JSON snapshot on every request. Works on a nil registry (serves "null"),
// so CLIs can wire -metrics unconditionally.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// PrometheusHandler serves the registry in the Prometheus text exposition
// format, for scraping by a Prometheus server pointed at /metrics.
func (r *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Mux assembles the observability endpoint: the JSON snapshot at
// /debug/vars (and at /, the historical behaviour), the Prometheus
// exposition at /metrics, and — only when enablePprof is set — the
// net/http/pprof profiling handlers under /debug/pprof/. pprof is opt-in
// because it exposes CPU/heap profiling of a possibly long-privileged
// process; nothing is mounted on the default mux either way.
func (r *Registry) Mux(enablePprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/", r.Handler())
	mux.Handle("/debug/vars", r.Handler())
	mux.Handle("/metrics", r.PrometheusHandler())
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Serve starts the observability HTTP server on addr (e.g. ":8123" or
// "localhost:0") in a background goroutine, serving the Mux routes. It
// returns the bound address — useful with port 0 — and a shutdown function.
// The listener is also closed when ctx is cancelled, so a SIGINT that
// aborts a verification mid-run tears the endpoint down even if the exit
// path never reaches the deferred shutdown (a nil ctx disables that
// coupling). Shutdown is idempotent and safe to race with the ctx path.
func Serve(ctx context.Context, addr string, r *Registry, enablePprof bool) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: r.Mux(enablePprof)}
	var closeOnce sync.Once
	var closeErr error
	shutdown := func() error {
		closeOnce.Do(func() { closeErr = srv.Close() })
		return closeErr
	}
	done := make(chan struct{})
	go func() {
		// ErrServerClosed after shutdown is the normal exit; any earlier
		// error just stops the metrics endpoint, never the verification.
		_ = srv.Serve(ln)
		close(done)
	}()
	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				_ = shutdown()
			case <-done:
			}
		}()
	}
	return ln.Addr(), shutdown, nil
}

// CountingWriter wraps w, adding every written byte count to c. Used to
// meter proof streams without the solver knowing about metering.
func CountingWriter(w io.Writer, c *Counter) io.Writer {
	return &countingWriter{w: w, c: c}
}

type countingWriter struct {
	w io.Writer
	c *Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(int64(n))
	return n, err
}

// CountingReader wraps r, adding every read byte count to c.
func CountingReader(r io.Reader, c *Counter) io.Reader {
	return &countingReader{r: r, c: c}
}

type countingReader struct {
	r io.Reader
	c *Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(int64(n))
	return n, err
}
