package obs

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler returns an expvar-style HTTP handler that serves the registry's
// JSON snapshot on every request. Works on a nil registry (serves "null"),
// so CLIs can wire -metrics unconditionally.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// PrometheusHandler serves the registry in the Prometheus text exposition
// format, for scraping by a Prometheus server pointed at /metrics.
func (r *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Health bundles the liveness and readiness probes Mux serves at /healthz
// and /readyz, the split orchestrators expect: liveness answers "should
// this process be restarted?" (a hung daemon fails it), readiness answers
// "should this process receive traffic right now?" (a saturated queue or an
// unwritable job store fails it without being grounds for a restart). The
// zero value — and a nil probe — always passes, so a plain metrics CLI gets
// working health endpoints for free.
type Health struct {
	// Live, when non-nil, is consulted by /healthz; a non-nil error turns
	// into 503 with the error text in the body.
	Live func() error
	// Ready, when non-nil, is consulted by /readyz the same way.
	Ready func() error
}

// healthHandler renders a probe outcome: 200 "ok" or 503 with the reason.
// The body is plain text — these endpoints are read by load balancers and
// humans with curl, not JSON consumers.
func healthHandler(probe func() error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if probe != nil {
			if err := probe(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				io.WriteString(w, err.Error()+"\n")
				return
			}
		}
		io.WriteString(w, "ok\n")
	})
}

// Mux assembles the observability endpoint: the JSON snapshot at
// /debug/vars (and at /, the historical behaviour), the Prometheus
// exposition at /metrics, liveness/readiness probes at /healthz and
// /readyz (optionally backed by the probes in a Health argument), and —
// only when enablePprof is set — the net/http/pprof profiling handlers
// under /debug/pprof/. pprof is opt-in because it exposes CPU/heap
// profiling of a possibly long-privileged process; nothing is mounted on
// the default mux either way.
func (r *Registry) Mux(enablePprof bool, health ...Health) *http.ServeMux {
	var h Health
	if len(health) > 0 {
		h = health[0]
	}
	mux := http.NewServeMux()
	mux.Handle("/", r.Handler())
	mux.Handle("/debug/vars", r.Handler())
	mux.Handle("/metrics", r.PrometheusHandler())
	mux.Handle("/healthz", healthHandler(h.Live))
	mux.Handle("/readyz", healthHandler(h.Ready))
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Serve starts the observability HTTP server on addr (e.g. ":8123" or
// "localhost:0") in a background goroutine, serving the Mux routes. It
// returns the bound address — useful with port 0 — and a shutdown function.
// The listener is also closed when ctx is cancelled, so a SIGINT that
// aborts a verification mid-run tears the endpoint down even if the exit
// path never reaches the deferred shutdown (a nil ctx disables that
// coupling). Shutdown is idempotent and safe to race with the ctx path.
// An optional Health argument backs the /healthz and /readyz probes.
func Serve(ctx context.Context, addr string, r *Registry, enablePprof bool, health ...Health) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: r.Mux(enablePprof, health...)}
	var closeOnce sync.Once
	var closeErr error
	shutdown := func() error {
		closeOnce.Do(func() { closeErr = srv.Close() })
		return closeErr
	}
	done := make(chan struct{})
	go func() {
		// ErrServerClosed after shutdown is the normal exit; any earlier
		// error just stops the metrics endpoint, never the verification.
		_ = srv.Serve(ln)
		close(done)
	}()
	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				_ = shutdown()
			case <-done:
			}
		}()
	}
	return ln.Addr(), shutdown, nil
}

// CountingWriter wraps w, adding every written byte count to c. Used to
// meter proof streams without the solver knowing about metering.
func CountingWriter(w io.Writer, c *Counter) io.Writer {
	return &countingWriter{w: w, c: c}
}

type countingWriter struct {
	w io.Writer
	c *Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(int64(n))
	return n, err
}

// CountingReader wraps r, adding every read byte count to c.
func CountingReader(r io.Reader, c *Counter) io.Reader {
	return &countingReader{r: r, c: c}
}

type countingReader struct {
	r io.Reader
	c *Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(int64(n))
	return n, err
}
