package obs

import (
	"io"
	"net"
	"net/http"
)

// Handler returns an expvar-style HTTP handler that serves the registry's
// JSON snapshot on every request. Works on a nil registry (serves "null"),
// so CLIs can wire -metrics unconditionally.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Serve starts an HTTP server for the registry on addr (e.g. ":8123" or
// "localhost:0") in a background goroutine, serving the JSON snapshot at
// every path (the conventional /debug/vars included). It returns the bound
// address — useful with port 0 — and a shutdown function. Long verification
// runs poll this endpoint instead of waiting for the exit snapshot.
func Serve(addr string, r *Registry) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() {
		// ErrServerClosed after shutdown is the normal exit; any earlier
		// error just stops the metrics endpoint, never the verification.
		_ = srv.Serve(ln)
	}()
	return ln.Addr(), srv.Close, nil
}

// CountingWriter wraps w, adding every written byte count to c. Used to
// meter proof streams without the solver knowing about metering.
func CountingWriter(w io.Writer, c *Counter) io.Writer {
	return &countingWriter{w: w, c: c}
}

type countingWriter struct {
	w io.Writer
	c *Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(int64(n))
	return n, err
}

// CountingReader wraps r, adding every read byte count to c.
func CountingReader(r io.Reader, c *Counter) io.Reader {
	return &countingReader{r: r, c: c}
}

type countingReader struct {
	r io.Reader
	c *Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(int64(n))
	return n, err
}
