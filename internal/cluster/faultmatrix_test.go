package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/retry"
)

// The router's robustness contract under transport faults: for every
// network fault kind × breaker state, the router (1) never hangs — every
// request answers within a bounded time, (2) never panics — the test
// process survives, and (3) never fabricates success — a 202 means a shard
// really admitted the job, a 200 means a shard really answered.
//
// One shard sits behind a faults.NetProxy; a second healthy shard proves
// degradation stays graceful (admissions keep landing) rather than total.
func TestRouterFaultMatrix(t *testing.T) {
	faulted := startShard(t)
	healthy := startShard(t)
	proxy, err := faults.NewNetProxy(trimScheme(faulted.srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	proxy.SetSlowStart(400 * time.Millisecond)
	proxy.SetResetAfter(64)

	urls := []string{"http://" + proxy.Addr(), healthy.srv.URL}
	opt := fastOptions(urls)
	opt.HealthInterval = time.Hour // admissions must route around faults on their own
	opt.Forward = retry.Policy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond, PerAttempt: 800 * time.Millisecond}
	rt, h := startRouter(t, opt)
	faultedShard := rt.shards[urls[0]]

	f, tr := chainProblem(8)
	body, ct := problemBody(t, f, tr)

	// Each request must complete within the worst honest budget: attempts ×
	// (per-attempt timeout + backoff), plus slack. Far below "hang".
	const requestBound = 10 * time.Second

	for _, kind := range faults.NetKinds {
		for _, forced := range []retry.BreakerState{retry.BreakerClosed, retry.BreakerOpen} {
			name := kind.String() + "/breaker-" + forced.String()
			if err := proxy.Set(kind); err != nil {
				t.Fatalf("%s: set fault: %v", name, err)
			}
			if forced == retry.BreakerOpen {
				faultedShard.breaker.ForceOpen()
			} else {
				faultedShard.breaker.ForceClose()
			}

			// Admission: never hangs, never lies. 202 (a live shard took it)
			// or honest backpressure (503) — nothing else.
			start := time.Now()
			code, id, rw := routerSubmit(t, h, body, ct)
			if d := time.Since(start); d > requestBound {
				t.Fatalf("%s: submit took %v", name, d)
			}
			switch code {
			case http.StatusAccepted:
				if id == "" {
					t.Fatalf("%s: 202 without a job id: %s", name, rw.Body.String())
				}
				start = time.Now()
				result := waitRouterDone(t, h, id)
				if d := time.Since(start); d > requestBound*3 {
					t.Fatalf("%s: job %s took %v to finish", name, id, d)
				}
				if len(result) == 0 {
					t.Fatalf("%s: done without result", name)
				}
			case http.StatusServiceUnavailable:
				if rw.Header().Get("Retry-After") == "" {
					t.Fatalf("%s: 503 without Retry-After", name)
				}
			default:
				t.Fatalf("%s: submit = %d %s", name, code, rw.Body.String())
			}

			// Reads of an unknown job: honest 404/503 within bounds, never a
			// fabricated 200.
			start = time.Now()
			rw2 := routerGet(t, h, "/v1/jobs/ffffffffffffffffffffffffffffffff")
			if d := time.Since(start); d > requestBound {
				t.Fatalf("%s: status read took %v", name, d)
			}
			if rw2.Code != http.StatusNotFound && rw2.Code != http.StatusServiceUnavailable {
				t.Fatalf("%s: unknown-job read = %d %s", name, rw2.Code, rw2.Body.String())
			}
		}
	}

	// Heal everything: the faulted shard must serve again (half-open probe
	// path) — robustness includes recovery, not just survival.
	if err := proxy.Set(faults.NetNone); err != nil {
		t.Fatal(err)
	}
	faultedShard.breaker.ForceClose()
	deadline := time.Now().Add(10 * time.Second)
	for {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("GET", "/readyz", nil))
		if rw.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router not ready after heal: %d", rw.Code)
		}
		time.Sleep(20 * time.Millisecond)
	}
	code, id, rw := routerSubmit(t, h, body, ct)
	if code != http.StatusAccepted {
		t.Fatalf("post-heal submit = %d %s", code, rw.Body.String())
	}
	waitRouterDone(t, h, id)
}

func trimScheme(url string) string {
	const p = "http://"
	if len(url) > len(p) && url[:len(p)] == p {
		return url[len(p):]
	}
	return url
}
