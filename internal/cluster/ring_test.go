package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%032x", i*2654435761)
	}
	return keys
}

func TestRingSpreadsOwnership(t *testing.T) {
	shards := []string{"a", "b", "c"}
	r := NewRing(shards)
	counts := map[string]int{}
	for _, k := range ringKeys(3000) {
		owner, ok := r.Owner(k)
		if !ok {
			t.Fatalf("no owner for %s", k)
		}
		counts[owner]++
	}
	for _, s := range shards {
		// With 64 vnodes the imbalance stays well within 3x of fair share.
		if counts[s] < 300 {
			t.Fatalf("shard %s owns only %d/3000 keys: %v", s, counts[s], counts)
		}
	}
}

func TestRingOwnerStableAndDeterministic(t *testing.T) {
	r1, r2 := NewRing([]string{"a", "b", "c"}), NewRing([]string{"c", "a", "b"})
	for _, k := range ringKeys(200) {
		o1, _ := r1.Owner(k)
		o2, _ := r2.Owner(k)
		if o1 != o2 {
			t.Fatalf("owner of %s differs by construction order: %s vs %s", k, o1, o2)
		}
	}
}

// Ejection must move only the dead shard's keys; readmission must restore
// exactly the original ownership. That minimal-disruption property is why
// the ring is consistent-hashed at all.
func TestRingEjectMovesOnlyDeadKeys(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"})
	keys := ringKeys(1000)
	before := map[string]string{}
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	r.Eject("b")
	for _, k := range keys {
		after, ok := r.Owner(k)
		if !ok {
			t.Fatalf("no owner for %s after eject", k)
		}
		if after == "b" {
			t.Fatalf("ejected shard still owns %s", k)
		}
		if before[k] != "b" && after != before[k] {
			t.Fatalf("key %s moved %s -> %s though its owner survived", k, before[k], after)
		}
	}

	r.Readmit("b")
	for _, k := range keys {
		after, _ := r.Owner(k)
		if after != before[k] {
			t.Fatalf("key %s not restored after readmit: %s -> %s", k, before[k], after)
		}
	}
}

func TestRingSuccessorsDistinctAndLive(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"})
	for _, k := range ringKeys(100) {
		succ := r.Successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("Successors(%s, 3) = %v", k, succ)
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("duplicate successor %s for %s: %v", s, k, succ)
			}
			seen[s] = true
		}
		if owner, _ := r.Owner(k); owner != succ[0] {
			t.Fatalf("owner %s != first successor %s", owner, succ[0])
		}
	}

	r.Eject("a")
	for _, k := range ringKeys(100) {
		succ := r.Successors(k, 3)
		if len(succ) != 2 {
			t.Fatalf("Successors with one ejected = %v, want 2 shards", succ)
		}
		for _, s := range succ {
			if s == "a" {
				t.Fatalf("ejected shard among successors: %v", succ)
			}
		}
	}

	r.Eject("b")
	r.Eject("c")
	if _, ok := r.Owner("anything"); ok {
		t.Fatal("fully ejected ring still resolved an owner")
	}
	if live := r.Live(); len(live) != 0 {
		t.Fatalf("Live() = %v on a fully ejected ring", live)
	}
}
