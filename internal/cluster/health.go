package cluster

import (
	"context"
	"net/http"
	"time"
)

// healthLoop probes every shard's /readyz each HealthInterval. A shard that
// fails HealthFailures consecutive probes is ejected: removed from the
// ring, its breaker forced open, and every job it still owed a verdict
// re-admitted on a surviving shard. A single passing probe readmits it —
// half-open breaker probes then decide when real traffic trusts it again.
func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.opt.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			for _, base := range rt.opt.Shards {
				rt.probe(rt.shards[base])
			}
		}
	}
}

func (rt *Router) probe(sh *shard) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.opt.HealthInterval)
	defer cancel()
	resp, err := rt.doRaw(ctx, sh.base, http.MethodGet, "/readyz", nil, "", nil)
	healthy := err == nil && resp.status == http.StatusOK

	sh.mu.Lock()
	if healthy {
		sh.fails = 0
		if sh.ejected {
			sh.ejected = false
			sh.mu.Unlock()
			rt.readmitShard(sh)
			return
		}
		sh.mu.Unlock()
		return
	}
	sh.fails++
	eject := !sh.ejected && sh.fails >= rt.opt.HealthFailures
	if eject {
		sh.ejected = true
	}
	sh.mu.Unlock()
	if eject {
		rt.ejectShard(sh)
	}
}

func (rt *Router) ejectShard(sh *shard) {
	rt.ring.Eject(sh.base)
	sh.breaker.ForceOpen()
	rt.opt.Obs.Counter("cluster.shard_ejections").Inc()
	rt.opt.Obs.Gauge("cluster.shard_up." + shardLabel(sh.base)).Set(0)
	rt.opt.Obs.TraceTrack().Instant("shard-eject", 0)
	rt.opt.Logf("cluster: shard %s ejected after %d failed probes", sh.base, rt.opt.HealthFailures)
	rt.failover(sh.base)
}

func (rt *Router) readmitShard(sh *shard) {
	rt.ring.Readmit(sh.base)
	sh.breaker.ForceClose()
	rt.opt.Obs.Counter("cluster.shard_readmissions").Inc()
	rt.opt.Obs.Gauge("cluster.shard_up." + shardLabel(sh.base)).Set(1)
	rt.opt.Logf("cluster: shard %s readmitted", sh.base)
}

// failover re-admits every job whose primary was the dead shard and whose
// verdict is not yet safely replicated. Re-admission reuses the retained
// upload and the original job ID, so the surviving shard recomputes the
// same job under the same handle — a client polling the ID never notices
// beyond the extra latency.
func (rt *Router) failover(dead string) {
	rt.mu.Lock()
	var orphans []*routedJob
	for _, j := range rt.jobs {
		if j.Primary == dead && !j.Released {
			orphans = append(orphans, j)
		}
	}
	rt.mu.Unlock()
	for _, j := range orphans {
		rt.readmitJob(j, dead)
	}
}

func (rt *Router) readmitJob(j *routedJob, dead string) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.opt.Forward.PerAttempt)
	defer cancel()
	resp, primary, err := rt.admit(ctx, j.ID, j.Tenant, j.Body, j.ContentType)
	if err != nil || resp.status != http.StatusAccepted {
		status := -1
		if resp != nil {
			status = resp.status
		}
		// Leave the job tracked with its retained body: the next probe
		// cycle (or shard readmission) retries. Nothing is lost — that is
		// the entire point of retaining the upload.
		rt.opt.Obs.Counter("cluster.failover_retries").Inc()
		rt.opt.Logf("cluster: failover of job %s off %s failed (status %d, err %v); will retry", j.ID, dead, status, err)
		return
	}
	rt.mu.Lock()
	j.Primary = primary
	j.Done = false
	j.Verified = false
	j.Verdict = nil
	delete(j.Replicas, primary) // the new primary is no longer a replica
	rt.mu.Unlock()
	rt.opt.Obs.Counter("cluster.failovers").Inc()
	rt.opt.Obs.TraceTrack().Instant("job-failover", 0)
	rt.opt.Logf("cluster: job %s failed over %s -> %s", j.ID, dead, primary)
}

// retryOrphans is the failover sweep for jobs whose re-admission itself
// failed (e.g. every other shard was saturated at the moment of death).
// Called from the replication loop so orphans are retried on a timer
// without a dedicated goroutine.
func (rt *Router) retryOrphans() {
	rt.mu.Lock()
	var orphans []*routedJob
	for _, j := range rt.jobs {
		if !j.Released && j.Primary != "" && !rt.ring.Alive(j.Primary) {
			orphans = append(orphans, j)
		}
	}
	rt.mu.Unlock()
	for _, j := range orphans {
		rt.readmitJob(j, j.Primary)
	}
}
