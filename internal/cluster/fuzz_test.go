package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/retry"
)

// FuzzRouterAdmission throws arbitrary bodies and content types at the
// router's admission path backed by one real shard. The invariants are the
// front tier's: never panic (the recovery middleware is a backstop, not a
// license), never hang, never answer outside the admission status set, and
// never claim 202 without a routable job ID.
func FuzzRouterAdmission(f *testing.F) {
	sh := startShard(f)
	opt := fastOptions([]string{sh.srv.URL})
	opt.Forward = retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, PerAttempt: 5 * time.Second}
	opt.MaxUploadBytes = 1 << 20
	rt, err := New(opt)
	if err != nil {
		f.Fatal(err)
	}
	rt.Start()
	f.Cleanup(rt.Close)
	h := rt.Handler(false)

	fx, tr := chainProblem(5)
	valid, validCT := problemBody(f, fx, tr)
	f.Add(valid, validCT)
	f.Add([]byte{}, "")
	f.Add([]byte("not multipart"), "text/plain")
	f.Add(valid, "text/plain")           // right bytes, wrong framing
	f.Add(valid[:len(valid)/2], validCT) // truncated mid-part
	f.Add([]byte("--x--\r\n"), "multipart/form-data; boundary=x")
	f.Add(bytes.Repeat([]byte("a"), 4096), validCT)

	f.Fuzz(func(t *testing.T, body []byte, contentType string) {
		req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", contentType)
		rw := httptest.NewRecorder()

		start := time.Now()
		h.ServeHTTP(rw, req)
		if d := time.Since(start); d > 60*time.Second {
			t.Fatalf("admission took %v", d)
		}

		switch rw.Code {
		case http.StatusAccepted:
			var resp struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil || resp.ID == "" {
				t.Fatalf("202 without job id: %s", rw.Body.String())
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge:
			// Refused inputs: fine, and must be JSON-typed.
			var er struct {
				Status string `json:"status"`
			}
			if err := json.Unmarshal(rw.Body.Bytes(), &er); err != nil || er.Status == "" {
				t.Fatalf("%d without typed error: %s", rw.Code, rw.Body.String())
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if rw.Header().Get("Retry-After") == "" {
				t.Fatalf("%d without Retry-After", rw.Code)
			}
		default:
			t.Fatalf("admission answered %d: %s", rw.Code, rw.Body.String())
		}
	})
}
