package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/service"
)

// Options configures a Router. Zero fields take the documented defaults.
type Options struct {
	// Shards lists the backend dpvd base URLs (e.g. "http://127.0.0.1:8101").
	Shards []string
	// Replication is the total number of shards holding each completed
	// verdict, primary included. Default 2; clamped to the shard count.
	Replication int
	// HedgeDelay is how long a read waits on the primary before also asking
	// a replica. Default 50ms.
	HedgeDelay time.Duration
	// HealthInterval is the /readyz probe period. Default 250ms.
	HealthInterval time.Duration
	// HealthFailures is how many consecutive probe failures eject a shard.
	// Default 3.
	HealthFailures int
	// ReplicateInterval is the verdict-replication sweep period. Default 100ms.
	ReplicateInterval time.Duration
	// RetryAfter / RetryJitter shape the Retry-After header on 429/503,
	// jittered upward exactly like the daemon's (see retry.JitterSeconds).
	// Defaults 2s / 0.5 (negative jitter disables).
	RetryAfter  time.Duration
	RetryJitter float64
	// MaxUploadBytes caps an admission body. Default 64 MiB.
	MaxUploadBytes int64
	// Breaker configures the per-shard circuit breaker.
	Breaker retry.BreakerConfig
	// Forward is the retry policy for one admission (each attempt walks
	// every live shard once). Default: 3 attempts, 50ms base backoff, 5s
	// per-attempt timeout.
	Forward retry.Policy
	// Client performs all backend HTTP. Default: a dedicated client with
	// keep-alives enabled and no global timeout (per-request contexts bound
	// every call).
	Client *http.Client
	// Obs receives router metrics; nil means metrics are dropped.
	Obs *obs.Registry
	// Logf receives operational logs; nil means silent.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Replication == 0 {
		o.Replication = 2
	}
	if o.Replication > len(o.Shards) {
		o.Replication = len(o.Shards)
	}
	if o.Replication < 1 {
		o.Replication = 1
	}
	if o.HedgeDelay == 0 {
		o.HedgeDelay = 50 * time.Millisecond
	}
	if o.HealthInterval == 0 {
		o.HealthInterval = 250 * time.Millisecond
	}
	if o.HealthFailures == 0 {
		o.HealthFailures = 3
	}
	if o.ReplicateInterval == 0 {
		o.ReplicateInterval = 100 * time.Millisecond
	}
	if o.RetryAfter == 0 {
		o.RetryAfter = 2 * time.Second
	}
	if o.RetryJitter == 0 {
		o.RetryJitter = 0.5
	}
	if o.RetryJitter < 0 {
		o.RetryJitter = 0
	}
	if o.MaxUploadBytes == 0 {
		o.MaxUploadBytes = 64 << 20
	}
	if o.Forward.MaxAttempts == 0 {
		o.Forward = retry.Policy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, PerAttempt: 5 * time.Second}
	}
	if o.Forward.PerAttempt == 0 {
		o.Forward.PerAttempt = 5 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Obs == nil {
		o.Obs = obs.New()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// shard is the router's view of one backend.
type shard struct {
	base    string
	breaker *retry.Breaker

	mu      sync.Mutex
	fails   int  // consecutive health-probe failures
	ejected bool // out of the ring, jobs failed over
}

// routedJob is the router's durable duty toward one admitted job: the
// retained upload (so the job can be re-admitted if its shard dies) and the
// replication ledger. Body is released only when the verdict is verified
// and fully replicated — a job with a retained body is, by definition, a
// job the router can still recover.
type routedJob struct {
	ID          string
	Tenant      string
	Body        []byte
	ContentType string
	Primary     string
	Replicas    map[string]bool // shards that validated and acked the copy
	Done        bool
	Verified    bool
	Verdict     json.RawMessage // the shard's result JSON, replicated verbatim
	Released    bool
}

// Router is the cluster front tier. Construct with New, then Start the
// background loops, serve Handler, and Close on shutdown.
type Router struct {
	opt    Options
	ring   *Ring
	shards map[string]*shard
	rnd    func() float64

	mu   sync.Mutex
	jobs map[string]*routedJob

	stop     chan struct{}
	wg       sync.WaitGroup
	started  atomic.Bool
	draining atomic.Bool
}

// New builds a Router over the configured shards.
func New(opt Options) (*Router, error) {
	opt = opt.withDefaults()
	if len(opt.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	rt := &Router{
		opt:    opt,
		ring:   NewRing(opt.Shards),
		shards: make(map[string]*shard, len(opt.Shards)),
		rnd:    rand.Float64,
		jobs:   make(map[string]*routedJob),
		stop:   make(chan struct{}),
	}
	for _, base := range opt.Shards {
		rt.shards[base] = &shard{base: base, breaker: retry.NewBreaker(opt.Breaker)}
	}
	return rt, nil
}

// Start launches the health prober and the replication loop.
func (rt *Router) Start() {
	if rt.started.Swap(true) {
		return
	}
	rt.wg.Add(2)
	go rt.healthLoop()
	go rt.replicateLoop()
}

// Close stops admissions and the background loops.
func (rt *Router) Close() {
	rt.draining.Store(true)
	if rt.started.Load() {
		close(rt.stop)
		rt.wg.Wait()
	}
}

// Ready reports router readiness: at least one live shard.
func (rt *Router) Ready() error {
	if rt.draining.Load() {
		return fmt.Errorf("cluster: router draining")
	}
	if len(rt.ring.Live()) == 0 {
		return fmt.Errorf("cluster: no live shards")
	}
	return nil
}

// Handler returns the router's HTTP API — the same job surface the daemon
// serves, fronted by routing, retries, hedging and failover:
//
//	POST /v1/jobs              route by consistent hash of a router-minted ID
//	GET  /v1/jobs/{id}         hedged read: primary, then replicas
//	GET  /v1/jobs/{id}/core    proxied to the first shard that has it
//	GET  /v1/jobs/{id}/lrat    likewise
//	POST /v1/jobs/{id}/recheck likewise (replicas can re-verify their copies)
//	GET  /v1/cluster           shard/breaker/job topology, for operators
//
// plus /metrics, /healthz, /readyz from the registry.
func (rt *Router) Handler(enablePprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/core", rt.proxyHandler("/core"))
	mux.HandleFunc("GET /v1/jobs/{id}/lrat", rt.proxyHandler("/lrat"))
	mux.HandleFunc("POST /v1/jobs/{id}/recheck", rt.proxyHandler("/recheck"))
	mux.HandleFunc("GET /v1/cluster", rt.handleTopology)
	mux.Handle("/", rt.opt.Obs.Mux(enablePprof, obs.Health{
		Live:  func() error { return nil },
		Ready: rt.Ready,
	}))
	return rt.recoverMiddleware(mux)
}

func (rt *Router) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				rt.opt.Obs.Counter("cluster.http_panics").Inc()
				rt.opt.Logf("cluster: http panic on %s %s: %v", r.Method, r.URL.Path, rec)
				rt.writeError(w, http.StatusInternalServerError, "internal_error", "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// bufferedResp is a fully-read backend response, safe to relay or discard.
type bufferedResp struct {
	status int
	header http.Header
	body   []byte
}

// do performs one backend request under the shard's circuit breaker.
// ErrBreakerOpen is returned without touching the network. Every call is
// bounded by the per-attempt timeout regardless of the inbound context —
// a partitioned shard must cost a timeout, never a hung handler.
func (rt *Router) do(ctx context.Context, sh *shard, method, path string, body []byte, contentType string, hdr map[string]string) (*bufferedResp, error) {
	if !sh.breaker.Allow() {
		rt.opt.Obs.Counter("cluster.breaker_rejects").Inc()
		return nil, retry.ErrBreakerOpen
	}
	ctx, cancel := context.WithTimeout(ctx, rt.opt.Forward.PerAttempt)
	defer cancel()
	resp, err := rt.doRaw(ctx, sh.base, method, path, body, contentType, hdr)
	// The breaker watches the transport and the backend's own failures
	// (5xx); a 4xx or 429 is a healthy shard answering, not a broken one.
	if err != nil || resp.status >= 500 {
		sh.breaker.Record(fmt.Errorf("cluster: %s %s%s failed", method, sh.base, path))
	} else {
		sh.breaker.Record(nil)
	}
	return resp, err
}

func (rt *Router) doRaw(ctx context.Context, base, method, path string, body []byte, contentType string, hdr map[string]string) (*bufferedResp, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := rt.opt.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, rt.opt.MaxUploadBytes))
	if err != nil {
		return nil, err
	}
	return &bufferedResp{status: resp.StatusCode, header: resp.Header, body: b}, nil
}

func (rt *Router) relay(w http.ResponseWriter, resp *bufferedResp) {
	if ct := resp.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	for _, h := range []string{"Retry-After", "X-Dpv-Recheck", "X-Dpv-Recheck-Hints"} {
		if v := resp.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

func (rt *Router) writeError(w http.ResponseWriter, code int, status, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"status": status, "error": msg})
}

func (rt *Router) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After",
		strconv.Itoa(retry.JitterSeconds(rt.opt.RetryAfter, rt.opt.RetryJitter, rt.rnd)))
}

// handleSubmit admits a job: mint the ID, buffer the upload, walk the live
// ring from the ID's position until a shard accepts. The body stays
// retained in the router until the verdict is replicated — the contract
// that makes a mid-job shard death survivable.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		rt.setRetryAfter(w)
		rt.writeError(w, http.StatusServiceUnavailable, "internal_error", "router draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.opt.MaxUploadBytes))
	if err != nil {
		rt.writeError(w, http.StatusRequestEntityTooLarge, "bad_input",
			fmt.Sprintf("upload over %d bytes", rt.opt.MaxUploadBytes))
		return
	}
	id, err := service.NewJobID()
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "internal_error", "id mint failed")
		return
	}
	tenant := r.Header.Get("X-Dpv-Tenant")
	contentType := r.Header.Get("Content-Type")

	resp, primary, err := rt.admit(r.Context(), id, tenant, body, contentType)
	if err != nil {
		rt.opt.Obs.Counter("cluster.admission_failures").Inc()
		rt.setRetryAfter(w)
		rt.writeError(w, http.StatusServiceUnavailable, "internal_error",
			fmt.Sprintf("no shard accepted the job: %v", err))
		return
	}
	if resp.status == http.StatusAccepted {
		rt.mu.Lock()
		rt.jobs[id] = &routedJob{
			ID: id, Tenant: tenant, Body: body, ContentType: contentType,
			Primary: primary, Replicas: make(map[string]bool),
		}
		rt.mu.Unlock()
		rt.opt.Obs.Counter("cluster.admissions").Inc()
	}
	rt.relay(w, resp)
}

// admit walks every live shard (ring order from the ID) once per retry
// attempt. A 202 or a definitive 4xx ends the walk; transport errors, open
// breakers, 429s and 5xxs move to the next shard. When a whole walk yields
// nothing definitive the policy backs off and walks again — riding out the
// window where a dying shard has not yet been ejected.
func (rt *Router) admit(ctx context.Context, id, tenant string, body []byte, contentType string) (*bufferedResp, string, error) {
	hdr := map[string]string{service.JobIDHeader: id}
	if tenant != "" {
		hdr["X-Dpv-Tenant"] = tenant
	}
	var accepted *bufferedResp
	var acceptedBy string
	err := rt.opt.Forward.Do(ctx, func(ctx context.Context) error {
		cands := rt.ring.Successors(id, len(rt.opt.Shards))
		if len(cands) == 0 {
			return fmt.Errorf("no live shards")
		}
		var lastErr error = fmt.Errorf("no shard reachable")
		for _, name := range cands {
			resp, err := rt.do(ctx, rt.shards[name], http.MethodPost, "/v1/jobs", body, contentType, hdr)
			if err != nil {
				lastErr = fmt.Errorf("%s: %w", name, err)
				continue
			}
			switch {
			case resp.status == http.StatusAccepted,
				resp.status >= 400 && resp.status < 500 && resp.status != http.StatusTooManyRequests:
				// Accepted, or refused for a reason no other shard will
				// judge differently (bad input, too large): definitive.
				accepted, acceptedBy = resp, name
				if resp.status != http.StatusAccepted {
					return retry.Permanent(fmt.Errorf("shard refused: %d", resp.status))
				}
				return nil
			default:
				lastErr = fmt.Errorf("%s: status %d", name, resp.status)
			}
		}
		return lastErr
	})
	if accepted != nil {
		return accepted, acceptedBy, nil
	}
	return nil, "", err
}

// readCandidates orders the shards worth asking about id: tracked primary
// first, acked replicas next, then the rest of the live ring (covering jobs
// admitted before a router restart).
func (rt *Router) readCandidates(id string) []*shard {
	rt.mu.Lock()
	job := rt.jobs[id]
	var primary string
	var replicas []string
	if job != nil {
		primary = job.Primary
		for name, ok := range job.Replicas {
			if ok {
				replicas = append(replicas, name)
			}
		}
	}
	rt.mu.Unlock()

	var out []*shard
	seen := map[string]bool{}
	add := func(name string) {
		if name == "" || seen[name] {
			return
		}
		if sh, ok := rt.shards[name]; ok && rt.ring.Alive(name) {
			seen[name] = true
			out = append(out, sh)
		}
	}
	add(primary)
	for _, name := range replicas {
		add(name)
	}
	for _, name := range rt.ring.Successors(id, len(rt.opt.Shards)) {
		add(name)
	}
	return out
}

// handleStatus is the hedged read: ask the primary, and when it dawdles
// past HedgeDelay (or fails), ask the replicas too; first 200 wins.
func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt.mu.Lock()
	tracked := rt.jobs[id] != nil
	rt.mu.Unlock()
	cands := rt.readCandidates(id)
	if len(cands) == 0 {
		rt.setRetryAfter(w)
		rt.writeError(w, http.StatusServiceUnavailable, "internal_error", "no live shards")
		return
	}
	resp, err := rt.hedgedGet(r.Context(), "/v1/jobs/"+id, cands)
	if err != nil {
		rt.setRetryAfter(w)
		rt.writeError(w, http.StatusServiceUnavailable, "internal_error", err.Error())
		return
	}
	if tracked && resp.status == http.StatusNotFound {
		// The job was admitted through this router, but no live shard has
		// it: its primary died and failover is re-admitting it from the
		// retained upload. An admitted job is never surfaced as lost — the
		// client pays one more Retry-After, not a 404.
		rt.setRetryAfter(w)
		rt.writeError(w, http.StatusServiceUnavailable, "failover_pending", "job admitted; failover in progress")
		return
	}
	rt.relay(w, resp)
}

type hedgeResult struct {
	resp *bufferedResp
	err  error
}

// hedgedGet fires GET base+path across cands: the first immediately, the
// next each time HedgeDelay passes without a usable answer (or a candidate
// fails outright). The first 200 cancels the rest.
func (rt *Router) hedgedGet(ctx context.Context, path string, cands []*shard) (*bufferedResp, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan hedgeResult, len(cands))
	launch := func(sh *shard) {
		go func() {
			resp, err := rt.do(ctx, sh, http.MethodGet, path, nil, "", nil)
			results <- hedgeResult{resp, err}
		}()
	}
	next := 0
	launch(cands[next])
	next++
	inflight := 1
	hedged := false

	timer := time.NewTimer(rt.opt.HedgeDelay)
	defer timer.Stop()
	var last hedgeResult
	for inflight > 0 {
		select {
		case res := <-results:
			inflight--
			if res.err == nil && res.resp.status == http.StatusOK {
				return res.resp, nil
			}
			if res.err == nil && (last.resp == nil || preferResp(res.resp, last.resp)) {
				last = res
			} else if res.err != nil && last.resp == nil && last.err == nil {
				last = res
			}
			// A failed candidate frees budget for the next immediately.
			if next < len(cands) {
				launch(cands[next])
				next++
				inflight++
			}
		case <-timer.C:
			if next < len(cands) {
				if !hedged {
					hedged = true
					rt.opt.Obs.Counter("cluster.hedged_reads").Inc()
				}
				launch(cands[next])
				next++
				inflight++
				timer.Reset(rt.opt.HedgeDelay)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if last.resp != nil {
		return last.resp, nil
	}
	return nil, fmt.Errorf("cluster: every shard failed: %v", last.err)
}

// preferResp ranks non-200 answers for relaying: a definitive 404 from a
// shard that would own the job beats a transient 5xx.
func preferResp(a, b *bufferedResp) bool {
	rank := func(r *bufferedResp) int {
		switch {
		case r.status == http.StatusNotFound:
			return 0
		case r.status >= 500:
			return 2
		default:
			return 1
		}
	}
	return rank(a) < rank(b)
}

// proxyHandler serves the artifact endpoints by asking each candidate in
// order and relaying the first 200 (or the most definitive refusal).
func (rt *Router) proxyHandler(suffix string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		cands := rt.readCandidates(id)
		if len(cands) == 0 {
			rt.setRetryAfter(w)
			rt.writeError(w, http.StatusServiceUnavailable, "internal_error", "no live shards")
			return
		}
		var last *bufferedResp
		for _, sh := range cands {
			resp, err := rt.do(r.Context(), sh, r.Method, "/v1/jobs/"+id+suffix, nil, "", nil)
			if err != nil {
				continue
			}
			if resp.status == http.StatusOK {
				rt.relay(w, resp)
				return
			}
			if last == nil || preferResp(resp, last) {
				last = resp
			}
		}
		if last != nil {
			rt.relay(w, last)
			return
		}
		rt.setRetryAfter(w)
		rt.writeError(w, http.StatusServiceUnavailable, "internal_error", "every shard failed")
	}
}

// handleTopology reports shard and job state for operators and tests.
func (rt *Router) handleTopology(w http.ResponseWriter, r *http.Request) {
	type shardInfo struct {
		Base    string `json:"base"`
		Live    bool   `json:"live"`
		Breaker string `json:"breaker"`
	}
	type jobInfo struct {
		ID         string   `json:"id"`
		Primary    string   `json:"primary"`
		Replicas   []string `json:"replicas,omitempty"`
		Done       bool     `json:"done"`
		Verified   bool     `json:"verified"`
		Replicated bool     `json:"replicated"`
	}
	var out struct {
		Shards []shardInfo `json:"shards"`
		Jobs   []jobInfo   `json:"jobs"`
	}
	for _, base := range rt.opt.Shards {
		out.Shards = append(out.Shards, shardInfo{
			Base:    base,
			Live:    rt.ring.Alive(base),
			Breaker: rt.shards[base].breaker.State().String(),
		})
	}
	rt.mu.Lock()
	for _, j := range rt.jobs {
		ji := jobInfo{ID: j.ID, Primary: j.Primary, Done: j.Done, Verified: j.Verified, Replicated: j.Released && j.Verified}
		for name, ok := range j.Replicas {
			if ok {
				ji.Replicas = append(ji.Replicas, name)
			}
		}
		out.Jobs = append(out.Jobs, ji)
	}
	rt.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// shardLabel flattens a base URL into a metric-name-safe suffix.
func shardLabel(base string) string {
	s := strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://")
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, s)
}
