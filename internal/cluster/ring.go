// Package cluster is the multi-node front tier for the verification
// service: a router that consistent-hashes job IDs onto dpvd shards, a
// replication layer that copies completed verdicts onto R nodes (each of
// which re-verifies the hinted proof before acking), and the robustness
// machinery — per-shard circuit breakers, retries, hedged reads,
// health-driven ejection — that keeps the tier answering while individual
// shards die and return.
//
// The load-bearing invariant: an admitted job is never lost. The router
// retains a job's upload until its verdict is replicated, so a shard that
// dies mid-job costs a re-admission on a surviving shard, not the job.
package cluster

import (
	"hash/fnv"
	"sort"
	"sync"
)

// vnodes is the number of ring positions per shard. 256 keeps the expected
// ownership imbalance across a handful of shards small while the ring stays
// cheap to build and search.
const vnodes = 256

// Ring is a consistent-hash ring over named shards with live/ejected
// membership. Lookups skip ejected shards by walking clockwise, so ejection
// and readmission move only the dead shard's arcs — every key owned by a
// surviving shard keeps its owner, which is what makes health-driven
// ejection cheap enough to do eagerly.
type Ring struct {
	mu     sync.RWMutex
	hashes []uint32          // sorted ring positions
	owner  map[uint32]string // position → shard name
	live   map[string]bool   // shard → admitted to lookups
}

// NewRing builds a ring over the given shard names, all live.
func NewRing(names []string) *Ring {
	r := &Ring{
		owner: make(map[uint32]string),
		live:  make(map[string]bool),
	}
	for _, name := range names {
		r.live[name] = true
		for i := 0; i < vnodes; i++ {
			h := ringHash(name, i)
			// A full 32-bit collision across vnode labels is vanishingly
			// rare; first writer keeps the slot to stay deterministic.
			if _, taken := r.owner[h]; !taken {
				r.owner[h] = name
				r.hashes = append(r.hashes, h)
			}
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
	return r
}

func ringHash(name string, vnode int) uint32 {
	// FNV over short inputs clusters; a 64-bit finalizer (splitmix64-style)
	// scatters the vnode positions uniformly even for one-character names.
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{'#', byte(vnode), byte(vnode >> 8)})
	return keyFinalize(h.Sum64())
}

func keyFinalize(x uint64) uint32 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x)
}

func keyHash(key string) uint32 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return keyFinalize(h.Sum64())
}

// Eject removes a shard from lookups (its ring positions remain, so a later
// Readmit restores exactly the old ownership).
func (r *Ring) Eject(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, known := r.live[name]; known {
		r.live[name] = false
	}
}

// Readmit restores an ejected shard to lookups.
func (r *Ring) Readmit(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, known := r.live[name]; known {
		r.live[name] = true
	}
}

// Alive reports whether the shard is currently admitted to lookups.
func (r *Ring) Alive(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.live[name]
}

// Live returns the live shards in stable (sorted) order.
func (r *Ring) Live() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for name, ok := range r.live {
		if ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Owner returns the live shard owning key, or ok=false when every shard is
// ejected.
func (r *Ring) Owner(key string) (string, bool) {
	owners := r.Successors(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Successors returns up to n distinct live shards in ring order starting at
// key's position — the owner first, then the shards that take over (and
// host replicas) when their predecessors fail.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= keyHash(key) })
	var out []string
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		name := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if !r.live[name] || seen[name] {
			continue
		}
		seen[name] = true
		out = append(out, name)
	}
	return out
}
