package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/obs"
	"repro/internal/proof"
	"repro/internal/retry"
	"repro/internal/service"
)

// chainProblem builds the implication chain x1, xi→xi+1, ¬xn with its
// unit-clause refutation — the same verified fixture the service tests use.
func chainProblem(n int) (*cnf.Formula, *proof.Trace) {
	mk := func(lits ...int) cnf.Clause {
		c := make(cnf.Clause, len(lits))
		for i, l := range lits {
			c[i] = cnf.FromDimacs(l)
		}
		return c
	}
	f := cnf.NewFormula(n)
	f.Clauses = append(f.Clauses, mk(1))
	for i := 1; i < n; i++ {
		f.Clauses = append(f.Clauses, mk(-i, i+1))
	}
	f.Clauses = append(f.Clauses, mk(-n))
	tr := proof.New()
	tr.Resolutions = nil
	for i := 2; i <= n; i++ {
		tr.Clauses = append(tr.Clauses, mk(i))
	}
	tr.Clauses = append(tr.Clauses, mk(-n))
	return f, tr
}

func problemBody(tb testing.TB, f *cnf.Formula, tr *proof.Trace) ([]byte, string) {
	tb.Helper()
	var fb, pb bytes.Buffer
	if err := cnf.WriteDimacs(&fb, f); err != nil {
		tb.Fatal(err)
	}
	if err := proof.Write(&pb, tr); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for _, part := range []struct{ name, data string }{
		{"formula", fb.String()}, {"proof", pb.String()},
	} {
		w, err := mw.CreateFormFile(part.name, part.name)
		if err != nil {
			tb.Fatal(err)
		}
		w.Write([]byte(part.data))
	}
	mw.Close()
	return buf.Bytes(), mw.FormDataContentType()
}

// testShard is one real dpvd daemon behind a real TCP listener, killable
// mid-test by closing its server.
type testShard struct {
	d   *service.Daemon
	srv *httptest.Server
}

func startShard(tb testing.TB) *testShard {
	tb.Helper()
	d, err := service.New(service.Options{
		Store: service.NewMemStore(), Workers: 1, Obs: obs.New(),
	})
	if err != nil {
		tb.Fatal(err)
	}
	d.Start()
	srv := httptest.NewServer(d.Handler(false))
	tb.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Drain(ctx)
	})
	return &testShard{d: d, srv: srv}
}

// fastOptions returns router options tuned for test time: tight probe and
// replication periods, short per-attempt timeouts.
func fastOptions(urls []string) Options {
	return Options{
		Shards:            urls,
		Replication:       2,
		HedgeDelay:        20 * time.Millisecond,
		HealthInterval:    25 * time.Millisecond,
		HealthFailures:    2,
		ReplicateInterval: 20 * time.Millisecond,
		RetryJitter:       -1,
		Forward:           retry.Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond, PerAttempt: 2 * time.Second},
		Breaker:           retry.BreakerConfig{Threshold: 3, OpenFor: 50 * time.Millisecond},
	}
}

func startRouter(tb testing.TB, opt Options) (*Router, http.Handler) {
	tb.Helper()
	rt, err := New(opt)
	if err != nil {
		tb.Fatal(err)
	}
	rt.Start()
	tb.Cleanup(rt.Close)
	return rt, rt.Handler(false)
}

func routerSubmit(tb testing.TB, h http.Handler, body []byte, ct string) (int, string, *httptest.ResponseRecorder) {
	tb.Helper()
	req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", ct)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	var resp struct {
		ID string `json:"id"`
	}
	json.Unmarshal(rw.Body.Bytes(), &resp)
	return rw.Code, resp.ID, rw
}

// routerStatus fetches the job through the router and returns the raw
// "result" JSON (nil while running).
func routerStatus(tb testing.TB, h http.Handler, id string) (int, string, json.RawMessage) {
	tb.Helper()
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/v1/jobs/"+id, nil))
	var ws wireStatus
	json.Unmarshal(rw.Body.Bytes(), &ws)
	return rw.Code, ws.State, ws.Result
}

func waitRouterDone(tb testing.TB, h http.Handler, id string) json.RawMessage {
	tb.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, state, result := routerStatus(tb, h, id)
		if code == http.StatusOK && state == "done" && result != nil {
			return result
		}
		time.Sleep(5 * time.Millisecond)
	}
	tb.Fatalf("job %s never finished through the router", id)
	return nil
}

type topology struct {
	Shards []struct {
		Base    string `json:"base"`
		Live    bool   `json:"live"`
		Breaker string `json:"breaker"`
	} `json:"shards"`
	Jobs []struct {
		ID         string   `json:"id"`
		Primary    string   `json:"primary"`
		Replicas   []string `json:"replicas"`
		Replicated bool     `json:"replicated"`
	} `json:"jobs"`
}

func routerTopology(tb testing.TB, h http.Handler) topology {
	tb.Helper()
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/v1/cluster", nil))
	var top topology
	if err := json.Unmarshal(rw.Body.Bytes(), &top); err != nil {
		tb.Fatalf("topology: %v (%s)", err, rw.Body.String())
	}
	return top
}

func routerGet(tb testing.TB, h http.Handler, path string) *httptest.ResponseRecorder {
	tb.Helper()
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", path, nil))
	return rw
}

// The replication contract end to end: a verified verdict reaches R shards,
// and when the primary dies the router serves the job — status, verdict
// bytes, hinted proof — from a replica, byte-identical to before.
func TestRouterReplicatesAndServesFromReplica(t *testing.T) {
	shards := []*testShard{startShard(t), startShard(t), startShard(t)}
	urls := make([]string, len(shards))
	byURL := map[string]*testShard{}
	for i, s := range shards {
		urls[i] = s.srv.URL
		byURL[s.srv.URL] = s
	}
	rt, h := startRouter(t, fastOptions(urls))
	_ = rt

	f, tr := chainProblem(30)
	body, ct := problemBody(t, f, tr)
	code, id, rw := routerSubmit(t, h, body, ct)
	if code != http.StatusAccepted {
		t.Fatalf("submit via router = %d %s", code, rw.Body.String())
	}
	result := waitRouterDone(t, h, id)
	var outcome struct {
		Status string `json:"status"`
	}
	json.Unmarshal(result, &outcome)
	if outcome.Status != "verified" {
		t.Fatalf("router verdict = %s", result)
	}

	// Wait until the verdict is replicated (R=2: one replica ack).
	var primary string
	deadline := time.Now().Add(15 * time.Second)
	for {
		top := routerTopology(t, h)
		if len(top.Jobs) == 1 && top.Jobs[0].Replicated {
			primary = top.Jobs[0].Primary
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("verdict never replicated: %+v", routerTopology(t, h))
		}
		time.Sleep(10 * time.Millisecond)
	}

	lratBefore := routerGet(t, h, "/v1/jobs/"+id+"/lrat")
	if lratBefore.Code != http.StatusOK || lratBefore.Body.Len() == 0 {
		t.Fatalf("lrat via router = %d", lratBefore.Code)
	}

	// Kill the primary — hard: the listener goes away mid-flight.
	byURL[primary].srv.Close()

	// The router must eject it and keep serving the verdict from a replica.
	deadline = time.Now().Add(15 * time.Second)
	for {
		top := routerTopology(t, h)
		live := 0
		for _, s := range top.Shards {
			if s.Live {
				live++
			}
		}
		if live == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead shard never ejected: %+v", top)
		}
		time.Sleep(10 * time.Millisecond)
	}

	code2, state2, result2 := routerStatus(t, h, id)
	if code2 != http.StatusOK || state2 != "done" {
		t.Fatalf("status after primary death = %d/%s", code2, state2)
	}
	if !bytes.Equal(result, result2) {
		t.Fatalf("replica verdict differs from primary's:\n%s\nvs\n%s", result, result2)
	}
	lratAfter := routerGet(t, h, "/v1/jobs/"+id+"/lrat")
	if lratAfter.Code != http.StatusOK || !bytes.Equal(lratBefore.Body.Bytes(), lratAfter.Body.Bytes()) {
		t.Fatalf("replica lrat differs (code %d, identical=%v)", lratAfter.Code,
			bytes.Equal(lratBefore.Body.Bytes(), lratAfter.Body.Bytes()))
	}
	// The replica can even re-verify the copy from its stored hints.
	rcw := httptest.NewRecorder()
	h.ServeHTTP(rcw, httptest.NewRequest("POST", "/v1/jobs/"+id+"/recheck", nil))
	if rcw.Code != http.StatusOK {
		t.Fatalf("recheck after primary death = %d %s", rcw.Code, rcw.Body.String())
	}
}

// An admitted job whose shard dies before the verdict replicates is
// re-admitted on a survivor from the retained upload — the client keeps its
// job ID and eventually reads a verdict. Replication is stalled (hour-long
// interval) to pin the job in the danger window deterministically.
func TestRouterFailsOverUnreplicatedJob(t *testing.T) {
	shards := []*testShard{startShard(t), startShard(t), startShard(t)}
	urls := make([]string, len(shards))
	byURL := map[string]*testShard{}
	for i, s := range shards {
		urls[i] = s.srv.URL
		byURL[s.srv.URL] = s
	}
	opt := fastOptions(urls)
	opt.ReplicateInterval = time.Hour // freeze replication: job stays unreleased
	rt, h := startRouter(t, opt)

	f, tr := chainProblem(30)
	body, ct := problemBody(t, f, tr)
	code, id, rw := routerSubmit(t, h, body, ct)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d %s", code, rw.Body.String())
	}
	want := waitRouterDone(t, h, id)

	rt.mu.Lock()
	primary := rt.jobs[id].Primary
	released := rt.jobs[id].Released
	rt.mu.Unlock()
	if released {
		t.Fatal("job released with replication frozen — test premise broken")
	}

	// Kill the primary. The health loop must eject it and re-admit the job
	// on a survivor using the retained body.
	byURL[primary].srv.Close()
	deadline := time.Now().Add(20 * time.Second)
	for {
		rt.mu.Lock()
		newPrimary := rt.jobs[id].Primary
		rt.mu.Unlock()
		if newPrimary != primary {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never failed over off dead shard %s", id, primary)
		}
		time.Sleep(10 * time.Millisecond)
	}

	got := waitRouterDone(t, h, id)
	var o1, o2 struct {
		Status string `json:"status"`
	}
	json.Unmarshal(want, &o1)
	json.Unmarshal(got, &o2)
	if o1.Status != "verified" || o2.Status != "verified" {
		t.Fatalf("verdicts around failover: %s -> %s", want, got)
	}
	// The recomputed verdict must be byte-identical: same deterministic
	// verifier, same input bytes.
	if !bytes.Equal(want, got) {
		t.Fatalf("failover verdict differs:\n%s\nvs\n%s", want, got)
	}
	if c := rt.opt.Obs.Counter("cluster.failovers").Value(); c < 1 {
		t.Fatalf("cluster.failovers = %d, want >= 1", c)
	}
}

// Admissions survive a dead shard even before ejection: the walk skips the
// corpse (transport error, then open breaker) and lands on survivors.
func TestRouterAdmitsAroundDeadShard(t *testing.T) {
	shards := []*testShard{startShard(t), startShard(t), startShard(t)}
	urls := make([]string, len(shards))
	for i, s := range shards {
		urls[i] = s.srv.URL
	}
	opt := fastOptions(urls)
	opt.HealthInterval = time.Hour // no ejection: every admission must route around the corpse itself
	rt, h := startRouter(t, opt)

	shards[0].srv.Close()

	f, tr := chainProblem(10)
	body, ct := problemBody(t, f, tr)
	for i := 0; i < 8; i++ {
		code, id, rw := routerSubmit(t, h, body, ct)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d %s", i, code, rw.Body.String())
		}
		waitRouterDone(t, h, id)
	}
	// Drive the corpse's breaker open deterministically (whether the random
	// IDs above routed to it is luck); admissions must still flow while it
	// is open, now without even dialing the dead address.
	sh := rt.shards[urls[0]]
	for i := 0; i < 5 && sh.breaker.State() != retry.BreakerOpen; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		rt.do(ctx, sh, http.MethodGet, "/readyz", nil, "", nil)
		cancel()
	}
	if st := sh.breaker.State(); st != retry.BreakerOpen {
		t.Fatalf("breaker state after repeated failures = %v, want open", st)
	}
	code, id, rw := routerSubmit(t, h, body, ct)
	if code != http.StatusAccepted {
		t.Fatalf("submit with open breaker = %d %s", code, rw.Body.String())
	}
	waitRouterDone(t, h, id)
}

// An admitted job must never read back as 404, even in the window where
// its primary is dead and failover has not yet re-admitted it: a live
// non-owner shard answers 404, but the router owes the client a 503 +
// Retry-After, not a lost job.
func TestRouterAdmittedJobNever404s(t *testing.T) {
	a, b := startShard(t), startShard(t)
	opt := fastOptions([]string{a.srv.URL, b.srv.URL})
	opt.HealthInterval = time.Hour    // freeze ejection/failover
	opt.ReplicateInterval = time.Hour // freeze replication
	rt, h := startRouter(t, opt)

	f, tr := chainProblem(8)
	body, ct := problemBody(t, f, tr)
	code, id, rw := routerSubmit(t, h, body, ct)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d %s", code, rw.Body.String())
	}
	rt.mu.Lock()
	primary := rt.jobs[id].Primary
	rt.mu.Unlock()
	for _, sh := range []*testShard{a, b} {
		if sh.srv.URL == primary {
			sh.srv.Close()
		}
	}

	rw2 := routerGet(t, h, "/v1/jobs/"+id)
	if rw2.Code != http.StatusServiceUnavailable {
		t.Fatalf("admitted job with dead primary = %d %s, want 503", rw2.Code, rw2.Body.String())
	}
	if rw2.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// Untracked IDs still answer an honest 404 from the survivor.
	if rw3 := routerGet(t, h, "/v1/jobs/ffffffffffffffffffffffffffffffff"); rw3.Code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", rw3.Code)
	}
}

func TestRouterRejectsBadUpload(t *testing.T) {
	sh := startShard(t)
	_, h := startRouter(t, fastOptions([]string{sh.srv.URL}))

	// Garbage multipart: the shard's 400 must relay through, not retry into
	// a 503 (bad input is permanent).
	code, _, rw := routerSubmit(t, h, []byte("not multipart at all"), "text/plain")
	if code != http.StatusBadRequest {
		t.Fatalf("garbage upload = %d %s, want 400", code, rw.Body.String())
	}

	// Unknown job IDs 404 through the hedged read.
	if rw := routerGet(t, h, "/v1/jobs/00000000000000000000000000000000"); rw.Code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", rw.Code)
	}
}

func TestShardLabel(t *testing.T) {
	for in, want := range map[string]string{
		"http://127.0.0.1:8101": "127_0_0_1_8101",
		"https://Shard-2.local": "shard-2_local",
	} {
		if got := shardLabel(in); got != want {
			t.Errorf("shardLabel(%q) = %q, want %q", in, got, want)
		}
	}
}
