package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"time"
)

// wireStatus mirrors the daemon's status response. Result stays raw: the
// bytes the primary served are the bytes the replicas store, so a replica
// read is byte-identical to a primary read by construction.
type wireStatus struct {
	ID     string          `json:"id"`
	Tenant string          `json:"tenant"`
	State  string          `json:"state"`
	Result json.RawMessage `json:"result"`
}

// replicateLoop drives verdicts toward their replication factor: each tick
// it polls unfinished jobs for completion, pushes completed verified
// verdicts (verdict JSON + hinted proof + formula) onto the next live ring
// shards, and releases a job's retained upload once R copies exist. It also
// retries orphaned failovers, so every recovery duty shares one timer.
func (rt *Router) replicateLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.opt.ReplicateInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			rt.retryOrphans()
			rt.replicateTick()
		}
	}
}

func (rt *Router) replicateTick() {
	rt.mu.Lock()
	var pending []*routedJob
	for _, j := range rt.jobs {
		if !j.Released {
			pending = append(pending, j)
		}
	}
	rt.mu.Unlock()
	for _, j := range pending {
		select {
		case <-rt.stop:
			return
		default:
		}
		rt.advance(j)
	}
}

// advance moves one job toward released: poll, replicate, release.
func (rt *Router) advance(j *routedJob) {
	rt.mu.Lock()
	primary, done := j.Primary, j.Done
	rt.mu.Unlock()
	if primary == "" || !rt.ring.Alive(primary) {
		return // orphan; retryOrphans owns it
	}
	sh := rt.shards[primary]
	ctx, cancel := context.WithTimeout(context.Background(), rt.opt.Forward.PerAttempt)
	defer cancel()

	if !done {
		resp, err := rt.do(ctx, sh, http.MethodGet, "/v1/jobs/"+j.ID, nil, "", nil)
		if err != nil || resp.status != http.StatusOK {
			return
		}
		var ws wireStatus
		if err := json.Unmarshal(resp.body, &ws); err != nil || ws.State != "done" || ws.Result == nil {
			return
		}
		var outcome struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(ws.Result, &outcome); err != nil {
			return
		}
		rt.mu.Lock()
		j.Done = true
		j.Verified = outcome.Status == "verified"
		j.Verdict = append(json.RawMessage(nil), ws.Result...)
		done = true
		rt.mu.Unlock()
	}

	rt.mu.Lock()
	verified := j.Verified
	acked := 0
	for _, ok := range j.Replicas {
		if ok {
			acked++
		}
	}
	rt.mu.Unlock()

	if !verified {
		// Non-verified outcomes (rejected proofs, timeouts) carry no
		// re-checkable hints, so they are never replicated. The retained
		// body stays: if the primary dies, the job is recomputed, which is
		// the only trustworthy way to reproduce such a verdict.
		return
	}

	want := rt.opt.Replication - 1
	if acked < want {
		rt.pushReplicas(ctx, j, want-acked)
		rt.mu.Lock()
		acked = 0
		for _, ok := range j.Replicas {
			if ok {
				acked++
			}
		}
		rt.mu.Unlock()
	}
	if acked >= want {
		rt.mu.Lock()
		j.Released = true
		j.Body = nil
		rt.mu.Unlock()
		rt.opt.Obs.Counter("cluster.jobs_replicated").Inc()
	}
}

// pushReplicas copies the verdict onto up to n live ring successors that
// hold no copy yet. Each target re-verifies the hinted proof before acking
// (PUT /v1/replicas); a 422 is counted and logged loudly — it means the
// bytes corrupted somewhere between the primary's disk and the replica's
// checker — and retried with freshly fetched bytes next tick.
func (rt *Router) pushReplicas(ctx context.Context, j *routedJob, n int) {
	lratResp, err := rt.do(ctx, rt.shards[j.Primary], http.MethodGet, "/v1/jobs/"+j.ID+"/lrat", nil, "", nil)
	if err != nil || lratResp.status != http.StatusOK || len(lratResp.body) == 0 {
		return // hints not readable right now; retry next tick
	}
	formula, err := extractPart(j.Body, j.ContentType, "formula")
	if err != nil {
		rt.opt.Logf("cluster: job %s: cannot extract formula for replication: %v", j.ID, err)
		return
	}
	rt.mu.Lock()
	verdict := append([]byte(nil), j.Verdict...)
	primary := j.Primary
	rt.mu.Unlock()

	body, contentType, err := replicaBody(formula, verdict, lratResp.body)
	if err != nil {
		rt.opt.Logf("cluster: job %s: replica body: %v", j.ID, err)
		return
	}
	for _, name := range rt.ring.Successors(j.ID, len(rt.opt.Shards)) {
		if n <= 0 {
			return
		}
		rt.mu.Lock()
		skip := name == primary || j.Replicas[name]
		rt.mu.Unlock()
		if skip {
			continue
		}
		hdr := map[string]string{}
		if j.Tenant != "" {
			hdr["X-Dpv-Tenant"] = j.Tenant
		}
		resp, err := rt.do(ctx, rt.shards[name], http.MethodPut, "/v1/replicas/"+j.ID, body, contentType, hdr)
		switch {
		case err != nil:
			continue
		case resp.status == http.StatusOK:
			rt.mu.Lock()
			j.Replicas[name] = true
			rt.mu.Unlock()
			rt.opt.Obs.Counter("cluster.replicas_acked").Inc()
			n--
		case resp.status == http.StatusUnprocessableEntity:
			// The replica's checker refuted the copy. Never ack; surface
			// loudly — this is data corruption, not a liveness blip.
			rt.opt.Obs.Counter("cluster.replicas_rejected").Inc()
			rt.opt.Logf("cluster: shard %s REJECTED replica of job %s: %s", name, j.ID, resp.body)
		default:
			continue
		}
	}
}

// replicaBody builds the multipart payload for PUT /v1/replicas/{id}.
func replicaBody(formula, verdict, lrat []byte) ([]byte, string, error) {
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for _, part := range []struct {
		name string
		data []byte
	}{{"formula", formula}, {"verdict", verdict}, {"lrat", lrat}} {
		w, err := mw.CreateFormFile(part.name, part.name)
		if err != nil {
			return nil, "", err
		}
		if _, err := w.Write(part.data); err != nil {
			return nil, "", err
		}
	}
	if err := mw.Close(); err != nil {
		return nil, "", err
	}
	return buf.Bytes(), mw.FormDataContentType(), nil
}

// extractPart pulls one named part's bytes out of a retained multipart
// upload body.
func extractPart(body []byte, contentType, name string) ([]byte, error) {
	mt, params, err := mime.ParseMediaType(contentType)
	if err != nil || mt != "multipart/form-data" || params["boundary"] == "" {
		return nil, fmt.Errorf("not a multipart body (%q)", contentType)
	}
	mr := multipart.NewReader(bytes.NewReader(body), params["boundary"])
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			return nil, fmt.Errorf("part %q not found", name)
		}
		if err != nil {
			return nil, err
		}
		if part.FormName() == name {
			return io.ReadAll(part)
		}
	}
}
