// Package interp computes Craig interpolants from resolution proofs using
// McMillan's interpolation system — the application that made storing
// proofs of unsatisfiability industrially important (interpolation-based
// model checking, McMillan 2003; the paper's resolution-graph discussion
// cites McMillan's construction [12]).
//
// Given an unsatisfiable CNF partitioned into A ∧ B and a resolution proof
// of the empty clause, the interpolant I is a circuit over the variables
// shared by A and B such that A ⟹ I and I ∧ B is unsatisfiable. The rules:
//
//	source clause c ∈ A:  I(c) = ⋁ { literals of c over shared variables }
//	source clause c ∈ B:  I(c) = ⊤
//	resolution on pivot v, parents (l, r):
//	    v occurs only in A:  I = I(l) ∨ I(r)
//	    otherwise:           I = I(l) ∧ I(r)
//
// The interpolant is returned as an internal/circuit netlist whose inputs
// are exactly the shared variables, so it can be simulated, Tseitin-encoded
// or mitered like any other circuit.
package interp

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/resolution"
)

// Partition assigns each source clause to side A or side B.
type Side uint8

const (
	// SideA marks clauses of the first partition.
	SideA Side = iota
	// SideB marks clauses of the second partition.
	SideB
)

// Interpolant is the result of Compute.
type Interpolant struct {
	// Circuit holds the interpolant; Root is its output signal.
	Circuit *circuit.Circuit
	Root    circuit.Signal
	// SharedVars lists the variables shared between A and B in ascending
	// order; Circuit's inputs correspond to them positionally.
	SharedVars []cnf.Var
	// InputOf maps a shared variable to its circuit input signal.
	InputOf map[cnf.Var]circuit.Signal
}

// Eval evaluates the interpolant under a full CNF-variable assignment.
func (ip *Interpolant) Eval(assign []bool) (bool, error) {
	inputs := make([]bool, len(ip.SharedVars))
	for i, v := range ip.SharedVars {
		if int(v) < len(assign) {
			inputs[i] = assign[v]
		}
	}
	vals, err := ip.Circuit.Eval(inputs)
	if err != nil {
		return false, err
	}
	return circuit.ValueOf(vals, ip.Root), nil
}

// System selects the interpolation calculus.
type System int

const (
	// McMillan is the asymmetric system of McMillan 2003 (described in the
	// package comment); it yields interpolants biased toward A.
	McMillan System = iota
	// Pudlak is the symmetric system (Pudlák / Huang / Krajíček): A-sources
	// map to ⊥, B-sources to ⊤, and resolutions on shared variables select
	// with a MUX on the pivot.
	Pudlak
)

func (s System) String() string {
	if s == Pudlak {
		return "pudlak"
	}
	return "mcmillan"
}

// Compute derives the interpolant for the given A/B partition of the
// proof's source clauses using McMillan's system. sides[i] classifies
// proof source i. The proof must verify (Compute expands it and fails on
// structural errors).
func Compute(p *resolution.Proof, sides []Side) (*Interpolant, error) {
	return ComputeWith(p, sides, McMillan)
}

// ComputeWith derives the interpolant under the chosen system.
func ComputeWith(p *resolution.Proof, sides []Side, sys System) (*Interpolant, error) {
	if len(sides) != len(p.Sources) {
		return nil, fmt.Errorf("interp: %d side labels for %d sources", len(sides), len(p.Sources))
	}
	g, err := p.Expand()
	if err != nil {
		return nil, err
	}

	// Classify variables: occursA / occursB over source clauses.
	var maxVar cnf.Var = -1
	for _, c := range p.Sources {
		if v := c.MaxVar(); v > maxVar {
			maxVar = v
		}
	}
	occursA := make([]bool, maxVar+1)
	occursB := make([]bool, maxVar+1)
	for i, c := range p.Sources {
		for _, l := range c {
			if sides[i] == SideA {
				occursA[l.Var()] = true
			} else {
				occursB[l.Var()] = true
			}
		}
	}

	ip := &Interpolant{
		Circuit: circuit.New(),
		InputOf: map[cnf.Var]circuit.Signal{},
	}
	for v := cnf.Var(0); v <= maxVar; v++ {
		if occursA[v] && occursB[v] {
			ip.SharedVars = append(ip.SharedVars, v)
			ip.InputOf[v] = ip.Circuit.Input()
		}
	}
	litSig := func(l cnf.Lit) circuit.Signal {
		s := ip.InputOf[l.Var()]
		if l.IsNeg() {
			return s.Not()
		}
		return s
	}

	// Node interpolants, indexed like graph nodes.
	its := make([]circuit.Signal, g.NumSources+len(g.Nodes))
	for i, c := range p.Sources {
		if sides[i] == SideB {
			its[i] = circuit.True
			continue
		}
		if sys == Pudlak {
			its[i] = circuit.False
			continue
		}
		s := circuit.False
		for _, l := range c {
			if occursA[l.Var()] && occursB[l.Var()] {
				s = ip.Circuit.Or(s, litSig(l))
			}
		}
		its[i] = s
	}
	inA := func(v cnf.Var) bool { return int(v) < len(occursA) && occursA[v] }
	inB := func(v cnf.Var) bool { return int(v) < len(occursB) && occursB[v] }
	for k, n := range g.Nodes {
		id := g.NumSources + k
		il, ir := its[n.Left], its[n.Right]
		switch {
		case inA(n.Pivot) && !inB(n.Pivot): // local to A
			its[id] = ip.Circuit.Or(il, ir)
		case sys == Pudlak && inA(n.Pivot) && inB(n.Pivot): // shared, symmetric rule
			// Pudlák: for parents C⁺ ∋ v and C⁻ ∋ ¬v,
			// I = (I⁺ ∨ v) ∧ (I⁻ ∨ ¬v) = MUX(v, I⁻, I⁺).
			ipos, ineg := il, ir
			if !n.LeftPos {
				ipos, ineg = ir, il
			}
			its[id] = ip.Circuit.Mux(pivotInput(ip, n.Pivot), ineg, ipos)
		default: // local to B (or shared under McMillan)
			its[id] = ip.Circuit.And(il, ir)
		}
	}
	ip.Root = its[g.Sink]
	ip.Circuit.Output(ip.Root)
	return ip, nil
}

// pivotInput returns the circuit input of a shared pivot variable (callers
// guarantee the pivot occurs on both sides, so the input exists).
func pivotInput(ip *Interpolant, v cnf.Var) circuit.Signal { return ip.InputOf[v] }

// SplitBySources builds the side labels for the common case of splitting a
// formula's clause list at index cut: clauses [0,cut) are A, the rest B.
func SplitBySources(nSources, cut int) []Side {
	sides := make([]Side, nSources)
	for i := cut; i < nSources; i++ {
		sides[i] = SideB
	}
	return sides
}
