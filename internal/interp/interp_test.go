package interp

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/resolution"
	"repro/internal/solver"
)

func cl(dimacs ...int) cnf.Clause {
	c := make(cnf.Clause, 0, len(dimacs))
	for _, d := range dimacs {
		c = append(c, cnf.FromDimacs(d))
	}
	return c
}

// checkInterpolant verifies the three Craig properties by brute force:
// A ⟹ I, I ∧ B unsat, vars(I) ⊆ vars(A) ∩ vars(B).
func checkInterpolant(t *testing.T, f *cnf.Formula, sides []Side, ip *Interpolant) {
	t.Helper()
	n := f.NumVars
	for _, v := range ip.SharedVars {
		// Shared variables must occur on both sides.
		inA, inB := false, false
		for i, c := range f.Clauses {
			for _, l := range c {
				if l.Var() != v {
					continue
				}
				if sides[i] == SideA {
					inA = true
				} else {
					inB = true
				}
			}
		}
		if !inA || !inB {
			t.Fatalf("variable %v in interpolant support but not shared", v)
		}
	}
	for mask := 0; mask < 1<<n; mask++ {
		assign := make([]bool, n)
		for i := range assign {
			assign[i] = mask&(1<<i) != 0
		}
		satA, satB := true, true
		for i, c := range f.Clauses {
			sat := cnf.EvalClause(c, assign)
			if sides[i] == SideA && !sat {
				satA = false
			}
			if sides[i] == SideB && !sat {
				satB = false
			}
		}
		iv, err := ip.Eval(assign)
		if err != nil {
			t.Fatal(err)
		}
		if satA && !iv {
			t.Fatalf("A satisfied but interpolant false under %v", assign)
		}
		if satB && iv {
			t.Fatalf("interpolant and B both satisfied under %v", assign)
		}
	}
}

func proveAndInterpolate(t *testing.T, f *cnf.Formula, sides []Side) *Interpolant {
	t.Helper()
	return proveAndInterpolateWith(t, f, sides, McMillan)
}

func proveAndInterpolateWith(t *testing.T, f *cnf.Formula, sides []Side, sys System) *Interpolant {
	t.Helper()
	s, err := solver.NewFromFormula(f, solver.Options{RecordChains: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Run(); st != solver.Unsat {
		t.Fatalf("status %v", st)
	}
	rp, err := resolution.FromSolverRun(f, s.Trace(), s.Chains())
	if err != nil {
		t.Fatal(err)
	}
	ip, err := ComputeWith(rp, sides, sys)
	if err != nil {
		t.Fatal(err)
	}
	return ip
}

func TestInterpolantHandExample(t *testing.T) {
	// A = (x1)(−x1 x2); B = (−x2 x3)(−x3)(x2 → contradiction with B).
	// Shared variable: x2. Expected interpolant ≡ x2.
	f := cnf.NewFormula(0).
		Add(1).Add(-1, 2). // A
		Add(-2, 3).Add(-3) // B
	sides := SplitBySources(4, 2)
	ip := proveAndInterpolate(t, f, sides)
	checkInterpolant(t, f, sides, ip)
	if len(ip.SharedVars) != 1 || ip.SharedVars[0] != 1 {
		t.Errorf("shared vars = %v, want [x2]", ip.SharedVars)
	}
}

func TestInterpolantTrivialSides(t *testing.T) {
	// All clauses in A: interpolant must be unsatisfiable-with-B=⊤, i.e.
	// equivalent to false... with B empty, I ∧ B unsat means I ≡ false.
	f := cnf.NewFormula(0).
		Add(1, 2).Add(1, -2).Add(-1, 3).Add(-1, -3)
	sides := SplitBySources(4, 4) // everything in A
	ip := proveAndInterpolate(t, f, sides)
	checkInterpolant(t, f, sides, ip)

	// All clauses in B: interpolant ≡ true.
	sidesB := SplitBySources(4, 0)
	ipB := proveAndInterpolate(t, f, sidesB)
	checkInterpolant(t, f, sidesB, ipB)
}

func TestInterpolantRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	checked := 0
	for round := 0; round < 400 && checked < 60; round++ {
		nVars := 4 + rng.Intn(6)
		nClauses := nVars * (3 + rng.Intn(3))
		f := cnf.NewFormula(nVars)
		for i := 0; i < nClauses; i++ {
			k := 1 + rng.Intn(3)
			c := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			f.AddClause(c)
		}
		st, _, _, _, err := solver.Solve(f, solver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if st != solver.Unsat {
			continue
		}
		checked++
		cut := rng.Intn(nClauses + 1)
		sides := SplitBySources(nClauses, cut)
		ip := proveAndInterpolate(t, f, sides)
		checkInterpolant(t, f, sides, ip)
	}
	if checked < 20 {
		t.Fatalf("only %d UNSAT instances interpolated", checked)
	}
}

func TestInterpolantRandomPudlak(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	checked := 0
	for round := 0; round < 400 && checked < 60; round++ {
		nVars := 4 + rng.Intn(6)
		nClauses := nVars * (3 + rng.Intn(3))
		f := cnf.NewFormula(nVars)
		for i := 0; i < nClauses; i++ {
			k := 1 + rng.Intn(3)
			c := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			f.AddClause(c)
		}
		st, _, _, _, err := solver.Solve(f, solver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if st != solver.Unsat {
			continue
		}
		checked++
		cut := rng.Intn(nClauses + 1)
		sides := SplitBySources(nClauses, cut)
		ip := proveAndInterpolateWith(t, f, sides, Pudlak)
		checkInterpolant(t, f, sides, ip)
	}
	if checked < 20 {
		t.Fatalf("only %d UNSAT instances interpolated", checked)
	}
}

func TestSystemsAgreeOnHandExample(t *testing.T) {
	f := cnf.NewFormula(0).
		Add(1).Add(-1, 2).
		Add(-2, 3).Add(-3)
	sides := SplitBySources(4, 2)
	for _, sys := range []System{McMillan, Pudlak} {
		ip := proveAndInterpolateWith(t, f, sides, sys)
		checkInterpolant(t, f, sides, ip)
	}
}

func TestComputeRejectsBadSides(t *testing.T) {
	f := cnf.NewFormula(0).Add(1).Add(-1)
	s, err := solver.NewFromFormula(f, solver.Options{RecordChains: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	rp, err := resolution.FromSolverRun(f, s.Trace(), s.Chains())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(rp, []Side{SideA}); err == nil {
		t.Error("mismatched side labels accepted")
	}
}

func TestSplitBySources(t *testing.T) {
	sides := SplitBySources(4, 2)
	want := []Side{SideA, SideA, SideB, SideB}
	for i := range want {
		if sides[i] != want[i] {
			t.Fatalf("sides = %v", sides)
		}
	}
}
