package bdd

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/solver"
)

func cl(dimacs ...int) cnf.Clause {
	c := make(cnf.Clause, 0, len(dimacs))
	for _, d := range dimacs {
		c = append(c, cnf.FromDimacs(d))
	}
	return c
}

func TestTerminalOps(t *testing.T) {
	m := New(2, 0)
	if r, _ := m.And(True, False); r != False {
		t.Error("And(T,F)")
	}
	if r, _ := m.Or(False, True); r != True {
		t.Error("Or(F,T)")
	}
	if r, _ := m.Not(True); r != False {
		t.Error("Not(T)")
	}
	if r, _ := m.Xor(True, True); r != False {
		t.Error("Xor(T,T)")
	}
}

func TestHashConsing(t *testing.T) {
	m := New(3, 0)
	a, _ := m.Var(0)
	b, _ := m.Var(1)
	ab1, _ := m.And(a, b)
	ab2, _ := m.And(b, a)
	if ab1 != ab2 {
		t.Error("And not canonical across argument order")
	}
	aa, _ := m.And(a, a)
	if aa != a {
		t.Error("And(a,a) != a")
	}
	na, _ := m.Not(a)
	contra, _ := m.And(a, na)
	if contra != False {
		t.Error("And(a,~a) != False")
	}
}

func TestEvalMatchesTruthTable(t *testing.T) {
	m := New(3, 0)
	a, _ := m.Var(0)
	b, _ := m.Var(1)
	c, _ := m.Var(2)
	ab, _ := m.And(a, b)
	f, _ := m.Xor(ab, c) // (a&b) ^ c
	for mask := 0; mask < 8; mask++ {
		assign := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		want := (assign[0] && assign[1]) != assign[2]
		if got := m.Eval(f, assign); got != want {
			t.Errorf("Eval(%v) = %v, want %v", assign, got, want)
		}
	}
}

func TestFromFormulaAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 300; round++ {
		nVars := 2 + rng.Intn(7)
		f := cnf.NewFormula(nVars)
		for i := 0; i < 1+rng.Intn(3*nVars); i++ {
			k := 1 + rng.Intn(3)
			c := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			f.AddClause(c)
		}
		m := New(nVars, 0)
		r, err := m.FromFormula(f)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force satisfiability and model count.
		count := 0
		for mask := 0; mask < 1<<nVars; mask++ {
			assign := make([]bool, nVars)
			for i := range assign {
				assign[i] = mask&(1<<i) != 0
			}
			sat := f.Eval(assign)
			if sat {
				count++
			}
			if got := m.Eval(r, assign); got != sat {
				t.Fatalf("round %d: Eval disagrees with formula on %v", round, assign)
			}
		}
		if (r == False) != (count == 0) {
			t.Fatalf("round %d: BDD unsat=%v, brute count=%d", round, r == False, count)
		}
		if got := m.SatCount(r); got != float64(count) {
			t.Fatalf("round %d: SatCount=%v, brute=%d", round, got, count)
		}
		if assign, ok := m.AnySat(r); ok {
			if !f.Eval(assign) {
				t.Fatalf("round %d: AnySat returned non-model %v", round, assign)
			}
		} else if count != 0 {
			t.Fatalf("round %d: AnySat failed on satisfiable function", round)
		}
	}
}

func TestUnsatOracleAgreesWithSolver(t *testing.T) {
	instances := []gen.Instance{
		gen.PHP(4),
		gen.XorChain(11),
		gen.AdderEquiv(6),
		gen.Counter(4, 8),
	}
	for _, inst := range instances {
		got, err := Unsat(inst.F, 4_000_000)
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if !got {
			t.Errorf("%s: BDD says satisfiable", inst.Name)
		}
		st, _, _, _, err := solver.Solve(inst.F, solver.Options{})
		if err != nil || st != solver.Unsat {
			t.Fatalf("%s: solver says %v (%v)", inst.Name, st, err)
		}
	}
	// And one satisfiable case.
	sat := cnf.NewFormula(0).Add(1, 2).Add(-1, 2)
	got, err := Unsat(sat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("satisfiable formula reported UNSAT")
	}
}

func TestNodeLimit(t *testing.T) {
	// Multiplier-style instances blow BDDs up — the motivating weakness.
	inst := gen.Longmult(8, 7)
	_, err := Unsat(inst.F, 20_000)
	if !errors.Is(err, ErrNodeLimit) {
		t.Errorf("expected ErrNodeLimit, got %v", err)
	}
}

func TestSatCountKnownValues(t *testing.T) {
	// A single clause over k of n variables has 2^n - 2^(n-k) models.
	m := New(5, 0)
	r, err := m.FromClause(cl(1, -2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.SatCount(r); got != 32-4 {
		t.Errorf("SatCount = %v, want 28", got)
	}
	if got := m.SatCount(True); got != 32 {
		t.Errorf("SatCount(True) = %v", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Errorf("SatCount(False) = %v", got)
	}
}

func TestVarOutOfRange(t *testing.T) {
	m := New(2, 0)
	if _, err := m.Var(5); err == nil {
		t.Error("out-of-range variable accepted")
	}
}

func TestXorChainIsBDDFriendly(t *testing.T) {
	// Parity constraints are linear-sized in BDDs: a long chain must fit
	// in a small node budget even though it is hard-ish for resolution.
	inst := gen.XorChain(101)
	got, err := Unsat(inst.F, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("xor chain not refuted")
	}
}
