// Package bdd implements reduced ordered binary decision diagrams — the
// technology SAT solvers displaced for the paper's verification workloads
// (its introduction cites "symbolic model checking using SAT procedures
// instead of BDDs"). The reproduction uses BDDs two ways:
//
//   - as an independent satisfiability oracle cross-checking the solver and
//     the verifier on small and medium instances, and
//   - as the baseline whose blow-up on multiplier-style formulas (longmult,
//     factor) motivates the SAT route, measurable via the node limit.
//
// The implementation is a classic ITE-based ROBDD with a unique table and
// an ITE cache, natural variable order, and a configurable node budget.
package bdd

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cnf"
)

// Ref references a BDD node. The terminals are False (0) and True (1).
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable index; terminals use a sentinel beyond all vars
	lo, hi Ref
}

type uniqueKey struct {
	level  int32
	lo, hi Ref
}

type iteKey struct{ f, g, h Ref }

// ErrNodeLimit is returned when a construction exceeds the node budget.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

// Manager owns the node store and caches.
type Manager struct {
	nVars    int
	maxNodes int
	nodes    []node
	unique   map[uniqueKey]Ref
	ite      map[iteKey]Ref
}

const terminalLevel = int32(math.MaxInt32)

// New creates a manager over n variables with the given node budget
// (0 means one million nodes).
func New(n, maxNodes int) *Manager {
	if maxNodes == 0 {
		maxNodes = 1_000_000
	}
	m := &Manager{
		nVars:    n,
		maxNodes: maxNodes,
		unique:   make(map[uniqueKey]Ref),
		ite:      make(map[iteKey]Ref),
	}
	m.nodes = append(m.nodes,
		node{level: terminalLevel}, // False
		node{level: terminalLevel}, // True
	)
	return m
}

// NumNodes returns the number of live nodes (including terminals).
func (m *Manager) NumNodes() int { return len(m.nodes) }

type limitPanic struct{}

func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := uniqueKey{level, lo, hi}
	if r, ok := m.unique[key]; ok {
		return r
	}
	if len(m.nodes) >= m.maxNodes {
		panic(limitPanic{})
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.unique[key] = r
	return r
}

// guard converts the internal node-limit panic into ErrNodeLimit.
func guard(err *error) {
	if r := recover(); r != nil {
		if _, ok := r.(limitPanic); ok {
			*err = ErrNodeLimit
			return
		}
		panic(r)
	}
}

// Var returns the BDD of variable v.
func (m *Manager) Var(v cnf.Var) (ref Ref, err error) {
	defer guard(&err)
	if int(v) >= m.nVars {
		return False, fmt.Errorf("bdd: variable %d out of range", v)
	}
	return m.mk(int32(v), False, True), nil
}

// Lit returns the BDD of a literal.
func (m *Manager) Lit(l cnf.Lit) (Ref, error) {
	v, err := m.Var(l.Var())
	if err != nil {
		return False, err
	}
	if l.IsNeg() {
		return m.Not(v)
	}
	return v, nil
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// cofactor splits r on the given level.
func (m *Manager) cofactor(r Ref, level int32) (lo, hi Ref) {
	n := m.nodes[r]
	if n.level != level {
		return r, r
	}
	return n.lo, n.hi
}

func (m *Manager) iteRec(f, g, h Ref) Ref {
	// Terminal shortcuts.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := iteKey{f, g, h}
	if r, ok := m.ite[key]; ok {
		return r
	}
	level := m.level(f)
	if l := m.level(g); l < level {
		level = l
	}
	if l := m.level(h); l < level {
		level = l
	}
	f0, f1 := m.cofactor(f, level)
	g0, g1 := m.cofactor(g, level)
	h0, h1 := m.cofactor(h, level)
	lo := m.iteRec(f0, g0, h0)
	hi := m.iteRec(f1, g1, h1)
	r := m.mk(level, lo, hi)
	m.ite[key] = r
	return r
}

// ITE computes if-then-else(f, g, h).
func (m *Manager) ITE(f, g, h Ref) (ref Ref, err error) {
	defer guard(&err)
	return m.iteRec(f, g, h), nil
}

// Not returns the complement.
func (m *Manager) Not(f Ref) (Ref, error) { return m.ITE(f, False, True) }

// And returns f AND g.
func (m *Manager) And(f, g Ref) (Ref, error) { return m.ITE(f, g, False) }

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) (Ref, error) { return m.ITE(f, True, g) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) (Ref, error) {
	ng, err := m.Not(g)
	if err != nil {
		return False, err
	}
	return m.ITE(f, ng, g)
}

// FromClause builds the BDD of a disjunction of literals.
func (m *Manager) FromClause(c cnf.Clause) (Ref, error) {
	out := False
	for _, l := range c {
		lr, err := m.Lit(l)
		if err != nil {
			return False, err
		}
		out, err = m.Or(out, lr)
		if err != nil {
			return False, err
		}
	}
	return out, nil
}

// FromFormula conjoins all clauses of f. The result is False exactly when
// f is unsatisfiable. Construction may exceed the node budget
// (ErrNodeLimit) — that blow-up is itself a measured result on
// multiplier-style instances.
func (m *Manager) FromFormula(f *cnf.Formula) (Ref, error) {
	out := True
	for _, c := range f.Clauses {
		cr, err := m.FromClause(c)
		if err != nil {
			return False, err
		}
		out, err = m.And(out, cr)
		if err != nil {
			return False, err
		}
		if out == False {
			return False, nil
		}
	}
	return out, nil
}

// AnySat returns a satisfying assignment of the function (unconstrained
// variables default to false), or ok=false for the constant False.
func (m *Manager) AnySat(r Ref) (assign []bool, ok bool) {
	if r == False {
		return nil, false
	}
	assign = make([]bool, m.nVars)
	for r != True {
		n := m.nodes[r]
		if n.lo != False {
			r = n.lo
		} else {
			assign[n.level] = true
			r = n.hi
		}
	}
	return assign, true
}

// SatCount returns the number of satisfying assignments over all nVars
// variables, as a float64 (counts can exceed integer range).
func (m *Manager) SatCount(r Ref) float64 {
	memo := make(map[Ref]float64)
	var count func(Ref) float64 // models over variables below the node's level
	count = func(r Ref) float64 {
		if r == False {
			return 0
		}
		if r == True {
			return 1
		}
		if c, ok := memo[r]; ok {
			return c
		}
		n := m.nodes[r]
		c := count(n.lo)*weightBetween(m, r, n.lo) + count(n.hi)*weightBetween(m, r, n.hi)
		memo[r] = c
		return c
	}
	top := count(r)
	if r == False {
		return 0
	}
	// Scale for the variables above the root.
	rootLevel := m.level(r)
	if r == True {
		rootLevel = int32(m.nVars)
	}
	return top * math.Pow(2, float64(rootLevel))
}

// weightBetween accounts for skipped variable levels between a node and
// its child.
func weightBetween(m *Manager, parent, child Ref) float64 {
	pl := m.level(parent)
	cl := m.level(child)
	if cl == terminalLevel {
		cl = int32(m.nVars)
	}
	return math.Pow(2, float64(cl-pl-1))
}

// Eval evaluates the function under a total assignment.
func (m *Manager) Eval(r Ref, assign []bool) bool {
	for r != True && r != False {
		n := m.nodes[r]
		if assign[n.level] {
			r = n.hi
		} else {
			r = n.lo
		}
	}
	return r == True
}

// Unsat decides unsatisfiability of a CNF formula with a fresh manager —
// the convenience oracle used by tests and the bench comparison.
func Unsat(f *cnf.Formula, maxNodes int) (bool, error) {
	m := New(f.NumVars, maxNodes)
	r, err := m.FromFormula(f)
	if err != nil {
		return false, err
	}
	return r == False, nil
}
