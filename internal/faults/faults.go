// Package faults is a deterministic fault-injection harness for the
// verification pipeline. It mutates known-good formula/trace pairs (and
// their serialized forms) in the ways a buggy or adversarial solver would —
// flipped literals, dropped or reordered clauses, truncated output, corrupt
// bytes — so tests can assert the verifier's robustness contract: it must
// reject or error, never accept an unsound proof, never panic, never hang.
//
// All mutations are driven by a seeded PRNG, so a failing case reproduces
// from its seed alone.
package faults

import (
	"math/rand"

	"repro/internal/cnf"
	"repro/internal/obs"
	"repro/internal/proof"
)

// Kind enumerates the corruption modes the injector can apply.
type Kind int

const (
	// FlipLit negates one literal in one trace clause.
	FlipLit Kind = iota
	// DropClause removes one trace clause (later clauses that resolved on
	// it lose a premise).
	DropClause
	// DupClause duplicates one trace clause in place (always logically
	// harmless — a regression guard against the verifier being *unsound
	// the other way*, rejecting valid proofs).
	DupClause
	// SwapClauses exchanges two trace clauses, breaking the "derived only
	// from earlier clauses" order when one resolved on the other.
	SwapClauses
	// TruncateTrace drops a suffix of the trace, as a solver killed
	// mid-write would.
	TruncateTrace
	// GarbageLit replaces one trace literal with a fresh variable the
	// formula never mentions.
	GarbageLit
	// DropFormulaClause removes one clause of the *formula*. On a minimally
	// unsatisfiable input this makes the formula satisfiable, so any
	// checker that still accepts the old proof is unsound.
	DropFormulaClause
)

// Kinds lists every structural corruption mode, for matrix tests.
var Kinds = []Kind{
	FlipLit, DropClause, DupClause, SwapClauses,
	TruncateTrace, GarbageLit, DropFormulaClause,
}

func (k Kind) String() string {
	switch k {
	case FlipLit:
		return "flip-lit"
	case DropClause:
		return "drop-clause"
	case DupClause:
		return "dup-clause"
	case SwapClauses:
		return "swap-clauses"
	case TruncateTrace:
		return "truncate-trace"
	case GarbageLit:
		return "garbage-lit"
	case DropFormulaClause:
		return "drop-formula-clause"
	default:
		return "unknown-fault"
	}
}

// Injector applies seeded, reproducible corruptions. The zero value is not
// usable; construct with New.
type Injector struct {
	rng *rand.Rand
	// Obs, when non-nil, counts every applied corruption under
	// "faults.injected".
	Obs *obs.Registry
}

// New returns an injector whose mutation choices are fully determined by
// seed.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

func (in *Injector) count() {
	if in.Obs != nil {
		in.Obs.Counter("faults.injected").Inc()
	}
}

// Apply returns corrupted copies of f and t. The inputs are never mutated.
// ok is false when the kind does not apply to this instance (e.g. swapping
// clauses of a one-clause trace); nothing is counted in that case.
func (in *Injector) Apply(k Kind, f *cnf.Formula, t *proof.Trace) (mf *cnf.Formula, mt *proof.Trace, ok bool) {
	mf, mt = f.Clone(), t.Clone()
	switch k {
	case FlipLit:
		ci, li, ok2 := in.pickLit(mt)
		if !ok2 {
			return nil, nil, false
		}
		mt.Clauses[ci][li] = mt.Clauses[ci][li].Neg()
	case DropClause:
		if len(mt.Clauses) == 0 {
			return nil, nil, false
		}
		i := in.rng.Intn(len(mt.Clauses))
		mt.Clauses = append(mt.Clauses[:i], mt.Clauses[i+1:]...)
		if mt.Resolutions != nil {
			mt.Resolutions = append(mt.Resolutions[:i], mt.Resolutions[i+1:]...)
		}
	case DupClause:
		if len(mt.Clauses) == 0 {
			return nil, nil, false
		}
		i := in.rng.Intn(len(mt.Clauses))
		c := mt.Clauses[i].Clone()
		mt.Clauses = append(mt.Clauses[:i+1], append([]cnf.Clause{c}, mt.Clauses[i+1:]...)...)
		if mt.Resolutions != nil {
			r := mt.Resolutions[i]
			mt.Resolutions = append(mt.Resolutions[:i+1], append([]int64{r}, mt.Resolutions[i+1:]...)...)
		}
	case SwapClauses:
		if len(mt.Clauses) < 2 {
			return nil, nil, false
		}
		i := in.rng.Intn(len(mt.Clauses) - 1)
		j := i + 1 + in.rng.Intn(len(mt.Clauses)-i-1)
		mt.Clauses[i], mt.Clauses[j] = mt.Clauses[j], mt.Clauses[i]
		if mt.Resolutions != nil {
			mt.Resolutions[i], mt.Resolutions[j] = mt.Resolutions[j], mt.Resolutions[i]
		}
	case TruncateTrace:
		if len(mt.Clauses) == 0 {
			return nil, nil, false
		}
		n := in.rng.Intn(len(mt.Clauses)) // keep [0, n), always dropping >= 1
		mt.Clauses = mt.Clauses[:n]
		if mt.Resolutions != nil {
			mt.Resolutions = mt.Resolutions[:n]
		}
	case GarbageLit:
		ci, li, ok2 := in.pickLit(mt)
		if !ok2 {
			return nil, nil, false
		}
		fresh := int(mf.MaxVar()) + 2 + in.rng.Intn(16)
		if mv := mt.MaxVar(); int(mv)+2 > fresh {
			fresh = int(mv) + 2
		}
		if in.rng.Intn(2) == 0 {
			fresh = -fresh
		}
		mt.Clauses[ci][li] = cnf.FromDimacs(fresh)
	case DropFormulaClause:
		if len(mf.Clauses) == 0 {
			return nil, nil, false
		}
		i := in.rng.Intn(len(mf.Clauses))
		mf.Clauses = append(mf.Clauses[:i], mf.Clauses[i+1:]...)
	default:
		return nil, nil, false
	}
	in.count()
	return mf, mt, true
}

// pickLit selects a uniformly random literal position among non-empty
// trace clauses.
func (in *Injector) pickLit(t *proof.Trace) (clause, lit int, ok bool) {
	var candidates []int
	for i, c := range t.Clauses {
		if len(c) > 0 {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return 0, 0, false
	}
	ci := candidates[in.rng.Intn(len(candidates))]
	return ci, in.rng.Intn(len(t.Clauses[ci])), true
}

// CorruptBytes returns a copy of data with one byte changed to a different
// value at a random offset — the serialized-form counterpart of the
// structural kinds, for exercising the parsers. Returns ok=false on empty
// input.
func (in *Injector) CorruptBytes(data []byte) (out []byte, ok bool) {
	if len(data) == 0 {
		return nil, false
	}
	out = append([]byte(nil), data...)
	i := in.rng.Intn(len(out))
	old := out[i]
	for out[i] == old {
		out[i] = byte(in.rng.Intn(256))
	}
	in.count()
	return out, true
}
