package faults

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// newBackend starts a plain HTTP backend that answers "/big" with a body
// large enough to straddle any mid-body reset cap.
func newBackend(t *testing.T) (addr string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/big", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(strings.Repeat("x", 1<<20)))
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func proxyClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout: timeout,
		// Fresh connections per request: the fault under test must apply to
		// this request, not be dodged by a pooled pre-fault connection.
		Transport: &http.Transport{DisableKeepAlives: true},
	}
}

func TestNetProxyPassThrough(t *testing.T) {
	backend := newBackend(t)
	p, err := NewNetProxy(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, err := proxyClient(2 * time.Second).Get("http://" + p.Addr() + "/ok")
	if err != nil {
		t.Fatalf("pass-through GET: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(b) != "ok\n" {
		t.Fatalf("pass-through = %d %q", resp.StatusCode, b)
	}
}

func TestNetProxyConnRefusedAndHeal(t *testing.T) {
	backend := newBackend(t)
	p, err := NewNetProxy(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	addr := p.Addr()

	if err := p.Set(NetConnRefused); err != nil {
		t.Fatal(err)
	}
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("dial succeeded through a refused proxy")
	}
	if _, err := proxyClient(time.Second).Get("http://" + addr + "/ok"); err == nil {
		t.Fatal("GET succeeded through a refused proxy")
	}

	// Healing re-binds the same address — the client never re-discovers it.
	if err := p.Set(NetNone); err != nil {
		t.Fatal(err)
	}
	resp, err := proxyClient(2 * time.Second).Get("http://" + addr + "/ok")
	if err != nil {
		t.Fatalf("GET after heal: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("after heal = %d, want 200", resp.StatusCode)
	}
}

func TestNetProxySlowStart(t *testing.T) {
	backend := newBackend(t)
	p, err := NewNetProxy(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetSlowStart(300 * time.Millisecond)
	if err := p.Set(NetSlowStart); err != nil {
		t.Fatal(err)
	}

	// A client with a deadline shorter than the stall times out...
	if _, err := proxyClient(50 * time.Millisecond).Get("http://" + p.Addr() + "/ok"); err == nil {
		t.Fatal("impatient GET succeeded through a stalled proxy")
	}
	// ...one that outlasts the stall gets a correct answer (slow, not broken).
	resp, err := proxyClient(3 * time.Second).Get("http://" + p.Addr() + "/ok")
	if err != nil {
		t.Fatalf("patient GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("patient GET = %d, want 200", resp.StatusCode)
	}
}

func TestNetProxyMidBodyReset(t *testing.T) {
	backend := newBackend(t)
	p, err := NewNetProxy(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetResetAfter(4096)
	if err := p.Set(NetMidBodyReset); err != nil {
		t.Fatal(err)
	}

	resp, err := proxyClient(5 * time.Second).Get("http://" + p.Addr() + "/big")
	if err != nil {
		// The reset may already land on the response header read; that is a
		// legitimate shape of the same fault.
		return
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err == nil {
		t.Fatalf("read full %d-byte body through a mid-body-reset proxy", n)
	}
	if n >= 1<<20 {
		t.Fatalf("reset never cut the body (read %d bytes before error %v)", n, err)
	}
}

func TestNetProxyPartitionNeverHangsClient(t *testing.T) {
	backend := newBackend(t)
	p, err := NewNetProxy(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Set(NetPartition); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err = proxyClient(200 * time.Millisecond).Get("http://" + p.Addr() + "/ok")
	if err == nil {
		t.Fatal("GET succeeded through a partition")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("partition error = %v, want a timeout", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("client escaped the partition only after %v", d)
	}

	// Healing releases the parked connection and restores service.
	if err := p.Set(NetNone); err != nil {
		t.Fatal(err)
	}
	resp, err := proxyClient(2 * time.Second).Get("http://" + p.Addr() + "/ok")
	if err != nil {
		t.Fatalf("GET after partition heal: %v", err)
	}
	resp.Body.Close()
}

func TestNetKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range NetKinds {
		s := k.String()
		if s == "unknown-net-fault" || seen[s] {
			t.Fatalf("NetKind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
}
