package faults

// Store/IO fault kinds for the verification-as-a-service daemon: the
// injectable failures a disk-backed job store meets in production — an I/O
// error while appending to a checkpoint journal, a full disk while writing
// a result artifact, an upload whose body is cut off mid-stream. The
// daemon's robustness contract under all of them is the same as for corrupt
// proofs: never accept, never panic, never hang, and additionally never
// lose an admitted job (a failed durable write degrades to recomputation,
// not to a missing verdict). internal/service's fault-matrix test drives
// these against a live daemon.

import (
	"fmt"
	"io"
	"syscall"
)

// IOKind enumerates the store/IO failures the harness can inject.
type IOKind int

const (
	// JournalAppendEIO fails a checkpoint-journal append with an I/O
	// error. Checkpointing must degrade (the run loses durability, not
	// correctness) and the verdict must still be produced.
	JournalAppendEIO IOKind = iota
	// ArtifactWriteDiskFull fails a result/artifact write with ENOSPC.
	// The verdict must survive in memory and the job must stay incomplete
	// on disk so a restart recomputes it — never a lost or corrupt result.
	ArtifactWriteDiskFull
	// UploadBodyTruncated cuts an upload body off mid-stream, as a dying
	// client or a dropped connection would. The admission gate must reject
	// with a typed error; nothing may be enqueued.
	UploadBodyTruncated
)

// IOKinds lists every store/IO fault kind, for matrix tests.
var IOKinds = []IOKind{JournalAppendEIO, ArtifactWriteDiskFull, UploadBodyTruncated}

func (k IOKind) String() string {
	switch k {
	case JournalAppendEIO:
		return "journal-append-eio"
	case ArtifactWriteDiskFull:
		return "artifact-write-disk-full"
	case UploadBodyTruncated:
		return "upload-body-truncated"
	default:
		return "unknown-io-fault"
	}
}

// Injected error values. They wrap the real errno values so production code
// that classifies on syscall errors (errors.Is(err, syscall.ENOSPC)) treats
// an injected fault exactly like a real one.
var (
	// ErrInjectedEIO is the injected journal-append failure.
	ErrInjectedEIO = fmt.Errorf("faults: injected journal I/O error: %w", syscall.EIO)
	// ErrInjectedDiskFull is the injected artifact-write failure.
	ErrInjectedDiskFull = fmt.Errorf("faults: injected disk full: %w", syscall.ENOSPC)
)

// FailSinkAfter wraps a checkpoint sink so the first n appends succeed and
// every later one fails with ErrInjectedEIO — the shape of a disk that
// worked at job start and degraded mid-run.
func FailSinkAfter(sink func([]byte) error, n int) func([]byte) error {
	appends := 0
	return func(p []byte) error {
		if appends >= n {
			return ErrInjectedEIO
		}
		appends++
		return sink(p)
	}
}

// FailWriterAfter wraps w so writes succeed until n total bytes have been
// accepted and fail with ErrInjectedDiskFull afterwards, including the
// partial write that straddles the boundary — matching how a full
// filesystem fails a buffered artifact write partway through.
func FailWriterAfter(w io.Writer, n int64) io.Writer {
	return &failingWriter{w: w, left: n}
}

type failingWriter struct {
	w    io.Writer
	left int64
}

func (fw *failingWriter) Write(p []byte) (int, error) {
	if fw.left <= 0 {
		return 0, ErrInjectedDiskFull
	}
	if int64(len(p)) > fw.left {
		nn, _ := fw.w.Write(p[:fw.left])
		fw.left = 0
		return nn, ErrInjectedDiskFull
	}
	n, err := fw.w.Write(p)
	fw.left -= int64(n)
	return n, err
}

// TruncateBody returns body cut off at a seeded point strictly inside it —
// an upload interrupted mid-stream. ok is false when the body is too short
// to truncate meaningfully (nothing would be cut).
func (in *Injector) TruncateBody(body []byte) (out []byte, ok bool) {
	if len(body) < 2 {
		return nil, false
	}
	in.count()
	cut := 1 + in.rng.Intn(len(body)-1)
	return append([]byte(nil), body[:cut]...), true
}
