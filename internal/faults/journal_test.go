package faults

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
)

// TestJournalFaultMatrix corrupts a real checkpoint journal in every
// JournalKind and then replays the CLI resume protocol: Open + decode +
// validate, falling back to a full run on any failure. The contract under
// test is the degradation ladder — a damaged journal may cost work (resume
// from an earlier record, or a full re-verification) but may never change
// the verdict, crash, or hang. Open must also never invent a payload: any
// record it returns must be byte-identical to one the baseline run appended.
func TestJournalFaultMatrix(t *testing.T) {
	f, tr := goodInstance(t, 5)
	const every = 40
	meta := journal.Meta{
		Kind:      journal.KindVerifySeq,
		Mode:      uint8(core.ModeCheckMarked),
		Engine:    uint8(core.EngineWatched),
		Interval:  every,
		FormulaFP: journal.FingerprintFormula(f),
		ProofFP:   journal.FingerprintTrace(tr),
	}

	// Baseline: a checkpointed run writing a genuine journal, keeping a copy
	// of every payload it appended.
	dir := t.TempDir()
	cleanPath := filepath.Join(dir, "ckpt.dpvj")
	jw, err := journal.Create(cleanPath, meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	base, err := core.Verify(f, tr, core.Options{
		Mode: core.ModeCheckMarked,
		Checkpoint: core.CheckpointConfig{
			Every: every,
			Sink: func(b []byte) error {
				payloads = append(payloads, append([]byte(nil), b...))
				return jw.Append(b)
			},
		},
	})
	jw.Close()
	if err != nil || !base.OK {
		t.Fatalf("baseline checkpointed run: err=%v res=%+v", err, base)
	}
	if len(payloads) < 2 {
		t.Fatalf("want >= 2 checkpoint records to corrupt, got %d", len(payloads))
	}
	clean, err := os.ReadFile(cleanPath)
	if err != nil {
		t.Fatal(err)
	}

	isAppended := func(p []byte) (idx int, ok bool) {
		for i, q := range payloads {
			if bytes.Equal(p, q) {
				return i, true
			}
		}
		return -1, false
	}

	for _, kind := range JournalKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			resumes, fullRuns := 0, 0
			for seed := int64(0); seed < 10; seed++ {
				inj := New(2000 + seed)
				inj.Obs = obs.New()
				data, ok := inj.ApplyJournal(kind, clean)
				if !ok {
					t.Fatalf("seed %d: %v inapplicable to a real journal", seed, kind)
				}
				if got := inj.Obs.Counter("faults.injected").Value(); got != 1 {
					t.Fatalf("seed %d: faults.injected = %d", seed, got)
				}
				path := filepath.Join(dir, fmt.Sprintf("%v-%d.dpvj", kind, seed))
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}

				payload, jerr := journal.Open(path, meta, nil)
				switch kind {
				case JournalStaleFingerprint:
					if !errors.Is(jerr, journal.ErrMismatch) {
						t.Fatalf("seed %d: err = %v, want ErrMismatch", seed, jerr)
					}
				case JournalVersionSkew:
					if !errors.Is(jerr, journal.ErrVersionSkew) {
						t.Fatalf("seed %d: err = %v, want ErrVersionSkew", seed, jerr)
					}
				case JournalTruncatedTail:
					// A torn tail is tolerated: resume from an earlier record,
					// or an empty journal when the cut swallowed them all. The
					// final record is torn by construction, so Open must have
					// degraded to an earlier one.
					if jerr != nil && !errors.Is(jerr, journal.ErrEmpty) {
						t.Fatalf("seed %d: err = %v, want nil or ErrEmpty", seed, jerr)
					}
					if jerr == nil {
						if i, ok := isAppended(payload); !ok || i == len(payloads)-1 {
							t.Fatalf("seed %d: truncated journal returned record %d ok=%v", seed, i, ok)
						}
					}
				case JournalBitFlip:
					// CRC32 catches every single-bit error inside a framed
					// record; a flip in a length field can also tear the tail.
					if jerr != nil && !errors.Is(jerr, journal.ErrCorrupt) && !errors.Is(jerr, journal.ErrEmpty) {
						t.Fatalf("seed %d: err = %v, want ErrCorrupt or ErrEmpty", seed, jerr)
					}
				}
				if jerr == nil {
					if _, ok := isAppended(payload); !ok {
						t.Fatalf("seed %d: Open returned a payload that was never appended", seed)
					}
				}

				// The CLI protocol: decode + validate, else run from scratch.
				var resume *core.Checkpoint
				if jerr == nil {
					cp, derr := core.DecodeCheckpoint(payload)
					if derr == nil && cp.ValidateFor(len(f.Clauses), tr.Len(), 0) == nil {
						resume = cp
					}
				}
				if resume != nil {
					resumes++
				} else {
					fullRuns++
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				res, verr := core.Verify(f, tr, core.Options{
					Mode: core.ModeCheckMarked, Ctx: ctx,
					Checkpoint: core.CheckpointConfig{Every: every, Resume: resume},
				})
				cancel()
				if errors.Is(verr, core.ErrDeadline) || errors.Is(verr, core.ErrCancelled) {
					t.Fatalf("seed %d: verification after %v hit the 10s deadline", seed, kind)
				}
				if verr != nil || !res.OK {
					t.Fatalf("seed %d: %v changed the verdict: err=%v res=%+v", seed, kind, verr, res)
				}
				if res.Tested != base.Tested || res.MarkedProof != base.MarkedProof ||
					fmt.Sprint(res.Core) != fmt.Sprint(base.Core) {
					t.Fatalf("seed %d: resumed result diverged: tested=%d/%d marked=%d/%d",
						seed, res.Tested, base.Tested, res.MarkedProof, base.MarkedProof)
				}
			}
			// Header-level corruptions must always force a full run; a harness
			// where nothing ever degrades would be asserting nothing.
			if (kind == JournalStaleFingerprint || kind == JournalVersionSkew) && fullRuns != 10 {
				t.Errorf("%v: %d full runs, want 10", kind, fullRuns)
			}
			t.Logf("%v: %d resumed, %d full runs", kind, resumes, fullRuns)
		})
	}
}

// TestJournalFaultDeterminism pins reproduce-from-seed for the journal arm.
func TestJournalFaultDeterminism(t *testing.T) {
	f, tr := goodInstance(t, 4)
	meta := journal.Meta{Kind: journal.KindVerifySeq, Interval: 16,
		FormulaFP: journal.FingerprintFormula(f), ProofFP: journal.FingerprintTrace(tr)}
	data := journal.EncodeHeader(meta)
	for i := 0; i < 4; i++ {
		data = append(data, byte('C'), 4, 0, 0, 0, 1, 2, 3, byte(i))
		data = append(data, 0xde, 0xad, 0xbe, 0xef) // CRC value is irrelevant here
	}
	for _, kind := range JournalKinds {
		a, ok1 := New(11).ApplyJournal(kind, data)
		b, ok2 := New(11).ApplyJournal(kind, data)
		if ok1 != ok2 || !bytes.Equal(a, b) {
			t.Fatalf("%v: same seed produced different corruptions", kind)
		}
	}
	// Clone discipline: the input must be untouched.
	want := append([]byte(nil), data...)
	inj := New(5)
	for _, kind := range JournalKinds {
		inj.ApplyJournal(kind, data)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("ApplyJournal mutated its input")
	}
}
