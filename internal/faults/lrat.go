package faults

import (
	"repro/internal/lrat"
)

// HintKind enumerates corruption modes for hinted (LRAT) proofs: the ways a
// buggy emitter or a damaged store would break a hint list while leaving
// the proof syntactically well-formed. The hinted checker trusts hints to
// name antecedents that become unit in order, so each of these attacks a
// distinct part of that contract.
type HintKind int

const (
	// WrongAntecedent replaces one hint with a different clause ID that is
	// live at that step — the named clause exists but does not participate
	// in the derivation.
	WrongAntecedent HintKind = iota
	// ReorderHints swaps two hints on one step, breaking the strict
	// replay-order requirement (each hint must be unit when reached).
	ReorderHints
	// DropHint removes one hint from a step, leaving a propagation gap.
	DropHint
	// DanglingHintID points one hint at an ID that no formula clause or
	// proof step ever introduces.
	DanglingHintID
)

// HintKinds lists every hinted-proof corruption mode, for matrix tests.
var HintKinds = []HintKind{WrongAntecedent, ReorderHints, DropHint, DanglingHintID}

func (k HintKind) String() string {
	switch k {
	case WrongAntecedent:
		return "wrong-antecedent"
	case ReorderHints:
		return "reorder-hints"
	case DropHint:
		return "drop-hint"
	case DanglingHintID:
		return "dangling-hint-id"
	default:
		return "unknown-hint-fault"
	}
}

// cloneProof deep-copies an LRAT proof so mutations never alias the input.
func cloneProof(p *lrat.Proof) *lrat.Proof {
	out := &lrat.Proof{Steps: make([]lrat.Step, len(p.Steps))}
	for i, s := range p.Steps {
		out.Steps[i] = lrat.Step{
			ID:      s.ID,
			Del:     s.Del,
			Deleted: append([]int64(nil), s.Deleted...),
			C:       append(s.C[:0:0], s.C...),
			Hints:   append([]int64(nil), s.Hints...),
		}
	}
	return out
}

// ApplyHints returns a corrupted copy of p. The input is never mutated.
// ok is false when the kind does not apply (e.g. no step carries two hints
// to reorder); nothing is counted in that case.
func (in *Injector) ApplyHints(k HintKind, p *lrat.Proof) (*lrat.Proof, bool) {
	mp := cloneProof(p)
	// Candidate steps: additions whose hint list is long enough for the
	// chosen mutation.
	minHints := 1
	if k == ReorderHints {
		minHints = 2
	}
	var candidates []int
	for i, s := range mp.Steps {
		if !s.Del && len(s.Hints) >= minHints {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return nil, false
	}
	si := candidates[in.rng.Intn(len(candidates))]
	hints := mp.Steps[si].Hints

	switch k {
	case WrongAntecedent:
		// Replace one hint with another ID live at this step: an earlier
		// step's ID, or a different hint of the same step. Falling back to
		// ID 1 (a formula clause — every step's antecedents include formula
		// clauses transitively, but rarely clause 1 specifically).
		hi := in.rng.Intn(len(hints))
		repl := int64(1)
		if si > 0 {
			repl = mp.Steps[in.rng.Intn(si)].ID
		}
		if repl == hints[hi] {
			repl = 1
		}
		if repl == hints[hi] {
			return nil, false
		}
		hints[hi] = repl
	case ReorderHints:
		i := in.rng.Intn(len(hints) - 1)
		j := i + 1 + in.rng.Intn(len(hints)-i-1)
		if hints[i] == hints[j] {
			return nil, false
		}
		hints[i], hints[j] = hints[j], hints[i]
	case DropHint:
		hi := in.rng.Intn(len(hints))
		mp.Steps[si].Hints = append(hints[:hi], hints[hi+1:]...)
	case DanglingHintID:
		// One past the largest ID in the proof: never introduced.
		max := int64(0)
		for _, s := range mp.Steps {
			if s.ID > max {
				max = s.ID
			}
		}
		hints[in.rng.Intn(len(hints))] = max + 1
	default:
		return nil, false
	}
	in.count()
	return mp, true
}
