package faults

import (
	"bytes"
	"testing"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/lrat"
	"repro/internal/proof"
)

// recordedProof verifies PHP(n) with the hint recorder attached and
// returns the instance with its emission-ready LRAT proof.
func recordedProof(t *testing.T, n int) (*cnf.Formula, *proof.Trace, *lrat.Proof) {
	t.Helper()
	f, tr := goodInstance(t, n)
	var rec lrat.Recorder
	res, err := core.Verify(f, tr, core.Options{
		Mode:   core.ModeCheckMarked,
		Engine: core.EngineWatched,
		Hints:  &rec,
	})
	if err != nil || !res.OK {
		t.Fatalf("recording run failed: err=%v res=%+v", err, res)
	}
	p, err := rec.Proof()
	if err != nil {
		t.Fatal(err)
	}
	if cres, err := lrat.Check(f, p, lrat.Options{}); err != nil || !cres.OK {
		t.Fatalf("baseline hinted proof rejected: err=%v res=%+v", err, cres)
	}
	return f, tr, p
}

// TestLRATHintFaultMatrix attacks the hinted checker with syntactically
// well-formed proofs whose hint lists lie: wrong antecedents, reordered
// units, dropped hints, dangling IDs. Sequential and parallel checks must
// agree on every mutant, never panic, and each kind must bite (produce at
// least one rejection) across the seeds.
func TestLRATHintFaultMatrix(t *testing.T) {
	f, _, p := recordedProof(t, 5)

	rejectionSeen := make(map[HintKind]bool)
	for _, kind := range HintKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			applied := 0
			for seed := int64(0); seed < 8; seed++ {
				inj := New(seed)
				mp, ok := inj.ApplyHints(kind, p)
				if !ok {
					continue
				}
				applied++
				seq, err := lrat.Check(f, mp, lrat.Options{})
				if err != nil {
					t.Fatalf("seed %d: sequential check errored: %v", seed, err)
				}
				par, err := lrat.Check(f, mp, lrat.Options{Workers: 4})
				if err != nil {
					t.Fatalf("seed %d: parallel check errored: %v", seed, err)
				}
				if seq.OK != par.OK {
					t.Errorf("seed %d: verdict split: seq=%v par=%v", seed, seq.OK, par.OK)
				}
				if !seq.OK {
					rejectionSeen[kind] = true
					if seq.Reason == "" {
						t.Errorf("seed %d: rejection without a reason", seed)
					}
				}
			}
			if applied == 0 {
				t.Fatalf("%v never applied across seeds", kind)
			}
		})
	}
	for _, kind := range HintKinds {
		if !rejectionSeen[kind] {
			t.Errorf("%v: no seed produced a rejection — mutation is not biting", kind)
		}
	}
}

// TestLRATDifferentialMatrix is the cross-checker contract: corrupt the
// underlying instance with every structural fault kind and require the
// hinted pipeline to be no more permissive than the RUP checker it derives
// from. When RUP accepts a mutant, the hints recorded during that run must
// pass the hinted check; when RUP rejects, whatever partial recording
// exists must be rejected too — a hinted proof must never outlive the RUP
// verdict it was recorded from.
func TestLRATDifferentialMatrix(t *testing.T) {
	f, tr, clean := recordedProof(t, 5)

	for _, kind := range Kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				inj := New(seed)
				mf, mt, ok := inj.Apply(kind, f, tr)
				if !ok {
					t.Fatalf("seed %d: %v inapplicable", seed, kind)
				}
				var rec lrat.Recorder
				res, err := core.Verify(mf, mt, core.Options{
					Mode:   core.ModeCheckMarked,
					Engine: core.EngineWatched,
					Hints:  &rec,
				})
				rupOK := err == nil && res != nil && res.OK
				mp, perr := rec.Proof()
				if perr != nil {
					t.Fatalf("seed %d: recorder state corrupt: %v", seed, perr)
				}
				cres, cerr := lrat.Check(mf, mp, lrat.Options{})
				if cerr != nil {
					t.Fatalf("seed %d: hinted check errored: %v", seed, cerr)
				}
				if rupOK && !cres.OK {
					t.Errorf("seed %d: RUP accepted but hinted check rejected at %d: %s",
						seed, cres.FailedStep, cres.Reason)
				}
				if !rupOK && cres.OK {
					t.Errorf("seed %d: RUP rejected but the partial hinted proof passed", seed)
				}
			}
		})
	}

	// The stored-proof threat: a hinted proof recorded against yesterday's
	// formula must not verify against a formula whose clauses shifted.
	// Dropping any formula clause renumbers every formula ID the hints
	// reference.
	t.Run("stale-proof-vs-mutated-formula", func(t *testing.T) {
		for seed := int64(0); seed < 5; seed++ {
			mf, _, ok := New(seed).Apply(DropFormulaClause, f, tr)
			if !ok {
				t.Fatalf("seed %d: drop-formula-clause inapplicable", seed)
			}
			cres, err := lrat.Check(mf, clean, lrat.Options{})
			if err != nil {
				t.Fatalf("seed %d: check errored: %v", seed, err)
			}
			if cres.OK {
				t.Errorf("seed %d: stale hinted proof accepted against a mutated (satisfiable) formula", seed)
			}
		}
	})
}

// TestApplyHintsDeterminism pins reproduce-from-seed for the hint kinds.
func TestApplyHintsDeterminism(t *testing.T) {
	_, _, p := recordedProof(t, 4)
	for _, kind := range HintKinds {
		a, ok1 := New(7).ApplyHints(kind, p)
		b, ok2 := New(7).ApplyHints(kind, p)
		if ok1 != ok2 {
			t.Fatalf("%v: applicability diverged", kind)
		}
		if !ok1 {
			continue
		}
		var x, y bytes.Buffer
		if err := lrat.Write(&x, a); err != nil {
			t.Fatal(err)
		}
		if err := lrat.Write(&y, b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(x.Bytes(), y.Bytes()) {
			t.Fatalf("%v: same seed produced different mutations", kind)
		}
	}
}

// TestApplyHintsDoesNotAliasInput guards the clone discipline.
func TestApplyHintsDoesNotAliasInput(t *testing.T) {
	_, _, p := recordedProof(t, 4)
	var before bytes.Buffer
	if err := lrat.Write(&before, p); err != nil {
		t.Fatal(err)
	}
	inj := New(3)
	for _, kind := range HintKinds {
		inj.ApplyHints(kind, p)
	}
	var after bytes.Buffer
	if err := lrat.Write(&after, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("ApplyHints mutated its input")
	}
}
