package faults

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/proof"
	"repro/internal/solver"
)

// The robustness contract, exercised as a matrix: every corruption kind ×
// every checker configuration (mode × engine, sequential and parallel).
// For each cell the verifier must return a verdict or a typed error within
// the deadline — never panic, never hang — and must never accept a proof
// for a satisfiable formula. gen.PHP is minimally unsatisfiable, so
// DropFormulaClause always yields a SAT formula and "reject" becomes a hard
// requirement there; for trace-only corruptions the formula stays UNSAT and
// an accept is sound (the mutation happened to preserve proof validity), so
// the harness instead checks that all exhaustive checkers agree.

// config is one checker configuration in the matrix.
type config struct {
	name     string
	checkAll bool // exhaustive configurations must agree on the verdict
	run      func(*cnf.Formula, *proof.Trace, context.Context) (*core.Result, error)
}

func configs() []config {
	var out []config
	for _, eng := range []core.EngineKind{core.EngineWatched, core.EngineCounting} {
		eng := eng
		for _, mode := range []core.Mode{core.ModeCheckAll, core.ModeCheckMarked} {
			mode := mode
			out = append(out, config{
				name:     fmt.Sprintf("seq/%v/%v", mode, eng),
				checkAll: mode == core.ModeCheckAll,
				run: func(f *cnf.Formula, t *proof.Trace, ctx context.Context) (*core.Result, error) {
					return core.Verify(f, t, core.Options{Mode: mode, Engine: eng, Ctx: ctx})
				},
			})
		}
		out = append(out, config{
			name:     fmt.Sprintf("par/%v", eng),
			checkAll: true,
			run: func(f *cnf.Formula, t *proof.Trace, ctx context.Context) (*core.Result, error) {
				return core.VerifyParallelOpts(f, t, core.Options{Engine: eng, Ctx: ctx}, 4)
			},
		})
	}
	return out
}

// goodInstance solves PHP(n) and returns the formula with its verified
// proof trace.
func goodInstance(t *testing.T, n int) (*cnf.Formula, *proof.Trace) {
	t.Helper()
	inst := gen.PHP(n)
	st, tr, _, _, err := solver.Solve(inst.F, solver.Options{})
	if err != nil || st != solver.Unsat {
		t.Fatalf("solving %s: status=%v err=%v", inst.Name, st, err)
	}
	res, err := core.Verify(inst.F, tr, core.Options{})
	if err != nil || !res.OK {
		t.Fatalf("baseline proof invalid: err=%v res=%+v", err, res)
	}
	return inst.F, tr
}

// formulaIsUnsat re-solves a (possibly mutated) formula independently.
func formulaIsUnsat(t *testing.T, f *cnf.Formula) bool {
	t.Helper()
	st, _, _, _, err := solver.Solve(f.Clone(), solver.Options{})
	if err != nil || st == solver.Unknown {
		t.Fatalf("re-solving mutated formula: status=%v err=%v", st, err)
	}
	return st == solver.Unsat
}

func TestFaultMatrix(t *testing.T) {
	f, tr := goodInstance(t, 5)
	cfgs := configs()

	// rejectionSeen tracks, per kind, whether at least one (seed, config)
	// cell rejected — a harness that never rejects anything would be
	// asserting nothing.
	rejectionSeen := make(map[Kind]bool)

	for _, kind := range Kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				inj := New(seed)
				inj.Obs = obs.New()
				mf, mt, ok := inj.Apply(kind, f, tr)
				if !ok {
					t.Fatalf("seed %d: %v inapplicable to PHP(5) instance", seed, kind)
				}
				if got := inj.Obs.Counter("faults.injected").Value(); got != 1 {
					t.Fatalf("seed %d: faults.injected = %d", seed, got)
				}
				sat := kind == DropFormulaClause // PHP is minimally UNSAT
				if sat && formulaIsUnsat(t, mf) {
					t.Fatalf("seed %d: dropping a PHP clause did not make it SAT", seed)
				}

				accepts := make(map[string]bool, len(cfgs))
				for _, cfg := range cfgs {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					res, err := cfg.run(mf, mt, ctx)
					cancel()
					if errors.Is(err, core.ErrDeadline) || errors.Is(err, core.ErrCancelled) {
						t.Fatalf("seed %d %s: verification hit the 5s deadline: %v", seed, cfg.name, err)
					}
					accepted := err == nil && res != nil && res.OK
					accepts[cfg.name] = accepted
					if !accepted {
						rejectionSeen[kind] = true
					}
					// The soundness invariant: accept ⇒ the formula the
					// checker saw really is UNSAT.
					if accepted && sat {
						t.Errorf("seed %d %s: ACCEPTED a proof for a satisfiable formula", seed, cfg.name)
					}
				}

				// All exhaustive checkers saw the same formula, trace, and
				// semantics; their verdicts must agree.
				var first string
				for _, cfg := range cfgs {
					if !cfg.checkAll {
						continue
					}
					if first == "" {
						first = cfg.name
						continue
					}
					if accepts[cfg.name] != accepts[first] {
						t.Errorf("seed %d: verdict split: %s=%v vs %s=%v",
							seed, first, accepts[first], cfg.name, accepts[cfg.name])
					}
				}
				// Check-marked verifies a subset of what check-all does, so
				// exhaustive acceptance implies marked acceptance.
				for _, cfg := range cfgs {
					if cfg.checkAll || !accepts[first] {
						continue
					}
					if !accepts[cfg.name] {
						t.Errorf("seed %d: check-all accepted but %s rejected", seed, cfg.name)
					}
				}
			}
		})
	}

	// DupClause and SwapClauses can legitimately preserve validity; every
	// other kind must have produced at least one rejection across the five
	// seeds, or the harness is exercising nothing.
	for _, kind := range Kinds {
		if kind == DupClause || kind == SwapClauses {
			continue
		}
		if !rejectionSeen[kind] {
			t.Errorf("%v: no (seed, config) cell rejected — mutation is not biting", kind)
		}
	}
}

// TestFaultMatrixSerialized runs the byte-corruption arm: serialize the
// good trace (text and binary), corrupt one byte, and require the parser to
// either reject with a typed error or produce a trace the verifier handles
// under the same soundness contract.
func TestFaultMatrixSerialized(t *testing.T) {
	f, tr := goodInstance(t, 5)
	cfgs := configs()

	type codec struct {
		name  string
		write func(*bytes.Buffer) error
		read  func([]byte) (*proof.Trace, error)
	}
	codecs := []codec{
		{
			name:  "text",
			write: func(b *bytes.Buffer) error { return proof.Write(b, tr) },
			read:  func(d []byte) (*proof.Trace, error) { return proof.Read(bytes.NewReader(d)) },
		},
		{
			name:  "binary",
			write: func(b *bytes.Buffer) error { return proof.WriteBinary(b, tr) },
			read:  func(d []byte) (*proof.Trace, error) { return proof.ReadBinary(bytes.NewReader(d)) },
		},
	}

	for _, cd := range codecs {
		cd := cd
		t.Run(cd.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := cd.write(&buf); err != nil {
				t.Fatal(err)
			}
			clean := buf.Bytes()
			parseErrors, verdicts := 0, 0
			for seed := int64(0); seed < 20; seed++ {
				inj := New(1000 + seed)
				data, ok := inj.CorruptBytes(clean)
				if !ok {
					t.Fatal("CorruptBytes on non-empty input returned ok=false")
				}
				mt, err := cd.read(data)
				if err != nil {
					// Typed rejection is the expected common case.
					if !errors.Is(err, proof.ErrMalformed) && !errors.Is(err, proof.ErrLimit) {
						t.Fatalf("seed %d: parse error is untyped: %v", seed, err)
					}
					parseErrors++
					continue
				}
				// The corruption parsed; the verifier must still uphold the
				// contract. PHP(5) itself is untouched (UNSAT), so any
				// verdict is sound — we require only verdict agreement and
				// no panic/hang.
				verdicts++
				accepts := make(map[string]bool, len(cfgs))
				for _, cfg := range cfgs {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					res, err := cfg.run(f, mt, ctx)
					cancel()
					if errors.Is(err, core.ErrDeadline) {
						t.Fatalf("seed %d %s: hit the 5s deadline", seed, cfg.name)
					}
					accepts[cfg.name] = err == nil && res != nil && res.OK
				}
				var first string
				for _, cfg := range cfgs {
					if !cfg.checkAll {
						continue
					}
					if first == "" {
						first = cfg.name
						continue
					}
					if accepts[cfg.name] != accepts[first] {
						t.Errorf("seed %d: verdict split: %s=%v vs %s=%v",
							seed, first, accepts[first], cfg.name, accepts[cfg.name])
					}
				}
			}
			if parseErrors == 0 {
				t.Error("no corrupted serialization was rejected by the parser")
			}
			t.Logf("%s: %d parse rejections, %d parsed-and-verified", cd.name, parseErrors, verdicts)
		})
	}
}

// TestInjectorDeterminism pins the reproduce-from-seed property the whole
// harness rests on.
func TestInjectorDeterminism(t *testing.T) {
	f, tr := goodInstance(t, 4)
	for _, kind := range Kinds {
		a1, b1, ok1 := New(7).Apply(kind, f, tr)
		a2, b2, ok2 := New(7).Apply(kind, f, tr)
		if ok1 != ok2 {
			t.Fatalf("%v: applicability diverged", kind)
		}
		if !ok1 {
			continue
		}
		var x, y bytes.Buffer
		if err := proof.Write(&x, b1); err != nil {
			t.Fatal(err)
		}
		if err := proof.Write(&y, b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(x.Bytes(), y.Bytes()) || a1.NumClauses() != a2.NumClauses() {
			t.Fatalf("%v: same seed produced different mutations", kind)
		}
	}
}

// TestMutationsDoNotAliasInputs guards the clone discipline: applying a
// fault must leave the pristine instance bit-identical.
func TestMutationsDoNotAliasInputs(t *testing.T) {
	f, tr := goodInstance(t, 4)
	var before bytes.Buffer
	if err := proof.Write(&before, tr); err != nil {
		t.Fatal(err)
	}
	nc := f.NumClauses()
	inj := New(3)
	for _, kind := range Kinds {
		if _, _, ok := inj.Apply(kind, f, tr); !ok {
			t.Fatalf("%v inapplicable", kind)
		}
	}
	var after bytes.Buffer
	if err := proof.Write(&after, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) || f.NumClauses() != nc {
		t.Fatal("Apply mutated its inputs")
	}
}
