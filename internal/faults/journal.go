package faults

import (
	"encoding/binary"

	"repro/internal/journal"
)

// JournalKind enumerates corruptions of a checkpoint-journal *file* — the
// crash-and-bitrot counterpart of the structural proof corruptions. Each one
// models a distinct way a journal on disk can be wrong when a verifier tries
// to resume from it, and each must degrade to "resume from an earlier durable
// record" or "fall back to a full run": never a wrong verdict, never a hang.
type JournalKind int

const (
	// JournalTruncatedTail cuts bytes off the end of the file, as a crash
	// mid-append does. This is the one corruption the format is *expected*
	// to tolerate: resume restarts from the last record that still checks
	// out (or reports an empty journal when none survives).
	JournalTruncatedTail JournalKind = iota
	// JournalBitFlip flips a single bit somewhere in the record region —
	// bitrot, a bad sector, a buggy copy. CRC32 detects every single-bit
	// error inside a framed record, so Open must either reject the journal
	// or return a payload that was genuinely appended; it may never invent
	// a new one.
	JournalBitFlip
	// JournalStaleFingerprint forges a header with a *valid* CRC but the
	// formula fingerprint of some other instance — a journal left behind by
	// a run on a different input. Open must report a metadata mismatch.
	JournalStaleFingerprint
	// JournalVersionSkew rewrites the format version field, as a journal
	// written by a newer or older build would carry. Open must report
	// version skew without attempting to parse the records.
	JournalVersionSkew
)

// JournalKinds lists every journal corruption mode, for matrix tests.
var JournalKinds = []JournalKind{
	JournalTruncatedTail, JournalBitFlip, JournalStaleFingerprint, JournalVersionSkew,
}

func (k JournalKind) String() string {
	switch k {
	case JournalTruncatedTail:
		return "journal-truncated-tail"
	case JournalBitFlip:
		return "journal-bit-flip"
	case JournalStaleFingerprint:
		return "journal-stale-fingerprint"
	case JournalVersionSkew:
		return "journal-version-skew"
	default:
		return "unknown-journal-fault"
	}
}

// ApplyJournal returns a corrupted copy of a serialized journal. The input is
// never mutated. ok is false when the kind does not apply (e.g. the file is
// too short to have a record region to damage).
func (in *Injector) ApplyJournal(k JournalKind, data []byte) (out []byte, ok bool) {
	switch k {
	case JournalTruncatedTail:
		if len(data) <= journal.HeaderSize {
			return nil, false
		}
		// Cut anywhere in the record region, always dropping at least one
		// byte; cutting a whole record (or all of them) is a legal outcome
		// of a crash too.
		cut := journal.HeaderSize + in.rng.Intn(len(data)-journal.HeaderSize)
		out = append([]byte(nil), data[:cut]...)
	case JournalBitFlip:
		if len(data) <= journal.HeaderSize {
			return nil, false
		}
		out = append([]byte(nil), data...)
		i := journal.HeaderSize + in.rng.Intn(len(out)-journal.HeaderSize)
		out[i] ^= 1 << in.rng.Intn(8)
	case JournalStaleFingerprint:
		meta, err := journal.DecodeHeader(data)
		if err != nil {
			return nil, false
		}
		meta.FormulaFP ^= 1 + uint64(in.rng.Int63())
		out = append([]byte(nil), data...)
		copy(out, journal.EncodeHeader(meta))
	case JournalVersionSkew:
		if len(data) < journal.HeaderSize {
			return nil, false
		}
		out = append([]byte(nil), data...)
		skew := uint32(journal.Version + 1 + in.rng.Intn(16))
		binary.LittleEndian.PutUint32(out[4:], skew)
	default:
		return nil, false
	}
	in.count()
	return out, true
}
