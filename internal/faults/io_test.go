package faults

import (
	"bytes"
	"errors"
	"syscall"
	"testing"
)

func TestFailSinkAfter(t *testing.T) {
	var appended [][]byte
	sink := FailSinkAfter(func(p []byte) error {
		appended = append(appended, append([]byte(nil), p...))
		return nil
	}, 2)
	for i := 0; i < 2; i++ {
		if err := sink([]byte{byte(i)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	err := sink([]byte{9})
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("third append err = %v, want EIO", err)
	}
	if len(appended) != 2 {
		t.Fatalf("%d appends reached the sink, want 2", len(appended))
	}
	// The failure is sticky: a degraded disk does not heal between appends.
	if err := sink([]byte{10}); !errors.Is(err, syscall.EIO) {
		t.Fatalf("fourth append err = %v, want EIO", err)
	}
}

func TestFailWriterAfter(t *testing.T) {
	var buf bytes.Buffer
	w := FailWriterAfter(&buf, 5)
	if n, err := w.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("first write = %d, %v", n, err)
	}
	// Straddles the boundary: 2 bytes land, then ENOSPC.
	n, err := w.Write([]byte("defg"))
	if n != 2 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("straddling write = %d, %v; want 2, ENOSPC", n, err)
	}
	if buf.String() != "abcde" {
		t.Fatalf("bytes on disk %q, want %q", buf.String(), "abcde")
	}
	if _, err := w.Write([]byte("h")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-full write err = %v, want ENOSPC", err)
	}
}

func TestTruncateBody(t *testing.T) {
	in := New(7)
	body := []byte("--boundary\r\nContent-Disposition: form-data\r\n\r\np cnf 1 1\n1 0\n")
	cut, ok := in.TruncateBody(body)
	if !ok {
		t.Fatal("truncation did not apply")
	}
	if len(cut) == 0 || len(cut) >= len(body) {
		t.Fatalf("cut length %d not strictly inside (0, %d)", len(cut), len(body))
	}
	if !bytes.Equal(cut, body[:len(cut)]) {
		t.Fatal("truncated body is not a prefix of the original")
	}
	// Deterministic from the seed.
	cut2, _ := New(7).TruncateBody(body)
	if !bytes.Equal(cut, cut2) {
		t.Fatal("same seed produced different truncation points")
	}
	if _, ok := in.TruncateBody([]byte{1}); ok {
		t.Fatal("1-byte body should not be truncatable")
	}
}
