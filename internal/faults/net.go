package faults

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// NetKind enumerates the network fault modes NetProxy can interpose between
// a client and a backend — the failure shapes a cluster front tier must
// survive. Structural Kinds corrupt *payloads*; NetKinds corrupt the
// *transport* carrying them.
type NetKind int

const (
	// NetNone passes traffic through untouched.
	NetNone NetKind = iota
	// NetConnRefused closes the proxy's listener: new dials fail instantly
	// with "connection refused", the signature of a crashed process whose
	// port nothing holds open.
	NetConnRefused
	// NetSlowStart accepts connections but stalls them for SlowStart before
	// forwarding the first byte — the shape of an overloaded or GC-pausing
	// backend. Clients without timeouts hang here; that is the point.
	NetSlowStart
	// NetMidBodyReset forwards the backend's response only up to ResetAfter
	// bytes, then hard-resets the client connection (RST, not FIN) — a
	// transfer that dies mid-body, after headers promised success.
	NetMidBodyReset
	// NetPartition accepts connections and blackholes them: no data moves in
	// either direction and no FIN is ever sent until the partition heals.
	// Indistinguishable, to the client, from a network that silently drops
	// packets.
	NetPartition
)

// NetKinds lists every network fault mode, for matrix tests. NetNone is
// included: a fault matrix that never exercises the healthy path cannot
// detect a harness that fails everything.
var NetKinds = []NetKind{NetNone, NetConnRefused, NetSlowStart, NetMidBodyReset, NetPartition}

func (k NetKind) String() string {
	switch k {
	case NetNone:
		return "none"
	case NetConnRefused:
		return "conn-refused"
	case NetSlowStart:
		return "slow-start"
	case NetMidBodyReset:
		return "mid-body-reset"
	case NetPartition:
		return "partition"
	default:
		return "unknown-net-fault"
	}
}

// NetProxy is a TCP proxy that interposes one NetKind between clients and a
// backend. It listens on a fixed loopback address, so a fault can be
// switched on and healed (including a full listener teardown for
// NetConnRefused) without the client ever re-discovering the address — the
// same contract a real crashed-and-restarted backend offers.
//
// Kind changes apply to new connections; connections parked by NetPartition
// or NetSlowStart are released (closed) when the kind changes or the proxy
// closes, so a healed partition never leaks goroutines.
type NetProxy struct {
	target string

	mu         sync.Mutex
	addr       string // fixed once first bound
	ln         net.Listener
	kind       NetKind
	slowStart  time.Duration
	resetAfter int64
	release    chan struct{} // closed to free parked connections
	conns      map[net.Conn]struct{}
	closed     bool
}

// NewNetProxy starts a pass-through proxy on a fresh loopback port in front
// of target ("host:port").
func NewNetProxy(target string) (*NetProxy, error) {
	p := &NetProxy{
		target:     target,
		slowStart:  2 * time.Second,
		resetAfter: 512,
		release:    make(chan struct{}),
		conns:      make(map[net.Conn]struct{}),
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faults: net proxy listen: %w", err)
	}
	p.ln = ln
	p.addr = ln.Addr().String()
	go p.serve(ln)
	return p, nil
}

// Addr returns the proxy's fixed client-facing address.
func (p *NetProxy) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

// Kind returns the currently injected fault.
func (p *NetProxy) Kind() NetKind {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.kind
}

// SetSlowStart configures the NetSlowStart stall (default 2s).
func (p *NetProxy) SetSlowStart(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.slowStart = d
}

// SetResetAfter configures how many response bytes NetMidBodyReset lets
// through before the RST (default 512).
func (p *NetProxy) SetResetAfter(n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.resetAfter = n
}

// Set switches the injected fault. Parked connections from the previous
// kind are released; for NetConnRefused the listener itself is torn down,
// and healing re-binds the same address.
func (p *NetProxy) Set(kind NetKind) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("faults: net proxy closed")
	}
	// Free anything the old kind parked.
	close(p.release)
	p.release = make(chan struct{})

	if kind == NetConnRefused {
		if p.ln != nil {
			p.ln.Close()
			p.ln = nil
		}
		p.kind = kind
		return nil
	}
	if p.ln == nil {
		ln, err := net.Listen("tcp", p.addr)
		if err != nil {
			return fmt.Errorf("faults: net proxy re-listen %s: %w", p.addr, err)
		}
		p.ln = ln
		go p.serve(ln)
	}
	p.kind = kind
	return nil
}

// Close tears the proxy down: listener, parked and active connections.
func (p *NetProxy) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	close(p.release)
	if p.ln != nil {
		p.ln.Close()
		p.ln = nil
	}
	for c := range p.conns {
		c.Close()
	}
	return nil
}

func (p *NetProxy) serve(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed: NetConnRefused or proxy shutdown
		}
		go p.handle(c)
	}
}

func (p *NetProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *NetProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *NetProxy) handle(client net.Conn) {
	p.mu.Lock()
	kind, slow, cap, release := p.kind, p.slowStart, p.resetAfter, p.release
	p.mu.Unlock()
	if !p.track(client) {
		client.Close()
		return
	}
	defer p.untrack(client)
	defer client.Close()

	switch kind {
	case NetPartition:
		// Blackhole until the partition heals; only then FIN.
		<-release
		return
	case NetSlowStart:
		t := time.NewTimer(slow)
		defer t.Stop()
		select {
		case <-t.C:
		case <-release:
			return
		}
	}

	server, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer server.Close()

	done := make(chan struct{}, 2)
	// client → server: always unrestricted (the request must reach the
	// backend for a mid-response reset to be the failure under test).
	go func() {
		io.Copy(server, client)
		if tc, ok := server.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	// server → client: capped under NetMidBodyReset.
	go func() {
		if kind == NetMidBodyReset {
			io.CopyN(client, server, cap)
			// RST, not FIN: SetLinger(0) makes Close send a reset, which is
			// what a yanked cable or OOM-killed backend looks like.
			if tc, ok := client.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			client.Close()
			server.Close()
		} else {
			io.Copy(client, server)
			if tc, ok := client.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
		}
		done <- struct{}{}
	}()
	// Wait for both directions, but abandon the wait when the proxy heals or
	// closes (Close also closes both conns, unblocking the copies).
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-release:
			return
		}
	}
}
