package drat

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/solver"
)

func TestVerifyBackwardHandProof(t *testing.T) {
	p := &Proof{}
	p.Add(cl(1))
	p.Delete(cl(1, 2))
	p.Add(cl(-1))
	p.Add(nil)
	res, trimmed, core, err := VerifyBackward(chainFormula(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || !res.Refuted {
		t.Fatalf("res = %+v", res)
	}
	if trimmed.Len() == 0 || trimmed.Deletions() != 0 {
		t.Fatalf("trimmed = %+v", trimmed)
	}
	if len(core) == 0 {
		t.Fatal("empty core")
	}
}

func TestVerifyBackwardSkipsUnmarked(t *testing.T) {
	f := chainFormula()
	f.Add(5, 6) // slack so the padding clause is not trivially RUP-checked
	p := &Proof{}
	p.Add(cl(1, 5)) // implied but useless for the refutation
	p.Add(cl(1))
	p.Add(cl(-1))
	p.Add(nil)
	res, trimmed, _, err := VerifyBackward(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("res = %+v", res)
	}
	// The padding clause must be trimmed away.
	for _, s := range trimmed.Steps {
		if s.C.SameLits(cl(1, 5)) {
			t.Fatal("useless clause survived trimming")
		}
	}
}

func TestVerifyBackwardRejectsBadProof(t *testing.T) {
	f := cnf.NewFormula(0).Add(1, 2) // satisfiable
	p := &Proof{}
	p.Add(cl(1))
	p.Add(nil)
	res, _, _, err := VerifyBackward(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatalf("res = %+v", res)
	}
}

func TestVerifyBackwardRejectsBogusDeletion(t *testing.T) {
	p := &Proof{}
	p.Delete(cl(7, 8))
	p.Add(nil)
	res, _, _, err := VerifyBackward(chainFormula(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.FailedStep != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestVerifyBackwardNoRefutation(t *testing.T) {
	f := chainFormula()
	f.Add(5, 6)
	p := &Proof{}
	p.Add(cl(1, 5))
	res, _, _, err := VerifyBackward(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatalf("res = %+v", res)
	}
}

// TestVerifyBackwardSolverEndToEnd: a recorded solver proof with deletions
// passes backward checking; the trimmed proof re-verifies forward; the
// core is unsatisfiable.
func TestVerifyBackwardSolverEndToEnd(t *testing.T) {
	for _, inst := range []gen.Instance{gen.PHP(6), gen.AdderEquiv(8), gen.Fifo(4, 8)} {
		rec := NewRecorder()
		opts := solver.Options{
			MaxLearnedFactor: 0.1,
			RestartInterval:  30,
			OnLearn:          rec.Learn,
			OnDelete:         rec.Delete,
		}
		st, _, _, stats, err := solver.Solve(inst.F, opts)
		if err != nil || st != solver.Unsat {
			t.Fatalf("%s: %v %v", inst.Name, st, err)
		}
		res, trimmed, core, err := VerifyBackward(inst.F, rec.Proof())
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("%s: rejected at step %d: %s", inst.Name, res.FailedStep, res.Reason)
		}
		if stats.Deleted > 0 && rec.Proof().Deletions() == 0 {
			t.Fatalf("%s: deletions not recorded", inst.Name)
		}
		if trimmed.Additions() > rec.Proof().Additions()+1 {
			t.Fatalf("%s: trimmed proof larger than original", inst.Name)
		}
		// The trimmed proof re-verifies with the forward checker.
		fres, err := Verify(inst.F, trimmed)
		if err != nil || !fres.OK {
			t.Fatalf("%s: trimmed proof rejected forward: %v %+v", inst.Name, err, fres)
		}
		// The core is unsatisfiable.
		cst, _, _, _, err := solver.Solve(inst.F.Restrict(core), solver.Options{})
		if err != nil || cst != solver.Unsat {
			t.Fatalf("%s: core not UNSAT: %v %v", inst.Name, cst, err)
		}
	}
}

func TestVerifyBackwardAgreesWithForward(t *testing.T) {
	inst := gen.XorChain(11)
	rec := NewRecorder()
	opts := solver.Options{OnLearn: rec.Learn, OnDelete: rec.Delete}
	if st, _, _, _, _ := solver.Solve(inst.F, opts); st != solver.Unsat {
		t.Fatal("not unsat")
	}
	fres, err := Verify(inst.F, rec.Proof())
	if err != nil || !fres.OK {
		t.Fatalf("forward: %v %+v", err, fres)
	}
	bres, _, _, err := VerifyBackward(inst.F, rec.Proof())
	if err != nil || !bres.OK {
		t.Fatalf("backward: %v %+v", err, bres)
	}
	if bres.Additions != fres.Additions || bres.Deletions != fres.Deletions {
		t.Errorf("step counts differ: %+v vs %+v", bres, fres)
	}
}

func TestVerifyBackwardExplicitEmptyClause(t *testing.T) {
	p := &Proof{}
	p.Add(cl(1))
	p.Add(cl(-1))
	p.Add(nil)
	p.Add(cl(3)) // garbage after the refutation point is ignored
	res, trimmed, _, err := VerifyBackward(chainFormula(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("res = %+v", res)
	}
	for _, s := range trimmed.Steps {
		if s.C.SameLits(cl(3)) {
			t.Fatal("post-refutation garbage kept")
		}
	}
}
