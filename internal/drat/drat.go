// Package drat implements deletion-aware clausal proofs (DRUP format) —
// the direct descendant of the paper's conflict-clause proofs. A DRUP
// proof interleaves clause additions (each checkable by reverse unit
// propagation, exactly the paper's check) with deletion lines ("d ...")
// recording clauses the solver dropped from its database, which lets the
// checker's clause set track the solver's instead of growing monotonically.
//
// The paper's plain trace is the special case with no deletion lines; the
// forward checker below degenerates to Proof_verification1 run forwards.
package drat

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bcp"
	"repro/internal/cnf"
	"repro/internal/proof"
)

// Step is one proof line: an addition (Del=false) or deletion (Del=true).
type Step struct {
	Del bool
	C   cnf.Clause
}

// Proof is a DRUP proof: a chronological sequence of additions and
// deletions.
type Proof struct {
	Steps []Step
}

// Add appends an addition step.
func (p *Proof) Add(c cnf.Clause) { p.Steps = append(p.Steps, Step{C: c}) }

// Delete appends a deletion step.
func (p *Proof) Delete(c cnf.Clause) { p.Steps = append(p.Steps, Step{Del: true, C: c}) }

// Len returns the number of steps.
func (p *Proof) Len() int { return len(p.Steps) }

// Additions counts addition steps.
func (p *Proof) Additions() int {
	n := 0
	for _, s := range p.Steps {
		if !s.Del {
			n++
		}
	}
	return n
}

// Deletions counts deletion steps.
func (p *Proof) Deletions() int { return len(p.Steps) - p.Additions() }

// FromTrace lifts a plain conflict-clause trace into a deletion-free DRUP
// proof.
func FromTrace(t *proof.Trace) *Proof {
	p := &Proof{Steps: make([]Step, 0, t.Len())}
	for _, c := range t.Clauses {
		p.Add(c.Clone())
	}
	return p
}

// Write streams the proof in DRUP text format ("d" prefix for deletions).
func Write(w io.Writer, p *Proof) error {
	bw := bufio.NewWriter(w)
	for _, s := range p.Steps {
		if s.Del {
			if _, err := bw.WriteString("d "); err != nil {
				return err
			}
		}
		for _, l := range s.C {
			if _, err := bw.WriteString(strconv.Itoa(l.Dimacs())); err != nil {
				return err
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses DRUP text. Comment lines ('c') are ignored; a "d" token
// starts a deletion clause.
func Read(r io.Reader) (*Proof, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	p := &Proof{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == 'c' {
			continue
		}
		del := false
		if line == "d" || strings.HasPrefix(line, "d ") {
			del = true
			line = strings.TrimSpace(line[1:])
		}
		var c cnf.Clause
		terminated := false
		for _, tok := range strings.Fields(line) {
			d, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("drat: line %d: bad token %q", lineNo, tok)
			}
			if d == 0 {
				terminated = true
				break
			}
			c = append(c, cnf.FromDimacs(d))
		}
		if !terminated {
			return nil, fmt.Errorf("drat: line %d: clause not terminated by 0", lineNo)
		}
		p.Steps = append(p.Steps, Step{Del: del, C: c})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// clauseKey builds a canonical map key for deletion matching.
func clauseKey(c cnf.Clause) string {
	norm, _ := c.Normalize()
	ints := make([]int, len(norm))
	for i, l := range norm {
		ints[i] = l.Dimacs()
	}
	sort.Ints(ints)
	var b strings.Builder
	for _, d := range ints {
		b.WriteString(strconv.Itoa(d))
		b.WriteByte(' ')
	}
	return b.String()
}

// Result reports a DRUP/DRAT verification outcome.
type Result struct {
	OK           bool
	FailedStep   int // index of the offending step, -1 when OK
	Reason       string
	Additions    int
	Deletions    int
	Tautologies  int
	RATChecks    int  // additions accepted by the RAT fallback rather than RUP
	Refuted      bool // an empty clause (or final pair) was established
	Propagations int64

	// Incomplete is true when a backward run stopped before reaching a
	// verdict (BackwardOptions.Ctx cancelled or expired); the counters
	// above then describe the work done so far and OK is meaningless.
	// StoppedAt is the backward step index the scan had reached, or -1.
	Incomplete bool
	StoppedAt  int
}

// clauseStore tracks live clauses for deletion matching and RAT occurrence
// lookups.
type clauseStore struct {
	byKey map[string][]bcp.ID
	byID  map[bcp.ID]cnf.Clause
	occ   map[cnf.Lit]map[bcp.ID]struct{}
}

func newClauseStore() *clauseStore {
	return &clauseStore{
		byKey: map[string][]bcp.ID{},
		byID:  map[bcp.ID]cnf.Clause{},
		occ:   map[cnf.Lit]map[bcp.ID]struct{}{},
	}
}

func (cs *clauseStore) add(id bcp.ID, c cnf.Clause) {
	k := clauseKey(c)
	cs.byKey[k] = append(cs.byKey[k], id)
	cs.byID[id] = c
	for _, l := range c {
		m := cs.occ[l]
		if m == nil {
			m = map[bcp.ID]struct{}{}
			cs.occ[l] = m
		}
		m[id] = struct{}{}
	}
}

// remove drops one live instance of c and returns its ID (ok=false when
// none is live).
func (cs *clauseStore) remove(c cnf.Clause) (bcp.ID, bool) {
	k := clauseKey(c)
	ids := cs.byKey[k]
	if len(ids) == 0 {
		return 0, false
	}
	id := ids[len(ids)-1]
	cs.byKey[k] = ids[:len(ids)-1]
	for _, l := range cs.byID[id] {
		delete(cs.occ[l], id)
	}
	delete(cs.byID, id)
	return id, true
}

// Verify checks a clausal proof against f by forward checking: every added
// clause must be RUP (the paper's check: falsify and propagate to a
// conflict) or, failing that, RAT on its first literal (the DRAT
// generalization: every resolvent with a live clause on the pivot is RUP).
// Deletions must name live clauses. The proof is accepted when it derives
// the empty clause or ends with the paper's final conflicting pair.
func Verify(f *cnf.Formula, p *Proof) (*Result, error) {
	nVars := f.NumVars
	for _, s := range p.Steps {
		if mv := s.C.MaxVar(); int(mv)+1 > nVars {
			nVars = int(mv) + 1
		}
	}
	eng := bcp.NewEngine(nVars)
	store := newClauseStore()
	for _, c := range f.Clauses {
		store.add(eng.Add(c), c)
	}

	res := &Result{OK: true, FailedStep: -1, StoppedAt: -1}
	for i, s := range p.Steps {
		if s.Del {
			res.Deletions++
			id, ok := store.remove(s.C)
			if !ok {
				res.OK = false
				res.FailedStep = i
				res.Reason = fmt.Sprintf("deletion of a clause that is not live: %v", s.C)
				res.Propagations = eng.Propagations()
				return res, nil
			}
			eng.Deactivate(id)
			continue
		}
		res.Additions++
		if len(s.C) == 0 {
			conflict, _ := eng.Refute(nil)
			if conflict == bcp.NoConflict {
				res.OK = false
				res.FailedStep = i
				res.Reason = "empty clause is not derivable by unit propagation"
				res.Propagations = eng.Propagations()
				return res, nil
			}
			res.Refuted = true
			res.Propagations = eng.Propagations()
			return res, nil
		}
		conflict, selfContra := eng.Refute(s.C)
		switch {
		case selfContra:
			res.Tautologies++
		case conflict == bcp.NoConflict:
			if !ratHolds(eng, store, s.C) {
				res.OK = false
				res.FailedStep = i
				res.Reason = fmt.Sprintf("clause is neither RUP nor RAT on %v: %v", s.C[0], s.C)
				res.Propagations = eng.Propagations()
				return res, nil
			}
			res.RATChecks++
		}
		store.add(eng.Add(s.C), s.C)
	}

	// No explicit empty clause: accept the paper's final-conflicting-pair
	// termination, i.e. unit propagation alone now refutes the database.
	if conflict, _ := eng.Refute(nil); conflict != bcp.NoConflict {
		res.Refuted = true
		res.Propagations = eng.Propagations()
		return res, nil
	}
	res.OK = false
	res.FailedStep = len(p.Steps)
	res.Reason = "proof ends without deriving a refutation"
	res.Propagations = eng.Propagations()
	return res, nil
}

// ratHolds checks the resolution-asymmetric-tautology condition for c with
// pivot c[0]: for every live clause d containing the pivot's negation, the
// resolvent (c \ pivot) ∪ (d \ ¬pivot) must be RUP (tautologous resolvents
// are vacuously fine).
func ratHolds(eng *bcp.Engine, store *clauseStore, c cnf.Clause) bool {
	pivot := c[0]
	for id := range store.occ[pivot.Neg()] {
		d := store.byID[id]
		resolvent := make(cnf.Clause, 0, len(c)+len(d)-2)
		for _, l := range c {
			if l != pivot {
				resolvent = append(resolvent, l)
			}
		}
		for _, l := range d {
			if l != pivot.Neg() {
				resolvent = append(resolvent, l)
			}
		}
		conflict, selfContra := eng.Refute(resolvent)
		if selfContra {
			continue // tautologous resolvent
		}
		if conflict == bcp.NoConflict {
			return false
		}
	}
	return true
}
