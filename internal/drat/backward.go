package drat

import (
	"fmt"

	"repro/internal/bcp"
	"repro/internal/cnf"
)

// VerifyBackward checks a DRUP proof the way drat-trim does — which is
// exactly the paper's Proof_verification2 generalized to deletion lines:
//
//  1. replay the whole proof forward (activating additions, deactivating
//     deleted clauses) and confirm the final database is refuted by unit
//     propagation alone;
//  2. walk the steps backward: an addition is popped (deactivated) and
//     checked by the RUP test only if a later conflict marked it as used;
//     a deletion is undone (the clause is reactivated);
//  3. every conflict's analysis marks the clauses it used.
//
// Unmarked additions are skipped — the same redundancy argument as the
// paper's §4 — and the marked additions form the trimmed proof, returned
// as a deletion-free DRUP proof in chronological order. The marked
// original clauses form an unsatisfiable core, also as in §4.
//
// Note the backward pass uses only the RUP check; RAT additions (which the
// forward Verify accepts) are rejected here, matching the paper's scope.
func VerifyBackward(f *cnf.Formula, p *Proof) (*Result, *Proof, []int, error) {
	nVars := f.NumVars
	for _, s := range p.Steps {
		if mv := s.C.MaxVar(); int(mv)+1 > nVars {
			nVars = int(mv) + 1
		}
	}
	eng := bcp.NewEngineReactivable(nVars)
	store := newClauseStore()
	res := &Result{OK: true, FailedStep: -1}

	nf := len(f.Clauses)
	for _, c := range f.Clauses {
		store.add(eng.Add(c), c)
	}

	// Forward replay, remembering each step's clause ID. Deletion steps
	// record the ID they deactivated so the backward pass can reactivate
	// exactly that instance.
	stepID := make([]bcp.ID, len(p.Steps))
	refutedAt := -1
	for i, s := range p.Steps {
		if s.Del {
			res.Deletions++
			id, ok := store.remove(s.C)
			if !ok {
				res.OK = false
				res.FailedStep = i
				res.Reason = fmt.Sprintf("deletion of a clause that is not live: %v", s.C)
				return res, nil, nil, nil
			}
			eng.Deactivate(id)
			stepID[i] = id
			continue
		}
		res.Additions++
		if len(s.C) == 0 {
			refutedAt = i
			stepID[i] = -1
			break
		}
		id := eng.Add(s.C)
		store.add(id, s.C)
		stepID[i] = id
	}
	lastStep := len(p.Steps) - 1
	if refutedAt >= 0 {
		lastStep = refutedAt
	}

	// The final database must be refuted by unit propagation alone.
	conflict, _ := eng.Refute(nil)
	if conflict == bcp.NoConflict {
		res.OK = false
		res.FailedStep = lastStep + 1
		res.Reason = "proof ends without deriving a refutation"
		res.Propagations = eng.Propagations()
		return res, nil, nil, nil
	}
	marked := make(map[bcp.ID]bool)
	eng.WalkConflict(conflict, func(id bcp.ID) { marked[id] = true })

	// Backward pass.
	for i := lastStep; i >= 0; i-- {
		s := p.Steps[i]
		if s.Del {
			if err := eng.Reactivate(stepID[i]); err != nil {
				// Cannot happen — eng came from NewEngineReactivable above —
				// but an internal error beats silently skipping the undo.
				return nil, nil, nil, fmt.Errorf("drat: undoing deletion step %d: %w", i, err)
			}
			continue
		}
		if len(s.C) == 0 {
			continue // the refutation point itself
		}
		id := stepID[i]
		eng.Deactivate(id)
		if !marked[id] {
			continue
		}
		c, selfContra := eng.Refute(s.C)
		if selfContra {
			res.Tautologies++
			continue
		}
		if c == bcp.NoConflict {
			res.OK = false
			res.FailedStep = i
			res.Reason = fmt.Sprintf("marked clause is not RUP: %v", s.C)
			res.Propagations = eng.Propagations()
			return res, nil, nil, nil
		}
		eng.WalkConflict(c, func(used bcp.ID) { marked[used] = true })
	}
	res.Refuted = true
	res.Propagations = eng.Propagations()

	// Trimmed proof: marked additions in chronological order (no deletion
	// lines — the trimmed set is small enough not to need them), plus the
	// final empty clause so the result is a complete refutation.
	trimmed := &Proof{}
	for i := 0; i <= lastStep; i++ {
		s := p.Steps[i]
		if s.Del || len(s.C) == 0 {
			continue
		}
		if marked[stepID[i]] {
			trimmed.Add(s.C.Clone())
		}
	}
	trimmed.Add(nil)

	// Unsatisfiable core: marked original clauses.
	var core []int
	for i := 0; i < nf; i++ {
		if marked[bcp.ID(i)] {
			core = append(core, i)
		}
	}
	return res, trimmed, core, nil
}
