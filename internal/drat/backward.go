package drat

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/bcp"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/lrat"
	"repro/internal/obs"
)

// BackwardOptions configures checkpointing for VerifyBackwardOpts. The zero
// value disables it and leaves the scan byte-for-byte unchanged.
//
// The determinism contract matches internal/core's checkpointing (see
// core/checkpoint.go): when Every > 0 the checker rebuilds its BCP engine
// into a canonical state — formula plus the forward replay of the step
// prefix — at every epoch boundary, so an interrupted-then-resumed run
// passes through the same engine states as an uninterrupted checkpointed
// run and produces an identical trimmed proof and core.
type BackwardOptions struct {
	// Ctx, when non-nil, bounds the run: cancellation or an expired
	// deadline stops the backward scan (and propagation inside a single
	// RUP check) promptly, returning a partial Result together with
	// core.ErrCancelled or core.ErrDeadline — the same sentinels the
	// sequential verifier uses, so exit-code mapping is shared. A nil Ctx
	// never stops.
	Ctx context.Context
	// Every is the checkpoint interval in backward steps. Zero disables
	// checkpointing.
	Every int
	// Sink receives each encoded BackwardCheckpoint and must make it
	// durable before returning.
	Sink func(payload []byte) error
	// Resume restarts the backward pass from a decoded checkpoint.
	Resume *BackwardCheckpoint
	// Obs instruments the run: phase spans (structural-scan, forward-replay,
	// backward-pass), per-step counters and — when a flight recorder is
	// attached via Registry.SetTracer — checkpoint/rejection instants plus
	// the engine's per-Refute work deltas. Nil disables all of it.
	Obs *obs.Registry
	// Hints, when non-nil, records an LRAT hint step for every successfully
	// checked marked clause (plus the final refutation), using engine clause
	// ID + 1 as the LRAT ID. When checkpointing, the recorder state rides in
	// every checkpoint so a resumed run emits byte-identical LRAT; resuming
	// with Hints set from a checkpoint recorded without them fails with
	// ErrBadCheckpoint (the pre-checkpoint hints are unrecoverable).
	Hints *lrat.Recorder
}

// ErrBadCheckpoint wraps resume states that do not fit the proof they are
// offered to; callers fall back to a full run.
var ErrBadCheckpoint = errors.New("drat: checkpoint does not match this verification")

// BackwardCheckpoint is the durable state of a backward pass: the step
// index the loop will process next, the marked bitmap over the clause-ID
// space (formula clauses then additions, in forward order — IDs are assigned
// deterministically, so the bitmap is stable across processes), and the
// counters accumulated so far.
type BackwardCheckpoint struct {
	NextStep     int
	Marked       []bool
	Tautologies  int
	Propagations int64
	// Hints is the encoded lrat.Recorder state at the boundary (nil when the
	// run records no hints). Only version-2 payloads carry it, so journals
	// from hint-free runs stay byte-identical to version 1.
	Hints []byte
}

const (
	backwardCheckpointVersion      = 1
	backwardCheckpointVersionHints = 2
)

// Encode serializes the checkpoint (version byte, little-endian integers,
// packed bitmap, and — version 2, only when hints are recorded — the
// recorder blob).
func (cp *BackwardCheckpoint) Encode() []byte {
	version := byte(backwardCheckpointVersion)
	if cp.Hints != nil {
		version = backwardCheckpointVersionHints
	}
	b := []byte{version}
	for _, v := range []int64{int64(cp.NextStep), int64(cp.Tautologies), cp.Propagations} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(cp.Marked)))
	bm := make([]byte, (len(cp.Marked)+7)/8)
	for i, m := range cp.Marked {
		if m {
			bm[i/8] |= 1 << (i % 8)
		}
	}
	b = append(b, bm...)
	if cp.Hints != nil {
		b = append(b, cp.Hints...)
	}
	return b
}

// DecodeBackwardCheckpoint parses an encoded checkpoint payload.
func DecodeBackwardCheckpoint(b []byte) (*BackwardCheckpoint, error) {
	fail := func(what string) (*BackwardCheckpoint, error) {
		return nil, fmt.Errorf("%w: %s", ErrBadCheckpoint, what)
	}
	if len(b) < 1+4*8 {
		return fail("payload too short")
	}
	version := b[0]
	if version != backwardCheckpointVersion && version != backwardCheckpointVersionHints {
		return fail(fmt.Sprintf("payload version %d, want %d or %d",
			version, backwardCheckpointVersion, backwardCheckpointVersionHints))
	}
	b = b[1:]
	cp := &BackwardCheckpoint{
		NextStep:     int(int64(binary.LittleEndian.Uint64(b))),
		Tautologies:  int(binary.LittleEndian.Uint64(b[8:])),
		Propagations: int64(binary.LittleEndian.Uint64(b[16:])),
	}
	nBits := int(binary.LittleEndian.Uint64(b[24:]))
	b = b[32:]
	nBytes := (nBits + 7) / 8
	if nBits < 0 || nBits > 1<<34 || len(b) < nBytes {
		return fail("bitmap length mismatch")
	}
	if version == backwardCheckpointVersion && len(b) != nBytes {
		return fail("bitmap length mismatch")
	}
	cp.Marked = make([]bool, nBits)
	for i := range cp.Marked {
		cp.Marked[i] = b[i/8]&(1<<(i%8)) != 0
	}
	if version == backwardCheckpointVersionHints {
		cp.Hints = append([]byte(nil), b[nBytes:]...)
	}
	return cp, nil
}

// Fingerprint hashes the proof's logical content — step kinds and literals
// in order — with FNV-64a, for binding a checkpoint journal to its inputs.
func (p *Proof) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(int64(len(p.Steps)))
	for _, s := range p.Steps {
		if s.Del {
			put(1)
		} else {
			put(0)
		}
		put(int64(len(s.C)))
		for _, l := range s.C {
			put(int64(l.Dimacs()))
		}
	}
	return h.Sum64()
}

// ctxStop adapts a context into the engines' cooperative stop hook, mapped
// onto core's sentinel errors so callers (and the shared exit-code contract)
// classify a stopped backward pass exactly like a stopped forward one. A nil
// ctx yields a nil hook — the zero-cost path.
func ctxStop(ctx context.Context) func() error {
	if ctx == nil {
		return nil
	}
	return func() error {
		switch err := ctx.Err(); err {
		case nil:
			return nil
		case context.DeadlineExceeded:
			return core.ErrDeadline
		default:
			return core.ErrCancelled
		}
	}
}

// VerifyBackward checks a DRUP proof the way drat-trim does — which is
// exactly the paper's Proof_verification2 generalized to deletion lines:
//
//  1. replay the whole proof forward (activating additions, deactivating
//     deleted clauses) and confirm the final database is refuted by unit
//     propagation alone;
//  2. walk the steps backward: an addition is popped (deactivated) and
//     checked by the RUP test only if a later conflict marked it as used;
//     a deletion is undone (the clause is reactivated);
//  3. every conflict's analysis marks the clauses it used.
//
// Unmarked additions are skipped — the same redundancy argument as the
// paper's §4 — and the marked additions form the trimmed proof, returned
// as a deletion-free DRUP proof in chronological order. The marked
// original clauses form an unsatisfiable core, also as in §4.
//
// Note the backward pass uses only the RUP check; RAT additions (which the
// forward Verify accepts) are rejected here, matching the paper's scope.
func VerifyBackward(f *cnf.Formula, p *Proof) (*Result, *Proof, []int, error) {
	return VerifyBackwardOpts(f, p, BackwardOptions{})
}

// VerifyBackwardOpts is VerifyBackward with checkpoint support.
func VerifyBackwardOpts(f *cnf.Formula, p *Proof, opt BackwardOptions) (*Result, *Proof, []int, error) {
	nVars := f.NumVars
	for _, s := range p.Steps {
		if mv := s.C.MaxVar(); int(mv)+1 > nVars {
			nVars = int(mv) + 1
		}
	}
	res := &Result{OK: true, FailedStep: -1, StoppedAt: -1}
	nf := len(f.Clauses)

	span := opt.Obs.StartSpan("drat-backward")
	defer span.End()
	track := opt.Obs.TraceTrack()
	cChecked := opt.Obs.Counter("drat.checked")
	cTaut := opt.Obs.Counter("drat.tautologies")
	cReact := opt.Obs.Counter("drat.reactivations")
	cCkpt := opt.Obs.Counter("drat.checkpoints")

	scan := span.Child("structural-scan")
	// Structural scan: assign each step its clause ID and validate
	// deletions, without touching an engine. IDs are predictable — the
	// engine hands out sequential IDs, formula clauses first, then each
	// addition in forward order — which is what makes a checkpoint's
	// ID-space bitmap stable across processes.
	store := newClauseStore()
	for i, c := range f.Clauses {
		store.add(bcp.ID(i), c)
	}
	stepID := make([]bcp.ID, len(p.Steps))
	nextID := bcp.ID(nf)
	refutedAt := -1
	for i, s := range p.Steps {
		if s.Del {
			res.Deletions++
			id, ok := store.remove(s.C)
			if !ok {
				res.OK = false
				res.FailedStep = i
				res.Reason = fmt.Sprintf("deletion of a clause that is not live: %v", s.C)
				scan.End()
				track.Instant("drat.reject", int64(i))
				return res, nil, nil, nil
			}
			stepID[i] = id
			continue
		}
		res.Additions++
		if len(s.C) == 0 {
			refutedAt = i
			stepID[i] = -1
			break
		}
		stepID[i] = nextID
		store.add(nextID, s.C)
		nextID++
	}
	lastStep := len(p.Steps) - 1
	if refutedAt >= 0 {
		lastStep = refutedAt
	}
	nIDs := int(nextID)
	scan.End()

	if opt.Resume != nil {
		if opt.Every <= 0 {
			return nil, nil, nil, fmt.Errorf("%w: resume requires a checkpoint interval", ErrBadCheckpoint)
		}
		if rcp := opt.Resume; rcp.NextStep < 0 || rcp.NextStep > lastStep || len(rcp.Marked) != nIDs {
			return nil, nil, nil, fmt.Errorf("%w: next step %d / bitmap %d bits against %d steps / %d ids",
				ErrBadCheckpoint, opt.Resume.NextStep, len(opt.Resume.Marked), lastStep+1, nIDs)
		}
		if opt.Hints != nil {
			// The steps recorded before the boundary exist only inside the
			// checkpoint; without them the emitted LRAT would be incomplete.
			if opt.Resume.Hints == nil {
				return nil, nil, nil, fmt.Errorf("%w: checkpoint carries no hint recorder", ErrBadCheckpoint)
			}
			restored, err := lrat.DecodeRecorder(opt.Resume.Hints)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("%w: hint recorder: %v", ErrBadCheckpoint, err)
			}
			*opt.Hints = *restored
		}
	}

	// buildEngine (re)creates the engine in the canonical state holding the
	// formula and the forward replay of steps [0, upto], folding the
	// previous engine's propagation count into statsProps. The backward
	// loop is about to process step upto, whose own effect is still in
	// place; everything later has been undone.
	// The stop hook is polled by the engine inside propagation and by the
	// backward loop once per step, so both a single pathological RUP check
	// and a long proof stop promptly when the context fires.
	stop := ctxStop(opt.Ctx)

	var eng *bcp.Engine
	var statsProps int64
	buildEngine := func(upto int) {
		if eng != nil {
			statsProps += eng.Propagations()
		}
		eng = bcp.NewEngineReactivable(nVars)
		eng.SetStop(stop)
		eng.SetTrace(track)
		for _, c := range f.Clauses {
			eng.Add(c)
		}
		for j := 0; j <= upto; j++ {
			s := p.Steps[j]
			switch {
			case s.Del:
				eng.Deactivate(stepID[j])
			case len(s.C) == 0:
				// the refutation point; no clause
			default:
				eng.Add(s.C)
			}
		}
	}
	totalProps := func() int64 { return statsProps + eng.Propagations() }

	// Hint recording: ConflictHints re-walks the cone the marking walk just
	// visited, in replay order (see bcp/hints.go), so the hints reference
	// only marked clauses. LRAT IDs are engine IDs shifted to 1-based; the
	// refutation step gets the first ID past every clause the engine knows.
	var hintIDs []bcp.ID
	var hints64 []int64
	record := func(id int64, c cnf.Clause, conflict bcp.ID, refuted cnf.Clause) {
		hintIDs = eng.ConflictHints(conflict, refuted, hintIDs[:0])
		hints64 = hints64[:0]
		for _, h := range hintIDs {
			hints64 = append(hints64, int64(h)+1)
		}
		opt.Hints.Record(id, c, hints64)
	}

	marked := make([]bool, nIDs)
	start := lastStep
	resumedAt := -2 // sentinel: no boundary suppressed
	replay := span.Child("forward-replay")
	if rcp := opt.Resume; rcp != nil {
		start = rcp.NextStep
		resumedAt = start
		copy(marked, rcp.Marked)
		res.Tautologies = rcp.Tautologies
		statsProps = rcp.Propagations
		buildEngine(start)
	} else {
		buildEngine(lastStep)
		// The final database must be refuted by unit propagation alone.
		conflict, _ := eng.Refute(nil)
		if err := eng.StopErr(); err != nil {
			res.Incomplete = true
			res.StoppedAt = lastStep
			res.Propagations = totalProps()
			replay.End()
			return res, nil, nil, err
		}
		if conflict == bcp.NoConflict {
			res.OK = false
			res.FailedStep = lastStep + 1
			res.Reason = "proof ends without deriving a refutation"
			res.Propagations = totalProps()
			replay.End()
			track.Instant("drat.reject", int64(lastStep+1))
			return res, nil, nil, nil
		}
		eng.WalkConflict(conflict, func(id bcp.ID) { marked[id] = true })
		if opt.Hints != nil {
			record(int64(nIDs)+1, nil, conflict, nil)
		}
	}
	replay.End()

	// Backward pass.
	bw := span.Child("backward-pass")
	defer bw.End()
	for i := start; i >= 0; i-- {
		if opt.Every > 0 && i != lastStep && i != resumedAt && (lastStep-i)%opt.Every == 0 {
			buildEngine(i)
			cCkpt.Inc()
			track.Instant("checkpoint.epoch", int64(i))
			if opt.Sink != nil {
				cp := &BackwardCheckpoint{NextStep: i, Marked: marked,
					Tautologies: res.Tautologies, Propagations: statsProps}
				if opt.Hints != nil {
					cp.Hints = opt.Hints.Encode()
				}
				if err := opt.Sink(cp.Encode()); err != nil {
					return nil, nil, nil, fmt.Errorf("drat: checkpoint append: %w", err)
				}
			}
		}
		if stop != nil {
			if err := stop(); err != nil {
				res.Incomplete = true
				res.StoppedAt = i
				res.Propagations = totalProps()
				return res, nil, nil, err
			}
		}
		s := p.Steps[i]
		if s.Del {
			// Walking a deletion backwards re-adds the clause. The engine's
			// persistent root trail handles the flip: Reactivate re-queues
			// root propagation only when the clause can actually extend the
			// current fixpoint (see DESIGN.md §6b), so cheap undos stay cheap.
			if err := eng.Reactivate(stepID[i]); err != nil {
				// Cannot happen — eng came from NewEngineReactivable above —
				// but an internal error beats silently skipping the undo.
				return nil, nil, nil, fmt.Errorf("drat: undoing deletion step %d: %w", i, err)
			}
			cReact.Inc()
			continue
		}
		if len(s.C) == 0 {
			continue // the refutation point itself
		}
		id := stepID[i]
		eng.Deactivate(id)
		if !marked[id] {
			continue
		}
		c, selfContra := eng.Refute(s.C)
		if err := eng.StopErr(); err != nil {
			res.Incomplete = true
			res.StoppedAt = i
			res.Propagations = totalProps()
			return res, nil, nil, err
		}
		if selfContra {
			res.Tautologies++
			cTaut.Inc()
			continue
		}
		cChecked.Inc()
		if c == bcp.NoConflict {
			res.OK = false
			res.FailedStep = i
			res.Reason = fmt.Sprintf("marked clause is not RUP: %v", s.C)
			res.Propagations = totalProps()
			track.Instant("drat.reject", int64(i))
			return res, nil, nil, nil
		}
		eng.WalkConflict(c, func(used bcp.ID) { marked[used] = true })
		if opt.Hints != nil {
			record(int64(id)+1, s.C, c, s.C)
		}
	}
	res.Refuted = true
	res.Propagations = totalProps()

	// Trimmed proof: marked additions in chronological order (no deletion
	// lines — the trimmed set is small enough not to need them), plus the
	// final empty clause so the result is a complete refutation.
	trimmed := &Proof{}
	for i := 0; i <= lastStep; i++ {
		s := p.Steps[i]
		if s.Del || len(s.C) == 0 {
			continue
		}
		if marked[stepID[i]] {
			trimmed.Add(s.C.Clone())
		}
	}
	trimmed.Add(nil)

	// Unsatisfiable core: marked original clauses.
	var core []int
	for i := 0; i < nf; i++ {
		if marked[bcp.ID(i)] {
			core = append(core, i)
		}
	}
	return res, trimmed, core, nil
}
