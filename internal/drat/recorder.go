package drat

import "repro/internal/cnf"

// Recorder accumulates a DRUP proof from a solver's OnLearn/OnDelete
// hooks:
//
//	rec := drat.NewRecorder()
//	opts.OnLearn, opts.OnDelete = rec.Learn, rec.Delete
//	... solve ...
//	res, err := drat.Verify(f, rec.Proof())
type Recorder struct {
	p Proof
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Learn records a clause addition.
func (r *Recorder) Learn(c cnf.Clause) { r.p.Add(c) }

// Delete records a clause deletion.
func (r *Recorder) Delete(c cnf.Clause) { r.p.Delete(c) }

// Proof returns the accumulated proof (shared, not copied).
func (r *Recorder) Proof() *Proof { return &r.p }
