package drat

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/solver"
)

func TestBackwardCheckpointRoundTrip(t *testing.T) {
	cp := &BackwardCheckpoint{
		NextStep:     17,
		Marked:       []bool{true, false, false, true, true},
		Tautologies:  2,
		Propagations: 9001,
	}
	got, err := DecodeBackwardCheckpoint(cp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(cp) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, cp)
	}
	for i, b := range [][]byte{nil, {backwardCheckpointVersion}, {backwardCheckpointVersion + 3, 0, 0}} {
		if _, err := DecodeBackwardCheckpoint(b); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("case %d: err = %v, want ErrBadCheckpoint", i, err)
		}
	}
	if _, err := DecodeBackwardCheckpoint(append(cp.Encode(), 0)); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatal("trailing junk accepted")
	}
}

func TestProofFingerprint(t *testing.T) {
	p := &Proof{}
	p.Add(cl(1, 2))
	p.Delete(cl(1, 2))
	p.Add(nil)
	q := &Proof{}
	q.Add(cl(1, 2))
	q.Add(cl(1, 2)) // same literals, different step kind
	q.Add(nil)
	if p.Fingerprint() == q.Fingerprint() {
		t.Fatal("deletion flag not fingerprinted")
	}
	r := &Proof{}
	r.Add(cl(1, 2))
	r.Delete(cl(1, 2))
	r.Add(nil)
	if p.Fingerprint() != r.Fingerprint() {
		t.Fatal("identical proofs fingerprint differently")
	}
}

// backwardFingerprint flattens everything a resumed run must reproduce:
// verdict, tallies, the trimmed proof bytes, and the core.
func backwardFingerprint(t *testing.T, res *Result, trimmed *Proof, core []int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, trimmed); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("ok=%v refuted=%v failed=%d adds=%d dels=%d taut=%d props=%d core=%v trim=%q",
		res.OK, res.Refuted, res.FailedStep, res.Additions, res.Deletions,
		res.Tautologies, res.Propagations, core, buf.String())
}

// TestBackwardResumeMatchesUninterrupted is the drat golden test: a
// checkpointed backward pass over a solver-recorded proof (with real
// deletion lines) is resumed from every record it wrote, and each resumed
// run must reproduce the verdict, trimmed proof, and core byte-for-byte.
func TestBackwardResumeMatchesUninterrupted(t *testing.T) {
	inst := gen.PHP(6)
	rec := NewRecorder()
	opts := solver.Options{
		MaxLearnedFactor: 0.1,
		RestartInterval:  30,
		OnLearn:          rec.Learn,
		OnDelete:         rec.Delete,
	}
	if st, _, _, _, err := solver.Solve(inst.F, opts); err != nil || st != solver.Unsat {
		t.Fatalf("solve: %v %v", st, err)
	}
	p := rec.Proof()
	if p.Deletions() == 0 {
		t.Fatal("want a proof with deletion lines")
	}

	const every = 16
	var records [][]byte
	res, trimmed, core, err := VerifyBackwardOpts(inst.F, p, BackwardOptions{
		Every: every,
		Sink: func(b []byte) error {
			records = append(records, append([]byte(nil), b...))
			return nil
		},
	})
	if err != nil || !res.OK {
		t.Fatalf("uninterrupted: err=%v res=%+v", err, res)
	}
	if len(records) == 0 {
		t.Fatal("no checkpoint records written")
	}
	want := backwardFingerprint(t, res, trimmed, core)

	// The checkpointed run must agree with the plain run on the verdict.
	plain, _, _, err := VerifyBackward(inst.F, p)
	if err != nil || plain.OK != res.OK {
		t.Fatalf("plain run disagrees: err=%v ok=%v", err, plain.OK)
	}

	for k, rec := range records {
		cp, err := DecodeBackwardCheckpoint(rec)
		if err != nil {
			t.Fatalf("record %d: %v", k, err)
		}
		resC, trimC, coreC, err := VerifyBackwardOpts(inst.F, p, BackwardOptions{Every: every, Resume: cp})
		if err != nil {
			t.Fatalf("resume from record %d: %v", k, err)
		}
		if got := backwardFingerprint(t, resC, trimC, coreC); got != want {
			t.Fatalf("resume from record %d diverged:\n got %s\nwant %s", k, got, want)
		}
	}
}

func TestBackwardResumeRejectsMismatch(t *testing.T) {
	p := &Proof{}
	p.Add(cl(1))
	p.Add(cl(-1))
	p.Add(nil)
	f := chainFormula()
	cp := &BackwardCheckpoint{NextStep: 99, Marked: make([]bool, 3)}
	if _, _, _, err := VerifyBackwardOpts(f, p, BackwardOptions{Every: 2, Resume: cp}); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("err = %v, want ErrBadCheckpoint", err)
	}
	ok := &BackwardCheckpoint{NextStep: 0, Marked: make([]bool, len(f.Clauses)+2)}
	if _, _, _, err := VerifyBackwardOpts(f, p, BackwardOptions{Resume: ok}); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("resume without interval: err = %v, want ErrBadCheckpoint", err)
	}
}

// chainInstance builds an implication chain x1, xi→xi+1, ¬xn whose DRUP
// proof derives every unit in order — long enough to cross many checkpoint
// boundaries without a solver run.
func chainInstance(n int) (*cnf.Formula, *Proof) {
	f := cnf.NewFormula(n).Add(1)
	for i := 1; i < n; i++ {
		f.Add(-i, i+1)
	}
	f.Add(-n)
	p := &Proof{}
	for i := 2; i <= n; i++ {
		p.Add(cl(i))
	}
	p.Add(nil)
	return f, p
}

func TestBackwardCheckpointSinkErrorStops(t *testing.T) {
	f, p := chainInstance(40)
	sinkErr := errors.New("disk full")
	_, _, _, err := VerifyBackwardOpts(f, p, BackwardOptions{
		Every: 4, Sink: func([]byte) error { return sinkErr }})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want wrapped sink error", err)
	}
}
