package drat

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/lrat"
	"repro/internal/solver"
)

// solveDRUP records a real DRUP proof (with deletion lines) for inst.
func solveDRUP(t *testing.T, inst gen.Instance) *Proof {
	t.Helper()
	rec := NewRecorder()
	opts := solver.Options{
		MaxLearnedFactor: 0.1,
		RestartInterval:  30,
		OnLearn:          rec.Learn,
		OnDelete:         rec.Delete,
	}
	st, _, _, _, err := solver.Solve(inst.F, opts)
	if err != nil || st != solver.Unsat {
		t.Fatalf("%s: solve: %v %v", inst.Name, st, err)
	}
	return rec.Proof()
}

func TestBackwardEmitsCheckableLRAT(t *testing.T) {
	for _, inst := range []gen.Instance{gen.PHP(5), gen.RandUnsat(7, 16)} {
		p := solveDRUP(t, inst)
		var rec lrat.Recorder
		res, trimmed, _, err := VerifyBackwardOpts(inst.F, p, BackwardOptions{Hints: &rec})
		if err != nil || !res.OK {
			t.Fatalf("%s: err=%v res=%+v", inst.Name, err, res)
		}
		lp, err := rec.Proof()
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		// One hinted step per trimmed addition plus the refutation — the
		// trimmed proof's final nil entry plays the same role, so the counts
		// match exactly.
		if lp.Additions() != trimmed.Len() {
			t.Errorf("%s: %d hinted steps for %d trimmed steps", inst.Name, lp.Additions(), trimmed.Len())
		}
		for _, workers := range []int{1, 4} {
			cres, err := lrat.Check(inst.F, lp, lrat.Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s: %v", inst.Name, err)
			}
			if !cres.OK {
				t.Errorf("%s workers=%d: emitted LRAT rejected at step %d: %s",
					inst.Name, workers, cres.FailedStep, cres.Reason)
			}
		}
	}
}

// lratBytes renders a recorder's proof in the text format.
func lratBytes(t *testing.T, rec *lrat.Recorder) []byte {
	t.Helper()
	lp, err := rec.Proof()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lrat.Write(&buf, lp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBackwardResumeEmitsIdenticalLRAT(t *testing.T) {
	inst := gen.PHP(6)
	p := solveDRUP(t, inst)
	if p.Deletions() == 0 {
		t.Fatal("want a proof with deletion lines")
	}

	const every = 16
	var records [][]byte
	var rec lrat.Recorder
	res, _, _, err := VerifyBackwardOpts(inst.F, p, BackwardOptions{
		Every: every,
		Hints: &rec,
		Sink: func(b []byte) error {
			records = append(records, append([]byte(nil), b...))
			return nil
		},
	})
	if err != nil || !res.OK {
		t.Fatalf("uninterrupted: err=%v res=%+v", err, res)
	}
	if len(records) == 0 {
		t.Fatal("no checkpoint records written")
	}
	want := lratBytes(t, &rec)

	cres, err := lrat.Check(inst.F, mustRead(t, want), lrat.Options{})
	if err != nil || !cres.OK {
		t.Fatalf("emitted LRAT rejected: err=%v res=%+v", err, cres)
	}

	for k, r := range records {
		cp, err := DecodeBackwardCheckpoint(r)
		if err != nil {
			t.Fatalf("record %d: %v", k, err)
		}
		var recC lrat.Recorder
		resC, _, _, err := VerifyBackwardOpts(inst.F, p, BackwardOptions{
			Every: every, Resume: cp, Hints: &recC,
		})
		if err != nil || !resC.OK {
			t.Fatalf("resume from record %d: err=%v res=%+v", k, err, resC)
		}
		if got := lratBytes(t, &recC); !bytes.Equal(got, want) {
			t.Fatalf("resume from record %d emitted different LRAT (%d vs %d bytes)", k, len(got), len(want))
		}
	}
}

func mustRead(t *testing.T, b []byte) *lrat.Proof {
	t.Helper()
	lp, err := lrat.Read(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return lp
}

func TestBackwardResumeWithoutRecordedHints(t *testing.T) {
	inst := gen.PHP(4)
	p := solveDRUP(t, inst)

	const every = 8
	var records [][]byte
	res, _, _, err := VerifyBackwardOpts(inst.F, p, BackwardOptions{
		Every: every,
		Sink: func(b []byte) error {
			records = append(records, append([]byte(nil), b...))
			return nil
		},
	})
	if err != nil || !res.OK || len(records) == 0 {
		t.Fatalf("err=%v res=%+v records=%d", err, res, len(records))
	}
	cp, err := DecodeBackwardCheckpoint(records[0])
	if err != nil {
		t.Fatal(err)
	}
	var rec lrat.Recorder
	_, _, _, err = VerifyBackwardOpts(inst.F, p, BackwardOptions{
		Every: every, Resume: cp, Hints: &rec,
	})
	if !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("err=%v, want ErrBadCheckpoint", err)
	}
}
