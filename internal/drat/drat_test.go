package drat

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/proof"
	"repro/internal/solver"
)

func cl(dimacs ...int) cnf.Clause {
	c := make(cnf.Clause, 0, len(dimacs))
	for _, d := range dimacs {
		c = append(c, cnf.FromDimacs(d))
	}
	return c
}

func chainFormula() *cnf.Formula {
	return cnf.NewFormula(0).
		Add(1, 2).Add(1, -2).Add(-1, 3).Add(-1, -3)
}

func TestVerifyHandProof(t *testing.T) {
	p := &Proof{}
	p.Add(cl(1))
	p.Add(cl(-1))
	p.Add(nil) // empty clause
	res, err := Verify(chainFormula(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || !res.Refuted {
		t.Fatalf("res = %+v", res)
	}
}

func TestVerifyFinalPairTermination(t *testing.T) {
	p := &Proof{}
	p.Add(cl(1))
	p.Add(cl(-1))
	res, err := Verify(chainFormula(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || !res.Refuted {
		t.Fatalf("final pair not accepted: %+v", res)
	}
}

func TestVerifyWithDeletions(t *testing.T) {
	// Learn (1), delete an original clause no longer needed, learn (-1).
	p := &Proof{}
	p.Add(cl(1))
	p.Delete(cl(1, 2)) // (1) subsumes it
	p.Delete(cl(1, -2))
	p.Add(cl(-1))
	p.Add(nil)
	res, err := Verify(chainFormula(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Deletions != 2 {
		t.Fatalf("res = %+v", res)
	}
}

func TestVerifyRejectsNonRUP(t *testing.T) {
	// (x9) must not slip through: with (¬x9 x5) in the formula the clause
	// is not blocked (pivot resolvent (x5) is not RUP), and it is not RUP
	// itself (falsifying x9 propagates nothing relevant).
	f := chainFormula()
	f.Add(-9, 5)
	p := &Proof{}
	p.Add(cl(9))
	p.Add(nil)
	res, err := Verify(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.FailedStep != 0 {
		t.Fatalf("res = %+v", res)
	}
	if !strings.Contains(res.Reason, "RAT") {
		t.Errorf("reason = %q", res.Reason)
	}
}

func TestVerifyRejectsDeletingTooMuch(t *testing.T) {
	// Deleting a clause the refutation still needs must make a later
	// addition fail.
	p := &Proof{}
	p.Delete(cl(1, 2))
	p.Add(cl(1)) // no longer RUP without (1 2)
	res, err := Verify(chainFormula(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.FailedStep != 1 {
		t.Fatalf("res = %+v", res)
	}
	if !strings.Contains(res.Reason, "RUP") {
		t.Errorf("reason = %q", res.Reason)
	}
}

func TestVerifyRejectsDeletingDeadClause(t *testing.T) {
	p := &Proof{}
	p.Delete(cl(7, 8))
	res, err := Verify(chainFormula(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.FailedStep != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestVerifyRejectsNoRefutation(t *testing.T) {
	// Adding a non-unit RUP clause creates no unit propagation, so the
	// database is not refuted and the proof is incomplete. (A unit would
	// not do here: the chain formula is so tight that any unit completes
	// the refutation by propagation alone.)
	p := &Proof{}
	p.Add(cl(1, 2))
	res, err := Verify(chainFormula(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatalf("res = %+v", res)
	}
	if res.FailedStep != p.Len() {
		t.Errorf("FailedStep = %d", res.FailedStep)
	}
}

func TestVerifyAcceptsRATClause(t *testing.T) {
	// Blocked clause: (x4 x5) with pivot x4; no live clause contains ¬x4,
	// so RAT holds vacuously although RUP fails (x5 is a slack variable so
	// the tight chain formula cannot rescue it via propagation). The rest
	// of the proof refutes the chain formula as usual.
	f := chainFormula()
	f.Add(5, 6)
	p := &Proof{}
	p.Add(cl(4, 5))
	p.Add(cl(1))
	p.Add(cl(-1))
	p.Add(nil)
	res, err := Verify(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("RAT clause rejected: %+v", res)
	}
	if res.RATChecks != 1 {
		t.Errorf("RATChecks = %d, want 1", res.RATChecks)
	}
}

func TestVerifyRATWithResolvents(t *testing.T) {
	// Extended-resolution style definition: y <-> x5 AND x6 introduced as
	// clauses with fresh pivot y (var 9), over slack variables x5, x6 that
	// the refutation itself never touches (the chain formula is so tight
	// that clauses over ITS variables would be plain RUP and never
	// exercise the RAT fallback).
	f := chainFormula()
	f.Add(5, 6) // slack clause so x5/x6 exist
	p := &Proof{}
	p.Add(cl(9, -5, -6)) // y ∨ ¬x5 ∨ ¬x6 (pivot 9: nothing contains ¬9 yet)
	p.Add(cl(-9, 5))     // ¬y ∨ x5: pivot ¬9; resolvent = (5 ¬5 ¬6) tautology
	p.Add(cl(-9, 6))     // ¬y ∨ x6: resolvent = (6 ¬5 ¬6) tautology
	p.Add(cl(1))
	p.Add(cl(-1))
	p.Add(nil)
	res, err := Verify(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("extended-resolution steps rejected at %d: %s", res.FailedStep, res.Reason)
	}
	if res.RATChecks == 0 {
		t.Error("no RAT fallback used")
	}
}

func TestVerifyRATFailure(t *testing.T) {
	// (x9 v x1) followed by (¬x9): the second clause has pivot ¬x9 and a
	// live clause containing x9 whose resolvent (x1) is not RUP... actually
	// (x1) IS RUP on the chain formula. Use a looser base formula.
	f := cnf.NewFormula(0).Add(1, 2)
	p := &Proof{}
	p.Add(cl(9, 1)) // RAT (blocked)
	p.Add(cl(-9))   // pivot ¬9; resolvent with (9 1) = (1), not RUP under (1 2) only
	res, err := Verify(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("non-RAT clause accepted")
	}
	if res.FailedStep != 1 {
		t.Errorf("FailedStep = %d", res.FailedStep)
	}
}

func TestIORoundTrip(t *testing.T) {
	p := &Proof{}
	p.Add(cl(1, -2, 3))
	p.Delete(cl(4, 5))
	p.Add(nil)
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "d 4 5 0") {
		t.Errorf("deletion line missing:\n%s", buf.String())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || !got.Steps[1].Del || !got.Steps[1].C.Equal(cl(4, 5)) {
		t.Fatalf("round trip: %+v", got.Steps)
	}
	if got.Additions() != 2 || got.Deletions() != 1 {
		t.Errorf("counts: %d/%d", got.Additions(), got.Deletions())
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{"1 2\n", "d x 0\n"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded", in)
		}
	}
}

func TestFromTrace(t *testing.T) {
	tr := proof.New()
	tr.Append(cl(1), 0)
	tr.Append(cl(-1), 0)
	p := FromTrace(tr)
	if p.Len() != 2 || p.Deletions() != 0 {
		t.Fatalf("p = %+v", p)
	}
	res, err := Verify(chainFormula(), p)
	if err != nil || !res.OK {
		t.Fatalf("lifted trace rejected: %v %+v", err, res)
	}
}

// TestSolverRecorderEndToEnd is the keystone: a solver run with aggressive
// clause deletion, recorded through the hooks, must produce a DRUP proof
// with deletions that the checker accepts.
func TestSolverRecorderEndToEnd(t *testing.T) {
	inst := gen.PHP(6)
	rec := NewRecorder()
	opts := solver.Options{
		MaxLearnedFactor: 0.05, // force deletions
		RestartInterval:  20,
		OnLearn:          rec.Learn,
		OnDelete:         rec.Delete,
	}
	st, _, _, stats, err := solver.Solve(inst.F, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st != solver.Unsat {
		t.Fatalf("status %v", st)
	}
	if stats.Deleted == 0 {
		t.Fatal("no deletions recorded — test is vacuous")
	}
	p := rec.Proof()
	if p.Deletions() != int(stats.Deleted) {
		t.Errorf("recorded %d deletions, stats say %d", p.Deletions(), stats.Deleted)
	}
	res, err := Verify(inst.F, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("DRUP proof rejected at step %d: %s", res.FailedStep, res.Reason)
	}
	if !res.Refuted {
		t.Error("no refutation established")
	}
}

func TestSolverRecorderAcrossFamilies(t *testing.T) {
	for _, inst := range []gen.Instance{gen.AdderEquiv(8), gen.XorChain(9), gen.Fifo(4, 6)} {
		rec := NewRecorder()
		opts := solver.Options{
			MaxLearnedFactor: 0.1,
			OnLearn:          rec.Learn,
			OnDelete:         rec.Delete,
		}
		st, _, _, _, err := solver.Solve(inst.F, opts)
		if err != nil || st != solver.Unsat {
			t.Fatalf("%s: %v %v", inst.Name, st, err)
		}
		res, err := Verify(inst.F, rec.Proof())
		if err != nil || !res.OK {
			t.Fatalf("%s: DRUP rejected: %v %+v", inst.Name, err, res)
		}
	}
}
