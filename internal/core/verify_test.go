package core

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/proof"
)

func cl(dimacs ...int) cnf.Clause {
	c := make(cnf.Clause, 0, len(dimacs))
	for _, d := range dimacs {
		c = append(c, cnf.FromDimacs(d))
	}
	return c
}

// chainFormula is a tiny UNSAT formula with a hand-derivable proof:
//
//	F: (x1 x2) (x1 -x2) (-x1 x3) (-x1 -x3)
//
// Proof: (x1) — falsifying it propagates x2 via (x1 x2) and -x2 via (x1 -x2):
// conflict. Then (-x1) — falsifying it propagates x3 and -x3: conflict.
// (x1),(-x1) is the final conflicting pair.
func chainFormula() (*cnf.Formula, *proof.Trace) {
	f := cnf.NewFormula(0).
		Add(1, 2).Add(1, -2).
		Add(-1, 3).Add(-1, -3)
	t := proof.New()
	t.Append(cl(1), 1)
	t.Append(cl(-1), 1)
	return f, t
}

func allModes() []Options {
	return []Options{
		{Mode: ModeCheckMarked, Engine: EngineWatched},
		{Mode: ModeCheckMarked, Engine: EngineCounting},
		{Mode: ModeCheckAll, Engine: EngineWatched},
		{Mode: ModeCheckAll, Engine: EngineCounting},
	}
}

func TestVerifyChainProof(t *testing.T) {
	for _, opt := range allModes() {
		f, tr := chainFormula()
		res, err := Verify(f, tr, opt)
		if err != nil {
			t.Fatalf("%v/%v: %v", opt.Mode, opt.Engine, err)
		}
		if !res.OK {
			t.Fatalf("%v/%v: valid proof rejected at clause %d", opt.Mode, opt.Engine, res.FailedIndex)
		}
		if res.Termination != proof.TermFinalPair {
			t.Errorf("Termination = %v", res.Termination)
		}
		if res.Tested != 2 {
			t.Errorf("%v/%v: Tested = %d, want 2", opt.Mode, opt.Engine, res.Tested)
		}
		if len(res.Core) != 4 {
			t.Errorf("%v/%v: core = %v, want all 4 clauses", opt.Mode, opt.Engine, res.Core)
		}
	}
}

func TestVerifyRejectsBogusClause(t *testing.T) {
	for _, opt := range allModes() {
		f, tr := chainFormula()
		// Insert a clause over a fresh variable: falsifying it propagates
		// nothing, so it is not RUP and check-all must reject it. (Note a
		// clause over F's own variables would pass: F is unsatisfiable and
		// so tight that BCP finds a conflict from any seed assignment.)
		bogus := proof.New()
		bogus.Append(cl(9), 0)
		bogus.Append(tr.Clauses[0], 0)
		bogus.Append(tr.Clauses[1], 0)
		res, err := Verify(f, bogus, opt)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Mode == ModeCheckAll {
			if res.OK || res.FailedIndex != 0 {
				t.Errorf("%v/%v: OK=%v FailedIndex=%d, want failure at 0", opt.Mode, opt.Engine, res.OK, res.FailedIndex)
			}
		} else if !res.OK {
			// In marked mode the bogus clause is unused and legitimately
			// skipped — the proof of unsatisfiability itself is still valid.
			t.Errorf("%v/%v: marked mode rejected a proof whose used part is valid", opt.Mode, opt.Engine)
		}
	}
}

func TestVerifyRejectsBrokenDerivation(t *testing.T) {
	// F is SATISFIABLE, so no conflict-clause proof of unsatisfiability can
	// be valid; a fake final pair must be rejected in every mode.
	f := cnf.NewFormula(0).Add(1, 2).Add(-2, 3)
	tr := proof.New()
	tr.Append(cl(-1), 0)
	tr.Append(cl(1), 0)
	for _, opt := range allModes() {
		res, err := Verify(f, tr, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.OK {
			t.Errorf("%v/%v: accepted a fake proof for a satisfiable formula", opt.Mode, opt.Engine)
		}
	}
}

func TestVerifyFailureIdentifiesClause(t *testing.T) {
	f := cnf.NewFormula(0).Add(1).Add(-1, 2)
	tr := proof.New()
	tr.Append(cl(-3), 0) // nothing implies x3 either way
	tr.Append(cl(3), 0)
	res, err := Verify(f, tr, Options{Mode: ModeCheckMarked})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("accepted a fake final pair")
	}
	if res.FailedIndex != 1 && res.FailedIndex != 0 {
		t.Errorf("FailedIndex = %d", res.FailedIndex)
	}
	if len(res.FailedClause) != 1 {
		t.Errorf("FailedClause = %v", res.FailedClause)
	}
}

func TestVerifyBadTermination(t *testing.T) {
	f := cnf.NewFormula(0).Add(1)
	tr := proof.New()
	tr.Append(cl(1, 2), 0)
	if _, err := Verify(f, tr, Options{}); err == nil {
		t.Error("trace without refutation accepted")
	}
}

func TestVerifyEmptyClauseTermination(t *testing.T) {
	// RUP-style: conflicting units then explicit empty clause.
	f := cnf.NewFormula(0).
		Add(1, 2).Add(1, -2).
		Add(-1, 3).Add(-1, -3)
	tr := proof.New()
	tr.Append(cl(1), 0)
	tr.Append(cl(-1), 0)
	tr.Append(cnf.Clause{}, 0)
	for _, opt := range allModes() {
		res, err := Verify(f, tr, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("%v/%v: rejected at %d", opt.Mode, opt.Engine, res.FailedIndex)
		}
		if res.Termination != proof.TermEmptyClause {
			t.Errorf("Termination = %v", res.Termination)
		}
	}
}

func TestVerifySkipsRedundantClauses(t *testing.T) {
	f, tr := chainFormula()
	// Pad the proof with implied-but-useless clauses: (x1 x3) is implied by
	// (x1 x2),(x1 -x2)... it is implied by F (F is unsat, everything is),
	// and also RUP. It is never used by the final pair's checks? (x1) check
	// falsifies x1 and uses (x1 x2),(x1 -x2) only.
	padded := proof.New()
	padded.Append(cl(1, 3), 0)
	padded.Append(cl(1, -3), 0)
	padded.Append(tr.Clauses[0], 0)
	padded.Append(tr.Clauses[1], 0)
	res, err := Verify(f, padded, Options{Mode: ModeCheckMarked})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("rejected at %d", res.FailedIndex)
	}
	if res.Skipped == 0 {
		t.Error("expected redundant clauses to be skipped")
	}
	if res.Tested >= padded.Len() {
		t.Errorf("Tested = %d, want < %d", res.Tested, padded.Len())
	}

	// Verification1 tests everything.
	resAll, err := Verify(f, padded, Options{Mode: ModeCheckAll})
	if err != nil {
		t.Fatal(err)
	}
	if !resAll.OK || resAll.Tested != padded.Len() {
		t.Errorf("check-all: OK=%v Tested=%d, want true/%d", resAll.OK, resAll.Tested, padded.Len())
	}
}

func TestVerifyCoreIsSubsetAndUnsat(t *testing.T) {
	// F with junk clauses that cannot participate: extra satisfiable
	// clauses over fresh variables.
	f := cnf.NewFormula(0).
		Add(1, 2).Add(1, -2).
		Add(-1, 3).Add(-1, -3).
		Add(7, 8).Add(-7, 9) // junk
	tr := proof.New()
	tr.Append(cl(1), 0)
	tr.Append(cl(-1), 0)
	res, err := Verify(f, tr, Options{Mode: ModeCheckMarked})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("rejected at %d", res.FailedIndex)
	}
	if len(res.Core) != 4 {
		t.Fatalf("core = %v, want the 4 real clauses", res.Core)
	}
	for _, i := range res.Core {
		if i >= 4 {
			t.Errorf("junk clause %d in core", i)
		}
	}
	// The core formula plus the same proof must itself verify.
	coreF := CoreFormula(f, res)
	res2, err := Verify(coreF, tr, Options{Mode: ModeCheckMarked})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.OK {
		t.Error("core formula does not verify with the same proof")
	}
}

func TestVerifyTautologyInProof(t *testing.T) {
	f, tr := chainFormula()
	padded := proof.New()
	padded.Append(cl(5, -5), 0) // tautology: trivially implied
	padded.Append(tr.Clauses[0], 0)
	padded.Append(tr.Clauses[1], 0)
	res, err := Verify(f, padded, Options{Mode: ModeCheckAll})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("rejected at %d", res.FailedIndex)
	}
	if res.Tautologies != 1 {
		t.Errorf("Tautologies = %d, want 1", res.Tautologies)
	}
}

func TestVerifyFormulaWithEmptyClause(t *testing.T) {
	// Degenerate: F contains the empty clause; any structurally valid trace
	// verifies and the core is just that clause.
	f := cnf.NewFormula(1)
	f.AddClause(cnf.Clause{})
	f.Add(1)
	tr := proof.New()
	tr.Append(cnf.Clause{}, 0)
	res, err := Verify(f, tr, Options{Mode: ModeCheckMarked})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal("rejected")
	}
	if len(res.Core) != 1 || res.Core[0] != 0 {
		t.Errorf("core = %v, want [0]", res.Core)
	}
}

func TestVerifyProofUsesVarsBeyondFormula(t *testing.T) {
	// Liberal var handling: proof clauses may mention variables the header
	// did not declare (some preprocessors do this); nothing should panic.
	f := cnf.NewFormula(0).Add(1, 2).Add(1, -2).Add(-1, 3).Add(-1, -3)
	tr := proof.New()
	tr.Append(cl(1, 99), 0)
	tr.Append(cl(1), 0)
	tr.Append(cl(-1), 0)
	res, err := Verify(f, tr, Options{Mode: ModeCheckAll})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("rejected at %d", res.FailedIndex)
	}
}

func TestVerifyFormulaUnsatWrapper(t *testing.T) {
	f, tr := chainFormula()
	if _, err := VerifyFormulaUnsat(f, tr, Options{}); err != nil {
		t.Errorf("valid proof: %v", err)
	}
	// A conflicting pair over a fresh variable is not derivable: falsifying
	// (9) propagates nothing (x9 occurs nowhere in F).
	bad := proof.New()
	bad.Append(cl(-9), 0)
	bad.Append(cl(9), 0)
	if _, err := VerifyFormulaUnsat(f, bad, Options{}); err == nil {
		t.Error("invalid proof accepted")
	}
}

func TestTrim(t *testing.T) {
	f, tr := chainFormula()
	padded := proof.New()
	padded.Append(cl(1, 3), 2)
	padded.Append(tr.Clauses[0], 1)
	padded.Append(tr.Clauses[1], 1)
	res, err := Verify(f, padded, Options{Mode: ModeCheckMarked})
	if err != nil {
		t.Fatal(err)
	}
	trimmed, err := Trim(padded, res)
	if err != nil {
		t.Fatal(err)
	}
	if trimmed.Len() >= padded.Len() {
		t.Errorf("trim did not remove the redundant clause: %d vs %d", trimmed.Len(), padded.Len())
	}
	// The trimmed proof must still verify.
	res2, err := Verify(f, trimmed, Options{Mode: ModeCheckAll})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.OK {
		t.Errorf("trimmed proof rejected at %d", res2.FailedIndex)
	}
	if trimmed.Resolutions == nil || len(trimmed.Resolutions) != trimmed.Len() {
		t.Errorf("trim lost resolution annotations: %v", trimmed.Resolutions)
	}
}

func TestTrimRequiresUsage(t *testing.T) {
	_, tr := chainFormula()
	if _, err := Trim(tr, &Result{}); err == nil {
		t.Error("Trim accepted a result without usage info")
	}
	if _, err := Trim(tr, &Result{UsedProof: []bool{true}}); err == nil {
		t.Error("Trim accepted a mismatched result")
	}
}

func TestResultPercentages(t *testing.T) {
	r := &Result{ProofClauses: 200, Tested: 50, Core: make([]int, 25)}
	if got := r.TestedPct(); got != 25 {
		t.Errorf("TestedPct = %v", got)
	}
	if got := r.CorePct(100); got != 25 {
		t.Errorf("CorePct = %v", got)
	}
	empty := &Result{}
	if empty.TestedPct() != 0 || empty.CorePct(0) != 0 {
		t.Error("zero-division guards failed")
	}
}
