package core

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/cnf"
	"repro/internal/lrat"
	"repro/internal/proof"
	"repro/internal/sched"
)

// DAG-scheduled parallel verification (opt.Sched == sched.StrategyDAG): the
// emit-then-schedule pipeline.
//
// The fixed-chunk parallel mode buys wall-clock with brute force — every
// worker builds its own clause database and every clause of the trace is
// checked, marked or not. The DAG mode splits the run into two phases
// instead:
//
//  1. Emit. The sequential checker runs once with an LRAT hint recorder
//     attached. It honors opt.Mode — under ModeCheckMarked the recorded
//     steps ARE the marking walk, so the schedule below is seeded from the
//     marked set, not the whole trace — and produces the verdict, the core
//     and the trimmed-proof marking exactly as a plain sequential run would.
//  2. Schedule. The recorded steps form the clause-dependency DAG (an edge
//     from each addition to every later step that cites it). The
//     work-stealing scheduler revalidates every step by propagation-free
//     hinted replay on per-worker scratchpads. Replay cost is linear in the
//     hint list — no clause database per worker, no BCP.
//
// A phase-2 failure is not a verdict: phase 1 proved the proof correct and
// emitted the very hints being replayed, so a failed replay means memory
// corruption or a defect, and surfaces as an error (like a worker panic),
// never as Result.OK == false.
//
// Crash recovery spans both phases with one journal. Phase 1 appends the
// sequential hinted records (checkpoint version 2); phase 2 appends DAG
// records (version 3) carrying the finished phase-1 outcome plus the
// scheduler's drained-task watermark. Resume inspects the payload: a phase-1
// record restarts the sequential emit, a phase-2 record reconstructs the
// Result and recorder from the payload and reschedules from the watermark.
// Because every phase-2 record carries the complete phase-1 outcome, the
// final Result — and hence every output artifact — is byte-identical no
// matter where the crash landed.

// dagTaskHook, when non-nil, runs at the start of every DAG task attempt
// (worker id, step index, 0-based attempt). Test-only: panic-isolation tests
// use it to blow up inside a stolen task and check the attribution.
var dagTaskHook func(worker, task, attempt int)

// ResolveWorkersDAG maps a requested worker count to the effective one for
// a DAG-scheduled run: non-positive selects GOMAXPROCS, and the count is
// clamped to the DAG's maximum antilevel width — more workers than the
// widest level can never run simultaneously. Unlike ResolveWorkers, the
// result shapes no durable state: DAG journals resume under any count.
func ResolveWorkersDAG(width, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if width < 1 {
		width = 1
	}
	if workers > width {
		workers = width
	}
	return workers
}

// resultFromDAGCheckpoint reconstructs the finished phase-1 Result a
// version-3 record carries, re-seeding the obs counters the way sequential
// resume does so a resumed run's snapshot matches an uninterrupted one.
func resultFromDAGCheckpoint(cp *Checkpoint, term proof.Termination, nf, m int, opt *Options) *Result {
	res := &Result{
		OK: true, FailedIndex: -1, StoppedAt: -1, Termination: term,
		ProofClauses: m, Tested: cp.Tested, Skipped: cp.Skipped,
		Tautologies: cp.Tautologies, Propagations: cp.Stats.Propagations,
		EngineStats: cp.Stats,
	}
	for i := 0; i < nf; i++ {
		if cp.Marked[i] {
			res.Core = append(res.Core, i)
		}
	}
	res.UsedProof = make([]bool, m)
	for i := 0; i < m; i++ {
		if cp.Marked[nf+i] {
			res.UsedProof[i] = true
			res.MarkedProof++
		}
	}
	opt.Obs.Counter("verify.checked").Add(int64(cp.Tested))
	opt.Obs.Counter("verify.skipped").Add(int64(cp.Skipped))
	opt.Obs.Counter("verify.tautologies").Add(int64(cp.Tautologies))
	orig, prf := markedCounts(cp.Marked, nf)
	opt.Obs.Counter("verify.marked_orig").Add(orig)
	opt.Obs.Counter("verify.marked").Add(prf)
	publishStats(opt.Obs, cp.Stats)
	opt.Progress.Step(int64(m))
	return res
}

func verifyDAG(f *cnf.Formula, t *proof.Trace, opt Options, workers int) (*Result, error) {
	term := t.Terminates()
	nf := len(f.Clauses)
	m := len(t.Clauses)
	ck := opt.Checkpoint

	var rcp *Checkpoint // non-nil: resuming phase 2
	if ck.Resume != nil {
		if !ck.enabled() {
			return nil, fmt.Errorf("%w: resume requires a checkpoint interval", ErrBadCheckpoint)
		}
		if ck.Resume.DAG {
			rcp = ck.Resume
			if err := rcp.ValidateForDAG(nf, m); err != nil {
				return nil, err
			}
		}
		// A non-DAG resume record is a phase-1 crash; Verify validates and
		// restarts the sequential emit from it below.
	}

	rec := opt.Hints
	if rec == nil {
		rec = new(lrat.Recorder)
	}

	span := opt.Obs.StartSpan("verify-dag")
	defer span.End()

	var res *Result
	if rcp == nil {
		seq := opt
		seq.Hints = rec
		seq.Sched = sched.StrategyChunk
		var err error
		res, err = Verify(f, t, seq)
		if err != nil || !res.OK {
			return res, err
		}
	} else {
		restored, err := lrat.DecodeRecorder(rcp.Hints)
		if err != nil {
			return nil, fmt.Errorf("%w: hint recorder: %v", ErrBadCheckpoint, err)
		}
		*rec = *restored
		res = resultFromDAGCheckpoint(rcp, term, nf, m, &opt)
	}

	// Phase 2: revalidate the recording over the hint DAG. A structural or
	// replay failure here contradicts phase 1 and is an internal error.
	lp, err := rec.Proof()
	if err != nil {
		return res, fmt.Errorf("core: recorded hint proof: %w", err)
	}
	rep, err := lrat.NewReplayer(f, lp)
	if err != nil {
		return res, fmt.Errorf("core: recorded hint proof: %w", err)
	}
	start := 0
	if rcp != nil {
		start = rcp.Watermark
		if start > rep.Steps() {
			return res, fmt.Errorf("%w: watermark %d beyond %d recorded steps", ErrBadCheckpoint, start, rep.Steps())
		}
	}
	d := rep.DAG()
	st := d.Stats()
	workers = ResolveWorkersDAG(st.MaxWidth, workers)
	opt.Obs.Gauge("verify.workers").Set(int64(workers))
	opt.Obs.Gauge("sched.dag.depth").Set(int64(st.Depth))
	opt.Obs.Gauge("sched.dag.width").Set(int64(st.MaxWidth))
	opt.Obs.Gauge("sched.dag.crit_cost").Set(st.CritCost)

	var onEpoch func(int) error
	every := 0
	if ck.enabled() {
		every = ck.Every
		if ck.Sink != nil {
			// Everything but the watermark is a phase-1 constant, computed
			// once: marked bitmap, counters, engine statistics and the
			// recorder blob. Phase 2 replays hints without BCP, so no field
			// here ever changes between epochs.
			marked := make([]bool, nf+m)
			for _, i := range res.Core {
				marked[i] = true
			}
			for i, used := range res.UsedProof {
				if used {
					marked[nf+i] = true
				}
			}
			base := &Checkpoint{
				DAG: true, Marked: marked,
				Tested: res.Tested, Skipped: res.Skipped, Tautologies: res.Tautologies,
				Stats: res.EngineStats,
				Hints: rec.Encode(),
			}
			sink := ck.Sink
			onEpoch = func(wm int) error {
				cp := *base
				cp.Watermark = wm
				return sink(cp.Encode())
			}
		}
	}

	rws := make([]*lrat.ReplayWorker, workers)
	fn := func(w, k, attempt int) error {
		if dagTaskHook != nil {
			dagTaskHook(w, k, attempt)
		}
		rw := rws[w]
		if rw == nil || attempt > 0 {
			// A panicked attempt may have left the scratchpad inconsistent;
			// the retry rebuilds it — the DAG-mode analogue of the chunk
			// mode's fallback-engine retry.
			rw = rep.NewWorker()
			rws[w] = rw
		}
		if _, why := rw.Step(k); why != "" {
			return fmt.Errorf("core: recorded step %d failed revalidation: %s", k, why)
		}
		return nil
	}
	_, err = sched.Run(d, sched.Options{
		Workers: workers, Ctx: opt.Ctx, Obs: opt.Obs, TrackPrefix: "verify-dag",
		Every: every, OnEpoch: onEpoch, StartWatermark: start,
	}, fn)
	if err != nil {
		var tp *sched.TaskPanicError
		if errors.As(err, &tp) {
			opt.Obs.Counter("verify.worker_panics").Add(int64(tp.Attempts))
			err = &WorkerPanicError{Worker: tp.Worker, Lo: tp.Task, Hi: tp.Task + 1,
				Attempts: tp.Attempts, Value: tp.Value, Stack: tp.Stack}
		}
		res.Incomplete = true
		countStopErr(opt.Obs, err)
		return res, err
	}
	return res, nil
}
