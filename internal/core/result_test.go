package core

import (
	"math"
	"testing"
)

// TestPctZeroDivision: the percentage helpers must return 0 — not NaN or
// Inf — when their denominators are zero.
func TestPctZeroDivision(t *testing.T) {
	r := &Result{}
	if got := r.TestedPct(); got != 0 {
		t.Errorf("TestedPct on empty result = %v, want 0", got)
	}
	if got := r.CorePct(0); got != 0 {
		t.Errorf("CorePct(0) = %v, want 0", got)
	}
	r = &Result{Tested: 5, Core: []int{1, 2, 3}}
	if got := r.TestedPct(); got != 0 || math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("TestedPct with 0 proof clauses = %v, want 0", got)
	}
	if got := r.CorePct(0); got != 0 || math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("CorePct(0) with nonempty core = %v, want 0", got)
	}
}

// TestPctValues: sanity-check the nonzero paths the paper's Table 1 uses.
func TestPctValues(t *testing.T) {
	r := &Result{ProofClauses: 200, Tested: 50, Core: []int{0, 1, 2}}
	if got := r.TestedPct(); got != 25 {
		t.Errorf("TestedPct = %v, want 25", got)
	}
	if got := r.CorePct(12); got != 25 {
		t.Errorf("CorePct(12) = %v, want 25", got)
	}
}

// TestModeString / TestEngineKindString: the CLI and -json output rely on
// these names; out-of-range values must still render the default.
func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModeCheckMarked: "check-marked",
		ModeCheckAll:    "check-all",
		Mode(99):        "check-marked",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestEngineKindString(t *testing.T) {
	cases := map[EngineKind]string{
		EngineWatched:  "watched",
		EngineCounting: "counting",
		EngineKind(99): "watched",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("EngineKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
