package core

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/proof"
)

// Trim returns the trace restricted to the clauses a verification run
// marked as used (plus the terminating clauses, which are always marked).
// The trimmed trace preserves chronological order and remains a correct
// proof: when clause C was checked, every clause its conflict depended on
// was marked in the same moment and precedes C, so the reduced database
// still propagates to a conflict. This is the ancestor of modern proof
// trimming (drat-trim's -l output).
func Trim(t *proof.Trace, res *Result) (*proof.Trace, error) {
	if res.UsedProof == nil {
		return nil, fmt.Errorf("core: result carries no usage information (verification failed early?)")
	}
	if len(res.UsedProof) != len(t.Clauses) {
		return nil, fmt.Errorf("core: result is for a different trace (%d clauses vs %d)",
			len(res.UsedProof), len(t.Clauses))
	}
	out := proof.New()
	for i, c := range t.Clauses {
		if !res.UsedProof[i] {
			continue
		}
		out.Clauses = append(out.Clauses, c.Clone())
		if t.Resolutions != nil {
			out.Resolutions = append(out.Resolutions, t.Resolutions[i])
		}
	}
	return out, nil
}

// CoreFormula returns the sub-formula of f given by the verified core
// indices. The result is itself unsatisfiable (every conflict during
// verification used only marked clauses of f).
func CoreFormula(f *cnf.Formula, res *Result) *cnf.Formula {
	return f.Restrict(res.Core)
}
