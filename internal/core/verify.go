// Package core implements the paper's primary contribution: verification of
// conflict-clause proofs of unsatisfiability (Goldberg & Novikov, DATE 2003)
// and, as a by-product, extraction of an unsatisfiable core of the original
// formula.
//
// A conflict-clause proof F* is the chronologically ordered sequence of
// conflict clauses a CDCL solver deduced. A clause C of F* was deduced
// correctly iff falsifying C (assigning all its literals to 0) and running
// BCP over F plus the clauses of F* deduced before C yields a conflict —
// i.e. C passes the reverse-unit-propagation check. Two procedures are
// provided:
//
//   - ModeCheckAll — the paper's Proof_verification1: every clause of F* is
//     checked.
//   - ModeCheckMarked — the paper's Proof_verification2: clauses are checked
//     in reverse chronological order and a clause is checked only if a
//     previous check's conflict analysis marked it as used. Initially only
//     the trace's terminating clauses are marked. Unmarked clauses never
//     contributed to deducing the final conflicting pair and are skipped.
//
// In either mode every BCP conflict is analyzed and the clauses involved are
// marked; the marked clauses of the original formula F form an
// unsatisfiable core of F.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bcp"
	"repro/internal/cnf"
	"repro/internal/lrat"
	"repro/internal/obs"
	"repro/internal/proof"
	"repro/internal/sched"
)

// Mode selects the verification procedure.
type Mode int

const (
	// ModeCheckMarked is Proof_verification2: verify only marked clauses
	// (the efficient default; also what extracts a small core).
	ModeCheckMarked Mode = iota
	// ModeCheckAll is Proof_verification1: verify every clause of F*.
	ModeCheckAll
)

func (m Mode) String() string {
	if m == ModeCheckAll {
		return "check-all"
	}
	return "check-marked"
}

// EngineKind selects the BCP implementation backing the verifier.
type EngineKind int

const (
	// EngineWatched uses two-watched-literal propagation with a persistent
	// root trail: the formula's unit-propagation fixpoint is computed once
	// and reused across checks, each Refute pushing only its assumption
	// literals (default).
	EngineWatched EngineKind = iota
	// EngineCounting uses the naive counter-based propagator (ablation).
	EngineCounting
	// EngineWatchedScratch is the watched engine without the persistent
	// root trail: every Refute re-derives the root fixpoint from scratch.
	// It exists as a baseline for benchmarks and differential tests.
	EngineWatchedScratch
)

func (k EngineKind) String() string {
	switch k {
	case EngineCounting:
		return "counting"
	case EngineWatchedScratch:
		return "watched-scratch"
	}
	return "watched"
}

// Options configures Verify.
//
// Mode is honored by sequential Verify and by DAG-scheduled parallel runs
// (Sched == sched.StrategyDAG), whose replay schedule is seeded from the
// marking walk itself; fixed-chunk parallel runs (the Sched zero value)
// cannot honor it — marking is inherently sequential, so VerifyParallelOpts
// then checks every clause regardless of Mode. See VerifyParallelOpts.
type Options struct {
	Mode   Mode
	Engine EngineKind

	// Sched selects how VerifyParallelOpts distributes work across workers:
	// StrategyChunk (the zero value) slices the trace into contiguous
	// fixed-size chunks, StrategyDAG schedules over the recorded LRAT hint
	// DAG (emit-then-schedule; see internal/core/dag.go). Sequential Verify
	// ignores it.
	Sched sched.Strategy

	// Ctx, when non-nil, bounds the run: cancellation or an expired
	// deadline stops the check loop (and propagation inside a single BCP
	// call) promptly, returning a partial Result together with
	// ErrCancelled or ErrDeadline. A nil Ctx never stops.
	Ctx context.Context

	// Budget bounds the resources the run may consume; exceeding a bound
	// returns a partial Result together with a *BudgetError.
	Budget Budget

	// Obs, when non-nil, receives live metrics and spans: a "verify" span
	// with build-db / check-loop / core-extract children, verify.* counters
	// (checked, skipped, tautologies, marked) updated per clause, a
	// verify.props_per_check histogram, and the engine's bcp.* totals. A
	// nil Obs (the default) costs one nil check per instrument call.
	Obs *obs.Registry

	// Progress, when non-nil, is stepped once per proof clause processed
	// (checked, skipped or tautological alike), so its total should be the
	// trace length.
	Progress *obs.Progress

	// Checkpoint configures durable progress records and resume; the zero
	// value disables both and leaves the check loop byte-for-byte
	// unchanged. See checkpoint.go for the determinism contract.
	Checkpoint CheckpointConfig

	// Hints, when non-nil, records an LRAT hint step for every successfully
	// checked clause — plus a synthetic final empty-clause step when the
	// trace terminates in a conflicting pair — using engine clause ID + 1 as
	// the LRAT ID. Sequential Verify and DAG-scheduled parallel runs only;
	// fixed-chunk VerifyParallelOpts rejects it (hints follow one engine's
	// propagation order, and chunked workers each have their own). When
	// checkpointing, the
	// recorder state rides in every checkpoint so a resumed run emits
	// byte-identical LRAT; resuming with Hints set from a checkpoint
	// recorded without them fails with ErrBadCheckpoint.
	Hints *lrat.Recorder
}

// Result reports the outcome of a verification run.
type Result struct {
	// OK is true when every checked clause passed, i.e. the proof is a
	// correct proof of unsatisfiability of F.
	OK bool
	// FailedIndex is the index into the trace of the first clause whose
	// check failed, or -1. FailedClause is that clause.
	FailedIndex  int
	FailedClause cnf.Clause
	// Termination records how the trace ended.
	Termination proof.Termination

	// ProofClauses is |F*|; Tested counts clauses actually BCP-checked;
	// Skipped counts clauses skipped as unmarked (ModeCheckMarked) and
	// Tautologies counts clauses that were trivially implied.
	ProofClauses int
	Tested       int
	Skipped      int
	Tautologies  int

	// MarkedProof counts marked clauses of F*; UsedProof flags, per trace
	// clause, whether it was marked as contributing to the refutation; Core
	// lists the indices of the original formula's clauses that form the
	// unsatisfiable core.
	MarkedProof int
	UsedProof   []bool
	Core        []int

	// Propagations is the total number of BCP-implied assignments.
	// EngineStats is the engine's full cumulative statistics for sequential
	// runs (DAG-scheduled checkpoints persist it so a resumed run re-seeds
	// the observability counters exactly); chunked parallel runs leave it
	// zero and report only Propagations.
	Propagations int64
	EngineStats  bcp.Stats

	// Incomplete is true when the run stopped before reaching a verdict
	// (cancellation, deadline, budget, or a worker failure); the counters
	// above then describe the work done so far and OK is meaningless.
	// StoppedAt is the trace index the sequential check loop had reached
	// when it stopped, or -1.
	Incomplete bool
	StoppedAt  int
}

// TestedPct returns Tested as a percentage of ProofClauses (the paper's
// Table 1 "Tested" column).
func (r *Result) TestedPct() float64 {
	if r.ProofClauses == 0 {
		return 0
	}
	return 100 * float64(r.Tested) / float64(r.ProofClauses)
}

// CorePct returns the core size as a percentage of nOriginal clauses (the
// paper's Table 1 "Unsatisfiable core" column).
func (r *Result) CorePct(nOriginal int) float64 {
	if nOriginal == 0 {
		return 0
	}
	return 100 * float64(len(r.Core)) / float64(nOriginal)
}

// ErrBadTrace wraps structural trace problems (as opposed to verification
// failures, which are reported via Result.OK=false).
var ErrBadTrace = errors.New("core: malformed proof trace")

// Verify checks that the trace is a correct conflict-clause proof of the
// unsatisfiability of f. A structural problem with the trace (wrong
// termination, inconsistent annotations) yields an error; a logically
// incorrect proof yields Result.OK == false with the offending clause
// identified, matching the paper's promise that "one can point to a clause
// of the proof whose deduction is questionable".
func Verify(f *cnf.Formula, t *proof.Trace, opt Options) (*Result, error) {
	term := t.Terminates()
	if term == proof.TermNone {
		return nil, fmt.Errorf("%w: trace must end in a final conflicting pair or the empty clause", ErrBadTrace)
	}
	if t.Resolutions != nil && len(t.Resolutions) != len(t.Clauses) {
		return nil, fmt.Errorf("%w: %d clauses but %d resolution annotations",
			ErrBadTrace, len(t.Clauses), len(t.Resolutions))
	}
	if err := checkBudgetUpfront(f, t, opt.Budget, 1); err != nil {
		countStopErr(opt.Obs, err)
		return &Result{FailedIndex: -1, StoppedAt: -1, Termination: term,
			ProofClauses: len(t.Clauses), Incomplete: true}, err
	}
	nf := len(f.Clauses)
	m := len(t.Clauses)
	ck := opt.Checkpoint
	if ck.Resume != nil {
		if !ck.enabled() {
			return nil, fmt.Errorf("%w: resume requires a checkpoint interval", ErrBadCheckpoint)
		}
		if err := ck.Resume.ValidateFor(nf, m, 0); err != nil {
			return nil, err
		}
		if opt.Hints != nil {
			// Byte-identical emission needs the steps recorded before the
			// crash; a checkpoint written without a recorder cannot provide
			// them, so refuse rather than emit a silently truncated proof.
			if ck.Resume.Hints == nil {
				return nil, fmt.Errorf("%w: checkpoint carries no hint recorder", ErrBadCheckpoint)
			}
			restored, err := lrat.DecodeRecorder(ck.Resume.Hints)
			if err != nil {
				return nil, fmt.Errorf("%w: hint recorder: %v", ErrBadCheckpoint, err)
			}
			*opt.Hints = *restored
		}
	}

	var eng bcp.Propagator
	var statsBase bcp.Stats // work done by engines already folded (rebuilds, resume)
	var res *Result
	span := opt.Obs.StartSpan("verify")
	defer span.End()
	track := opt.Obs.TraceTrack()
	cChecked := opt.Obs.Counter("verify.checked")
	cSkipped := opt.Obs.Counter("verify.skipped")
	cTaut := opt.Obs.Counter("verify.tautologies")
	cMarked := opt.Obs.Counter("verify.marked")          // marks on proof clauses
	cMarkedOrig := opt.Obs.Counter("verify.marked_orig") // marks on original clauses (the core)
	cCkpt := opt.Obs.Counter("verify.checkpoints")
	hProps := opt.Obs.Histogram("verify.props_per_check")
	defer func() {
		st := statsBase
		if eng != nil {
			st = addStats(st, eng.Stats())
		}
		publishStats(opt.Obs, st)
		if res != nil {
			res.EngineStats = st
		}
	}()

	nVars := f.NumVars
	if mv := t.MaxVar(); int(mv)+1 > nVars {
		nVars = int(mv) + 1
	}
	totalProps := func() int64 {
		if eng == nil {
			return statsBase.Propagations
		}
		return statsBase.Propagations + eng.Propagations()
	}
	// The stop hook is polled by the engine inside propagation and by the
	// check loop once per clause, so both a single pathological BCP call
	// and a long proof stop promptly. The propagation budget covers the
	// whole run, including work resumed from a checkpoint.
	stop := verifyStopFunc(opt.Ctx, opt.Budget.MaxPropagations, totalProps)

	// record captures one hinted step from the engine's still-hot conflict
	// state (must run before the next Refute/Deactivate). Engine clause IDs
	// shift by +1 into LRAT ID space, where the formula owns 1..nf.
	var hintIDs []bcp.ID
	var hints64 []int64
	record := func(id int64, c cnf.Clause, conflict bcp.ID, refuted cnf.Clause) {
		hintIDs = eng.ConflictHints(conflict, refuted, hintIDs[:0])
		hints64 = hints64[:0]
		for _, h := range hintIDs {
			hints64 = append(hints64, int64(h)+1)
		}
		opt.Hints.Record(id, c, hints64)
	}

	// buildEngine (re)creates the engine with the formula and the trace
	// prefix [0, upto) active, folding the previous engine's statistics
	// into statsBase. Called once at the start and — when checkpointing is
	// enabled — at every epoch boundary, so that an uninterrupted run and
	// a killed-and-resumed run pass through identical engine states (see
	// checkpoint.go).
	buildEngine := func(upto int) {
		if eng != nil {
			statsBase = addStats(statsBase, eng.Stats())
		}
		switch opt.Engine {
		case EngineCounting:
			eng = bcp.NewCounting(nVars)
		case EngineWatchedScratch:
			eng = bcp.NewEngineNonIncremental(nVars)
		default:
			eng = bcp.NewEngine(nVars)
		}
		eng.SetStop(stop)
		eng.SetTrace(track)
		for _, c := range f.Clauses {
			eng.Add(c)
		}
		for i := 0; i < upto; i++ {
			eng.Add(t.Clauses[i])
		}
	}

	marked := make([]bool, nf+m)
	res = &Result{
		OK:           true,
		FailedIndex:  -1,
		StoppedAt:    -1,
		Termination:  term,
		ProofClauses: m,
	}

	start := m - 1
	resumedAt := -2 // sentinel: no boundary suppressed
	if rcp := ck.Resume; rcp != nil {
		// Restart from the durable state: loop boundary, marked bitmap,
		// counters. The obs counters are re-seeded so a resumed run's
		// final snapshot equals an uninterrupted run's.
		start = rcp.NextIndex
		resumedAt = start
		copy(marked, rcp.Marked)
		res.Tested, res.Skipped, res.Tautologies = rcp.Tested, rcp.Skipped, rcp.Tautologies
		statsBase = rcp.Stats
		cChecked.Add(int64(rcp.Tested))
		cSkipped.Add(int64(rcp.Skipped))
		cTaut.Add(int64(rcp.Tautologies))
		orig, prf := markedCounts(marked, nf)
		cMarkedOrig.Add(orig)
		cMarked.Add(prf)
		opt.Progress.Step(int64(m - 1 - start))
	} else {
		switch term {
		case proof.TermFinalPair:
			marked[nf+m-1] = true
			marked[nf+m-2] = true
			cMarked.Add(2)
		case proof.TermEmptyClause:
			marked[nf+m-1] = true
			cMarked.Inc()
		}
	}

	build := span.Child("build-db")
	buildEngine(start + 1)
	build.End()

	check := span.Child("check-loop")
	defer check.End()
	for i := start; i >= 0; i-- {
		if ck.enabled() && i != m-1 && i != resumedAt && (m-1-i)%ck.Every == 0 {
			// Epoch boundary: rebuild the engine into its canonical state
			// (formula + active trace prefix in input order) and persist
			// the resumable record. Clause i has not been processed yet,
			// so the active prefix is [0, i+1).
			buildEngine(i + 1)
			cCkpt.Inc()
			track.Instant("checkpoint.epoch", int64(i))
			if ck.Sink != nil {
				cp := &Checkpoint{
					NextIndex:   i,
					Marked:      marked,
					Tested:      res.Tested,
					Skipped:     res.Skipped,
					Tautologies: res.Tautologies,
					Stats:       statsBase,
				}
				if opt.Hints != nil {
					// Clause i is not processed yet, so the blob holds
					// exactly the steps for indices above i — the resumed
					// loop re-records i..0 with no duplicates.
					cp.Hints = opt.Hints.Encode()
				}
				if err := ck.Sink(cp.Encode()); err != nil {
					res.Incomplete = true
					res.StoppedAt = i
					res.Propagations = totalProps()
					countStopErr(opt.Obs, err)
					return res, fmt.Errorf("core: checkpoint append: %w", err)
				}
			}
		}
		id := bcp.ID(nf + i)
		c := t.Clauses[i]
		if err := stop(); err != nil {
			res.Incomplete = true
			res.StoppedAt = i
			res.Propagations = totalProps()
			countStopErr(opt.Obs, err)
			return res, err
		}
		// Pop the clause off the proof stack: its own check and all later
		// checks must not use it.
		eng.Deactivate(id)
		opt.Progress.Step(1)
		if opt.Mode == ModeCheckMarked && !marked[id] {
			res.Skipped++
			cSkipped.Inc()
			continue
		}
		propsBefore := totalProps()
		conflict, selfContra := eng.Refute(c)
		if err := eng.StopErr(); err != nil {
			res.Incomplete = true
			res.StoppedAt = i
			res.Propagations = totalProps()
			countStopErr(opt.Obs, err)
			return res, err
		}
		if selfContra {
			// A tautologous "conflict clause" is implied by anything; it
			// cannot participate in any later conflict either, so it needs
			// no marking.
			res.Tautologies++
			cTaut.Inc()
			continue
		}
		res.Tested++
		cChecked.Inc()
		hProps.Observe(totalProps() - propsBefore)
		if conflict == bcp.NoConflict {
			res.OK = false
			res.FailedIndex = i
			res.FailedClause = c.Clone()
			res.Propagations = totalProps()
			track.Instant("verify.reject", int64(i))
			return res, nil
		}
		eng.WalkConflict(conflict, func(used bcp.ID) {
			if !marked[used] {
				marked[used] = true
				if int(used) < nf {
					cMarkedOrig.Inc()
				} else {
					cMarked.Inc()
				}
			}
		})
		if opt.Hints != nil {
			record(int64(id)+1, c, conflict, c)
		}
	}
	check.End()

	if opt.Hints != nil && term == proof.TermFinalPair {
		// The trace ends in complementary units rather than an explicit empty
		// clause; LRAT wants the refutation spelled out. Replaying the empty
		// clause assigns nothing, the first hint is unit and assigns its
		// literal, the second is then falsified — a conflict, as required.
		opt.Hints.Record(int64(nf+m)+1, nil, []int64{int64(nf+m) - 1, int64(nf + m)})
	}

	extract := span.Child("core-extract")
	defer extract.End()
	for i := 0; i < nf; i++ {
		if marked[i] {
			res.Core = append(res.Core, i)
		}
	}
	res.UsedProof = make([]bool, m)
	for i := 0; i < m; i++ {
		if marked[nf+i] {
			res.UsedProof[i] = true
			res.MarkedProof++
		}
	}
	res.Propagations = totalProps()
	return res, nil
}

// publishEngine copies a propagator's cumulative counters into the
// registry's bcp.* namespace. Called once per engine at the end of a
// verification (Add is cumulative, so parallel workers simply sum).
func publishEngine(r *obs.Registry, eng bcp.Propagator) {
	if r == nil || eng == nil {
		return
	}
	publishStats(r, eng.Stats())
}

func publishStats(r *obs.Registry, st bcp.Stats) {
	if r == nil {
		return
	}
	r.Counter("bcp.propagations").Add(st.Propagations)
	r.Counter("bcp.refutations").Add(st.Refutations)
	r.Counter("bcp.conflicts").Add(st.Conflicts)
	r.Counter("bcp.watcher_visits").Add(st.WatcherVisits)
	r.Counter("bcp.occ_touches").Add(st.OccTouches)
}

// VerifyFormulaUnsat is a convenience wrapper asserting a successful
// verification; it returns an error describing the failure otherwise.
func VerifyFormulaUnsat(f *cnf.Formula, t *proof.Trace, opt Options) (*Result, error) {
	res, err := Verify(f, t, opt)
	if err != nil {
		return nil, err
	}
	if !res.OK {
		return res, fmt.Errorf("core: proof clause %d (%v) is not implied — the producing solver is buggy",
			res.FailedIndex, res.FailedClause)
	}
	return res, nil
}
