package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/bcp"
	"repro/internal/obs"
)

func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	seq := &Checkpoint{
		NextIndex:   41,
		Marked:      []bool{true, false, true, true, false, false, true},
		Tested:      9,
		Skipped:     3,
		Tautologies: 1,
		Stats:       bcp.Stats{Propagations: 100, Refutations: 12, Conflicts: 11, WatcherVisits: 500, OccTouches: 7},
	}
	got, err := DecodeCheckpoint(seq.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(seq) {
		t.Fatalf("sequential round trip:\n got %+v\nwant %+v", got, seq)
	}

	par := &Checkpoint{
		Par: true,
		Workers: []WorkerState{
			{Next: 10, Tested: 5, Tautologies: 0, Stats: bcp.Stats{Propagations: 50}},
			{Next: 20, Tested: 7, Tautologies: 2, Stats: bcp.Stats{Conflicts: 7, OccTouches: 3}},
			{Next: -1, Tested: 0, Tautologies: 0},
		},
	}
	got, err = DecodeCheckpoint(par.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(par) {
		t.Fatalf("parallel round trip:\n got %+v\nwant %+v", got, par)
	}
}

func TestDecodeCheckpointRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{checkpointVersion},
		{checkpointVersion + 9, 0},
		{checkpointVersion, 0, 1, 2, 3}, // truncated sequential state
		{checkpointVersion, 1, 4, 0, 0, 0, 0, 0, 0, 0}, // 4 workers, no states
	}
	for i, b := range cases {
		if _, err := DecodeCheckpoint(b); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("case %d: err = %v, want ErrBadCheckpoint", i, err)
		}
	}
	// A valid encoding with trailing junk must not decode.
	enc := append((&Checkpoint{NextIndex: 1, Marked: []bool{true}}).Encode(), 0xff)
	if _, err := DecodeCheckpoint(enc); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("trailing junk: err = %v, want ErrBadCheckpoint", err)
	}
}

func TestCheckpointValidateFor(t *testing.T) {
	ok := &Checkpoint{NextIndex: 5, Marked: make([]bool, 10+20)}
	if err := ok.ValidateFor(10, 20, 0); err != nil {
		t.Fatal(err)
	}
	bad := []*Checkpoint{
		{NextIndex: 20, Marked: make([]bool, 30)},    // index out of range
		{NextIndex: -1, Marked: make([]bool, 30)},    // index out of range
		{NextIndex: 5, Marked: make([]bool, 29)},     // bitmap size
		{Par: true, Workers: make([]WorkerState, 2)}, // parallel vs sequential
	}
	for i, cp := range bad {
		if err := cp.ValidateFor(10, 20, 0); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("case %d: err = %v, want ErrBadCheckpoint", i, err)
		}
	}

	// Parallel: m=5, workers=4 → chunk=2, chunks [0,2) [2,4) [4,5) and one
	// empty chunk whose slot must carry the sentinel m.
	pok := &Checkpoint{Par: true, Workers: []WorkerState{
		{Next: 1}, {Next: 3}, {Next: 4}, {Next: 5},
	}}
	if err := pok.ValidateFor(10, 5, 4); err != nil {
		t.Fatal(err)
	}
	pbad := &Checkpoint{Par: true, Workers: []WorkerState{
		{Next: 1}, {Next: 3}, {Next: 4}, {Next: 0}, // empty chunk without sentinel
	}}
	if err := pbad.ValidateFor(10, 5, 4); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("err = %v, want ErrBadCheckpoint", err)
	}
	if err := pok.ValidateFor(10, 5, 3); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("worker count mismatch: err = %v, want ErrBadCheckpoint", err)
	}
}

// snapshotCounters reads the obs counters that must be identical between an
// uninterrupted checkpointed run and a killed-and-resumed one.
func snapshotCounters(reg *obs.Registry) map[string]int64 {
	out := map[string]int64{}
	for _, name := range []string{
		"verify.checked", "verify.skipped", "verify.tautologies",
		"verify.marked", "verify.marked_orig",
		"bcp.propagations", "bcp.refutations", "bcp.conflicts",
		"bcp.watcher_visits", "bcp.occ_touches",
	} {
		out[name] = reg.Counter(name).Value()
	}
	return out
}

func resultFingerprint(res *Result) string {
	return fmt.Sprintf("ok=%v failed=%d tested=%d skipped=%d taut=%d props=%d core=%v used=%v markedProof=%d",
		res.OK, res.FailedIndex, res.Tested, res.Skipped, res.Tautologies,
		res.Propagations, res.Core, res.UsedProof, res.MarkedProof)
}

// TestSequentialResumeMatchesUninterrupted is the golden determinism test:
// for every mode × engine, a checkpointed run is re-run from EVERY journal
// record it produced, and each resumed run must reproduce the original
// result — same verdict, same core, same counters — exactly.
func TestSequentialResumeMatchesUninterrupted(t *testing.T) {
	f, tr := longChain(120)
	const every = 16
	for _, base := range allModes() {
		base := base
		t.Run(fmt.Sprintf("%v-%v", base.Mode, base.Engine), func(t *testing.T) {
			var records [][]byte
			regA := obs.New()
			optA := base
			optA.Obs = regA
			optA.Checkpoint = CheckpointConfig{Every: every, Sink: func(p []byte) error {
				records = append(records, append([]byte(nil), p...))
				return nil
			}}
			resA, err := Verify(f, tr, optA)
			if err != nil || !resA.OK {
				t.Fatalf("uninterrupted: err=%v res=%+v", err, resA)
			}
			if len(records) == 0 {
				t.Fatal("no checkpoint records written")
			}
			wantRes := resultFingerprint(resA)
			wantObs := fmt.Sprint(snapshotCounters(regA))

			// The checkpointed run must agree with a plain run on the verdict
			// (the canonical rebuilds may pick different-but-valid cores).
			plain, err := Verify(f, tr, base)
			if err != nil || plain.OK != resA.OK {
				t.Fatalf("plain run disagrees: err=%v ok=%v", err, plain.OK)
			}

			for k, rec := range records {
				cp, err := DecodeCheckpoint(rec)
				if err != nil {
					t.Fatalf("record %d: %v", k, err)
				}
				regC := obs.New()
				optC := base
				optC.Obs = regC
				optC.Checkpoint = CheckpointConfig{Every: every, Resume: cp}
				resC, err := Verify(f, tr, optC)
				if err != nil {
					t.Fatalf("resume from record %d: %v", k, err)
				}
				if got := resultFingerprint(resC); got != wantRes {
					t.Fatalf("resume from record %d diverged:\n got %s\nwant %s", k, got, wantRes)
				}
				if got := fmt.Sprint(snapshotCounters(regC)); got != wantObs {
					t.Fatalf("resume from record %d: counters diverged:\n got %s\nwant %s", k, got, wantObs)
				}
			}
		})
	}
}

// TestSequentialBudgetInterruptThenResume interrupts a run for real (budget
// exhaustion mid-scan), then resumes from the journal tail and requires the
// combined run to match the uninterrupted one.
func TestSequentialBudgetInterruptThenResume(t *testing.T) {
	f, tr := longChain(120)
	const every = 8
	for _, eng := range []EngineKind{EngineWatched, EngineCounting} {
		eng := eng
		t.Run(fmt.Sprint(eng), func(t *testing.T) {
			regA := obs.New()
			resA, err := Verify(f, tr, Options{Mode: ModeCheckMarked, Engine: eng, Obs: regA,
				Checkpoint: CheckpointConfig{Every: every, Sink: func([]byte) error { return nil }}})
			if err != nil || !resA.OK {
				t.Fatalf("uninterrupted: err=%v res=%+v", err, resA)
			}

			// Budget chosen to die somewhere in the middle of the scan.
			var records [][]byte
			interrupted, err := Verify(f, tr, Options{Mode: ModeCheckMarked, Engine: eng,
				Budget: Budget{MaxPropagations: resA.Propagations / 2},
				Checkpoint: CheckpointConfig{Every: every, Sink: func(p []byte) error {
					records = append(records, append([]byte(nil), p...))
					return nil
				}}})
			var be *BudgetError
			if !errors.As(err, &be) || !interrupted.Incomplete {
				t.Fatalf("expected budget interruption, got err=%v res=%+v", err, interrupted)
			}
			if len(records) == 0 {
				t.Fatal("interrupted run left no checkpoint records")
			}

			cp, err := DecodeCheckpoint(records[len(records)-1])
			if err != nil {
				t.Fatal(err)
			}
			regC := obs.New()
			resC, err := Verify(f, tr, Options{Mode: ModeCheckMarked, Engine: eng, Obs: regC,
				Checkpoint: CheckpointConfig{Every: every, Resume: cp}})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := resultFingerprint(resC), resultFingerprint(resA); got != want {
				t.Fatalf("resumed run diverged:\n got %s\nwant %s", got, want)
			}
			if got, want := fmt.Sprint(snapshotCounters(regC)), fmt.Sprint(snapshotCounters(regA)); got != want {
				t.Fatalf("resumed counters diverged:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestParallelResumeMatchesUninterrupted mirrors the golden test for the
// parallel verifier: resuming from every journal record reproduces the
// uninterrupted tallies and counters.
func TestParallelResumeMatchesUninterrupted(t *testing.T) {
	f, tr := longChain(100)
	const workers, every = 3, 8
	for _, eng := range []EngineKind{EngineWatched, EngineCounting} {
		eng := eng
		t.Run(fmt.Sprint(eng), func(t *testing.T) {
			var records [][]byte
			regA := obs.New()
			resA, err := VerifyParallelOpts(f, tr, Options{Engine: eng, Obs: regA,
				Checkpoint: CheckpointConfig{Every: every, Sink: func(p []byte) error {
					records = append(records, append([]byte(nil), p...))
					return nil
				}}}, workers)
			if err != nil || !resA.OK {
				t.Fatalf("uninterrupted: err=%v res=%+v", err, resA)
			}
			if len(records) == 0 {
				t.Fatal("no checkpoint records written")
			}
			wantRes := resultFingerprint(resA)
			wantObs := fmt.Sprint(snapshotCounters(regA))

			for k, rec := range records {
				cp, err := DecodeCheckpoint(rec)
				if err != nil {
					t.Fatalf("record %d: %v", k, err)
				}
				regC := obs.New()
				resC, err := VerifyParallelOpts(f, tr, Options{Engine: eng, Obs: regC,
					Checkpoint: CheckpointConfig{Every: every, Resume: cp}}, workers)
				if err != nil {
					t.Fatalf("resume from record %d: %v", k, err)
				}
				if got := resultFingerprint(resC); got != wantRes {
					t.Fatalf("resume from record %d diverged:\n got %s\nwant %s", k, got, wantRes)
				}
				if got := fmt.Sprint(snapshotCounters(regC)); got != wantObs {
					t.Fatalf("resume from record %d: counters diverged:\n got %s\nwant %s", k, got, wantObs)
				}
			}
		})
	}
}

// TestResumeRequiresValidation: handing Verify a checkpoint that does not
// fit the run must fail loudly, not corrupt the scan.
func TestResumeRequiresValidation(t *testing.T) {
	f, tr := longChain(30)
	cp := &Checkpoint{NextIndex: 999, Marked: make([]bool, 5)}
	if _, err := Verify(f, tr, Options{Checkpoint: CheckpointConfig{Every: 4, Resume: cp}}); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("err = %v, want ErrBadCheckpoint", err)
	}
	// Resume without an interval is a caller bug.
	good := &Checkpoint{NextIndex: 5, Marked: make([]bool, len(f.Clauses)+len(tr.Clauses))}
	if _, err := Verify(f, tr, Options{Checkpoint: CheckpointConfig{Resume: good}}); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("err = %v, want ErrBadCheckpoint", err)
	}
	if _, err := VerifyParallelOpts(f, tr, Options{Checkpoint: CheckpointConfig{Resume: good}}, 4); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("parallel err = %v, want ErrBadCheckpoint", err)
	}
}

// TestCheckpointSinkErrorStopsRun: a failing journal append must surface as
// an error with a partial result, like any other stop cause.
func TestCheckpointSinkErrorStopsRun(t *testing.T) {
	f, tr := longChain(60)
	sinkErr := errors.New("disk full")
	res, err := Verify(f, tr, Options{Checkpoint: CheckpointConfig{Every: 4,
		Sink: func([]byte) error { return sinkErr }}})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want wrapped sink error", err)
	}
	if res == nil || !res.Incomplete {
		t.Fatalf("res = %+v, want Incomplete partial result", res)
	}
}
