package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/lrat"
	"repro/internal/proof"
)

// Emission round-trip: every (instance, mode, engine) combination must record
// an LRAT proof the propagation-free checker accepts — that is the whole
// point of the hint-order invariant (bcp/hints.go).

func TestVerifyEmitsCheckableLRAT(t *testing.T) {
	for _, inst := range diffInstances() {
		tr := solveTrace(t, inst)
		for _, mode := range []Mode{ModeCheckMarked, ModeCheckAll} {
			for _, engine := range []EngineKind{EngineWatched, EngineCounting, EngineWatchedScratch} {
				name := fmt.Sprintf("%s/%v/%v", inst.Name, mode, engine)
				var rec lrat.Recorder
				res, err := Verify(inst.F, tr, Options{Mode: mode, Engine: engine, Hints: &rec})
				if err != nil || !res.OK {
					t.Fatalf("%s: err=%v res=%+v", name, err, res)
				}
				lp, err := rec.Proof()
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(lp.Steps[len(lp.Steps)-1].C) != 0 {
					t.Fatalf("%s: emitted proof does not end in the empty clause", name)
				}
				for _, workers := range []int{1, 4} {
					cres, err := lrat.Check(inst.F, lp, lrat.Options{Workers: workers})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if !cres.OK {
						t.Errorf("%s workers=%d: emitted LRAT rejected at step %d: %s",
							name, workers, cres.FailedStep, cres.Reason)
					}
				}
			}
		}
	}
}

func TestVerifyEmitsCheckableLRATEmptyClauseTermination(t *testing.T) {
	inst := gen.PHP(4)
	tr := cloneTrace(solveTrace(t, inst))
	// Turn the final-pair trace into an empty-clause one: the pair is live,
	// so the empty clause is RUP at the root.
	tr.Append(cnf.Clause{}, 0)
	if tr.Terminates() != proof.TermEmptyClause {
		t.Fatal("fixture did not terminate in the empty clause")
	}
	var rec lrat.Recorder
	res, err := Verify(inst.F, tr, Options{Hints: &rec})
	if err != nil || !res.OK {
		t.Fatalf("err=%v res=%+v", err, res)
	}
	lp, err := rec.Proof()
	if err != nil {
		t.Fatal(err)
	}
	cres, err := lrat.Check(inst.F, lp, lrat.Options{})
	if err != nil || !cres.OK {
		t.Fatalf("emitted LRAT rejected: err=%v res=%+v", err, cres)
	}
}

func emittedLRAT(t *testing.T, rec *lrat.Recorder) []byte {
	t.Helper()
	lp, err := rec.Proof()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lrat.Write(&buf, lp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestVerifyResumeEmitsIdenticalLRAT(t *testing.T) {
	inst := gen.PHP(5)
	tr := solveTrace(t, inst)

	const every = 16
	var records [][]byte
	var rec lrat.Recorder
	res, err := Verify(inst.F, tr, Options{
		Hints: &rec,
		Checkpoint: CheckpointConfig{
			Every: every,
			Sink: func(b []byte) error {
				records = append(records, append([]byte(nil), b...))
				return nil
			},
		},
	})
	if err != nil || !res.OK {
		t.Fatalf("uninterrupted: err=%v res=%+v", err, res)
	}
	if len(records) == 0 {
		t.Fatal("no checkpoint records written")
	}
	want := emittedLRAT(t, &rec)

	for k, r := range records {
		cp, err := DecodeCheckpoint(r)
		if err != nil {
			t.Fatalf("record %d: %v", k, err)
		}
		var recC lrat.Recorder
		resC, err := Verify(inst.F, tr, Options{
			Hints:      &recC,
			Checkpoint: CheckpointConfig{Every: every, Resume: cp},
		})
		if err != nil || !resC.OK {
			t.Fatalf("resume from record %d: err=%v res=%+v", k, err, resC)
		}
		if got := emittedLRAT(t, &recC); !bytes.Equal(got, want) {
			t.Fatalf("resume from record %d emitted different LRAT (%d vs %d bytes)", k, len(got), len(want))
		}
	}
}

func TestVerifyResumeWithoutRecordedHints(t *testing.T) {
	inst := gen.PHP(4)
	tr := solveTrace(t, inst)

	const every = 8
	var records [][]byte
	res, err := Verify(inst.F, tr, Options{
		Checkpoint: CheckpointConfig{
			Every: every,
			Sink: func(b []byte) error {
				records = append(records, append([]byte(nil), b...))
				return nil
			},
		},
	})
	if err != nil || !res.OK || len(records) == 0 {
		t.Fatalf("err=%v res=%+v records=%d", err, res, len(records))
	}
	cp, err := DecodeCheckpoint(records[0])
	if err != nil {
		t.Fatal(err)
	}
	var rec lrat.Recorder
	_, err = Verify(inst.F, tr, Options{
		Hints:      &rec,
		Checkpoint: CheckpointConfig{Every: every, Resume: cp},
	})
	if !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("err=%v, want ErrBadCheckpoint", err)
	}
}

func TestVerifyParallelRejectsHints(t *testing.T) {
	inst := gen.PHP(4)
	tr := solveTrace(t, inst)
	var rec lrat.Recorder
	if _, err := VerifyParallelOpts(inst.F, tr, Options{Hints: &rec}, 2); err == nil {
		t.Fatal("parallel verification with hints not rejected")
	}
}
