package core

import (
	"errors"
	"testing"

	"repro/internal/cnf"
	"repro/internal/proof"
)

func TestVerifyParallelAcceptsValidProof(t *testing.T) {
	f, tr := chainFormula()
	for _, workers := range []int{0, 1, 2, 4, 16} {
		res, err := VerifyParallel(f, tr, EngineWatched, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.OK {
			t.Fatalf("workers=%d: rejected at %d", workers, res.FailedIndex)
		}
		if res.Tested != tr.Len() {
			t.Errorf("workers=%d: tested %d of %d", workers, res.Tested, tr.Len())
		}
	}
}

func TestVerifyParallelAgreesWithSequential(t *testing.T) {
	// A longer synthetic proof: chain of implied clauses on the pigeonhole
	// formula produced by construction here would need the solver; instead
	// build a padded proof over the chain formula.
	f, base := chainFormula()
	tr := proof.New()
	tr.Append(cl(1, 3), 0)
	tr.Append(cl(1, -3), 0)
	tr.Append(cl(-1, 2), 0)
	tr.Append(base.Clauses[0], 0)
	tr.Append(base.Clauses[1], 0)
	seq, err := Verify(f, tr, Options{Mode: ModeCheckAll})
	if err != nil {
		t.Fatal(err)
	}
	par, err := VerifyParallel(f, tr, EngineWatched, 3)
	if err != nil {
		t.Fatal(err)
	}
	if seq.OK != par.OK || seq.Tested != par.Tested {
		t.Errorf("sequential %+v vs parallel %+v", seq, par)
	}
}

func TestVerifyParallelRejectsBadClause(t *testing.T) {
	f, base := chainFormula()
	tr := proof.New()
	tr.Append(cl(9), 0) // fresh var: not RUP
	tr.Append(base.Clauses[0], 0)
	tr.Append(base.Clauses[1], 0)
	for _, workers := range []int{1, 2, 8} {
		res, err := VerifyParallel(f, tr, EngineWatched, workers)
		if err != nil {
			t.Fatal(err)
		}
		if res.OK {
			t.Fatalf("workers=%d: accepted bad proof", workers)
		}
		if res.FailedIndex != 0 {
			t.Errorf("workers=%d: FailedIndex=%d, want 0", workers, res.FailedIndex)
		}
		if len(res.FailedClause) != 1 {
			t.Errorf("workers=%d: FailedClause=%v", workers, res.FailedClause)
		}
	}
}

func TestVerifyParallelBadTermination(t *testing.T) {
	f := cnf.NewFormula(0).Add(1)
	tr := proof.New()
	tr.Append(cl(1, 2), 0)
	_, err := VerifyParallel(f, tr, EngineWatched, 2)
	if err == nil {
		t.Fatal("bad termination accepted")
	}
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("error %v does not unwrap to ErrBadTrace", err)
	}
}

func TestVerifyParallelCountingEngine(t *testing.T) {
	f, tr := chainFormula()
	res, err := VerifyParallel(f, tr, EngineCounting, 2)
	if err != nil || !res.OK {
		t.Fatalf("%v %+v", err, res)
	}
}
