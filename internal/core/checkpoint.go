package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/bcp"
)

// Checkpoint support for Verify and VerifyParallelOpts: every
// CheckpointConfig.Every processed proof clauses the verifier serializes
// its resumable state — the loop boundary, the marked-clause bitmap
// (sequential modes) or the per-worker progress (parallel), and the
// cumulative work counters — and hands it to the configured sink, which is
// typically an internal/journal writer.
//
// # Determinism across a crash
//
// The acceptance bar is that an interrupted-then-resumed run produces a
// byte-identical core and identical counters to an uninterrupted run. The
// subtlety is that the BCP engines are history-dependent: the watched
// engine permutes its watch lists as Refutes run, so a fresh engine resumed
// at clause i is NOT in the same state as an engine that checked its way
// down to i, and conflict analysis (hence marking, hence the core) can
// diverge. The fix is to make checkpoint boundaries canonical: whenever
// checkpointing is enabled, the verifier REBUILDS its engine from scratch
// at every boundary (formula plus the still-active trace prefix, in input
// order). An uninterrupted checkpointed run and a resumed run therefore
// pass through identical engine states at every boundary, and everything
// downstream — conflicts, marks, core, counters — is identical by
// construction. Cumulative bcp statistics survive rebuilds in a statsBase
// accumulator that the checkpoint carries.
//
// Non-checkpointed runs never rebuild and are byte-for-byte unchanged.
//
// The incremental watched engine (persistent root trail, DESIGN.md §6b)
// adds engine state that outlives a single Refute, but it needs no special
// handling here: a rebuilt engine's entire state — arena, watch order, root
// trail — is a pure function of the canonical Add/Deactivate sequence, so
// the rebuild grid above still pins down every downstream byte. The replay
// test in internal/bcp (TestIncrementalDeterministicReplay) and the
// kill/resume differential tests keep this honest.

// CheckpointConfig enables durable progress records. The zero value
// disables checkpointing entirely.
type CheckpointConfig struct {
	// Every is the checkpoint interval in processed proof clauses (per
	// worker in parallel mode). Zero disables checkpointing; negative is
	// invalid.
	Every int
	// Sink receives each encoded checkpoint record. It must make the
	// record durable before returning (internal/journal.Writer.Append
	// does). A nil Sink with Every > 0 still establishes the canonical
	// rebuild grid — that is how a resume-only run (no new journal) stays
	// deterministic.
	Sink func(payload []byte) error
	// Resume, when non-nil, restarts verification from a decoded
	// checkpoint instead of the beginning. The caller is responsible for
	// validating it against this run (ValidateFor) and for only passing
	// checkpoints recovered from a journal whose metadata matched.
	Resume *Checkpoint
}

func (c *CheckpointConfig) enabled() bool { return c != nil && c.Every > 0 }

// ErrBadCheckpoint wraps resume states that do not fit the run they are
// offered to. CLI callers validate upfront and fall back to a full run;
// seeing this error out of Verify means a caller skipped validation.
var ErrBadCheckpoint = errors.New("core: checkpoint does not match this verification")

// WorkerState is one parallel worker's durable progress: the next trace
// index its chunk loop will process (one below the last processed index;
// may be lo-1 i.e. "chunk done"), its tally so far, and the bcp statistics
// its engines accumulated.
type WorkerState struct {
	Next        int
	Tested      int
	Tautologies int
	Stats       bcp.Stats
}

// Checkpoint is the decoded resumable state of a verification run.
type Checkpoint struct {
	// Par distinguishes parallel (per-worker) from sequential state.
	Par bool

	// Sequential state: the loop index to resume at (the paper's backward
	// scan processes m-1 down to 0), the marked bitmap over nf+m clause
	// slots, and the counters accumulated so far.
	NextIndex   int
	Marked      []bool
	Tested      int
	Skipped     int
	Tautologies int
	Stats       bcp.Stats

	// Parallel state: one entry per worker.
	Workers []WorkerState

	// Hints is the serialized lrat.Recorder state at the boundary (nil when
	// the run is not recording hints). Sequential and DAG checkpoints only.
	Hints []byte

	// DAG state: set on a phase-2 record of a DAG-scheduled parallel run
	// (internal/core/dag.go). The sequential fields above then hold the
	// finished phase-1 outcome, Hints is always present, and Watermark is
	// the scheduler's drained-task watermark — every recorded step below it
	// revalidated, so the resumed schedule starts there.
	DAG       bool
	Watermark int
}

const (
	checkpointVersion = 1
	// checkpointVersionHints appends the hint-recorder blob after the marked
	// bitmap. Emitted only when a recorder is attached, so non-recording runs
	// keep producing byte-identical version-1 payloads.
	checkpointVersionHints = 2
	// checkpointVersionDAG is the phase-2 record of a DAG-scheduled run: the
	// hinted-sequential layout with the scheduler watermark in the NextIndex
	// slot and flag byte 2 instead of the parallel flag.
	checkpointVersionDAG = 3
)

func appendStats(b []byte, s bcp.Stats) []byte {
	for _, v := range []int64{s.Propagations, s.Refutations, s.Conflicts, s.WatcherVisits, s.OccTouches} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

func readStats(b []byte) (bcp.Stats, []byte) {
	var s bcp.Stats
	for _, p := range []*int64{&s.Propagations, &s.Refutations, &s.Conflicts, &s.WatcherVisits, &s.OccTouches} {
		*p = int64(binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	return s, b
}

func addStats(a, b bcp.Stats) bcp.Stats {
	return bcp.Stats{
		Propagations:  a.Propagations + b.Propagations,
		Refutations:   a.Refutations + b.Refutations,
		Conflicts:     a.Conflicts + b.Conflicts,
		WatcherVisits: a.WatcherVisits + b.WatcherVisits,
		OccTouches:    a.OccTouches + b.OccTouches,
	}
}

func subStats(a, b bcp.Stats) bcp.Stats {
	return bcp.Stats{
		Propagations:  a.Propagations - b.Propagations,
		Refutations:   a.Refutations - b.Refutations,
		Conflicts:     a.Conflicts - b.Conflicts,
		WatcherVisits: a.WatcherVisits - b.WatcherVisits,
		OccTouches:    a.OccTouches - b.OccTouches,
	}
}

// Encode serializes the checkpoint (version byte, fixed-width
// little-endian integers, packed bitmap).
func (cp *Checkpoint) Encode() []byte {
	if cp.DAG {
		b := []byte{checkpointVersionDAG, 2}
		for _, v := range []int64{int64(cp.Watermark), int64(cp.Tested), int64(cp.Skipped), int64(cp.Tautologies)} {
			b = binary.LittleEndian.AppendUint64(b, uint64(v))
		}
		b = appendStats(b, cp.Stats)
		b = binary.LittleEndian.AppendUint64(b, uint64(len(cp.Marked)))
		bm := make([]byte, (len(cp.Marked)+7)/8)
		for i, m := range cp.Marked {
			if m {
				bm[i/8] |= 1 << (i % 8)
			}
		}
		b = append(b, bm...)
		return append(b, cp.Hints...)
	}
	ver := byte(checkpointVersion)
	if cp.Hints != nil && !cp.Par {
		ver = checkpointVersionHints
	}
	b := []byte{ver}
	if cp.Par {
		b = append(b, 1)
		b = binary.LittleEndian.AppendUint64(b, uint64(len(cp.Workers)))
		for _, w := range cp.Workers {
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(w.Next)))
			b = binary.LittleEndian.AppendUint64(b, uint64(w.Tested))
			b = binary.LittleEndian.AppendUint64(b, uint64(w.Tautologies))
			b = appendStats(b, w.Stats)
		}
		return b
	}
	b = append(b, 0)
	for _, v := range []int64{int64(cp.NextIndex), int64(cp.Tested), int64(cp.Skipped), int64(cp.Tautologies)} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	b = appendStats(b, cp.Stats)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(cp.Marked)))
	bm := make([]byte, (len(cp.Marked)+7)/8)
	for i, m := range cp.Marked {
		if m {
			bm[i/8] |= 1 << (i % 8)
		}
	}
	b = append(b, bm...)
	if ver == checkpointVersionHints {
		b = append(b, cp.Hints...)
	}
	return b
}

// DecodeCheckpoint parses an encoded checkpoint payload. It validates only
// internal consistency; use ValidateFor to check the state against a
// concrete run.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	fail := func(what string) (*Checkpoint, error) {
		return nil, fmt.Errorf("%w: %s", ErrBadCheckpoint, what)
	}
	if len(b) < 2 {
		return fail("payload too short")
	}
	ver := b[0]
	if ver != checkpointVersion && ver != checkpointVersionHints && ver != checkpointVersionDAG {
		return fail(fmt.Sprintf("payload version %d, want %d..%d", ver, checkpointVersion, checkpointVersionDAG))
	}
	par := b[1] == 1
	if par && ver != checkpointVersion {
		return fail("hint-recorder payload with parallel flag")
	}
	dag := ver == checkpointVersionDAG
	if dag != (b[1] == 2) {
		return fail("DAG flag does not match payload version")
	}
	b = b[2:]
	cp := &Checkpoint{Par: par, DAG: dag}
	need := func(n int) bool { return len(b) >= n }
	if par {
		if !need(8) {
			return fail("truncated worker count")
		}
		n := int(binary.LittleEndian.Uint64(b))
		b = b[8:]
		if n < 0 || n > 1<<20 || !need(n*(3*8+5*8)) {
			return fail("truncated worker states")
		}
		cp.Workers = make([]WorkerState, n)
		for i := range cp.Workers {
			cp.Workers[i].Next = int(int64(binary.LittleEndian.Uint64(b)))
			cp.Workers[i].Tested = int(binary.LittleEndian.Uint64(b[8:]))
			cp.Workers[i].Tautologies = int(binary.LittleEndian.Uint64(b[16:]))
			cp.Workers[i].Stats, b = readStats(b[24:])
		}
		return cp, nil
	}
	if !need(4*8 + 5*8 + 8) {
		return fail("truncated sequential state")
	}
	first := int(int64(binary.LittleEndian.Uint64(b)))
	if dag {
		cp.Watermark = first
	} else {
		cp.NextIndex = first
	}
	cp.Tested = int(binary.LittleEndian.Uint64(b[8:]))
	cp.Skipped = int(binary.LittleEndian.Uint64(b[16:]))
	cp.Tautologies = int(binary.LittleEndian.Uint64(b[24:]))
	cp.Stats, b = readStats(b[32:])
	nBits := int(binary.LittleEndian.Uint64(b))
	b = b[8:]
	nbm := (nBits + 7) / 8
	if nBits < 0 || nBits > 1<<34 {
		return fail("bitmap length mismatch")
	}
	hinted := ver == checkpointVersionHints || dag
	if hinted {
		if len(b) < nbm {
			return fail("bitmap length mismatch")
		}
	} else if len(b) != nbm {
		return fail("bitmap length mismatch")
	}
	cp.Marked = make([]bool, nBits)
	for i := range cp.Marked {
		cp.Marked[i] = b[i/8]&(1<<(i%8)) != 0
	}
	if hinted {
		// Everything after the bitmap is the serialized hint recorder; the
		// blob self-delimits (binary LRAT), so trailing length needs no frame.
		cp.Hints = append([]byte(nil), b[nbm:]...)
	}
	return cp, nil
}

// ValidateFor checks that the checkpoint could have been produced by a run
// over nf formula clauses and m proof clauses with the given parallelism
// (workers == 0 means sequential).
func (cp *Checkpoint) ValidateFor(nf, m, workers int) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: "+format, append([]any{ErrBadCheckpoint}, args...)...)
	}
	if cp.DAG {
		return fail("DAG-scheduled record offered to a chunked or sequential run")
	}
	if cp.Par != (workers > 0) {
		return fail("parallel flag %v does not match workers=%d", cp.Par, workers)
	}
	if cp.Par {
		if len(cp.Workers) != workers {
			return fail("%d worker states for %d workers", len(cp.Workers), workers)
		}
		chunk := (m + workers - 1) / workers
		for w, st := range cp.Workers {
			lo, hi := w*chunk, min((w+1)*chunk, m)
			if lo >= hi {
				// Empty chunk (workers does not divide m evenly); its slot
				// carries the "no work" sentinel m.
				if st.Next != m {
					return fail("worker %d has empty chunk but next index %d", w, st.Next)
				}
				continue
			}
			if st.Next < lo-1 || st.Next >= hi {
				return fail("worker %d next index %d outside chunk [%d,%d)", w, st.Next, lo, hi)
			}
		}
		return nil
	}
	if cp.NextIndex < 0 || cp.NextIndex >= m {
		return fail("next index %d outside trace of %d clauses", cp.NextIndex, m)
	}
	if len(cp.Marked) != nf+m {
		return fail("marked bitmap of %d bits for %d clause slots", len(cp.Marked), nf+m)
	}
	return nil
}

// ValidateForDAG checks a phase-2 DAG record against a run over nf formula
// clauses and m proof clauses. There is deliberately no worker count: DAG
// parallelism does not shape the durable state (any worker count drains the
// same watermarked prefix), so a record is resumable under any -par. The
// watermark's upper bound is checked by verifyDAG once the hint blob is
// decoded, because only the recorder knows the step count.
func (cp *Checkpoint) ValidateForDAG(nf, m int) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: "+format, append([]any{ErrBadCheckpoint}, args...)...)
	}
	if !cp.DAG {
		return fail("non-DAG record offered to a DAG-scheduled resume")
	}
	if cp.Watermark < 0 {
		return fail("negative watermark %d", cp.Watermark)
	}
	if len(cp.Marked) != nf+m {
		return fail("marked bitmap of %d bits for %d clause slots", len(cp.Marked), nf+m)
	}
	if len(cp.Hints) == 0 {
		return fail("DAG record carries no hint recorder")
	}
	return nil
}

// markedCounts splits a marked bitmap's popcount into original-formula and
// proof-clause marks, for re-seeding the obs counters on resume.
func markedCounts(marked []bool, nf int) (orig, prf int64) {
	for i, m := range marked {
		if !m {
			continue
		}
		if i < nf {
			orig++
		} else {
			prf++
		}
	}
	return
}
