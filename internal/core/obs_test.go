package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/proof"
)

// TestVerifyObserved: running Verify with a registry attached fills the
// verify.* and bcp.* namespaces and builds the expected span tree.
func TestVerifyObserved(t *testing.T) {
	for _, engine := range []EngineKind{EngineWatched, EngineCounting} {
		t.Run(engine.String(), func(t *testing.T) {
			f, tr := chainFormula()
			reg := obs.New()
			res, err := Verify(f, tr, Options{Mode: ModeCheckMarked, Engine: engine, Obs: reg})
			if err != nil || !res.OK {
				t.Fatalf("%v %+v", err, res)
			}

			snap := reg.Snapshot()
			if got := snap.Counters["verify.checked"]; got != int64(res.Tested) {
				t.Errorf("verify.checked = %d, want %d", got, res.Tested)
			}
			if got := snap.Counters["bcp.propagations"]; got != res.Propagations {
				t.Errorf("bcp.propagations = %d, want %d", got, res.Propagations)
			}
			if snap.Counters["bcp.refutations"] == 0 || snap.Counters["bcp.conflicts"] == 0 {
				t.Errorf("bcp counters empty: %+v", snap.Counters)
			}
			if snap.Counters["verify.marked"] == 0 {
				t.Errorf("verify.marked = 0: %+v", snap.Counters)
			}
			switch engine {
			case EngineWatched:
				if snap.Counters["bcp.watcher_visits"] == 0 {
					t.Errorf("bcp.watcher_visits = 0: %+v", snap.Counters)
				}
			case EngineCounting:
				if snap.Counters["bcp.occ_touches"] == 0 {
					t.Errorf("bcp.occ_touches = 0: %+v", snap.Counters)
				}
			}
			if h := snap.Histograms["verify.props_per_check"]; h.Count != int64(res.Tested) {
				t.Errorf("props_per_check count = %d, want %d", h.Count, res.Tested)
			}

			// Span tree: total -> verify -> {build-db, check-loop, core-extract}.
			if snap.Spans == nil || len(snap.Spans.Children) != 1 {
				t.Fatalf("span root = %+v", snap.Spans)
			}
			v := snap.Spans.Children[0]
			if v.Name != "verify" || v.Running {
				t.Fatalf("verify span = %+v", v)
			}
			var phases []string
			for _, c := range v.Children {
				phases = append(phases, c.Name)
			}
			if strings.Join(phases, ",") != "build-db,check-loop,core-extract" {
				t.Errorf("phases = %v", phases)
			}
		})
	}
}

// TestVerifyObservedDisabled: the zero Options still work — nil registry,
// nil progress — and produce the identical result.
func TestVerifyObservedDisabled(t *testing.T) {
	f, tr := chainFormula()
	plain, err := Verify(f, tr, Options{})
	if err != nil || !plain.OK {
		t.Fatalf("%v %+v", err, plain)
	}
	instr, err := Verify(f, tr, Options{Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Tested != instr.Tested || plain.Propagations != instr.Propagations ||
		len(plain.Core) != len(instr.Core) {
		t.Errorf("instrumentation changed the result: %+v vs %+v", plain, instr)
	}
}

// TestVerifyParallelObserved: per-worker spans appear under the
// verify-parallel span and shared counters aggregate across workers.
func TestVerifyParallelObserved(t *testing.T) {
	f, base := chainFormula()
	tr := proof.New()
	tr.Append(cl(1, 3), 0)
	tr.Append(cl(1, -3), 0)
	tr.Append(cl(-1, 2), 0)
	tr.Append(base.Clauses[0], 0)
	tr.Append(base.Clauses[1], 0)

	reg := obs.New()
	var buf bytes.Buffer
	prog := obs.NewProgress(&buf, obs.ProgressConfig{
		Label: "verify", Unit: "clauses", Total: int64(tr.Len()), Every: 1,
	})
	res, err := VerifyParallelOpts(f, tr, Options{Obs: reg, Progress: prog}, 3)
	if err != nil || !res.OK {
		t.Fatalf("%v %+v", err, res)
	}
	prog.Finish()

	snap := reg.Snapshot()
	if got := snap.Counters["verify.checked"]; got != int64(res.Tested) {
		t.Errorf("verify.checked = %d, want %d", got, res.Tested)
	}
	if got := snap.Counters["bcp.propagations"]; got != res.Propagations {
		t.Errorf("bcp.propagations = %d, want %d", got, res.Propagations)
	}
	if snap.Gauges["verify.workers"] != 3 {
		t.Errorf("verify.workers = %d", snap.Gauges["verify.workers"])
	}
	if snap.Spans == nil || len(snap.Spans.Children) != 1 {
		t.Fatalf("span root = %+v", snap.Spans)
	}
	par := snap.Spans.Children[0]
	if par.Name != "verify-parallel" {
		t.Fatalf("span = %+v", par)
	}
	workers := 0
	for _, c := range par.Children {
		if strings.HasPrefix(c.Name, "worker-") {
			workers++
			if len(c.Children) != 1 || c.Children[0].Name != "build-db" {
				t.Errorf("worker span children = %+v", c.Children)
			}
		}
	}
	if workers != 3 {
		t.Errorf("%d worker spans, want 3", workers)
	}
	if prog.Done() != int64(tr.Len()) {
		t.Errorf("progress stepped %d of %d", prog.Done(), tr.Len())
	}
	if !strings.Contains(buf.String(), "c progress verify: done 5/5 clauses (100.0%)") {
		t.Errorf("progress output:\n%s", buf.String())
	}
}
