package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cnf"
	"repro/internal/lrat"
	"repro/internal/obs"
	"repro/internal/proof"
	"repro/internal/sched"
)

func TestResolveWorkersDAG(t *testing.T) {
	if got := ResolveWorkersDAG(3, 8); got != 3 {
		t.Errorf("width 3, asked 8: got %d", got)
	}
	if got := ResolveWorkersDAG(100, 4); got != 4 {
		t.Errorf("width 100, asked 4: got %d", got)
	}
	if got := ResolveWorkersDAG(0, 4); got != 1 {
		t.Errorf("width 0 must clamp to 1 worker, got %d", got)
	}
	if got := ResolveWorkersDAG(1, 0); got != 1 {
		t.Errorf("serial DAG with default workers: got %d", got)
	}
}

// dagOpt returns base with the DAG schedule selected.
func dagOpt(base Options) Options {
	base.Sched = sched.StrategyDAG
	return base
}

// The DAG-scheduled run must agree with the sequential checker exactly —
// verdict, counters, core, marking — for every mode × engine, because its
// phase 1 IS the sequential checker and phase 2 must not perturb the result.
func TestVerifyDAGMatchesSequential(t *testing.T) {
	f, tr := longChain(200)
	for _, base := range allModes() {
		seq, err := Verify(f, tr, base)
		if err != nil || !seq.OK {
			t.Fatalf("%v/%v sequential: err=%v res=%+v", base.Mode, base.Engine, err, seq)
		}
		dag, err := VerifyParallelOpts(f, tr, dagOpt(base), 4)
		if err != nil {
			t.Fatalf("%v/%v dag: %v", base.Mode, base.Engine, err)
		}
		if got, want := resultFingerprint(dag), resultFingerprint(seq); got != want {
			t.Fatalf("%v/%v diverged:\n dag %s\n seq %s", base.Mode, base.Engine, got, want)
		}
	}
}

// Check-marked DAG scheduling (satellite of the chunk mode's biggest
// limitation): the schedule is seeded from the marking walk, so redundant
// clauses are skipped — chunk mode cannot do that.
func TestVerifyDAGHonorsCheckMarked(t *testing.T) {
	f, tr := chainFormula()
	padded := proof.New()
	padded.Append(cl(1, 3), 0)
	padded.Append(cl(1, -3), 0)
	padded.Append(tr.Clauses[0], 0)
	padded.Append(tr.Clauses[1], 0)

	res, err := VerifyParallelOpts(f, padded, dagOpt(Options{Mode: ModeCheckMarked}), 4)
	if err != nil || !res.OK {
		t.Fatalf("err=%v res=%+v", err, res)
	}
	if res.Skipped == 0 {
		t.Error("DAG check-marked run skipped nothing")
	}
	if len(res.Core) == 0 || res.UsedProof == nil {
		t.Error("DAG run extracted no core/marking")
	}

	all, err := VerifyParallelOpts(f, padded, dagOpt(Options{Mode: ModeCheckAll}), 4)
	if err != nil || !all.OK || all.Tested != padded.Len() {
		t.Fatalf("check-all DAG: err=%v res=%+v", err, all)
	}
}

func TestVerifyDAGRejectsBadClause(t *testing.T) {
	// A clause over a fresh variable: falsifying it propagates nothing, so
	// it is not RUP and check-all must reject it at the same index as the
	// sequential checker.
	f, tr := chainFormula()
	bogus := proof.New()
	bogus.Append(cl(9), 0)
	bogus.Append(tr.Clauses[0], 0)
	bogus.Append(tr.Clauses[1], 0)
	seq, err := Verify(f, bogus, Options{Mode: ModeCheckAll})
	if err != nil {
		t.Fatal(err)
	}
	dag, err := VerifyParallelOpts(f, bogus, dagOpt(Options{Mode: ModeCheckAll}), 4)
	if err != nil {
		t.Fatal(err)
	}
	if dag.OK || seq.OK || dag.FailedIndex != seq.FailedIndex {
		t.Fatalf("dag ok=%v failed=%d, sequential ok=%v failed=%d", dag.OK, dag.FailedIndex, seq.OK, seq.FailedIndex)
	}
}

// The recorder attached to a DAG run must emit byte-identical LRAT to a
// sequential run with the same options.
func TestVerifyDAGEmitsIdenticalLRAT(t *testing.T) {
	f, tr := longChain(80)
	emit := func(par bool) []byte {
		rec := new(lrat.Recorder)
		opt := Options{Mode: ModeCheckMarked, Hints: rec}
		var err error
		if par {
			_, err = VerifyParallelOpts(f, tr, dagOpt(opt), 3)
		} else {
			_, err = Verify(f, tr, opt)
		}
		if err != nil {
			t.Fatal(err)
		}
		return rec.Encode()
	}
	if !bytes.Equal(emit(false), emit(true)) {
		t.Fatal("DAG-scheduled run emitted different LRAT than the sequential run")
	}
}

// Panic isolation: a task that panics on its first attempt is retried on a
// fresh scratchpad; a task that panics twice stops the run with full
// attribution, like the chunk mode's WorkerPanicError.
func TestVerifyDAGPanicRetry(t *testing.T) {
	f, tr := longChain(60)
	defer func() { dagTaskHook = nil }()

	dagTaskHook = func(worker, task, attempt int) {
		if task == 10 && attempt == 0 {
			panic("transient")
		}
	}
	res, err := VerifyParallelOpts(f, tr, dagOpt(Options{}), 4)
	if err != nil || !res.OK {
		t.Fatalf("single panic not recovered: err=%v res=%+v", err, res)
	}

	dagTaskHook = func(worker, task, attempt int) {
		if task == 10 {
			panic(fmt.Sprintf("persistent %d", attempt))
		}
	}
	res, err = VerifyParallelOpts(f, tr, dagOpt(Options{}), 4)
	var wp *WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("err = %v, want WorkerPanicError", err)
	}
	if wp.Lo != 10 || wp.Hi != 11 || wp.Attempts != 2 || wp.Value != "persistent 1" {
		t.Fatalf("panic attribution = %+v", wp)
	}
	if !res.Incomplete {
		t.Error("Incomplete not set after a double panic")
	}
}

// The golden determinism test for DAG checkpoints: a checkpointed DAG run is
// resumed from EVERY record it produced — phase-1 sequential records and
// phase-2 watermark records alike — and each resumed run must reproduce the
// result, the counters and the emitted LRAT bytes exactly.
func TestVerifyDAGResumeMatchesUninterrupted(t *testing.T) {
	f, tr := longChain(120)
	const every = 16
	for _, mode := range []Mode{ModeCheckMarked, ModeCheckAll} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			var records [][]byte
			recA := new(lrat.Recorder)
			regA := obs.New()
			optA := dagOpt(Options{Mode: mode, Obs: regA, Hints: recA})
			optA.Checkpoint = CheckpointConfig{Every: every, Sink: func(p []byte) error {
				records = append(records, append([]byte(nil), p...))
				return nil
			}}
			resA, err := VerifyParallelOpts(f, tr, optA, 4)
			if err != nil || !resA.OK {
				t.Fatalf("uninterrupted: err=%v res=%+v", err, resA)
			}
			var sawDAG bool
			for _, p := range records {
				if cp, err := DecodeCheckpoint(p); err == nil && cp.DAG {
					sawDAG = true
				}
			}
			if !sawDAG {
				t.Fatal("run produced no phase-2 (DAG) checkpoint records")
			}
			wantRes := resultFingerprint(resA)
			wantObs := fmt.Sprint(snapshotCounters(regA))
			wantLRAT := recA.Encode()

			for k, payload := range records {
				cp, err := DecodeCheckpoint(payload)
				if err != nil {
					t.Fatalf("record %d: %v", k, err)
				}
				recC := new(lrat.Recorder)
				regC := obs.New()
				optC := dagOpt(Options{Mode: mode, Obs: regC, Hints: recC})
				optC.Checkpoint = CheckpointConfig{Every: every, Resume: cp}
				resC, err := VerifyParallelOpts(f, tr, optC, 4)
				if err != nil {
					t.Fatalf("resume from record %d: %v", k, err)
				}
				if got := resultFingerprint(resC); got != wantRes {
					t.Fatalf("resume from record %d diverged:\n got %s\nwant %s", k, got, wantRes)
				}
				if got := fmt.Sprint(snapshotCounters(regC)); got != wantObs {
					t.Fatalf("resume from record %d: counters diverged:\n got %s\nwant %s", k, got, wantObs)
				}
				if !bytes.Equal(recC.Encode(), wantLRAT) {
					t.Fatalf("resume from record %d: LRAT recorder diverged", k)
				}
			}
		})
	}
}

// A DAG record must never be accepted by the sequential or chunked resume
// paths, and vice versa.
func TestDAGCheckpointCrossValidation(t *testing.T) {
	cp := &Checkpoint{DAG: true, Watermark: 3, Marked: make([]bool, 10),
		Hints: []byte{1}}
	round, err := DecodeCheckpoint(cp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !round.DAG || round.Watermark != 3 || len(round.Marked) != 10 || len(round.Hints) != 1 {
		t.Fatalf("round trip = %+v", round)
	}
	if err := round.ValidateFor(4, 6, 0); err == nil {
		t.Error("sequential ValidateFor accepted a DAG record")
	}
	if err := round.ValidateForDAG(4, 6); err != nil {
		t.Errorf("ValidateForDAG rejected a matching record: %v", err)
	}
	if err := round.ValidateForDAG(5, 6); err == nil {
		t.Error("ValidateForDAG accepted a wrong-geometry record")
	}
	seq := &Checkpoint{NextIndex: 1, Marked: make([]bool, 10)}
	if err := seq.ValidateForDAG(4, 6); err == nil {
		t.Error("ValidateForDAG accepted a sequential record")
	}
}

// One verifier end to end on a cnf.Formula built by hand, exercising the
// no-hints + check-marked + DAG path the CLI default would take.
func TestVerifyDAGSmallFormula(t *testing.T) {
	f := cnf.NewFormula(0).Add(1, 2).Add(1, -2).Add(-1, 3).Add(-1, -3)
	tr := proof.New()
	tr.Append(cl(1), 1)
	tr.Append(cl(-1), 1)
	res, err := VerifyParallelOpts(f, tr, dagOpt(Options{}), 2)
	if err != nil || !res.OK || len(res.Core) != 4 {
		t.Fatalf("err=%v res=%+v", err, res)
	}
}
