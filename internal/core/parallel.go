package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/bcp"
	"repro/internal/cnf"
	"repro/internal/proof"
)

// VerifyParallel is Proof_verification1 fanned out over worker goroutines:
// the check of clause i against F ∪ F*[0..i-1] is independent of every
// other check, so the proof is sliced into contiguous chunks and each
// worker verifies its chunk with a private BCP engine. Marking (and hence
// core extraction and Verification2's skipping) is inherently sequential,
// so this entry point checks every clause and reports no core — it is the
// "maximum-assurance, wall-clock-bound" mode.
//
// workers <= 0 selects GOMAXPROCS.
func VerifyParallel(f *cnf.Formula, t *proof.Trace, engine EngineKind, workers int) (*Result, error) {
	return VerifyParallelOpts(f, t, Options{Mode: ModeCheckAll, Engine: engine}, workers)
}

// parallelChunkHook, when non-nil, runs at the start of every chunk attempt
// (worker id, chunk bounds, 0-based attempt). Test-only: panic-recovery
// tests use it to blow up inside a worker and prove the process survives.
var parallelChunkHook func(worker, lo, hi, attempt int)

// fallbackEngine is the engine a panicked chunk is retried on: the counting
// engine backs up the watched one and vice versa, so a defect confined to
// one propagator's data structures cannot take down the whole verification.
func fallbackEngine(k EngineKind) EngineKind {
	if k == EngineCounting {
		return EngineWatched
	}
	return EngineCounting
}

// chunkTally is one chunk attempt's contribution to the aggregate Result.
type chunkTally struct {
	tested, taut int
	failed       int32 // first failed index within the whole trace, -1
	failedClause cnf.Clause
	props        int64
}

// VerifyParallelOpts is VerifyParallel with full Options: opt.Engine
// selects the BCP engine, opt.Obs and opt.Progress instrument the run
// (per-worker child spans record each chunk's bounds and wall time;
// counters aggregate across workers) and opt.Ctx/opt.Budget bound it.
// opt.Mode is ignored — parallel verification always checks every clause.
//
// Failure isolation: a panic inside a worker is recovered and attributed
// (worker id + chunk bounds); the chunk is retried once on the fallback
// engine before the run gives up with a *WorkerPanicError. Cancellation,
// deadline and budget exhaustion stop every worker promptly and return the
// aggregated partial Result alongside the distinct error, exactly like the
// sequential Verify.
func VerifyParallelOpts(f *cnf.Formula, t *proof.Trace, opt Options, workers int) (*Result, error) {
	term := t.Terminates()
	if term == proof.TermNone {
		return nil, errTermination()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := len(t.Clauses)
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		seq := opt
		seq.Mode = ModeCheckAll
		return Verify(f, t, seq)
	}
	if err := checkBudgetUpfront(f, t, opt.Budget, workers); err != nil {
		countStopErr(opt.Obs, err)
		return &Result{FailedIndex: -1, StoppedAt: -1, Termination: term,
			ProofClauses: m, Incomplete: true}, err
	}

	span := opt.Obs.StartSpan("verify-parallel")
	defer span.End()
	opt.Obs.Gauge("verify.workers").Set(int64(workers))
	cChecked := opt.Obs.Counter("verify.checked")
	cTaut := opt.Obs.Counter("verify.tautologies")
	cPanics := opt.Obs.Counter("verify.worker_panics")
	cRetries := opt.Obs.Counter("verify.chunk_retries")
	hChunkProps := opt.Obs.Histogram("verify.props_per_chunk")

	nVars := f.NumVars
	if mv := t.MaxVar(); int(mv)+1 > nVars {
		nVars = int(mv) + 1
	}
	nf := len(f.Clauses)

	outs := make([]chunkTally, workers)
	for w := range outs {
		outs[w].failed = -1
	}

	var failedAt atomic.Int32
	failedAt.Store(int32(m)) // sentinel: no failure

	// First stop cause wins (cancellation, budget exhaustion, or an
	// unrecoverable worker panic); every worker's stop hook observes it
	// and bails out at its next poll.
	var stopPtr atomic.Pointer[error]
	setStopped := func(err error) {
		e := err
		stopPtr.CompareAndSwap(nil, &e)
	}
	// The propagation budget is global: each worker's hook folds its
	// engine's delta into sharedProps and compares the run-wide total.
	var sharedProps atomic.Int64
	mkStop := func(props func() int64) func() error {
		var lastSeen int64
		return func() error {
			if p := stopPtr.Load(); p != nil {
				return *p
			}
			if err := ctxErr(opt.Ctx); err != nil {
				return err
			}
			if b := opt.Budget.MaxPropagations; b > 0 {
				if cur := props(); cur != lastSeen {
					sharedProps.Add(cur - lastSeen)
					lastSeen = cur
				}
				if used := sharedProps.Load(); used > b {
					return &BudgetError{Resource: "propagations", Limit: b, Used: used}
				}
			}
			return nil
		}
	}

	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wspan := span.Child(fmt.Sprintf("worker-%d [%d,%d)", w, lo, hi))
			defer wspan.End()

			// runAttempt checks trace clauses [hi-1..lo] on a fresh engine.
			// A recovered panic discards the attempt's tally — a retry
			// redoes the whole chunk, so merging would double count — while
			// a stop error keeps it, so the aggregated partial Result stays
			// accurate.
			// panicked distinguishes a panic in THIS worker's attempt from a
			// stop error merely relayed by the hook (which may itself be
			// another worker's WorkerPanicError).
			runAttempt := func(attempt int, kind EngineKind) (tally chunkTally, err error, panicked bool) {
				tally.failed = -1
				defer func() {
					if r := recover(); r != nil {
						tally = chunkTally{failed: -1}
						err = &WorkerPanicError{Worker: w, Lo: lo, Hi: hi,
							Attempts: attempt + 1, Value: r, Stack: debug.Stack()}
						panicked = true
					}
				}()
				if parallelChunkHook != nil {
					parallelChunkHook(w, lo, hi, attempt)
				}
				var eng bcp.Propagator
				switch kind {
				case EngineCounting:
					eng = bcp.NewCounting(nVars)
				default:
					eng = bcp.NewEngine(nVars)
				}
				defer func() { publishEngine(opt.Obs, eng) }()
				stop := mkStop(eng.Propagations)
				eng.SetStop(stop)

				build := wspan.Child("build-db")
				for _, c := range f.Clauses {
					eng.Add(c)
				}
				// This worker's database: proof clauses strictly before hi;
				// clause i is checked after deactivating ids >= i, i.e. we
				// add [0, hi) and walk backwards like the sequential code.
				for i := 0; i < hi; i++ {
					eng.Add(t.Clauses[i])
				}
				build.End()

				for i := hi - 1; i >= lo; i-- {
					if failedAt.Load() != int32(m) {
						break // some worker already found a bad clause
					}
					if serr := stop(); serr != nil {
						tally.props = eng.Propagations()
						return tally, serr, false
					}
					eng.Deactivate(bcp.ID(nf + i))
					opt.Progress.Step(1)
					conflict, selfContra := eng.Refute(t.Clauses[i])
					if serr := eng.StopErr(); serr != nil {
						tally.props = eng.Propagations()
						return tally, serr, false
					}
					if selfContra {
						tally.taut++
						cTaut.Inc()
						continue
					}
					tally.tested++
					cChecked.Inc()
					if conflict == bcp.NoConflict {
						tally.failed = int32(i)
						tally.failedClause = t.Clauses[i].Clone()
						// Publish the smallest failing index.
						for {
							cur := failedAt.Load()
							if int32(i) >= cur || failedAt.CompareAndSwap(cur, int32(i)) {
								break
							}
						}
						break
					}
				}
				tally.props = eng.Propagations()
				hChunkProps.Observe(tally.props)
				return tally, nil, false
			}

			tally, err, panicked := runAttempt(0, opt.Engine)
			if panicked {
				cPanics.Inc()
				if stopPtr.Load() == nil {
					cRetries.Inc()
					var again bool
					tally, err, again = runAttempt(1, fallbackEngine(opt.Engine))
					if again {
						cPanics.Inc()
					}
				}
			}
			outs[w] = tally
			if err != nil {
				setStopped(err)
			}
		}(w, lo, hi)
	}
	wg.Wait()

	res := &Result{
		OK:           true,
		FailedIndex:  -1,
		StoppedAt:    -1,
		Termination:  term,
		ProofClauses: m,
	}
	for w := range outs {
		res.Tested += outs[w].tested
		res.Tautologies += outs[w].taut
		res.Propagations += outs[w].props
	}
	if p := stopPtr.Load(); p != nil {
		res.Incomplete = true
		countStopErr(opt.Obs, *p)
		return res, *p
	}
	if idx := failedAt.Load(); int(idx) < m {
		res.OK = false
		res.FailedIndex = int(idx)
		res.FailedClause = t.Clauses[idx].Clone()
		for w := range outs {
			if outs[w].failed == idx {
				res.FailedClause = outs[w].failedClause
			}
		}
	}
	return res, nil
}

func errTermination() error {
	return &terminationError{}
}

type terminationError struct{}

func (*terminationError) Error() string {
	return "core: malformed proof trace: trace must end in a final conflicting pair or the empty clause"
}

func (*terminationError) Unwrap() error { return ErrBadTrace }
