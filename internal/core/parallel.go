package core

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/bcp"
	"repro/internal/cnf"
	"repro/internal/proof"
	"repro/internal/sched"
)

// VerifyParallel is Proof_verification1 fanned out over worker goroutines:
// the check of clause i against F ∪ F*[0..i-1] is independent of every
// other check, so the proof is sliced into contiguous chunks and each
// worker verifies its chunk with a private BCP engine. Marking (and hence
// core extraction and Verification2's skipping) is inherently sequential,
// so this entry point checks every clause and reports no core — it is the
// "maximum-assurance, wall-clock-bound" mode.
//
// workers <= 0 selects GOMAXPROCS.
func VerifyParallel(f *cnf.Formula, t *proof.Trace, engine EngineKind, workers int) (*Result, error) {
	return VerifyParallelOpts(f, t, Options{Mode: ModeCheckAll, Engine: engine}, workers)
}

// ResolveWorkers maps a requested worker count to the effective one for a
// fixed-chunk run over a proof of m clauses: non-positive selects
// GOMAXPROCS, and the count is clamped to m because a chunk needs at least
// one clause. CLI callers use it to record the effective parallelism in a
// checkpoint journal's metadata before VerifyParallelOpts applies the same
// resolution — the chunk geometry (and hence the durable per-worker state)
// depends on it, so a chunked journal is only resumable at the same count.
// DAG-scheduled runs use ResolveWorkersDAG instead: their durable state is
// a single watermark, independent of parallelism, so their journals record
// zero workers and resume under any -par.
func ResolveWorkers(m, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	return workers
}

// parallelChunkHook, when non-nil, runs at the start of every chunk attempt
// (worker id, chunk bounds, 0-based attempt). Test-only: panic-recovery
// tests use it to blow up inside a worker and prove the process survives.
var parallelChunkHook func(worker, lo, hi, attempt int)

// fallbackEngine is the engine a panicked chunk is retried on: the counting
// engine backs up the watched one and vice versa, so a defect confined to
// one propagator's data structures cannot take down the whole verification.
func fallbackEngine(k EngineKind) EngineKind {
	if k == EngineCounting {
		return EngineWatched
	}
	return EngineCounting
}

// chunkTally is one chunk attempt's contribution to the aggregate Result.
type chunkTally struct {
	tested, taut int
	failed       int32 // first failed index within the whole trace, -1
	failedClause cnf.Clause
	props        int64
}

// VerifyParallelOpts is VerifyParallel with full Options: opt.Engine
// selects the BCP engine, opt.Obs and opt.Progress instrument the run
// (per-worker child spans record each chunk's bounds and wall time;
// counters aggregate across workers) and opt.Ctx/opt.Budget bound it.
//
// opt.Sched selects the schedule. The fixed-chunk default slices the trace
// into contiguous per-worker ranges; it cannot honor opt.Mode — marking is
// inherently sequential, so chunked workers check every clause regardless
// and extract no core — and it rejects opt.Hints. StrategyDAG runs the
// two-phase emit-then-schedule pipeline of internal/core/dag.go instead:
// the sequential checker (which DOES honor opt.Mode, records hints and
// extracts the core) emits the proof's hint DAG, and the work-stealing
// scheduler revalidates every recorded step in parallel.
//
// Failure isolation: a panic inside a worker is recovered and attributed
// (worker id + chunk bounds); the chunk is retried once on the fallback
// engine before the run gives up with a *WorkerPanicError. Cancellation,
// deadline and budget exhaustion stop every worker promptly and return the
// aggregated partial Result alongside the distinct error, exactly like the
// sequential Verify.
func VerifyParallelOpts(f *cnf.Formula, t *proof.Trace, opt Options, workers int) (*Result, error) {
	term := t.Terminates()
	if term == proof.TermNone {
		return nil, errTermination()
	}
	if opt.Sched == sched.StrategyDAG {
		return verifyDAG(f, t, opt, workers)
	}
	m := len(t.Clauses)
	workers = ResolveWorkers(m, workers)
	if workers <= 1 {
		seq := opt
		seq.Mode = ModeCheckAll
		return Verify(f, t, seq)
	}
	if opt.Hints != nil {
		// Hint order follows one engine's propagation; chunked workers each
		// have their own, so there is no canonical recording to merge. The
		// DAG schedule (opt.Sched = sched.StrategyDAG) records and verifies
		// hints in one run.
		return nil, errors.New("core: LRAT hint recording requires sequential or DAG-scheduled verification")
	}
	if err := checkBudgetUpfront(f, t, opt.Budget, workers); err != nil {
		countStopErr(opt.Obs, err)
		return &Result{FailedIndex: -1, StoppedAt: -1, Termination: term,
			ProofClauses: m, Incomplete: true}, err
	}
	ck := opt.Checkpoint
	if ck.Resume != nil {
		if !ck.enabled() {
			return nil, fmt.Errorf("%w: resume requires a checkpoint interval", ErrBadCheckpoint)
		}
		if err := ck.Resume.ValidateFor(len(f.Clauses), m, workers); err != nil {
			return nil, err
		}
	}

	span := opt.Obs.StartSpan("verify-parallel")
	defer span.End()
	opt.Obs.Gauge("verify.workers").Set(int64(workers))
	cChecked := opt.Obs.Counter("verify.checked")
	cTaut := opt.Obs.Counter("verify.tautologies")
	cPanics := opt.Obs.Counter("verify.worker_panics")
	cRetries := opt.Obs.Counter("verify.chunk_retries")
	cCkpt := opt.Obs.Counter("verify.checkpoints")
	hChunkProps := opt.Obs.Histogram("verify.props_per_chunk")

	nVars := f.NumVars
	if mv := t.MaxVar(); int(mv)+1 > nVars {
		nVars = int(mv) + 1
	}
	nf := len(f.Clauses)

	outs := make([]chunkTally, workers)
	for w := range outs {
		outs[w].failed = -1
	}

	var failedAt atomic.Int32
	failedAt.Store(int32(m)) // sentinel: no failure

	// First stop cause wins (cancellation, budget exhaustion, or an
	// unrecoverable worker panic); every worker's stop hook observes it
	// and bails out at its next poll.
	var stopPtr atomic.Pointer[error]
	setStopped := func(err error) {
		e := err
		stopPtr.CompareAndSwap(nil, &e)
	}
	// The propagation budget is global: each worker's hook folds its
	// engine's delta into sharedProps and compares the run-wide total.
	var sharedProps atomic.Int64
	mkStop := func(props func() int64) func() error {
		var lastSeen int64
		return func() error {
			if p := stopPtr.Load(); p != nil {
				return *p
			}
			if err := ctxErr(opt.Ctx); err != nil {
				return err
			}
			if b := opt.Budget.MaxPropagations; b > 0 {
				if cur := props(); cur != lastSeen {
					sharedProps.Add(cur - lastSeen)
					lastSeen = cur
				}
				if used := sharedProps.Load(); used > b {
					return &BudgetError{Resource: "propagations", Limit: b, Used: used}
				}
			}
			return nil
		}
	}

	// slots is the durable per-worker progress: each worker owns its entry
	// and commits an updated copy at every checkpoint boundary; the sink
	// record is a snapshot of the whole array, so any single record can
	// restart every worker. ckMu serializes slot updates with the snapshot
	// and keeps journal appends ordered.
	var ckMu sync.Mutex
	chunk := (m + workers - 1) / workers
	slots := make([]WorkerState, workers)
	for w := range slots {
		lo, hi := w*chunk, min((w+1)*chunk, m)
		if lo >= hi {
			slots[w].Next = m // empty chunk sentinel, see ValidateFor
		} else {
			slots[w].Next = hi - 1
		}
	}
	if rcp := ck.Resume; rcp != nil {
		copy(slots, rcp.Workers)
		// Re-seed the aggregate counters so a resumed run's final snapshot
		// equals an uninterrupted run's.
		var tested, taut int64
		var st bcp.Stats
		for _, ws := range rcp.Workers {
			tested += int64(ws.Tested)
			taut += int64(ws.Tautologies)
			st = addStats(st, ws.Stats)
		}
		cChecked.Add(tested)
		cTaut.Add(taut)
		publishStats(opt.Obs, st)
	}
	commitSlot := func(w int, st WorkerState) error {
		ckMu.Lock()
		defer ckMu.Unlock()
		slots[w] = st
		cCkpt.Inc()
		if ck.Sink == nil {
			return nil
		}
		cp := &Checkpoint{Par: true, Workers: append([]WorkerState(nil), slots...)}
		return ck.Sink(cp.Encode())
	}
	readSlot := func(w int) WorkerState {
		ckMu.Lock()
		defer ckMu.Unlock()
		return slots[w]
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// Each worker gets its own flight-recorder lane, so its spans,
			// chunk claims and BCP counter deltas render as a separate
			// timeline row instead of interleaving with the main lane.
			wtrack := opt.Obs.NewTrack(fmt.Sprintf("worker-%d", w))
			wspan := span.ChildOn(wtrack, fmt.Sprintf("worker-%d [%d,%d)", w, lo, hi))
			defer wspan.End()

			// runAttempt checks trace clauses [seed.Next..lo] on a fresh
			// engine, seeded from the worker's committed slot (the chunk top
			// on a fresh run, the last checkpoint after a resume or a panic
			// retry). A recovered panic reverts the tally to the seed — a
			// retry redoes everything since the last commit, so merging
			// would double count — while a stop error keeps it, so the
			// aggregated partial Result stays accurate.
			// panicked distinguishes a panic in THIS worker's attempt from a
			// stop error merely relayed by the hook (which may itself be
			// another worker's WorkerPanicError).
			runAttempt := func(attempt int, kind EngineKind) (tally chunkTally, err error, panicked bool) {
				seed := readSlot(w)
				seedTally := chunkTally{tested: seed.Tested, taut: seed.Tautologies,
					failed: -1, props: seed.Stats.Propagations}
				tally = seedTally
				defer func() {
					if r := recover(); r != nil {
						tally = seedTally
						err = &WorkerPanicError{Worker: w, Lo: lo, Hi: hi,
							Attempts: attempt + 1, Value: r, Stack: debug.Stack()}
						panicked = true
					}
				}()
				if parallelChunkHook != nil {
					parallelChunkHook(w, lo, hi, attempt)
				}
				wtrack.Instant(fmt.Sprintf("chunk.claim [%d,%d)", lo, hi), int64(attempt))
				startAt := seed.Next
				if startAt < lo {
					// The resumed state says this chunk is already done.
					hChunkProps.Observe(tally.props)
					return tally, nil, false
				}
				statsBase := seed.Stats
				var eng bcp.Propagator
				defer func() {
					if eng != nil {
						// Publish only this attempt's new work; the seed
						// portion was published once during resume setup.
						publishStats(opt.Obs, subStats(addStats(statsBase, eng.Stats()), seed.Stats))
					}
				}()
				totalProps := func() int64 {
					if eng == nil {
						return statsBase.Propagations
					}
					return statsBase.Propagations + eng.Propagations()
				}
				stop := mkStop(totalProps)
				// buildEngine (re)creates the engine with the formula and
				// trace prefix [0, upto) active, folding the previous
				// engine's statistics into statsBase. Under checkpointing it
				// runs at every epoch boundary so interrupted and
				// uninterrupted runs share engine states (see checkpoint.go);
				// clause i is checked after deactivating ids >= i, i.e. we
				// add [0, upto) and walk backwards like the sequential code.
				buildEngine := func(upto int) {
					if eng != nil {
						statsBase = addStats(statsBase, eng.Stats())
					}
					switch kind {
					case EngineCounting:
						eng = bcp.NewCounting(nVars)
					case EngineWatchedScratch:
						eng = bcp.NewEngineNonIncremental(nVars)
					default:
						eng = bcp.NewEngine(nVars)
					}
					eng.SetStop(stop)
					eng.SetTrace(wtrack)
					for _, c := range f.Clauses {
						eng.Add(c)
					}
					for i := 0; i < upto; i++ {
						eng.Add(t.Clauses[i])
					}
				}

				build := wspan.Child("build-db")
				buildEngine(startAt + 1)
				build.End()

				completed := true
				for i := startAt; i >= lo; i-- {
					if ck.enabled() && i != startAt && (hi-1-i)%ck.Every == 0 {
						// Per-worker epoch boundary, anchored at the chunk
						// top: canonical rebuild, then a durable record of
						// every worker's slot.
						buildEngine(i + 1)
						wtrack.Instant("checkpoint.epoch", int64(i))
						st := WorkerState{Next: i, Tested: tally.tested,
							Tautologies: tally.taut, Stats: statsBase}
						if cerr := commitSlot(w, st); cerr != nil {
							tally.props = totalProps()
							return tally, fmt.Errorf("core: checkpoint append: %w", cerr), false
						}
					}
					if failedAt.Load() != int32(m) {
						completed = false
						break // some worker already found a bad clause
					}
					if serr := stop(); serr != nil {
						tally.props = totalProps()
						return tally, serr, false
					}
					eng.Deactivate(bcp.ID(nf + i))
					opt.Progress.Step(1)
					conflict, selfContra := eng.Refute(t.Clauses[i])
					if serr := eng.StopErr(); serr != nil {
						tally.props = totalProps()
						return tally, serr, false
					}
					if selfContra {
						tally.taut++
						cTaut.Inc()
						continue
					}
					tally.tested++
					cChecked.Inc()
					if conflict == bcp.NoConflict {
						tally.failed = int32(i)
						tally.failedClause = t.Clauses[i].Clone()
						// Publish the smallest failing index.
						for {
							cur := failedAt.Load()
							if int32(i) >= cur || failedAt.CompareAndSwap(cur, int32(i)) {
								break
							}
						}
						completed = false
						break
					}
				}
				tally.props = totalProps()
				if completed && ck.enabled() {
					// Chunk-done record (Next = lo-1): a later resume skips
					// this chunk entirely and reuses its final tallies.
					st := WorkerState{Next: lo - 1, Tested: tally.tested,
						Tautologies: tally.taut, Stats: addStats(statsBase, eng.Stats())}
					if cerr := commitSlot(w, st); cerr != nil {
						return tally, fmt.Errorf("core: checkpoint append: %w", cerr), false
					}
				}
				hChunkProps.Observe(tally.props)
				return tally, nil, false
			}

			tally, err, panicked := runAttempt(0, opt.Engine)
			if panicked {
				cPanics.Inc()
				if stopPtr.Load() == nil {
					cRetries.Inc()
					var again bool
					tally, err, again = runAttempt(1, fallbackEngine(opt.Engine))
					if again {
						cPanics.Inc()
					}
				}
			}
			outs[w] = tally
			if err != nil {
				setStopped(err)
			}
		}(w, lo, hi)
	}
	wg.Wait()

	res := &Result{
		OK:           true,
		FailedIndex:  -1,
		StoppedAt:    -1,
		Termination:  term,
		ProofClauses: m,
	}
	for w := range outs {
		res.Tested += outs[w].tested
		res.Tautologies += outs[w].taut
		res.Propagations += outs[w].props
	}
	if p := stopPtr.Load(); p != nil {
		res.Incomplete = true
		countStopErr(opt.Obs, *p)
		return res, *p
	}
	if idx := failedAt.Load(); int(idx) < m {
		res.OK = false
		res.FailedIndex = int(idx)
		res.FailedClause = t.Clauses[idx].Clone()
		for w := range outs {
			if outs[w].failed == idx {
				res.FailedClause = outs[w].failedClause
			}
		}
	}
	return res, nil
}

func errTermination() error {
	return &terminationError{}
}

type terminationError struct{}

func (*terminationError) Error() string {
	return "core: malformed proof trace: trace must end in a final conflicting pair or the empty clause"
}

func (*terminationError) Unwrap() error { return ErrBadTrace }
