package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bcp"
	"repro/internal/cnf"
	"repro/internal/proof"
)

// VerifyParallel is Proof_verification1 fanned out over worker goroutines:
// the check of clause i against F ∪ F*[0..i-1] is independent of every
// other check, so the proof is sliced into contiguous chunks and each
// worker verifies its chunk with a private BCP engine. Marking (and hence
// core extraction and Verification2's skipping) is inherently sequential,
// so this entry point checks every clause and reports no core — it is the
// "maximum-assurance, wall-clock-bound" mode.
//
// workers <= 0 selects GOMAXPROCS.
func VerifyParallel(f *cnf.Formula, t *proof.Trace, engine EngineKind, workers int) (*Result, error) {
	return VerifyParallelOpts(f, t, Options{Mode: ModeCheckAll, Engine: engine}, workers)
}

// VerifyParallelOpts is VerifyParallel with full Options: opt.Engine
// selects the BCP engine, opt.Obs and opt.Progress instrument the run
// (per-worker child spans record each chunk's bounds and wall time;
// counters aggregate across workers). opt.Mode is ignored — parallel
// verification always checks every clause.
func VerifyParallelOpts(f *cnf.Formula, t *proof.Trace, opt Options, workers int) (*Result, error) {
	term := t.Terminates()
	if term == proof.TermNone {
		return nil, errTermination()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := len(t.Clauses)
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		seq := opt
		seq.Mode = ModeCheckAll
		return Verify(f, t, seq)
	}

	span := opt.Obs.StartSpan("verify-parallel")
	defer span.End()
	opt.Obs.Gauge("verify.workers").Set(int64(workers))
	cChecked := opt.Obs.Counter("verify.checked")
	cTaut := opt.Obs.Counter("verify.tautologies")
	hChunkProps := opt.Obs.Histogram("verify.props_per_chunk")

	nVars := f.NumVars
	if mv := t.MaxVar(); int(mv)+1 > nVars {
		nVars = int(mv) + 1
	}

	type chunkOut struct {
		tested, taut int
		failed       int32 // first failed index within the whole trace, -1
		failedClause cnf.Clause
		props        int64
	}
	outs := make([]chunkOut, workers)

	var failedAt atomic.Int32
	failedAt.Store(int32(m)) // sentinel: no failure

	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wspan := span.Child(fmt.Sprintf("worker-%d [%d,%d)", w, lo, hi))
			defer wspan.End()
			var eng bcp.Propagator
			switch opt.Engine {
			case EngineCounting:
				eng = bcp.NewCounting(nVars)
			default:
				eng = bcp.NewEngine(nVars)
			}
			defer func() { publishEngine(opt.Obs, eng) }()
			build := wspan.Child("build-db")
			for _, c := range f.Clauses {
				eng.Add(c)
			}
			// This worker's database: proof clauses strictly before hi;
			// clause i is checked after deactivating ids >= i, i.e. we add
			// [0, hi) and walk backwards exactly like the sequential code.
			nf := len(f.Clauses)
			for i := 0; i < hi; i++ {
				eng.Add(t.Clauses[i])
			}
			build.End()
			out := &outs[w]
			out.failed = -1
			for i := hi - 1; i >= lo; i-- {
				if failedAt.Load() != int32(m) {
					break // some worker already found a bad clause
				}
				eng.Deactivate(bcp.ID(nf + i))
				opt.Progress.Step(1)
				conflict, selfContra := eng.Refute(t.Clauses[i])
				if selfContra {
					out.taut++
					cTaut.Inc()
					continue
				}
				out.tested++
				cChecked.Inc()
				if conflict == bcp.NoConflict {
					out.failed = int32(i)
					out.failedClause = t.Clauses[i].Clone()
					// Publish the smallest failing index.
					for {
						cur := failedAt.Load()
						if int32(i) >= cur || failedAt.CompareAndSwap(cur, int32(i)) {
							break
						}
					}
					break
				}
			}
			out.props = eng.Propagations()
			hChunkProps.Observe(out.props)
		}(w, lo, hi)
	}
	wg.Wait()

	res := &Result{
		OK:           true,
		FailedIndex:  -1,
		Termination:  term,
		ProofClauses: m,
	}
	for w := range outs {
		res.Tested += outs[w].tested
		res.Tautologies += outs[w].taut
		res.Propagations += outs[w].props
	}
	if idx := failedAt.Load(); int(idx) < m {
		res.OK = false
		res.FailedIndex = int(idx)
		for w := range outs {
			if outs[w].failed == idx {
				res.FailedClause = outs[w].failedClause
			}
		}
	}
	return res, nil
}

func errTermination() error {
	return &terminationError{}
}

type terminationError struct{}

func (*terminationError) Error() string {
	return "core: malformed proof trace: trace must end in a final conflicting pair or the empty clause"
}

func (*terminationError) Unwrap() error { return ErrBadTrace }
