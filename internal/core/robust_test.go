package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/obs"
	"repro/internal/proof"
)

// longChain builds F = {x1, ¬x1∨x2, ..., ¬x_{n-1}∨x_n, ¬x_n} together with
// the valid proof [x_2], ..., [x_n], [¬x_n]: checking clause i propagates a
// prefix of the implication chain, so total verification work grows as n²
// — a cheap-to-build instance that is arbitrarily slow to verify, which is
// exactly what cancellation and budget tests need.
func longChain(n int) (*cnf.Formula, *proof.Trace) {
	f := cnf.NewFormula(n)
	f.Clauses = append(f.Clauses, cl(1))
	for i := 1; i < n; i++ {
		f.Clauses = append(f.Clauses, cl(-i, i+1))
	}
	f.Clauses = append(f.Clauses, cl(-n))
	tr := proof.New()
	tr.Resolutions = nil
	for i := 2; i <= n; i++ {
		tr.Clauses = append(tr.Clauses, cl(i))
	}
	tr.Clauses = append(tr.Clauses, cl(-n))
	return f, tr
}

func TestLongChainIsValid(t *testing.T) {
	f, tr := longChain(50)
	for _, opt := range allModes() {
		res, err := Verify(f, tr, opt)
		if err != nil || !res.OK {
			t.Fatalf("%v/%v: err=%v res=%+v", opt.Mode, opt.Engine, err, res)
		}
	}
	res, err := VerifyParallel(f, tr, EngineWatched, 4)
	if err != nil || !res.OK {
		t.Fatalf("parallel: err=%v res=%+v", err, res)
	}
}

func TestVerifyPreCancelled(t *testing.T) {
	f, tr := longChain(50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reg := obs.New()
	res, err := Verify(f, tr, Options{Ctx: ctx, Obs: reg})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res == nil || !res.Incomplete {
		t.Fatalf("want incomplete partial result, got %+v", res)
	}
	if got := reg.Counter("verify.cancelled").Value(); got != 1 {
		t.Fatalf("verify.cancelled = %d", got)
	}
}

func TestVerifyExpiredDeadline(t *testing.T) {
	f, tr := longChain(50)
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	res, err := Verify(f, tr, Options{Ctx: ctx})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if res == nil || !res.Incomplete || res.StoppedAt < 0 {
		t.Fatalf("want incomplete partial result with StoppedAt, got %+v", res)
	}
}

func TestVerifyPropagationBudget(t *testing.T) {
	for _, engine := range []EngineKind{EngineWatched, EngineCounting} {
		f, tr := longChain(400)
		reg := obs.New()
		res, err := Verify(f, tr, Options{
			Engine: engine,
			Obs:    reg,
			Budget: Budget{MaxPropagations: 500},
		})
		var be *BudgetError
		if !errors.As(err, &be) || !errors.Is(err, ErrBudget) {
			t.Fatalf("%v: err = %v, want *BudgetError", engine, err)
		}
		if be.Resource != "propagations" {
			t.Fatalf("%v: resource = %q", engine, be.Resource)
		}
		if !res.Incomplete {
			t.Fatalf("%v: result not marked incomplete: %+v", engine, res)
		}
		if got := reg.Counter("verify.budget_exceeded").Value(); got != 1 {
			t.Fatalf("%v: verify.budget_exceeded = %d", engine, got)
		}
	}
}

func TestVerifyTraceAndMemoryBudgets(t *testing.T) {
	f, tr := longChain(100)
	if _, err := Verify(f, tr, Options{Budget: Budget{MaxTraceClauses: 5}}); !errors.Is(err, ErrBudget) {
		t.Fatalf("trace-clause budget: err = %v", err)
	}
	if _, err := Verify(f, tr, Options{Budget: Budget{MaxMemoryBytes: 64}}); !errors.Is(err, ErrBudget) {
		t.Fatalf("memory budget: err = %v", err)
	}
	// Generous budgets never trip.
	res, err := Verify(f, tr, Options{Budget: Budget{
		MaxPropagations: 1 << 40, MaxTraceClauses: 1 << 30, MaxMemoryBytes: 1 << 40,
	}})
	if err != nil || !res.OK {
		t.Fatalf("generous budgets: err=%v res=%+v", err, res)
	}
}

func TestVerifyParallelBudget(t *testing.T) {
	f, tr := longChain(600)
	res, err := VerifyParallelOpts(f, tr, Options{Budget: Budget{MaxPropagations: 500}}, 4)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if res == nil || !res.Incomplete {
		t.Fatalf("want incomplete partial result, got %+v", res)
	}
}

// TestVerifyParallelCancelLatency cancels a parallel verification mid-run
// and requires the call to return ErrCancelled well within the 100ms bound
// the robustness contract promises.
func TestVerifyParallelCancelLatency(t *testing.T) {
	f, tr := longChain(4000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg := obs.New()

	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := VerifyParallelOpts(f, tr, Options{Ctx: ctx, Obs: reg}, 4)
		done <- outcome{res, err}
	}()

	// Wait until the workers are demonstrably checking clauses, then pull
	// the plug.
	checked := reg.Counter("verify.checked")
	for deadline := time.Now().Add(5 * time.Second); checked.Value() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("workers never started checking")
		}
		time.Sleep(100 * time.Microsecond)
	}
	start := time.Now()
	cancel()
	out := <-done
	latency := time.Since(start)

	if out.err == nil {
		t.Skip("verification finished before cancellation took effect")
	}
	if !errors.Is(out.err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", out.err)
	}
	if out.res == nil || !out.res.Incomplete {
		t.Fatalf("want incomplete partial result, got %+v", out.res)
	}
	if latency > 100*time.Millisecond {
		t.Fatalf("cancellation latency %v exceeds 100ms", latency)
	}
}

func TestParallelWorkerPanicIsRecoveredAndRetried(t *testing.T) {
	defer func() { parallelChunkHook = nil }()
	f, tr := longChain(200)

	// Panic on worker 1's first attempt only: the retry on the fallback
	// engine must rescue the chunk and the overall run.
	parallelChunkHook = func(worker, lo, hi, attempt int) {
		if worker == 1 && attempt == 0 {
			panic("injected: watched engine corrupted")
		}
	}
	reg := obs.New()
	res, err := VerifyParallelOpts(f, tr, Options{Obs: reg}, 4)
	if err != nil || !res.OK {
		t.Fatalf("run with one panicked attempt: err=%v res=%+v", err, res)
	}
	if res.Tested != tr.Len() {
		t.Fatalf("tested %d of %d clauses", res.Tested, tr.Len())
	}
	if got := reg.Counter("verify.worker_panics").Value(); got != 1 {
		t.Fatalf("verify.worker_panics = %d", got)
	}
	if got := reg.Counter("verify.chunk_retries").Value(); got != 1 {
		t.Fatalf("verify.chunk_retries = %d", got)
	}
}

func TestParallelWorkerPanicExhaustsRetriesAndNamesChunk(t *testing.T) {
	defer func() { parallelChunkHook = nil }()
	f, tr := longChain(200)

	parallelChunkHook = func(worker, lo, hi, attempt int) {
		if worker == 1 {
			panic("injected: both engines corrupted")
		}
	}
	reg := obs.New()
	res, err := VerifyParallelOpts(f, tr, Options{Obs: reg}, 4)
	var wp *WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("err = %v, want *WorkerPanicError", err)
	}
	if wp.Worker != 1 || wp.Lo >= wp.Hi || wp.Attempts != 2 {
		t.Fatalf("panic attribution: %+v", wp)
	}
	if !strings.Contains(wp.Error(), "worker 1") || !strings.Contains(wp.Error(), "chunk") {
		t.Fatalf("error does not name the chunk: %v", wp)
	}
	if len(wp.Stack) == 0 {
		t.Fatal("panic error carries no stack")
	}
	if res == nil || !res.Incomplete {
		t.Fatalf("want incomplete partial result, got %+v", res)
	}
	if got := reg.Counter("verify.worker_panics").Value(); got != 2 {
		t.Fatalf("verify.worker_panics = %d", got)
	}
}

func TestEstimateVerifyBytesScales(t *testing.T) {
	fSmall, trSmall := longChain(10)
	fBig, trBig := longChain(1000)
	small := EstimateVerifyBytes(fSmall, trSmall)
	big := EstimateVerifyBytes(fBig, trBig)
	if small <= 0 || big <= small {
		t.Fatalf("estimates: small=%d big=%d", small, big)
	}
}
