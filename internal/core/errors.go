package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cnf"
	"repro/internal/obs"
	"repro/internal/proof"
)

// Sentinel errors for runs that stop before reaching a verdict. All of them
// come back alongside a partial Result (Result.Incomplete == true), so
// callers can report how far the run got.
var (
	// ErrCancelled: Options.Ctx was cancelled.
	ErrCancelled = errors.New("core: verification cancelled")
	// ErrDeadline: Options.Ctx's deadline passed.
	ErrDeadline = errors.New("core: verification deadline exceeded")
	// ErrBudget is the errors.Is target of every *BudgetError.
	ErrBudget = errors.New("core: resource budget exceeded")
)

// Budget bounds the resources a verification may consume. Zero fields are
// unlimited. Exceeding any bound stops the run with a *BudgetError wrapped
// around ErrBudget and a partial Result — a graceful "too expensive" outcome
// distinct from both rejection and structural failure.
type Budget struct {
	// MaxPropagations bounds the total number of BCP-implied assignments
	// over the whole run (summed across workers in parallel mode).
	MaxPropagations int64
	// MaxTraceClauses rejects traces longer than this before any engine
	// state is built.
	MaxTraceClauses int
	// MaxMemoryBytes bounds the *estimated* footprint of the clause
	// database(s), per EstimateVerifyBytes (times workers in parallel
	// mode). An estimate, not an enforcement of the process RSS.
	MaxMemoryBytes int64
}

// BudgetError reports which resource bound a run exceeded.
// errors.Is(err, ErrBudget) matches it.
type BudgetError struct {
	Resource string // "propagations" | "trace-clauses" | "memory-estimate"
	Limit    int64
	Used     int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("core: %s budget exceeded: %d > %d", e.Resource, e.Used, e.Limit)
}

func (e *BudgetError) Unwrap() error { return ErrBudget }

// WorkerPanicError reports a panic inside a parallel verification worker,
// attributed to the worker and the half-open chunk of trace indices it was
// checking. Attempts counts how many engines tried the chunk (primary plus
// fallback retries) before giving up.
type WorkerPanicError struct {
	Worker   int
	Lo, Hi   int
	Attempts int
	Value    any
	Stack    []byte
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("core: worker %d panicked verifying trace chunk [%d,%d) after %d attempt(s): %v",
		e.Worker, e.Lo, e.Hi, e.Attempts, e.Value)
}

// ctxErr maps a context's state onto the package's sentinel errors; nil
// context or live context map to nil.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	switch err := ctx.Err(); err {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return ErrDeadline
	default:
		return ErrCancelled
	}
}

// countStopErr bumps the obs counter matching the reason a run stopped
// early; unknown reasons (worker panics) land on verify.internal_errors.
// The same classification lands in the flight recorder as a stop.* instant,
// so the trace timeline shows exactly when and why a run was cut short.
func countStopErr(reg *obs.Registry, err error) {
	var what string
	switch {
	case errors.Is(err, ErrDeadline):
		what = "deadline_exceeded"
	case errors.Is(err, ErrCancelled):
		what = "cancelled"
	case errors.Is(err, ErrBudget):
		what = "budget_exceeded"
	default:
		what = "internal_errors"
	}
	reg.Counter("verify." + what).Inc()
	reg.TraceTrack().Instant("stop."+what, 0)
}

// verifyStopFunc builds the stop hook shared by a check loop and its BCP
// engine: context cancellation/deadline first, then the propagation budget
// read through props (which may aggregate several engines).
func verifyStopFunc(ctx context.Context, maxProps int64, props func() int64) func() error {
	return func() error {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		if maxProps > 0 {
			if used := props(); used > maxProps {
				return &BudgetError{Resource: "propagations", Limit: maxProps, Used: used}
			}
		}
		return nil
	}
}

// EstimateVerifyBytes estimates one BCP engine's memory footprint for
// verifying t against f: per-literal storage plus per-clause and per-variable
// bookkeeping (assignments, reasons, watch/occurrence list headers). The
// constants are deliberately round — the estimate guards against
// order-of-magnitude surprises (a 10 GB trace on a 4 GB box), not byte-exact
// accounting.
func EstimateVerifyBytes(f *cnf.Formula, t *proof.Trace) int64 {
	const (
		bytesPerLit    = 12 // clause storage + one watch/occurrence entry
		bytesPerClause = 56 // clause header + id slots in aux lists
		bytesPerVar    = 64 // assign/reason/seen + two watch list headers
	)
	nVars := int64(f.NumVars)
	if mv := t.MaxVar(); int64(mv)+1 > nVars {
		nVars = int64(mv) + 1
	}
	var lits int64
	for _, c := range f.Clauses {
		lits += int64(len(c))
	}
	lits += t.NumLiterals()
	nClauses := int64(len(f.Clauses) + len(t.Clauses))
	return lits*bytesPerLit + nClauses*bytesPerClause + nVars*bytesPerVar
}

// checkBudgetUpfront enforces the bounds knowable before building engine
// state. workers scales the memory estimate (each parallel worker builds a
// private database).
func checkBudgetUpfront(f *cnf.Formula, t *proof.Trace, b Budget, workers int) error {
	if b.MaxTraceClauses > 0 && len(t.Clauses) > b.MaxTraceClauses {
		return &BudgetError{Resource: "trace-clauses", Limit: int64(b.MaxTraceClauses), Used: int64(len(t.Clauses))}
	}
	if b.MaxMemoryBytes > 0 {
		if est := EstimateVerifyBytes(f, t) * int64(workers); est > b.MaxMemoryBytes {
			return &BudgetError{Resource: "memory-estimate", Limit: b.MaxMemoryBytes, Used: est}
		}
	}
	return nil
}
