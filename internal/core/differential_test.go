package core

import (
	"fmt"
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/proof"
	"repro/internal/solver"
)

// Differential coverage for the incremental watched engine: real recorded
// proofs (solver runs over random and pigeonhole UNSAT formulas) are checked
// by the old-behavior counting engine and the new incremental watched engine
// across pv1/pv2 × sequential/parallel × checkpoint-resume. Verdicts must
// agree engine-to-engine; cores and UsedProof bitmaps are engine-dependent
// (conflict-clause identity depends on propagation order), so each engine's
// core/trimmed proof is instead checked for validity — the trimmed formula
// plus the marked trace clauses must re-verify on their own — and for
// run-to-run determinism.

func diffInstances() []gen.Instance {
	return []gen.Instance{
		gen.RandUnsat(1, 14),
		gen.RandUnsat(7, 16),
		gen.PHP(4),
	}
}

func solveTrace(t *testing.T, inst gen.Instance) *proof.Trace {
	t.Helper()
	st, tr, _, _, err := solver.Solve(inst.F, solver.Options{MaxConflicts: 500_000})
	if err != nil {
		t.Fatalf("%s: %v", inst.Name, err)
	}
	if st != solver.Unsat {
		t.Fatalf("%s: solver returned %v", inst.Name, st)
	}
	return tr
}

func cloneTrace(tr *proof.Trace) *proof.Trace {
	out := proof.New()
	out.Resolutions = tr.Resolutions
	for _, c := range tr.Clauses {
		out.Clauses = append(out.Clauses, c.Clone())
	}
	return out
}

type diffCfg struct {
	mode    Mode
	workers int // 0: sequential
	every   int // checkpoint interval; 0: disabled
}

func (c diffCfg) String() string {
	runner := "seq"
	if c.workers > 0 {
		runner = fmt.Sprintf("par%d", c.workers)
	}
	return fmt.Sprintf("%v-%s-ck%d", c.mode, runner, c.every)
}

func diffRun(t *testing.T, f *cnf.Formula, tr *proof.Trace, cfg diffCfg, engine EngineKind) *Result {
	t.Helper()
	opt := Options{Mode: cfg.mode, Engine: engine}
	if cfg.every > 0 {
		opt.Checkpoint = CheckpointConfig{Every: cfg.every}
	}
	var res *Result
	var err error
	if cfg.workers > 0 {
		res, err = VerifyParallelOpts(f, tr, opt, cfg.workers)
	} else {
		res, err = Verify(f, tr, opt)
	}
	if err != nil {
		t.Fatalf("%v/%v: %v", cfg, engine, err)
	}
	return res
}

// verdict is the engine-independent slice of a Result: whether the proof was
// accepted and where it failed. Tested/core/marks legitimately differ
// between engines.
func verdict(res *Result) string {
	return fmt.Sprintf("ok=%v failed=%d term=%v", res.OK, res.FailedIndex, res.Termination)
}

// checkTrimmedReverifies asserts the validity of a marked-mode result: the
// core clauses plus the UsedProof-marked trace clauses must form a
// self-contained refutation (every marked clause is RUP against core +
// earlier marked clauses — the paper's §4 trimming argument).
func checkTrimmedReverifies(t *testing.T, f *cnf.Formula, tr *proof.Trace, res *Result, label string) {
	t.Helper()
	if !res.OK {
		t.Fatalf("%s: proof rejected (failed=%d)", label, res.FailedIndex)
	}
	if len(res.Core) == 0 || len(res.UsedProof) != len(tr.Clauses) {
		t.Fatalf("%s: core=%d used=%d/%d", label, len(res.Core), len(res.UsedProof), len(tr.Clauses))
	}
	f2 := cnf.NewFormula(f.NumVars)
	for _, i := range res.Core {
		f2.AddClause(f.Clauses[i].Clone())
	}
	tr2 := proof.New()
	tr2.Resolutions = nil
	for i, c := range tr.Clauses {
		if res.UsedProof[i] {
			tr2.Clauses = append(tr2.Clauses, c.Clone())
		}
	}
	res2, err := Verify(f2, tr2, Options{Mode: ModeCheckAll})
	if err != nil {
		t.Fatalf("%s: trimmed re-verification: %v", label, err)
	}
	if !res2.OK {
		t.Fatalf("%s: trimmed proof rejected at %d — core/UsedProof invalid", label, res2.FailedIndex)
	}
}

func TestDifferentialEnginesAgree(t *testing.T) {
	cfgs := []diffCfg{
		{ModeCheckMarked, 0, 0},
		{ModeCheckAll, 0, 0},
		{ModeCheckMarked, 3, 0},
		{ModeCheckAll, 3, 0},
		{ModeCheckMarked, 0, 5},
		{ModeCheckAll, 0, 5},
		{ModeCheckMarked, 3, 4},
	}
	for _, inst := range diffInstances() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			tr := solveTrace(t, inst)
			for _, cfg := range cfgs {
				watched := diffRun(t, inst.F, tr, cfg, EngineWatched)
				counting := diffRun(t, inst.F, tr, cfg, EngineCounting)
				if vw, vc := verdict(watched), verdict(counting); vw != vc {
					t.Errorf("%v: watched %q vs counting %q", cfg, vw, vc)
				}
				if !watched.OK {
					t.Errorf("%v: valid proof rejected at %d", cfg, watched.FailedIndex)
				}
				// Each engine must be deterministic run-to-run, including
				// its core and marks.
				again := diffRun(t, inst.F, tr, cfg, EngineWatched)
				if a, b := resultFingerprint(watched), resultFingerprint(again); a != b {
					t.Errorf("%v: watched engine not deterministic:\n%s\n%s", cfg, a, b)
				}
			}

			// Core and trimmed-proof validity, per engine (sequential
			// marked mode is what extracts them).
			for _, engine := range []EngineKind{EngineWatched, EngineCounting} {
				res := diffRun(t, inst.F, tr, diffCfg{ModeCheckMarked, 0, 0}, engine)
				checkTrimmedReverifies(t, inst.F, tr, res, fmt.Sprintf("%s/%v", inst.Name, engine))
			}
		})
	}
}

// TestDifferentialCheckpointResume: for both engines and both modes, a run
// resumed from a mid-stream checkpoint record must reproduce the
// uninterrupted checkpointed run byte-for-byte (full fingerprint, not just
// the verdict).
func TestDifferentialCheckpointResume(t *testing.T) {
	inst := gen.RandUnsat(3, 14)
	tr := solveTrace(t, inst)
	const every = 4
	for _, engine := range []EngineKind{EngineWatched, EngineCounting} {
		for _, mode := range []Mode{ModeCheckMarked, ModeCheckAll} {
			t.Run(fmt.Sprintf("%v-%v", engine, mode), func(t *testing.T) {
				var records [][]byte
				optA := Options{Mode: mode, Engine: engine,
					Checkpoint: CheckpointConfig{Every: every, Sink: func(p []byte) error {
						records = append(records, append([]byte(nil), p...))
						return nil
					}}}
				resA, err := Verify(inst.F, tr, optA)
				if err != nil {
					t.Fatal(err)
				}
				if len(records) == 0 {
					t.Fatal("no checkpoint records emitted")
				}
				for _, rec := range records {
					cp, err := DecodeCheckpoint(rec)
					if err != nil {
						t.Fatal(err)
					}
					resB, err := Verify(inst.F, tr, Options{Mode: mode, Engine: engine,
						Checkpoint: CheckpointConfig{Every: every, Resume: cp}})
					if err != nil {
						t.Fatal(err)
					}
					if a, b := resultFingerprint(resA), resultFingerprint(resB); a != b {
						t.Fatalf("resume diverged:\nuninterrupted %s\nresumed       %s", a, b)
					}
				}
			})
		}
	}
}

// TestDifferentialCorruptedProof: on a proof with one corrupted clause the
// engines must agree under ModeCheckAll (which checks every clause, so the
// failure point is engine-independent). ModeCheckMarked results must at
// least be deterministic per engine.
func TestDifferentialCorruptedProof(t *testing.T) {
	inst := gen.RandUnsat(5, 14)
	tr := solveTrace(t, inst)
	if len(tr.Clauses) < 3 {
		t.Skipf("trace too short (%d) to corrupt meaningfully", len(tr.Clauses))
	}
	bad := cloneTrace(tr)
	mid := len(bad.Clauses) / 3
	for len(bad.Clauses[mid]) == 0 {
		mid++
	}
	bad.Clauses[mid][0] = bad.Clauses[mid][0].Neg()

	for _, cfg := range []diffCfg{{ModeCheckAll, 0, 0}, {ModeCheckAll, 3, 0}, {ModeCheckAll, 0, 5}} {
		watched := diffRun(t, inst.F, bad, cfg, EngineWatched)
		counting := diffRun(t, inst.F, bad, cfg, EngineCounting)
		if vw, vc := verdict(watched), verdict(counting); vw != vc {
			t.Errorf("%v: watched %q vs counting %q", cfg, vw, vc)
		}
	}
	for _, engine := range []EngineKind{EngineWatched, EngineCounting} {
		a := diffRun(t, inst.F, bad, diffCfg{ModeCheckMarked, 0, 0}, engine)
		b := diffRun(t, inst.F, bad, diffCfg{ModeCheckMarked, 0, 0}, engine)
		if fa, fb := resultFingerprint(a), resultFingerprint(b); fa != fb {
			t.Errorf("%v: nondeterministic on corrupted proof:\n%s\n%s", engine, fa, fb)
		}
	}
}
