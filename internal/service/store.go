package service

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cnf"
	"repro/internal/proof"
)

// Store persists jobs, their input artifacts, and their results. The daemon
// is written against this interface so durability is pluggable: MemStore
// for tests and ephemeral deployments, DiskStore for crash-recoverable
// service. The contract that matters for fault tolerance:
//
//   - Create is the admission commit point. When it returns nil the job —
//     including its artifacts — is owned by the store; for a durable store
//     that means it survives a crash. When it returns an error nothing of
//     the job remains (the HTTP layer then releases the queue slot and the
//     client retries).
//   - SetResult is the completion commit point, atomic per job: after a
//     crash a job either has its complete result or none, never a torn one.
//   - Incomplete lists every created job without a result, in admission
//     order — exactly the set a restarted daemon must re-run.
type Store interface {
	// Create admits a job with its parsed artifacts.
	Create(job *Job, f *cnf.Formula, tr *proof.Trace) error
	// Job returns the admission record, or ErrUnknownJob.
	Job(id string) (*Job, error)
	// Artifacts returns the job's formula and trace for verification.
	// Replica records have no trace and return ErrUnknownJob here.
	Artifacts(id string) (*cnf.Formula, *proof.Trace, error)
	// Formula returns just the job's formula. Unlike Artifacts it works
	// for replica records too — the LRAT recheck path needs the formula
	// but never the DRUP trace.
	Formula(id string) (*cnf.Formula, error)
	// SetResult records the job's terminal result.
	SetResult(id string, jr *JobResult) error
	// Result returns the recorded result, (nil, nil) when none yet, or
	// ErrUnknownJob for an unknown id.
	Result(id string) (*JobResult, error)
	// SetLRAT persists the job's hinted (LRAT) proof — the by-product of a
	// verified run that makes re-verification propagation-free. Written
	// before SetResult, so a completed verified job always has its hints.
	SetLRAT(id string, lrat []byte) error
	// LRAT returns the stored hinted proof, (nil, nil) when none was
	// recorded, or ErrUnknownJob for an unknown id.
	LRAT(id string) ([]byte, error)
	// PutReplica is the replication hook: it records a verdict computed
	// elsewhere — the job record (Replica set), the formula, the verdict
	// and its hinted proof — atomically enough that after a crash the
	// replica either exists complete or not at all. The caller has already
	// validated the verdict against the hints (lrat.Validate); the store
	// only persists.
	PutReplica(job *Job, f *cnf.Formula, jr *JobResult, lrat []byte) error
	// Incomplete lists created-but-unfinished jobs in Seq order. Replica
	// records are never included: they are not runnable work (shard-aware
	// recovery — a restarted shard re-runs its own jobs, not copies of
	// other shards' verdicts).
	Incomplete() ([]*Job, error)
	// MaxSeq returns the largest admission sequence number ever created, so
	// a restarted daemon continues the sequence instead of reusing it.
	MaxSeq() (uint64, error)
	// JournalPath returns where the job's checkpoint journal lives, or ""
	// when the store offers no durable journal (checkpointing is skipped).
	JournalPath(id string) string
	// Ping probes writability — the readiness signal for /readyz.
	Ping() error
}

// MemStore is the in-memory Store: no durability, no journals. A daemon on
// MemStore still gets bounded queues, quotas and panic isolation — it just
// recovers nothing after a restart.
type MemStore struct {
	mu      sync.RWMutex
	jobs    map[string]*memJob
	results map[string]*JobResult
	lrats   map[string][]byte
}

type memJob struct {
	job *Job
	f   *cnf.Formula
	tr  *proof.Trace
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		jobs:    make(map[string]*memJob),
		results: make(map[string]*JobResult),
		lrats:   make(map[string][]byte),
	}
}

func (s *MemStore) Create(job *Job, f *cnf.Formula, tr *proof.Trace) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[job.ID] = &memJob{job: job, f: f, tr: tr}
	return nil
}

func (s *MemStore) Job(id string) (*Job, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	mj, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return mj.job, nil
}

func (s *MemStore) Artifacts(id string) (*cnf.Formula, *proof.Trace, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	mj, ok := s.jobs[id]
	if !ok || mj.tr == nil { // replica records carry no trace
		return nil, nil, ErrUnknownJob
	}
	return mj.f, mj.tr, nil
}

func (s *MemStore) Formula(id string) (*cnf.Formula, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	mj, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return mj.f, nil
}

func (s *MemStore) PutReplica(job *Job, f *cnf.Formula, jr *JobResult, lrat []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.jobs[job.ID]; ok && !existing.job.Replica {
		return fmt.Errorf("service: job %s exists locally; refusing replica overwrite", job.ID)
	}
	s.jobs[job.ID] = &memJob{job: job, f: f}
	s.results[job.ID] = jr
	s.lrats[job.ID] = append([]byte(nil), lrat...)
	return nil
}

func (s *MemStore) SetResult(id string, jr *JobResult) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		return ErrUnknownJob
	}
	s.results[id] = jr
	return nil
}

func (s *MemStore) Result(id string) (*JobResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.jobs[id]; !ok {
		return nil, ErrUnknownJob
	}
	return s.results[id], nil
}

func (s *MemStore) SetLRAT(id string, lrat []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		return ErrUnknownJob
	}
	s.lrats[id] = append([]byte(nil), lrat...)
	return nil
}

func (s *MemStore) LRAT(id string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.jobs[id]; !ok {
		return nil, ErrUnknownJob
	}
	return s.lrats[id], nil
}

func (s *MemStore) Incomplete() ([]*Job, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Job
	for id, mj := range s.jobs {
		if mj.job.Replica {
			continue
		}
		if _, done := s.results[id]; !done {
			out = append(out, mj.job)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

func (s *MemStore) MaxSeq() (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var max uint64
	for _, mj := range s.jobs {
		if mj.job.Seq > max {
			max = mj.job.Seq
		}
	}
	return max, nil
}

func (s *MemStore) JournalPath(string) string { return "" }

func (s *MemStore) Ping() error { return nil }
