package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/proof"
)

// encodeProblem renders a formula/trace pair as upload text.
func encodeProblem(t *testing.T, f *cnf.Formula, tr *proof.Trace) (string, string) {
	t.Helper()
	var fb, pb bytes.Buffer
	if err := cnf.WriteDimacs(&fb, f); err != nil {
		t.Fatal(err)
	}
	if err := proof.Write(&pb, tr); err != nil {
		t.Fatal(err)
	}
	return fb.String(), pb.String()
}

// multipartBody builds an upload body from named parts.
func multipartBody(t *testing.T, parts map[string]string) (*bytes.Buffer, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for name, content := range parts {
		w, err := mw.CreateFormFile(name, name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf, mw.FormDataContentType()
}

// newTestDaemon builds, recovers and starts a daemon, and registers a
// drain as cleanup so worker goroutines never outlive the test.
func newTestDaemon(t *testing.T, opt Options) *Daemon {
	t.Helper()
	if opt.Store == nil {
		opt.Store = NewMemStore()
	}
	if opt.Obs == nil {
		opt.Obs = obs.New()
	}
	d, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := d.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return d
}

func doRequest(h http.Handler, req *http.Request) *httptest.ResponseRecorder {
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	return rw
}

func submitRaw(t *testing.T, h http.Handler, body *bytes.Buffer, contentType, tenant string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/jobs", body)
	req.Header.Set("Content-Type", contentType)
	if tenant != "" {
		req.Header.Set(tenantHeader, tenant)
	}
	return doRequest(h, req)
}

func submitProblem(t *testing.T, h http.Handler, f *cnf.Formula, tr *proof.Trace, tenant string) string {
	t.Helper()
	fs, ps := encodeProblem(t, f, tr)
	body, ct := multipartBody(t, map[string]string{"formula": fs, "proof": ps})
	rw := submitRaw(t, h, body, ct, tenant)
	if rw.Code != http.StatusAccepted {
		t.Fatalf("submit = %d %s, want 202", rw.Code, rw.Body.String())
	}
	var resp submitResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp.ID
}

// waitDone polls the daemon until the job has a result.
func waitDone(t *testing.T, d *Daemon, id string) *JobResult {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, jr, err := d.Status(id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if st == StateDone && jr != nil {
			return jr
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

func waitState(t *testing.T, d *Daemon, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st, _, _ := d.Status(id); st == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, want)
}

func TestDaemonVerifiesEndToEnd(t *testing.T) {
	d := newTestDaemon(t, Options{Workers: 2})
	h := d.Handler(false)
	f, tr := chainProblem(20)
	id := submitProblem(t, h, f, tr, "")

	jr := waitDone(t, d, id)
	if jr.Status != StatusVerified || jr.Code != 0 || jr.Attempts != 1 {
		t.Fatalf("result = %+v, want verified/0/1 attempt", jr)
	}
	if jr.Verdict == nil || jr.Verdict.Verdict != "verified" || jr.Verdict.ProofClauses != tr.Len() {
		t.Fatalf("verdict = %+v", jr.Verdict)
	}
	if len(jr.Core) != f.NumClauses() {
		t.Fatalf("core size = %d, want %d (the whole chain is needed)", len(jr.Core), f.NumClauses())
	}

	// The status endpoint serves the same result.
	rw := doRequest(h, httptest.NewRequest("GET", "/v1/jobs/"+id, nil))
	if rw.Code != http.StatusOK || !strings.Contains(rw.Body.String(), `"status":"verified"`) {
		t.Fatalf("GET job = %d %s", rw.Code, rw.Body.String())
	}
	// The core endpoint serves DIMACS equal to the (fully needed) formula.
	rw = doRequest(h, httptest.NewRequest("GET", "/v1/jobs/"+id+"/core", nil))
	var want bytes.Buffer
	if err := cnf.WriteDimacs(&want, f); err != nil {
		t.Fatal(err)
	}
	if rw.Code != http.StatusOK || rw.Body.String() != want.String() {
		t.Fatalf("GET core = %d\n%s\nwant\n%s", rw.Code, rw.Body.String(), want.String())
	}
}

func TestDaemonRejectsBadProof(t *testing.T) {
	d := newTestDaemon(t, Options{})
	h := d.Handler(false)
	// x2 is not implied by the formula {x1}: the proof must be rejected,
	// and rejection is a verdict (200 on GET), not an error.
	mk := func(lits ...int) cnf.Clause {
		c := make(cnf.Clause, len(lits))
		for i, l := range lits {
			c[i] = cnf.FromDimacs(l)
		}
		return c
	}
	f := cnf.NewFormula(2)
	f.Clauses = append(f.Clauses, mk(1))
	tr := proof.New()
	tr.Resolutions = nil
	tr.Clauses = append(tr.Clauses, mk(2), mk(-2))

	id := submitProblem(t, h, f, tr, "")
	jr := waitDone(t, d, id)
	if jr.Status != StatusRejected || jr.Code != 2 {
		t.Fatalf("result = %+v, want rejected/2", jr)
	}
	// Marked-mode checking runs backward, so [-2] at index 1 fails first.
	if jr.Verdict == nil || jr.Verdict.FailedIndex != 1 {
		t.Fatalf("verdict = %+v, want failed_index 1", jr.Verdict)
	}
	// No core for a rejected proof.
	rw := doRequest(h, httptest.NewRequest("GET", "/v1/jobs/"+id+"/core", nil))
	if rw.Code != http.StatusConflict {
		t.Fatalf("GET core of rejected = %d, want 409", rw.Code)
	}
}

func TestDaemonAdmissionGate(t *testing.T) {
	d := newTestDaemon(t, Options{
		FormulaLimits: cnf.ParseLimits{MaxClauses: 8},
	})
	h := d.Handler(false)
	f, tr := chainProblem(5)
	fs, ps := encodeProblem(t, f, tr)
	fBig, trBig := chainProblem(50)
	fsBig, _ := encodeProblem(t, fBig, trBig)
	noTerm := "2 0\n3 0\n" // no final pair, no empty clause

	cases := []struct {
		name  string
		parts map[string]string
		code  int
	}{
		{"missing proof", map[string]string{"formula": fs}, http.StatusBadRequest},
		{"missing formula", map[string]string{"proof": ps}, http.StatusBadRequest},
		{"unknown part", map[string]string{"formula": fs, "proof": ps, "extra": "x"}, http.StatusBadRequest},
		{"malformed formula", map[string]string{"formula": "p cnf zzz\n", "proof": ps}, http.StatusBadRequest},
		{"over formula limit", map[string]string{"formula": fsBig, "proof": ps}, http.StatusRequestEntityTooLarge},
		{"non-terminating trace", map[string]string{"formula": fs, "proof": noTerm}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, ct := multipartBody(t, tc.parts)
			rw := submitRaw(t, h, body, ct, "")
			if rw.Code != tc.code {
				t.Fatalf("code = %d %s, want %d", rw.Code, rw.Body.String(), tc.code)
			}
			if !strings.Contains(rw.Body.String(), string(StatusBadInput)) {
				t.Fatalf("body %q does not carry status bad_input", rw.Body.String())
			}
		})
	}
	t.Run("wrong content type", func(t *testing.T) {
		rw := submitRaw(t, h, bytes.NewBufferString("junk"), "text/plain", "")
		if rw.Code != http.StatusBadRequest {
			t.Fatalf("code = %d, want 400", rw.Code)
		}
	})

	// Never accept: none of the refused uploads may have left a job behind.
	if inc, _ := d.opt.Store.Incomplete(); len(inc) != 0 {
		t.Fatalf("refused uploads left %d job(s) in the store", len(inc))
	}
	if got := d.opt.Obs.Counter("service.jobs_admitted").Value(); got != 0 {
		t.Fatalf("jobs_admitted = %d, want 0", got)
	}
}

// gatedStore blocks Artifacts until the gate opens, pinning jobs in the
// running state so queue-bound tests are deterministic.
type gatedStore struct {
	Store
	gate chan struct{}
}

func (g *gatedStore) Artifacts(id string) (*cnf.Formula, *proof.Trace, error) {
	<-g.gate
	return g.Store.Artifacts(id)
}

func TestDaemonBackpressure(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	st := &gatedStore{Store: NewMemStore(), gate: gate}
	d := newTestDaemon(t, Options{Store: st, Workers: 1, QueueCap: 1, RetryAfter: 7 * time.Second})
	t.Cleanup(release) // runs before the drain cleanup (LIFO)
	h := d.Handler(false)
	f, tr := chainProblem(5)

	// Job 1 occupies the only worker; wait until it is off the queue.
	id1 := submitProblem(t, h, f, tr, "")
	waitState(t, d, id1, StateRunning)
	// Job 2 fills the queue.
	id2 := submitProblem(t, h, f, tr, "")
	// Job 3 must get 429 + Retry-After, not buffer without bound.
	fs, ps := encodeProblem(t, f, tr)
	body, ct := multipartBody(t, map[string]string{"formula": fs, "proof": ps})
	rw := submitRaw(t, h, body, ct, "")
	if rw.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %d %s, want 429", rw.Code, rw.Body.String())
	}
	// Retry-After is jittered upward from the configured base: [7, ceil(7*1.5)].
	if got, err := strconv.Atoi(rw.Header().Get("Retry-After")); err != nil || got < 7 || got > 11 {
		t.Fatalf("Retry-After = %q, want integer in [7, 11]", rw.Header().Get("Retry-After"))
	}
	// Saturation is visible on readiness, while liveness stays green.
	if rw := doRequest(h, httptest.NewRequest("GET", "/readyz", nil)); rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while saturated = %d, want 503", rw.Code)
	}
	if rw := doRequest(h, httptest.NewRequest("GET", "/healthz", nil)); rw.Code != http.StatusOK {
		t.Fatalf("/healthz while saturated = %d, want 200", rw.Code)
	}

	release()
	for _, id := range []string{id1, id2} {
		if jr := waitDone(t, d, id); jr.Status != StatusVerified {
			t.Fatalf("job %s = %+v after release", id, jr)
		}
	}
	if rw := doRequest(h, httptest.NewRequest("GET", "/readyz", nil)); rw.Code != http.StatusOK {
		t.Fatalf("/readyz after release = %d, want 200", rw.Code)
	}
}

func TestDaemonTenantQuotas(t *testing.T) {
	gate := make(chan struct{})
	st := &gatedStore{Store: NewMemStore(), gate: gate}
	d := newTestDaemon(t, Options{
		Store:    st,
		Workers:  1,
		QueueCap: 16,
		Quotas:   map[string]TenantQuota{"small": {MaxQueued: 1}},
	})
	t.Cleanup(func() { close(gate) })
	h := d.Handler(false)
	f, tr := chainProblem(5)
	fs, ps := encodeProblem(t, f, tr)

	// The first job may be dequeued (leaving the tenant's queue) at any
	// moment, so fill the quota with the *second* while the first runs.
	id1 := submitProblem(t, h, f, tr, "small")
	waitState(t, d, id1, StateRunning)
	submitProblem(t, h, f, tr, "small")

	body, ct := multipartBody(t, map[string]string{"formula": fs, "proof": ps})
	rw := submitRaw(t, h, body, ct, "small")
	if rw.Code != http.StatusTooManyRequests || !strings.Contains(rw.Body.String(), "tenant") {
		t.Fatalf("over-quota submit = %d %s, want tenant 429", rw.Code, rw.Body.String())
	}
	// Another tenant still has room: the quota is per tenant, not global.
	submitProblem(t, h, f, tr, "other")
}

func TestDaemonJobTimeout(t *testing.T) {
	d := newTestDaemon(t, Options{JobTimeout: time.Nanosecond})
	h := d.Handler(false)
	f, tr := chainProblem(50)
	id := submitProblem(t, h, f, tr, "")
	jr := waitDone(t, d, id)
	if jr.Status != StatusTimeout || jr.Code != 4 {
		t.Fatalf("result = %+v, want timeout/4", jr)
	}
}

func TestDaemonBudget(t *testing.T) {
	d := newTestDaemon(t, Options{Budget: core.Budget{MaxPropagations: 10}})
	h := d.Handler(false)
	f, tr := chainProblem(100)
	id := submitProblem(t, h, f, tr, "")
	jr := waitDone(t, d, id)
	if jr.Status != StatusBudget || jr.Code != 5 {
		t.Fatalf("result = %+v, want budget_exhausted/5", jr)
	}
	if !strings.Contains(jr.Error, "budget") {
		t.Fatalf("error %q does not name the budget", jr.Error)
	}
}

// Worker panic isolation: a panic inside the verification path (injected
// through SinkWrap, the same hook dpvd uses for crash-fault injection) must
// cost that job one typed internal_error after a fallback-engine retry —
// never the worker goroutine, never the process.
func TestDaemonWorkerPanicIsolation(t *testing.T) {
	reg := obs.New()
	ds, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := newTestDaemon(t, Options{
		Store:           ds,
		Workers:         1,
		Obs:             reg,
		CheckpointEvery: 1,
		SinkWrap: func(func([]byte) error) func([]byte) error {
			return func([]byte) error { panic("injected sink panic") }
		},
	})
	h := d.Handler(false)
	f, tr := chainProblem(5)

	id := submitProblem(t, h, f, tr, "")
	jr := waitDone(t, d, id)
	if jr.Status != StatusInternal || jr.Code != 6 {
		t.Fatalf("result = %+v, want internal_error/6", jr)
	}
	if jr.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (primary + fallback engine)", jr.Attempts)
	}
	if !strings.Contains(jr.Error, "panic") {
		t.Fatalf("error %q does not mention the panic", jr.Error)
	}
	if got := reg.Counter("service.worker_panics").Value(); got == 0 {
		t.Fatal("worker_panics counter not incremented")
	}
	// The worker survived: the next job on the same (single) worker still
	// gets a result. (Same panicking sink, so the same typed outcome.)
	id2 := submitProblem(t, h, f, tr, "")
	if jr2 := waitDone(t, d, id2); jr2.Status != StatusInternal {
		t.Fatalf("second job = %+v; worker should have survived to produce it", jr2)
	}
}

func TestDaemonDrainRefusesNewWork(t *testing.T) {
	d := newTestDaemon(t, Options{})
	h := d.Handler(false)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	f, tr := chainProblem(5)
	fs, ps := encodeProblem(t, f, tr)
	body, ct := multipartBody(t, map[string]string{"formula": fs, "proof": ps})
	rw := submitRaw(t, h, body, ct, "")
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", rw.Code)
	}
	if rw.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if err := d.Live(); !errors.Is(err, ErrDraining) {
		t.Fatalf("Live while draining = %v, want ErrDraining", err)
	}
}

// Admission durability: jobs admitted by one daemon process are recovered
// and completed by the next one, in admission order, with Seq continuing.
func TestDaemonRecoverAcrossRestart(t *testing.T) {
	root := t.TempDir()
	ds, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	// First incarnation: admit jobs but never start workers — the moral
	// equivalent of a crash right after 202.
	d1, err := New(Options{Store: ds})
	if err != nil {
		t.Fatal(err)
	}
	f, tr := chainProblem(10)
	var ids []string
	for i := 0; i < 3; i++ {
		job, err := d1.Submit("default", f, tr)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}

	// Second incarnation on the same store.
	ds2, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	d2 := newTestDaemon(t, Options{Store: ds2})
	// (Recover ran inside newTestDaemon.)
	for _, id := range ids {
		jr := waitDone(t, d2, id)
		if jr.Status != StatusVerified {
			t.Fatalf("recovered job %s = %+v, want verified", id, jr)
		}
	}
	// Seq continues after the admitted jobs rather than colliding.
	job, err := d2.Submit("default", f, tr)
	if err != nil {
		t.Fatal(err)
	}
	if job.Seq != 4 {
		t.Fatalf("post-restart Seq = %d, want 4", job.Seq)
	}
	waitDone(t, d2, job.ID)
}

func TestHandlerPanicIsolated(t *testing.T) {
	d := newTestDaemon(t, Options{})
	// A handler panic must cost one 500, never the process. Easiest panic
	// on demand: a poisoned probe function behind /readyz would change obs;
	// instead mount the middleware over an always-panicking handler.
	h := d.recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rw := doRequest(h, httptest.NewRequest("GET", "/anything", nil))
	if rw.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rw.Code)
	}
	if !strings.Contains(rw.Body.String(), string(StatusInternal)) {
		t.Fatalf("body %q lacks typed status", rw.Body.String())
	}
}
