package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cnf"
	"repro/internal/lrat"
	"repro/internal/proof"
)

// The hinted-proof surface: a verified job's LRAT is persisted next to its
// result, served over GET /lrat, and POST /recheck re-derives the verdict
// from those hints alone — answering byte-identical to a plain status GET.

func TestDaemonServesLRAT(t *testing.T) {
	store := NewMemStore()
	d := newTestDaemon(t, Options{Store: store})
	h := d.Handler(false)
	f, tr := chainProblem(20)
	id := submitProblem(t, h, f, tr, "")
	jr := waitDone(t, d, id)
	if jr.Status != StatusVerified {
		t.Fatalf("result = %+v, want verified", jr)
	}

	rw := doRequest(h, httptest.NewRequest("GET", "/v1/jobs/"+id+"/lrat", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("GET lrat = %d %s", rw.Code, rw.Body.String())
	}
	lp, err := lrat.Read(bytes.NewReader(rw.Body.Bytes()))
	if err != nil {
		t.Fatalf("served LRAT does not parse: %v", err)
	}
	cres, err := lrat.Check(f, lp, lrat.Options{})
	if err != nil || !cres.OK {
		t.Fatalf("served LRAT rejected: err=%v res=%+v", err, cres)
	}

	// The stored bytes are exactly what the endpoint serves.
	stored, err := store.LRAT(id)
	if err != nil || !bytes.Equal(stored, rw.Body.Bytes()) {
		t.Fatalf("served bytes differ from stored bytes (err=%v)", err)
	}

	if rw := doRequest(h, httptest.NewRequest("GET", "/v1/jobs/"+strings.Repeat("0", 32)+"/lrat", nil)); rw.Code != http.StatusNotFound {
		t.Fatalf("GET lrat unknown job = %d, want 404", rw.Code)
	}
}

func TestDaemonLRATOnlyForVerified(t *testing.T) {
	d := newTestDaemon(t, Options{})
	h := d.Handler(false)
	// A rejected job: x2 is not implied by {x1}.
	f := cnf.NewFormula(2)
	f.Clauses = append(f.Clauses, cnf.Clause{cnf.FromDimacs(1)})
	tr := proof.New()
	tr.Resolutions = nil
	tr.Clauses = append(tr.Clauses, cnf.Clause{cnf.FromDimacs(2)}, cnf.Clause{cnf.FromDimacs(-2)})
	id := submitProblem(t, h, f, tr, "")
	if jr := waitDone(t, d, id); jr.Status != StatusRejected {
		t.Fatalf("result = %+v, want rejected", jr)
	}
	for _, ep := range []struct{ method, path string }{
		{"GET", "/v1/jobs/" + id + "/lrat"},
		{"POST", "/v1/jobs/" + id + "/recheck"},
	} {
		rw := doRequest(h, httptest.NewRequest(ep.method, ep.path, nil))
		if rw.Code != http.StatusConflict {
			t.Fatalf("%s %s = %d, want 409", ep.method, ep.path, rw.Code)
		}
	}
}

func TestDaemonRecheckMatchesStatusByteForByte(t *testing.T) {
	d := newTestDaemon(t, Options{})
	h := d.Handler(false)
	f, tr := chainProblem(30)
	id := submitProblem(t, h, f, tr, "acme")
	waitDone(t, d, id)

	status := doRequest(h, httptest.NewRequest("GET", "/v1/jobs/"+id, nil))
	if status.Code != http.StatusOK {
		t.Fatalf("GET job = %d %s", status.Code, status.Body.String())
	}
	recheck := doRequest(h, httptest.NewRequest("POST", "/v1/jobs/"+id+"/recheck", nil))
	if recheck.Code != http.StatusOK {
		t.Fatalf("POST recheck = %d %s", recheck.Code, recheck.Body.String())
	}
	if !bytes.Equal(recheck.Body.Bytes(), status.Body.Bytes()) {
		t.Fatalf("recheck body diverged from status body:\n got %s\nwant %s",
			recheck.Body.String(), status.Body.String())
	}
	if recheck.Header().Get("X-Dpv-Recheck") != "lrat" {
		t.Fatalf("recheck headers = %v, want X-Dpv-Recheck: lrat", recheck.Header())
	}
	if recheck.Header().Get("X-Dpv-Recheck-Hints") == "" {
		t.Fatal("recheck did not report hints scanned")
	}
}

// TestDaemonRecheckDetectsCorruption replaces the stored hinted proof with a
// syntactically valid proof whose derivation is wrong: the recheck must fail
// as an internal error (the store is damaged), never serve the verdict.
func TestDaemonRecheckDetectsCorruption(t *testing.T) {
	store := NewMemStore()
	d := newTestDaemon(t, Options{Store: store})
	h := d.Handler(false)
	f, tr := chainProblem(10)
	id := submitProblem(t, h, f, tr, "")
	waitDone(t, d, id)

	cases := []struct {
		name string
		lrat string
	}{
		// Claims (x3) follows from clauses 1 and 3 — hint 3 is (¬x2 x3),
		// not unit under ¬x3 ∧ x1.
		{"wrong derivation", "13 3 0 1 3 0\n"},
		{"no refutation", "13 2 0 1 2 0\n"},
		{"garbage", "not an lrat proof\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := store.SetLRAT(id, []byte(tc.lrat)); err != nil {
				t.Fatal(err)
			}
			rw := doRequest(h, httptest.NewRequest("POST", "/v1/jobs/"+id+"/recheck", nil))
			if rw.Code != http.StatusInternalServerError {
				t.Fatalf("recheck of corrupted proof = %d %s, want 500", rw.Code, rw.Body.String())
			}
		})
	}
}

// TestDiskStoreLRATPersists drives SetLRAT/LRAT through the disk store and
// checks the bytes survive a reopen — the recheck capability must outlive
// the daemon incarnation that verified the job.
func TestDiskStoreLRATPersists(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := newTestDaemon(t, Options{Store: store})
	h := d.Handler(false)
	f, tr := chainProblem(15)
	id := submitProblem(t, h, f, tr, "")
	waitDone(t, d, id)

	want, err := store.LRAT(id)
	if err != nil || len(want) == 0 {
		t.Fatalf("stored LRAT: err=%v len=%d", err, len(want))
	}
	reopened, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.LRAT(id)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("reopened store serves different LRAT bytes (err=%v)", err)
	}
	if _, err := reopened.LRAT(strings.Repeat("f", 32)); err != ErrUnknownJob {
		t.Fatalf("LRAT of unknown job: err=%v, want ErrUnknownJob", err)
	}
}
