package service

import (
	"errors"
	"testing"
	"time"
)

func testQuota(def TenantQuota) func(string) TenantQuota {
	return func(string) TenantQuota { return def }
}

func TestQueueCapacityBound(t *testing.T) {
	q := newQueue(2, testQuota(TenantQuota{MaxQueued: 10, MaxRunning: 1}))
	if err := q.Admit("a"); err != nil {
		t.Fatal(err)
	}
	if err := q.Admit("a"); err != nil {
		t.Fatal(err)
	}
	// Reservations count against capacity even before Enqueue: admission
	// can never overshoot in the window between Admit and the store write.
	if err := q.Admit("a"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third admit = %v, want ErrQueueFull", err)
	}
	q.Release("a")
	if err := q.Admit("a"); err != nil {
		t.Fatalf("admit after release = %v, want nil", err)
	}
}

func TestQueueTenantQuota(t *testing.T) {
	q := newQueue(10, testQuota(TenantQuota{MaxQueued: 1, MaxRunning: 1}))
	if err := q.Admit("a"); err != nil {
		t.Fatal(err)
	}
	if err := q.Admit("a"); !errors.Is(err, ErrTenantBusy) {
		t.Fatalf("tenant over quota = %v, want ErrTenantBusy", err)
	}
	// Another tenant is unaffected — the global queue has room.
	if err := q.Admit("b"); err != nil {
		t.Fatalf("other tenant = %v, want nil", err)
	}
}

// A tenant at its running quota must not block other tenants' jobs queued
// behind it (no head-of-line blocking across tenants).
func TestQueueSkipsSaturatedTenant(t *testing.T) {
	q := newQueue(10, testQuota(TenantQuota{MaxQueued: 10, MaxRunning: 1}))
	for _, j := range []*Job{{ID: "a1", Tenant: "a"}, {ID: "a2", Tenant: "a"}, {ID: "b1", Tenant: "b"}} {
		if err := q.Admit(j.Tenant); err != nil {
			t.Fatal(err)
		}
		q.Enqueue(j)
	}
	j1, _ := q.Dequeue()
	if j1.ID != "a1" {
		t.Fatalf("first dequeue = %s, want a1", j1.ID)
	}
	// a is now at MaxRunning=1, so a2 must be passed over for b1.
	j2, _ := q.Dequeue()
	if j2.ID != "b1" {
		t.Fatalf("second dequeue = %s, want b1 (a is saturated)", j2.ID)
	}
	// Finishing a1 releases the slot; a2 becomes eligible.
	q.Done("a")
	j3, _ := q.Dequeue()
	if j3.ID != "a2" {
		t.Fatalf("third dequeue = %s, want a2", j3.ID)
	}
}

func TestQueueCloseWakesWaiters(t *testing.T) {
	q := newQueue(4, testQuota(TenantQuota{MaxQueued: 4, MaxRunning: 1}))
	done := make(chan bool, 1)
	go func() {
		_, ok := q.Dequeue()
		done <- ok
	}()
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Dequeue returned a job from a closed empty queue")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Dequeue did not wake on Close")
	}
	if err := q.Admit("a"); !errors.Is(err, ErrDraining) {
		t.Fatalf("admit after close = %v, want ErrDraining", err)
	}
}

// Requeue bypasses capacity: recovered jobs were admitted before the crash
// and must never be bounced.
func TestQueueRequeueBypassesCapacity(t *testing.T) {
	q := newQueue(1, testQuota(TenantQuota{MaxQueued: 10, MaxRunning: 10}))
	q.Requeue([]*Job{{ID: "r1", Tenant: "a"}, {ID: "r2", Tenant: "a"}})
	if !q.Saturated() {
		t.Fatal("queue over capacity should report saturated")
	}
	if err := q.Admit("a"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("admit while over capacity = %v, want ErrQueueFull", err)
	}
	if j, ok := q.Dequeue(); !ok || j.ID != "r1" {
		t.Fatalf("dequeue = %v %v, want r1", j, ok)
	}
	if j, ok := q.Dequeue(); !ok || j.ID != "r2" {
		t.Fatalf("dequeue = %v %v, want r2", j, ok)
	}
}
