package service

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// State is a job's position in its lifecycle. The state machine is strictly
// forward: queued → running → done, with one backward edge — a daemon
// restart moves every non-done job back to queued (the run it was in is
// gone; its durable checkpoints, if any, make the re-run cheap).
type State string

const (
	// StateQueued: admitted and durable (for a disk-backed store), waiting
	// for a worker slot.
	StateQueued State = "queued"
	// StateRunning: a worker is verifying the proof right now.
	StateRunning State = "running"
	// StateDone: a terminal JobResult exists. Done jobs never change.
	StateDone State = "done"
)

// Job is the admission record for one verification request. It carries only
// what admission established — identity, ownership, and the sizes the
// limited parsers measured — never the verdict (that is JobResult's).
type Job struct {
	// ID is the job's handle in the HTTP API and the store.
	ID string `json:"id"`
	// Tenant attributes the job for quota accounting.
	Tenant string `json:"tenant"`
	// Seq is the admission sequence number; recovery re-queues incomplete
	// jobs in Seq order so a restart preserves submission fairness.
	Seq uint64 `json:"seq"`
	// NumVars/NumClauses/ProofClauses are the admitted problem's sizes, as
	// measured by the limited parsers before the job was accepted.
	NumVars      int `json:"num_vars"`
	NumClauses   int `json:"num_clauses"`
	ProofClauses int `json:"proof_clauses"`
	// Replica marks a verdict copy accepted through the replication
	// endpoint rather than a job this node admitted and verified itself.
	// Replica records are never run: Recover/Incomplete skip them, and a
	// half-written one (no result yet) is debris, not recoverable work.
	Replica bool `json:"replica,omitempty"`
}

// JobResult is a job's terminal outcome. Exactly one is ever recorded per
// job; it is immutable once written. Status/Code follow the exit-code
// contract, so a script driving the HTTP API and a script driving the dpv
// CLI classify outcomes identically.
type JobResult struct {
	// Status classifies the outcome; Code is the matching dpv exit code.
	Status Status `json:"status"`
	Code   int    `json:"code"`
	// Error carries the failure detail for non-verdict outcomes.
	Error string `json:"error,omitempty"`
	// Attempts counts verification attempts (1 normally; 2 when a worker
	// panic was retried on the fallback engine).
	Attempts int `json:"attempts"`
	// Verdict is the verification result proper — the same JSON shape dpv
	// -json emits — present only for verified/rejected outcomes.
	Verdict *Verdict `json:"verdict,omitempty"`
	// Core lists the unsat-core clause indices (verified jobs, sequential
	// check-marked mode only); /v1/jobs/{id}/core renders it as DIMACS.
	Core []int `json:"core,omitempty"`
}

// Terminal reports whether the result represents a verdict (as opposed to a
// resource-bounded or internal failure). Non-terminal statuses still end the
// job — the distinction only matters to clients deciding whether to retry.
func (r *JobResult) Terminal() bool {
	return r.Status == StatusVerified || r.Status == StatusRejected ||
		r.Status == StatusBadInput
}

// NewJobID returns a 16-byte random hex handle. IDs double as store
// directory names, so they must stay in [0-9a-f] — validated again by
// DiskStore against path traversal. Exported because the cluster router
// mints IDs itself: routing is by consistent hash of the ID, so the ID
// must exist before a shard is chosen.
func NewJobID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: job id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// ValidJobID reports whether id is a well-formed job handle: exactly 32
// lowercase-hex characters. IDs become store directory names and URL path
// segments, so anything else is refused — in particular path separators and
// their URL-encoded spellings (%2f, %5c, any case), which are rejected
// explicitly before the character-class check. The encoded forms could
// never pass the hex check anyway; rejecting them by name is defense in
// depth for IDs that arrive via headers or proxies, where no URL decoding
// has happened yet and a later decode would re-introduce the separator.
func ValidJobID(id string) bool {
	lower := strings.ToLower(id)
	if strings.Contains(lower, "%2f") || strings.Contains(lower, "%5c") {
		return false
	}
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// encodeJSON marshals v with a stable, newline-terminated encoding — the
// byte shape both the disk store and the HTTP responses use, so a result
// read back from disk is byte-identical to one served from memory.
func encodeJSON(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
