package service

import (
	"errors"
	"sync"

	"repro/internal/core"
)

// Admission failures, mapped by the HTTP layer onto 429 (with Retry-After)
// and 503. They are the backpressure contract: the daemon never buffers
// beyond its configured bounds — it tells the client to come back later.
var (
	// ErrQueueFull: the global job queue is at capacity.
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrTenantBusy: the submitting tenant's queued-job quota is exhausted
	// (the global queue may still have room for other tenants).
	ErrTenantBusy = errors.New("service: tenant queue quota exhausted")
	// ErrDraining: the daemon is shutting down and admits nothing new.
	ErrDraining = errors.New("service: daemon is draining")
	// ErrUnknownJob: no job with that ID exists.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrAlreadyAdmitted: a SubmitID with an ID the store already holds.
	// Not a failure — the existing job rides along — but distinguished so
	// the HTTP layer can answer with the job's current state.
	ErrAlreadyAdmitted = errors.New("service: job already admitted")
	// ErrBadJobID: a caller-supplied job ID failed ValidJobID.
	ErrBadJobID = errors.New("service: invalid job id")
)

// TenantQuota bounds one tenant's share of the daemon. Zero fields inherit
// the daemon's defaults (Options.DefaultQuota, itself defaulted to "the
// whole queue, all the workers" for the single-tenant case).
type TenantQuota struct {
	// MaxQueued bounds how many of the tenant's jobs may wait in the queue
	// at once; admission beyond it fails with ErrTenantBusy.
	MaxQueued int
	// MaxRunning bounds how many of the tenant's jobs may run concurrently.
	// Jobs over the bound stay queued (other tenants' jobs pass them — the
	// queue is FIFO per tenant, not globally blocking).
	MaxRunning int
	// Budget overrides the daemon's per-job resource budget for this
	// tenant. Zero fields inherit the daemon default field-by-field.
	Budget core.Budget
}

// withDefaults fills zero fields from def.
func (q TenantQuota) withDefaults(def TenantQuota) TenantQuota {
	if q.MaxQueued <= 0 {
		q.MaxQueued = def.MaxQueued
	}
	if q.MaxRunning <= 0 {
		q.MaxRunning = def.MaxRunning
	}
	if q.Budget.MaxPropagations == 0 {
		q.Budget.MaxPropagations = def.Budget.MaxPropagations
	}
	if q.Budget.MaxTraceClauses == 0 {
		q.Budget.MaxTraceClauses = def.Budget.MaxTraceClauses
	}
	if q.Budget.MaxMemoryBytes == 0 {
		q.Budget.MaxMemoryBytes = def.Budget.MaxMemoryBytes
	}
	return q
}

// queue is the daemon's bounded admission queue. Admission is two-phase —
// Admit reserves a slot under the capacity and tenant bounds, Enqueue
// commits a job into it (or Release returns the slot after a failed store
// write) — so a job is only ever queued after it is durable, and a slot is
// never leaked when durability fails. Dequeue hands out jobs FIFO, skipping
// over tenants whose running quota is exhausted.
type queue struct {
	mu   sync.Mutex
	cond *sync.Cond

	cap      int
	reserved int    // Admit-ed slots not yet Enqueue-d or Release-d
	items    []*Job // FIFO admission order

	queued  map[string]int // per-tenant: reserved + waiting
	running map[string]int // per-tenant: currently on a worker

	quota  func(tenant string) TenantQuota
	closed bool
}

func newQueue(capacity int, quota func(string) TenantQuota) *queue {
	q := &queue{
		cap:     capacity,
		queued:  make(map[string]int),
		running: make(map[string]int),
		quota:   quota,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Admit reserves a queue slot for tenant, or reports why it cannot.
func (q *queue) Admit(tenant string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if len(q.items)+q.reserved >= q.cap {
		return ErrQueueFull
	}
	if q.queued[tenant] >= q.quota(tenant).MaxQueued {
		return ErrTenantBusy
	}
	q.reserved++
	q.queued[tenant]++
	return nil
}

// Release undoes an Admit whose job never made it into the store.
func (q *queue) Release(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reserved--
	q.queued[tenant]--
	q.cond.Broadcast()
}

// Enqueue commits an admitted job into the queue.
func (q *queue) Enqueue(job *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reserved--
	q.items = append(q.items, job)
	q.cond.Broadcast()
}

// Requeue inserts recovered jobs ahead of quota accounting. Recovered jobs
// were admitted before the crash — bouncing them on a full queue would lose
// work the daemon already accepted, so capacity is deliberately not
// re-checked (the queue may transiently exceed cap by the recovered count;
// readiness reports saturated until it drains).
func (q *queue) Requeue(jobs []*Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, j := range jobs {
		q.items = append(q.items, j)
		q.queued[j.Tenant]++
	}
	q.cond.Broadcast()
}

// Dequeue blocks until a job whose tenant has running headroom is available
// and claims it, or returns false when the queue is closed. Jobs of a
// saturated tenant are skipped, not head-of-line blocking.
func (q *queue) Dequeue() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, false
		}
		for i, j := range q.items {
			if q.running[j.Tenant] < q.quota(j.Tenant).MaxRunning {
				q.items = append(q.items[:i], q.items[i+1:]...)
				q.queued[j.Tenant]--
				q.running[j.Tenant]++
				return j, true
			}
		}
		q.cond.Wait()
	}
}

// Done releases a tenant's running slot after a job finishes (or is
// abandoned by drain), waking waiters whose tenant was saturated.
func (q *queue) Done(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.running[tenant]--
	q.cond.Broadcast()
}

// Close stops admission and wakes every Dequeue waiter. Jobs still queued
// are abandoned in place: with a disk-backed store they are incomplete
// records that the next start recovers; workers must not start new work
// during drain.
func (q *queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Depth returns the number of waiting (not running) jobs.
func (q *queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) + q.reserved
}

// Saturated reports whether a new Admit would fail on global capacity.
func (q *queue) Saturated() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed || len(q.items)+q.reserved >= q.cap
}
