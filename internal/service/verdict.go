package service

import "repro/internal/core"

// Verdict is the machine-readable shape of a core.Result — the one JSON
// contract for verification outcomes, emitted identically by dpv -json and
// by the daemon's job results. Keeping a single builder here is what makes
// the daemon's crash-recovery guarantee testable: a resumed daemon job and
// an uninterrupted dpv run must produce byte-identical verdict JSON.
type Verdict struct {
	Verdict      string  `json:"verdict"` // "verified" | "rejected"
	Mode         string  `json:"mode"`
	Engine       string  `json:"engine"`
	Workers      int     `json:"workers,omitempty"`
	Termination  string  `json:"termination"`
	ProofClauses int     `json:"proof_clauses"`
	Tested       int     `json:"tested"`
	TestedPct    float64 `json:"tested_pct"`
	Skipped      int     `json:"skipped"`
	Tautologies  int     `json:"tautologies"`
	MarkedProof  int     `json:"marked_proof"`
	CoreSize     int     `json:"core_size"`
	CorePct      float64 `json:"core_pct"`
	Propagations int64   `json:"propagations"`
	FailedIndex  int     `json:"failed_index"`            // -1 when verified
	FailedClause []int   `json:"failed_clause,omitempty"` // DIMACS literals
}

// BuildVerdict renders res as the shared JSON shape. workers is the -par
// value (0 = sequential); nOriginal is the formula's clause count, needed
// for the core percentage.
func BuildVerdict(res *core.Result, mode core.Mode, engine core.EngineKind, workers, nOriginal int) Verdict {
	out := Verdict{
		Verdict:      "verified",
		Mode:         mode.String(),
		Engine:       engine.String(),
		Workers:      workers,
		Termination:  res.Termination.String(),
		ProofClauses: res.ProofClauses,
		Tested:       res.Tested,
		TestedPct:    res.TestedPct(),
		Skipped:      res.Skipped,
		Tautologies:  res.Tautologies,
		MarkedProof:  res.MarkedProof,
		CoreSize:     len(res.Core),
		CorePct:      res.CorePct(nOriginal),
		Propagations: res.Propagations,
		FailedIndex:  res.FailedIndex,
	}
	if workers != 0 {
		out.Mode = core.ModeCheckAll.String() // parallel always checks everything
	}
	if !res.OK {
		out.Verdict = "rejected"
		for _, l := range res.FailedClause {
			out.FailedClause = append(out.FailedClause, l.Dimacs())
		}
	}
	return out
}
