package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"

	"repro/internal/cnf"
	"repro/internal/exitcode"
	"repro/internal/lrat"
	"repro/internal/obs"
	"repro/internal/proof"
	"repro/internal/sched"
)

// API shapes. Submission and status responses always carry a "status" (or
// job state) so clients never have to parse prose; errors reuse the Status
// taxonomy where one applies.
type submitResponse struct {
	ID    string `json:"id"`
	State State  `json:"state"`
}

type statusResponse struct {
	ID     string     `json:"id"`
	Tenant string     `json:"tenant,omitempty"`
	State  State      `json:"state"`
	Result *JobResult `json:"result,omitempty"`
}

type errorResponse struct {
	Status Status `json:"status"`
	Error  string `json:"error"`
}

// tenantHeader names the submitting tenant; absent means "default".
const tenantHeader = "X-Dpv-Tenant"

// JobIDHeader carries a caller-minted job ID on POST /v1/jobs — the cluster
// router uses it so the ID (and therefore the owning shard, by consistent
// hash) is fixed before the upload is forwarded. Values failing ValidJobID
// are refused; re-submission of an existing ID is idempotent.
const JobIDHeader = "X-Dpv-Job-Id"

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs              multipart upload (parts "formula", "proof") → 202
//	GET  /v1/jobs/{id}         job state and, when done, its result
//	GET  /v1/jobs/{id}/core    unsat core as DIMACS (verified jobs)
//	GET  /v1/jobs/{id}/lrat    hinted (LRAT) proof of the verification
//	POST /v1/jobs/{id}/recheck re-verify from stored hints — no BCP — and
//	                           answer with the job's verdict JSON, byte-
//	                           identical to GET /v1/jobs/{id}
//
// plus the observability surface (/metrics, /debug/vars, /healthz, /readyz,
// and — when enablePprof — /debug/pprof/) from the daemon's registry.
// Admission backpressure is expressed in status codes: 400/413 for inputs
// the gate refuses, 429 with Retry-After when queue or tenant bounds are
// hit, 503 with Retry-After while draining. Every handler runs under a
// recovery middleware, so a handler panic costs one 500, never the daemon.
func (d *Daemon) Handler(enablePprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", d.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", d.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/core", d.handleCore)
	mux.HandleFunc("GET /v1/jobs/{id}/lrat", d.handleLRAT)
	mux.HandleFunc("POST /v1/jobs/{id}/recheck", d.handleRecheck)
	mux.HandleFunc("PUT /v1/replicas/{id}", d.handleReplicaPut)
	mux.Handle("/", d.opt.Obs.Mux(enablePprof, obs.Health{Live: d.Live, Ready: d.Ready}))
	return d.recoverMiddleware(mux)
}

func (d *Daemon) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				// http.ErrAbortHandler is net/http's own "drop this
				// connection" sentinel; re-panic so it keeps its meaning.
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				d.opt.Obs.Counter("service.http_panics").Inc()
				d.opt.Logf("service: http panic on %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				writeError(w, http.StatusInternalServerError, StatusInternal, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := encodeJSON(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	w.Write(b)
}

func writeError(w http.ResponseWriter, code int, st Status, msg string) {
	writeJSON(w, code, errorResponse{Status: st, Error: msg})
}

// handleSubmit is the admission gate. The upload is streamed part by part
// directly into the limited parsers — the daemon never buffers a body it
// has not already decided to accept, so a hostile 10 GB upload dies at
// MaxUploadBytes/parse limits, not in memory.
func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if d.Draining() {
		d.setRetryAfter(w)
		writeError(w, http.StatusServiceUnavailable, StatusInternal, ErrDraining.Error())
		return
	}
	tenant := r.Header.Get(tenantHeader)
	if tenant == "" {
		tenant = "default"
	}
	suppliedID := r.Header.Get(JobIDHeader)
	if suppliedID != "" && !ValidJobID(suppliedID) {
		writeError(w, http.StatusBadRequest, StatusBadInput, ErrBadJobID.Error())
		return
	}

	mt, params, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil || mt != "multipart/form-data" {
		writeError(w, http.StatusBadRequest, StatusBadInput,
			"content type must be multipart/form-data with parts \"formula\" and \"proof\"")
		return
	}
	boundary := params["boundary"]
	if boundary == "" {
		writeError(w, http.StatusBadRequest, StatusBadInput, "multipart boundary missing")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, d.opt.MaxUploadBytes)
	mr := multipart.NewReader(r.Body, boundary)

	var f *cnf.Formula
	var tr *proof.Trace
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Includes truncated bodies (a dying client): io.ErrUnexpectedEOF
			// or a malformed closing boundary — typed rejection either way.
			d.writeUploadError(w, fmt.Errorf("multipart body: %w", err))
			return
		}
		switch part.FormName() {
		case "formula":
			if f != nil {
				writeError(w, http.StatusBadRequest, StatusBadInput, "duplicate \"formula\" part")
				return
			}
			f, err = cnf.ParseDimacsLimited(part, d.opt.FormulaLimits)
		case "proof":
			if tr != nil {
				writeError(w, http.StatusBadRequest, StatusBadInput, "duplicate \"proof\" part")
				return
			}
			tr, err = proof.ReadLimited(part, d.opt.ProofLimits)
		default:
			writeError(w, http.StatusBadRequest, StatusBadInput,
				fmt.Sprintf("unknown part %q (want \"formula\", \"proof\")", part.FormName()))
			return
		}
		if err != nil {
			d.writeUploadError(w, err)
			return
		}
	}
	if f == nil || tr == nil {
		writeError(w, http.StatusBadRequest, StatusBadInput, "upload needs both a \"formula\" and a \"proof\" part")
		return
	}
	// The structural check core.Verify would fail with ErrBadTrace is run
	// here instead, so structurally hopeless proofs are refused at the door
	// rather than burning a queue slot to be refused later.
	if tr.Terminates() == proof.TermNone {
		writeError(w, http.StatusUnprocessableEntity, StatusBadInput,
			"trace must end in a final conflicting pair or the empty clause")
		return
	}

	job, err := d.SubmitID(tenant, suppliedID, f, tr)
	switch {
	case err == nil:
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusAccepted, submitResponse{ID: job.ID, State: StateQueued})
	case errors.Is(err, ErrAlreadyAdmitted):
		// Idempotent re-POST of a known ID (a router retrying after a lost
		// response): answer 202 with the job's current state, enqueue
		// nothing. The retry looks exactly like the original success.
		st, _, serr := d.Status(job.ID)
		if serr != nil {
			st = StateQueued
		}
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusAccepted, submitResponse{ID: job.ID, State: st})
	case errors.Is(err, ErrBadJobID):
		writeError(w, http.StatusBadRequest, StatusBadInput, err.Error())
	case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrTenantBusy):
		d.setRetryAfter(w)
		writeError(w, http.StatusTooManyRequests, StatusInternal, err.Error())
	case errors.Is(err, ErrDraining):
		d.setRetryAfter(w)
		writeError(w, http.StatusServiceUnavailable, StatusInternal, err.Error())
	default:
		// Store trouble (e.g. disk full during admission): retryable.
		d.setRetryAfter(w)
		writeError(w, http.StatusServiceUnavailable, StatusInternal, err.Error())
	}
}

// setRetryAfter stamps one freshly jittered Retry-After hint.
func (d *Daemon) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(d.retryAfterSeconds()))
}

// writeUploadError classifies an admission parse failure: limit violations
// are 413 (the request entity is the problem), everything else malformed or
// truncated is 400. Both carry status bad_input — the same class a dpv run
// would exit 3 for.
func (d *Daemon) writeUploadError(w http.ResponseWriter, err error) {
	d.opt.Obs.Counter("service.uploads_rejected").Inc()
	var maxBytes *http.MaxBytesError
	if errors.As(err, &maxBytes) || errors.Is(err, cnf.ErrLimit) || errors.Is(err, proof.ErrLimit) {
		writeError(w, http.StatusRequestEntityTooLarge, StatusBadInput, err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, StatusBadInput, err.Error())
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, jr, err := d.Status(id)
	if errors.Is(err, ErrUnknownJob) {
		writeError(w, http.StatusNotFound, StatusBadInput, "unknown job")
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, StatusInternal, err.Error())
		return
	}
	d.writeStatusResponse(w, id, st, jr)
}

// writeStatusResponse renders the one status/verdict body shape. handleStatus
// and handleRecheck both answer through it, which is what makes the recheck
// contract testable: a recheck's body is byte-identical to a plain GET.
func (d *Daemon) writeStatusResponse(w http.ResponseWriter, id string, st State, jr *JobResult) {
	resp := statusResponse{ID: id, State: st, Result: jr}
	if job, jerr := d.opt.Store.Job(id); jerr == nil {
		resp.Tenant = job.Tenant
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCore serves a verified job's unsat core as DIMACS — the paper's
// by-product, delivered over the wire instead of via dpv -core FILE.
func (d *Daemon) handleCore(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, jr, err := d.Status(id)
	if errors.Is(err, ErrUnknownJob) {
		writeError(w, http.StatusNotFound, StatusBadInput, "unknown job")
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, StatusInternal, err.Error())
		return
	}
	if st != StateDone {
		writeError(w, http.StatusConflict, StatusBadInput, "job has no verdict yet")
		return
	}
	if jr == nil || jr.Status != StatusVerified || jr.Code != exitcode.OK {
		writeError(w, http.StatusConflict, StatusBadInput, "core exists only for verified jobs")
		return
	}
	f, err := d.opt.Store.Formula(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, StatusInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := cnf.WriteDimacs(w, f.Restrict(jr.Core)); err != nil {
		d.opt.Logf("service: job %s: core write: %v", id, err)
	}
}

// verifiedLRAT gates the hinted-proof endpoints: the job must be done and
// verified, and the store must hold its LRAT bytes. On any failure the HTTP
// error has been written and ok is false.
func (d *Daemon) verifiedLRAT(w http.ResponseWriter, id string) (b []byte, jr *JobResult, ok bool) {
	st, jr, err := d.Status(id)
	if errors.Is(err, ErrUnknownJob) {
		writeError(w, http.StatusNotFound, StatusBadInput, "unknown job")
		return nil, nil, false
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, StatusInternal, err.Error())
		return nil, nil, false
	}
	if st != StateDone {
		writeError(w, http.StatusConflict, StatusBadInput, "job has no verdict yet")
		return nil, nil, false
	}
	if jr == nil || jr.Status != StatusVerified || jr.Code != exitcode.OK {
		writeError(w, http.StatusConflict, StatusBadInput, "hinted proof exists only for verified jobs")
		return nil, nil, false
	}
	b, err = d.opt.Store.LRAT(id)
	if err != nil && !errors.Is(err, ErrUnknownJob) {
		writeError(w, http.StatusInternalServerError, StatusInternal, err.Error())
		return nil, nil, false
	}
	if len(b) == 0 {
		// Verified, but the hint write was degraded (or the job predates
		// hint recording): the verdict stands, the cheap recheck does not.
		writeError(w, http.StatusConflict, StatusInternal, "no hinted proof recorded for this job")
		return nil, nil, false
	}
	return b, jr, true
}

// handleLRAT serves the hinted (LRAT) proof recorded when the job verified —
// the artifact lratcheck, or any independent LRAT checker, accepts without
// running unit propagation.
func (d *Daemon) handleLRAT(w http.ResponseWriter, r *http.Request) {
	b, _, ok := d.verifiedLRAT(w, r.PathValue("id"))
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(b)
}

// handleRecheck re-derives trust in a completed job's verdict from its
// stored hints: a unit replay over the named antecedents only, no BCP. On
// success it answers with the job's verdict JSON, byte-identical to
// GET /v1/jobs/{id} — the recheck changes nothing, it re-confirms. A replay
// failure means the stored artifacts are corrupt and is reported as an
// internal error, never a changed verdict.
func (d *Daemon) handleRecheck(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	b, jr, ok := d.verifiedLRAT(w, id)
	if !ok {
		return
	}
	f, err := d.opt.Store.Formula(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, StatusInternal, err.Error())
		return
	}
	cres, err := lrat.Validate(f, b, lrat.Limits{}, lrat.Options{
		Workers: runtime.GOMAXPROCS(0), Strategy: sched.StrategyDAG,
		Ctx: r.Context(), Obs: d.opt.Obs,
	})
	var ve *lrat.ValidationError
	if errors.As(err, &ve) {
		d.opt.Obs.Counter("service.rechecks_failed").Inc()
		writeError(w, http.StatusInternalServerError, StatusInternal,
			fmt.Sprintf("stored hinted proof failed re-verification: %v", ve))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, StatusInternal,
			fmt.Sprintf("recheck interrupted: %v", err))
		return
	}
	d.opt.Obs.Counter("service.rechecks").Inc()
	w.Header().Set("X-Dpv-Recheck", "lrat")
	w.Header().Set("X-Dpv-Recheck-Hints", strconv.FormatInt(cres.HintsScanned, 10))
	d.writeStatusResponse(w, id, StateDone, jr)
}

// replicaResponse acknowledges an accepted replica.
type replicaResponse struct {
	ID    string `json:"id"`
	State string `json:"state"` // always "replicated"
	Steps int    `json:"validated_steps"`
}

// handleReplicaPut accepts a verdict copy from a replicating router:
// multipart parts "formula" (DIMACS), "verdict" (JobResult JSON) and "lrat"
// (the hinted proof). The verdict is NOT trusted: before anything is stored
// or acked, the hinted proof is re-verified against the formula with the
// propagation-free checker (lrat.Validate). A proof that fails — one
// flipped hint byte is enough — is rejected with a typed 422 replica_rejected
// error and leaves no trace in the store; the wire can corrupt a copy, but
// never launder it into a served verdict. Acceptance is idempotent: the
// same ID may be re-PUT (a retrying router), and the copy is atomically
// replaced.
func (d *Daemon) handleReplicaPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !ValidJobID(id) {
		writeError(w, http.StatusBadRequest, StatusBadInput, ErrBadJobID.Error())
		return
	}
	if d.Draining() {
		d.setRetryAfter(w)
		writeError(w, http.StatusServiceUnavailable, StatusInternal, ErrDraining.Error())
		return
	}
	tenant := r.Header.Get(tenantHeader)
	if tenant == "" {
		tenant = "default"
	}

	mt, params, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil || mt != "multipart/form-data" {
		writeError(w, http.StatusBadRequest, StatusBadInput,
			"content type must be multipart/form-data with parts \"formula\", \"verdict\" and \"lrat\"")
		return
	}
	boundary := params["boundary"]
	if boundary == "" {
		writeError(w, http.StatusBadRequest, StatusBadInput, "multipart boundary missing")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, d.opt.MaxUploadBytes)
	mr := multipart.NewReader(r.Body, boundary)

	var f *cnf.Formula
	var verdictJSON, lratBytes []byte
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			d.writeUploadError(w, fmt.Errorf("multipart body: %w", err))
			return
		}
		switch part.FormName() {
		case "formula":
			if f != nil {
				writeError(w, http.StatusBadRequest, StatusBadInput, "duplicate \"formula\" part")
				return
			}
			f, err = cnf.ParseDimacsLimited(part, d.opt.FormulaLimits)
		case "verdict":
			if verdictJSON != nil {
				writeError(w, http.StatusBadRequest, StatusBadInput, "duplicate \"verdict\" part")
				return
			}
			verdictJSON, err = io.ReadAll(io.LimitReader(part, 1<<20))
		case "lrat":
			if lratBytes != nil {
				writeError(w, http.StatusBadRequest, StatusBadInput, "duplicate \"lrat\" part")
				return
			}
			lratBytes, err = io.ReadAll(part)
		default:
			writeError(w, http.StatusBadRequest, StatusBadInput,
				fmt.Sprintf("unknown part %q (want \"formula\", \"verdict\", \"lrat\")", part.FormName()))
			return
		}
		if err != nil {
			d.writeUploadError(w, err)
			return
		}
	}
	if f == nil || verdictJSON == nil || len(lratBytes) == 0 {
		writeError(w, http.StatusBadRequest, StatusBadInput,
			"replica needs \"formula\", \"verdict\" and \"lrat\" parts")
		return
	}
	var jr JobResult
	if err := json.Unmarshal(verdictJSON, &jr); err != nil {
		writeError(w, http.StatusBadRequest, StatusBadInput, fmt.Sprintf("verdict part: %v", err))
		return
	}
	if jr.Status != StatusVerified || jr.Code != exitcode.OK || jr.Verdict == nil {
		// Only verified verdicts carry hints that make them re-checkable;
		// anything else is recomputed, not replicated.
		writeError(w, http.StatusUnprocessableEntity, StatusReplicaRejected,
			"only verified verdicts are replicated")
		return
	}

	// The integrity gate: re-derive the refutation from the formula and the
	// hinted proof before acking anything.
	cres, err := lrat.Validate(f, lratBytes, lrat.Limits{}, lrat.Options{Ctx: r.Context(), Obs: d.opt.Obs})
	var ve *lrat.ValidationError
	if errors.As(err, &ve) {
		d.opt.Obs.Counter("service.replicas_rejected").Inc()
		d.opt.Logf("service: replica %s rejected: %v", id, ve)
		writeError(w, http.StatusUnprocessableEntity, StatusReplicaRejected, ve.Error())
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, StatusInternal,
			fmt.Sprintf("replica validation interrupted: %v", err))
		return
	}

	job := &Job{
		ID:         id,
		Tenant:     tenant,
		Replica:    true,
		NumVars:    f.NumVars,
		NumClauses: f.NumClauses(),
	}
	if err := d.opt.Store.PutReplica(job, f, &jr, lratBytes); err != nil {
		d.setRetryAfter(w)
		writeError(w, http.StatusServiceUnavailable, StatusInternal, err.Error())
		return
	}
	d.opt.Obs.Counter("service.replicas_accepted").Inc()
	writeJSON(w, http.StatusOK, replicaResponse{ID: id, State: "replicated", Steps: cres.Additions})
}
