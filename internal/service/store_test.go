package service

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cnf"
	"repro/internal/proof"
)

// chainProblem builds the implication chain x1, xi→xi+1, ¬xn with its
// unit-clause refutation — a verified instance of tunable size.
func chainProblem(n int) (*cnf.Formula, *proof.Trace) {
	mk := func(lits ...int) cnf.Clause {
		c := make(cnf.Clause, len(lits))
		for i, l := range lits {
			c[i] = cnf.FromDimacs(l)
		}
		return c
	}
	f := cnf.NewFormula(n)
	f.Clauses = append(f.Clauses, mk(1))
	for i := 1; i < n; i++ {
		f.Clauses = append(f.Clauses, mk(-i, i+1))
	}
	f.Clauses = append(f.Clauses, mk(-n))
	tr := proof.New()
	tr.Resolutions = nil
	for i := 2; i <= n; i++ {
		tr.Clauses = append(tr.Clauses, mk(i))
	}
	tr.Clauses = append(tr.Clauses, mk(-n))
	return f, tr
}

func testJob(id string, seq uint64) *Job {
	return &Job{ID: id, Tenant: "default", Seq: seq, NumVars: 5, NumClauses: 7, ProofClauses: 5}
}

func validTestID(n byte) string {
	b := make([]byte, 32)
	for i := range b {
		b[i] = 'a'
	}
	b[31] = '0' + n
	return string(b)
}

func storeImpls(t *testing.T) map[string]Store {
	t.Helper()
	ds, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMemStore(), "disk": ds}
}

// The Store contract, run against both implementations.
func TestStoreContract(t *testing.T) {
	for name, st := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			f, tr := chainProblem(5)
			id := validTestID(1)
			if _, err := st.Job(id); !errors.Is(err, ErrUnknownJob) {
				t.Fatalf("Job(unknown) = %v, want ErrUnknownJob", err)
			}
			if err := st.Create(testJob(id, 1), f, tr); err != nil {
				t.Fatal(err)
			}
			job, err := st.Job(id)
			if err != nil || job.Seq != 1 || job.Tenant != "default" {
				t.Fatalf("Job = %+v, %v", job, err)
			}
			gf, gtr, err := st.Artifacts(id)
			if err != nil {
				t.Fatal(err)
			}
			if gf.NumClauses() != f.NumClauses() || gtr.Len() != tr.Len() {
				t.Fatalf("artifacts round-trip: %d clauses / %d trace, want %d / %d",
					gf.NumClauses(), gtr.Len(), f.NumClauses(), tr.Len())
			}
			if jr, err := st.Result(id); err != nil || jr != nil {
				t.Fatalf("Result before SetResult = %v, %v; want nil, nil", jr, err)
			}
			inc, err := st.Incomplete()
			if err != nil || len(inc) != 1 || inc[0].ID != id {
				t.Fatalf("Incomplete = %v, %v; want the one job", inc, err)
			}
			want := &JobResult{Status: StatusVerified, Code: 0, Attempts: 1}
			if err := st.SetResult(id, want); err != nil {
				t.Fatal(err)
			}
			got, err := st.Result(id)
			if err != nil || got == nil || got.Status != StatusVerified {
				t.Fatalf("Result = %+v, %v", got, err)
			}
			if inc, _ := st.Incomplete(); len(inc) != 0 {
				t.Fatalf("Incomplete after result = %v, want empty", inc)
			}
			if seq, err := st.MaxSeq(); err != nil || seq != 1 {
				t.Fatalf("MaxSeq = %d, %v; want 1", seq, err)
			}
			if err := st.Ping(); err != nil {
				t.Fatalf("Ping = %v", err)
			}
		})
	}
}

func TestStoreIncompleteOrder(t *testing.T) {
	for name, st := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			f, tr := chainProblem(3)
			// Created out of Seq order; Incomplete must sort by Seq.
			for i, seq := range []uint64{3, 1, 2} {
				if err := st.Create(testJob(validTestID(byte(i)), seq), f, tr); err != nil {
					t.Fatal(err)
				}
			}
			inc, err := st.Incomplete()
			if err != nil || len(inc) != 3 {
				t.Fatalf("Incomplete = %v, %v", inc, err)
			}
			for i, want := range []uint64{1, 2, 3} {
				if inc[i].Seq != want {
					t.Fatalf("Incomplete[%d].Seq = %d, want %d", i, inc[i].Seq, want)
				}
			}
		})
	}
}

func TestDiskStoreRejectsHostileIDs(t *testing.T) {
	ds, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, tr := chainProblem(3)
	for _, id := range []string{"", "../../etc/passwd", "abc", validTestID(1) + "x", "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"} {
		if err := ds.Create(testJob(id, 1), f, tr); err == nil {
			t.Fatalf("Create(%q) accepted a hostile id", id)
		}
		if _, err := ds.Job(id); !errors.Is(err, ErrUnknownJob) {
			t.Fatalf("Job(%q) = %v, want ErrUnknownJob", id, err)
		}
		if p := ds.JournalPath(id); p != "" {
			t.Fatalf("JournalPath(%q) = %q, want empty", id, p)
		}
	}
}

// A job directory without job.json is a half-finished admission: the client
// never saw a 202 for it, and startup must clear it out.
func TestDiskStoreSweepsAbortedAdmissions(t *testing.T) {
	root := t.TempDir()
	ds, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	f, tr := chainProblem(3)
	good := validTestID(1)
	if err := ds.Create(testJob(good, 1), f, tr); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-Create: artifacts present, job.json absent.
	aborted := filepath.Join(root, "jobs", validTestID(2))
	if err := os.MkdirAll(aborted, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(aborted, "formula.cnf"), []byte("p cnf 1 1\n1 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(aborted); !os.IsNotExist(err) {
		t.Fatal("aborted admission directory survived reopen")
	}
	if _, err := reopened.Job(good); err != nil {
		t.Fatalf("committed job lost by sweep: %v", err)
	}
}
