package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// failingResultStore fails SetResult like a full disk while leaving every
// other store operation healthy.
type failingResultStore struct {
	Store
	fail bool
}

func (s *failingResultStore) SetResult(id string, jr *JobResult) error {
	if s.fail {
		return faults.ErrInjectedDiskFull
	}
	return s.Store.SetResult(id, jr)
}

// The daemon's robustness contract under injected store/IO faults: never
// accept bad input, never panic, never hang, never lose an admitted job.
// One subtest per fault kind in faults.IOKinds.
func TestDaemonFaultMatrix(t *testing.T) {
	for _, kind := range faults.IOKinds {
		t.Run(kind.String(), func(t *testing.T) {
			switch kind {
			case faults.JournalAppendEIO:
				testJournalAppendEIO(t)
			case faults.ArtifactWriteDiskFull:
				testArtifactWriteDiskFull(t)
			case faults.UploadBodyTruncated:
				testUploadBodyTruncated(t)
			default:
				t.Fatalf("fault kind %v has no matrix entry", kind)
			}
		})
	}
}

// A checkpoint journal that starts failing mid-run costs durability, not
// the verdict: the job still verifies, with the same result a fault-free
// daemon produces, and the degradation is visible on a counter.
func testJournalAppendEIO(t *testing.T) {
	run := func(wrap func(func([]byte) error) func([]byte) error, reg *obs.Registry) *JobResult {
		ds, err := NewDiskStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		d := newTestDaemon(t, Options{Store: ds, CheckpointEvery: 1, SinkWrap: wrap, Obs: reg})
		f, tr := chainProblem(10)
		id := submitProblem(t, d.Handler(false), f, tr, "")
		return waitDone(t, d, id)
	}
	reg := obs.New()
	faulty := run(func(sink func([]byte) error) func([]byte) error {
		return faults.FailSinkAfter(sink, 1)
	}, reg)
	clean := run(nil, obs.New())

	if faulty.Status != StatusVerified {
		t.Fatalf("verdict under EIO = %+v, want verified", faulty)
	}
	if got := reg.Counter("service.journal_degraded").Value(); got == 0 {
		t.Fatal("journal_degraded counter not incremented")
	}
	fj, _ := json.Marshal(faulty)
	cj, _ := json.Marshal(clean)
	if !bytes.Equal(fj, cj) {
		t.Fatalf("degraded run changed the verdict:\nfaulty %s\nclean  %s", fj, cj)
	}
}

// A full disk at result-write time must not lose the verdict: it is served
// from memory for the rest of the process lifetime, the job stays
// incomplete on disk, and the next incarnation recomputes it durably.
func testArtifactWriteDiskFull(t *testing.T) {
	root := t.TempDir()
	ds, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	frs := &failingResultStore{Store: ds, fail: true}
	reg := obs.New()
	d := newTestDaemon(t, Options{Store: frs, Obs: reg})
	h := d.Handler(false)
	f, tr := chainProblem(10)

	id := submitProblem(t, h, f, tr, "")
	jr := waitDone(t, d, id)
	if jr.Status != StatusVerified {
		t.Fatalf("verdict under ENOSPC = %+v, want verified", jr)
	}
	if got := reg.Counter("service.store_result_errors").Value(); got == 0 {
		t.Fatal("store_result_errors counter not incremented")
	}
	// Served from memory over HTTP despite the dead disk.
	rw := doRequest(h, httptest.NewRequest("GET", "/v1/jobs/"+id, nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("GET job under ENOSPC = %d, want 200", rw.Code)
	}
	// On disk the job is still incomplete — the restart re-run set.
	if res, err := ds.Result(id); err != nil || res != nil {
		t.Fatalf("disk result = %v, %v; want pending", res, err)
	}
	inc, err := ds.Incomplete()
	if err != nil || len(inc) != 1 || inc[0].ID != id {
		t.Fatalf("Incomplete = %v, %v; want the faulted job", inc, err)
	}

	// Next incarnation, disk healthy again: recovery recomputes the job
	// and this time the result lands durably.
	ds2, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	d2 := newTestDaemon(t, Options{Store: ds2})
	jr2 := waitDone(t, d2, id)
	if jr2.Status != StatusVerified {
		t.Fatalf("recomputed verdict = %+v, want verified", jr2)
	}
	// waitDone observes the in-memory cache, which finish writes before the
	// durable SetResult — poll briefly for the disk record to land.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if res, err := ds2.Result(id); err == nil && res != nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("durable result after recovery = %v, %v; want stored", res, err)
		}
		time.Sleep(time.Millisecond)
	}
}

// An upload cut off mid-stream is bad input, not a daemon failure: typed
// 400, nothing enqueued, and the daemon keeps serving.
func testUploadBodyTruncated(t *testing.T) {
	d := newTestDaemon(t, Options{})
	h := d.Handler(false)
	f, tr := chainProblem(10)
	fs, ps := encodeProblem(t, f, tr)
	full, ct := multipartBody(t, map[string]string{"formula": fs, "proof": ps})

	in := faults.New(7)
	for i := 0; i < 8; i++ {
		cut, ok := in.TruncateBody(full.Bytes())
		if !ok {
			t.Fatal("body too short to truncate")
		}
		rw := submitRaw(t, h, bytes.NewBuffer(cut), ct, "")
		if rw.Code != http.StatusBadRequest {
			t.Fatalf("truncated upload #%d = %d %s, want 400", i, rw.Code, rw.Body.String())
		}
	}
	if inc, _ := d.opt.Store.Incomplete(); len(inc) != 0 {
		t.Fatalf("truncated uploads left %d job(s) behind", len(inc))
	}
	// Never hang, never die: a well-formed submit still goes through.
	id := submitProblem(t, h, f, tr, "")
	if jr := waitDone(t, d, id); jr.Status != StatusVerified {
		t.Fatalf("post-fault submit = %+v, want verified", jr)
	}
}
